//! The deserialization half of the vendored serde stand-in: a small JSON
//! parser plus the machinery `#[derive(Deserialize)]` targets.
//!
//! Design goals, in order: *useful errors* (every failure carries the JSON
//! path and source line — `at $.runs[0].tcp.mss (line 14): …`), *exact
//! round-trips* (numbers keep their source lexeme, so `u64::MAX` and
//! shortest-repr `f64`s survive `Serialize → Deserialize` bit-for-bit), and
//! *no dependencies* (the build environment has no registry access).
//!
//! The data model mirrors the `Serialize` half: structs are objects, newtype
//! structs collapse to their inner value, tuple structs/tuples are arrays,
//! unit enum variants are `"Variant"` and payload variants are
//! `{"Variant": …}` (serde's externally-tagged form). Unknown object fields
//! and unknown variants are hard errors — scenario files fail loudly on
//! typos instead of silently ignoring a knob.

use std::fmt;

// ---------------------------------------------------------------------------
// Values
// ---------------------------------------------------------------------------

/// One parsed JSON value, annotated with its source line (1-based).
#[derive(Debug, Clone)]
pub struct Value {
    pub(crate) kind: Kind,
    line: u32,
}

#[derive(Debug, Clone)]
pub(crate) enum Kind {
    Null,
    Bool(bool),
    /// Numbers keep the raw lexeme so integer width and float precision are
    /// decided by the target type, not by an intermediate `f64`.
    Num(String),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The 1-based source line this value started on.
    pub fn line(&self) -> u32 {
        self.line
    }

    /// A short noun describing the JSON type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self.kind {
            Kind::Null => "null",
            Kind::Bool(_) => "boolean",
            Kind::Num(_) => "number",
            Kind::Str(_) => "string",
            Kind::Arr(_) => "array",
            Kind::Obj(_) => "object",
        }
    }

    /// The object entries, or a type-mismatch error.
    pub fn expect_object(&self, path: &Path) -> Result<&[(String, Value)], Error> {
        match &self.kind {
            Kind::Obj(entries) => Ok(entries),
            _ => Err(Error::type_mismatch("object", self, path)),
        }
    }

    /// The array elements, or a type-mismatch error.
    pub fn expect_array(&self, path: &Path) -> Result<&[Value], Error> {
        match &self.kind {
            Kind::Arr(items) => Ok(items),
            _ => Err(Error::type_mismatch("array", self, path)),
        }
    }

    /// The raw number lexeme, or a type-mismatch error naming `target`.
    pub fn expect_number(&self, target: &str, path: &Path) -> Result<&str, Error> {
        match &self.kind {
            Kind::Num(raw) => Ok(raw),
            _ => Err(Error::type_mismatch(target, self, path)),
        }
    }
}

// ---------------------------------------------------------------------------
// Errors and paths
// ---------------------------------------------------------------------------

/// A deserialization failure: where (JSON path + source line) and what.
#[derive(Debug, Clone)]
pub struct Error {
    /// JSON path of the failing value, e.g. `$.runs[0].tcp.mss`.
    pub path: String,
    /// 1-based source line of the failing value (0 = unknown).
    pub line: u32,
    /// Human-readable description of the failure.
    pub msg: String,
}

impl Error {
    /// Build an error at an explicit location.
    pub fn new(line: u32, path: &Path, msg: impl Into<String>) -> Self {
        Error {
            path: path.render(),
            line,
            msg: msg.into(),
        }
    }

    fn parse(line: u32, msg: impl Into<String>) -> Self {
        Error {
            path: "$".into(),
            line,
            msg: msg.into(),
        }
    }

    /// "expected X, found Y" at `v`'s location.
    pub fn type_mismatch(expected: &str, v: &Value, path: &Path) -> Self {
        Error::new(
            v.line(),
            path,
            format!("expected {expected}, found {}", v.type_name()),
        )
    }

    /// An object field not in the type's field list.
    pub fn unknown_field(found: &str, allowed: &[&str], line: u32, path: &Path) -> Self {
        Error::new(
            line,
            path,
            format!(
                "unknown field `{found}` (expected one of: {})",
                allowed.join(", ")
            ),
        )
    }

    /// An enum tag not in the type's variant list.
    pub fn unknown_variant(found: &str, allowed: &[&str], line: u32, path: &Path) -> Self {
        Error::new(
            line,
            path,
            format!(
                "unknown variant `{found}` (expected one of: {})",
                allowed.join(", ")
            ),
        )
    }

    /// A required field absent from the object at `line`.
    pub fn missing_field(field: &str, line: u32, path: &Path) -> Self {
        Error::new(line, path, format!("missing field `{field}`"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "at {}: {}", self.path, self.msg)
        } else {
            write!(f, "at {} (line {}): {}", self.path, self.line, self.msg)
        }
    }
}

impl std::error::Error for Error {}

/// The JSON path to the value currently being deserialized, maintained as a
/// stack by the generated code.
#[derive(Debug, Default)]
pub struct Path(Vec<Seg>);

#[derive(Debug)]
enum Seg {
    Field(&'static str),
    Index(usize),
}

impl Path {
    /// The root path (`$`).
    pub fn root() -> Self {
        Path(Vec::new())
    }

    /// Descend into an object field or enum-variant payload.
    pub fn push_field(&mut self, name: &'static str) {
        self.0.push(Seg::Field(name));
    }

    /// Descend into an array element.
    pub fn push_index(&mut self, i: usize) {
        self.0.push(Seg::Index(i));
    }

    /// Ascend one level.
    pub fn pop(&mut self) {
        self.0.pop();
    }

    /// Render as `$.a.b[3].c`.
    pub fn render(&self) -> String {
        let mut out = String::from("$");
        for seg in &self.0 {
            match seg {
                Seg::Field(name) => {
                    out.push('.');
                    out.push_str(name);
                }
                Seg::Index(i) => {
                    out.push_str(&format!("[{i}]"));
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Helpers targeted by the derive-generated code
// ---------------------------------------------------------------------------

/// Verify `v` is an object whose keys all appear in `allowed`, with no
/// duplicates. The derive calls this before extracting fields so typos are
/// reported against the full field list.
pub fn check_fields(v: &Value, allowed: &[&str], path: &Path) -> Result<(), Error> {
    let entries = v.expect_object(path)?;
    for (i, (k, val)) in entries.iter().enumerate() {
        if !allowed.contains(&k.as_str()) {
            return Err(Error::unknown_field(k, allowed, val.line(), path));
        }
        if entries[..i].iter().any(|(prev, _)| prev == k) {
            return Err(Error::new(
                val.line(),
                path,
                format!("duplicate field `{k}`"),
            ));
        }
    }
    Ok(())
}

/// Deserialize field `name` from object `v`. A missing field defers to
/// [`Deserialize::deserialize_missing`], which errors for required types and
/// yields `None` for `Option`.
pub fn field<'de, T: Deserialize<'de>>(
    v: &Value,
    name: &'static str,
    path: &mut Path,
) -> Result<T, Error> {
    let entries = v.expect_object(path)?;
    match entries.iter().find(|(k, _)| k == name) {
        Some((_, val)) => {
            path.push_field(name);
            let r = T::deserialize_json(val, path);
            path.pop();
            r
        }
        None => T::deserialize_missing(name, v.line(), path),
    }
}

/// Verify `v` is an array of exactly `n` elements (tuples, tuple structs).
pub fn elements<'a>(v: &'a Value, n: usize, path: &Path) -> Result<&'a [Value], Error> {
    let items = v.expect_array(path)?;
    if items.len() != n {
        return Err(Error::new(
            v.line(),
            path,
            format!("expected an array of {n} elements, found {}", items.len()),
        ));
    }
    Ok(items)
}

/// Deserialize array element `i` (with path tracking).
pub fn element<'de, T: Deserialize<'de>>(v: &Value, i: usize, path: &mut Path) -> Result<T, Error> {
    path.push_index(i);
    let r = T::deserialize_json(v, path);
    path.pop();
    r
}

/// Verify `v` is JSON `null` (unit structs, unit variants in object form).
pub fn expect_null(v: &Value, path: &Path) -> Result<(), Error> {
    match v.kind {
        Kind::Null => Ok(()),
        _ => Err(Error::type_mismatch("null", v, path)),
    }
}

/// The two externally-tagged enum encodings.
pub enum EnumForm<'a> {
    /// `"Variant"` — a unit variant.
    Unit(&'a str),
    /// `{"Variant": payload}` — a payload-carrying variant.
    Tagged(&'a str, &'a Value),
}

/// Classify `v` as one of the two enum encodings.
pub fn enum_form<'a>(v: &'a Value, path: &Path) -> Result<EnumForm<'a>, Error> {
    match &v.kind {
        Kind::Str(s) => Ok(EnumForm::Unit(s)),
        Kind::Obj(entries) if entries.len() == 1 => {
            Ok(EnumForm::Tagged(&entries[0].0, &entries[0].1))
        }
        Kind::Obj(entries) => Err(Error::new(
            v.line(),
            path,
            format!(
                "an enum must be a single-key object, found {} keys",
                entries.len()
            ),
        )),
        _ => Err(Error::type_mismatch(
            "a variant string or single-key object",
            v,
            path,
        )),
    }
}

// ---------------------------------------------------------------------------
// The Deserialize trait (re-exported at the crate root)
// ---------------------------------------------------------------------------

/// Deserialization from parsed JSON (stand-in for `serde::Deserialize`).
///
/// The lifetime parameter mirrors real serde's signature so call sites and
/// bounds (`for<'de> Deserialize<'de>`) port over unchanged; this stand-in
/// never borrows from the input.
pub trait Deserialize<'de>: Sized {
    /// Build `Self` from the parsed value at `path`.
    fn deserialize_json(v: &Value, path: &mut Path) -> Result<Self, Error>;

    /// Called when a struct field of this type is absent. Errors by default;
    /// `Option<T>` overrides it to produce `None` (matching real serde,
    /// where optional fields may be omitted).
    fn deserialize_missing(field: &'static str, line: u32, path: &Path) -> Result<Self, Error> {
        Err(Error::missing_field(field, line, path))
    }
}

/// Parse a JSON document and deserialize a `T` from it.
pub fn from_json_str<'de, T: Deserialize<'de>>(input: &str) -> Result<T, Error> {
    let value = parse(input)?;
    T::deserialize_json(&value, &mut Path::root())
}

// ---------------------------------------------------------------------------
// The parser
// ---------------------------------------------------------------------------

/// Parse one JSON document (object, array, or scalar) with nothing but
/// whitespace after it.
pub fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        line: 1,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::parse(
            p.line,
            format!(
                "unexpected trailing characters starting with `{}`",
                p.peek_desc()
            ),
        ));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_desc(&self) -> String {
        match self.peek() {
            Some(b) if b.is_ascii_graphic() => (b as char).to_string(),
            Some(b) => format!("byte 0x{b:02x}"),
            None => "end of input".into(),
        }
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    fn expect_byte(&mut self, want: u8) -> Result<(), Error> {
        match self.peek() {
            Some(b) if b == want => {
                self.bump();
                Ok(())
            }
            _ => Err(Error::parse(
                self.line,
                format!("expected `{}`, found `{}`", want as char, self.peek_desc()),
            )),
        }
    }

    fn keyword(&mut self, word: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(Error::parse(
                self.line,
                format!("expected `{word}`, found `{}`", self.peek_desc()),
            ))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        let line = self.line;
        let kind = match self.peek() {
            Some(b'{') => self.object()?,
            Some(b'[') => self.array()?,
            Some(b'"') => Kind::Str(self.string()?),
            Some(b't') => {
                self.keyword("true")?;
                Kind::Bool(true)
            }
            Some(b'f') => {
                self.keyword("false")?;
                Kind::Bool(false)
            }
            Some(b'n') => {
                self.keyword("null")?;
                Kind::Null
            }
            Some(b'-' | b'0'..=b'9') => Kind::Num(self.number()?),
            Some(_) => {
                return Err(Error::parse(
                    self.line,
                    format!("expected a JSON value, found `{}`", self.peek_desc()),
                ))
            }
            None => {
                return Err(Error::parse(
                    self.line,
                    "unexpected end of input (truncated document?)",
                ))
            }
        };
        Ok(Value { kind, line })
    }

    fn object(&mut self) -> Result<Kind, Error> {
        self.expect_byte(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.bump();
            return Ok(Kind::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.bump();
                }
                Some(b'}') => {
                    self.bump();
                    return Ok(Kind::Obj(entries));
                }
                _ => {
                    return Err(Error::parse(
                        self.line,
                        format!(
                            "expected `,` or `}}` in object, found `{}`",
                            self.peek_desc()
                        ),
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Kind, Error> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.bump();
            return Ok(Kind::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.bump();
                }
                Some(b']') => {
                    self.bump();
                    return Ok(Kind::Arr(items));
                }
                _ => {
                    return Err(Error::parse(
                        self.line,
                        format!("expected `,` or `]` in array, found `{}`", self.peek_desc()),
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => {
                    return Err(Error::parse(
                        self.line,
                        "unterminated string (truncated document?)",
                    ))
                }
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let c = if (0xd800..0xdc00).contains(&hi) {
                            // Surrogate pair: require a following \uXXXX low half.
                            self.keyword("\\u")?;
                            let lo = self.hex4()?;
                            if !(0xdc00..0xe000).contains(&lo) {
                                return Err(Error::parse(self.line, "invalid low surrogate"));
                            }
                            let code = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                            char::from_u32(code)
                        } else {
                            char::from_u32(hi)
                        };
                        out.push(c.ok_or_else(|| {
                            Error::parse(self.line, "invalid \\u escape (not a scalar value)")
                        })?);
                    }
                    other => {
                        // `other` is the consumed escape byte itself;
                        // peek_desc() would describe the character after it.
                        let desc = match other {
                            Some(b) if b.is_ascii_graphic() => (b as char).to_string(),
                            Some(b) => format!("byte 0x{b:02x}"),
                            None => "end of input".into(),
                        };
                        return Err(Error::parse(
                            self.line,
                            format!("invalid escape `\\{desc}`"),
                        ));
                    }
                },
                Some(b) if b < 0x20 => {
                    return Err(Error::parse(
                        self.line,
                        "unescaped control character in string",
                    ))
                }
                Some(b) => {
                    // Copy the raw UTF-8 byte through; input is a &str so
                    // multi-byte sequences are already valid.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    for _ in 1..len {
                        self.bump();
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..start + len]).unwrap());
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => {
                    return Err(Error::parse(
                        self.line,
                        "invalid \\u escape (need 4 hex digits)",
                    ))
                }
            };
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<String, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.bump();
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.bump();
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        // Validate the lexeme once here so downstream integer/float parsing
        // only decides width, not grammar.
        if raw.parse::<f64>().is_err() {
            return Err(Error::parse(self.line, format!("invalid number `{raw}`")));
        }
        Ok(raw.to_string())
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}
