//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the surface it consumes. Unlike the original marker-only stub,
//! [`Serialize`] is now a *real* trait: it renders the value as JSON through
//! [`Serialize::serialize_json`], and `#[derive(Serialize)]` (from the
//! vendored `serde_derive`) generates field-by-field implementations that
//! follow serde's externally-tagged data model (structs as objects, newtype
//! structs as their inner value, enum variants as `"Variant"` /
//! `{"Variant": ...}`). `Deserialize` remains a marker — nothing in the
//! workspace parses yet.
//!
//! When a registry becomes reachable, swap this path dependency for the real
//! `serde` + `serde_json`; call sites that use [`to_json_string`] are the
//! only ones that need to migrate (to `serde_json::to_string`).

/// Render a value as a JSON string.
pub fn to_json_string<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    value.serialize_json(&mut out);
    out
}

/// Serialization to JSON (stand-in for `serde::Serialize`).
pub trait Serialize {
    /// Append the JSON encoding of `self` to `out`.
    fn serialize_json(&self, out: &mut String);
}

/// Marker trait mirroring `serde::Deserialize`'s name.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};

/// Escape and append a string literal (JSON string body plus quotes).
pub fn write_json_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! int_serialize {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(itoa_buf(&mut [0u8; 24], *self as i128));
            }
        }
    )*};
}

/// Minimal integer formatter (avoids `format!` allocation on hot paths).
fn itoa_buf(buf: &mut [u8; 24], mut v: i128) -> &str {
    let neg = v < 0;
    if neg {
        v = -v;
    }
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    if neg {
        i -= 1;
        buf[i] = b'-';
    }
    std::str::from_utf8(&buf[i..]).expect("ascii digits")
}

int_serialize!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(&self.to_string());
    }
}

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Serialize for f64 {
    fn serialize_json(&self, out: &mut String) {
        if self.is_finite() {
            // `{}` on f64 is the shortest round-trip representation.
            out.push_str(&format!("{self}"));
        } else {
            out.push_str("null");
        }
    }
}

impl Serialize for f32 {
    fn serialize_json(&self, out: &mut String) {
        (*self as f64).serialize_json(out);
    }
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        write_json_escaped(self, out);
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        write_json_escaped(self, out);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.serialize_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

macro_rules! tuple_serialize {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$n.serialize_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
    )*};
}

tuple_serialize! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<K: std::fmt::Display, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize_json(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_escaped(&k.to_string(), out);
            out.push(':');
            v.serialize_json(out);
        }
        out.push('}');
    }
}
