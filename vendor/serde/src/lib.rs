//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the surface it consumes. Both halves are now *real* traits:
//! [`Serialize`] renders the value as JSON through
//! [`Serialize::serialize_json`], and [`Deserialize`] rebuilds it from a
//! parsed JSON document via [`from_json_str`] (see the [`de`] module for the
//! parser and error model — every failure carries the JSON path and source
//! line). `#[derive(Serialize)]` / `#[derive(Deserialize)]` (from the
//! vendored `serde_derive`) generate field-by-field implementations that
//! follow serde's externally-tagged data model (structs as objects, newtype
//! structs as their inner value, enum variants as `"Variant"` /
//! `{"Variant": ...}`). Optional (`Option<T>`) fields may be omitted and
//! deserialize to `None`; unknown fields and variants are hard errors.
//!
//! When a registry becomes reachable, swap this path dependency for the real
//! `serde` + `serde_json`; call sites that use [`to_json_string`] /
//! [`from_json_str`] are the only ones that need to migrate (to
//! `serde_json::to_string` / `serde_json::from_str`).

pub mod de;

pub use de::{from_json_str, Deserialize};

/// Render a value as a JSON string.
pub fn to_json_string<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    value.serialize_json(&mut out);
    out
}

/// Serialization to JSON (stand-in for `serde::Serialize`).
pub trait Serialize {
    /// Append the JSON encoding of `self` to `out`.
    fn serialize_json(&self, out: &mut String);
}

pub use serde_derive::{Deserialize, Serialize};

/// Escape and append a string literal (JSON string body plus quotes).
pub fn write_json_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! int_serialize {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(itoa_buf(&mut [0u8; 24], *self as i128));
            }
        }
    )*};
}

/// Minimal integer formatter (avoids `format!` allocation on hot paths).
fn itoa_buf(buf: &mut [u8; 24], mut v: i128) -> &str {
    let neg = v < 0;
    if neg {
        v = -v;
    }
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    if neg {
        i -= 1;
        buf[i] = b'-';
    }
    std::str::from_utf8(&buf[i..]).expect("ascii digits")
}

int_serialize!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(&self.to_string());
    }
}

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Serialize for f64 {
    fn serialize_json(&self, out: &mut String) {
        if self.is_finite() {
            // `{}` on f64 is the shortest round-trip representation.
            out.push_str(&format!("{self}"));
        } else {
            out.push_str("null");
        }
    }
}

impl Serialize for f32 {
    fn serialize_json(&self, out: &mut String) {
        (*self as f64).serialize_json(out);
    }
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        write_json_escaped(self, out);
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        write_json_escaped(self, out);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.serialize_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

macro_rules! tuple_serialize {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$n.serialize_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
    )*};
}

tuple_serialize! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<K: std::fmt::Display, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize_json(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_escaped(&k.to_string(), out);
            out.push(':');
            v.serialize_json(out);
        }
        out.push('}');
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls for the primitive/stdlib types the workspace uses.
// ---------------------------------------------------------------------------

macro_rules! int_deserialize {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize_json(v: &de::Value, path: &mut de::Path) -> Result<Self, de::Error> {
                let raw = v.expect_number(stringify!($t), path)?;
                raw.parse::<$t>().map_err(|_| {
                    de::Error::new(
                        v.line(),
                        path,
                        format!("`{raw}` is not a valid {}", stringify!($t)),
                    )
                })
            }
        }
    )*};
}

int_deserialize!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl<'de> Deserialize<'de> for f64 {
    fn deserialize_json(v: &de::Value, path: &mut de::Path) -> Result<Self, de::Error> {
        // The parser validated the lexeme as a float already.
        Ok(v.expect_number("f64", path)?
            .parse::<f64>()
            .expect("validated number"))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize_json(v: &de::Value, path: &mut de::Path) -> Result<Self, de::Error> {
        f64::deserialize_json(v, path).map(|x| x as f32)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize_json(v: &de::Value, path: &mut de::Path) -> Result<Self, de::Error> {
        match &v.kind {
            de::Kind::Bool(b) => Ok(*b),
            _ => Err(de::Error::type_mismatch("boolean", v, path)),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize_json(v: &de::Value, path: &mut de::Path) -> Result<Self, de::Error> {
        match &v.kind {
            de::Kind::Str(s) => Ok(s.clone()),
            _ => Err(de::Error::type_mismatch("string", v, path)),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize_json(v: &de::Value, path: &mut de::Path) -> Result<Self, de::Error> {
        match &v.kind {
            de::Kind::Null => Ok(None),
            _ => T::deserialize_json(v, path).map(Some),
        }
    }

    // An absent optional field is `None`, matching real serde.
    fn deserialize_missing(
        _field: &'static str,
        _line: u32,
        _path: &de::Path,
    ) -> Result<Self, de::Error> {
        Ok(None)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize_json(v: &de::Value, path: &mut de::Path) -> Result<Self, de::Error> {
        let items = v.expect_array(path)?;
        let mut out = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            out.push(de::element::<T>(item, i, path)?);
        }
        Ok(out)
    }
}

macro_rules! tuple_deserialize {
    ($(($($n:tt $t:ident),+; $len:expr))*) => {$(
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn deserialize_json(v: &de::Value, path: &mut de::Path) -> Result<Self, de::Error> {
                let items = de::elements(v, $len, path)?;
                Ok(($(de::element::<$t>(&items[$n], $n, path)?,)+))
            }
        }
    )*};
}

tuple_deserialize! {
    (0 A; 1)
    (0 A, 1 B; 2)
    (0 A, 1 B, 2 C; 3)
    (0 A, 1 B, 2 C, 3 D; 4)
}

impl<'de, K: std::str::FromStr + Ord, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
    fn deserialize_json(v: &de::Value, path: &mut de::Path) -> Result<Self, de::Error> {
        let entries = v.expect_object(path)?;
        let mut out = std::collections::BTreeMap::new();
        for (k, val) in entries {
            let key = k
                .parse::<K>()
                .map_err(|_| de::Error::new(val.line(), path, format!("invalid map key `{k}`")))?;
            let value = V::deserialize_json(val, path)?;
            out.insert(key, value);
        }
        Ok(out)
    }
}
