//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the minimal surface it consumes: the `Serialize`/`Deserialize`
//! *names* (trait + derive-macro, like the real crate) so that
//! `use serde::{Deserialize, Serialize}` plus `#[derive(...)]` compile.
//! Nothing in the workspace serializes through serde yet — artifacts are
//! written as CSV by `rss-bench` — so the traits carry no methods. Replace
//! this path dependency with the real crate when a registry is available.

/// Marker trait mirroring `serde::Serialize`'s name.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`'s name.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
