//! `any::<T>()` support.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy (mirror of `Arbitrary`).
pub trait Arbitrary {
    /// Sample an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, magnitude up to ~1e6: a pragmatic test
        // domain (the real crate also samples NaN/inf edge cases).
        (rng.next_f64() - 0.5) * 2e6
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over `T`'s whole value domain, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}
