//! Test-runner configuration and the deterministic RNG behind sampling.

/// Mirror of `proptest::test_runner::Config` (exposed in the prelude as
/// `ProptestConfig`). Only the fields this workspace uses are present.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of input cases sampled per property.
    pub cases: u32,
    /// Accepted for compatibility with the real crate; the stand-in does
    /// not shrink. (Also keeps `..Config::default()` struct updates at
    /// call sites meaningful.)
    pub max_shrink_iters: u32,
}

impl Default for Config {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        Config {
            cases,
            max_shrink_iters: 0,
        }
    }
}

/// Deterministic splitmix64 generator seeded from the test's name, so every
/// run (and every CI machine) samples the identical case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name (FNV-1a over the bytes).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi)` (`hi > lo`).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift bounded sampling; bias is negligible for test input.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}
