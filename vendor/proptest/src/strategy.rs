//! The [`Strategy`] trait and combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A source of values for property tests. Unlike real proptest there is no
/// value tree / shrinking: a strategy simply samples.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Sample one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map sampled values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of the wrapped value (mirror of `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice among boxed strategies (what [`prop_oneof!`](crate::prop_oneof) builds).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from a non-empty set of options.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: any value.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    // Full-width range: any value.
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add(rng.below(span + 1) as i64) as $t
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + (hi - lo) * rng.next_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.next_f64() as f32
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident/$idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}
