//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy for `Vec<S::Value>` with a length drawn from a range.
pub struct VecStrategy<S> {
    elem: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.len.end - self.len.start).max(1) as u64;
        let n = self.len.start + rng.below(span) as usize;
        (0..n).map(|_| self.elem.sample(rng)).collect()
    }
}

/// Mirror of `proptest::collection::vec`: element strategy + length range.
pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { elem, len }
}
