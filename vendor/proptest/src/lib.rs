//! Offline stand-in for `proptest`.
//!
//! The build environment cannot reach crates.io, so this crate reimplements
//! the slice of proptest's API the workspace's property tests consume:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! * [`prop_oneof!`], [`strategy::Just`], `.prop_map(..)`, `.boxed()`,
//! * range strategies (`0u64..1_000`, `1u64..=1000`, float ranges),
//!   tuple strategies, [`any::<T>()`](arbitrary::any) and
//!   [`collection::vec`],
//! * [`test_runner::Config`] (`ProptestConfig`) with a `cases` knob and the
//!   `PROPTEST_CASES` environment override.
//!
//! Semantics differ from real proptest in two deliberate ways: sampling is
//! **deterministic** (seeded from the test's name, so failures reproduce
//! bit-exactly and CI is stable) and there is **no shrinking** — a failing
//! case panics with the case number so it can be replayed. Swap the path
//! dependency for the real crate to regain shrinking; the call sites need no
//! changes.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The prelude, mirroring `proptest::prelude`.
pub mod prelude {
    /// Alias of the crate root so `prop::collection::vec(..)` paths work.
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert a condition inside a property test (panics; no shrink phase).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Choose uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Define property tests: each `fn name(arg in strategy, ..) { body }` becomes
/// a `#[test]` that samples `cases` inputs deterministically and runs the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            // Build each strategy once (as real proptest does), binding it to
            // the argument's own name; the per-case `let` below shadows it
            // with the sampled value for the body's scope only.
            $(let $arg = ($strat);)+
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&$arg, &mut __rng);)+
                let __run = move || $body;
                if ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(__run)).is_err() {
                    panic!(
                        "property `{}` failed at deterministic case {}/{} \
                         (no shrinking in the offline proptest stand-in)",
                        stringify!($name),
                        __case + 1,
                        __cfg.cases
                    );
                }
            }
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}
