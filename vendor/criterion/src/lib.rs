//! Offline stand-in for `criterion`.
//!
//! Implements the subset `rss-bench` uses — [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::sample_size`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — measuring simple wall-clock min/mean/max
//! per target instead of criterion's full statistical machinery. Benches
//! keep `harness = false`, so swapping the real crate back in is a
//! `Cargo.toml`-only change.

use std::time::{Duration, Instant};

/// Top-level benchmark context (mirror of `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup {name}");
        BenchmarkGroup {
            _parent: self,
            sample_size: 10,
        }
    }

    /// Standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_target(id, 10, f);
        self
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of samples collected per target (criterion's floor is 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for compatibility; the stand-in is sample-count driven.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark target.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_target(id, self.sample_size, f);
        self
    }

    /// Finish the group (report-flush point in real criterion).
    pub fn finish(self) {}
}

fn run_target<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::with_capacity(samples),
    };
    for _ in 0..samples {
        f(&mut b);
    }
    let n = b.samples.len().max(1);
    let total: Duration = b.samples.iter().sum();
    let mean = total / n as u32;
    let min = b.samples.iter().min().copied().unwrap_or_default();
    let max = b.samples.iter().max().copied().unwrap_or_default();
    println!("  {id:<40} mean {mean:>12.3?}  min {min:>12.3?}  max {max:>12.3?}  ({n} samples)");
}

/// Passed to the closure given to `bench_function`; times the hot closure.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time one execution of `routine` (real criterion batches internally).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        let out = routine();
        self.samples.push(start.elapsed());
        black_box(out);
    }
}

/// Opaque value barrier — prevents the optimizer from deleting the result.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
