//! Offline stand-in for `rand` (0.8-era API surface).
//!
//! `rss_sim::SimRng` implements [`RngCore`] so it composes with `rand`
//! distributions when the real crate is present. Offline, only the trait
//! definition is needed; no generator or distribution code lives here.

use std::fmt;

/// Error type mirroring `rand::Error` for the `try_fill_bytes` signature.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

/// The core random-number-generator trait, mirroring `rand::RngCore`.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}
