//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its config and report
//! types but never serializes anything (no `serde_json`, no `#[serde(...)]`
//! attributes, no trait bounds). These derives therefore expand to nothing;
//! swapping in the real `serde`/`serde_derive` later requires no source
//! changes — only a `Cargo.toml` edit.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
