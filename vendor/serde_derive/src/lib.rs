//! Offline stand-in for `serde_derive`.
//!
//! `#[derive(Serialize)]` and `#[derive(Deserialize)]` generate real
//! implementations of the vendored `serde::Serialize` / `serde::Deserialize`
//! traits (JSON via `serialize_json` / `deserialize_json`), following
//! serde's externally-tagged data model: named structs become objects,
//! newtype structs collapse to their inner value, tuple structs become
//! arrays, unit enum variants become `"Variant"` and payload variants become
//! `{"Variant": ...}`. Deserialization rejects unknown fields and variants
//! with path-qualified errors, and treats absent `Option` fields as `None`.
//! The derives parse the item's token stream directly — no `syn`/`quote`,
//! since the build environment has no registry access — which covers the
//! shapes this workspace derives on: non-generic structs and enums with
//! named, tuple or unit fields.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Generate `serde::Serialize` (JSON rendering) for a struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate(&item).parse().expect("generated impl parses")
}

/// Generate `serde::Deserialize` (JSON parsing) for a struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_deserialize(&item)
        .parse()
        .expect("generated impl parses")
}

enum Body {
    /// Named-field struct: field identifiers in declaration order.
    Named(Vec<String>),
    /// Tuple struct: field count.
    Tuple(usize),
    /// Unit struct.
    Unit,
    /// Enum: `(variant, body)` per variant (nested `Named`/`Tuple`/`Unit`).
    Enum(Vec<(String, Body)>),
}

struct Item {
    name: String,
    body: Body,
}

fn is_ident(t: &TokenTree, s: &str) -> bool {
    matches!(t, TokenTree::Ident(i) if i.to_string() == s)
}

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

/// Skip `#[...]` attribute sequences (doc comments included) at `*i`.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) {
    while *i < tokens.len() && is_punct(&tokens[*i], '#') {
        *i += 1; // '#'
        match tokens.get(*i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => *i += 1,
            other => panic!("malformed attribute after '#': {other:?}"),
        }
    }
}

/// Skip `pub` / `pub(...)` visibility at `*i`.
fn skip_vis(tokens: &[TokenTree], i: &mut usize) {
    if *i < tokens.len() && is_ident(&tokens[*i], "pub") {
        *i += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(*i) {
            if g.delimiter() == Delimiter::Parenthesis {
                *i += 1;
            }
        }
    }
}

/// Count top-level comma-separated segments of a token list (tuple arity).
fn count_top_level(tokens: &[TokenTree]) -> usize {
    let mut depth = 0i32;
    let mut fields = 0usize;
    let mut in_segment = false;
    for t in tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => in_segment = false,
            _ => {
                if !in_segment {
                    fields += 1;
                    in_segment = true;
                }
            }
        }
    }
    fields
}

/// Parse the fields of a named-field body group.
fn parse_named_fields(group: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_vis(&tokens, &mut i);
        let TokenTree::Ident(name) = &tokens[i] else {
            panic!("expected field name, found {:?}", tokens[i]);
        };
        fields.push(name.to_string());
        i += 1;
        assert!(is_punct(&tokens[i], ':'), "expected ':' after field name");
        i += 1;
        // Skip the type: everything up to the next top-level ','.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

fn parse_enum_variants(group: TokenStream) -> Vec<(String, Body)> {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let TokenTree::Ident(name) = &tokens[i] else {
            panic!("expected variant name, found {:?}", tokens[i]);
        };
        let name = name.to_string();
        i += 1;
        let body = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Body::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Body::Tuple(count_top_level(&inner))
            }
            _ => Body::Unit,
        };
        if let Some(t) = tokens.get(i) {
            assert!(
                is_punct(t, ','),
                "explicit discriminants are not supported: {t:?}"
            );
            i += 1;
        }
        variants.push((name, body));
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&tokens, &mut i);
    skip_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) if id.to_string() == "struct" || id.to_string() == "enum" => {
            id.to_string()
        }
        other => panic!("derive(Serialize) supports structs and enums, found {other:?}"),
    };
    i += 1;
    let TokenTree::Ident(name) = &tokens[i] else {
        panic!("expected type name");
    };
    let name = name.to_string();
    i += 1;
    if i < tokens.len() && is_punct(&tokens[i], '<') {
        panic!("derive(Serialize) stand-in does not support generic type `{name}`");
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if kind == "struct" {
                Body::Named(parse_named_fields(g.stream()))
            } else {
                Body::Enum(parse_enum_variants(g.stream()))
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            Body::Tuple(count_top_level(&inner))
        }
        Some(t) if is_punct(t, ';') => Body::Unit,
        other => panic!("unsupported item body: {other:?}"),
    };
    Item { name, body }
}

/// Emit the statements serializing one named-field body from expressions
/// `{prefix}{field}` (e.g. `&self.x` or a match binding).
fn named_body_code(fields: &[String], prefix: &str) -> String {
    let mut code = String::from("out.push('{');\n");
    for (k, f) in fields.iter().enumerate() {
        let comma = if k > 0 { "," } else { "" };
        code.push_str(&format!(
            "out.push_str(\"{comma}\\\"{f}\\\":\");\n\
             serde::Serialize::serialize_json({prefix}{f}, out);\n"
        ));
    }
    code.push_str("out.push('}');\n");
    code
}

fn generate(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Named(fields) => named_body_code(fields, "&self."),
        Body::Tuple(1) => "serde::Serialize::serialize_json(&self.0, out);\n".to_string(),
        Body::Tuple(n) => {
            let mut code = String::from("out.push('[');\n");
            for k in 0..*n {
                if k > 0 {
                    code.push_str("out.push(',');\n");
                }
                code.push_str(&format!(
                    "serde::Serialize::serialize_json(&self.{k}, out);\n"
                ));
            }
            code.push_str("out.push(']');\n");
            code
        }
        Body::Unit => "out.push_str(\"null\");\n".to_string(),
        Body::Enum(variants) => {
            let mut arms = String::new();
            for (v, vbody) in variants {
                match vbody {
                    Body::Unit => {
                        arms.push_str(&format!("{name}::{v} => out.push_str(\"\\\"{v}\\\"\"),\n"))
                    }
                    Body::Named(fields) => {
                        let bindings = fields.join(", ");
                        let inner = named_body_code(fields, "");
                        arms.push_str(&format!(
                            "{name}::{v} {{ {bindings} }} => {{\n\
                             out.push_str(\"{{\\\"{v}\\\":\");\n\
                             {inner}\
                             out.push('}}');\n\
                             }}\n"
                        ));
                    }
                    Body::Tuple(n) => {
                        let bindings: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                        let pat = bindings.join(", ");
                        let mut inner = String::new();
                        if *n == 1 {
                            inner.push_str("serde::Serialize::serialize_json(f0, out);\n");
                        } else {
                            inner.push_str("out.push('[');\n");
                            for (k, b) in bindings.iter().enumerate() {
                                if k > 0 {
                                    inner.push_str("out.push(',');\n");
                                }
                                inner.push_str(&format!(
                                    "serde::Serialize::serialize_json({b}, out);\n"
                                ));
                            }
                            inner.push_str("out.push(']');\n");
                        }
                        arms.push_str(&format!(
                            "{name}::{v}({pat}) => {{\n\
                             out.push_str(\"{{\\\"{v}\\\":\");\n\
                             {inner}\
                             out.push('}}');\n\
                             }}\n"
                        ));
                    }
                    Body::Enum(_) => unreachable!("nested enum body"),
                }
            }
            format!("match self {{\n{arms}}}\n")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl serde::Serialize for {name} {{\n\
         fn serialize_json(&self, out: &mut ::std::string::String) {{\n\
         {body}\
         }}\n\
         }}\n"
    )
}

/// Emit the expression building one named-field body (`Type` or
/// `Type::Variant`) from the object value `src`: an unknown-field check
/// followed by per-field extraction (absent `Option` fields become `None`).
fn named_build_code(constructor: &str, fields: &[String], src: &str) -> String {
    let allowed: Vec<String> = fields.iter().map(|f| format!("\"{f}\"")).collect();
    let mut code = format!(
        "{{\n\
         serde::de::check_fields({src}, &[{}], __path)?;\n\
         ::std::result::Result::Ok({constructor} {{\n",
        allowed.join(", ")
    );
    for f in fields {
        code.push_str(&format!(
            "{f}: serde::de::field({src}, \"{f}\", __path)?,\n"
        ));
    }
    code.push_str("})\n}\n");
    code
}

/// Emit the expression building one tuple body from the array value `src`.
fn tuple_build_code(constructor: &str, n: usize, src: &str) -> String {
    if n == 1 {
        // Newtype: the payload is the inner value itself.
        return format!(
            "::std::result::Result::Ok({constructor}(serde::Deserialize::deserialize_json({src}, __path)?))\n"
        );
    }
    let mut code = format!(
        "{{\n\
         let __items = serde::de::elements({src}, {n}, __path)?;\n\
         ::std::result::Result::Ok({constructor}(\n"
    );
    for k in 0..n {
        code.push_str(&format!(
            "serde::de::element(&__items[{k}], {k}, __path)?,\n"
        ));
    }
    code.push_str("))\n}\n");
    code
}

fn generate_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Named(fields) => named_build_code(name, fields, "__v"),
        Body::Tuple(n) => tuple_build_code(name, *n, "__v"),
        Body::Unit => format!(
            "{{ serde::de::expect_null(__v, __path)?; ::std::result::Result::Ok({name}) }}\n"
        ),
        Body::Enum(variants) => {
            let variant_names: Vec<String> =
                variants.iter().map(|(v, _)| format!("\"{v}\"")).collect();
            let list = variant_names.join(", ");
            // String form: unit variants only.
            let mut unit_arms = String::new();
            for (v, vbody) in variants {
                if matches!(vbody, Body::Unit) {
                    unit_arms.push_str(&format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n"
                    ));
                }
            }
            // Object form: payload variants (plus `{\"Unit\": null}` for
            // symmetry with what a hand-written encoder might emit).
            let mut tagged_arms = String::new();
            for (v, vbody) in variants {
                let build = match vbody {
                    Body::Unit => format!(
                        "{{ serde::de::expect_null(__inner, __path)?; ::std::result::Result::Ok({name}::{v}) }}\n"
                    ),
                    Body::Named(fields) => {
                        named_build_code(&format!("{name}::{v}"), fields, "__inner")
                    }
                    Body::Tuple(n) => tuple_build_code(&format!("{name}::{v}"), *n, "__inner"),
                    Body::Enum(_) => unreachable!("nested enum body"),
                };
                tagged_arms.push_str(&format!(
                    "\"{v}\" => {{\n\
                     __path.push_field(\"{v}\");\n\
                     let __r = {build};\n\
                     __path.pop();\n\
                     __r\n\
                     }}\n"
                ));
            }
            format!(
                "{{\n\
                 const __VARIANTS: &[&str] = &[{list}];\n\
                 match serde::de::enum_form(__v, __path)? {{\n\
                 serde::de::EnumForm::Unit(__tag) => match __tag {{\n\
                 {unit_arms}\
                 __other => ::std::result::Result::Err(serde::de::Error::unknown_variant(__other, __VARIANTS, __v.line(), __path)),\n\
                 }},\n\
                 serde::de::EnumForm::Tagged(__tag, __inner) => match __tag {{\n\
                 {tagged_arms}\
                 __other => ::std::result::Result::Err(serde::de::Error::unknown_variant(__other, __VARIANTS, __v.line(), __path)),\n\
                 }},\n\
                 }}\n\
                 }}\n"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all)]\n\
         impl<'de> serde::Deserialize<'de> for {name} {{\n\
         fn deserialize_json(__v: &serde::de::Value, __path: &mut serde::de::Path) -> ::std::result::Result<Self, serde::de::Error> {{\n\
         {body}\
         }}\n\
         }}\n"
    )
}
