//! # restricted_slow_start — *Restricted Slow-Start for TCP*, reproduced
//!
//! A workspace-spanning reproduction of **Allcock, Hegde, Kettimuthu —
//! "Restricted Slow-Start for TCP" (IEEE CLUSTER 2005)**. The paper's
//! observation: on Linux, TCP congestion events are not only caused by the
//! network. Saturating the *sending host's* interface queue (`txqueuelen`)
//! raises **send-stall** pseudo-congestion events that halve the window
//! exactly like real loss, collapsing throughput on large
//! bandwidth-delay-product paths. Its fix: replace blind exponential
//! slow-start with a PID controller that paces window growth to hold the
//! interface queue at 90 % of capacity — the queue never overflows, so the
//! pathology never triggers.
//!
//! This crate is the facade over the layered workspace (see the README for
//! the crate diagram): it re-exports the whole public API of [`rss_core`],
//! which assembles the substrate crates — `rss-sim` (deterministic
//! discrete-event engine), `rss-net` (links/queues/topologies), `rss-host`
//! (the IFQ transmit path), `rss-tcp` (sans-IO transport), `rss-cc`
//! (pluggable congestion control with a variant registry), `rss-control`
//! (PID + Ziegler–Nichols), `rss-web100` (instrumentation) and
//! `rss-workload` (application models).
//!
//! ## Quick start
//!
//! ```
//! use restricted_slow_start::{run, Scenario, SimDuration};
//!
//! // The paper's §4 testbed (100 Mbit/s, 60 ms RTT, txqueuelen 100),
//! // shortened for a doctest: standard TCP vs restricted slow-start.
//! let quick = |sc: Scenario| run(&sc.with_duration(SimDuration::from_millis(800)));
//! let std_report = quick(Scenario::paper_testbed_standard());
//! let rss_report = quick(Scenario::paper_testbed_restricted());
//!
//! // Both move data; runs are deterministic and bit-exact per seed.
//! assert!(std_report.flows[0].vars.data_bytes_out > 0);
//! assert!(rss_report.flows[0].vars.data_bytes_out > 0);
//! ```
//!
//! Entry points: [`Scenario`] (declarative experiment description with
//! `paper_testbed*` constructors), [`run`] / [`run_many`] (deterministic,
//! optionally multi-threaded execution), [`RunReport`] / [`FlowReport`]
//! (Web100 snapshots, stall logs, cwnd/IFQ/goodput series) and
//! [`plot`] for terminal rendering. Reproduce the paper's
//! figures with `cargo run --release --example figure1_send_stalls` or
//! `cargo run --release -p rss-bench --bin experiments -- all`.

#![warn(missing_docs)]

pub use rss_core::*;
