pub use rss_core::*;
