//! `rss` — the scenario-file runner.
//!
//! Scenarios are data (`scenarios/*.json`, schema in `rss_core::spec`); this
//! CLI expands them (sweep grids included), executes them deterministically
//! in parallel with duplicate cells deduped, and writes the per-flow summary
//! CSV the golden-gated CI matrix diffs.
//!
//! ```text
//! rss run scenarios/quickstart.json [--out results]
//! rss list [scenarios]
//! rss list --variants
//! rss validate scenarios            # a directory validates every *.json inside
//! rss validate --recursive scenarios  # ... descending into faults/, stress/, ...
//! rss validate scenarios/*.json
//! ```

use restricted_slow_start::plot::ascii_table;
use restricted_slow_start::{
    cc_registry, fairness_csv, fairness_reports, results_csv, run_many_memo_timed, FairnessReport,
    ScenarioSpec, ShardsDef,
};
use std::path::{Component, Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  rss run <scenario.json> [--out <dir>] [--shards <n|auto>] [--stats]\n                                          execute and write artifacts (--shards overrides\n                                          the file's executor choice; results are identical;\n                                          --stats prints engine queue counters per run)\n  rss list [<dir>]                        summarize scenario files (default: scenarios/)\n  rss list --variants [--markdown]        list the registered congestion-control variants\n                                          (--markdown emits docs/VARIANTS.md)\n  rss validate [--recursive] <path>...    parse + semantic-check, no execution\n                                          (a directory validates every *.json inside it;\n                                          --recursive descends into subdirectories)"
    );
    ExitCode::from(2)
}

/// Normalize an artifact path for display. A scenario's configured artifact
/// name may be absolute (`PathBuf::join` then discards the output
/// directory) or drag `./`/`..` segments through the join; show the
/// lexically-cleaned result instead of the raw concatenation, so the
/// printed path is exactly what the user can pass to other tools from the
/// CWD (or anywhere, when absolute).
fn display_artifact_path(path: &Path) -> String {
    let mut out = PathBuf::new();
    for comp in path.components() {
        match comp {
            Component::CurDir => {}
            Component::ParentDir => match out.components().next_back() {
                // `a/b/.. -> a`; a leading run of `..` (or one past the
                // root, which is the root itself) cannot be cancelled.
                Some(Component::Normal(_)) => {
                    out.pop();
                }
                Some(Component::RootDir) | Some(Component::Prefix(_)) => {}
                _ => out.push(".."),
            },
            other => out.push(other.as_os_str()),
        }
    }
    if out.as_os_str().is_empty() {
        ".".to_string()
    } else {
        out.display().to_string()
    }
}

/// Friendly pre-flight for a scenario-file argument: a missing path or a
/// non-`.json` file gets a message naming the path and pointing at
/// `rss list`, instead of a raw parser/IO error.
fn check_scenario_path(path: &Path) -> Result<(), String> {
    if !path.exists() {
        return Err(format!(
            "scenario file `{}` does not exist — `rss list` shows the available scenario files",
            path.display()
        ));
    }
    if path.extension().is_none_or(|x| x != "json") {
        return Err(format!(
            "`{}` is not a .json scenario file — `rss list` shows the available scenario files",
            path.display()
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("list") => cmd_list(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]),
        _ => usage(),
    }
}

/// Parse a `--shards` argument: a positive integer or `auto`.
fn parse_shards(arg: &str) -> Result<ShardsDef, String> {
    if arg == "auto" {
        return Ok(ShardsDef::Auto);
    }
    match arg.parse::<u32>() {
        Ok(n) if n >= 1 => Ok(ShardsDef::Count(n)),
        _ => Err(format!(
            "--shards expects a positive integer or `auto`, got `{arg}`"
        )),
    }
}

fn cmd_run(args: &[String]) -> ExitCode {
    let mut file = None;
    let mut out_dir = PathBuf::from("results");
    let mut shards_override = None;
    let mut stats = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--stats" => stats = true,
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => out_dir = PathBuf::from(dir),
                    None => return usage(),
                }
            }
            "--shards" => {
                i += 1;
                match args.get(i).map(|a| parse_shards(a)) {
                    Some(Ok(sh)) => shards_override = Some(sh),
                    Some(Err(msg)) => {
                        eprintln!("error: {msg}");
                        return ExitCode::from(2);
                    }
                    None => return usage(),
                }
            }
            a if file.is_none() => file = Some(PathBuf::from(a)),
            _ => return usage(),
        }
        i += 1;
    }
    let Some(file) = file else { return usage() };
    if let Err(msg) = check_scenario_path(&file) {
        eprintln!("error: {msg}");
        return ExitCode::FAILURE;
    }

    let mut spec = match ScenarioSpec::load(&file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(sh) = shards_override {
        // Override the file's executor choice for every expanded run.
        // Results are shard-count-invariant, so this never changes the
        // artifacts — only the wall clock.
        spec.shards = Some(sh);
    }
    let runs = match spec.expand() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {}: {e}", file.display());
            return ExitCode::FAILURE;
        }
    };

    let scenarios: Vec<_> = runs.iter().map(|r| r.scenario.clone()).collect();
    let (timed_reports, unique) = run_many_memo_timed(&scenarios);
    let (reports, walls): (Vec<_>, Vec<f64>) = timed_reports.into_iter().unzip();
    println!(
        "{}: {} run(s) across {} cell(s), {} unique simulation(s)",
        spec.name,
        runs.len(),
        spec.cells(),
        unique
    );
    if let Some(comment) = &spec.comment {
        println!("{comment}");
    }

    let rows: Vec<Vec<String>> = runs
        .iter()
        .zip(reports.iter().zip(&walls))
        .map(|(er, (rep, wall_ms))| {
            let sc = &er.scenario;
            vec![
                er.cell.to_string(),
                er.label.clone(),
                format!("{}", sc.path.rate_bps as f64 / 1e6),
                format!("{}", sc.path.rtt.as_nanos() as f64 / 1e6),
                sc.host.txqueuelen.to_string(),
                sc.flows.len().to_string(),
                format!("{:.2}", rep.total_goodput_bps() / 1e6),
                rep.total_stalls().to_string(),
                rep.events_processed.to_string(),
                format!("{wall_ms:.1}"),
                format!(
                    "{:.2}",
                    rep.events_processed as f64 / (wall_ms / 1e3).max(1e-9) / 1e6
                ),
            ]
        })
        .collect();
    println!(
        "{}",
        ascii_table(
            &[
                "cell",
                "run",
                "rate Mbit/s",
                "RTT ms",
                "txq",
                "flows",
                "goodput Mbit/s",
                "stalls",
                "events",
                "wall ms",
                "Mev/s"
            ],
            &rows
        )
    );

    // Engine queue counters on request: serial runs expose the calendar
    // wheel's placement/cancellation telemetry; sharded runs show "-" (the
    // counters are not grouping-invariant, so reports omit them there).
    if stats {
        let rows: Vec<Vec<String>> = runs
            .iter()
            .zip(&reports)
            .map(|(er, rep)| {
                let mut row = vec![er.cell.to_string(), er.label.clone()];
                match &rep.engine {
                    Some(q) => row.extend([
                        q.scheduled.to_string(),
                        q.pops.to_string(),
                        format!("{:.1}", q.wheel_hit_rate() * 100.0),
                        q.cancelled.to_string(),
                        format!("{:.1}", q.tombstone_ratio() * 100.0),
                        q.far_migrations.to_string(),
                    ]),
                    None => row.extend(std::iter::repeat_n("-".to_string(), 6)),
                }
                row
            })
            .collect();
        println!("engine queue counters (serial runs only; sharded executors omit them):");
        println!(
            "{}",
            ascii_table(
                &[
                    "cell",
                    "run",
                    "scheduled",
                    "pops",
                    "wheel hit %",
                    "cancelled",
                    "tombstone %",
                    "far migrations"
                ],
                &rows
            )
        );
    }

    // Recovery & watchdog summary: only printed when fault injection left a
    // trace (an RTO episode, or a truncated run) so ordinary scenarios keep
    // their familiar output.
    let eventful = reports
        .iter()
        .any(|r| r.truncated.is_some() || r.flows.iter().any(|f| f.rto_episodes > 0));
    if eventful {
        let rows: Vec<Vec<String>> = runs
            .iter()
            .zip(&reports)
            .map(|(er, rep)| {
                let episodes: u64 = rep.flows.iter().map(|f| f.rto_episodes).sum();
                let max_backoff = rep
                    .flows
                    .iter()
                    .map(|f| f.rto_max_backoff)
                    .max()
                    .unwrap_or(0);
                let max_recovery = rep
                    .flows
                    .iter()
                    .filter_map(|f| f.rto_max_recovery_s)
                    .fold(None::<f64>, |m, v| Some(m.map_or(v, |m| m.max(v))));
                vec![
                    er.cell.to_string(),
                    er.label.clone(),
                    episodes.to_string(),
                    format!("\u{d7}{}", 1u64 << max_backoff),
                    max_recovery
                        .map(|t| format!("{t:.3}"))
                        .unwrap_or_else(|| "-".into()),
                    rep.truncated.clone().unwrap_or_else(|| "-".into()),
                ]
            })
            .collect();
        println!("recovery under faults (RTO episodes, deepest backoff, slowest recovery):");
        println!(
            "{}",
            ascii_table(
                &[
                    "cell",
                    "run",
                    "RTO episodes",
                    "max backoff",
                    "max recovery s",
                    "truncated"
                ],
                &rows
            )
        );
    }

    // Fairness & convergence metrics, when the scenario opts in — computed
    // once, shared by the printed table and the CSV artifact.
    let frs: Option<Vec<FairnessReport>> = spec
        .fairness
        .as_ref()
        .map(|_| fairness_reports(&spec, &reports));
    if let (Some(def), Some(frs)) = (&spec.fairness, &frs) {
        let (window_s, eps) = (def.window_s(), def.eps());
        let rows: Vec<Vec<String>> = runs
            .iter()
            .zip(frs)
            .map(|(er, fr)| {
                let variants = fr
                    .variants
                    .iter()
                    .map(|v| {
                        format!(
                            "{}\u{d7}{} {:.2} Mbit/s, {} stalls",
                            v.algo,
                            v.flows,
                            v.goodput_bps / 1e6,
                            v.stalls
                        )
                    })
                    .collect::<Vec<_>>()
                    .join("; ");
                vec![
                    er.cell.to_string(),
                    er.label.clone(),
                    format!("{:.4}", fr.jain),
                    fr.convergence_s
                        .map(|t| format!("{t:.2}"))
                        .unwrap_or_else(|| "never".into()),
                    variants,
                ]
            })
            .collect();
        println!(
            "fairness over {window_s} s goodput windows (converged when Jain \u{2265} {}):",
            1.0 - eps
        );
        println!(
            "{}",
            ascii_table(
                &[
                    "cell",
                    "run",
                    "Jain index",
                    "converged s",
                    "per-variant goodput"
                ],
                &rows
            )
        );
    }

    // Artifacts: the summary CSV always, the fairness CSV when the spec
    // opts in, full JSON reports on request. The output directory may not
    // exist on a fresh clone — create it first.
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("error: create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }
    let csv_path = out_dir.join(spec.csv_name());
    let csv = results_csv(&spec, &runs, &reports);
    if let Err(e) = std::fs::write(&csv_path, csv) {
        eprintln!("error: write {}: {e}", csv_path.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {}", display_artifact_path(&csv_path));

    if let (Some(name), Some(frs)) = (spec.fairness_csv_name(), &frs) {
        let fcsv_path = out_dir.join(name);
        if let Err(e) = std::fs::write(&fcsv_path, fairness_csv(&spec, &runs, frs)) {
            eprintln!("error: write {}: {e}", fcsv_path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {}", display_artifact_path(&fcsv_path));
    }

    if let Some(json_name) = spec.output.as_ref().and_then(|o| o.json.clone()) {
        // Labels/names are user-controlled: escape them properly instead of
        // interpolating raw (a quote in a label must not break the artifact).
        let mut doc = String::from("{\"scenario\":");
        serde::write_json_escaped(&spec.name, &mut doc);
        doc.push_str(",\"runs\":[");
        for (i, (er, rep)) in runs.iter().zip(&reports).enumerate() {
            if i > 0 {
                doc.push(',');
            }
            doc.push_str("{\"label\":");
            serde::write_json_escaped(&er.label, &mut doc);
            doc.push_str(&format!(
                ",\"cell\":{},\"report\":{}}}",
                er.cell,
                rep.to_json()
            ));
        }
        doc.push_str("]}\n");
        let json_path = out_dir.join(json_name);
        if let Err(e) = std::fs::write(&json_path, doc) {
            eprintln!("error: write {}: {e}", json_path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {}", display_artifact_path(&json_path));
    }
    ExitCode::SUCCESS
}

fn scenario_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|x| x == "json"))
                .collect()
        })
        .unwrap_or_default();
    files.sort();
    files
}

/// `rss list --variants`: the congestion-control registry as a table — the
/// full menu a scenario file's `cc` field accepts. `--markdown` emits the
/// registry-generated variant gallery instead (`docs/VARIANTS.md` is
/// exactly this output; CI regenerates and diffs it, so the gallery cannot
/// drift from the registry).
fn cmd_list_variants(markdown: bool) -> ExitCode {
    if markdown {
        print!("{}", cc_registry::markdown_gallery());
        return ExitCode::SUCCESS;
    }
    let rows: Vec<Vec<String>> = cc_registry::variants()
        .iter()
        .map(|v| {
            vec![
                v.info.name.to_string(),
                v.info.algo.to_string(),
                v.info.summary.to_string(),
                v.info.params.to_string(),
                v.info.reference.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        ascii_table(
            &["variant", "algorithm", "summary", "params", "reference"],
            &rows
        )
    );
    ExitCode::SUCCESS
}

fn cmd_list(args: &[String]) -> ExitCode {
    if args.first().map(String::as_str) == Some("--variants") {
        return match args.get(1).map(String::as_str) {
            None => cmd_list_variants(false),
            Some("--markdown") if args.len() == 2 => cmd_list_variants(true),
            _ => usage(),
        };
    }
    let dir = PathBuf::from(args.first().map(String::as_str).unwrap_or("scenarios"));
    let files = scenario_files(&dir);
    if files.is_empty() {
        eprintln!("no scenario files in {}", dir.display());
        return ExitCode::FAILURE;
    }
    let mut rows = Vec::new();
    for f in &files {
        match ScenarioSpec::load(f) {
            Ok(spec) => rows.push(vec![
                spec.name.clone(),
                spec.runs.len().to_string(),
                spec.cells().to_string(),
                f.display().to_string(),
                spec.comment.clone().unwrap_or_default(),
            ]),
            Err(e) => rows.push(vec![
                "<invalid>".into(),
                "-".into(),
                "-".into(),
                f.display().to_string(),
                e.to_string(),
            ]),
        }
    }
    println!(
        "{}",
        ascii_table(&["name", "runs", "cells", "file", "comment"], &rows)
    );
    ExitCode::SUCCESS
}

fn validate_one(path: &Path, failed: &mut bool) {
    if let Err(msg) = check_scenario_path(path) {
        eprintln!("invalid: {msg}");
        *failed = true;
        return;
    }
    // `load` errors already carry the file name; prefix it onto the
    // semantic (expand-time) errors only.
    let checked = ScenarioSpec::load(path).and_then(|spec| {
        spec.validate()
            .map(|()| spec)
            .map_err(|e| restricted_slow_start::SpecError {
                msg: format!("{}: {e}", path.display()),
            })
    });
    match checked {
        Ok(spec) => println!(
            "ok: {} ({} run(s) × {} cell(s))",
            path.display(),
            spec.runs.len(),
            spec.cells()
        ),
        Err(e) => {
            eprintln!("invalid: {e}");
            *failed = true;
        }
    }
}

/// Every scenario file under `dir`, recursively, in a deterministic
/// (sorted, depth-first) order.
fn scenario_files_recursive(dir: &Path) -> Vec<PathBuf> {
    let mut files = scenario_files(dir);
    let mut subdirs: Vec<PathBuf> = std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.is_dir())
                .collect()
        })
        .unwrap_or_default();
    subdirs.sort();
    for sub in subdirs {
        files.extend(scenario_files_recursive(&sub));
    }
    files
}

fn cmd_validate(args: &[String]) -> ExitCode {
    let mut recursive = false;
    let paths: Vec<&String> = args
        .iter()
        .filter(|a| {
            if a.as_str() == "--recursive" {
                recursive = true;
                false
            } else {
                true
            }
        })
        .collect();
    if paths.is_empty() {
        return usage();
    }
    let mut failed = false;
    for arg in paths {
        let path = Path::new(arg);
        if path.is_dir() {
            // A directory argument validates every scenario file inside it
            // (the CI matrix passes `scenarios` as one argument);
            // `--recursive` descends into subdirectories (e.g. the
            // `scenarios/faults/` family) too.
            let files = if recursive {
                scenario_files_recursive(path)
            } else {
                scenario_files(path)
            };
            if files.is_empty() {
                eprintln!("invalid: no *.json scenario files in `{}`", path.display());
                failed = true;
                continue;
            }
            for f in &files {
                validate_one(f, &mut failed);
            }
        } else {
            validate_one(path, &mut failed);
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_path_error_names_the_path_and_suggests_list() {
        let err = check_scenario_path(Path::new("scenarios/no_such_file.json")).unwrap_err();
        assert!(
            err.contains("`scenarios/no_such_file.json` does not exist"),
            "{err}"
        );
        assert!(err.contains("rss list"), "{err}");
    }

    #[test]
    fn non_json_path_error_names_the_path_and_suggests_list() {
        // Any checked-in non-JSON file works as the probe.
        let err = check_scenario_path(Path::new("README.md")).unwrap_err();
        assert!(
            err.contains("`README.md` is not a .json scenario file"),
            "{err}"
        );
        assert!(err.contains("rss list"), "{err}");
        // Extensionless paths get the same treatment.
        let err = check_scenario_path(Path::new("Cargo.lock")).unwrap_err();
        assert!(err.contains("not a .json scenario file"), "{err}");
    }

    #[test]
    fn existing_scenario_passes_the_preflight() {
        assert!(check_scenario_path(Path::new("scenarios/quickstart.json")).is_ok());
    }

    #[test]
    fn shards_flag_parses_counts_and_auto_only() {
        assert_eq!(parse_shards("1").unwrap(), ShardsDef::Count(1));
        assert_eq!(parse_shards("8").unwrap(), ShardsDef::Count(8));
        assert_eq!(parse_shards("auto").unwrap(), ShardsDef::Auto);
        for bad in ["0", "-2", "2.5", "many", "Auto", ""] {
            let err = parse_shards(bad).unwrap_err();
            assert!(err.contains("positive integer or `auto`"), "{bad}: {err}");
        }
    }

    #[test]
    fn displayed_artifact_paths_are_normalized() {
        // Relative joins print relative to the CWD, cleaned of `./`.
        assert_eq!(
            display_artifact_path(Path::new("results/./scenario_x.csv")),
            "results/scenario_x.csv"
        );
        // `..` segments are resolved lexically.
        assert_eq!(
            display_artifact_path(Path::new("results/../fair.csv")),
            "fair.csv"
        );
        assert_eq!(
            display_artifact_path(Path::new("a/b/../../c/x.csv")),
            "c/x.csv"
        );
        // An absolute configured artifact name bypassed the output
        // directory in the join; it must print absolute, untouched.
        assert_eq!(
            display_artifact_path(Path::new("/tmp/out/./fair.csv")),
            "/tmp/out/fair.csv"
        );
        assert_eq!(display_artifact_path(Path::new("/../x.csv")), "/x.csv");
        // Uncancellable leading `..` survives; an empty result is the CWD.
        assert_eq!(display_artifact_path(Path::new("../x.csv")), "../x.csv");
        assert_eq!(display_artifact_path(Path::new("a/..")), ".");
    }
}
