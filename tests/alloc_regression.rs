//! Steady-state allocation regression test for the many-flow hot path.
//!
//! The packet arena, the calendar wheel's lazy cancellation, and the batched
//! shard envelopes exist so that the per-event simulation loop allocates
//! *nothing* once a run is warmed up: every per-packet and per-timer buffer
//! is pooled. This test pins that property with a counting global allocator:
//! it runs the same many-flow dumbbell at two horizons and asserts that the
//! *extra* events of the longer run cost ~0 allocations each. Setup
//! (world construction, Vec growth to high-water marks) and report
//! finalization allocate freely in both runs and cancel out in the
//! difference; only per-event churn would scale with the horizon.

use restricted_slow_start::{run, AppModel, CcAlgorithm, FlowSpec, Scenario, SimDuration, SimTime};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Counts heap allocations while enabled; forwards everything to the system
/// allocator.
struct CountingAlloc;

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// The `manyflow_dumbbell` geometry at test scale: enough flows that any
/// per-packet or per-timer allocation would dominate the count, short
/// enough to run twice in a test.
fn manyflow(duration: SimDuration) -> Scenario {
    let mut sc = Scenario::paper_testbed(CcAlgorithm::Reno)
        .with_rate(1_000_000_000)
        .with_rtt(SimDuration::from_millis(60))
        .with_duration(duration)
        .with_access_delay(SimDuration::from_millis(1));
    sc.path.router_queue_pkts = 1000;
    sc.flows = (0..2_000)
        .map(|_| FlowSpec {
            algo: CcAlgorithm::Reno,
            app: AppModel::Bulk { bytes: None },
            start: SimTime::ZERO,
        })
        .collect();
    sc.web100_stride = 1024;
    sc.sample_interval = SimDuration::from_millis(500);
    sc
}

/// Run a scenario, returning `(allocations, events)`.
fn counted_run(sc: &Scenario) -> (u64, u64) {
    ALLOC_COUNT.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    let report = run(sc);
    COUNTING.store(false, Ordering::SeqCst);
    (ALLOC_COUNT.load(Ordering::SeqCst), report.events_processed)
}

#[test]
fn steady_state_allocates_nothing_per_event() {
    // Warm-up run so one-time lazy initialization (thread locals, the run
    // cache, …) does not pollute the counted runs.
    let _ = run(&manyflow(SimDuration::from_millis(100)));

    let (allocs_short, events_short) = counted_run(&manyflow(SimDuration::from_millis(500)));
    let (allocs_long, events_long) = counted_run(&manyflow(SimDuration::from_millis(1500)));
    assert!(
        events_long > events_short,
        "horizons must differ in event count: {events_short} vs {events_long}"
    );

    let extra_events = events_long - events_short;
    let extra_allocs = allocs_long.saturating_sub(allocs_short);
    let per_event = extra_allocs as f64 / extra_events as f64;
    // Pooled buffers mean the extra simulated second costs ~0 allocations
    // per extra event: measured ~0.04, all of it amortized doubling growth
    // of the per-flow telemetry series (cwnd/acked/stall/congestion
    // timelines across 2000 flows), which scales with log of run length,
    // not with events. A hot-path regression — any per-packet, per-hop or
    // per-timer allocation — costs >= 1 per event and fails by an order of
    // magnitude.
    assert!(
        per_event < 0.08,
        "steady state allocates {per_event:.4} allocs/event \
         ({extra_allocs} allocations over {extra_events} extra events); \
         the hot path must not allocate per event"
    );
}
