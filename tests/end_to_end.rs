//! Cross-crate integration tests: full host + network + TCP stack runs.
//!
//! These exercise the exact code paths the paper's experiments use and pin
//! down the transport invariants the benches rely on: byte-exact delivery,
//! loss recovery, determinism, and the paper's qualitative result.

use restricted_slow_start::{
    run, run_many, AppModel, CcAlgorithm, CrossSpec, FlowSpec, RssConfig, Scenario, SimDuration,
    SimTime, StallResponse, TrafficPattern,
};

/// A small, fast path for functional tests (not the paper scenario).
fn small(algo: CcAlgorithm) -> Scenario {
    let mut sc = Scenario::paper_testbed(algo)
        .with_rate(20_000_000)
        .with_rtt(SimDuration::from_millis(20))
        .with_duration(SimDuration::from_secs(4));
    sc.web100_stride = 4;
    sc
}

#[test]
fn bounded_transfer_delivers_every_byte_exactly_once() {
    for &bytes in &[1u64, 999, 1448, 1449, 100_000, 2_000_003] {
        let mut sc = small(CcAlgorithm::Reno);
        sc.flows[0].app = AppModel::Bulk { bytes: Some(bytes) };
        sc.stop_when_complete = true;
        sc.duration = SimDuration::from_secs(60);
        let r = run(&sc);
        let f = &r.flows[0];
        assert_eq!(
            f.receiver_delivered_bytes, bytes,
            "wrong byte count delivered for {bytes}-byte transfer"
        );
        assert_eq!(f.vars.thru_bytes_acked, bytes);
        assert!(f.completed_at_s.is_some(), "transfer {bytes} unfinished");
        // Loss-free path: nothing retransmitted, nothing duplicated.
        assert_eq!(f.vars.pkts_retrans, 0);
        assert_eq!(f.receiver_dup_segments, 0);
    }
}

#[test]
fn transfer_survives_random_loss() {
    for seed in 1..=3u64 {
        let mut sc = small(CcAlgorithm::Reno).with_seed(seed);
        sc.path.loss_prob = 0.02;
        sc.flows[0].app = AppModel::Bulk {
            bytes: Some(400_000),
        };
        sc.stop_when_complete = true;
        sc.duration = SimDuration::from_secs(120);
        let r = run(&sc);
        let f = &r.flows[0];
        assert_eq!(
            f.receiver_delivered_bytes, 400_000,
            "delivery broken under loss (seed {seed})"
        );
        assert!(f.completed_at_s.is_some(), "did not finish (seed {seed})");
        assert!(
            f.vars.pkts_retrans > 0,
            "2% loss must force retransmissions (seed {seed})"
        );
    }
}

#[test]
fn transfer_survives_heavy_loss_via_timeouts() {
    let mut sc = small(CcAlgorithm::Reno);
    sc.path.loss_prob = 0.15;
    sc.flows[0].app = AppModel::Bulk {
        bytes: Some(50_000),
    };
    sc.stop_when_complete = true;
    sc.duration = SimDuration::from_secs(300);
    let r = run(&sc);
    let f = &r.flows[0];
    assert_eq!(f.receiver_delivered_bytes, 50_000);
    assert!(
        f.vars.timeouts > 0 || f.vars.fast_retran > 0,
        "recovery machinery unused under 15% loss? {:?}",
        f.vars
    );
}

#[test]
fn restricted_survives_loss_too() {
    let mut sc = small(CcAlgorithm::Restricted(RssConfig::tuned_for(
        20_000_000, 1500,
    )));
    sc.path.loss_prob = 0.03;
    sc.flows[0].app = AppModel::Bulk {
        bytes: Some(300_000),
    };
    sc.stop_when_complete = true;
    sc.duration = SimDuration::from_secs(120);
    let r = run(&sc);
    assert_eq!(r.flows[0].receiver_delivered_bytes, 300_000);
}

#[test]
fn whole_run_reports_are_deterministic() {
    let mk = || {
        let mut sc = small(CcAlgorithm::Restricted(RssConfig::tuned_for(
            20_000_000, 1500,
        )));
        sc.path.loss_prob = 0.01;
        sc.cross = vec![CrossSpec {
            pattern: TrafficPattern::Poisson {
                rate_bps: 2_000_000,
                pkt_size: 1000,
            },
            start: SimTime::ZERO,
            stop: None,
        }];
        sc
    };
    let a = run(&mk());
    let b = run(&mk());
    assert_eq!(
        a.flows[0].vars.data_bytes_out,
        b.flows[0].vars.data_bytes_out
    );
    assert_eq!(a.flows[0].vars.pkts_retrans, b.flows[0].vars.pkts_retrans);
    assert_eq!(a.flows[0].cwnd_series, b.flows[0].cwnd_series);
    assert_eq!(a.sender_ifq_series, b.sender_ifq_series);
    assert_eq!(a.cross_delivered_bytes, b.cross_delivered_bytes);
}

#[test]
fn delayed_acks_work_end_to_end() {
    use restricted_slow_start::AckPolicy;
    let mut sc = small(CcAlgorithm::Reno);
    sc.tcp.ack_policy = AckPolicy::Delayed {
        timeout: SimDuration::from_millis(200),
    };
    sc.flows[0].app = AppModel::Bulk {
        bytes: Some(500_000),
    };
    sc.stop_when_complete = true;
    sc.duration = SimDuration::from_secs(60);
    let r = run(&sc);
    let f = &r.flows[0];
    assert_eq!(f.receiver_delivered_bytes, 500_000);
    // Delayed ACKs: far fewer ACKs than segments.
    assert!(
        f.vars.ack_pkts_in < f.vars.pkts_out * 3 / 4,
        "acks {} vs pkts {}",
        f.vars.ack_pkts_in,
        f.vars.pkts_out
    );
}

#[test]
fn paper_shape_standard_stalls_restricted_does_not() {
    let std = run(&Scenario::paper_testbed_standard());
    let rss = run(&Scenario::paper_testbed_restricted());
    assert!(std.flows[0].vars.send_stall >= 1);
    assert_eq!(rss.flows[0].vars.send_stall, 0);
    assert!(rss.flows[0].goodput_bps > 1.2 * std.flows[0].goodput_bps);
    // The restricted controller parks the IFQ near 90% of txqueuelen.
    let tail: Vec<f64> = rss
        .sender_ifq_series
        .iter()
        .filter(|&&(t, _)| t > 10.0)
        .map(|&(_, v)| v)
        .collect();
    let mean = tail.iter().sum::<f64>() / tail.len() as f64;
    assert!(
        (85.0..95.0).contains(&mean),
        "IFQ should sit near the 90-packet set point, got {mean}"
    );
}

#[test]
fn stall_responses_differ_where_expected() {
    let mut ignore = Scenario::paper_testbed_standard();
    ignore.tcp.stall_response = StallResponse::Ignore;
    let cwr = run(&Scenario::paper_testbed_standard());
    let ign = run(&ignore);
    // Ignoring the signal keeps the NIC saturated (upper bound)...
    assert!(ign.flows[0].goodput_bps > cwr.flows[0].goodput_bps);
    // ...at the cost of a wildly inflated window (the "memory waste" §2
    // complains about, in congestion-window form).
    assert!(ign.flows[0].vars.max_cwnd > 10 * cwr.flows[0].vars.max_cwnd);
}

#[test]
fn periodic_app_is_sender_limited() {
    let mut sc = small(CcAlgorithm::Reno);
    sc.flows[0].app = AppModel::Periodic {
        burst_bytes: 20_000,
        interval: SimDuration::from_millis(200),
        count: Some(10),
    };
    sc.duration = SimDuration::from_secs(5);
    let r = run(&sc);
    let f = &r.flows[0];
    assert_eq!(f.receiver_delivered_bytes, 200_000);
    // An app writing 0.8 Mbit/s into a 20 Mbit/s path is sender-limited.
    let v = &f.vars;
    assert!(
        v.snd_lim_time_sender_ns > v.snd_lim_time_cwnd_ns,
        "expected sender-limited: {v:?}"
    );
}

#[test]
fn two_flows_on_separate_hosts_share_the_bottleneck() {
    let mut sc = small(CcAlgorithm::Reno);
    sc.flows = vec![
        FlowSpec::bulk(CcAlgorithm::Reno),
        FlowSpec {
            start: SimTime::from_millis(500),
            ..FlowSpec::bulk(CcAlgorithm::Reno)
        },
    ];
    sc.duration = SimDuration::from_secs(6);
    let r = run(&sc);
    assert_eq!(r.flows.len(), 2);
    assert!(r.flows[0].goodput_bps > 1e6);
    assert!(r.flows[1].goodput_bps > 1e6);
    // Combined goodput bounded by the line rate.
    assert!(r.total_goodput_bps() <= 20_000_000.0 * 1.01);
}

#[test]
fn cross_traffic_is_accounted() {
    let mut sc = small(CcAlgorithm::Reno);
    sc.cross = vec![CrossSpec {
        pattern: TrafficPattern::Cbr {
            rate_bps: 5_000_000,
            pkt_size: 1250,
        },
        start: SimTime::ZERO,
        stop: Some(SimTime::from_secs(2)),
    }];
    let r = run(&sc);
    assert!(r.cross_offered_bytes > 0);
    assert!(r.cross_delivered_bytes > 0);
    assert!(r.cross_delivered_bytes <= r.cross_offered_bytes);
    // CBR 5 Mbit/s for 2 s ≈ 1.25 MB offered.
    let expect = 5_000_000.0 / 8.0 * 2.0;
    let offered = r.cross_offered_bytes as f64;
    assert!(
        (offered - expect).abs() / expect < 0.05,
        "offered {offered} vs {expect}"
    );
}

#[test]
fn run_many_parallel_equals_sequential() {
    let scenarios: Vec<Scenario> = (0..6)
        .map(|i| {
            let mut sc = small(CcAlgorithm::Reno).with_seed(i + 1);
            sc.path.loss_prob = 0.01;
            sc
        })
        .collect();
    let parallel = run_many(&scenarios);
    for (i, sc) in scenarios.iter().enumerate() {
        let solo = run(sc);
        assert_eq!(
            parallel[i].flows[0].vars.data_bytes_out, solo.flows[0].vars.data_bytes_out,
            "scenario {i} differs between parallel and sequential execution"
        );
    }
}

#[test]
fn goodput_never_exceeds_line_rate() {
    for algo in [
        CcAlgorithm::Reno,
        CcAlgorithm::Restricted(RssConfig::tuned_for(20_000_000, 1500)),
        CcAlgorithm::Limited { max_ssthresh: None },
    ] {
        let r = run(&small(algo));
        assert!(
            r.flows[0].goodput_bps <= 20_000_000.0,
            "{algo:?} exceeded line rate: {}",
            r.flows[0].goodput_bps
        );
    }
}
