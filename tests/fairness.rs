//! End-to-end checks of the cross-variant fairness subsystem: the shipped
//! fairness scenarios expand, run, and report the metrics the acceptance
//! story names — a Jain index for the restricted-vs-ssthreshless pair,
//! convergence times for staggered starts, and per-variant aggregates —
//! with the byte-level gating left to the golden-gated CI matrix.

use restricted_slow_start::{
    cc_registry, fairness_csv, fairness_reports, run, FairnessReport, ScenarioSpec, SimTime,
};
use std::path::Path;

fn load(name: &str) -> ScenarioSpec {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("scenarios")
        .join(name);
    ScenarioSpec::load(&path).expect("scenario file loads")
}

#[test]
fn shared_bottleneck_reports_jain_for_the_restricted_vs_ssthreshless_pair() {
    let spec = load("fairness_shared_bottleneck.json");
    let def = spec.fairness.as_ref().expect("fairness block present");
    let runs = spec.expand().unwrap();
    let er = runs
        .iter()
        .find(|r| r.label == "restricted_vs_ssthreshless")
        .expect("the acceptance pair is in the file");
    let report = run(&er.scenario);
    let fr = FairnessReport::from_run(&report, def.window_s(), def.eps());
    assert!(
        fr.jain > 0.0 && fr.jain <= 1.0,
        "Jain index out of range: {}",
        fr.jain
    );
    let labels: Vec<&str> = fr.variants.iter().map(|v| v.algo.as_str()).collect();
    assert_eq!(labels, ["restricted", "ssthreshless"]);
    // Both variants move real traffic through the shared bottleneck.
    for v in &fr.variants {
        assert!(
            v.goodput_bps > 5e6,
            "{} starved at {} bit/s",
            v.algo,
            v.goodput_bps
        );
    }
    // The windowed series covers the whole run (30 s at a 1 s window).
    assert_eq!(fr.jain_series.len(), 30);
}

#[test]
fn staggered_scenario_defers_convergence_until_the_late_flow_joins() {
    let spec = load("fairness_staggered.json");
    let def = spec.fairness.as_ref().expect("fairness block present");
    let runs = spec.expand().unwrap();
    let er = runs
        .iter()
        .find(|r| r.label == "late_standard")
        .expect("symmetric staggered run present");
    assert_eq!(er.scenario.flows[1].start, SimTime::from_secs(8));
    let report = run(&er.scenario);
    let fr = FairnessReport::from_run(&report, def.window_s(), def.eps());
    let conv = fr
        .convergence_s
        .expect("a symmetric AIMD pair must converge");
    assert!(
        conv >= 8.0,
        "cannot converge before the second flow starts, got {conv}"
    );
    // Before the late flow joins, one flow holds everything: index ≈ 1/2.
    assert!(
        fr.jain_series[3].1 < 0.6,
        "early windows should be one-sided: {:?}",
        &fr.jain_series[..4]
    );
}

#[test]
fn fairness_csv_is_deterministic_and_carries_the_metrics() {
    let spec = load("fairness_shared_bottleneck.json");
    let runs: Vec<_> = spec
        .expand()
        .unwrap()
        .into_iter()
        .filter(|r| r.label == "highspeed_vs_scalable")
        .collect();
    let reports: Vec<_> = runs.iter().map(|r| run(&r.scenario)).collect();
    let frs = fairness_reports(&spec, &reports);
    let a = fairness_csv(&spec, &runs, &frs);
    let b = fairness_csv(&spec, &runs, &frs);
    assert_eq!(a, b, "fairness CSV must be byte-deterministic");
    assert!(a.starts_with("scenario,run,cell,window_s,eps,flow,variant,"));
    assert!(a.contains(",highspeed,"), "{a}");
    assert!(a.contains(",scalable,"), "{a}");
}

#[test]
fn both_new_variants_are_in_the_registry_menu() {
    for name in ["highspeed", "scalable"] {
        let v = cc_registry::find(name)
            .unwrap_or_else(|| panic!("`{name}` missing from `rss list --variants`"));
        assert!(!v.info.summary.is_empty());
        assert!(!v.info.showcase.is_empty());
    }
    // And the generated gallery mentions the fairness scenarios.
    let md = cc_registry::markdown_gallery();
    assert!(md.contains("fairness_shared_bottleneck.json"), "{md}");
}
