//! Workspace smoke test: the facade's headline doc-comment invariant.
//!
//! A fast cross-layer sanity check that exercises every crate in the
//! workspace (engine → net → host → tcp → control → web100 → workload →
//! core → facade) in well under a second: both paper testbed variants move
//! data, the restricted variant never stalls, and whole runs are bit-exact
//! reproducible.

use restricted_slow_start::{run, Scenario, SimDuration};

fn quick(sc: Scenario) -> restricted_slow_start::RunReport {
    run(&sc.with_duration(SimDuration::from_millis(800)))
}

#[test]
fn paper_testbeds_move_data() {
    let std_report = quick(Scenario::paper_testbed_standard());
    let rss_report = quick(Scenario::paper_testbed_restricted());
    assert!(
        std_report.flows[0].vars.data_bytes_out > 0,
        "standard testbed sent nothing"
    );
    assert!(
        rss_report.flows[0].vars.data_bytes_out > 0,
        "restricted testbed sent nothing"
    );
    // Even in the first 800 ms the standard stack has already stalled once
    // (Figure 1 puts the first staircase step at ~0.43 s); restricted never
    // does.
    assert!(std_report.flows[0].vars.send_stall >= 1);
    assert_eq!(rss_report.flows[0].vars.send_stall, 0);
}

#[test]
fn runs_are_deterministic() {
    for mk in [
        Scenario::paper_testbed_standard as fn() -> Scenario,
        Scenario::paper_testbed_restricted,
    ] {
        let a = quick(mk());
        let b = quick(mk());
        assert_eq!(
            a.flows[0].vars.data_bytes_out,
            b.flows[0].vars.data_bytes_out
        );
        assert_eq!(a.flows[0].vars.send_stall, b.flows[0].vars.send_stall);
        assert_eq!(a.flows[0].cwnd_series, b.flows[0].cwnd_series);
        assert_eq!(a.sender_ifq_series, b.sender_ifq_series);
    }
}
