//! Property-based integration tests: transport invariants must hold for
//! arbitrary (bounded) scenario parameters, not just the hand-picked ones.

use proptest::prelude::*;
use restricted_slow_start::{run, AppModel, CcAlgorithm, RssConfig, Scenario, SimDuration};

fn arb_algo() -> impl Strategy<Value = CcAlgorithm> {
    prop_oneof![
        Just(CcAlgorithm::Reno),
        Just(CcAlgorithm::Limited { max_ssthresh: None }),
        (1u64..=1000)
            .prop_map(|r| CcAlgorithm::Restricted(RssConfig::tuned_for(r * 1_000_000, 1500))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    /// Every byte of a bounded transfer is delivered in order, exactly once,
    /// regardless of path shape, queue sizes, loss and algorithm.
    #[test]
    fn delivery_invariant(
        rate_mbps in 5u64..200,
        rtt_ms in 2u64..80,
        txqueuelen in 10u32..300,
        loss_milli in 0u32..30,            // 0 .. 3% loss
        bytes in 1u64..600_000,
        algo in arb_algo(),
        seed in 1u64..1000,
    ) {
        let mut sc = Scenario::paper_testbed(algo)
            .with_rate(rate_mbps * 1_000_000)
            .with_rtt(SimDuration::from_millis(rtt_ms))
            .with_txqueuelen(txqueuelen)
            .with_seed(seed)
            .with_auto_rwnd();
        sc.path.loss_prob = loss_milli as f64 / 1000.0;
        sc.flows[0].app = AppModel::Bulk { bytes: Some(bytes) };
        sc.stop_when_complete = true;
        // Generous horizon so even lossy/small-window runs finish.
        sc.duration = SimDuration::from_secs(600);
        sc.web100_stride = 64;

        let r = run(&sc);
        let f = &r.flows[0];

        prop_assert_eq!(f.receiver_delivered_bytes, bytes,
            "in-order delivery broken");
        prop_assert_eq!(f.vars.thru_bytes_acked, bytes,
            "sender byte accounting broken");
        prop_assert!(f.completed_at_s.is_some(), "transfer never completed");
        // No data invented: the wire never carries more than what was sent.
        prop_assert!(f.vars.data_bytes_out >= bytes);
        // Goodput can never exceed the line rate.
        prop_assert!(f.goodput_bps <= rate_mbps as f64 * 1_000_000.0 * 1.001);
        // Loss-free paths must not retransmit.
        if loss_milli == 0 {
            prop_assert_eq!(f.vars.pkts_retrans, 0, "spurious retransmission");
        }
    }

    /// Determinism: the same scenario always produces the same counters.
    #[test]
    fn determinism_invariant(
        rate_mbps in 5u64..100,
        rtt_ms in 2u64..60,
        loss_milli in 0u32..40,
        seed in 1u64..500,
    ) {
        let mk = || {
            let mut sc = Scenario::paper_testbed_standard()
                .with_rate(rate_mbps * 1_000_000)
                .with_rtt(SimDuration::from_millis(rtt_ms))
                .with_seed(seed)
                .with_duration(SimDuration::from_millis(1200));
            sc.path.loss_prob = loss_milli as f64 / 1000.0;
            sc.web100_stride = 32;
            sc
        };
        let a = run(&mk());
        let b = run(&mk());
        prop_assert_eq!(a.flows[0].vars.data_bytes_out, b.flows[0].vars.data_bytes_out);
        prop_assert_eq!(a.flows[0].vars.pkts_retrans, b.flows[0].vars.pkts_retrans);
        prop_assert_eq!(a.flows[0].vars.send_stall, b.flows[0].vars.send_stall);
    }

    /// The restriction property: on a loss-free path the restricted scheme
    /// never stalls and never lets the IFQ exceed txqueuelen.
    #[test]
    fn restriction_invariant(
        rtt_ms in 5u64..100,
        txqueuelen in 20u32..300,
        seed in 1u64..100,
    ) {
        let mut sc = Scenario::paper_testbed(
            CcAlgorithm::Restricted(RssConfig::tuned()),
        )
        .with_rtt(SimDuration::from_millis(rtt_ms))
        .with_txqueuelen(txqueuelen)
        .with_seed(seed)
        .with_duration(SimDuration::from_secs(8))
        .with_auto_rwnd();
        sc.web100_stride = 32;

        let r = run(&sc);
        prop_assert_eq!(r.flows[0].vars.send_stall, 0, "restricted stalled");
        let peak = r
            .sender_ifq_series
            .iter()
            .map(|&(_, v)| v)
            .fold(0.0f64, f64::max);
        prop_assert!(peak <= txqueuelen as f64, "IFQ exceeded capacity");
    }
}
