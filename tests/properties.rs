//! Property-based integration tests: transport invariants must hold for
//! arbitrary (bounded) scenario parameters, not just the hand-picked ones.

use proptest::prelude::*;
use restricted_slow_start::{
    run, AppModel, CcAlgorithm, Flap, GilbertElliott, ImpairmentConfig, Jitter, OutageWindow,
    QueueDiscipline, RedParams, RssConfig, Scenario, SimDuration, SimTime,
};

fn arb_algo() -> impl Strategy<Value = CcAlgorithm> {
    prop_oneof![
        Just(CcAlgorithm::Reno),
        Just(CcAlgorithm::Limited { max_ssthresh: None }),
        (1u64..=1000)
            .prop_map(|r| CcAlgorithm::Restricted(RssConfig::tuned_for(r * 1_000_000, 1500))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    /// Every byte of a bounded transfer is delivered in order, exactly once,
    /// regardless of path shape, queue sizes, loss and algorithm.
    #[test]
    fn delivery_invariant(
        rate_mbps in 5u64..200,
        rtt_ms in 2u64..80,
        txqueuelen in 10u32..300,
        loss_milli in 0u32..30,            // 0 .. 3% loss
        bytes in 1u64..600_000,
        algo in arb_algo(),
        seed in 1u64..1000,
    ) {
        let mut sc = Scenario::paper_testbed(algo)
            .with_rate(rate_mbps * 1_000_000)
            .with_rtt(SimDuration::from_millis(rtt_ms))
            .with_txqueuelen(txqueuelen)
            .with_seed(seed)
            .with_auto_rwnd();
        sc.path.loss_prob = loss_milli as f64 / 1000.0;
        sc.flows[0].app = AppModel::Bulk { bytes: Some(bytes) };
        sc.stop_when_complete = true;
        // Generous horizon so even lossy/small-window runs finish.
        sc.duration = SimDuration::from_secs(600);
        sc.web100_stride = 64;

        let r = run(&sc);
        let f = &r.flows[0];

        prop_assert_eq!(f.receiver_delivered_bytes, bytes,
            "in-order delivery broken");
        prop_assert_eq!(f.vars.thru_bytes_acked, bytes,
            "sender byte accounting broken");
        prop_assert!(f.completed_at_s.is_some(), "transfer never completed");
        // No data invented: the wire never carries more than what was sent.
        prop_assert!(f.vars.data_bytes_out >= bytes);
        // Goodput can never exceed the line rate.
        prop_assert!(f.goodput_bps <= rate_mbps as f64 * 1_000_000.0 * 1.001);
        // Loss-free paths must not retransmit.
        if loss_milli == 0 {
            prop_assert_eq!(f.vars.pkts_retrans, 0, "spurious retransmission");
        }
    }

    /// Determinism: the same scenario always produces the same counters.
    #[test]
    fn determinism_invariant(
        rate_mbps in 5u64..100,
        rtt_ms in 2u64..60,
        loss_milli in 0u32..40,
        seed in 1u64..500,
    ) {
        let mk = || {
            let mut sc = Scenario::paper_testbed_standard()
                .with_rate(rate_mbps * 1_000_000)
                .with_rtt(SimDuration::from_millis(rtt_ms))
                .with_seed(seed)
                .with_duration(SimDuration::from_millis(1200));
            sc.path.loss_prob = loss_milli as f64 / 1000.0;
            sc.web100_stride = 32;
            sc
        };
        let a = run(&mk());
        let b = run(&mk());
        prop_assert_eq!(a.flows[0].vars.data_bytes_out, b.flows[0].vars.data_bytes_out);
        prop_assert_eq!(a.flows[0].vars.pkts_retrans, b.flows[0].vars.pkts_retrans);
        prop_assert_eq!(a.flows[0].vars.send_stall, b.flows[0].vars.send_stall);
    }

    /// The restriction property: on a loss-free path the restricted scheme
    /// never stalls and never lets the IFQ exceed txqueuelen.
    #[test]
    fn restriction_invariant(
        rtt_ms in 5u64..100,
        txqueuelen in 20u32..300,
        seed in 1u64..100,
    ) {
        let mut sc = Scenario::paper_testbed(
            CcAlgorithm::Restricted(RssConfig::tuned()),
        )
        .with_rtt(SimDuration::from_millis(rtt_ms))
        .with_txqueuelen(txqueuelen)
        .with_seed(seed)
        .with_duration(SimDuration::from_secs(8))
        .with_auto_rwnd();
        sc.web100_stride = 32;

        let r = run(&sc);
        prop_assert_eq!(r.flows[0].vars.send_stall, 0, "restricted stalled");
        let peak = r
            .sender_ifq_series
            .iter()
            .map(|&(_, v)| v)
            .fold(0.0f64, f64::max);
        prop_assert!(peak <= txqueuelen as f64, "IFQ exceeded capacity");
    }
}

/// An impairment mix spanning every fault mechanism, parameterized so
/// proptest explores outage placement, burst density and jitter depth.
fn arb_impairment() -> impl Strategy<Value = ImpairmentConfig> {
    (
        0u32..3,   // which mechanisms are on (bit 0: burst, bit 1: flap)
        1u32..20,  // outage start, 100ms units
        1u32..8,   // outage length, 100ms units
        0u32..200, // jitter probability, milli
        1u32..30,  // jitter max, 100us units
        0u32..30,  // duplicate probability, milli
    )
        .prop_map(
            |(mask, o_start, o_len, j_milli, j_max, dup_milli)| ImpairmentConfig {
                burst_loss: (mask & 1 != 0).then_some(GilbertElliott {
                    p_good_to_bad: 0.002,
                    p_bad_to_good: 0.3,
                    loss_good: 0.0,
                    loss_bad: 0.6,
                }),
                outages: vec![OutageWindow {
                    start: SimTime::from_millis(100 * o_start as u64),
                    duration: SimDuration::from_millis(100 * o_len as u64),
                }],
                flap: (mask & 2 != 0).then_some(Flap {
                    mean_up: SimDuration::from_millis(400),
                    mean_down: SimDuration::from_millis(20),
                }),
                jitter: Some(Jitter {
                    prob: j_milli as f64 / 1000.0,
                    max: SimDuration::from_micros(100 * j_max as u64),
                }),
                duplicate_prob: dup_milli as f64 / 1000.0,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        ..ProptestConfig::default()
    })]

    /// Fault injection never breaks the sharded executor's headline
    /// guarantee: an impaired run is byte-identical at 1, 2 and 4 shards.
    #[test]
    fn impaired_runs_are_shard_invariant(
        rtt_ms in 6u64..60,
        seed in 1u64..500,
        haul in arb_impairment(),
        access_on in any::<bool>(),
    ) {
        let mk = |shards| {
            let mut sc = Scenario::paper_testbed_standard()
                .with_rate(20_000_000)
                .with_rtt(SimDuration::from_millis(rtt_ms))
                .with_seed(seed)
                .with_duration(SimDuration::from_millis(2500))
                .with_access_delay(SimDuration::from_micros(500));
            sc.flows.push(sc.flows[0]);
            sc.flows[1].algo = CcAlgorithm::Restricted(RssConfig::tuned());
            sc.flows[1].start = SimTime::from_millis(40);
            sc.haul_impairment = Some(haul.clone());
            if access_on {
                sc.access_impairment = Some(ImpairmentConfig {
                    flap: Some(Flap {
                        mean_up: SimDuration::from_millis(300),
                        mean_down: SimDuration::from_millis(15),
                    }),
                    ..Default::default()
                });
            }
            sc.web100_stride = 16;
            sc.shards = Some(shards);
            sc
        };
        let one = run(&mk(1)).to_json();
        prop_assert_eq!(&one, &run(&mk(2)).to_json(), "2 shards diverged");
        prop_assert_eq!(&one, &run(&mk(4)).to_json(), "4 shards diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 10,
        ..ProptestConfig::default()
    })]

    /// AQM bottlenecks never break the sharded executor's headline
    /// guarantee: a run over a random RED or RED+ECN configuration is
    /// byte-identical at 1, 2 and 4 shards — drops drawn from the hub RNG
    /// and CE marks echoed back through the ACK stream included.
    #[test]
    fn aqm_runs_are_shard_invariant(
        seed in 1u64..500,
        cap in 30u32..120,
        min_frac in 1u32..5,      // min_th = cap · frac/10
        band_frac in 1u32..6,     // max_th = min_th + cap · frac/10, clamped
        wq_milli in 1u32..60,
        max_p_centi in 2u32..60,
        gentle in any::<bool>(),
        ecn in any::<bool>(),
        flows in 2u32..5,
    ) {
        let min_th = cap as f64 * min_frac as f64 / 10.0;
        let red = RedParams {
            min_th,
            max_th: (min_th + cap as f64 * band_frac as f64 / 10.0).min(cap as f64),
            wq: wq_milli as f64 / 1000.0,
            max_p: max_p_centi as f64 / 100.0,
            gentle,
        };
        let queue = if ecn {
            QueueDiscipline::RedEcn(red)
        } else {
            QueueDiscipline::Red(red)
        };
        let mk = |shards| {
            let mut sc = Scenario::paper_testbed_standard()
                .with_rate(20_000_000)
                .with_rtt(SimDuration::from_millis(20))
                .with_seed(seed)
                .with_duration(SimDuration::from_millis(2500))
                .with_access_delay(SimDuration::from_micros(500));
            sc.path.router_queue_pkts = cap;
            for i in 1..flows {
                sc.flows.push(sc.flows[0]);
                sc.flows[i as usize].start = SimTime::from_millis(30 * i as u64);
            }
            sc.web100_stride = 16;
            sc = sc.with_queue(queue);
            sc.shards = Some(shards);
            sc
        };
        let one = run(&mk(1)).to_json();
        prop_assert_eq!(&one, &run(&mk(2)).to_json(), "2 shards diverged");
        prop_assert_eq!(&one, &run(&mk(4)).to_json(), "4 shards diverged");
    }
}
