//! Rate-based congestion control against its analytical models.
//!
//! Two variants shipped through the registry make quantitative promises:
//!
//! * **Relentless** (Mathis, arXiv:1102.3270) decreases the window by
//!   exactly the segments lost, so under random per-segment loss `p` it
//!   equilibrates at `W = 1/p` segments and the idealized goodput is
//!   `MSS / (p · RTT)`. The closed form assumes perfect (SACK-like)
//!   recovery; this sender's NewReno machinery repairs one hole per RTT,
//!   and at the Relentless operating point — one loss per RTT, by
//!   construction — the connection lives in perpetual recovery, which
//!   sustains about half the idealized rate. The tests below therefore pin
//!   the model two ways: the absolute level within a stated tolerance
//!   (`RECOVERY_EFFICIENCY` ± `TOLERANCE`), and the `1/p` scaling law,
//!   which is insensitive to the recovery-granularity factor.
//!
//! * **BBR-style probing** promises to fill a long fat pipe without
//!   needing loss as a signal, and to do so without paying for it in
//!   retransmissions. On the `bbr_lfn` golden path (200 Mbit/s × 120 ms,
//!   3 MB BDP, a mis-cached 64 KiB initial ssthresh) standard TCP falls
//!   out of slow-start at 64 KiB and crawls; the probe measures the
//!   bottleneck and paces at it.

use restricted_slow_start::{run, AppModel, CcAlgorithm, Scenario, SimDuration};

const MSS: u64 = 1448;

/// Fraction of the idealized `MSS/(p·RTT)` the NewReno-based recovery
/// machinery sustains in perpetual recovery (measured 0.43–0.56 across
/// loss rates and seeds; see the module docs).
const RECOVERY_EFFICIENCY: f64 = 0.50;
const TOLERANCE: f64 = 0.15;

/// A Relentless flow under random loss `p`, started at its equilibrium
/// (`initial_ssthresh = MSS/p` so slow-start hands over right at `W*`,
/// removing the `1/p`-RTT convergence transient from the measurement).
fn relentless_under_loss(p: f64) -> Scenario {
    let w_star = (1.0 / p) as u64 * MSS;
    let mut sc = Scenario::paper_testbed(CcAlgorithm::Relentless)
        .with_rate(200_000_000)
        .with_rtt(SimDuration::from_millis(15))
        .with_txqueuelen(1000)
        .with_duration(SimDuration::from_secs(20))
        .with_seed(1);
    sc.path.loss_prob = p;
    sc.tcp.initial_ssthresh = Some(w_star);
    sc.tcp.rwnd = 64 * 1024 * 1024;
    sc.web100_stride = 64;
    sc
}

fn model_goodput_bps(p: f64, rtt_s: f64) -> f64 {
    MSS as f64 * 8.0 / (p * rtt_s)
}

/// Goodput lands within the stated tolerance of the closed-form model,
/// scaled by the documented recovery-efficiency factor.
#[test]
fn relentless_goodput_tracks_the_closed_form_model() {
    let p = 0.005;
    let r = run(&relentless_under_loss(p));
    let goodput = r.flows[0].goodput_bps;
    let model = model_goodput_bps(p, 0.015);
    let ratio = goodput / model;
    assert!(
        (ratio - RECOVERY_EFFICIENCY).abs() <= TOLERANCE,
        "goodput {:.1} Mbit/s is {ratio:.2}x the {:.1} Mbit/s closed form; \
         expected {RECOVERY_EFFICIENCY} +/- {TOLERANCE}",
        goodput / 1e6,
        model / 1e6,
    );
}

/// The `1/p` scaling law: halving the loss rate roughly doubles goodput.
/// This is the model's load-bearing prediction and does not depend on the
/// absolute recovery-efficiency factor.
#[test]
fn relentless_goodput_scales_inversely_with_loss_rate() {
    let lo = run(&relentless_under_loss(0.005)).flows[0].goodput_bps;
    let hi = run(&relentless_under_loss(0.01)).flows[0].goodput_bps;
    let scaling = lo / hi;
    assert!(
        (1.3..=2.2).contains(&scaling),
        "goodput(p=0.005) / goodput(p=0.01) = {scaling:.2}, expected ~2 \
         (1/p scaling)"
    );
}

/// Relentless beats an AIMD window that halves on every one of the same
/// loss events — the scheme's reason to exist.
#[test]
fn relentless_beats_standard_tcp_under_the_same_loss() {
    let p = 0.005;
    let relentless = run(&relentless_under_loss(p)).flows[0].goodput_bps;
    let mut sc = relentless_under_loss(p);
    sc.flows[0].algo = CcAlgorithm::Reno;
    let standard = run(&sc).flows[0].goodput_bps;
    assert!(
        relentless >= 3.0 * standard,
        "relentless {:.1} Mbit/s vs standard {:.1} Mbit/s: expected >= 3x",
        relentless / 1e6,
        standard / 1e6
    );
}

/// The `bbr_lfn` golden scenario, at the Scenario level: 200 Mbit/s ×
/// 120 ms, 32 MiB transfer, the classic mis-cached 64 KiB initial
/// ssthresh.
fn lfn(algo: CcAlgorithm) -> Scenario {
    let mut sc = Scenario::paper_testbed(algo)
        .with_rate(200_000_000)
        .with_rtt(SimDuration::from_millis(120))
        .with_txqueuelen(1000)
        .with_duration(SimDuration::from_secs(60))
        .with_seed(1);
    sc.flows[0].app = AppModel::Bulk {
        bytes: Some(32 * 1024 * 1024),
    };
    sc.stop_when_complete = true;
    sc.tcp.initial_ssthresh = Some(65536);
    sc.tcp.rwnd = 64 * 1024 * 1024;
    sc.web100_stride = 64;
    sc
}

/// BBR finishes the LFN transfer much faster than standard TCP without
/// buying the speedup with retransmissions (the issue's loss gate: BBR's
/// loss count must stay within ~2x standard's).
#[test]
fn bbr_beats_standard_on_the_lfn_without_extra_loss() {
    let bbr = run(&lfn(CcAlgorithm::Bbr));
    let std_tcp = run(&lfn(CcAlgorithm::Reno));
    let (b, s) = (&bbr.flows[0], &std_tcp.flows[0]);
    assert!(
        b.goodput_bps > 2.0 * s.goodput_bps,
        "bbr {:.1} Mbit/s vs standard {:.1} Mbit/s",
        b.goodput_bps / 1e6,
        s.goodput_bps / 1e6
    );
    // Loss gate: 2x standard's retransmissions, plus a one-burst allowance
    // so the bound stays meaningful when standard takes zero losses.
    assert!(
        b.vars.pkts_retrans <= 2 * s.vars.pkts_retrans + 4,
        "bbr retransmitted {} pkts vs standard's {}",
        b.vars.pkts_retrans,
        s.vars.pkts_retrans
    );
    // Both transfers must actually complete inside the horizon.
    assert!(b.completed_at_s.is_some() && s.completed_at_s.is_some());
}
