//! Spec ↔ code parity: every checked-in scenario file must expand to exactly
//! the hand-coded testbed it re-expresses.
//!
//! Equality is checked on the `Scenario` structs themselves (via their
//! `Debug` rendering — the same identity key `run_many_memo` uses). Runs are
//! pure deterministic functions of the scenario, so struct equality implies
//! bit-identical reports, event counts and CSVs; for the headline pair the
//! reports are additionally compared end-to-end. The CI `scenario-matrix`
//! job closes the loop by diffing the CSVs `rss run` emits against the
//! goldens under `scenarios/golden/`.

use restricted_slow_start::{
    run, stripe_bytes, AppModel, CcAlgorithm, FlowSpec, RssConfig, Scenario, ScenarioSpec,
    SimDuration, SimTime, StallResponse,
};
use std::path::{Path, PathBuf};

fn load(name: &str) -> ScenarioSpec {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("scenarios")
        .join(name);
    ScenarioSpec::load(&path).expect("scenario file loads")
}

fn dbg(sc: &Scenario) -> String {
    format!("{sc:?}")
}

#[test]
fn every_checked_in_scenario_parses_and_validates() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("scenarios");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("scenarios dir exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    files.sort();
    assert!(files.len() >= 8, "expected the eight shipped scenarios");
    for f in files {
        let spec = ScenarioSpec::load(&f).unwrap_or_else(|e| panic!("{}: {e}", f.display()));
        spec.validate()
            .unwrap_or_else(|e| panic!("{}: {e}", f.display()));
    }
}

#[test]
fn quickstart_spec_matches_the_paper_testbed_constructors() {
    let runs = load("quickstart.json").expand().unwrap();
    assert_eq!(runs.len(), 2);
    assert_eq!(runs[0].label, "standard");
    assert_eq!(runs[1].label, "restricted");
    assert_eq!(
        dbg(&runs[0].scenario),
        dbg(&Scenario::paper_testbed_standard())
    );
    assert_eq!(
        dbg(&runs[1].scenario),
        dbg(&Scenario::paper_testbed_restricted())
    );
}

#[test]
fn headline_spec_matches_the_paper_testbed_constructors() {
    let runs = load("headline.json").expand().unwrap();
    assert_eq!(runs.len(), 2);
    assert_eq!(
        dbg(&runs[0].scenario),
        dbg(&Scenario::paper_testbed_standard())
    );
    assert_eq!(
        dbg(&runs[1].scenario),
        dbg(&Scenario::paper_testbed_restricted())
    );
}

#[test]
fn figure1_spec_matches_the_e1_variant_set() {
    let runs = load("figure1.json").expand().unwrap();
    assert_eq!(runs.len(), 3);
    let mut tahoe = Scenario::paper_testbed_standard();
    tahoe.tcp.stall_response = StallResponse::RestartFromOne;
    assert_eq!(
        dbg(&runs[0].scenario),
        dbg(&Scenario::paper_testbed_standard())
    );
    assert_eq!(
        dbg(&runs[1].scenario),
        dbg(&Scenario::paper_testbed_restricted())
    );
    assert_eq!(dbg(&runs[2].scenario), dbg(&tahoe));
}

#[test]
fn wan_sweep_spec_matches_the_hand_built_grid() {
    let runs = load("wan_sweep.json").expand().unwrap();
    // The grid examples/wan_sweep.rs used to build in code.
    let rtts_ms = [10u64, 30, 60, 120];
    let rates_mbps = [10u64, 100, 1000];
    let mut expected = Vec::new();
    for &rate in &rates_mbps {
        for &rtt in &rtts_ms {
            let bps = rate * 1_000_000;
            expected.push(
                Scenario::paper_testbed_standard()
                    .with_rate(bps)
                    .with_rtt(SimDuration::from_millis(rtt))
                    .with_auto_rwnd(),
            );
            expected.push(
                Scenario::paper_testbed(CcAlgorithm::Restricted(RssConfig::tuned_for(bps, 1500)))
                    .with_rate(bps)
                    .with_rtt(SimDuration::from_millis(rtt))
                    .with_auto_rwnd(),
            );
        }
    }
    assert_eq!(runs.len(), expected.len());
    for (i, (got, want)) in runs.iter().zip(&expected).enumerate() {
        assert_eq!(dbg(&got.scenario), dbg(want), "grid cell {i} diverged");
    }
}

#[test]
fn gridftp_spec_matches_the_hand_built_striping() {
    let runs = load("gridftp_parallel.json").expand().unwrap();
    let total: u64 = 100 * 1024 * 1024;
    let mut expected = Vec::new();
    for streams in [1u32, 2, 4, 8] {
        for algo in [
            CcAlgorithm::Reno,
            CcAlgorithm::Restricted(RssConfig::tuned_for(100_000_000 / streams as u64, 1500)),
        ] {
            let mut sc = Scenario::paper_testbed(algo);
            sc.flows = stripe_bytes(total, streams)
                .into_iter()
                .map(|bytes| FlowSpec {
                    algo,
                    app: AppModel::Bulk { bytes: Some(bytes) },
                    start: SimTime::ZERO,
                })
                .collect();
            sc.shared_sender_host = true;
            sc.stop_when_complete = true;
            sc.duration = SimDuration::from_secs(60);
            sc.web100_stride = 16;
            expected.push(sc);
        }
    }
    assert_eq!(runs.len(), expected.len());
    for (i, (got, want)) in runs.iter().zip(&expected).enumerate() {
        assert_eq!(dbg(&got.scenario), dbg(want), "cell {i} diverged");
    }
}

/// The 10k-flow shard-executor scenario: expansion resolves `"auto"` to a
/// concrete positive shard count, the `count` field replicates the flow
/// template, and the geometry satisfies the executor's lookahead
/// precondition (`rtt > 4 × access_delay`, so the cross-domain window is
/// positive).
#[test]
fn manyflow_spec_expands_to_10k_sharded_flows() {
    let runs = load("manyflow_dumbbell.json").expand().unwrap();
    assert_eq!(runs.len(), 1);
    let sc = &runs[0].scenario;
    assert_eq!(sc.flows.len(), 10_000);
    assert!(sc.shards.is_some_and(|n| n >= 1), "auto must resolve");
    assert_eq!(sc.path.access_delay, SimDuration::from_millis(1));
    assert!(sc.path.rtt > sc.path.access_delay * 4);
}

/// The SSthreshless LFN scenario's claim, asserted end-to-end: with the
/// classic mis-set 64 KiB initial ssthresh on a 200 Mbit/s × 120 ms path,
/// the ssthresh-free probe finishes the bounded transfer several times
/// sooner than both Standard (which slow-starts only to 64 KiB) and
/// Restricted (whose PID also only paces the sub-ssthresh phase) — and does
/// it without a single send-stall.
#[test]
fn ssthreshless_beats_standard_and_restricted_on_the_lfn_path() {
    let runs = load("ssthreshless_lfn.json").expand().unwrap();
    assert_eq!(runs.len(), 3);
    let reports: Vec<_> = runs.iter().map(|r| run(&r.scenario)).collect();
    let completed: Vec<f64> = reports
        .iter()
        .map(|r| r.flows[0].completed_at_s.expect("transfer completes"))
        .collect();
    let (std_t, rss_t, ssl_t) = (completed[0], completed[1], completed[2]);
    assert!(
        ssl_t * 3.0 < std_t,
        "ssthreshless {ssl_t} s should finish at least 3x sooner than standard {std_t} s"
    );
    assert!(
        ssl_t * 3.0 < rss_t,
        "ssthreshless {ssl_t} s should finish at least 3x sooner than restricted {rss_t} s"
    );
    assert_eq!(
        reports[2].flows[0].vars.send_stall, 0,
        "the delay probe must not overflow the IFQ"
    );
}

/// End-to-end: running the spec-loaded headline pair reproduces the
/// hand-coded runs bit-exactly — identical event counts and identical
/// serialized reports.
#[test]
fn spec_runs_reproduce_hand_coded_runs_bit_exactly() {
    let runs = load("quickstart.json").expand().unwrap();
    let from_spec_std = run(&runs[0].scenario);
    let from_spec_rss = run(&runs[1].scenario);
    let hand_std = run(&Scenario::paper_testbed_standard());
    let hand_rss = run(&Scenario::paper_testbed_restricted());
    assert_eq!(from_spec_std.events_processed, hand_std.events_processed);
    assert_eq!(from_spec_rss.events_processed, hand_rss.events_processed);
    assert_eq!(from_spec_std.to_json(), hand_std.to_json());
    assert_eq!(from_spec_rss.to_json(), hand_rss.to_json());
}
