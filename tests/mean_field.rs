//! Mean-field validation of the RED/ECN bottleneck at scale.
//!
//! With N identical long-lived TCP flows through one RED queue, the
//! many-flows mean-field limit (arXiv:math/0603325) predicts a stationary
//! operating point from two coupled laws:
//!
//! * the TCP square-root law  `W̄ = sqrt(3 / (2 p))`  (packets per window at
//!   per-packet congestion-signal probability `p`), and
//! * link saturation  `N · W̄ = BDP + Q̄`  with RED's linear marking curve
//!   `p(Q̄) = max_p · (Q̄ − min_th) / (max_th − min_th)` closing the loop.
//!
//! Solving the pair gives a unique fixed point `(W̄*, Q̄*)` inside the RED
//! band; the simulated ensemble must sit near it. A second family of
//! predictions (arXiv:cs/0609014, and Hollot et al.'s control-theoretic RED
//! analysis) concerns *stability*: the steeper the marking slope relative to
//! the band, the larger the loop gain of the TCP/RED feedback and the more
//! the queue oscillates instead of settling. And drop-tail at deep buffers
//! has no early signal at all, so the ensemble builds a standing queue near
//! the hard limit — the bufferbloat collapse RED/ECN exists to prevent.
//!
//! These tests run hundreds of concurrent flows, so they double as a
//! many-flow stress of the sharded executor: the headline scenario must be
//! byte-identical at 1, 2 and 4 shards.

use restricted_slow_start::{
    run, CcAlgorithm, FlowSpec, QueueDiscipline, RedParams, RunReport, Scenario, SimDuration,
    SimTime,
};

/// The RED fixed point `(W̄*, Q̄*)`: bisect on the average queue, where
/// `f(Q) = N·sqrt(3/(2·p(Q))) − (BDP + Q)` is strictly decreasing.
fn red_fixed_point(n: f64, bdp_pkts: f64, red: &RedParams) -> (f64, f64) {
    let p_of = |q: f64| red.max_p * (q - red.min_th) / (red.max_th - red.min_th);
    let f = |q: f64| n * (1.5 / p_of(q)).sqrt() - (bdp_pkts + q);
    let (mut lo, mut hi) = (red.min_th + 1e-9, red.max_th);
    assert!(f(lo) > 0.0, "fixed point below the RED band");
    assert!(f(hi) < 0.0, "fixed point above the RED band");
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if f(mid) > 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let q = 0.5 * (lo + hi);
    (n.recip() * (bdp_pkts + q), q)
}

/// Mean of a sampled series over `[from, to)`.
fn series_mean(series: &[(f64, f64)], from: f64, to: f64) -> f64 {
    let pts: Vec<f64> = series
        .iter()
        .filter(|&&(t, _)| t >= from && t < to)
        .map(|&(_, v)| v)
        .collect();
    assert!(pts.len() > 10, "too few samples in [{from}, {to})");
    pts.iter().sum::<f64>() / pts.len() as f64
}

/// Standard deviation of a sampled series over `[from, to)`.
fn series_std(series: &[(f64, f64)], from: f64, to: f64) -> f64 {
    let mean = series_mean(series, from, to);
    let pts: Vec<f64> = series
        .iter()
        .filter(|&&(t, _)| t >= from && t < to)
        .map(|&(_, v)| v)
        .collect();
    (pts.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / pts.len() as f64).sqrt()
}

/// Aggregate goodput (bit/s) over `[from, to)` across all flows.
fn aggregate_goodput_bps(r: &RunReport, from: f64, to: f64) -> f64 {
    r.flows
        .iter()
        .map(|f| f.goodput_in_window_bps(from, to))
        .sum()
}

/// N staggered bulk Reno flows into a dumbbell whose only contention point
/// is the bottleneck router.
fn ensemble(
    n: u32,
    rate_bps: u64,
    rtt: SimDuration,
    queue_pkts: u32,
    duration: SimDuration,
    seed: u64,
) -> Scenario {
    let mut sc = Scenario::paper_testbed_standard()
        .with_rate(rate_bps)
        .with_rtt(rtt)
        .with_seed(seed)
        .with_duration(duration)
        .with_access_delay(SimDuration::from_micros(500));
    // Fast edges: the router queue, not the sender NIC, is the bottleneck.
    sc.path.access_rate_bps = Some(rate_bps * 4);
    sc.host.nic_rate_bps = rate_bps * 4;
    sc.path.router_queue_pkts = queue_pkts;
    sc.flows.clear();
    for i in 0..n {
        let mut f = FlowSpec::bulk(CcAlgorithm::Reno);
        // Desynchronize: starts spread over the first ~0.5 s.
        f.start = SimTime::from_micros(2500 * i as u64);
        sc.flows.push(f);
    }
    sc.web100_stride = 256;
    sc
}

/// Headline: a 200-flow ensemble through a marking RED bottleneck sits at
/// the mean-field fixed point — mean window and mean queue both within
/// tolerance — and the run is byte-identical at 1, 2 and 4 shards.
#[test]
fn ecn_ensemble_sits_at_the_mean_field_fixed_point() {
    let n = 200u32;
    let rate: u64 = 400_000_000;
    let rtt = SimDuration::from_millis(60);
    let red = RedParams {
        min_th: 100.0,
        max_th: 400.0,
        wq: 0.002,
        max_p: 0.1,
        gentle: false,
    };
    let bdp_pkts = rate as f64 * rtt.as_secs_f64() / 8.0 / 1500.0; // 2000
    let (w_star, q_star) = red_fixed_point(n as f64, bdp_pkts, &red);
    assert!(
        (red.min_th..red.max_th).contains(&q_star),
        "test misconfigured: fixed point {q_star} outside the band"
    );

    let mk = |shards: Option<u32>| {
        let mut sc = ensemble(n, rate, rtt, 500, SimDuration::from_secs(8), 42)
            .with_queue(QueueDiscipline::RedEcn(red));
        sc.shards = shards;
        sc
    };
    let r = run(&mk(Some(1)));

    // (1) The marking band did its job: CE marks flowed, forced drops are a
    // negligible fraction of the signal.
    assert!(r.router_ecn_marks > 100, "marks: {}", r.router_ecn_marks);
    assert!(
        r.router_red_forced_drops < r.router_ecn_marks / 10,
        "queue escaped the band: {} forced vs {} marks",
        r.router_red_forced_drops,
        r.router_ecn_marks
    );

    // (2) Stationary mean queue near Q̄* (measure the second half only —
    // the first half contains slow-start and the transient).
    let (t0, t1) = (4.0, 8.0);
    let q_sim = series_mean(&r.bottleneck_queue_series, t0, t1);
    assert!(
        (q_sim - q_star).abs() / q_star < 0.45,
        "mean queue {q_sim:.1} vs fixed point {q_star:.1}"
    );

    // (3) Mean per-flow window near W̄*, recovered from aggregate goodput
    // via Little's law: W̄ = goodput · RTT_eff / N (in packets).
    let agg_bps = aggregate_goodput_bps(&r, t0, t1);
    assert!(
        agg_bps > 0.80 * rate as f64,
        "link underused: {agg_bps:.3e} of {rate}"
    );
    let rtt_eff = rtt.as_secs_f64() + q_sim * 1500.0 * 8.0 / rate as f64;
    let w_sim = agg_bps * rtt_eff / 8.0 / 1500.0 / n as f64;
    assert!(
        (w_sim - w_star).abs() / w_star < 0.35,
        "mean window {w_sim:.2} vs fixed point {w_star:.2}"
    );

    // (4) The same ensemble is byte-identical at 2 and 4 shards.
    let one = r.to_json();
    assert_eq!(one, run(&mk(Some(2))).to_json(), "2 shards diverged");
    assert_eq!(one, run(&mk(Some(4))).to_json(), "4 shards diverged");

    // (5) The serial world is a different event ordering, not different
    // physics: its macro observables agree with the sharded ensemble.
    let serial = run(&mk(None));
    let q_serial = series_mean(&serial.bottleneck_queue_series, t0, t1);
    assert!(
        (q_serial - q_sim).abs() / q_sim < 0.20,
        "serial mean queue {q_serial:.1} vs sharded {q_sim:.1}"
    );
}

/// The cs/0609014-style loop-gain discriminant ranks RED configurations:
/// the linearized TCP/RED feedback gain is the marking slope
/// `ρ = max_p/(max_th − min_th)` times the TCP transfer gain `(R·C)²`,
/// low-pass filtered by the EWMA averaging pole (bandwidth ∝ `w_q`).
/// A flat-sloped, fast-averaging config must settle; a steep narrow-band,
/// slow-averaging config on the same path must oscillate — global mark
/// synchronization swinging the queue between empty and full.
#[test]
fn stability_discriminant_separates_settling_from_oscillating_red() {
    let n = 50u32;
    let rate: u64 = 150_000_000;
    let rtt = SimDuration::from_millis(40);
    let bdp_pkts = rate as f64 * rtt.as_secs_f64() / 8.0 / 1500.0; // 500
    let stable = RedParams {
        min_th: 40.0,
        max_th: 280.0,
        wq: 0.05,
        max_p: 0.03,
        gentle: true,
    };
    let oscillatory = RedParams {
        min_th: 140.0,
        max_th: 160.0,
        wq: 0.002,
        max_p: 0.9,
        gentle: false,
    };

    // Loop gain of the linearized feedback (after Hollot et al.'s RED
    // control model): slope × window-to-queue gain, divided by the EWMA
    // averaging bandwidth — slower averaging (smaller w_q) adds phase lag
    // and destabilizes.
    let gain = |red: &RedParams| {
        let rho = red.max_p / (red.max_th - red.min_th);
        let c_pkts = rate as f64 / 8.0 / 1500.0;
        let r_eff = rtt.as_secs_f64() + red.min_th / c_pkts;
        rho * (r_eff * c_pkts).powi(2) / ((2.0 * n as f64).powi(2) * red.wq)
    };
    let (g_stable, g_osc) = (gain(&stable), gain(&oscillatory));
    assert!(
        g_stable < 1.0,
        "stable config predicted unstable: gain {g_stable:.2}"
    );
    assert!(
        g_osc > 100.0 * g_stable,
        "discriminant failed to separate: {g_osc:.1} vs {g_stable:.2}"
    );

    let measure = |red: RedParams| {
        let sc = ensemble(n, rate, rtt, 300, SimDuration::from_secs(8), 7)
            .with_queue(QueueDiscipline::RedEcn(red));
        let r = run(&sc);
        let mean = series_mean(&r.bottleneck_queue_series, 4.0, 8.0);
        let std = series_std(&r.bottleneck_queue_series, 4.0, 8.0);
        let empties = r
            .bottleneck_queue_series
            .iter()
            .filter(|&&(t, v)| t >= 4.0 && v < 1.0)
            .count();
        (mean, std / mean, empties)
    };
    let (mean_stable, cv_stable, empties_stable) = measure(stable);
    let (mean_osc, cv_osc, empties_osc) = measure(oscillatory);

    // The settling config holds near its mean-field fixed point...
    let (_, q_stable_star) = red_fixed_point(n as f64, bdp_pkts, &stable);
    assert!(
        (mean_stable - q_stable_star).abs() / q_stable_star < 0.45,
        "stable config off its fixed point: {mean_stable:.1} vs {q_stable_star:.1}"
    );
    // ...without ever draining the link...
    assert_eq!(
        empties_stable, 0,
        "stable config drained the queue {empties_stable} times"
    );
    assert!(
        cv_stable < 0.4,
        "flat-slope RED failed to settle: CV {cv_stable:.3}"
    );
    // ...while the predicted-unstable one limit-cycles: far larger relative
    // swing and repeated full drains of the bottleneck.
    assert!(mean_osc > 0.0, "oscillatory run starved the queue");
    assert!(
        cv_osc > 0.75 && cv_osc > 2.5 * cv_stable,
        "oscillation ordering violated: CV {cv_osc:.3} vs {cv_stable:.3}"
    );
    assert!(
        empties_osc > 10,
        "oscillatory config never drained the queue ({empties_osc} empties)"
    );
}

/// Deep-buffer regression: at 4·BDP of buffering, drop-tail builds a
/// standing queue near the hard limit (bufferbloat — the latency collapse),
/// while RED and RED+ECN at the *same* buffer depth keep the queue an order
/// of magnitude lower at equal goodput.
#[test]
fn deep_buffer_droptail_bloats_but_red_and_ecn_do_not() {
    let n = 50u32;
    let rate: u64 = 150_000_000;
    let rtt = SimDuration::from_millis(40);
    let cap = 2000u32; // 4x the 500-packet BDP
    let (t0, t1) = (6.0, 12.0);
    let measure = |queue: QueueDiscipline| {
        let sc = ensemble(n, rate, rtt, cap, SimDuration::from_secs(12), 11).with_queue(queue);
        let r = run(&sc);
        let q = series_mean(&r.bottleneck_queue_series, t0, t1);
        let goodput = aggregate_goodput_bps(&r, t0, t1);
        (q, goodput)
    };
    let red = RedParams::for_capacity(cap);
    let (q_dt, bps_dt) = measure(QueueDiscipline::DropTail);
    let (q_red, bps_red) = measure(QueueDiscipline::Red(red));
    let (q_ecn, bps_ecn) = measure(QueueDiscipline::RedEcn(red));

    // All three keep the pipe full — nothing collapses throughput...
    for (label, bps) in [("droptail", bps_dt), ("red", bps_red), ("ecn", bps_ecn)] {
        assert!(
            bps > 0.75 * rate as f64,
            "{label} goodput collapsed: {bps:.3e}"
        );
    }
    // ...but drop-tail converts the whole buffer into standing latency:
    // queueing delay alone exceeds the propagation RTT.
    assert!(
        q_dt > 0.5 * cap as f64,
        "deep drop-tail queue unexpectedly low: {q_dt:.0}"
    );
    let pkt_time = 1500.0 * 8.0 / rate as f64;
    assert!(
        q_dt * pkt_time > rtt.as_secs_f64(),
        "no bloat: {:.1} ms of queueing delay",
        q_dt * pkt_time * 1e3
    );
    // AQM at the same depth holds the queue at its configured band instead
    // of the hard limit.
    for (label, q) in [("red", q_red), ("ecn", q_ecn)] {
        assert!(
            q < 0.35 * cap as f64 && q < 0.6 * q_dt,
            "{label} failed to prevent the standing queue: {q:.0} (droptail {q_dt:.0})"
        );
    }
}
