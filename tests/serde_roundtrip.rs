//! Round-trip properties for the vendored serde pair: for every value the
//! workspace serializes, `Deserialize(Serialize(x)) == x`.
//!
//! `ScenarioSpec` round-trips are checked structurally (`PartialEq`);
//! `RunReport` (which holds floats and nested instrument blocks but no
//! `PartialEq`) is checked by re-serialization: `to_json` emits
//! shortest-round-trip floats and full-width integers, so
//! `to_json(from_json(to_json(r)))` must be byte-identical. Malformed-input
//! paths (unknown field, wrong type, truncated document) get unit tests at
//! the `RunReport` level; the `ScenarioSpec`-level equivalents live in
//! `rss_core::spec`'s unit tests.

use proptest::prelude::*;
use restricted_slow_start::{
    run, BurstLossDef, CcDef, FairnessDef, FlowDef, ImpairmentDef, ImpairmentsDef, JitterDef,
    OutageDef, PathDef, QueueDef, RunReport, RunSpec, Scenario, ScenarioSpec, ShardsDef,
    SimDuration, SweepSpec, TuningDef,
};

fn arb_cc() -> impl Strategy<Value = CcDef> {
    prop_oneof![
        Just(CcDef::Standard),
        Just(CcDef::Restricted {
            tuning: None,
            setpoint_frac: None,
        }),
        (1u64..2000, (1u32..100)).prop_map(|(r, w)| CcDef::Restricted {
            tuning: Some(TuningDef::ForRate {
                rate_mbps: r as f64,
                wire_pkt_bytes: 1400 + w,
            }),
            setpoint_frac: Some(0.5 + (w as f64) / 250.0),
        }),
        (0.01f64..10.0, 0.0001f64..0.1, 0.0001f64..0.1).prop_map(|(kp, ti, td)| {
            CcDef::Restricted {
                tuning: Some(TuningDef::Gains { kp, ti, td }),
                setpoint_frac: None,
            }
        }),
        prop_oneof![Just(None), (1u64..10_000_000).prop_map(Some)]
            .prop_map(|max_ssthresh| CcDef::Limited { max_ssthresh }),
        prop_oneof![Just(None), (1u32..64).prop_map(|g| Some(g as f64 / 2.0))]
            .prop_map(|gamma_segments| CcDef::Ssthreshless { gamma_segments }),
        Just(CcDef::HighSpeed),
        prop_oneof![Just(None), (1u32..5000).prop_map(Some)]
            .prop_map(|ai_cnt| CcDef::Scalable { ai_cnt }),
        Just(CcDef::Bbr),
        Just(CcDef::Relentless),
        Just(CcDef::Hybrid),
    ]
}

fn arb_fairness() -> impl Strategy<Value = Option<FairnessDef>> {
    prop_oneof![
        Just(None),
        Just(Some(FairnessDef {
            window_s: None,
            eps: None,
            csv: None,
        })),
        (1u32..50, 1u32..99, 0u32..2).prop_map(|(w, e, named)| {
            Some(FairnessDef {
                window_s: Some(w as f64 / 10.0),
                eps: Some(e as f64 / 100.0),
                csv: (named == 1).then(|| format!("fair_{w}.csv")),
            })
        }),
    ]
}

fn arb_spec() -> impl Strategy<Value = ScenarioSpec> {
    (
        (1u64..5000, 1u64..500, 1u32..2000),
        prop::collection::vec(arb_cc(), 1..4),
        (0u64..100, 1u32..64),
        prop_oneof![
            Just(None),
            prop::collection::vec(1u64..300, 1..4).prop_map(|rtts| Some(SweepSpec {
                rate_mbps: None,
                rtt_ms: Some(rtts.into_iter().map(|x| x as f64).collect()),
                txqueuelen: None,
                seed: None,
                streams: None,
            })),
        ],
        arb_fairness(),
    )
        .prop_map(|((rate, rtt, txq), ccs, (seed, stride), sweep, fairness)| {
            let runs = ccs
                .into_iter()
                .enumerate()
                .map(|(i, cc)| RunSpec {
                    label: format!("run{i}"),
                    path: Some(PathDef {
                        rate_mbps: Some(rate as f64),
                        rtt_ms: Some(rtt as f64),
                        router_queue_pkts: Some(txq),
                        loss_prob: None,
                        access_rate_mbps: None,
                        access_delay_us: (txq % 2 == 0).then_some(500.0),
                        impairments: (txq % 3 == 0).then(|| ImpairmentsDef {
                            haul: Some(ImpairmentDef {
                                burst_loss: Some(BurstLossDef {
                                    p_good_to_bad: 0.01,
                                    p_bad_to_good: 0.25,
                                    loss_good: None,
                                    loss_bad: 0.5,
                                }),
                                outages: Some(vec![OutageDef {
                                    start_s: 0.5,
                                    duration_s: 0.1,
                                }]),
                                flap: None,
                                jitter: Some(JitterDef {
                                    prob: 0.1,
                                    max_ms: 2.0,
                                }),
                                duplicate_prob: Some(0.01),
                            }),
                            access: None,
                        }),
                    }),
                    host: None,
                    tcp: None,
                    flows: Some(vec![FlowDef {
                        cc: Some(cc),
                        app: None,
                        start_s: Some(seed as f64 / 64.0),
                        count: (stride % 2 == 0).then_some(stride),
                    }]),
                    gridftp: None,
                    cross: None,
                    duration_s: Some(1.5),
                    seed: Some(seed),
                    shared_sender_host: None,
                    stop_when_complete: Some(true),
                    red_bottleneck: None,
                    queue: match (seed + i as u64) % 4 {
                        0 => None,
                        1 => Some(QueueDef::DropTail),
                        2 => Some(QueueDef::Red {
                            min_th: Some(10.0),
                            max_th: None,
                            w_q: Some(0.005),
                            max_p: None,
                            gentle: Some(true),
                        }),
                        _ => Some(QueueDef::RedEcn {
                            min_th: None,
                            max_th: Some(60.0),
                            w_q: None,
                            max_p: Some(0.2),
                            gentle: None,
                        }),
                    },
                    sample_interval_ms: None,
                    web100_stride: Some(stride),
                    auto_rwnd: Some(true),
                    max_sim_time_s: (seed % 2 == 0).then_some(1.25),
                    max_events: (seed % 5 == 0).then_some(5_000_000),
                })
                .collect();
            ScenarioSpec {
                name: "roundtrip".into(),
                comment: Some("generated by the round-trip property".into()),
                runs,
                sweep,
                fairness,
                shards: match seed % 3 {
                    0 => None,
                    1 => Some(ShardsDef::Auto),
                    _ => Some(ShardsDef::Count(seed as u32 % 7 + 1)),
                },
                output: None,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        ..ProptestConfig::default()
    })]

    /// `ScenarioSpec` survives a JSON round trip structurally intact.
    #[test]
    fn scenario_spec_roundtrips(spec in arb_spec()) {
        let json = serde::to_json_string(&spec);
        let back = ScenarioSpec::from_json(&json)
            .unwrap_or_else(|e| panic!("round-trip parse failed: {e}\n{json}"));
        prop_assert_eq!(&spec, &back);
        // And the re-serialization is byte-stable.
        prop_assert_eq!(json, serde::to_json_string(&back));
    }

    /// Every `CcDef` variant — the whole open enum, SSthreshless included —
    /// survives a bare JSON round trip: `Deserialize(Serialize(x)) == x`.
    #[test]
    fn cc_def_roundtrips(cc in arb_cc()) {
        let json = serde::to_json_string(&cc);
        let back: CcDef = serde::from_json_str(&json)
            .unwrap_or_else(|e| panic!("round-trip parse failed: {e}\n{json}"));
        prop_assert_eq!(cc, back);
        prop_assert_eq!(json, serde::to_json_string(&back));
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        ..ProptestConfig::default()
    })]

    /// A real simulation report — floats, series, nested Web100 block —
    /// survives `to_json → from_json → to_json` byte-identically.
    #[test]
    fn run_report_roundtrips(
        rate_mbps in 5u64..40,
        seed in 1u64..500,
    ) {
        let sc = Scenario::paper_testbed_standard()
            .with_rate(rate_mbps * 1_000_000)
            .with_rtt(SimDuration::from_millis(10))
            .with_duration(SimDuration::from_millis(900))
            .with_seed(seed);
        let report = run(&sc);
        let json = report.to_json();
        let back = RunReport::from_json(&json)
            .unwrap_or_else(|e| panic!("report parse failed: {e}"));
        prop_assert_eq!(json, back.to_json());
    }
}

#[test]
fn run_report_rejects_unknown_field() {
    let sc = Scenario::paper_testbed_standard()
        .with_rate(10_000_000)
        .with_rtt(SimDuration::from_millis(10))
        .with_duration(SimDuration::from_millis(200));
    let json = run(&sc).to_json();
    let tampered = json.replacen("\"seed\":", "\"sede\":", 1);
    let err = RunReport::from_json(&tampered).unwrap_err();
    assert!(err.to_string().contains("unknown field `sede`"), "{err}");
}

#[test]
fn run_report_rejects_wrong_type() {
    let sc = Scenario::paper_testbed_standard()
        .with_rate(10_000_000)
        .with_rtt(SimDuration::from_millis(10))
        .with_duration(SimDuration::from_millis(200));
    let json = run(&sc).to_json();
    let tampered = json.replacen("\"seed\":1", "\"seed\":\"one\"", 1);
    let err = RunReport::from_json(&tampered).unwrap_err();
    assert!(err.to_string().contains("$.seed"), "{err}");
    assert!(
        err.to_string().contains("expected u64, found string"),
        "{err}"
    );
}

#[test]
fn run_report_rejects_truncated_input() {
    let sc = Scenario::paper_testbed_standard()
        .with_rate(10_000_000)
        .with_rtt(SimDuration::from_millis(10))
        .with_duration(SimDuration::from_millis(200));
    let json = run(&sc).to_json();
    let err = RunReport::from_json(&json[..json.len() / 2]).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("truncated") || msg.contains("end of input") || msg.contains("unterminated"),
        "{msg}"
    );
}
