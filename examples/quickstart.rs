//! Quickstart: the paper's headline experiment in a dozen lines.
//!
//! Runs the §4 testbed (100 Mbit/s, 60 ms RTT, txqueuelen 100, 25 s) twice —
//! standard TCP and Restricted Slow-Start — and prints throughput and
//! send-stall counts.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rss_core::plot::fmt_bps;
use rss_core::{run, Scenario};

fn main() {
    let standard = run(&Scenario::paper_testbed_standard());
    let restricted = run(&Scenario::paper_testbed_restricted());

    let s = &standard.flows[0];
    let r = &restricted.flows[0];

    println!("Restricted Slow-Start for TCP — quickstart (paper §4 testbed)");
    println!("--------------------------------------------------------------");
    println!(
        "standard   TCP: goodput {:>14}   send-stalls {:>3}   cwnd_max {:>7} B",
        fmt_bps(s.goodput_bps),
        s.vars.send_stall,
        s.vars.max_cwnd
    );
    println!(
        "restricted TCP: goodput {:>14}   send-stalls {:>3}   cwnd_max {:>7} B",
        fmt_bps(r.goodput_bps),
        r.vars.send_stall,
        r.vars.max_cwnd
    );
    println!(
        "improvement: {:+.1}%  (paper reports ≈ +40%)",
        (r.goodput_bps / s.goodput_bps - 1.0) * 100.0
    );
    println!(
        "\nstall timestamps (standard): {:?}",
        s.stall_times_s
            .iter()
            .map(|t| (t * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
    println!(
        "NIC utilization: standard {:.1}%  restricted {:.1}%",
        standard.sender_nic_utilization * 100.0,
        restricted.sender_nic_utilization * 100.0
    );

    // Full machine-readable reports, alongside the CSV artifacts.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join("quickstart_run.json");
    let json = format!(
        "{{\"standard\":{},\"restricted\":{}}}\n",
        standard.to_json(),
        restricted.to_json()
    );
    std::fs::write(&path, json).expect("write json report");
    println!("full run reports (JSON): {}", path.display());
}
