//! Quickstart: the paper's headline experiment, loaded from a scenario file.
//!
//! The testbed pair (§4: 100 Mbit/s, 60 ms RTT, txqueuelen 100, 25 s;
//! standard TCP vs Restricted Slow-Start) lives in
//! `scenarios/quickstart.json` — this example is a thin wrapper that loads
//! the file, runs it, and prints throughput and send-stall counts. The same
//! file drives `rss run scenarios/quickstart.json` and the CI scenario
//! matrix; a workspace test asserts it expands to exactly
//! `Scenario::paper_testbed_standard()` / `paper_testbed_restricted()`.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rss_core::plot::fmt_bps;
use rss_core::{run, ScenarioSpec};
use std::path::Path;

fn main() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let spec = ScenarioSpec::load(&root.join("scenarios/quickstart.json")).expect("load scenario");
    let runs = spec.expand().expect("expand scenario");
    let scenario = |label: &str| {
        &runs
            .iter()
            .find(|r| r.label == label)
            .expect("run label")
            .scenario
    };
    let standard = run(scenario("standard"));
    let restricted = run(scenario("restricted"));

    let s = &standard.flows[0];
    let r = &restricted.flows[0];

    println!("Restricted Slow-Start for TCP — quickstart (paper §4 testbed)");
    println!("--------------------------------------------------------------");
    println!(
        "standard   TCP: goodput {:>14}   send-stalls {:>3}   cwnd_max {:>7} B",
        fmt_bps(s.goodput_bps),
        s.vars.send_stall,
        s.vars.max_cwnd
    );
    println!(
        "restricted TCP: goodput {:>14}   send-stalls {:>3}   cwnd_max {:>7} B",
        fmt_bps(r.goodput_bps),
        r.vars.send_stall,
        r.vars.max_cwnd
    );
    println!(
        "improvement: {:+.1}%  (paper reports ≈ +40%)",
        (r.goodput_bps / s.goodput_bps - 1.0) * 100.0
    );
    println!(
        "\nstall timestamps (standard): {:?}",
        s.stall_times_s
            .iter()
            .map(|t| (t * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
    println!(
        "NIC utilization: standard {:.1}%  restricted {:.1}%",
        standard.sender_nic_utilization * 100.0,
        restricted.sender_nic_utilization * 100.0
    );

    // Full machine-readable reports, alongside the CSV artifacts. A fresh
    // clone has no results/ directory — create it before writing.
    let dir = root.join("results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join("quickstart_run.json");
    let json = format!(
        "{{\"standard\":{},\"restricted\":{}}}\n",
        standard.to_json(),
        restricted.to_json()
    );
    std::fs::write(&path, json).expect("write json report");
    println!("full run reports (JSON): {}", path.display());
}
