//! The §3 tuning procedure end to end: find the ultimate gain of the IFQ
//! plant, apply the paper's Ziegler–Nichols constants, and validate the
//! resulting controller on the simulated testbed.
//!
//! ```text
//! cargo run --release --example zn_tuning
//! ```

use rss_core::{
    find_ultimate_gain, run, CcAlgorithm, DeadTimePlant, IntegratorPlant, RssConfig, Scenario,
    ZnSearchConfig,
};

fn main() {
    // Small-signal model of the sending host's IFQ on the paper's path:
    // the queue integrates the controller's per-ACK window increments at the
    // ACK rate (100 Mbit/s / 1500 B = 8333 ACKs/s) and the controller
    // observes the result one packet time later (dead time θ = 120 µs).
    let ack_rate = 100_000_000.0 / (8.0 * 1500.0);
    let theta = 1.0 / ack_rate;
    let mut plant = DeadTimePlant::new(IntegratorPlant::new(ack_rate, 0.0), theta);

    println!("Ziegler–Nichols ultimate-gain experiment (automated §3 procedure)");
    println!("plant: IFQ ≈ integrator(K = {ack_rate:.1} pkt/s) + dead time θ = {theta:.6} s\n");

    let cfg = ZnSearchConfig {
        kp_lo: 1e-4,
        kp_hi: 1e2,
        dt: theta / 20.0,
        sim_time: theta * 4000.0,
        setpoint: 90.0,
        tolerance: 1e-3,
        sustained_band: 0.05,
    };
    let zn = find_ultimate_gain(&mut plant, &cfg).expect("no ultimate gain found");
    let analytic_kc = std::f64::consts::FRAC_PI_2 / (ack_rate * theta);
    println!(
        "measured:  Kc = {:.4}   Tc = {:.6} s   ({} closed-loop experiments)",
        zn.kc, zn.tc, zn.experiments
    );
    println!(
        "analytic:  Kc = {:.4}   Tc = {:.6} s   (π/(2Kθ), 4θ)\n",
        analytic_kc,
        4.0 * theta
    );

    let gains = zn.paper_gains();
    println!("paper rule (Kp = 0.33 Kc, Ti = 0.5 Tc, Td = 0.33 Tc):");
    println!(
        "  Kp = {:.4}   Ti = {:.6} s   Td = {:.6} s\n",
        gains.kp, gains.ti, gains.td
    );

    // Validate on the full simulated testbed.
    let sc = Scenario::paper_testbed(CcAlgorithm::Restricted(RssConfig::with_gains(gains)));
    let report = run(&sc);
    let f = &report.flows[0];
    println!("validation on the §4 testbed (25 s):");
    println!(
        "  goodput {:.2} Mbit/s   send-stalls {}   NIC utilization {:.1}%",
        f.goodput_bps / 1e6,
        f.vars.send_stall,
        report.sender_nic_utilization * 100.0
    );

    let baseline = run(&Scenario::paper_testbed_standard());
    println!(
        "  improvement over standard TCP: {:+.1}%  (paper: ≈ +40%)",
        (f.goodput_bps / baseline.flows[0].goodput_bps - 1.0) * 100.0
    );
}
