//! Where does Restricted Slow-Start help? A small WAN grid: RTT × line rate,
//! reporting the throughput improvement over standard TCP in each cell.
//!
//! ```text
//! cargo run --release --example wan_sweep
//! ```
//!
//! Expectation from §1 of the paper: the win grows with the bandwidth-delay
//! product — short/slow paths barely stall, long/fast paths lose most of
//! their capacity to a single early send-stall.

use rss_core::plot::ascii_table;
use rss_core::{run_many, CcAlgorithm, RssConfig, Scenario, SimDuration};

fn main() {
    let rtts_ms = [10u64, 30, 60, 120];
    let rates_mbps = [10u64, 100, 1000];

    // Build the whole grid and run it in parallel.
    let mut scenarios = Vec::new();
    for &rate in &rates_mbps {
        for &rtt in &rtts_ms {
            let bps = rate * 1_000_000;
            let std = Scenario::paper_testbed_standard()
                .with_rate(bps)
                .with_rtt(SimDuration::from_millis(rtt))
                .with_auto_rwnd();
            let rss =
                Scenario::paper_testbed(CcAlgorithm::Restricted(RssConfig::tuned_for(bps, 1500)))
                    .with_rate(bps)
                    .with_rtt(SimDuration::from_millis(rtt))
                    .with_auto_rwnd();
            scenarios.push(std);
            scenarios.push(rss);
        }
    }
    let reports = run_many(&scenarios);

    let mut rows = Vec::new();
    let mut k = 0;
    for &rate in &rates_mbps {
        for &rtt in &rtts_ms {
            let std = &reports[k].flows[0];
            let rss = &reports[k + 1].flows[0];
            k += 2;
            rows.push(vec![
                format!("{rate}"),
                format!("{rtt}"),
                format!("{:.2}", std.goodput_bps / 1e6),
                std.vars.send_stall.to_string(),
                format!("{:.2}", rss.goodput_bps / 1e6),
                format!("{:+.1}%", (rss.goodput_bps / std.goodput_bps - 1.0) * 100.0),
            ]);
        }
    }
    println!("WAN grid: 25 s bulk transfer, txqueuelen 100, per-cell retuned RSS\n");
    println!(
        "{}",
        ascii_table(
            &[
                "rate Mbit/s",
                "RTT ms",
                "std Mbit/s",
                "std stalls",
                "rss Mbit/s",
                "improvement"
            ],
            &rows
        )
    );
    println!("reading: the improvement tracks the bandwidth-delay product, §1's claim.");
}
