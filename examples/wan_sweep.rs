//! Where does Restricted Slow-Start help? A small WAN grid: RTT × line rate,
//! reporting the throughput improvement over standard TCP in each cell.
//!
//! The grid is data — `scenarios/wan_sweep.json` holds the two runs
//! (standard, per-rate-retuned restricted) and the `sweep` block; this
//! example is a thin wrapper that expands the file and renders the table.
//! `rss run scenarios/wan_sweep.json` executes the identical 24 simulations.
//!
//! ```text
//! cargo run --release --example wan_sweep
//! ```
//!
//! Expectation from §1 of the paper: the win grows with the bandwidth-delay
//! product — short/slow paths barely stall, long/fast paths lose most of
//! their capacity to a single early send-stall.

use rss_core::plot::ascii_table;
use rss_core::{run_many, ScenarioSpec};
use std::path::Path;

fn main() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let spec = ScenarioSpec::load(&root.join("scenarios/wan_sweep.json")).expect("load scenario");
    let expanded = spec.expand().expect("expand scenario");

    let scenarios: Vec<_> = expanded.iter().map(|r| r.scenario.clone()).collect();
    let reports = run_many(&scenarios);

    // Pair the runs per sweep cell by label (robust to extra runs being
    // added to the file); the cell's path parameters come from the resolved
    // scenario itself.
    let cells = expanded.last().map_or(0, |r| r.cell + 1);
    let mut rows = Vec::new();
    for cell in 0..cells {
        let index_of = |label: &str| {
            expanded
                .iter()
                .position(|r| r.cell == cell && r.label == label)
                .unwrap_or_else(|| panic!("cell {cell} is missing run `{label}`"))
        };
        let (si, ri) = (index_of("standard"), index_of("restricted"));
        let sc = &expanded[si].scenario;
        let std = &reports[si].flows[0];
        let rss = &reports[ri].flows[0];
        rows.push(vec![
            format!("{}", sc.path.rate_bps as f64 / 1e6),
            format!("{}", sc.path.rtt.as_nanos() as f64 / 1e6),
            format!("{:.2}", std.goodput_bps / 1e6),
            std.vars.send_stall.to_string(),
            format!("{:.2}", rss.goodput_bps / 1e6),
            format!("{:+.1}%", (rss.goodput_bps / std.goodput_bps - 1.0) * 100.0),
        ]);
    }
    println!("WAN grid: 25 s bulk transfer, txqueuelen 100, per-cell retuned RSS\n");
    println!(
        "{}",
        ascii_table(
            &[
                "rate Mbit/s",
                "RTT ms",
                "std Mbit/s",
                "std stalls",
                "rss Mbit/s",
                "improvement"
            ],
            &rows
        )
    );
    println!("reading: the improvement tracks the bandwidth-delay product, §1's claim.");
}
