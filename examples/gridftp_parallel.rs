//! GridFTP-style parallel streams: stripe one 100 MB transfer over N TCP
//! connections from a single host — the workload that motivated the authors
//! (they built GridFTP, and the send-stall pathology surfaced in their
//! IGrid2002 demo).
//!
//! ```text
//! cargo run --release --example gridftp_parallel
//! ```

use rss_core::plot::ascii_table;
use rss_core::{
    run, stripe_bytes, AppModel, CcAlgorithm, FlowSpec, RssConfig, Scenario, SimDuration, SimTime,
};

fn transfer(algo: CcAlgorithm, streams: u32, total: u64) -> (Option<f64>, u64, f64) {
    let mut sc = Scenario::paper_testbed(algo);
    sc.flows = stripe_bytes(total, streams)
        .into_iter()
        .map(|bytes| FlowSpec {
            algo,
            app: AppModel::Bulk { bytes: Some(bytes) },
            start: SimTime::ZERO,
        })
        .collect();
    sc.shared_sender_host = true;
    sc.stop_when_complete = true;
    sc.duration = SimDuration::from_secs(60);
    sc.web100_stride = 16;
    let r = run(&sc);
    let completion = r
        .flows
        .iter()
        .map(|f| f.completed_at_s)
        .collect::<Option<Vec<f64>>>()
        .map(|ts| ts.into_iter().fold(0.0f64, f64::max));
    (completion, r.total_stalls(), r.fairness())
}

fn main() {
    let total: u64 = 100 * 1024 * 1024;
    println!("striping a 100 MB transfer over N parallel streams, one sending host\n");
    let mut rows = Vec::new();
    for streams in [1u32, 2, 4, 8] {
        for (label, algo) in [
            ("standard", CcAlgorithm::Reno),
            // Per-flow gains: each stream's loop is tuned to its ACK share
            // of the shared host (see EXPERIMENTS.md E10).
            (
                "restricted",
                CcAlgorithm::Restricted(RssConfig::tuned_for(100_000_000 / streams as u64, 1500)),
            ),
        ] {
            let (done, stalls, jain) = transfer(algo, streams, total);
            rows.push(vec![
                streams.to_string(),
                label.to_string(),
                done.map(|t| format!("{t:.2} s"))
                    .unwrap_or_else(|| "unfinished".into()),
                done.map(|t| format!("{:.2}", total as f64 * 8.0 / t / 1e6))
                    .unwrap_or_else(|| "-".into()),
                stalls.to_string(),
                format!("{jain:.3}"),
            ]);
        }
    }
    println!(
        "{}",
        ascii_table(
            &[
                "streams",
                "algorithm",
                "completion",
                "eff. Mbit/s",
                "stalls",
                "Jain"
            ],
            &rows
        )
    );
    println!("note: every stream runs its own PID against the shared interface queue.");
}
