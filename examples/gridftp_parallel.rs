//! GridFTP-style parallel streams: stripe one 100 MB transfer over N TCP
//! connections from a single host — the workload that motivated the authors
//! (they built GridFTP, and the send-stall pathology surfaced in their
//! IGrid2002 demo).
//!
//! The workload is data — `scenarios/gridftp_parallel.json` holds the two
//! runs (standard, per-stream-retuned restricted) and the stream-count
//! sweep; this example is a thin wrapper that expands the file and renders
//! the completion table. `rss run scenarios/gridftp_parallel.json` executes
//! the identical simulations.
//!
//! ```text
//! cargo run --release --example gridftp_parallel
//! ```

use rss_core::plot::ascii_table;
use rss_core::{run_many, RunReport, Scenario, ScenarioSpec};
use std::path::Path;

/// Bytes the run's application layer commits (the striped transfer size).
fn committed_bytes(sc: &Scenario) -> u64 {
    sc.flows.iter().filter_map(|f| f.app.total_bytes()).sum()
}

/// Worst completion time across the stripes, total stalls, Jain fairness.
fn summarize(r: &RunReport) -> (Option<f64>, u64, f64) {
    let completion = r
        .flows
        .iter()
        .map(|f| f.completed_at_s)
        .collect::<Option<Vec<f64>>>()
        .map(|ts| ts.into_iter().fold(0.0f64, f64::max));
    (completion, r.total_stalls(), r.fairness())
}

fn main() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let spec =
        ScenarioSpec::load(&root.join("scenarios/gridftp_parallel.json")).expect("load scenario");
    let expanded = spec.expand().expect("expand scenario");

    let scenarios: Vec<_> = expanded.iter().map(|r| r.scenario.clone()).collect();
    let reports = run_many(&scenarios);

    // The transfer size comes from the scenario file, not a constant here.
    let total = committed_bytes(&expanded[0].scenario);
    println!(
        "striping a {} MB transfer over N parallel streams, one sending host\n",
        total / (1024 * 1024)
    );
    let mut rows = Vec::new();
    for (er, report) in expanded.iter().zip(&reports) {
        let total = committed_bytes(&er.scenario);
        let (done, stalls, jain) = summarize(report);
        rows.push(vec![
            er.scenario.flows.len().to_string(),
            er.label.clone(),
            done.map(|t| format!("{t:.2} s"))
                .unwrap_or_else(|| "unfinished".into()),
            done.map(|t| format!("{:.2}", total as f64 * 8.0 / t / 1e6))
                .unwrap_or_else(|| "-".into()),
            stalls.to_string(),
            format!("{jain:.3}"),
        ]);
    }
    println!(
        "{}",
        ascii_table(
            &[
                "streams",
                "algorithm",
                "completion",
                "eff. Mbit/s",
                "stalls",
                "Jain"
            ],
            &rows
        )
    );
    println!("note: every stream runs its own PID against the shared interface queue.");
}
