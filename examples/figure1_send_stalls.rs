//! Reproduce **Figure 1** of the paper: cumulative send-stall signals over
//! time, standard Linux TCP vs the proposed (restricted) scheme.
//!
//! ```text
//! cargo run --release --example figure1_send_stalls
//! ```
//!
//! The standard stack climbs a staircase of stall signals in the first
//! seconds of the transfer and pays for each with a window collapse; the
//! restricted stack holds the interface queue at 90 % of `txqueuelen` and
//! never stalls.

use rss_core::plot::{ascii_chart, Series};
use rss_core::{run, Scenario};

fn main() {
    let standard = run(&Scenario::paper_testbed_standard());
    let restricted = run(&Scenario::paper_testbed_restricted());

    let stair = |r: &rss_core::RunReport| -> Vec<(f64, f64)> {
        r.flows[0]
            .stall_staircase(25.0, 0.25)
            .into_iter()
            .map(|(t, c)| (t, c as f64))
            .collect()
    };
    let s_pts = stair(&standard);
    let r_pts = stair(&restricted);

    println!(
        "{}",
        ascii_chart(
            "Figure 1: cumulative send-stall signals (paper testbed, 25 s)",
            &[
                Series {
                    label: "standard TCP",
                    points: &s_pts,
                    glyph: '#',
                },
                Series {
                    label: "restricted slow-start",
                    points: &r_pts,
                    glyph: 'o',
                },
            ],
            72,
            10,
        )
    );

    println!(
        "stall events (standard): {:?}",
        standard.flows[0].stall_times_s
    );
    println!(
        "stall events (restricted): {:?}",
        restricted.flows[0].stall_times_s
    );

    // The IFQ view of the same story: what the controller regulates.
    let ifq_std: Vec<(f64, f64)> = standard
        .sender_ifq_series
        .iter()
        .copied()
        .filter(|&(t, _)| t < 3.0)
        .collect();
    let ifq_rss: Vec<(f64, f64)> = restricted
        .sender_ifq_series
        .iter()
        .copied()
        .filter(|&(t, _)| t < 3.0)
        .collect();
    println!(
        "{}",
        ascii_chart(
            "IFQ depth (packets) during the first 3 s",
            &[
                Series {
                    label: "standard TCP",
                    points: &ifq_std,
                    glyph: '#',
                },
                Series {
                    label: "restricted slow-start (set point = 90)",
                    points: &ifq_rss,
                    glyph: 'o',
                },
            ],
            72,
            12,
        )
    );
}
