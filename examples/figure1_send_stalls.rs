//! Reproduce **Figure 1** of the paper: cumulative send-stall signals over
//! time, standard Linux TCP vs the proposed (restricted) scheme.
//!
//! The testbeds are data — `scenarios/figure1.json` — and this example is a
//! thin wrapper that loads the two headline runs from it (the file's third
//! run, the Tahoe-style stall response, belongs to the bench-side E1
//! rendering and the CI scenario matrix).
//!
//! ```text
//! cargo run --release --example figure1_send_stalls
//! ```
//!
//! The standard stack climbs a staircase of stall signals in the first
//! seconds of the transfer and pays for each with a window collapse; the
//! restricted stack holds the interface queue at 90 % of `txqueuelen` and
//! never stalls.

use rss_core::plot::{ascii_chart, Series};
use rss_core::{run, ScenarioSpec};
use std::path::Path;

fn main() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let spec = ScenarioSpec::load(&root.join("scenarios/figure1.json")).expect("load scenario");
    let runs = spec.expand().expect("expand scenario");
    let scenario = |label: &str| {
        &runs
            .iter()
            .find(|r| r.label == label)
            .expect("run label")
            .scenario
    };
    let standard = run(scenario("standard_cwr"));
    let restricted = run(scenario("restricted"));

    let stair = |r: &rss_core::RunReport| -> Vec<(f64, f64)> {
        r.flows[0]
            .stall_staircase(25.0, 0.25)
            .into_iter()
            .map(|(t, c)| (t, c as f64))
            .collect()
    };
    let s_pts = stair(&standard);
    let r_pts = stair(&restricted);

    println!(
        "{}",
        ascii_chart(
            "Figure 1: cumulative send-stall signals (paper testbed, 25 s)",
            &[
                Series {
                    label: "standard TCP",
                    points: &s_pts,
                    glyph: '#',
                },
                Series {
                    label: "restricted slow-start",
                    points: &r_pts,
                    glyph: 'o',
                },
            ],
            72,
            10,
        )
    );

    println!(
        "stall events (standard): {:?}",
        standard.flows[0].stall_times_s
    );
    println!(
        "stall events (restricted): {:?}",
        restricted.flows[0].stall_times_s
    );

    // The IFQ view of the same story: what the controller regulates.
    let ifq_std: Vec<(f64, f64)> = standard
        .sender_ifq_series
        .iter()
        .copied()
        .filter(|&(t, _)| t < 3.0)
        .collect();
    let ifq_rss: Vec<(f64, f64)> = restricted
        .sender_ifq_series
        .iter()
        .copied()
        .filter(|&(t, _)| t < 3.0)
        .collect();
    println!(
        "{}",
        ascii_chart(
            "IFQ depth (packets) during the first 3 s",
            &[
                Series {
                    label: "standard TCP",
                    points: &ifq_std,
                    glyph: '#',
                },
                Series {
                    label: "restricted slow-start (set point = 90)",
                    points: &ifq_rss,
                    glyph: 'o',
                },
            ],
            72,
            12,
        )
    );
}
