//! Property-based tests for the TCP state machines.

use proptest::prelude::*;
use rss_sim::{SimDuration, SimTime};
use rss_tcp::{
    make_cc, AckPolicy, CcAlgorithm, CcView, CongestionControl, ConnId, RssConfig, ScalableConfig,
    SslConfig, StallResponse, TcpConfig, TcpReceiver,
};

fn cfg_every() -> TcpConfig {
    TcpConfig {
        ack_policy: AckPolicy::EverySegment,
        ..TcpConfig::default()
    }
}

proptest! {
    /// The receiver reassembles any permutation of segments (with arbitrary
    /// duplication) into exactly the original byte stream.
    #[test]
    fn receiver_reassembles_any_arrival_order(
        n_segments in 1usize..40,
        order in prop::collection::vec(0usize..40, 1..120),
        seg_len in 1u32..2000,
    ) {
        let total = n_segments as u64 * seg_len as u64;
        let mut r = TcpReceiver::new(ConnId(0), cfg_every());
        let mut t = 0u64;
        // Deliver segments in the given (possibly duplicated) order...
        for &i in &order {
            let i = i % n_segments;
            t += 1;
            r.on_segment(SimTime::from_micros(t), i as u64 * seg_len as u64, seg_len);
        }
        // ...then deliver any still-missing segments in order.
        for i in 0..n_segments {
            t += 1;
            r.on_segment(SimTime::from_micros(t), i as u64 * seg_len as u64, seg_len);
        }
        prop_assert_eq!(r.rcv_nxt(), total, "stream not fully reassembled");
        prop_assert_eq!(r.ooo_bytes(), 0, "out-of-order data left behind");
    }

    /// The cumulative ACK never decreases and never exceeds the highest byte
    /// received.
    #[test]
    fn acks_are_monotone_and_bounded(
        arrivals in prop::collection::vec((0u64..30, 1u32..1500), 1..80),
    ) {
        let mut r = TcpReceiver::new(ConnId(0), cfg_every());
        let mut highest_end = 0u64;
        let mut last_ack = 0u64;
        for (i, &(seg, len)) in arrivals.iter().enumerate() {
            let seq = seg * 1448;
            highest_end = highest_end.max(seq + len as u64);
            if let Some(a) = r.on_segment(SimTime::from_micros(i as u64 + 1), seq, len) {
                prop_assert!(a.ack >= last_ack, "ACK went backwards");
                prop_assert!(a.ack <= highest_end, "ACK beyond received data");
                last_ack = a.ack;
            }
        }
    }

    /// Congestion-window algebra invariants hold for every algorithm under
    /// arbitrary ACK/congestion event sequences: cwnd stays within
    /// [1 MSS, initial + total_acked + inflation] and never hits zero.
    #[test]
    fn cc_window_stays_sane(
        algo_pick in 0u8..9,
        events in prop::collection::vec((0u8..4, 1u64..20_000), 1..300),
    ) {
        let cfg = TcpConfig::default();
        let algo = match algo_pick {
            0 => CcAlgorithm::Reno,
            1 => CcAlgorithm::Restricted(RssConfig::tuned()),
            2 => CcAlgorithm::Ssthreshless(SslConfig::default()),
            3 => CcAlgorithm::HighSpeed,
            4 => CcAlgorithm::Scalable(ScalableConfig::default()),
            5 => CcAlgorithm::Bbr,
            6 => CcAlgorithm::Relentless,
            7 => CcAlgorithm::Hybrid,
            _ => CcAlgorithm::Limited { max_ssthresh: None },
        };
        let mut cc = make_cc(algo, &cfg).expect("default config is valid");
        let mss = cfg.mss as u64;
        let mut now_us = 0u64;
        for &(kind, arg) in &events {
            now_us += 120;
            let view = CcView {
                now: SimTime::from_micros(now_us),
                mss: cfg.mss,
                flight: arg.min(cc.cwnd()),
                ifq_depth: (arg % 120) as u32,
                ifq_max: 100,
                // Exercise the delay-based arm: RTTs wander up to ~4x above
                // a fixed floor, so the ssthreshless probe exit fires on
                // some trajectories and not others.
                last_rtt: Some(SimDuration::from_micros(60_000 + (arg * 7919) % 180_000)),
                min_rtt: Some(SimDuration::from_micros(60_000)),
                delivered: now_us / 10,
                // Wandering rate samples (with occasional app-limited marks)
                // drive the rate-based arms' bandwidth filters.
                delivery_rate: Some(1 + (arg * 104_729) % 10_000_000),
                delivery_interval: Some(SimDuration::from_micros(60_000)),
                app_limited: arg % 5 == 0,
            };
            match kind {
                0 => cc.on_ack(&view, arg.min(3 * mss)),
                1 => cc.on_congestion(&view, rss_tcp::CongestionEvent::Timeout),
                2 => cc.on_congestion(&view, rss_tcp::CongestionEvent::LocalStall),
                _ => cc.on_congestion(&view, rss_tcp::CongestionEvent::FastRetransmit),
            }
            prop_assert!(cc.cwnd() >= mss, "window collapsed below 1 MSS");
            prop_assert!(cc.ssthresh() >= 2 * mss, "ssthresh below the floor");
            prop_assert!(cc.cwnd() < u64::MAX / 4, "window diverged");
        }
    }

    /// The restricted scheme's defining property, for arbitrary IFQ
    /// trajectories: per-ACK growth never exceeds the standard slow-start
    /// increment.
    #[test]
    fn restricted_growth_bounded_by_standard(
        depths in prop::collection::vec(0u32..150, 1..500),
    ) {
        let cfg = TcpConfig::default();
        let mut cc = make_cc(CcAlgorithm::Restricted(RssConfig::tuned()), &cfg)
            .expect("default config is valid");
        let mss = cfg.mss as u64;
        let mut now_us = 0u64;
        let mut prev = cc.cwnd();
        for &d in &depths {
            now_us += 120;
            let view = CcView {
                now: SimTime::from_micros(now_us),
                mss: cfg.mss,
                flight: prev,
                ifq_depth: d.min(100),
                ifq_max: 100,
                last_rtt: None,
                min_rtt: None,
                delivered: 0,
                delivery_rate: None,
                delivery_interval: None,
                app_limited: false,
            };
            cc.on_ack(&view, mss);
            prop_assert!(
                cc.cwnd() <= prev + mss,
                "grew more than one MSS on one ACK"
            );
            prev = cc.cwnd();
        }
    }

    /// Sender-level fuzz: a bounded transfer driven by arbitrary interleaved
    /// ACK progress and timer fires never violates flight/window accounting.
    #[test]
    fn sender_accounting_invariants(
        script in prop::collection::vec((0u8..3, 1u64..5), 1..200),
    ) {
        use rss_tcp::{IfqSnapshot, Reno, TcpSender};
        let cfg = TcpConfig {
            mss: 1000,
            ..TcpConfig::default()
        };
        let cc = rss_tcp::cc::CcEngine::from(Reno::new(
            cfg.initial_cwnd(),
            cfg.effective_initial_ssthresh(),
            cfg.mss,
            StallResponse::Cwr,
        ));
        let mut s = TcpSender::new(ConnId(0), cfg, cc, Some(200_000));
        let ifq = IfqSnapshot { depth: 0, max: 100 };
        let mut now = SimTime::ZERO;
        for &(op, amount) in &script {
            now += rss_sim::SimDuration::from_millis(10);
            match op {
                0 => {
                    // Transmit as allowed.
                    while let Some(p) = s.can_transmit(now) {
                        s.commit_transmit(now, p);
                    }
                }
                1 => {
                    // Cumulative ACK for `amount` segments (bounded by nxt).
                    let ack = (s.snd_una() + amount * 1000).min(s.snd_nxt());
                    if ack > 0 {
                        s.on_ack(now, ack, 1_000_000, ifq);
                    }
                }
                _ => {
                    if let Some(d) = s.rto_deadline() {
                        // Firing the timer advances the wall clock to the
                        // deadline; keep the script's clock monotone.
                        now = now.max(d);
                        s.on_rto_check(now, ifq);
                    }
                }
            }
            prop_assert!(s.snd_una() <= s.snd_nxt(), "una passed nxt");
            prop_assert_eq!(s.flight(), s.snd_nxt() - s.snd_una());
            prop_assert!(s.snd_nxt() <= 200_000 + 1000, "sent past app data");
        }
    }
}
