//! Pluggable congestion control.
//!
//! The sender owns loss detection and retransmission; the congestion-control
//! module owns the window. The three implementations are the paper's
//! comparison set:
//!
//! * [`Reno`] — standard slow-start + AIMD congestion avoidance, the
//!   Linux 2.4.19 baseline the paper measures against;
//! * [`RestrictedSlowStart`] — the paper's contribution: slow-start growth
//!   paced by a PID controller on IFQ occupancy;
//! * [`LimitedSlowStart`] — RFC 3742, the era's other slow-start moderation
//!   proposal, as an extension baseline.

pub mod limited;
pub mod reno;
pub mod restricted;

pub use limited::LimitedSlowStart;
pub use reno::Reno;
pub use restricted::{RestrictedSlowStart, RssConfig};

use rss_sim::SimTime;

/// Sender state exposed to the congestion controller at decision points.
#[derive(Debug, Clone, Copy)]
pub struct CcView {
    /// Current simulation time.
    pub now: SimTime,
    /// Maximum segment size, bytes.
    pub mss: u32,
    /// Bytes currently in flight (`snd_nxt − snd_una`).
    pub flight: u64,
    /// Current depth of the host's interface queue, packets.
    pub ifq_depth: u32,
    /// Capacity of the host's interface queue, packets.
    pub ifq_max: u32,
}

/// Congestion signals delivered by the sender.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CongestionEvent {
    /// Third duplicate ACK — fast retransmit (network congestion).
    FastRetransmit,
    /// Retransmission timeout (severe network congestion).
    Timeout,
    /// Local send-stall: the IFQ rejected a segment (host congestion).
    LocalStall,
}

/// The window-management interface.
///
/// All quantities are in bytes. The sender calls exactly one of the `on_*`
/// hooks per event; it does not call [`CongestionControl::on_ack`] while in
/// fast recovery (recovery has its own hooks).
pub trait CongestionControl: std::fmt::Debug + Send {
    /// Current congestion window, bytes.
    fn cwnd(&self) -> u64;

    /// Current slow-start threshold, bytes.
    fn ssthresh(&self) -> u64;

    /// True while `cwnd < ssthresh` (the slow-start phase).
    fn in_slow_start(&self) -> bool {
        self.cwnd() < self.ssthresh()
    }

    /// A cumulative ACK advanced `snd_una` by `newly_acked` bytes.
    fn on_ack(&mut self, view: &CcView, newly_acked: u64);

    /// A congestion signal fired (at most once per window per kind; the
    /// sender throttles).
    fn on_congestion(&mut self, view: &CcView, ev: CongestionEvent);

    /// A duplicate ACK arrived while in fast recovery (Reno window
    /// inflation).
    fn on_recovery_dupack(&mut self, view: &CcView);

    /// A partial ACK arrived during fast recovery (NewReno deflation).
    fn on_recovery_partial_ack(&mut self, view: &CcView, newly_acked: u64);

    /// Fast recovery completed (the full outstanding window was ACKed).
    fn on_recovery_exit(&mut self, view: &CcView);

    /// Algorithm name for reports.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
pub(crate) fn test_view(now_ms: u64, mss: u32, flight: u64) -> CcView {
    CcView {
        now: SimTime::from_millis(now_ms),
        mss,
        flight,
        ifq_depth: 0,
        ifq_max: 100,
    }
}
