//! Wire types and configuration for the simulated TCP.
//!
//! Sequence numbers are 64-bit absolute byte offsets rather than wrapping
//! 32-bit values: the simulation never transfers 2^64 bytes, and absolute
//! offsets make the delivery invariants ("every byte delivered exactly once")
//! directly checkable. Window scaling and SACK are not modelled — the
//! baseline is Linux 2.4.19 Reno/NewReno, and receive windows are configured
//! statically as on the paper's hand-tuned grid hosts.

use rss_net::{Body, Ecn, FlowId};
use rss_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Identifies one TCP connection within a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ConnId(pub u32);

impl From<ConnId> for FlowId {
    fn from(c: ConnId) -> FlowId {
        FlowId(c.0)
    }
}

/// A TCP segment riding inside a network packet.
#[derive(Debug, Clone, Copy)]
pub struct TcpSegment {
    /// Connection the segment belongs to.
    pub conn: ConnId,
    /// Payload-bearing or pure-ACK.
    pub kind: SegKind,
    /// Header overhead on the wire (IP + TCP + options), bytes.
    pub header_bytes: u32,
    /// ECN codepoint: data segments of an ECN-negotiated flow carry
    /// [`Ecn::Ect`] (an AQM may rewrite it to [`Ecn::Ce`]); everything else,
    /// pure ACKs included, is [`Ecn::NotEct`] (RFC 3168 §6.1.4).
    pub ecn: Ecn,
}

/// The two segment shapes the simulation uses (data flows one way; pure ACKs
/// flow back).
#[derive(Debug, Clone, Copy)]
pub enum SegKind {
    /// A data segment.
    Data {
        /// First byte offset carried.
        seq: u64,
        /// Payload length in bytes.
        len: u32,
        /// True if this is a retransmission (Karn's rule needs it).
        retransmit: bool,
    },
    /// A pure acknowledgment.
    Ack {
        /// Cumulative ACK: next byte expected by the receiver.
        ack: u64,
        /// Receiver's advertised window in bytes.
        rwnd: u64,
        /// ECN echo: the receiver saw a CE mark since the last echo it sent
        /// (RFC 3168 ECE flag, simplified to echo-once per observed CE).
        ece: bool,
    },
}

impl Body for TcpSegment {
    fn wire_size(&self) -> u32 {
        match self.kind {
            SegKind::Data { len, .. } => len + self.header_bytes,
            SegKind::Ack { .. } => self.header_bytes,
        }
    }

    fn ecn(&self) -> Ecn {
        self.ecn
    }

    fn set_ecn(&mut self, codepoint: Ecn) {
        self.ecn = codepoint;
    }
}

/// How the receiver generates ACKs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AckPolicy {
    /// ACK every data segment (Linux "quickack" behaviour, which 2.4 used
    /// throughout slow-start).
    EverySegment,
    /// Classic delayed ACKs: one ACK per two segments, or after the delayed
    /// ACK timer fires.
    Delayed {
        /// Delayed-ACK timeout.
        timeout: SimDuration,
    },
}

// The congestion layer owns the stall-response policy (its Reno base acts on
// it); the transport re-exports it because `TcpConfig` carries it.
pub use rss_cc::StallResponse;

/// Static TCP configuration shared by sender and receiver.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TcpConfig {
    /// Maximum segment size (payload bytes). 1448 = Ethernet MTU minus
    /// IP/TCP headers and timestamp option, as on the paper's hosts.
    pub mss: u32,
    /// Per-segment header overhead on the wire.
    pub header_bytes: u32,
    /// Initial congestion window in segments (RFC 2581-era: 2).
    pub initial_cwnd_mss: u32,
    /// Initial slow-start threshold in bytes (`None` = effectively infinite).
    pub initial_ssthresh: Option<u64>,
    /// Receiver's advertised window (bytes), fixed for the whole run.
    pub rwnd: u64,
    /// Lower bound on the retransmission timeout (Linux: 200 ms).
    pub min_rto: SimDuration,
    /// Upper bound on the retransmission timeout.
    pub max_rto: SimDuration,
    /// ACK generation policy.
    pub ack_policy: AckPolicy,
    /// Congestion response to send-stalls.
    pub stall_response: StallResponse,
    /// How long the sender waits after a stall before re-probing the IFQ
    /// (models the qdisc-requeue/driver-wakeup latency).
    pub stall_retry: SimDuration,
    /// Number of duplicate ACKs that trigger fast retransmit.
    pub dupack_threshold: u32,
    /// ECN negotiated for this flow: data segments carry ECT, the receiver
    /// echoes CE marks as ECE, and the sender answers with a CWR-style
    /// once-per-RTT reduction. Off by default (pre-ECN behaviour).
    pub ecn: bool,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1448,
            header_bytes: 52,
            initial_cwnd_mss: 2,
            initial_ssthresh: None,
            rwnd: 2 * 1024 * 1024,
            min_rto: SimDuration::from_millis(200),
            max_rto: SimDuration::from_secs(60),
            ack_policy: AckPolicy::EverySegment,
            stall_response: StallResponse::Cwr,
            stall_retry: SimDuration::from_millis(1),
            dupack_threshold: 3,
            ecn: false,
        }
    }
}

impl TcpConfig {
    /// Initial congestion window in bytes.
    pub fn initial_cwnd(&self) -> u64 {
        self.initial_cwnd_mss as u64 * self.mss as u64
    }

    /// The effective "infinite" ssthresh used when none is configured.
    pub fn effective_initial_ssthresh(&self) -> u64 {
        self.initial_ssthresh.unwrap_or(u64::MAX / 2)
    }

    /// The congestion-control constructor inputs this configuration implies.
    pub fn cc_params(&self) -> rss_cc::CcParams {
        rss_cc::CcParams {
            initial_cwnd: self.initial_cwnd(),
            initial_ssthresh: self.effective_initial_ssthresh(),
            mss: self.mss,
            stall_response: self.stall_response,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sizes() {
        let data = TcpSegment {
            conn: ConnId(0),
            kind: SegKind::Data {
                seq: 0,
                len: 1448,
                retransmit: false,
            },
            header_bytes: 52,
            ecn: Ecn::Ect,
        };
        assert_eq!(data.wire_size(), 1500);
        let ack = TcpSegment {
            conn: ConnId(0),
            kind: SegKind::Ack {
                ack: 0,
                rwnd: 1000,
                ece: false,
            },
            header_bytes: 52,
            ecn: Ecn::NotEct,
        };
        assert_eq!(ack.wire_size(), 52);
    }

    #[test]
    fn default_config_matches_testbed() {
        let c = TcpConfig::default();
        assert_eq!(c.mss, 1448);
        assert_eq!(c.initial_cwnd(), 2896);
        assert!(c.effective_initial_ssthresh() > 1 << 40);
        assert_eq!(c.stall_response, StallResponse::Cwr);
    }

    #[test]
    fn conn_to_flow() {
        assert_eq!(FlowId::from(ConnId(7)), FlowId(7));
    }
}
