//! The receive side: cumulative ACK generation with configurable delayed-ACK
//! behaviour and out-of-order reassembly.
//!
//! Receive-window dynamics are not modelled (the application drains
//! instantly, as iperf-style sinks do); the advertised window is the
//! configured static `rwnd`, matching the hand-tuned hosts of the paper's
//! testbed.

use crate::types::{AckPolicy, ConnId, TcpConfig};
use rss_sim::SimTime;
use std::collections::BTreeMap;

/// An acknowledgment the receiver wants transmitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AckToSend {
    /// Cumulative ACK (next expected byte).
    pub ack: u64,
    /// Advertised receive window, bytes.
    pub rwnd: u64,
    /// ECN echo: a CE mark was observed since the last ACK sent (RFC 3168
    /// ECE, simplified to echo-once per observed CE batch — the sender's
    /// once-per-RTT gate makes persistent-ECE semantics redundant here).
    pub ece: bool,
}

/// Statistics kept by the receiver (for delivery-invariant checks).
#[derive(Debug, Clone, Copy, Default)]
pub struct ReceiverStats {
    /// Data segments received, including duplicates.
    pub segments_in: u64,
    /// Segments that were entirely duplicate data.
    pub duplicate_segments: u64,
    /// Segments buffered out of order.
    pub out_of_order_segments: u64,
    /// ACKs generated.
    pub acks_out: u64,
}

/// One connection's receive state.
#[derive(Debug)]
pub struct TcpReceiver {
    conn: ConnId,
    cfg: TcpConfig,
    rcv_nxt: u64,
    /// Out-of-order segments: start → end (coalesced on insert).
    ooo: BTreeMap<u64, u64>,
    segs_since_ack: u32,
    delack_deadline: Option<SimTime>,
    /// CE observed since the last ACK went out; the next ACK carries ECE.
    ece_pending: bool,
    stats: ReceiverStats,
}

impl TcpReceiver {
    /// Fresh receiver expecting byte 0.
    pub fn new(conn: ConnId, cfg: TcpConfig) -> Self {
        TcpReceiver {
            conn,
            cfg,
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            segs_since_ack: 0,
            delack_deadline: None,
            ece_pending: false,
            stats: ReceiverStats::default(),
        }
    }

    /// The arriving data segment (about to be fed to
    /// [`TcpReceiver::on_segment`]) carried a CE mark: the next ACK out
    /// echoes it as ECE.
    pub fn on_ce(&mut self) {
        self.ece_pending = true;
    }

    /// The connection this receiver belongs to.
    pub fn conn(&self) -> ConnId {
        self.conn
    }

    /// Next expected byte = bytes delivered in order to the application.
    pub fn rcv_nxt(&self) -> u64 {
        self.rcv_nxt
    }

    /// Bytes currently buffered out of order.
    pub fn ooo_bytes(&self) -> u64 {
        self.ooo.iter().map(|(&s, &e)| e - s).sum()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ReceiverStats {
        self.stats
    }

    /// Deadline of the pending delayed ACK, if armed.
    pub fn delack_deadline(&self) -> Option<SimTime> {
        self.delack_deadline
    }

    fn make_ack(&mut self) -> AckToSend {
        self.segs_since_ack = 0;
        self.delack_deadline = None;
        self.stats.acks_out += 1;
        AckToSend {
            ack: self.rcv_nxt,
            rwnd: self.cfg.rwnd,
            ece: std::mem::take(&mut self.ece_pending),
        }
    }

    /// Process an arriving data segment `[seq, seq+len)`. Returns an ACK to
    /// transmit immediately, if policy calls for one.
    pub fn on_segment(&mut self, now: SimTime, seq: u64, len: u32) -> Option<AckToSend> {
        assert!(len > 0, "zero-length data segment");
        self.stats.segments_in += 1;
        let end = seq + len as u64;

        if end <= self.rcv_nxt {
            // Entirely duplicate: immediate ACK restates rcv_nxt (RFC 5681).
            self.stats.duplicate_segments += 1;
            return Some(self.make_ack());
        }

        if seq > self.rcv_nxt {
            // Out of order: buffer and send an immediate duplicate ACK.
            self.stats.out_of_order_segments += 1;
            self.insert_ooo(seq, end);
            return Some(self.make_ack());
        }

        // In-order (possibly partially duplicate) delivery.
        let filled_gap = !self.ooo.is_empty();
        self.rcv_nxt = self.rcv_nxt.max(end);
        self.drain_ooo();

        match self.cfg.ack_policy {
            AckPolicy::EverySegment => Some(self.make_ack()),
            AckPolicy::Delayed { timeout } => {
                if filled_gap && self.rcv_nxt > end {
                    // We advanced past buffered data: ack immediately so the
                    // sender learns about the jump.
                    return Some(self.make_ack());
                }
                self.segs_since_ack += 1;
                if self.segs_since_ack >= 2 {
                    Some(self.make_ack())
                } else {
                    self.delack_deadline = Some(now + timeout);
                    None
                }
            }
        }
    }

    /// The delayed-ACK timer fired. Returns the ACK to send if one is still
    /// owed (the driver may race with a just-sent ACK; stale fires are safe).
    pub fn on_delack_timer(&mut self, now: SimTime) -> Option<AckToSend> {
        match self.delack_deadline {
            Some(d) if d <= now => Some(self.make_ack()),
            _ => None,
        }
    }

    fn insert_ooo(&mut self, seq: u64, end: u64) {
        // Coalesce with overlapping/adjacent intervals.
        let mut start = seq;
        let mut stop = end;
        // Absorb any interval that begins before `stop` and ends after `start`.
        let overlapping: Vec<u64> = self
            .ooo
            .range(..=stop)
            .filter(|&(&s, &e)| e >= start && s <= stop)
            .map(|(&s, _)| s)
            .collect();
        for s in overlapping {
            let e = self.ooo.remove(&s).expect("key just seen");
            start = start.min(s);
            stop = stop.max(e);
        }
        self.ooo.insert(start, stop);
    }

    fn drain_ooo(&mut self) {
        while let Some((&s, &e)) = self.ooo.first_key_value() {
            if s > self.rcv_nxt {
                break;
            }
            self.ooo.remove(&s);
            self.rcv_nxt = self.rcv_nxt.max(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rss_sim::SimDuration;

    fn cfg_every() -> TcpConfig {
        TcpConfig {
            ack_policy: AckPolicy::EverySegment,
            ..TcpConfig::default()
        }
    }

    fn cfg_delayed() -> TcpConfig {
        TcpConfig {
            ack_policy: AckPolicy::Delayed {
                timeout: SimDuration::from_millis(200),
            },
            ..TcpConfig::default()
        }
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn in_order_acks_every_segment() {
        let mut r = TcpReceiver::new(ConnId(0), cfg_every());
        let a = r.on_segment(t(0), 0, 1000).unwrap();
        assert_eq!(a.ack, 1000);
        let a = r.on_segment(t(1), 1000, 1000).unwrap();
        assert_eq!(a.ack, 2000);
        assert_eq!(r.rcv_nxt(), 2000);
        assert_eq!(r.stats().acks_out, 2);
    }

    #[test]
    fn delayed_ack_every_second_segment() {
        let mut r = TcpReceiver::new(ConnId(0), cfg_delayed());
        assert!(r.on_segment(t(0), 0, 1000).is_none());
        assert!(r.delack_deadline().is_some());
        let a = r.on_segment(t(1), 1000, 1000).unwrap();
        assert_eq!(a.ack, 2000);
        assert!(r.delack_deadline().is_none(), "ack cleared the timer");
    }

    #[test]
    fn delack_timer_flushes_pending_ack() {
        let mut r = TcpReceiver::new(ConnId(0), cfg_delayed());
        assert!(r.on_segment(t(0), 0, 1000).is_none());
        // Timer not yet due.
        assert!(r.on_delack_timer(t(100)).is_none());
        let a = r.on_delack_timer(t(200)).unwrap();
        assert_eq!(a.ack, 1000);
        // Stale second fire does nothing.
        assert!(r.on_delack_timer(t(201)).is_none());
    }

    #[test]
    fn out_of_order_triggers_immediate_dupack() {
        let mut r = TcpReceiver::new(ConnId(0), cfg_delayed());
        let a = r.on_segment(t(0), 1000, 1000).unwrap();
        assert_eq!(a.ack, 0, "dup ack restates rcv_nxt");
        assert_eq!(r.ooo_bytes(), 1000);
        // Filling the gap delivers everything and acks immediately.
        let a = r.on_segment(t(1), 0, 1000).unwrap();
        assert_eq!(a.ack, 2000);
        assert_eq!(r.ooo_bytes(), 0);
    }

    #[test]
    fn duplicate_segment_acked_immediately() {
        let mut r = TcpReceiver::new(ConnId(0), cfg_delayed());
        r.on_segment(t(0), 0, 1000);
        r.on_segment(t(1), 1000, 1000);
        let a = r.on_segment(t(2), 0, 1000).unwrap();
        assert_eq!(a.ack, 2000);
        assert_eq!(r.stats().duplicate_segments, 1);
    }

    #[test]
    fn ooo_intervals_coalesce() {
        let mut r = TcpReceiver::new(ConnId(0), cfg_every());
        r.on_segment(t(0), 3000, 1000); // [3000,4000)
        r.on_segment(t(1), 1000, 1000); // [1000,2000)
        r.on_segment(t(2), 2000, 1000); // bridges to [1000,4000)
        assert_eq!(r.ooo_bytes(), 3000);
        let a = r.on_segment(t(3), 0, 1000).unwrap();
        assert_eq!(a.ack, 4000, "whole buffer drained at once");
    }

    #[test]
    fn overlapping_ooo_not_double_counted() {
        let mut r = TcpReceiver::new(ConnId(0), cfg_every());
        r.on_segment(t(0), 1000, 1000);
        r.on_segment(t(1), 1500, 1000); // overlaps [1500,2000)
        assert_eq!(r.ooo_bytes(), 1500); // [1000,2500)
        let a = r.on_segment(t(2), 0, 1000).unwrap();
        assert_eq!(a.ack, 2500);
    }

    #[test]
    fn partial_overlap_with_delivered_data() {
        let mut r = TcpReceiver::new(ConnId(0), cfg_every());
        r.on_segment(t(0), 0, 1000);
        // Retransmission covering old + new data.
        let a = r.on_segment(t(1), 500, 1000).unwrap();
        assert_eq!(a.ack, 1500);
    }

    #[test]
    fn advertised_window_is_static_rwnd() {
        let mut r = TcpReceiver::new(ConnId(0), cfg_every());
        let a = r.on_segment(t(0), 0, 1000).unwrap();
        assert_eq!(a.rwnd, TcpConfig::default().rwnd);
    }

    #[test]
    fn ce_mark_echoed_once_then_cleared() {
        let mut r = TcpReceiver::new(ConnId(0), cfg_every());
        let a = r.on_segment(t(0), 0, 1000).unwrap();
        assert!(!a.ece, "no CE seen yet");
        r.on_ce();
        let a = r.on_segment(t(1), 1000, 1000).unwrap();
        assert!(a.ece, "CE echoed on the next ACK");
        let a = r.on_segment(t(2), 2000, 1000).unwrap();
        assert!(!a.ece, "echo-once: cleared after one ACK");
    }

    #[test]
    fn ce_echo_survives_delayed_ack() {
        let mut r = TcpReceiver::new(ConnId(0), cfg_delayed());
        r.on_ce();
        assert!(r.on_segment(t(0), 0, 1000).is_none(), "ack delayed");
        let a = r.on_delack_timer(t(200)).unwrap();
        assert!(a.ece, "pending echo rides the delayed ACK");
    }

    #[test]
    #[should_panic(expected = "zero-length")]
    fn zero_len_rejected() {
        let mut r = TcpReceiver::new(ConnId(0), cfg_every());
        r.on_segment(t(0), 0, 0);
    }
}
