//! The send side: window accounting, loss detection and recovery,
//! retransmission timers, send-stall handling, and Web100 instrumentation.
//!
//! The sender is sans-IO: the embedding world model asks it what to transmit
//! ([`TcpSender::can_transmit`]), attempts to place the segment on the host
//! NIC, and reports the outcome ([`TcpSender::commit_transmit`] on success,
//! [`TcpSender::on_local_stall`] when the IFQ rejects the segment — the
//! paper's send-stall). Timers follow the "deadline + stale-check" pattern:
//! the driver schedules a check event for each deadline it observes and the
//! sender ignores checks that no longer apply.

use crate::cc::{
    CcEngine, CcView, CongestionControl, CongestionEvent, PacingDecision, RecoveryEvent,
};
use crate::rtt::RttEstimator;
use crate::types::{ConnId, StallResponse, TcpConfig};
use rss_sim::{SimDuration, SimTime};
use rss_web100::{CongestionKind, InstrumentBlock, SndLimState};
use std::collections::VecDeque;

/// A transmission the sender wants to make.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxPlan {
    /// First byte offset.
    pub seq: u64,
    /// Payload length.
    pub len: u32,
    /// True if any part of the range was transmitted before.
    pub retransmit: bool,
}

/// Host-queue state the sender samples at event time (the controller's
/// process variable rides in here).
#[derive(Debug, Clone, Copy)]
pub struct IfqSnapshot {
    /// Current depth, packets.
    pub depth: u32,
    /// Capacity, packets.
    pub max: u32,
}

#[derive(Debug, Clone, Copy)]
struct SentInfo {
    sent_at: SimTime,
    retransmitted: bool,
    /// Cumulative bytes delivered when this segment departed: the ACK that
    /// covers it turns `delivered − this` over `now − sent_at` into a
    /// delivery-rate sample.
    delivered_at_send: u64,
    /// True when the application had run dry at departure time — the rate
    /// sample this segment produces measures the app, not the path.
    app_limited: bool,
}

#[derive(Debug, Clone, Copy)]
struct Recovery {
    /// `snd_nxt` when recovery began; a cumulative ACK at or past this ends
    /// recovery (NewReno's `recover`).
    recover: u64,
}

/// One connection's send state.
#[derive(Debug)]
pub struct TcpSender {
    conn: ConnId,
    cfg: TcpConfig,
    cc: CcEngine,
    rtt: RttEstimator,
    web100: InstrumentBlock,

    snd_una: u64,
    snd_nxt: u64,
    /// Highest byte ever sent (for Karn's rule: anything below is a
    /// retransmission when sent again).
    max_sent: u64,
    /// Total bytes the application will write (`None` = unbounded source).
    app_total: Option<u64>,
    peer_rwnd: u64,

    dupacks: u32,
    recovery: Option<Recovery>,
    /// Segments queued for retransmission ahead of new data.
    retx_queue: VecDeque<(u64, u32)>,
    /// Send timestamps as a ring ordered by segment end-offset. New data
    /// appends at the back; cumulative ACKs drain from the front, so the
    /// per-ACK bookkeeping is O(acked segments) with no tree rebalancing.
    sent_times: VecDeque<(u64, SentInfo)>,

    /// Latest Karn-valid RTT sample and the connection minimum, surfaced to
    /// the congestion controller through [`CcView`] (delay-based variants
    /// pace on them; the RFC 6298 estimator keeps its own smoothing).
    last_rtt: Option<SimDuration>,
    min_rtt: Option<SimDuration>,

    /// Cumulative payload bytes delivered (cumulatively ACKed) so far.
    delivered: u64,
    /// Latest delivery-rate sample (payload bytes/second), the interval it
    /// was measured over, and whether it was taken application-limited —
    /// the rate-sample triple surfaced through [`CcView`]. Samples ride the
    /// same Karn filter as RTT: retransmitted segments never produce one.
    delivery_rate: Option<u64>,
    delivery_interval: Option<SimDuration>,
    rate_app_limited: bool,

    /// Earliest time the pacer permits the next departure. Only consulted
    /// while the controller actually requests pacing; window variants
    /// (`PacingDecision::Unpaced`) never touch this path.
    pacing_next: SimTime,
    /// Release instant a pacing retry is already armed for (dedup so each
    /// pump schedules at most one wakeup per release time).
    pacing_armed: Option<SimTime>,

    rto_deadline: Option<SimTime>,
    /// Start of the current run of consecutive RTOs (an "episode"), cleared
    /// by forward progress. Feeds the recovery telemetry in run reports.
    rto_episode_since: Option<SimTime>,
    /// Number of RTO episodes (consecutive-timeout runs counted once).
    rto_episodes: u64,
    /// Longest span from an episode's first timeout to the ACK that ended it.
    rto_max_recovery: Option<SimDuration>,
    /// No transmission before this time after a stall (driver-retry model).
    stall_until: Option<SimTime>,
    /// Only signal the congestion layer about stalls again once snd_una
    /// passes this point (once-per-window, like Linux CWR).
    stall_signal_gate: u64,
    /// Only react to an ECN echo again once snd_una passes this point: the
    /// RFC 3168 CWR rule of at most one cwnd reduction per window of data.
    ecn_cwr_gate: u64,
    lim_state: SndLimState,
}

impl TcpSender {
    /// Create a sender with the given congestion controller and an
    /// application that will write `app_total` bytes (`None` = unlimited).
    pub fn new(conn: ConnId, cfg: TcpConfig, cc: CcEngine, app_total: Option<u64>) -> Self {
        let mut web100 = InstrumentBlock::new();
        web100.on_cwnd(SimTime::ZERO, cc.cwnd());
        web100.on_ssthresh(cc.ssthresh());
        web100.on_enter_slow_start();
        TcpSender {
            conn,
            peer_rwnd: cfg.rwnd,
            cfg,
            cc,
            rtt: RttEstimator::new(cfg.min_rto, cfg.max_rto),
            web100,
            snd_una: 0,
            snd_nxt: 0,
            max_sent: 0,
            app_total,
            dupacks: 0,
            recovery: None,
            retx_queue: VecDeque::new(),
            sent_times: VecDeque::new(),
            last_rtt: None,
            min_rtt: None,
            delivered: 0,
            delivery_rate: None,
            delivery_interval: None,
            rate_app_limited: false,
            pacing_next: SimTime::ZERO,
            pacing_armed: None,
            rto_deadline: None,
            rto_episode_since: None,
            rto_episodes: 0,
            rto_max_recovery: None,
            stall_until: None,
            stall_signal_gate: 0,
            ecn_cwr_gate: 0,
            lim_state: SndLimState::Sender,
        }
    }

    // --- accessors ---------------------------------------------------------

    /// The connection id.
    pub fn conn(&self) -> ConnId {
        self.conn
    }

    /// Static configuration.
    pub fn config(&self) -> &TcpConfig {
        &self.cfg
    }

    /// First unacknowledged byte.
    pub fn snd_una(&self) -> u64 {
        self.snd_una
    }

    /// Next byte to transmit.
    pub fn snd_nxt(&self) -> u64 {
        self.snd_nxt
    }

    /// Bytes in flight.
    #[inline]
    pub fn flight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    /// The congestion controller.
    pub fn cc(&self) -> &dyn CongestionControl {
        self.cc.as_dyn()
    }

    /// The RTT estimator.
    pub fn rtt(&self) -> &RttEstimator {
        &self.rtt
    }

    /// The Web100 instrument block.
    pub fn web100(&self) -> &InstrumentBlock {
        &self.web100
    }

    /// Mutable instrument access (the driver records IFQ samples here).
    pub fn web100_mut(&mut self) -> &mut InstrumentBlock {
        &mut self.web100
    }

    /// True while a fast-recovery episode is in progress.
    pub fn in_recovery(&self) -> bool {
        self.recovery.is_some()
    }

    /// Number of RTO episodes so far: runs of consecutive retransmission
    /// timeouts with no intervening forward progress count once, however
    /// deep the backoff climbed (an outage spanning five RTOs is one
    /// episode; `Web100Vars::timeouts` counts all five).
    pub fn rto_episodes(&self) -> u64 {
        self.rto_episodes
    }

    /// Longest time from an episode's first timeout to the ACK of new data
    /// that ended it — the worst post-outage time-to-recover. `None` if no
    /// episode has completed (including an episode still open at run end).
    pub fn rto_max_recovery(&self) -> Option<SimDuration> {
        self.rto_max_recovery
    }

    /// True when a finite transfer is fully acknowledged.
    pub fn is_complete(&self) -> bool {
        match self.app_total {
            Some(total) => self.snd_una >= total,
            None => false,
        }
    }

    /// Deadline the driver must schedule an RTO check for, if any.
    pub fn rto_deadline(&self) -> Option<SimTime> {
        self.rto_deadline
    }

    /// The application wrote `bytes` more bytes into the socket (only
    /// meaningful for finite/app-driven transfers; unbounded senders ignore
    /// writes).
    pub fn app_extend(&mut self, bytes: u64) {
        if let Some(total) = &mut self.app_total {
            *total += bytes;
        }
    }

    /// Total bytes the application has committed to send, if bounded.
    pub fn app_total(&self) -> Option<u64> {
        self.app_total
    }

    /// Time the driver must re-attempt transmission after a stall, if any.
    pub fn stall_retry_at(&self) -> Option<SimTime> {
        self.stall_until
    }

    #[inline]
    fn view(&self, now: SimTime, ifq: IfqSnapshot) -> CcView {
        CcView {
            now,
            mss: self.cfg.mss,
            flight: self.flight(),
            ifq_depth: ifq.depth,
            ifq_max: ifq.max,
            last_rtt: self.last_rtt,
            min_rtt: self.min_rtt,
            delivered: self.delivered,
            delivery_rate: self.delivery_rate,
            delivery_interval: self.delivery_interval,
            app_limited: self.rate_app_limited,
        }
    }

    fn app_bytes_remaining(&self) -> u64 {
        match self.app_total {
            Some(total) => total.saturating_sub(self.snd_nxt),
            None => u64::MAX,
        }
    }

    #[inline]
    fn effective_window(&self) -> u64 {
        self.cc.cwnd().min(self.peer_rwnd)
    }

    // --- transmission ------------------------------------------------------

    /// What the sender would transmit right now, if anything. Pure; call
    /// [`TcpSender::commit_transmit`] once the segment is safely on the IFQ.
    /// Honors the congestion controller's pacing rate: a departure the
    /// window would allow is still held until [`pacing_retry_at`] releases
    /// it.
    ///
    /// [`pacing_retry_at`]: TcpSender::pacing_retry_at
    #[inline]
    pub fn can_transmit(&self, now: SimTime) -> Option<TxPlan> {
        self.transmit_plan(now, false)
    }

    /// `can_transmit`, optionally ignoring the pacing gate (the pacer itself
    /// needs to know whether a departure is pending behind it).
    #[inline]
    fn transmit_plan(&self, now: SimTime, ignore_pacing: bool) -> Option<TxPlan> {
        if let Some(until) = self.stall_until {
            if now < until {
                return None;
            }
        }
        if !ignore_pacing
            && now < self.pacing_next
            && matches!(self.cc.pacing(), PacingDecision::Rate { .. })
        {
            return None;
        }
        if let Some(&(seq, len)) = self.retx_queue.front() {
            return Some(TxPlan {
                seq,
                len,
                retransmit: true,
            });
        }
        let window = self.effective_window();
        if self.flight() >= window {
            return None;
        }
        let room = window - self.flight();
        let remaining = self.app_bytes_remaining();
        if remaining == 0 {
            return None;
        }
        let len = (self.cfg.mss as u64).min(remaining).min(room) as u32;
        if len == 0 {
            return None;
        }
        // Avoid silly-window segments: send sub-MSS only at the very end of
        // a finite transfer.
        if (len as u64) < self.cfg.mss as u64 && remaining > len as u64 {
            return None;
        }
        Some(TxPlan {
            seq: self.snd_nxt,
            len,
            retransmit: self.snd_nxt < self.max_sent,
        })
    }

    /// The segment from `can_transmit` was accepted by the IFQ.
    #[inline]
    pub fn commit_transmit(&mut self, now: SimTime, plan: TxPlan) {
        let end = plan.seq + plan.len as u64;
        if plan.retransmit && self.retx_queue.front() == Some(&(plan.seq, plan.len)) {
            self.retx_queue.pop_front();
        }
        if plan.seq == self.snd_nxt {
            self.snd_nxt = end;
        }
        let was_sent_before = end <= self.max_sent;
        self.max_sent = self.max_sent.max(end);
        // Application-limited when the send window still has room but the
        // app has nothing further to write — a rate sample over this
        // departure measures the app, not the path.
        let app_limited =
            self.app_bytes_remaining() == 0 && self.flight() < self.effective_window();
        let info = SentInfo {
            sent_at: now,
            retransmitted: plan.retransmit || was_sent_before,
            delivered_at_send: self.delivered,
            app_limited,
        };
        // Ring insert, ordered by end-offset. New data lands at the back;
        // retransmissions overwrite the earlier record for the same range.
        match self.sent_times.back() {
            Some(&(last, _)) if last < end => self.sent_times.push_back((end, info)),
            None => self.sent_times.push_back((end, info)),
            _ => match self.sent_times.binary_search_by(|&(e, _)| e.cmp(&end)) {
                Ok(i) => self.sent_times[i] = (end, info),
                Err(i) => self.sent_times.insert(i, (end, info)),
            },
        }
        self.web100
            .on_data_sent(plan.len, plan.retransmit || was_sent_before);
        // Stall window passed: clear the retry gate on successful enqueue.
        self.stall_until = None;
        // Advance the pacer by this segment's serialization time at the
        // controller's rate. Unpaced controllers never reach this arm, so
        // the window-variant path is byte-identical to the pre-pacing code.
        if let PacingDecision::Rate { bytes_per_sec } = self.cc.pacing() {
            // Floor division: an effectively-infinite rate (`u64::MAX`)
            // yields a zero gap and reproduces the unpaced schedule exactly.
            let gap_ns = plan.len as u128 * 1_000_000_000 / bytes_per_sec as u128;
            self.pacing_next = self.pacing_next.max(now) + SimDuration::from_nanos(gap_ns as u64);
            self.pacing_armed = None;
        }
        if self.rto_deadline.is_none() {
            self.rto_deadline = Some(now + self.rtt.rto());
        }
    }

    /// When the pacer is the only thing holding a transmission back, the
    /// release instant the driver must schedule a retry for. Arms at most
    /// once per release time; committing a transmit re-arms.
    pub fn pacing_retry_at(&mut self, now: SimTime) -> Option<SimTime> {
        if now >= self.pacing_next
            || !matches!(self.cc.pacing(), PacingDecision::Rate { .. })
            || self.pacing_armed == Some(self.pacing_next)
            || self.transmit_plan(now, true).is_none()
        {
            return None;
        }
        self.pacing_armed = Some(self.pacing_next);
        Some(self.pacing_next)
    }

    /// The IFQ rejected the segment: a send-stall. Mirrors Linux 2.4: the
    /// segment is not considered sent, the congestion layer is told (at most
    /// once per outstanding window), and transmission pauses briefly.
    pub fn on_local_stall(&mut self, now: SimTime, ifq: IfqSnapshot) {
        self.stall_until = Some(now + self.cfg.stall_retry);
        if self.snd_una >= self.stall_signal_gate
            || self.cfg.stall_response == StallResponse::Ignore
        {
            let view = self.view(now, ifq);
            self.web100.on_congestion(now, CongestionKind::SendStall);
            let was_ss = self.cc.in_slow_start();
            self.cc.on_congestion(&view, CongestionEvent::LocalStall);
            self.after_cc_change(now, was_ss);
            self.stall_signal_gate = self.snd_nxt;
        }
    }

    /// An arriving ACK carried the ECN echo (ECE): the network CE-marked a
    /// data segment. Per RFC 3168 the sender reduces at most once per window
    /// of data (CWR semantics) and not at all while loss recovery is already
    /// reducing for the same window. The reduction itself is delivered
    /// through [`rss_cc::RecoveryEvent::EcnEcho`], so every registry variant
    /// reacts through its existing `on_recovery` hook.
    pub fn on_ecn_echo(&mut self, now: SimTime, ifq: IfqSnapshot) {
        if self.recovery.is_some() {
            // Loss recovery already cut the window for this flight; reacting
            // again would double-punish one congestion episode.
            return;
        }
        if self.snd_una >= self.ecn_cwr_gate {
            let view = self.view(now, ifq);
            self.web100.on_congestion(now, CongestionKind::EcnEcho);
            let was_ss = self.cc.in_slow_start();
            self.cc.on_recovery(&view, RecoveryEvent::EcnEcho);
            self.after_cc_change(now, was_ss);
            self.ecn_cwr_gate = self.snd_nxt;
        }
    }

    // --- ACK processing ------------------------------------------------------

    /// Process a cumulative ACK.
    #[inline]
    pub fn on_ack(&mut self, now: SimTime, ack: u64, rwnd: u64, ifq: IfqSnapshot) {
        self.peer_rwnd = rwnd;
        self.web100.on_rwin(rwnd);
        self.web100.on_ifq_depth(now, ifq.depth);

        if ack > self.snd_una {
            let newly = ack - self.snd_una;
            self.web100.on_ack_in(now, newly, false);
            self.snd_una = ack;
            self.delivered += newly;
            // A late ACK can outrun a go-back-N rollback: segments sent
            // before the timeout are still in flight and may be acked after
            // snd_nxt was pulled back. Never let snd_una pass snd_nxt.
            self.snd_nxt = self.snd_nxt.max(ack);
            // Drop queued retransmissions the ACK has made moot (and trim a
            // partially-acked head).
            while let Some(&(seq, len)) = self.retx_queue.front() {
                let end = seq + len as u64;
                if end <= ack {
                    self.retx_queue.pop_front();
                } else if seq < ack {
                    self.retx_queue[0] = (ack, (end - ack) as u32);
                    break;
                } else {
                    break;
                }
            }
            self.dupacks = 0;
            // Forward progress clears RTO backoff even if Karn's rule
            // forbids a sample (all-retransmitted window under heavy loss).
            self.rtt.clear_backoff();
            if let Some(since) = self.rto_episode_since.take() {
                let span = now.saturating_since(since);
                self.rto_max_recovery = Some(self.rto_max_recovery.map_or(span, |m| m.max(span)));
            }
            self.take_rtt_sample(now, ack);

            let was_ss = self.cc.in_slow_start();
            let view = self.view(now, ifq);
            match self.recovery {
                Some(r) if ack >= r.recover => {
                    self.recovery = None;
                    self.retx_queue.clear();
                    self.cc
                        .on_recovery(&view, RecoveryEvent::Exit { newly_acked: newly });
                }
                Some(_) => {
                    // Partial ACK: retransmit the next hole immediately.
                    self.cc
                        .on_recovery(&view, RecoveryEvent::PartialAck { newly_acked: newly });
                    let len = (self.cfg.mss as u64).min(self.snd_nxt - self.snd_una) as u32;
                    if len > 0 && self.retx_queue.is_empty() {
                        self.retx_queue.push_back((self.snd_una, len));
                    }
                }
                None => {
                    self.cc.on_ack(&view, newly);
                }
            }
            self.after_cc_change(now, was_ss);

            // Re-arm or clear the RTO.
            self.rto_deadline = if self.flight() > 0 || !self.retx_queue.is_empty() {
                Some(now + self.rtt.rto())
            } else {
                None
            };
        } else {
            // Duplicate ACK.
            self.web100.on_ack_in(now, 0, true);
            if self.flight() == 0 {
                return;
            }
            self.dupacks += 1;
            let was_ss = self.cc.in_slow_start();
            let view = self.view(now, ifq);
            if self.recovery.is_some() {
                self.cc.on_recovery(&view, RecoveryEvent::DupAck);
                self.after_cc_change(now, was_ss);
            } else if self.dupacks == self.cfg.dupack_threshold {
                self.enter_fast_recovery(now, view, was_ss);
            }
        }
    }

    fn enter_fast_recovery(&mut self, now: SimTime, view: CcView, was_ss: bool) {
        self.recovery = Some(Recovery {
            recover: self.snd_nxt,
        });
        self.web100
            .on_congestion(now, CongestionKind::FastRetransmit);
        self.cc
            .on_congestion(&view, CongestionEvent::FastRetransmit);
        self.after_cc_change(now, was_ss);
        let len = (self.cfg.mss as u64).min(self.snd_nxt - self.snd_una) as u32;
        self.retx_queue.clear();
        self.retx_queue.push_back((self.snd_una, len));
    }

    #[inline]
    fn take_rtt_sample(&mut self, now: SimTime, ack: u64) {
        // Newest fully-acked, never-retransmitted segment gives the sample
        // (Karn's rule). Acked records sit at the front of the ring. The
        // same segment also anchors the delivery-rate sample: bytes
        // delivered since it departed, over the time since it departed.
        let mut sample: Option<SimDuration> = None;
        let mut rate_anchor: Option<SentInfo> = None;
        while let Some(&(end, info)) = self.sent_times.front() {
            if end > ack {
                break;
            }
            self.sent_times.pop_front();
            if !info.retransmitted {
                sample = Some(now.saturating_since(info.sent_at));
                rate_anchor = Some(info);
            }
        }
        if let Some(info) = rate_anchor {
            let interval = now.saturating_since(info.sent_at);
            if interval > SimDuration::ZERO {
                let bytes = self.delivered - info.delivered_at_send;
                let rate = (bytes as u128 * 1_000_000_000 / interval.as_nanos() as u128) as u64;
                self.delivery_rate = Some(rate);
                self.delivery_interval = Some(interval);
                self.rate_app_limited = info.app_limited;
            }
        }
        if let Some(rtt) = sample {
            self.last_rtt = Some(rtt);
            self.min_rtt = Some(self.min_rtt.map_or(rtt, |m| m.min(rtt)));
            self.rtt.on_sample(rtt);
            let srtt = self.rtt.srtt().unwrap_or(rtt);
            self.web100.on_rtt(
                rtt.as_nanos() / 1_000,
                srtt.as_nanos() / 1_000,
                self.rtt.rto().as_nanos() / 1_000,
            );
        }
    }

    // --- timers -------------------------------------------------------------

    /// The driver's RTO check fired. Returns true if a timeout actually
    /// happened (stale checks return false).
    pub fn on_rto_check(&mut self, now: SimTime, ifq: IfqSnapshot) -> bool {
        let Some(deadline) = self.rto_deadline else {
            return false;
        };
        if now < deadline || (self.flight() == 0 && self.retx_queue.is_empty()) {
            return false;
        }
        // Retransmission timeout: go-back-N from snd_una, collapse window,
        // re-enter slow-start (RFC 5681 §3.1).
        let was_ss = self.cc.in_slow_start();
        let view = self.view(now, ifq);
        self.web100.on_congestion(now, CongestionKind::Timeout);
        self.cc.on_congestion(&view, CongestionEvent::Timeout);
        self.rtt.backoff();
        if self.rto_episode_since.is_none() {
            self.rto_episode_since = Some(now);
            self.rto_episodes += 1;
        }
        self.recovery = None;
        self.dupacks = 0;
        self.retx_queue.clear();
        // Roll back: everything past snd_una is presumed lost and will be
        // resent under the collapsed window (receiver dedups any survivors).
        self.snd_nxt = self.snd_una;
        self.sent_times.clear();
        self.stall_until = None;
        self.after_cc_change(now, was_ss);
        if !was_ss {
            self.web100.on_enter_slow_start();
        }
        self.rto_deadline = Some(now + self.rtt.rto());
        true
    }

    // --- bookkeeping ---------------------------------------------------------

    #[inline]
    fn after_cc_change(&mut self, now: SimTime, was_slow_start: bool) {
        self.web100.on_cwnd(now, self.cc.cwnd());
        self.web100.on_ssthresh(self.cc.ssthresh());
        let is_ss = self.cc.in_slow_start();
        if was_slow_start && !is_ss {
            self.web100.on_enter_cong_avoid();
        }
    }

    /// Recompute and record what limits the sender right now. The driver
    /// calls this after each pump so the Web100 `SndLimTime*` accumulators
    /// partition wall time.
    pub fn update_lim_state(&mut self, now: SimTime) {
        let state = if self.app_bytes_remaining() == 0 {
            SndLimState::Sender
        } else if self.flight() >= self.peer_rwnd {
            SndLimState::Rwin
        } else if self.flight() >= self.cc.cwnd() {
            SndLimState::Cwnd
        } else {
            // Window open but nothing sent: app or local queue limited.
            SndLimState::Sender
        };
        if state != self.lim_state {
            self.lim_state = state;
            self.web100.on_snd_lim(now, state);
        }
    }

    /// Finalize instrumentation at the end of a run.
    pub fn finish(&mut self, now: SimTime) {
        self.web100.finish(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::Reno;
    use crate::types::StallResponse;

    const MSS: u32 = 1000;

    fn cfg() -> TcpConfig {
        TcpConfig {
            mss: MSS,
            header_bytes: 40,
            initial_cwnd_mss: 2,
            rwnd: 1_000_000,
            ..TcpConfig::default()
        }
    }

    fn sender(app_total: Option<u64>) -> TcpSender {
        let c = cfg();
        let cc = CcEngine::from(Reno::new(
            c.initial_cwnd(),
            c.effective_initial_ssthresh(),
            c.mss,
            StallResponse::Cwr,
        ));
        TcpSender::new(ConnId(0), c, cc, app_total)
    }

    fn ifq() -> IfqSnapshot {
        IfqSnapshot { depth: 0, max: 100 }
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    /// Transmit everything currently permitted; returns the plans.
    fn drain(s: &mut TcpSender, now: SimTime) -> Vec<TxPlan> {
        let mut out = vec![];
        while let Some(p) = s.can_transmit(now) {
            s.commit_transmit(now, p);
            out.push(p);
        }
        out
    }

    #[test]
    fn initial_window_limits_transmission() {
        let mut s = sender(None);
        let plans = drain(&mut s, t(0));
        assert_eq!(plans.len(), 2, "IW = 2 segments");
        assert_eq!(plans[0].seq, 0);
        assert_eq!(plans[1].seq, 1000);
        assert!(!plans[0].retransmit);
        assert_eq!(s.flight(), 2000);
        assert!(s.can_transmit(t(0)).is_none(), "window exhausted");
        assert!(s.rto_deadline().is_some());
    }

    #[test]
    fn ack_opens_window_and_slow_start_grows() {
        let mut s = sender(None);
        drain(&mut s, t(0));
        s.on_ack(t(60), 1000, 1_000_000, ifq());
        // cwnd 2->3 MSS, flight 1 MSS: can send 2 more.
        let plans = drain(&mut s, t(60));
        assert_eq!(plans.len(), 2);
        assert_eq!(s.cc().cwnd(), 3000);
        assert_eq!(s.snd_una(), 1000);
    }

    #[test]
    fn finite_transfer_completes_with_tail_segment() {
        let mut s = sender(Some(2500));
        let plans = drain(&mut s, t(0));
        // 1000 + 1000 + (500 pending; window is 2 MSS so only 2 now)
        assert_eq!(plans.len(), 2);
        s.on_ack(t(60), 2000, 1_000_000, ifq());
        let plans = drain(&mut s, t(60));
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].len, 500, "tail sub-MSS segment allowed");
        s.on_ack(t(120), 2500, 1_000_000, ifq());
        assert!(s.is_complete());
        assert!(s.rto_deadline().is_none(), "no data outstanding");
    }

    #[test]
    fn ecn_echo_halves_once_per_window() {
        let mut s = sender(None);
        // Grow past the 2-MSS floor so a halving is visible.
        drain(&mut s, t(0));
        s.on_ack(t(60), 2000, 1_000_000, ifq());
        drain(&mut s, t(60)); // flight = cwnd = 3 MSS
        let cwnd0 = s.cc().cwnd();
        s.on_ecn_echo(t(70), ifq());
        let cwnd1 = s.cc().cwnd();
        assert!(cwnd1 < cwnd0, "first echo reduces cwnd");
        assert_eq!(s.web100().vars().ecn_echoes, 1);
        // Second echo in the same window of data: gated off.
        s.on_ecn_echo(t(71), ifq());
        assert_eq!(s.cc().cwnd(), cwnd1, "same-window echo ignored");
        assert_eq!(s.web100().vars().ecn_echoes, 1);
        // Once snd_una passes the gate (snd_nxt at echo time), echoes count
        // again.
        s.on_ack(t(120), s.snd_nxt(), 1_000_000, ifq());
        s.on_ecn_echo(t(130), ifq());
        assert_eq!(s.web100().vars().ecn_echoes, 2);
    }

    #[test]
    fn ecn_echo_ignored_during_loss_recovery() {
        let mut s = sender(None);
        // Grow a window, then force fast recovery with three dup ACKs.
        drain(&mut s, t(0));
        s.on_ack(t(60), 2000, 1_000_000, ifq());
        drain(&mut s, t(60));
        for i in 0..3 {
            s.on_ack(t(70 + i), 2000, 1_000_000, ifq());
        }
        assert!(s.in_recovery());
        let cwnd = s.cc().cwnd();
        s.on_ecn_echo(t(80), ifq());
        assert_eq!(s.cc().cwnd(), cwnd, "no extra cut while recovering");
        assert_eq!(s.web100().vars().ecn_echoes, 0);
    }

    #[test]
    fn no_silly_window_mid_transfer() {
        let mut s = sender(None);
        // Shrink the window so room is sub-MSS: flight 2000 of cwnd 2000.
        drain(&mut s, t(0));
        // rwnd forces a 500-byte room: must NOT send a partial segment.
        s.on_ack(t(60), 1000, 1500, ifq()); // peer_rwnd = 1500, flight = 1000
        assert!(s.can_transmit(t(60)).is_none());
    }

    #[test]
    fn rtt_sample_updates_estimator() {
        let mut s = sender(None);
        drain(&mut s, t(0));
        s.on_ack(t(60), 1000, 1_000_000, ifq());
        assert_eq!(s.rtt().srtt(), Some(SimDuration::from_millis(60)));
        assert_eq!(s.web100().vars().smoothed_rtt_us, 60_000);
    }

    #[test]
    fn triple_dupack_enters_fast_recovery_and_retransmits() {
        let mut s = sender(None);
        drain(&mut s, t(0)); // 2 segments out
        s.on_ack(t(60), 1000, 1_000_000, ifq());
        s.on_ack(t(60), 2000, 1_000_000, ifq());
        drain(&mut s, t(60)); // more segments out under cwnd 4
        assert!(s.flight() >= 3000);
        // Three dup ACKs at 2000.
        for i in 0..3 {
            s.on_ack(t(70 + i), 2000, 1_000_000, ifq());
        }
        assert!(s.in_recovery());
        assert_eq!(s.web100().vars().fast_retran, 1);
        assert_eq!(s.web100().vars().dup_acks_in, 3);
        // Head of line is the retransmission of snd_una.
        let p = s.can_transmit(t(75)).unwrap();
        assert_eq!(p.seq, 2000);
        assert!(p.retransmit);
        s.commit_transmit(t(75), p);
        assert_eq!(s.web100().vars().pkts_retrans, 1);
        // Full ACK exits recovery.
        let recover_point = s.snd_nxt();
        s.on_ack(t(130), recover_point, 1_000_000, ifq());
        assert!(!s.in_recovery());
    }

    #[test]
    fn fewer_than_threshold_dupacks_do_nothing() {
        let mut s = sender(None);
        drain(&mut s, t(0));
        s.on_ack(t(60), 1000, 1_000_000, ifq());
        drain(&mut s, t(60));
        s.on_ack(t(61), 1000, 1_000_000, ifq());
        s.on_ack(t(62), 1000, 1_000_000, ifq());
        assert!(!s.in_recovery());
        assert_eq!(s.web100().vars().fast_retran, 0);
    }

    #[test]
    fn rto_rolls_back_and_collapses_window() {
        let mut s = sender(None);
        drain(&mut s, t(0));
        let nxt_before = s.snd_nxt();
        assert!(nxt_before > 0);
        // No ACKs: fire the RTO (initial RTO is 1 s).
        let deadline = s.rto_deadline().unwrap();
        assert!(s.on_rto_check(deadline, ifq()));
        assert_eq!(s.web100().vars().timeouts, 1);
        assert_eq!(s.cc().cwnd(), MSS as u64);
        assert_eq!(s.snd_nxt(), s.snd_una(), "go-back-N rollback");
        // Retransmission is flagged for Karn.
        let p = s.can_transmit(deadline).unwrap();
        assert!(p.retransmit);
        assert_eq!(p.seq, 0);
    }

    #[test]
    fn stale_rto_check_is_ignored() {
        let mut s = sender(None);
        drain(&mut s, t(0));
        let early = t(1);
        assert!(!s.on_rto_check(early, ifq()));
        assert_eq!(s.web100().vars().timeouts, 0);
    }

    #[test]
    fn rto_backoff_doubles_after_consecutive_timeouts() {
        let mut s = sender(None);
        drain(&mut s, t(0));
        let d1 = s.rto_deadline().unwrap();
        s.on_rto_check(d1, ifq());
        let d2 = s.rto_deadline().unwrap();
        // Next deadline is 2x the (1 s) initial RTO away.
        assert_eq!(d2 - d1, SimDuration::from_secs(2));
    }

    #[test]
    fn rto_episode_spans_consecutive_timeouts_until_forward_progress() {
        let mut s = sender(None);
        drain(&mut s, t(0));
        // A simulated outage: three back-to-back RTOs with no ACKs. The
        // backoff doubles each time (1 s, 2 s, 4 s deadlines), but it is
        // one episode.
        let mut now = s.rto_deadline().unwrap();
        for _ in 0..3 {
            assert!(s.on_rto_check(now, ifq()));
            let p = s.can_transmit(now).unwrap();
            s.commit_transmit(now, p);
            now = s.rto_deadline().unwrap();
        }
        assert_eq!(s.web100().vars().timeouts, 3);
        assert_eq!(s.rto_episodes(), 1);
        assert_eq!(s.rtt().max_backoff_shift(), 3);
        assert_eq!(s.rto_max_recovery(), None, "still inside the episode");
        // The link heals: an ACK of new data ends the episode. The first
        // timeout fired at t=1 s.
        let heal = now;
        s.on_ack(heal, 1000, 1_000_000, ifq());
        let span = s.rto_max_recovery().expect("episode closed");
        assert_eq!(span, heal.saturating_since(t(1000)));
        // A later, shallower episode bumps the count but not the max shift.
        drain(&mut s, heal);
        let d = s.rto_deadline().unwrap();
        assert!(s.on_rto_check(d, ifq()));
        assert_eq!(s.rto_episodes(), 2);
        assert_eq!(s.rtt().max_backoff_shift(), 3);
    }

    #[test]
    fn karn_no_sample_from_retransmitted_segment() {
        let mut s = sender(None);
        drain(&mut s, t(0));
        let d = s.rto_deadline().unwrap();
        s.on_rto_check(d, ifq());
        let p = s.can_transmit(d).unwrap();
        s.commit_transmit(d, p);
        // ACK the retransmitted segment: no RTT sample may be taken.
        s.on_ack(d + SimDuration::from_millis(60), 1000, 1_000_000, ifq());
        assert_eq!(s.rtt().sample_count(), 0);
    }

    #[test]
    fn local_stall_signals_cc_once_per_window() {
        let mut s = sender(None);
        drain(&mut s, t(0));
        let cwnd_before = s.cc().cwnd();
        s.on_local_stall(
            t(5),
            IfqSnapshot {
                depth: 100,
                max: 100,
            },
        );
        assert_eq!(s.web100().vars().send_stall, 1);
        assert!(s.cc().cwnd() <= cwnd_before);
        assert!(s.can_transmit(t(5)).is_none(), "stall gates transmission");
        // A second stall in the same window is throttled.
        s.on_local_stall(
            t(6),
            IfqSnapshot {
                depth: 100,
                max: 100,
            },
        );
        assert_eq!(s.web100().vars().send_stall, 1);
        // Retry gate lifts after stall_retry.
        let retry = s.stall_retry_at().unwrap();
        assert!(retry > t(6));
    }

    #[test]
    fn stall_signal_reopens_after_window_turnover() {
        let mut s = sender(None);
        drain(&mut s, t(0));
        s.on_local_stall(
            t(5),
            IfqSnapshot {
                depth: 100,
                max: 100,
            },
        );
        let gate = s.snd_nxt();
        // ACK everything outstanding: snd_una reaches the gate.
        s.on_ack(t(60), gate, 1_000_000, ifq());
        drain(&mut s, t(60));
        s.on_local_stall(
            t(61),
            IfqSnapshot {
                depth: 100,
                max: 100,
            },
        );
        assert_eq!(s.web100().vars().send_stall, 2);
    }

    #[test]
    fn lim_state_transitions_accumulate() {
        let mut s = sender(None);
        s.update_lim_state(t(0)); // Sender (nothing sent yet)
        drain(&mut s, t(0));
        s.update_lim_state(t(10)); // now cwnd-limited
        s.finish(t(20));
        let v = *s.web100().vars();
        assert!(v.snd_lim_time_cwnd_ns > 0);
    }

    #[test]
    fn late_ack_after_rto_rollback_does_not_underflow_flight() {
        let mut s = sender(None);
        drain(&mut s, t(0)); // 2 segments out (0..2000)
                             // RTO fires: rollback to snd_una = 0, snd_nxt = 0.
        let d = s.rto_deadline().unwrap();
        assert!(s.on_rto_check(d, ifq()));
        assert_eq!(s.snd_nxt(), 0);
        // The original transmissions were not actually lost: a late ACK for
        // both arrives after the rollback.
        s.on_ack(d + SimDuration::from_millis(1), 2000, 1_000_000, ifq());
        assert_eq!(s.snd_una(), 2000);
        assert_eq!(s.snd_nxt(), 2000, "snd_nxt clamped forward");
        assert_eq!(s.flight(), 0);
        // Retransmission queue must not resend acked bytes.
        if let Some(p) = s.can_transmit(d + SimDuration::from_millis(2)) {
            assert!(p.seq >= 2000, "stale retransmission {p:?}");
        }
    }

    #[test]
    fn partially_acked_retx_entry_is_trimmed() {
        let mut s = sender(None);
        drain(&mut s, t(0));
        let d = s.rto_deadline().unwrap();
        s.on_rto_check(d, ifq()); // queues retx of (0, 1000)
                                  // ACK covering part of the rolled-back range: retransmission resumes
                                  // exactly at the ACK point, never below it.
        s.on_ack(d + SimDuration::from_millis(1), 500, 1_000_000, ifq());
        let p = s.can_transmit(d + SimDuration::from_millis(2)).unwrap();
        assert_eq!(p.seq, 500, "must resume at the ACK point: {p:?}");
        assert!(p.retransmit, "bytes below max_sent are retransmissions");
    }

    /// A window controller with a fixed pacing rate bolted on — exercises
    /// the sender's pacing gate without a full rate-based variant.
    #[derive(Debug)]
    struct PacedStub {
        inner: Reno,
        rate: u64,
    }

    impl CongestionControl for PacedStub {
        fn cwnd(&self) -> u64 {
            self.inner.cwnd()
        }
        fn ssthresh(&self) -> u64 {
            self.inner.ssthresh()
        }
        fn on_ack(&mut self, view: &CcView, newly_acked: u64) {
            self.inner.on_ack(view, newly_acked);
        }
        fn on_congestion(&mut self, view: &CcView, ev: CongestionEvent) {
            self.inner.on_congestion(view, ev);
        }
        fn on_recovery(&mut self, view: &CcView, ev: RecoveryEvent) {
            self.inner.on_recovery(view, ev);
        }
        fn pacing(&self) -> PacingDecision {
            PacingDecision::Rate {
                bytes_per_sec: self.rate,
            }
        }
        fn name(&self) -> &'static str {
            "paced-stub"
        }
    }

    use crate::cc::{PacingDecision, RecoveryEvent};

    fn paced_sender(rate: u64, cwnd_mss: u32) -> TcpSender {
        let c = TcpConfig {
            initial_cwnd_mss: cwnd_mss,
            ..cfg()
        };
        let cc = CcEngine::from(Box::new(PacedStub {
            inner: Reno::new(
                c.initial_cwnd(),
                c.effective_initial_ssthresh(),
                c.mss,
                StallResponse::Cwr,
            ),
            rate,
        }) as Box<dyn CongestionControl>);
        TcpSender::new(ConnId(0), c, cc, None)
    }

    #[test]
    fn pacing_spreads_departures_at_the_configured_rate() {
        // 1 MB/s and 1000-byte segments: one departure per millisecond.
        let mut s = paced_sender(1_000_000, 8);
        let plans = drain(&mut s, t(0));
        assert_eq!(plans.len(), 1, "pacer releases one segment per gap");
        // The pacer, not the window, is the limiter — and it says when.
        let retry = s.pacing_retry_at(t(0)).expect("held by the pacer");
        assert_eq!(retry, t(1));
        assert!(s.pacing_retry_at(t(0)).is_none(), "armed once per release");
        // At the release instant the next segment goes out.
        let plans = drain(&mut s, t(1));
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].seq, 1000);
    }

    #[test]
    fn paced_departures_never_exceed_the_window() {
        // A generous pacing gap budget over a long stretch of time must
        // still respect cwnd: jump far past many release instants and check
        // the window clamps the burst.
        let mut s = paced_sender(1_000_000, 4);
        let mut sent = drain(&mut s, t(0)).len();
        let mut now = t(0);
        for _ in 0..20 {
            now += SimDuration::from_millis(100);
            sent += drain(&mut s, now).len();
        }
        assert_eq!(sent as u64 * 1000, s.flight());
        assert!(s.flight() <= s.cc().cwnd(), "pacing never overrides cwnd");
        assert_eq!(s.cc().cwnd(), 4000);
        assert!(
            s.pacing_retry_at(now).is_none(),
            "window-limited, not pacer-limited: no retry to arm"
        );
    }

    #[test]
    fn effectively_infinite_rate_matches_the_unpaced_schedule() {
        // Satellite invariant: Rate { u64::MAX } must reproduce the unpaced
        // sender byte-for-byte — same plans at the same instants.
        let mut paced = paced_sender(u64::MAX, 2);
        let mut plain = sender(None);
        for step in 0u64..40 {
            let now = t(step * 10);
            assert_eq!(drain(&mut paced, now), drain(&mut plain, now));
            assert_eq!(paced.pacing_retry_at(now), None);
            if step % 3 == 0 {
                let ack = paced.snd_una() + 1000;
                paced.on_ack(now, ack, 1_000_000, ifq());
                plain.on_ack(now, ack, 1_000_000, ifq());
            }
        }
        assert_eq!(paced.snd_nxt(), plain.snd_nxt());
        assert_eq!(paced.flight(), plain.flight());
    }

    #[test]
    fn delivery_rate_sample_rides_the_karn_path() {
        let mut s = sender(None);
        drain(&mut s, t(0)); // two segments depart at t=0
                             // Both acked 50 ms later: 2000 bytes over 50 ms = 40 kB/s.
        s.on_ack(t(50), 2000, 1_000_000, ifq());
        let v = s.view(t(50), ifq());
        assert_eq!(v.delivered, 2000);
        assert_eq!(v.delivery_rate, Some(40_000));
        assert_eq!(v.delivery_interval, Some(SimDuration::from_millis(50)));
        assert!(!v.app_limited);
    }

    #[test]
    fn retransmitted_segments_produce_no_rate_sample() {
        let mut s = sender(None);
        drain(&mut s, t(0));
        let d = s.rto_deadline().unwrap();
        s.on_rto_check(d, ifq());
        let p = s.can_transmit(d).unwrap();
        s.commit_transmit(d, p);
        s.on_ack(d + SimDuration::from_millis(60), 1000, 1_000_000, ifq());
        let v = s.view(d + SimDuration::from_millis(60), ifq());
        assert_eq!(v.delivery_rate, None, "Karn: retransmission, no sample");
        assert_eq!(v.delivered, 1000, "delivery count still advances");
    }

    #[test]
    fn app_limited_departures_are_stamped() {
        // A 2500-byte transfer under a 4-segment window: the tail segment
        // departs with window room left and the app dry.
        let c = TcpConfig {
            initial_cwnd_mss: 4,
            ..cfg()
        };
        let cc = CcEngine::from(Reno::new(
            c.initial_cwnd(),
            c.effective_initial_ssthresh(),
            c.mss,
            StallResponse::Cwr,
        ));
        let mut s = TcpSender::new(ConnId(0), c, cc, Some(2500));
        drain(&mut s, t(0));
        s.on_ack(t(50), 2500, 1_000_000, ifq());
        let v = s.view(t(50), ifq());
        assert!(v.app_limited, "tail sample must carry the app-limited mark");
    }

    #[test]
    fn recovery_partial_ack_retransmits_next_hole() {
        let mut s = sender(None);
        // Build up a larger window first.
        drain(&mut s, t(0));
        for i in 0..6 {
            let ack = s.snd_una() + 1000;
            s.on_ack(t(10 + i), ack, 1_000_000, ifq());
            drain(&mut s, t(10 + i));
        }
        let una = s.snd_una();
        assert!(s.flight() >= 4000);
        for i in 0..3 {
            s.on_ack(t(50 + i), una, 1_000_000, ifq());
        }
        assert!(s.in_recovery());
        let p = s.can_transmit(t(55)).unwrap();
        s.commit_transmit(t(55), p);
        // Partial ACK: one segment past una, still below recover point.
        s.on_ack(t(60), una + 1000, 1_000_000, ifq());
        assert!(s.in_recovery());
        let p2 = s.can_transmit(t(60)).unwrap();
        assert_eq!(p2.seq, una + 1000, "next hole retransmitted");
        assert!(p2.retransmit);
    }
}
