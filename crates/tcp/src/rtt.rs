//! RTT estimation and retransmission-timeout computation (RFC 6298, which
//! codified the RFC 2988 algorithm the Linux 2.4-era stack used).

use rss_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// SRTT/RTTVAR estimator with RTO derivation and exponential backoff.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RttEstimator {
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    rto: SimDuration,
    min_rto: SimDuration,
    max_rto: SimDuration,
    backoff_shift: u32,
    max_backoff_shift: u32,
    samples: u64,
}

impl RttEstimator {
    /// Create with the given RTO clamps; the initial RTO before any sample is
    /// the RFC's 1 s (raised to `min_rto` if that is larger).
    pub fn new(min_rto: SimDuration, max_rto: SimDuration) -> Self {
        let initial = SimDuration::from_secs(1).max(min_rto).min(max_rto);
        RttEstimator {
            srtt: None,
            rttvar: SimDuration::ZERO,
            rto: initial,
            min_rto,
            max_rto,
            backoff_shift: 0,
            max_backoff_shift: 0,
            samples: 0,
        }
    }

    /// Feed one RTT measurement (from a never-retransmitted segment, per
    /// Karn's rule — the caller enforces that).
    pub fn on_sample(&mut self, rtt: SimDuration) {
        self.samples += 1;
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2;
            }
            Some(srtt) => {
                // RTTVAR = 3/4 RTTVAR + 1/4 |SRTT - R'|
                let delta = if srtt > rtt { srtt - rtt } else { rtt - srtt };
                self.rttvar = (self.rttvar * 3) / 4 + delta / 4;
                // SRTT = 7/8 SRTT + 1/8 R'
                self.srtt = Some((srtt * 7) / 8 + rtt / 8);
            }
        }
        // RTO = SRTT + max(G, 4·RTTVAR); clock granularity G is below 1 ns
        // in simulation, so effectively RTO = SRTT + 4·RTTVAR.
        let srtt = self.srtt.expect("just set");
        let rto = srtt + self.rttvar * 4;
        self.rto = rto.max(self.min_rto).min(self.max_rto);
        self.backoff_shift = 0;
    }

    /// Smoothed RTT, if any sample has been taken.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }

    /// RTT variance estimate.
    pub fn rttvar(&self) -> SimDuration {
        self.rttvar
    }

    /// The current RTO including any timeout backoff.
    pub fn rto(&self) -> SimDuration {
        let backed = self.rto.saturating_mul(1u64 << self.backoff_shift.min(32));
        backed.min(self.max_rto)
    }

    /// Exponential backoff after a retransmission timeout fires.
    pub fn backoff(&mut self) {
        self.backoff_shift = (self.backoff_shift + 1).min(16);
        self.max_backoff_shift = self.max_backoff_shift.max(self.backoff_shift);
    }

    /// Current backoff shift (0 = no backoff; the effective RTO is the base
    /// RTO doubled this many times, clamped to `max_rto`).
    pub fn backoff_shift(&self) -> u32 {
        self.backoff_shift
    }

    /// Deepest backoff shift reached over the estimator's lifetime — how far
    /// the exponential backoff climbed during the worst outage.
    pub fn max_backoff_shift(&self) -> u32 {
        self.max_backoff_shift
    }

    /// Clear the timeout backoff without a new sample.
    ///
    /// Karn's rule forbids RTT samples from retransmitted segments, so under
    /// heavy loss an estimator that only resets backoff on samples would ride
    /// the maximum RTO forever. Like Linux, forward progress (an ACK of new
    /// data) clears the backoff even when no sample can be taken.
    pub fn clear_backoff(&mut self) {
        self.backoff_shift = 0;
    }

    /// Number of samples consumed.
    pub fn sample_count(&self) -> u64 {
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est() -> RttEstimator {
        RttEstimator::new(SimDuration::from_millis(200), SimDuration::from_secs(60))
    }

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn initial_rto_is_one_second() {
        assert_eq!(est().rto(), SimDuration::from_secs(1));
    }

    #[test]
    fn first_sample_initializes_srtt_and_var() {
        let mut e = est();
        e.on_sample(ms(60));
        assert_eq!(e.srtt(), Some(ms(60)));
        assert_eq!(e.rttvar(), ms(30));
        // RTO = 60 + 4*30 = 180 -> clamped to min 200 ms.
        assert_eq!(e.rto(), ms(200));
    }

    #[test]
    fn smoothing_follows_rfc_weights() {
        let mut e = est();
        e.on_sample(ms(100));
        e.on_sample(ms(200));
        // RTTVAR = 3/4*50 + 1/4*|100-200| = 62.5
        // SRTT = 7/8*100 + 1/8*200 = 112.5
        let srtt = e.srtt().unwrap();
        assert_eq!(srtt.as_nanos(), 112_500_000);
        assert_eq!(e.rttvar().as_nanos(), 62_500_000);
        // RTO = 112.5 + 250 = 362.5 ms
        assert_eq!(e.rto().as_nanos(), 362_500_000);
    }

    #[test]
    fn steady_rtt_converges_and_rto_tightens() {
        let mut e = est();
        for _ in 0..100 {
            e.on_sample(ms(60));
        }
        let srtt = e.srtt().unwrap();
        assert_eq!(srtt, ms(60));
        // Variance decays toward zero; RTO pinned at the floor.
        assert_eq!(e.rto(), ms(200));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mut e = est();
        e.on_sample(ms(500)); // RTO = 500 + 4*250 = 1500 ms
        assert_eq!(e.rto(), ms(1500));
        e.backoff();
        assert_eq!(e.rto(), ms(3000));
        e.backoff();
        assert_eq!(e.rto(), ms(6000));
        for _ in 0..20 {
            e.backoff();
        }
        assert_eq!(e.rto(), SimDuration::from_secs(60), "capped at max");
        // A fresh sample clears the backoff.
        e.on_sample(ms(500));
        assert!(e.rto() < SimDuration::from_secs(2));
    }

    #[test]
    fn clear_backoff_resets_rto_without_sample() {
        let mut e = est();
        e.on_sample(ms(500));
        let base = e.rto();
        e.backoff();
        e.backoff();
        assert_eq!(e.rto(), base * 4);
        e.clear_backoff();
        assert_eq!(e.rto(), base);
    }

    #[test]
    fn max_backoff_shift_is_sticky() {
        let mut e = est();
        e.on_sample(ms(500));
        e.backoff();
        e.backoff();
        e.backoff();
        assert_eq!(e.backoff_shift(), 3);
        assert_eq!(e.max_backoff_shift(), 3);
        // Recovery clears the live backoff but the high-water mark stays.
        e.clear_backoff();
        assert_eq!(e.backoff_shift(), 0);
        assert_eq!(e.max_backoff_shift(), 3);
        e.backoff();
        assert_eq!(
            e.max_backoff_shift(),
            3,
            "shallower episode does not raise it"
        );
    }

    #[test]
    fn sample_count() {
        let mut e = est();
        e.on_sample(ms(10));
        e.on_sample(ms(12));
        assert_eq!(e.sample_count(), 2);
    }
}
