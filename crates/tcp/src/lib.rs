//! # rss-tcp — a TCP data-transfer engine with pluggable congestion control
//!
//! The transport substrate of the *Restricted Slow-Start for TCP*
//! reproduction. It implements the sender/receiver machinery a congestion
//! control study needs — cumulative ACKs, delayed ACKs, RFC 6298 RTT
//! estimation and retransmission timeouts, NewReno fast retransmit/recovery,
//! go-back-N timeout recovery — plus the paper's local-congestion pathway:
//! when the host interface queue rejects a segment, the sender receives a
//! **send-stall** signal and (configurably, like Linux 2.4) treats it as
//! congestion.
//!
//! Congestion control is a trait ([`CongestionControl`]) with three
//! implementations:
//!
//! * [`Reno`] — the standard baseline (RFC 5681);
//! * [`RestrictedSlowStart`] — the paper's PID-paced slow-start;
//! * [`LimitedSlowStart`] — RFC 3742, an era-appropriate comparator.
//!
//! The sender and receiver are sans-IO state machines: an embedding world
//! model (see `rss-core`) moves segments between them through the simulated
//! host NIC and network fabric.

#![warn(missing_docs)]

pub mod cc;
pub mod receiver;
pub mod rtt;
pub mod sender;
pub mod types;

pub use cc::{
    CcView, CongestionControl, CongestionEvent, LimitedSlowStart, Reno, RestrictedSlowStart,
    RssConfig,
};
pub use receiver::{AckToSend, ReceiverStats, TcpReceiver};
pub use rtt::RttEstimator;
pub use sender::{IfqSnapshot, TcpSender, TxPlan};
pub use types::{AckPolicy, ConnId, SegKind, StallResponse, TcpConfig, TcpSegment};

/// Construct a boxed congestion controller by algorithm selection — the
/// convenience entry point the scenario builder uses.
pub fn make_cc(algo: CcAlgorithm, cfg: &TcpConfig) -> Box<dyn CongestionControl> {
    let iw = cfg.initial_cwnd();
    let ssthresh = cfg.effective_initial_ssthresh();
    match algo {
        CcAlgorithm::Reno => Box::new(Reno::new(iw, ssthresh, cfg.mss, cfg.stall_response)),
        CcAlgorithm::Restricted(rss) => Box::new(RestrictedSlowStart::new(
            iw,
            ssthresh,
            cfg.mss,
            cfg.stall_response,
            rss,
        )),
        CcAlgorithm::Limited { max_ssthresh } => Box::new(LimitedSlowStart::with_max_ssthresh(
            iw,
            ssthresh,
            cfg.mss,
            cfg.stall_response,
            max_ssthresh.unwrap_or(100 * cfg.mss as u64),
        )),
    }
}

/// Which congestion-control algorithm a flow runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CcAlgorithm {
    /// Standard TCP (the paper's baseline).
    Reno,
    /// The paper's Restricted Slow-Start.
    Restricted(RssConfig),
    /// RFC 3742 Limited Slow-Start with optional `max_ssthresh` (bytes).
    Limited {
        /// `max_ssthresh` in bytes; `None` = RFC default of 100 segments.
        max_ssthresh: Option<u64>,
    },
}

impl CcAlgorithm {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            CcAlgorithm::Reno => "standard",
            CcAlgorithm::Restricted(_) => "restricted",
            CcAlgorithm::Limited { .. } => "limited",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_each_algorithm() {
        let cfg = TcpConfig::default();
        assert_eq!(make_cc(CcAlgorithm::Reno, &cfg).name(), "reno");
        assert_eq!(
            make_cc(CcAlgorithm::Restricted(RssConfig::tuned()), &cfg).name(),
            "restricted-slow-start"
        );
        assert_eq!(
            make_cc(CcAlgorithm::Limited { max_ssthresh: None }, &cfg).name(),
            "limited-slow-start"
        );
    }

    #[test]
    fn factory_uses_config_initial_window() {
        let cfg = TcpConfig::default();
        let cc = make_cc(CcAlgorithm::Reno, &cfg);
        assert_eq!(cc.cwnd(), cfg.initial_cwnd());
    }

    #[test]
    fn labels() {
        assert_eq!(CcAlgorithm::Reno.label(), "standard");
        assert_eq!(
            CcAlgorithm::Restricted(RssConfig::tuned()).label(),
            "restricted"
        );
        assert_eq!(
            CcAlgorithm::Limited { max_ssthresh: None }.label(),
            "limited"
        );
    }
}
