//! # rss-tcp — a TCP data-transfer engine with pluggable congestion control
//!
//! The transport substrate of the *Restricted Slow-Start for TCP*
//! reproduction. It implements the sender/receiver machinery a congestion
//! control study needs — cumulative ACKs, delayed ACKs, RFC 6298 RTT
//! estimation and retransmission timeouts, NewReno fast retransmit/recovery,
//! go-back-N timeout recovery — plus the paper's local-congestion pathway:
//! when the host interface queue rejects a segment, the sender receives a
//! **send-stall** signal and (configurably, like Linux 2.4) treats it as
//! congestion.
//!
//! Congestion control is the separate [`rss_cc`] layer (re-exported here as
//! [`cc`]): the sender drives any [`CongestionControl`] implementation
//! through per-ACK/per-congestion hooks and surfaces everything a variant
//! can pace on — IFQ occupancy for the paper's [`RestrictedSlowStart`],
//! RTT extremes for delay-based schemes like [`SsthreshlessStart`] — in the
//! [`CcView`] it hands to each hook. Variants register in [`rss_cc::registry`]; see that
//! crate's docs for the how-to.
//!
//! The sender and receiver are sans-IO state machines: an embedding world
//! model (see `rss-core`) moves segments between them through the simulated
//! host NIC and network fabric.

#![warn(missing_docs)]

pub use rss_cc as cc;

pub mod receiver;
pub mod rtt;
pub mod sender;
pub mod types;

pub use cc::{
    BbrProbe, CcAlgorithm, CcEngine, CcError, CcParams, CcView, CongestionControl, CongestionEvent,
    HighSpeedTcp, HybridStart, LimitedSlowStart, PacingDecision, RecoveryEvent, RelentlessCc, Reno,
    RestrictedSlowStart, RssConfig, ScalableConfig, ScalableTcp, SslConfig, SsthreshlessStart,
    StallResponse,
};
pub use receiver::{AckToSend, ReceiverStats, TcpReceiver};
pub use rss_net::Ecn;
pub use rtt::RttEstimator;
pub use sender::{IfqSnapshot, TcpSender, TxPlan};
pub use types::{AckPolicy, ConnId, SegKind, TcpConfig, TcpSegment};

/// Construct a congestion controller for a connection configured by `cfg` —
/// a convenience wrapper deriving [`CcParams`] from the transport config and
/// dispatching through the [`rss_cc::registry`] table. Standard Reno comes
/// back on the [`CcEngine`] monomorphized fast path; every other variant
/// rides the boxed registry path.
///
/// Returns the registry's [`CcError`] when validation rejects the algorithm
/// selection or the derived parameters; callers surface it on their own
/// error channel (the declarative pipeline path-qualifies it per flow).
pub fn make_cc(algo: CcAlgorithm, cfg: &TcpConfig) -> Result<CcEngine, CcError> {
    rss_cc::make_cc_engine(&algo, &cfg.cc_params())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn built(algo: CcAlgorithm, cfg: &TcpConfig) -> CcEngine {
        make_cc(algo, cfg).expect("default config builds every variant")
    }

    #[test]
    fn factory_builds_each_algorithm() {
        let cfg = TcpConfig::default();
        assert_eq!(built(CcAlgorithm::Reno, &cfg).name(), "reno");
        assert_eq!(
            built(CcAlgorithm::Restricted(RssConfig::tuned()), &cfg).name(),
            "restricted-slow-start"
        );
        assert_eq!(
            built(CcAlgorithm::Limited { max_ssthresh: None }, &cfg).name(),
            "limited-slow-start"
        );
        assert_eq!(
            built(CcAlgorithm::Ssthreshless(SslConfig::default()), &cfg).name(),
            "ssthreshless-start"
        );
        assert_eq!(built(CcAlgorithm::HighSpeed, &cfg).name(), "highspeed-tcp");
        assert_eq!(
            built(CcAlgorithm::Scalable(ScalableConfig::default()), &cfg).name(),
            "scalable-tcp"
        );
        assert_eq!(built(CcAlgorithm::Bbr, &cfg).name(), "bbr-probe");
        assert_eq!(built(CcAlgorithm::Relentless, &cfg).name(), "relentless-cc");
        assert_eq!(built(CcAlgorithm::Hybrid, &cfg).name(), "hybrid-start");
    }

    #[test]
    fn factory_propagates_registry_rejection() {
        let cfg = TcpConfig {
            mss: 0,
            ..Default::default()
        };
        assert!(make_cc(CcAlgorithm::Reno, &cfg).is_err());
    }

    #[test]
    fn factory_uses_config_initial_window() {
        let cfg = TcpConfig::default();
        let cc = built(CcAlgorithm::Reno, &cfg);
        assert_eq!(cc.cwnd(), cfg.initial_cwnd());
    }

    #[test]
    fn cc_params_mirror_the_config() {
        let cfg = TcpConfig::default();
        let p = cfg.cc_params();
        assert_eq!(p.initial_cwnd, cfg.initial_cwnd());
        assert_eq!(p.initial_ssthresh, cfg.effective_initial_ssthresh());
        assert_eq!(p.mss, cfg.mss);
        assert_eq!(p.stall_response, cfg.stall_response);
    }
}
