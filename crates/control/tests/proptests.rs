//! Property-based tests for the PID controller and plants.

use proptest::prelude::*;
use rss_control::{FirstOrderPlant, IntegratorPlant, PidConfig, PidController, PidGains, Plant};
use rss_sim::SimTime;

proptest! {
    /// The controller output always respects its configured clamps, for any
    /// gain set and any measurement sequence.
    #[test]
    fn output_always_clamped(
        kp in 0.0f64..100.0,
        ti_exp in -4.0f64..4.0,
        td_exp in -6.0f64..0.0,
        lo in -10.0f64..0.0,
        span in 0.1f64..20.0,
        pvs in prop::collection::vec(-1000.0f64..1000.0, 1..200),
    ) {
        let gains = PidGains::pid(kp, 10f64.powf(ti_exp), 10f64.powf(td_exp));
        let hi = lo + span;
        let cfg = PidConfig::new(gains, 42.0).with_output_limits(lo, hi);
        let mut c = PidController::new(cfg);
        for (i, &pv) in pvs.iter().enumerate() {
            let u = c.update(SimTime::from_micros(i as u64 * 100), pv);
            prop_assert!(u >= lo && u <= hi, "output {u} outside [{lo}, {hi}]");
            prop_assert!(u.is_finite());
        }
    }

    /// Anti-windup: after arbitrarily long saturation, the stored integral
    /// stays bounded by what the output limits can ever use.
    #[test]
    fn integral_never_winds_up_unbounded(
        hold_steps in 10usize..2000,
        err_mag in 1.0f64..1000.0,
    ) {
        let cfg = PidConfig::new(PidGains::pi(1.0, 0.1), err_mag)
            .with_output_limits(-1.0, 1.0);
        let mut c = PidController::new(cfg);
        for i in 0..hold_steps {
            // pv = 0 -> persistent positive error of err_mag.
            c.update(SimTime::from_millis(i as u64), 0.0);
        }
        // If the integral were accumulating, it would be ~err_mag * t. The
        // conditional-integration guard must keep it near zero.
        prop_assert!(
            c.integral().abs() <= err_mag * 0.01 + 1.0,
            "integral wound up to {}",
            c.integral()
        );
        // Recovery must be immediate once the error flips.
        let u = c.update(SimTime::from_secs(10_000), 2.0 * err_mag);
        prop_assert!(u <= 0.0, "controller stuck high after saturation: {u}");
    }

    /// A stable first-order closed loop settles for any reasonable
    /// proportional gain (first-order lags have no finite ultimate gain).
    #[test]
    fn p_control_of_first_order_always_stable(
        kp in 0.01f64..50.0,
        gain in 0.1f64..5.0,
        tau in 0.01f64..2.0,
    ) {
        let mut plant = FirstOrderPlant::new(gain, tau, 0.0);
        let mut c = PidController::new(PidConfig::new(PidGains::p(kp), 1.0));
        // The *continuous* loop is unconditionally stable; the sampled loop
        // additionally needs the step to resolve the closed-loop time
        // constant tau/(1 + KpK), or discretisation itself oscillates.
        let closed_tau = tau / (1.0 + kp * gain);
        let dt = (closed_tau / 10.0).min(1e-3);
        let steps = (20.0 * tau / dt) as usize;
        let mut y = 0.0;
        for i in 0..steps {
            let u = c.update(SimTime::from_secs_f64(i as f64 * dt), y);
            y = plant.step(u, dt);
            prop_assert!(y.is_finite() && y.abs() < 1e6, "diverged: {y}");
        }
        // Settles to the P-control fixed point y* = KpK/(1+KpK).
        let expect = kp * gain / (1.0 + kp * gain);
        prop_assert!((y - expect).abs() < 0.05 + 0.05 * expect, "y {y} vs {expect}");
    }

    /// Saturating integrator plants never exceed their bounds.
    #[test]
    fn saturating_integrator_bounded(
        inputs in prop::collection::vec(-100.0f64..100.0, 1..500),
        cap in 1.0f64..1000.0,
    ) {
        let mut p = IntegratorPlant::saturating(1.0, 0.0, 0.0, cap);
        for &u in &inputs {
            let y = p.step(u, 0.01);
            prop_assert!((0.0..=cap).contains(&y));
        }
    }
}
