//! Discrete-time PID controller.
//!
//! The paper (§3) uses the standard (ISA / "ideal") form the 1987 Gerry survey
//! describes:
//!
//! ```text
//! u(t) = Kp * ( E(t) + (1/Ti) ∫ E dt + Td * dE/dt )
//! ```
//!
//! with the error `E = setpoint − process_variable`, the process variable
//! being the instantaneous IFQ occupancy and the setpoint 90 % of the maximum
//! IFQ size. This module implements that transfer function plus the two
//! classical robustness measures any deployed PID needs: integral anti-windup
//! (conditional clamping) and a first-order low-pass filter on the derivative
//! term (the derivative of a queue-occupancy signal is extremely noisy).

use rss_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Controller gains in standard form. `ti`/`td` are in **seconds**.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PidGains {
    /// Proportional gain `Kp`.
    pub kp: f64,
    /// Integral time constant `Ti` (s). `f64::INFINITY` disables the
    /// integral term (standard-form convention).
    pub ti: f64,
    /// Derivative time constant `Td` (s). `0.0` disables the derivative term.
    pub td: f64,
}

impl PidGains {
    /// Proportional-only controller.
    pub fn p(kp: f64) -> Self {
        PidGains {
            kp,
            ti: f64::INFINITY,
            td: 0.0,
        }
    }

    /// Proportional-integral controller.
    pub fn pi(kp: f64, ti: f64) -> Self {
        PidGains { kp, ti, td: 0.0 }
    }

    /// Full PID controller.
    pub fn pid(kp: f64, ti: f64, td: f64) -> Self {
        PidGains { kp, ti, td }
    }

    /// True if every gain is finite-or-conventional and non-negative.
    pub fn is_valid(&self) -> bool {
        self.kp.is_finite()
            && self.kp >= 0.0
            && self.ti > 0.0 // INFINITY allowed
            && self.td >= 0.0
            && self.td.is_finite()
    }
}

/// Static configuration of a [`PidController`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PidConfig {
    /// Controller gains.
    pub gains: PidGains,
    /// Target value for the process variable (for RSS: `0.9 × ifq_max`).
    pub setpoint: f64,
    /// Lower clamp on the controller output.
    pub output_min: f64,
    /// Upper clamp on the controller output.
    pub output_max: f64,
    /// Smoothing factor for the derivative low-pass filter, in `(0, 1]`.
    /// `1.0` means unfiltered; smaller values smooth more.
    pub derivative_filter: f64,
    /// Compute the derivative on the *measurement* instead of the error.
    /// Avoids the output spike when the setpoint changes ("derivative kick").
    pub derivative_on_measurement: bool,
}

impl PidConfig {
    /// Config with symmetric output limits and sensible filtering defaults.
    pub fn new(gains: PidGains, setpoint: f64) -> Self {
        PidConfig {
            gains,
            setpoint,
            output_min: f64::NEG_INFINITY,
            output_max: f64::INFINITY,
            derivative_filter: 0.5,
            derivative_on_measurement: true,
        }
    }

    /// Set output clamps (builder style).
    pub fn with_output_limits(mut self, min: f64, max: f64) -> Self {
        assert!(min <= max, "output_min > output_max");
        self.output_min = min;
        self.output_max = max;
        self
    }

    /// Set the derivative filter factor (builder style).
    pub fn with_derivative_filter(mut self, alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "filter must be in (0,1]");
        self.derivative_filter = alpha;
        self
    }

    /// Compute the derivative on the raw error (builder style).
    pub fn with_derivative_on_error(mut self) -> Self {
        self.derivative_on_measurement = false;
        self
    }
}

/// The controller state. Feed it timestamped process-variable samples through
/// [`PidController::update`]; it returns the clamped control output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PidController {
    cfg: PidConfig,
    integral: f64,
    prev: Option<PrevSample>,
    filtered_derivative: f64,
    last_output: f64,
    updates: u64,
}

#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct PrevSample {
    time_ns: u64,
    error: f64,
    pv: f64,
}

impl PidController {
    /// Create a controller from a configuration.
    pub fn new(cfg: PidConfig) -> Self {
        assert!(cfg.gains.is_valid(), "invalid PID gains {:?}", cfg.gains);
        PidController {
            cfg,
            integral: 0.0,
            prev: None,
            filtered_derivative: 0.0,
            last_output: 0.0,
            updates: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &PidConfig {
        &self.cfg
    }

    /// Change the setpoint without resetting accumulated state.
    pub fn set_setpoint(&mut self, setpoint: f64) {
        self.cfg.setpoint = setpoint;
    }

    /// Current error `setpoint − pv` for an externally supplied pv.
    pub fn error_for(&self, pv: f64) -> f64 {
        self.cfg.setpoint - pv
    }

    /// The most recent output (clamped).
    pub fn last_output(&self) -> f64 {
        self.last_output
    }

    /// Number of updates performed.
    pub fn update_count(&self) -> u64 {
        self.updates
    }

    /// The accumulated integral ∫E dt (seconds-weighted error).
    pub fn integral(&self) -> f64 {
        self.integral
    }

    /// Clear all accumulated state (integral, derivative history, counters).
    pub fn reset(&mut self) {
        self.integral = 0.0;
        self.prev = None;
        self.filtered_derivative = 0.0;
        self.last_output = 0.0;
        self.updates = 0;
    }

    /// Process one measurement of the process variable at time `now` and
    /// return the control output `Kp(E + 1/Ti ∫E dt + Td dE/dt)`, clamped to
    /// the configured output range.
    ///
    /// Anti-windup: the integral is only accumulated while the *unclamped*
    /// output stays inside the limits or the error drives it back toward the
    /// allowed range (conditional integration).
    pub fn update(&mut self, now: SimTime, pv: f64) -> f64 {
        assert!(pv.is_finite(), "non-finite process variable {pv}");
        let error = self.cfg.setpoint - pv;
        self.updates += 1;

        let dt = match self.prev {
            Some(p) => {
                let dt_ns = now.as_nanos().saturating_sub(p.time_ns);
                dt_ns as f64 / 1e9
            }
            None => 0.0,
        };

        // Integral term (skipped on the very first sample: no dt yet).
        let mut candidate_integral = self.integral;
        if dt > 0.0 && self.cfg.gains.ti.is_finite() {
            // Trapezoidal accumulation is noticeably more accurate than
            // rectangular at the coarse per-ACK sampling RSS uses.
            let prev_error = self.prev.map_or(error, |p| p.error);
            candidate_integral += 0.5 * (error + prev_error) * dt;
        }

        // Derivative term, low-pass filtered.
        if dt > 0.0 && self.cfg.gains.td > 0.0 {
            let raw = if self.cfg.derivative_on_measurement {
                // d(error)/dt = -d(pv)/dt when the setpoint is constant.
                let prev_pv = self.prev.map_or(pv, |p| p.pv);
                -(pv - prev_pv) / dt
            } else {
                let prev_error = self.prev.map_or(error, |p| p.error);
                (error - prev_error) / dt
            };
            let a = self.cfg.derivative_filter;
            self.filtered_derivative = a * raw + (1.0 - a) * self.filtered_derivative;
        }

        let g = self.cfg.gains;
        let integral_term = if g.ti.is_finite() {
            candidate_integral / g.ti
        } else {
            0.0
        };
        let unclamped = g.kp * (error + integral_term + g.td * self.filtered_derivative);
        let output = unclamped.clamp(self.cfg.output_min, self.cfg.output_max);

        // Conditional integration: commit the new integral only if we are not
        // saturated, or if the new error pushes the output back in range.
        let saturated_high = unclamped > self.cfg.output_max && error > 0.0;
        let saturated_low = unclamped < self.cfg.output_min && error < 0.0;
        if !(saturated_high || saturated_low) {
            self.integral = candidate_integral;
        }

        self.prev = Some(PrevSample {
            time_ns: now.as_nanos(),
            error,
            pv,
        });
        self.last_output = output;
        output
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rss_sim::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn p_only_is_proportional_to_error() {
        let mut c = PidController::new(PidConfig::new(PidGains::p(2.0), 10.0));
        assert_eq!(c.update(t(0), 4.0), 12.0); // E = 6, u = 2*6
        assert_eq!(c.update(t(1), 10.0), 0.0); // E = 0
        assert_eq!(c.update(t(2), 13.0), -6.0); // E = -3
    }

    #[test]
    fn integral_accumulates_error_over_time() {
        // PI with Ti = 1 s: after holding E = 1 for 2 s, the integral term
        // contributes ~2.0 (trapezoid over constant error is exact).
        let mut c = PidController::new(PidConfig::new(PidGains::pi(1.0, 1.0), 1.0));
        let mut now = SimTime::ZERO;
        let mut u = 0.0;
        for _ in 0..2001 {
            u = c.update(now, 0.0); // E = 1 forever
            now += SimDuration::from_millis(1);
        }
        // u = Kp*(E + I/Ti) = 1 + 2.0
        assert!((u - 3.0).abs() < 1e-6, "u = {u}");
    }

    #[test]
    fn first_sample_has_no_integral_or_derivative() {
        let mut c = PidController::new(PidConfig::new(PidGains::pid(1.0, 0.5, 0.5), 5.0));
        let u = c.update(t(0), 0.0);
        assert_eq!(u, 5.0); // pure P on first sample
        assert_eq!(c.integral(), 0.0);
    }

    #[test]
    fn derivative_opposes_rapid_pv_rise() {
        // derivative on measurement: pv jumping up should *reduce* output.
        let cfg = PidConfig::new(PidGains::pid(1.0, f64::INFINITY, 0.1), 10.0)
            .with_derivative_filter(1.0);
        let mut c = PidController::new(cfg);
        c.update(t(0), 0.0);
        let u_slow = 10.0 - 5.0; // E if pv were 5, no derivative
        let u = c.update(t(100), 5.0); // pv rose 5 in 100 ms -> dpv/dt = 50/s
        assert!(u < u_slow, "derivative should oppose the rise: {u}");
        // u = Kp*(E + Td * (-50)) = 5 - 5 = 0
        assert!((u - 0.0).abs() < 1e-9, "u = {u}");
    }

    #[test]
    fn derivative_kick_avoided_on_setpoint_change() {
        let cfg =
            PidConfig::new(PidGains::pid(1.0, f64::INFINITY, 1.0), 0.0).with_derivative_filter(1.0);
        let mut c = PidController::new(cfg);
        c.update(t(0), 5.0);
        c.set_setpoint(100.0);
        // pv unchanged: derivative-on-measurement sees no pv movement, so no
        // spike beyond the proportional response.
        let u = c.update(t(1), 5.0);
        assert!((u - 95.0).abs() < 1e-9, "u = {u}");
    }

    #[test]
    fn output_clamps() {
        let cfg = PidConfig::new(PidGains::p(100.0), 10.0).with_output_limits(-1.0, 1.0);
        let mut c = PidController::new(cfg);
        assert_eq!(c.update(t(0), 0.0), 1.0);
        assert_eq!(c.update(t(1), 20.0), -1.0);
    }

    #[test]
    fn anti_windup_freezes_integral_when_saturated() {
        let cfg = PidConfig::new(PidGains::pi(1.0, 0.1), 10.0).with_output_limits(0.0, 1.0);
        let mut c = PidController::new(cfg);
        let mut now = SimTime::ZERO;
        for _ in 0..1000 {
            c.update(now, 0.0); // persistent large error, output pinned at 1.0
            now += SimDuration::from_millis(1);
        }
        let wound = c.integral();
        assert!(
            wound < 0.05,
            "integral should be frozen while saturated, got {wound}"
        );
        // When the pv overshoots the setpoint the controller must react
        // immediately rather than bleeding off a huge stored integral.
        let u = c.update(now, 20.0);
        assert_eq!(u, 0.0);
    }

    #[test]
    fn reset_clears_state() {
        let mut c = PidController::new(PidConfig::new(PidGains::pi(1.0, 1.0), 1.0));
        c.update(t(0), 0.0);
        c.update(t(1000), 0.0);
        assert!(c.integral() > 0.0);
        c.reset();
        assert_eq!(c.integral(), 0.0);
        assert_eq!(c.last_output(), 0.0);
    }

    #[test]
    fn update_count_tracks() {
        let mut c = PidController::new(PidConfig::new(PidGains::p(1.0), 0.0));
        for i in 0..5 {
            c.update(t(i), 0.0);
        }
        assert_eq!(c.update_count(), 5);
    }

    #[test]
    #[should_panic(expected = "invalid PID gains")]
    fn rejects_negative_kp() {
        PidController::new(PidConfig::new(PidGains::p(-1.0), 0.0));
    }

    #[test]
    #[should_panic(expected = "non-finite process variable")]
    fn rejects_nan_pv() {
        let mut c = PidController::new(PidConfig::new(PidGains::p(1.0), 0.0));
        c.update(t(0), f64::NAN);
    }

    #[test]
    fn gains_validity() {
        assert!(PidGains::p(1.0).is_valid());
        assert!(PidGains::pi(1.0, 2.0).is_valid());
        assert!(!PidGains::pid(1.0, 0.0, 0.1).is_valid()); // Ti = 0 ill-formed
        assert!(!PidGains::pid(1.0, 1.0, f64::INFINITY).is_valid());
    }
}
