//! Reference plant models for controller testing and tuning.
//!
//! The Ziegler–Nichols tuner and the PID ablation experiments need plants with
//! *known* analytic behaviour so the tuner's output can be checked against
//! theory. The IFQ of a sending host behaves approximately as an integrator
//! with transport delay (occupancy integrates the send/drain rate mismatch and
//! the controller observes it one feedback epoch late), so those two models
//! are the load-bearing ones; first- and second-order lags round out the
//! standard test set.

use std::collections::VecDeque;

/// A single-input single-output plant advanced in fixed time steps.
pub trait Plant {
    /// Advance the plant by `dt` seconds with control input `u`; returns the
    /// new output.
    fn step(&mut self, u: f64, dt: f64) -> f64;

    /// Current output without advancing.
    fn output(&self) -> f64;

    /// Return the plant to its initial state.
    fn reset(&mut self);
}

/// First-order lag: `tau · dy/dt + y = K · u`.
#[derive(Debug, Clone)]
pub struct FirstOrderPlant {
    /// Steady-state gain.
    pub gain: f64,
    /// Time constant (s).
    pub tau: f64,
    y: f64,
    y0: f64,
}

impl FirstOrderPlant {
    /// Create with initial output `y0`.
    pub fn new(gain: f64, tau: f64, y0: f64) -> Self {
        assert!(tau > 0.0, "tau must be positive");
        FirstOrderPlant {
            gain,
            tau,
            y: y0,
            y0,
        }
    }
}

impl Plant for FirstOrderPlant {
    fn step(&mut self, u: f64, dt: f64) -> f64 {
        // Exact discretisation of the linear ODE for a zero-order-hold input.
        let a = (-dt / self.tau).exp();
        self.y = a * self.y + (1.0 - a) * self.gain * u;
        self.y
    }
    fn output(&self) -> f64 {
        self.y
    }
    fn reset(&mut self) {
        self.y = self.y0;
    }
}

/// Pure integrator: `dy/dt = K · u`. The small-signal model of a queue whose
/// input rate is the control variable and whose drain rate is constant.
#[derive(Debug, Clone)]
pub struct IntegratorPlant {
    /// Integration gain.
    pub gain: f64,
    y: f64,
    y0: f64,
    /// Optional saturation bounds `(lo, hi)` — a real queue cannot go
    /// negative or exceed its capacity.
    pub limits: Option<(f64, f64)>,
}

impl IntegratorPlant {
    /// Unbounded integrator starting at `y0`.
    pub fn new(gain: f64, y0: f64) -> Self {
        IntegratorPlant {
            gain,
            y: y0,
            y0,
            limits: None,
        }
    }

    /// Integrator clamped to `[lo, hi]`, modelling a finite queue.
    pub fn saturating(gain: f64, y0: f64, lo: f64, hi: f64) -> Self {
        assert!(lo < hi);
        IntegratorPlant {
            gain,
            y: y0,
            y0,
            limits: Some((lo, hi)),
        }
    }
}

impl Plant for IntegratorPlant {
    fn step(&mut self, u: f64, dt: f64) -> f64 {
        self.y += self.gain * u * dt;
        if let Some((lo, hi)) = self.limits {
            self.y = self.y.clamp(lo, hi);
        }
        self.y
    }
    fn output(&self) -> f64 {
        self.y
    }
    fn reset(&mut self) {
        self.y = self.y0;
    }
}

/// Second-order plant: `y'' + 2ζωₙ y' + ωₙ² y = K ωₙ² u`.
#[derive(Debug, Clone)]
pub struct SecondOrderPlant {
    /// Steady-state gain.
    pub gain: f64,
    /// Natural frequency ωₙ (rad/s).
    pub omega_n: f64,
    /// Damping ratio ζ.
    pub zeta: f64,
    y: f64,
    ydot: f64,
}

impl SecondOrderPlant {
    /// Create at rest.
    pub fn new(gain: f64, omega_n: f64, zeta: f64) -> Self {
        assert!(omega_n > 0.0 && zeta >= 0.0);
        SecondOrderPlant {
            gain,
            omega_n,
            zeta,
            y: 0.0,
            ydot: 0.0,
        }
    }
}

impl Plant for SecondOrderPlant {
    fn step(&mut self, u: f64, dt: f64) -> f64 {
        // Semi-implicit Euler keeps the oscillator stable for the small dt
        // the tuner uses.
        let acc = self.gain * self.omega_n * self.omega_n * u
            - 2.0 * self.zeta * self.omega_n * self.ydot
            - self.omega_n * self.omega_n * self.y;
        self.ydot += acc * dt;
        self.y += self.ydot * dt;
        self.y
    }
    fn output(&self) -> f64 {
        self.y
    }
    fn reset(&mut self) {
        self.y = 0.0;
        self.ydot = 0.0;
    }
}

/// Wraps another plant with pure transport delay (dead time) on the input.
///
/// Dead time is what gives a first-order plant a finite ultimate gain, making
/// it the canonical Ziegler–Nichols test subject.
#[derive(Debug, Clone)]
pub struct DeadTimePlant<P> {
    inner: P,
    /// Transport delay (s).
    pub delay: f64,
    // (remaining_delay, input) entries, oldest first.
    pipeline: VecDeque<(f64, f64)>,
}

impl<P: Plant> DeadTimePlant<P> {
    /// Delay the input to `inner` by `delay` seconds.
    pub fn new(inner: P, delay: f64) -> Self {
        assert!(delay >= 0.0);
        DeadTimePlant {
            inner,
            delay,
            pipeline: VecDeque::new(),
        }
    }

    /// Access to the wrapped plant.
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<P: Plant> Plant for DeadTimePlant<P> {
    fn step(&mut self, u: f64, dt: f64) -> f64 {
        self.pipeline.push_back((self.delay, u));
        // Age the pipeline; inputs whose delay has fully elapsed drive the
        // inner plant (piecewise within this dt step, oldest first).
        let mut remaining_dt = dt;
        while remaining_dt > 0.0 {
            match self.pipeline.front_mut() {
                Some((lag, pending_u)) if *lag <= 1e-12 => {
                    // This input is already live; it drives the plant until a
                    // younger input becomes live or dt is exhausted.
                    let live_u = *pending_u;
                    // Find how long until the *next* entry becomes live.
                    let until_next = self
                        .pipeline
                        .get(1)
                        .map(|&(lag2, _)| lag2)
                        .unwrap_or(f64::INFINITY);
                    let run = remaining_dt.min(until_next.max(1e-12));
                    self.inner.step(live_u, run);
                    remaining_dt -= run;
                    // Age every queued entry by the time we just consumed.
                    for (lag, _) in self.pipeline.iter_mut().skip(1) {
                        *lag = (*lag - run).max(0.0);
                    }
                    // Keep only the most recent live entry at the front.
                    while self.pipeline.len() > 1
                        && self.pipeline.get(1).map(|&(l, _)| l <= 1e-12) == Some(true)
                    {
                        self.pipeline.pop_front();
                    }
                }
                Some((lag, _)) => {
                    // Nothing live yet: the plant coasts with zero input.
                    let run = remaining_dt.min(*lag);
                    self.inner.step(0.0, run);
                    remaining_dt -= run;
                    for (lag, _) in self.pipeline.iter_mut() {
                        *lag = (*lag - run).max(0.0);
                    }
                }
                None => {
                    self.inner.step(0.0, remaining_dt);
                    break;
                }
            }
        }
        self.inner.output()
    }
    fn output(&self) -> f64 {
        self.inner.output()
    }
    fn reset(&mut self) {
        self.inner.reset();
        self.pipeline.clear();
    }
}

/// Analytic ultimate gain and period for a first-order-plus-dead-time plant
/// `K e^{−θs} / (τs + 1)` under proportional control.
///
/// The ultimate frequency `ω` solves `atan(ωτ) + ωθ = π`; then
/// `Kc = sqrt(1 + (ωτ)²) / K` and `Tc = 2π / ω`. Used to validate the
/// Ziegler–Nichols search.
pub fn fopdt_ultimate(gain: f64, tau: f64, theta: f64) -> (f64, f64) {
    assert!(gain > 0.0 && tau > 0.0 && theta > 0.0);
    // Bisection on ω: f(ω) = atan(ωτ) + ωθ − π, monotone increasing.
    let f = |w: f64| (w * tau).atan() + w * theta - std::f64::consts::PI;
    let mut lo = 1e-9;
    let mut hi = std::f64::consts::PI / theta; // f(hi) >= 0 always
    assert!(f(lo) < 0.0);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if f(mid) < 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let w = 0.5 * (lo + hi);
    let kc = (1.0 + (w * tau).powi(2)).sqrt() / gain;
    let tc = 2.0 * std::f64::consts::PI / w;
    (kc, tc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_order_reaches_steady_state() {
        let mut p = FirstOrderPlant::new(2.0, 0.5, 0.0);
        for _ in 0..10_000 {
            p.step(1.0, 0.001);
        }
        assert!((p.output() - 2.0).abs() < 1e-6, "y = {}", p.output());
    }

    #[test]
    fn first_order_time_constant() {
        // After exactly tau seconds, a step response reaches 1 - 1/e.
        let mut p = FirstOrderPlant::new(1.0, 2.0, 0.0);
        let dt = 0.001;
        let steps = (2.0 / dt) as usize;
        for _ in 0..steps {
            p.step(1.0, dt);
        }
        let expect = 1.0 - (-1.0f64).exp();
        assert!((p.output() - expect).abs() < 1e-3, "y = {}", p.output());
    }

    #[test]
    fn integrator_ramps_linearly() {
        let mut p = IntegratorPlant::new(3.0, 0.0);
        for _ in 0..1000 {
            p.step(2.0, 0.001);
        }
        assert!((p.output() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn saturating_integrator_respects_limits() {
        let mut p = IntegratorPlant::saturating(1.0, 0.0, 0.0, 10.0);
        for _ in 0..100_000 {
            p.step(5.0, 0.01);
        }
        assert_eq!(p.output(), 10.0);
        for _ in 0..100_000 {
            p.step(-5.0, 0.01);
        }
        assert_eq!(p.output(), 0.0);
    }

    #[test]
    fn second_order_underdamped_overshoots() {
        let mut p = SecondOrderPlant::new(1.0, 10.0, 0.2);
        let mut peak = 0.0f64;
        for _ in 0..100_000 {
            peak = peak.max(p.step(1.0, 0.0001));
        }
        assert!(
            peak > 1.3,
            "underdamped system should overshoot, peak {peak}"
        );
        assert!((p.output() - 1.0).abs() < 0.05, "settles near 1.0");
    }

    #[test]
    fn second_order_overdamped_does_not_overshoot() {
        let mut p = SecondOrderPlant::new(1.0, 10.0, 2.0);
        let mut peak = 0.0f64;
        for _ in 0..200_000 {
            peak = peak.max(p.step(1.0, 0.0001));
        }
        assert!(peak <= 1.001, "peak {peak}");
    }

    #[test]
    fn dead_time_delays_response() {
        let mut p = DeadTimePlant::new(IntegratorPlant::new(1.0, 0.0), 0.5);
        // Apply u=1 for 0.4 s: still inside the dead time, output ~0.
        for _ in 0..400 {
            p.step(1.0, 0.001);
        }
        assert!(p.output().abs() < 1e-9, "y = {}", p.output());
        // After a further 0.6 s, the input has been live for ~0.5 s.
        for _ in 0..600 {
            p.step(1.0, 0.001);
        }
        assert!((p.output() - 0.5).abs() < 0.01, "y = {}", p.output());
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut p = DeadTimePlant::new(FirstOrderPlant::new(1.0, 1.0, 0.25), 0.1);
        for _ in 0..1000 {
            p.step(1.0, 0.001);
        }
        assert!(p.output() > 0.3);
        p.reset();
        assert_eq!(p.output(), 0.25);
    }

    #[test]
    fn fopdt_ultimate_matches_known_case() {
        // K=1, tau=1, theta=1: ultimate frequency solves atan(w) + w = pi,
        // w ≈ 2.0288, Kc = sqrt(1+w^2) ≈ 2.26, Tc ≈ 3.096.
        let (kc, tc) = fopdt_ultimate(1.0, 1.0, 1.0);
        assert!((kc - 2.26).abs() < 0.01, "kc = {kc}");
        assert!((tc - 3.097).abs() < 0.01, "tc = {tc}");
    }
}
