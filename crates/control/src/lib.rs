//! # rss-control — PID control and Ziegler–Nichols tuning
//!
//! The control-theory substrate of the *Restricted Slow-Start for TCP*
//! reproduction. The paper's contribution is a PID controller that paces the
//! TCP sender during slow-start, with the host's network-interface-queue
//! occupancy as the process variable and 90 % of the queue's capacity as the
//! setpoint; the gains come from a Ziegler–Nichols ultimate-gain experiment.
//!
//! This crate provides:
//!
//! * [`PidController`] — the discrete-time transfer function
//!   `Kp (E + 1/Ti ∫E dt + Td dE/dt)` with anti-windup and derivative
//!   filtering;
//! * [`plant`] — reference plants (first/second-order lags, integrators,
//!   dead time) with analytic ultimate gains for validation;
//! * [`ziegler_nichols`] — the automated closed-loop ultimate-gain search
//!   and the paper's `0.33 Kc / 0.5 Tc / 0.33 Tc` tuning rule;
//! * [`tuning`] — step-response quality metrics for the ablation study.
//!
//! ```
//! use rss_control::{find_ultimate_gain, DeadTimePlant, FirstOrderPlant, ZnSearchConfig};
//!
//! // Tune against a first-order-plus-dead-time plant, as the paper tuned
//! // against the live host.
//! let mut plant = DeadTimePlant::new(FirstOrderPlant::new(1.0, 1.0, 0.0), 1.0);
//! let zn = find_ultimate_gain(&mut plant, &ZnSearchConfig::default()).unwrap();
//! let gains = zn.paper_gains(); // Kp = 0.33 Kc, Ti = 0.5 Tc, Td = 0.33 Tc
//! assert!(gains.kp > 0.0);
//! ```

#![warn(missing_docs)]

pub mod pid;
pub mod plant;
pub mod tuning;
pub mod ziegler_nichols;

pub use pid::{PidConfig, PidController, PidGains};
pub use plant::{
    fopdt_ultimate, DeadTimePlant, FirstOrderPlant, IntegratorPlant, Plant, SecondOrderPlant,
};
pub use tuning::{simulate_closed_loop, step_metrics, StepMetrics};
pub use ziegler_nichols::{
    classify_response, find_ultimate_gain, LoopBehavior, ZnError, ZnResult, ZnSearchConfig,
};
