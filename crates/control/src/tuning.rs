//! Closed-loop simulation helpers and step-response quality metrics.
//!
//! Used by the PID-ablation experiment (E7) to quantify *why* the paper's
//! "some overshoot" gains behave well on a queue-like plant, and by the test
//! suite to validate tuned controllers against textbook expectations.

use crate::pid::{PidConfig, PidController};
use crate::plant::Plant;
use rss_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Run `pid` against `plant` for `duration` seconds at a fixed `dt`,
/// returning `(t, y, u)` samples.
pub fn simulate_closed_loop<P: Plant>(
    plant: &mut P,
    cfg: PidConfig,
    dt: f64,
    duration: f64,
) -> Vec<(f64, f64, f64)> {
    assert!(dt > 0.0 && duration > 0.0);
    let mut pid = PidController::new(cfg);
    let steps = (duration / dt).ceil() as usize;
    let mut out = Vec::with_capacity(steps);
    for i in 0..steps {
        let t = i as f64 * dt;
        let y = plant.output();
        let u = pid.update(SimTime::from_secs_f64(t), y);
        out.push((t, y, u));
        plant.step(u, dt);
    }
    out
}

/// Quality metrics of a step response toward `setpoint`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StepMetrics {
    /// 10 % → 90 % rise time (s); `None` if the response never reaches 90 %.
    pub rise_time: Option<f64>,
    /// Peak overshoot as a percentage of the step size (0 if none).
    pub overshoot_pct: f64,
    /// Time after which the response stays within ±2 % of the setpoint;
    /// `None` if it never settles.
    pub settling_time: Option<f64>,
    /// |setpoint − y| at the end of the window.
    pub steady_state_error: f64,
    /// Integral of absolute error over the window.
    pub iae: f64,
    /// Integral of squared error over the window.
    pub ise: f64,
}

/// Compute [`StepMetrics`] from `(t, y)` samples of a response that starts at
/// `y0` and targets `setpoint`.
pub fn step_metrics(samples: &[(f64, f64)], y0: f64, setpoint: f64) -> StepMetrics {
    assert!(!samples.is_empty(), "empty response");
    let step = setpoint - y0;
    assert!(step.abs() > 1e-12, "degenerate step");
    let dir = step.signum();

    let frac = |y: f64| (y - y0) / step;

    let mut t10 = None;
    let mut t90 = None;
    let mut peak = f64::NEG_INFINITY;
    let mut iae = 0.0;
    let mut ise = 0.0;
    for w in samples.windows(2) {
        let (t, y) = w[0];
        let dt = w[1].0 - t;
        let e = setpoint - y;
        iae += e.abs() * dt;
        ise += e * e * dt;
        let f = frac(y);
        if t10.is_none() && f >= 0.1 {
            t10 = Some(t);
        }
        if t90.is_none() && f >= 0.9 {
            t90 = Some(t);
        }
        peak = peak.max(f * dir.signum());
    }
    // Include the last sample's value in the peak scan.
    peak = peak.max(frac(samples[samples.len() - 1].1));

    let rise_time = match (t10, t90) {
        (Some(a), Some(b)) if b >= a => Some(b - a),
        _ => None,
    };
    let overshoot_pct = ((peak - 1.0) * 100.0).max(0.0);

    // Settling: last time the response was outside the ±2 % band.
    let band = 0.02 * step.abs();
    let mut settling_time = None;
    for &(t, y) in samples.iter().rev() {
        if (setpoint - y).abs() > band {
            settling_time = Some(t);
            break;
        }
    }
    // If even the final sample is outside the band, it never settled.
    let last = samples[samples.len() - 1];
    let settling_time = if (setpoint - last.1).abs() > band {
        None
    } else {
        settling_time.or(Some(0.0))
    };

    StepMetrics {
        rise_time,
        overshoot_pct,
        settling_time,
        steady_state_error: (setpoint - last.1).abs(),
        iae,
        ise,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pid::PidGains;
    use crate::plant::{DeadTimePlant, FirstOrderPlant};
    use crate::ziegler_nichols::{find_ultimate_gain, ZnSearchConfig};

    #[test]
    fn pi_eliminates_steady_state_error_on_first_order() {
        // P-only on a first-order plant leaves offset; PI removes it.
        let mut plant = FirstOrderPlant::new(1.0, 0.5, 0.0);
        let p_cfg = PidConfig::new(PidGains::p(2.0), 1.0);
        let resp = simulate_closed_loop(&mut plant, p_cfg, 1e-3, 20.0);
        let y_final_p = resp.last().unwrap().1;
        // P-only steady state: y = Kp*K/(1+Kp*K) = 2/3.
        assert!((y_final_p - 2.0 / 3.0).abs() < 0.01, "y {y_final_p}");

        plant.reset();
        let pi_cfg = PidConfig::new(PidGains::pi(2.0, 0.5), 1.0);
        let resp = simulate_closed_loop(&mut plant, pi_cfg, 1e-3, 20.0);
        let y_final_pi = resp.last().unwrap().1;
        assert!((y_final_pi - 1.0).abs() < 0.01, "y {y_final_pi}");
    }

    #[test]
    fn zn_paper_gains_stabilize_fopdt() {
        // End-to-end: tune on the plant, then close the loop with the paper's
        // rule and verify a sane, settled step response.
        let mut plant = DeadTimePlant::new(FirstOrderPlant::new(1.0, 1.0, 0.0), 1.0);
        let zcfg = ZnSearchConfig {
            dt: 2e-3,
            sim_time: 80.0,
            ..Default::default()
        };
        let zn = find_ultimate_gain(&mut plant, &zcfg).unwrap();
        plant.reset();
        let cfg = PidConfig::new(zn.paper_gains(), 1.0);
        let resp: Vec<(f64, f64)> = simulate_closed_loop(&mut plant, cfg, 2e-3, 60.0)
            .into_iter()
            .map(|(t, y, _)| (t, y))
            .collect();
        let m = step_metrics(&resp, 0.0, 1.0);
        assert!(m.settling_time.is_some(), "loop did not settle: {m:?}");
        assert!(m.steady_state_error < 0.02, "{m:?}");
        assert!(m.overshoot_pct < 60.0, "{m:?}");
    }

    #[test]
    fn metrics_on_ideal_first_order_response() {
        // y(t) = 1 - e^{-t}: no overshoot, known rise time
        // t10 = ln(10/9) ≈ 0.105, t90 = ln(10) ≈ 2.303 -> rise ≈ 2.197.
        let samples: Vec<(f64, f64)> = (0..10_000)
            .map(|i| {
                let t = i as f64 * 1e-3;
                (t, 1.0 - (-t).exp())
            })
            .collect();
        let m = step_metrics(&samples, 0.0, 1.0);
        assert!((m.rise_time.unwrap() - 2.197).abs() < 0.01, "{m:?}");
        assert!(m.overshoot_pct < 1e-9, "{m:?}");
        // settles within 2%: t = ln(50) ≈ 3.912
        assert!((m.settling_time.unwrap() - 3.912).abs() < 0.02, "{m:?}");
        assert!(m.steady_state_error < 1e-3);
        // IAE of e^{-t} over [0, 10] ≈ 1.0
        assert!((m.iae - 1.0).abs() < 0.01, "{m:?}");
        assert!((m.ise - 0.5).abs() < 0.01, "{m:?}");
    }

    #[test]
    fn overshoot_measured() {
        // Synthetic response peaking at 1.3 then settling at 1.0.
        let samples: Vec<(f64, f64)> = (0..5000)
            .map(|i| {
                let t = i as f64 * 1e-3;
                let y = 1.0 + 0.3 * (-t).exp() * (6.0 * t).sin();
                (t, y)
            })
            .collect();
        let m = step_metrics(&samples, 0.0, 1.0);
        assert!(m.overshoot_pct > 10.0, "{m:?}");
        assert!(m.overshoot_pct < 35.0, "{m:?}");
    }

    #[test]
    fn never_settling_response() {
        let samples: Vec<(f64, f64)> = (0..1000).map(|i| (i as f64 * 1e-3, 0.5)).collect();
        let m = step_metrics(&samples, 0.0, 1.0);
        assert!(m.settling_time.is_none());
        assert!(m.rise_time.is_none());
        assert!((m.steady_state_error - 0.5).abs() < 1e-12);
    }
}
