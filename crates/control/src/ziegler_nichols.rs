//! Ziegler–Nichols ultimate-gain (closed-loop) tuning.
//!
//! The paper (§3) tunes its PID with the classic 1942 Ziegler–Nichols
//! procedure: proportional-only control, raise the gain until the loop shows
//! *sustained* oscillation, record the critical gain `Kc` and oscillation
//! period `Tc`, then derive the PID gains. The paper's constants
//!
//! ```text
//! Kp = 0.33 Kc,   Ti = 0.5 Tc,   Td = 0.33 Tc
//! ```
//!
//! are the Ziegler–Nichols *"some overshoot"* rule (`Kc/3, Tc/2, Tc/3`). The
//! original authors ran this by hand on a live kernel; here the experiment is
//! automated against a plant model, which makes E6 (the tuning-trace
//! experiment) reproducible.

use crate::pid::PidGains;
use crate::plant::Plant;
use serde::{Deserialize, Serialize};

/// How a closed-loop response was classified by the oscillation detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoopBehavior {
    /// Oscillation amplitude shrinks: gain below critical.
    Decaying,
    /// Oscillation amplitude approximately constant: at the critical gain.
    Sustained,
    /// Oscillation amplitude grows (or diverges): gain above critical.
    Growing,
}

/// Configuration for the ultimate-gain search.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ZnSearchConfig {
    /// Lower bound of the proportional-gain search interval.
    pub kp_lo: f64,
    /// Upper bound of the proportional-gain search interval.
    pub kp_hi: f64,
    /// Integration step for the closed-loop simulation (s).
    pub dt: f64,
    /// Closed-loop horizon per gain candidate (s). Must cover several
    /// oscillation periods.
    pub sim_time: f64,
    /// Setpoint for the closed-loop experiment.
    pub setpoint: f64,
    /// Relative convergence tolerance on `Kc`.
    pub tolerance: f64,
    /// Amplitude-ratio band treated as "sustained" (e.g. 0.05 ⇒ 0.95–1.05).
    pub sustained_band: f64,
}

impl Default for ZnSearchConfig {
    fn default() -> Self {
        ZnSearchConfig {
            kp_lo: 1e-3,
            kp_hi: 1e3,
            dt: 1e-3,
            sim_time: 60.0,
            setpoint: 1.0,
            tolerance: 1e-3,
            sustained_band: 0.05,
        }
    }
}

/// Outcome of a successful tuning run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ZnResult {
    /// Critical (ultimate) proportional gain.
    pub kc: f64,
    /// Oscillation period at the critical gain (s).
    pub tc: f64,
    /// Number of closed-loop experiments performed during the search.
    pub experiments: u32,
}

/// Why the search failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ZnError {
    /// Even the highest gain in range produced a decaying response — the
    /// plant has no finite ultimate gain (e.g. a pure first-order lag).
    NoOscillationInRange,
    /// Even the lowest gain in range produced a growing response.
    UnstableAtMinimumGain,
    /// The response at the critical gain had too few peaks to measure `Tc`.
    PeriodUndetectable,
}

impl std::fmt::Display for ZnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZnError::NoOscillationInRange => {
                write!(f, "no sustained oscillation found in the gain range")
            }
            ZnError::UnstableAtMinimumGain => {
                write!(f, "loop unstable even at the minimum gain")
            }
            ZnError::PeriodUndetectable => write!(f, "could not measure oscillation period"),
        }
    }
}

impl std::error::Error for ZnError {}

impl ZnResult {
    /// The paper's tuning rule (§3): `Kp = 0.33 Kc, Ti = 0.5 Tc, Td = 0.33 Tc`
    /// — the Ziegler–Nichols "some overshoot" variant.
    pub fn paper_gains(&self) -> PidGains {
        PidGains::pid(0.33 * self.kc, 0.5 * self.tc, 0.33 * self.tc)
    }

    /// Classic Ziegler–Nichols PID rule: `0.6 Kc, 0.5 Tc, 0.125 Tc`.
    pub fn classic_pid(&self) -> PidGains {
        PidGains::pid(0.6 * self.kc, 0.5 * self.tc, 0.125 * self.tc)
    }

    /// Classic Ziegler–Nichols PI rule: `0.45 Kc, Tc/1.2`.
    pub fn classic_pi(&self) -> PidGains {
        PidGains::pi(0.45 * self.kc, self.tc / 1.2)
    }

    /// Classic Ziegler–Nichols P rule: `0.5 Kc`.
    pub fn classic_p(&self) -> PidGains {
        PidGains::p(0.5 * self.kc)
    }

    /// The "no overshoot" conservative rule: `0.2 Kc, 0.5 Tc, 0.33 Tc`.
    pub fn no_overshoot(&self) -> PidGains {
        PidGains::pid(0.2 * self.kc, 0.5 * self.tc, 0.33 * self.tc)
    }
}

/// Detected peaks of a response: indices and values of local maxima.
fn find_peaks(ys: &[f64]) -> Vec<(usize, f64)> {
    let mut peaks = Vec::new();
    for i in 1..ys.len().saturating_sub(1) {
        if ys[i] > ys[i - 1] && ys[i] >= ys[i + 1] {
            // Plateau handling: only record the first sample of a plateau.
            if peaks
                .last()
                .map(|&(j, _): &(usize, f64)| i - j > 1 || ys[i] != ys[j])
                .unwrap_or(true)
            {
                peaks.push((i, ys[i]));
            }
        }
    }
    peaks
}

/// Run one proportional-only closed-loop experiment and record the output.
fn run_p_loop<P: Plant>(plant: &mut P, kp: f64, cfg: &ZnSearchConfig) -> Vec<f64> {
    plant.reset();
    let steps = (cfg.sim_time / cfg.dt).ceil() as usize;
    let mut ys = Vec::with_capacity(steps);
    for _ in 0..steps {
        let y = plant.output();
        ys.push(y);
        if !y.is_finite() || y.abs() > 1e12 {
            break; // diverged; enough signal for classification
        }
        let u = kp * (cfg.setpoint - y);
        plant.step(u, cfg.dt);
    }
    ys
}

/// Classify a closed-loop response by the trend of its peak amplitudes.
///
/// Amplitudes are measured around the *tail mean*, not the setpoint:
/// proportional-only control leaves a steady-state offset, and a settled
/// response with offset must classify as `Decaying`, not `Sustained`.
pub fn classify_response(ys: &[f64], setpoint: f64, sustained_band: f64) -> LoopBehavior {
    if ys.iter().any(|y| !y.is_finite()) || ys.iter().any(|y| y.abs() > 1e12) {
        return LoopBehavior::Growing;
    }
    // Ignore the initial transient: look at the second half.
    let tail = &ys[ys.len() / 2..];
    if tail.len() < 4 {
        return LoopBehavior::Decaying;
    }
    let mean = tail.iter().sum::<f64>() / tail.len() as f64;
    // Oscillations smaller than this are numerical noise around steady state.
    let amp_floor = 1e-6 * setpoint.abs().max(1.0);
    let peaks = find_peaks(tail);
    let amps: Vec<f64> = peaks
        .iter()
        .map(|&(_, v)| (v - mean).abs())
        .filter(|&a| a > amp_floor)
        .collect();
    if amps.len() < 3 {
        return LoopBehavior::Decaying;
    }
    // Geometric trend over the window: ratio of the mean of the last third to
    // the mean of the first third of peak amplitudes.
    let third = (amps.len() / 3).max(1);
    let head: f64 = amps[..third].iter().sum::<f64>() / third as f64;
    let tail_amp: f64 = amps[amps.len() - third..].iter().sum::<f64>() / third as f64;
    if head <= 1e-12 {
        return LoopBehavior::Decaying;
    }
    let ratio = tail_amp / head;
    if ratio < 1.0 - sustained_band {
        LoopBehavior::Decaying
    } else if ratio > 1.0 + sustained_band {
        LoopBehavior::Growing
    } else {
        LoopBehavior::Sustained
    }
}

/// Measure the mean oscillation period (s) from the response tail.
fn measure_period(ys: &[f64], dt: f64) -> Option<f64> {
    let tail_start = ys.len() / 2;
    let tail = &ys[tail_start..];
    let peaks = find_peaks(tail);
    if peaks.len() < 3 {
        return None;
    }
    let intervals: Vec<f64> = peaks
        .windows(2)
        .map(|w| (w[1].0 - w[0].0) as f64 * dt)
        .collect();
    Some(intervals.iter().sum::<f64>() / intervals.len() as f64)
}

/// Find the ultimate gain `Kc` and period `Tc` of `plant` by bisection on the
/// proportional gain, exactly as the manual Ziegler–Nichols experiment does.
pub fn find_ultimate_gain<P: Plant>(
    plant: &mut P,
    cfg: &ZnSearchConfig,
) -> Result<ZnResult, ZnError> {
    assert!(cfg.kp_lo > 0.0 && cfg.kp_hi > cfg.kp_lo, "bad gain range");
    let mut experiments = 0u32;
    let classify = |plant: &mut P, kp: f64, experiments: &mut u32| {
        *experiments += 1;
        let ys = run_p_loop(plant, kp, cfg);
        classify_response(&ys, cfg.setpoint, cfg.sustained_band)
    };

    // Establish the bracket.
    if classify(plant, cfg.kp_hi, &mut experiments) == LoopBehavior::Decaying {
        return Err(ZnError::NoOscillationInRange);
    }
    match classify(plant, cfg.kp_lo, &mut experiments) {
        LoopBehavior::Growing => return Err(ZnError::UnstableAtMinimumGain),
        LoopBehavior::Sustained => {
            // Degenerate but possible: treat kp_lo as critical.
        }
        LoopBehavior::Decaying => {}
    }

    let mut lo = cfg.kp_lo;
    let mut hi = cfg.kp_hi;
    while (hi - lo) / hi > cfg.tolerance {
        let mid = (lo * hi).sqrt(); // geometric bisection suits gain scales
        match classify(plant, mid, &mut experiments) {
            LoopBehavior::Decaying => lo = mid,
            LoopBehavior::Growing => hi = mid,
            LoopBehavior::Sustained => {
                lo = mid;
                hi = mid * (1.0 + cfg.tolerance);
                break;
            }
        }
    }
    let kc = 0.5 * (lo + hi);

    // One final experiment at Kc to measure the period.
    let ys = run_p_loop(plant, kc, cfg);
    experiments += 1;
    let tc = measure_period(&ys, cfg.dt).ok_or(ZnError::PeriodUndetectable)?;
    Ok(ZnResult {
        kc,
        tc,
        experiments,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plant::{fopdt_ultimate, DeadTimePlant, FirstOrderPlant, IntegratorPlant};

    #[test]
    fn finds_kc_tc_for_fopdt_within_a_few_percent() {
        // K=1, tau=1, theta=1 has analytic Kc ≈ 2.26, Tc ≈ 3.10.
        let (kc_true, tc_true) = fopdt_ultimate(1.0, 1.0, 1.0);
        let mut plant = DeadTimePlant::new(FirstOrderPlant::new(1.0, 1.0, 0.0), 1.0);
        let cfg = ZnSearchConfig {
            dt: 2e-3,
            sim_time: 80.0,
            ..Default::default()
        };
        let r = find_ultimate_gain(&mut plant, &cfg).expect("tuning failed");
        let kc_err = (r.kc - kc_true).abs() / kc_true;
        let tc_err = (r.tc - tc_true).abs() / tc_true;
        assert!(kc_err < 0.05, "kc {} vs {kc_true}", r.kc);
        assert!(tc_err < 0.05, "tc {} vs {tc_true}", r.tc);
    }

    #[test]
    fn integrator_with_delay_has_ultimate_gain() {
        // Integrator + dead time θ: Kc = π/(2 K θ), Tc = 4θ.
        let theta = 0.25;
        let mut plant = DeadTimePlant::new(IntegratorPlant::new(1.0, 0.0), theta);
        let cfg = ZnSearchConfig {
            dt: 1e-3,
            sim_time: 40.0,
            ..Default::default()
        };
        let r = find_ultimate_gain(&mut plant, &cfg).expect("tuning failed");
        let kc_true = std::f64::consts::FRAC_PI_2 / theta;
        let tc_true = 4.0 * theta;
        assert!((r.kc - kc_true).abs() / kc_true < 0.06, "kc {}", r.kc);
        assert!((r.tc - tc_true).abs() / tc_true < 0.06, "tc {}", r.tc);
    }

    #[test]
    fn pure_first_order_has_no_ultimate_gain() {
        let mut plant = FirstOrderPlant::new(1.0, 1.0, 0.0);
        let cfg = ZnSearchConfig::default();
        assert_eq!(
            find_ultimate_gain(&mut plant, &cfg).unwrap_err(),
            ZnError::NoOscillationInRange
        );
    }

    #[test]
    fn paper_rule_constants() {
        let r = ZnResult {
            kc: 3.0,
            tc: 2.0,
            experiments: 0,
        };
        let g = r.paper_gains();
        assert!((g.kp - 0.99).abs() < 1e-12);
        assert!((g.ti - 1.0).abs() < 1e-12);
        assert!((g.td - 0.66).abs() < 1e-12);
        let c = r.classic_pid();
        assert!((c.kp - 1.8).abs() < 1e-12);
        assert!((c.td - 0.25).abs() < 1e-12);
        let pi = r.classic_pi();
        assert!((pi.kp - 1.35).abs() < 1e-12);
        assert!(pi.td == 0.0);
        assert!(r.classic_p().ti.is_infinite());
        assert!(r.no_overshoot().kp < g.kp);
    }

    #[test]
    fn classifier_labels_synthetic_responses() {
        let setpoint = 0.0;
        let decaying: Vec<f64> = (0..4000)
            .map(|i| (i as f64 * 0.05).sin() * (-(i as f64) * 0.002).exp())
            .collect();
        let sustained: Vec<f64> = (0..4000).map(|i| (i as f64 * 0.05).sin()).collect();
        let growing: Vec<f64> = (0..4000)
            .map(|i| (i as f64 * 0.05).sin() * ((i as f64) * 0.002).exp())
            .collect();
        assert_eq!(
            classify_response(&decaying, setpoint, 0.05),
            LoopBehavior::Decaying
        );
        assert_eq!(
            classify_response(&sustained, setpoint, 0.05),
            LoopBehavior::Sustained
        );
        assert_eq!(
            classify_response(&growing, setpoint, 0.05),
            LoopBehavior::Growing
        );
    }

    #[test]
    fn classifier_flags_divergence_as_growing() {
        let ys = vec![0.0, 1.0, f64::INFINITY];
        assert_eq!(classify_response(&ys, 0.0, 0.05), LoopBehavior::Growing);
    }

    #[test]
    fn flat_response_is_decaying() {
        let ys = vec![1.0; 1000];
        assert_eq!(classify_response(&ys, 1.0, 0.05), LoopBehavior::Decaying);
    }
}
