//! The variant registry: one table row per congestion-control scheme.
//!
//! Each [`Variant`] bundles display metadata with the scheme's parameter
//! validation and constructor, keyed by the short name reports and scenario
//! files use. Downstream layers dispatch through this data instead of
//! hand-maintained `match`es: [`crate::make_cc`] builds through
//! [`build`], `rss_core::spec` validates through [`validate`],
//! `CcAlgorithm::label` reads [`Variant::info`], and `rss list --variants`
//! prints [`variants`]. Adding a scheme is adding one row here (see the
//! crate docs for the full four-step recipe).

use crate::{
    BbrProbe, CcAlgorithm, CcParams, CongestionControl, HighSpeedTcp, HybridStart,
    LimitedSlowStart, RelentlessCc, Reno, RestrictedSlowStart, ScalableTcp, SsthreshlessStart,
};
use std::fmt;

/// An invalid congestion-control parameterisation, caught at validation
/// time (before any simulation runs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CcError {
    /// Human-readable description.
    pub msg: String,
}

impl CcError {
    fn new(msg: impl Into<String>) -> Self {
        CcError { msg: msg.into() }
    }
}

impl fmt::Display for CcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for CcError {}

/// Static description of one scenario-file parameter of a variant — the
/// rows of the generated variant gallery (`docs/VARIANTS.md`).
#[derive(Debug, Clone, Copy)]
pub struct ParamInfo {
    /// JSON field name inside the variant's `cc` object.
    pub name: &'static str,
    /// Default when the field is omitted.
    pub default: &'static str,
    /// Valid range (what `validate`/`validate_params` enforces).
    pub range: &'static str,
    /// What the knob does.
    pub doc: &'static str,
}

/// Static description of one congestion-control variant.
#[derive(Debug, Clone, Copy)]
pub struct VariantInfo {
    /// Registry key and report label (e.g. `"standard"`).
    pub name: &'static str,
    /// The [`CongestionControl::name`] the built controller reports.
    pub algo: &'static str,
    /// One-line summary of the scheme.
    pub summary: &'static str,
    /// Parameter summary (what the scenario-file arm accepts).
    pub params: &'static str,
    /// Per-parameter metadata: JSON name, default, valid range, doc line.
    pub params_detail: &'static [ParamInfo],
    /// Where the scheme comes from.
    pub reference: &'static str,
    /// The scenario file (or experiment command) that shows the variant in
    /// the regime it targets.
    pub showcase: &'static str,
}

/// One registry row: metadata plus the data-driven selector, validator and
/// constructor for a variant.
pub struct Variant {
    /// Display/dispatch metadata.
    pub info: VariantInfo,
    selects: fn(&CcAlgorithm) -> bool,
    /// Parameter rules checkable from the algorithm selection alone.
    validate: fn(&CcAlgorithm) -> Result<(), CcError>,
    /// Parameter rules that need the connection inputs too (e.g. anything
    /// measured against the MSS) — the rest of the constructor's contract,
    /// so nothing the registry admits can panic at build time.
    validate_params: fn(&CcAlgorithm, &CcParams) -> Result<(), CcError>,
    build: fn(&CcAlgorithm, &CcParams) -> Box<dyn CongestionControl>,
}

impl fmt::Debug for Variant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Variant").field("info", &self.info).finish()
    }
}

fn ok(_: &CcAlgorithm) -> Result<(), CcError> {
    Ok(())
}

fn ok_params(_: &CcAlgorithm, _: &CcParams) -> Result<(), CcError> {
    Ok(())
}

fn other(algo: &CcAlgorithm) -> ! {
    unreachable!("registry row selected for foreign algorithm {algo:?}")
}

/// Connection-input rules every variant shares: the constructor contracts
/// that used to live in asserts. Checked by [`validate_params`] and
/// [`build`] before any per-variant rule.
fn common_params(params: &CcParams) -> Result<(), CcError> {
    if params.mss == 0 {
        return Err(CcError::new("mss must be positive, got 0"));
    }
    if params.initial_cwnd == 0 {
        return Err(CcError::new(
            "initial_cwnd must be positive, got 0 (a zero window can never open)",
        ));
    }
    Ok(())
}

/// The registry table. Order is presentation order (`rss list --variants`,
/// docs): the paper's comparison set first, extensions after.
static VARIANTS: &[Variant] = &[
    Variant {
        info: VariantInfo {
            name: "standard",
            algo: "reno",
            summary: "RFC 5681 slow-start + AIMD (NewReno recovery), the Linux 2.4.19 baseline",
            params: "none",
            params_detail: &[],
            reference: "RFC 5681",
            showcase: "scenarios/quickstart.json",
        },
        selects: |a| matches!(a, CcAlgorithm::Reno),
        validate: ok,
        validate_params: ok_params,
        build: |algo, p| match algo {
            CcAlgorithm::Reno => Box::new(Reno::new(
                p.initial_cwnd,
                p.initial_ssthresh,
                p.mss,
                p.stall_response,
            )),
            _ => other(algo),
        },
    },
    Variant {
        info: VariantInfo {
            name: "restricted",
            algo: "restricted-slow-start",
            summary: "slow-start growth paced by a PID controller holding the IFQ at a set point",
            params: "tuning (ForPath|PerStream|ForRate|Gains), setpoint_frac (0,1]",
            params_detail: &[
                ParamInfo {
                    name: "tuning",
                    default: "\"ForPath\"",
                    range: "ForPath | PerStream | ForRate{rate_mbps, wire_pkt_bytes} | Gains{kp, ti, td}",
                    doc: "how the PID gains are chosen (Ziegler\u{2013}Nichols per path/stream/rate, or explicit)",
                },
                ParamInfo {
                    name: "setpoint_frac",
                    default: "0.9",
                    range: "(0, 1]",
                    doc: "IFQ set point as a fraction of txqueuelen",
                },
            ],
            reference: "Allcock et al., CLUSTER 2005",
            showcase: "scenarios/headline.json",
        },
        selects: |a| matches!(a, CcAlgorithm::Restricted(_)),
        validate: |algo| match algo {
            CcAlgorithm::Restricted(cfg) => {
                if !(cfg.setpoint_frac > 0.0 && cfg.setpoint_frac <= 1.0) {
                    return Err(CcError::new(format!(
                        "setpoint_frac must be in (0, 1], got {}",
                        cfg.setpoint_frac
                    )));
                }
                if !(cfg.max_increment_segments.is_finite() && cfg.max_increment_segments > 0.0) {
                    return Err(CcError::new(
                        "max_increment_segments must be positive and finite",
                    ));
                }
                if !(cfg.max_decrement_segments.is_finite() && cfg.max_decrement_segments >= 0.0) {
                    return Err(CcError::new(
                        "max_decrement_segments must be non-negative and finite",
                    ));
                }
                if !cfg.gains.is_valid() {
                    return Err(CcError::new(format!(
                        "PID gains must satisfy Kp \u{2265} 0 and Td \u{2265} 0 (finite) and \
                         Ti > 0 (infinity allowed), got kp={} ti={} td={}",
                        cfg.gains.kp, cfg.gains.ti, cfg.gains.td
                    )));
                }
                Ok(())
            }
            _ => Ok(()),
        },
        validate_params: ok_params,
        build: |algo, p| match algo {
            CcAlgorithm::Restricted(cfg) => Box::new(RestrictedSlowStart::new(
                p.initial_cwnd,
                p.initial_ssthresh,
                p.mss,
                p.stall_response,
                *cfg,
            )),
            _ => other(algo),
        },
    },
    Variant {
        info: VariantInfo {
            name: "limited",
            algo: "limited-slow-start",
            summary: "slow-start growth capped open-loop past max_ssthresh",
            params: "max_ssthresh bytes (default 100 segments)",
            params_detail: &[ParamInfo {
                name: "max_ssthresh",
                default: "100 \u{b7} MSS bytes",
                range: "\u{2265} 2 \u{b7} MSS bytes",
                doc: "window above which slow-start growth is capped to max_ssthresh/2 segments per RTT",
            }],
            reference: "RFC 3742",
            showcase: "experiments -- lss (E8)",
        },
        selects: |a| matches!(a, CcAlgorithm::Limited { .. }),
        validate: ok,
        validate_params: |algo, p| match algo {
            CcAlgorithm::Limited {
                max_ssthresh: Some(t),
            } if *t < 2 * p.mss as u64 => Err(CcError::new(format!(
                "max_ssthresh must be at least two segments ({} bytes at MSS {}), got {t}",
                2 * p.mss as u64,
                p.mss
            ))),
            _ => Ok(()),
        },
        build: |algo, p| match algo {
            CcAlgorithm::Limited { max_ssthresh } => Box::new(LimitedSlowStart::with_max_ssthresh(
                p.initial_cwnd,
                p.initial_ssthresh,
                p.mss,
                p.stall_response,
                max_ssthresh.unwrap_or(100 * p.mss as u64),
            )),
            _ => other(algo),
        },
    },
    Variant {
        info: VariantInfo {
            name: "ssthreshless",
            algo: "ssthreshless-start",
            summary: "delay-probed slow-start with no ssthresh estimate; exits at the measured BDP",
            params: "gamma_segments > 0 (default 8)",
            params_detail: &[ParamInfo {
                name: "gamma_segments",
                default: "8",
                range: "> 0, finite",
                doc: "backlog (segments) at which the delay probe stops doubling, then confirms a standing queue of 2\u{b7}\u{3b3}",
            }],
            reference: "arXiv:1401.7146",
            showcase: "scenarios/ssthreshless_lfn.json",
        },
        selects: |a| matches!(a, CcAlgorithm::Ssthreshless(_)),
        validate: |algo| match algo {
            CcAlgorithm::Ssthreshless(cfg)
                if !(cfg.gamma_segments.is_finite() && cfg.gamma_segments > 0.0) =>
            {
                Err(CcError::new(format!(
                    "gamma_segments must be positive and finite, got {}",
                    cfg.gamma_segments
                )))
            }
            _ => Ok(()),
        },
        validate_params: ok_params,
        build: |algo, p| match algo {
            CcAlgorithm::Ssthreshless(cfg) => Box::new(SsthreshlessStart::new(
                p.initial_cwnd,
                p.mss,
                p.stall_response,
                *cfg,
            )),
            _ => other(algo),
        },
    },
    Variant {
        info: VariantInfo {
            name: "highspeed",
            algo: "highspeed-tcp",
            summary: "RFC 3649 a(w)/b(w) response tables: faster growth, gentler backoff at large windows",
            params: "none (the RFC's constants)",
            params_detail: &[],
            reference: "RFC 3649; arXiv:1705.08929",
            showcase: "scenarios/fairness_staggered.json",
        },
        selects: |a| matches!(a, CcAlgorithm::HighSpeed),
        validate: ok,
        validate_params: ok_params,
        build: |algo, p| match algo {
            CcAlgorithm::HighSpeed => Box::new(HighSpeedTcp::new(
                p.initial_cwnd,
                p.initial_ssthresh,
                p.mss,
                p.stall_response,
            )),
            _ => other(algo),
        },
    },
    Variant {
        info: VariantInfo {
            name: "scalable",
            algo: "scalable-tcp",
            summary: "Kelly's MIMD: grow by acked/ai_cnt per ACK, fixed 1/8 backoff on congestion",
            params: "ai_cnt \u{2265} 1 (default 100)",
            params_detail: &[ParamInfo {
                name: "ai_cnt",
                default: "100",
                range: "\u{2265} 1",
                doc: "increase denominator: the window grows by newly_acked/ai_cnt bytes per ACK",
            }],
            reference: "Kelly, CCR 2003; arXiv:1705.08929",
            showcase: "scenarios/fairness_shared_bottleneck.json",
        },
        selects: |a| matches!(a, CcAlgorithm::Scalable(_)),
        validate: |algo| match algo {
            CcAlgorithm::Scalable(cfg) if cfg.ai_cnt == 0 => {
                Err(CcError::new("ai_cnt must be at least 1, got 0"))
            }
            _ => Ok(()),
        },
        validate_params: ok_params,
        build: |algo, p| match algo {
            CcAlgorithm::Scalable(cfg) => Box::new(ScalableTcp::new(
                p.initial_cwnd,
                p.initial_ssthresh,
                p.mss,
                p.stall_response,
                *cfg,
            )),
            _ => other(algo),
        },
    },
    Variant {
        info: VariantInfo {
            name: "bbr",
            algo: "bbr-probe",
            summary: "rate-based probe: paced at the windowed max-bandwidth/min-RTT estimate \
                      through startup/drain/probe-bw gain cycling",
            params: "none (the reference gain constants)",
            params_detail: &[],
            reference: "Cardwell et al., ACM Queue 14(5) 2016 (BBR)",
            showcase: "scenarios/bbr_lfn.json",
        },
        selects: |a| matches!(a, CcAlgorithm::Bbr),
        validate: ok,
        validate_params: ok_params,
        build: |algo, p| match algo {
            CcAlgorithm::Bbr => Box::new(BbrProbe::new(p.initial_cwnd, p.mss)),
            _ => other(algo),
        },
    },
    Variant {
        info: VariantInfo {
            name: "relentless",
            algo: "relentless-cc",
            summary: "Mathis' Relentless: the window decreases by exactly the segments lost, \
                      giving the closed-form steady state W = 1/p",
            params: "none",
            params_detail: &[],
            reference: "arXiv:1102.3270",
            showcase: "scenarios/relentless_lfn.json",
        },
        selects: |a| matches!(a, CcAlgorithm::Relentless),
        validate: ok,
        validate_params: ok_params,
        build: |algo, p| match algo {
            CcAlgorithm::Relentless => Box::new(RelentlessCc::new(
                p.initial_cwnd,
                p.initial_ssthresh,
                p.mss,
                p.stall_response,
            )),
            _ => other(algo),
        },
    },
    Variant {
        info: VariantInfo {
            name: "hybrid",
            algo: "hybrid-start",
            summary: "HyStart: standard TCP whose slow-start exits early on ACK-train or \
                      delay-increase evidence, before the first loss",
            params: "none (the reference thresholds)",
            params_detail: &[],
            reference: "Ha & Rhee, Computer Networks 55(9) 2011 (HyStart)",
            showcase: "scenarios/bbr_lfn.json",
        },
        selects: |a| matches!(a, CcAlgorithm::Hybrid),
        validate: ok,
        validate_params: ok_params,
        build: |algo, p| match algo {
            CcAlgorithm::Hybrid => Box::new(HybridStart::new(
                p.initial_cwnd,
                p.initial_ssthresh,
                p.mss,
                p.stall_response,
            )),
            _ => other(algo),
        },
    },
];

/// All registered variants, in presentation order.
pub fn variants() -> &'static [Variant] {
    VARIANTS
}

/// Render the registry as the variant-gallery markdown document
/// (`docs/VARIANTS.md`). Generated, never hand-edited: `rss list --variants
/// --markdown` emits exactly this string and CI diffs the committed file
/// against it, so the gallery cannot drift from the table.
pub fn markdown_gallery() -> String {
    let mut out = String::from(
        "# Congestion-control variant gallery\n\n\
         <!-- GENERATED FILE — do not edit. Regenerate with:\n     \
         cargo run --release --bin rss -- list --variants --markdown > docs/VARIANTS.md -->\n\n\
         Every congestion-control variant a scenario file's `cc` field accepts,\n\
         straight from the `rss_cc::registry` table (`rss list --variants`).\n\
         Adding a variant is a trait impl + one registry row + a `CcDef` arm +\n\
         a scenario; the `rss-cc` crate docs walk through it.\n",
    );
    for v in VARIANTS {
        let i = &v.info;
        out.push_str(&format!(
            "\n## `{}` \u{2014} {}\n\n{}\n\n- **Reference:** {}\n- **Showcase:** `{}`\n",
            i.name, i.algo, i.summary, i.reference, i.showcase
        ));
        if i.params_detail.is_empty() {
            out.push_str("- **Parameters:** none\n");
        } else {
            out.push_str(
                "\n| parameter | default | valid range | meaning |\n\
                 |-----------|---------|-------------|---------|\n",
            );
            // Literal `|` in cell text (e.g. variant alternatives) must not
            // split the table cell.
            let esc = |s: &str| s.replace('|', "\\|");
            for p in i.params_detail {
                out.push_str(&format!(
                    "| `{}` | {} | {} | {} |\n",
                    p.name,
                    esc(p.default),
                    esc(p.range),
                    esc(p.doc)
                ));
            }
        }
    }
    out
}

/// Look a variant up by its registry name.
pub fn find(name: &str) -> Option<&'static Variant> {
    VARIANTS.iter().find(|v| v.info.name == name)
}

/// The registry row responsible for an algorithm selection.
pub fn entry_for(algo: &CcAlgorithm) -> &'static Variant {
    VARIANTS
        .iter()
        .find(|v| (v.selects)(algo))
        .unwrap_or_else(|| panic!("no registry entry for {algo:?}"))
}

/// Validate a parameterisation against its variant's selection-only rules
/// (see [`validate_params`] for the rules that need connection inputs).
pub fn validate(algo: &CcAlgorithm) -> Result<(), CcError> {
    let v = entry_for(algo);
    (v.validate)(algo)
}

/// Full validation: the selection-only rules plus the variant's
/// params-dependent rules — everything [`build`] checks, so a
/// parameterisation that passes here cannot panic at construction time.
pub fn validate_params(algo: &CcAlgorithm, params: &CcParams) -> Result<(), CcError> {
    let v = entry_for(algo);
    common_params(params)?;
    (v.validate)(algo)?;
    (v.validate_params)(algo, params)
}

/// Validate (both rule sets), then construct the boxed controller for
/// `algo`.
pub fn build(algo: &CcAlgorithm, params: &CcParams) -> Result<Box<dyn CongestionControl>, CcError> {
    let v = entry_for(algo);
    common_params(params)?;
    (v.validate)(algo)?;
    (v.validate_params)(algo, params)?;
    Ok((v.build)(algo, params))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RssConfig, ScalableConfig, SslConfig, StallResponse};

    fn params() -> CcParams {
        CcParams {
            initial_cwnd: 2 * 1448,
            initial_ssthresh: u64::MAX / 2,
            mss: 1448,
            stall_response: StallResponse::Cwr,
        }
    }

    #[test]
    fn every_variant_is_listed_once_and_buildable() {
        let names: Vec<_> = variants().iter().map(|v| v.info.name).collect();
        assert_eq!(
            names,
            [
                "standard",
                "restricted",
                "limited",
                "ssthreshless",
                "highspeed",
                "scalable",
                "bbr",
                "relentless",
                "hybrid"
            ],
            "presentation order is part of the contract"
        );
        let algos = [
            CcAlgorithm::Reno,
            CcAlgorithm::Restricted(RssConfig::tuned()),
            CcAlgorithm::Limited { max_ssthresh: None },
            CcAlgorithm::Ssthreshless(SslConfig::default()),
            CcAlgorithm::HighSpeed,
            CcAlgorithm::Scalable(ScalableConfig::default()),
            CcAlgorithm::Bbr,
            CcAlgorithm::Relentless,
            CcAlgorithm::Hybrid,
        ];
        assert_eq!(algos.len(), variants().len(), "one probe per registry row");
        for algo in &algos {
            let v = entry_for(algo);
            let built = build(algo, &params()).expect("defaults validate");
            assert_eq!(built.name(), v.info.algo, "metadata matches the impl");
        }
    }

    #[test]
    fn find_by_name() {
        assert_eq!(
            find("ssthreshless").unwrap().info.algo,
            "ssthreshless-start"
        );
        assert!(find("vegas").is_none());
    }

    #[test]
    fn restricted_validation_rejects_bad_setpoint_and_gains() {
        let mut cfg = RssConfig::tuned();
        cfg.setpoint_frac = 1.5;
        let err = validate(&CcAlgorithm::Restricted(cfg)).unwrap_err();
        assert!(err.msg.contains("setpoint_frac"), "{}", err.msg);

        // Everything PidGains::is_valid rejects must fail validation —
        // these used to pass the weaker finiteness check and then panic in
        // PidController::new mid-run.
        for (kp, ti, td) in [
            (f64::NAN, 1.0, 0.1),
            (-1.0, 1.0, 0.1),
            (1.0, 0.0, 0.1),
            (1.0, -2.0, 0.1),
            (1.0, 1.0, -0.1),
            (1.0, 1.0, f64::INFINITY),
        ] {
            let mut cfg = RssConfig::tuned();
            cfg.gains = rss_control::PidGains::pid(kp, ti, td);
            let err = validate(&CcAlgorithm::Restricted(cfg)).unwrap_err();
            assert!(err.msg.contains("PID gains"), "{kp}/{ti}/{td}: {}", err.msg);
        }
        // Ti = ∞ (integral term disabled) stays legal.
        let mut cfg = RssConfig::tuned();
        cfg.gains = rss_control::PidGains::pid(1.0, f64::INFINITY, 0.1);
        assert!(validate(&CcAlgorithm::Restricted(cfg)).is_ok());
    }

    #[test]
    fn limited_validation_rejects_sub_two_segment_thresholds() {
        // Anything below the constructor's 2·MSS floor must be caught at
        // validation time, not by the assert at build time.
        for t in [0u64, 1, 1000, 2 * 1448 - 1] {
            let err = validate_params(
                &CcAlgorithm::Limited {
                    max_ssthresh: Some(t),
                },
                &params(),
            )
            .unwrap_err();
            assert!(err.msg.contains("max_ssthresh"), "{t}: {}", err.msg);
            assert!(
                build(
                    &CcAlgorithm::Limited {
                        max_ssthresh: Some(t)
                    },
                    &params()
                )
                .is_err(),
                "{t} must not reach the constructor"
            );
        }
        for algo in [
            CcAlgorithm::Limited { max_ssthresh: None },
            CcAlgorithm::Limited {
                max_ssthresh: Some(2 * 1448),
            },
        ] {
            assert!(validate_params(&algo, &params()).is_ok());
        }
    }

    #[test]
    fn ssthreshless_validation_rejects_nonpositive_gamma() {
        for gamma in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let algo = CcAlgorithm::Ssthreshless(SslConfig {
                gamma_segments: gamma,
            });
            let err = validate(&algo).unwrap_err();
            assert!(err.msg.contains("gamma_segments"), "{}", err.msg);
        }
    }

    #[test]
    fn scalable_validation_rejects_zero_ai_cnt() {
        let err = validate(&CcAlgorithm::Scalable(ScalableConfig { ai_cnt: 0 })).unwrap_err();
        assert!(err.msg.contains("ai_cnt"), "{}", err.msg);
        assert!(validate(&CcAlgorithm::Scalable(ScalableConfig { ai_cnt: 1 })).is_ok());
    }

    #[test]
    fn markdown_gallery_covers_every_row_and_every_parameter() {
        let md = markdown_gallery();
        assert!(md.starts_with("# Congestion-control variant gallery"));
        assert!(md.contains("GENERATED FILE"), "must mark itself generated");
        for v in variants() {
            assert!(
                md.contains(&format!("## `{}` \u{2014} {}", v.info.name, v.info.algo)),
                "missing section for {}",
                v.info.name
            );
            assert!(md.contains(v.info.reference), "{} reference", v.info.name);
            assert!(md.contains(v.info.showcase), "{} showcase", v.info.name);
            for p in v.info.params_detail {
                assert!(
                    md.contains(&format!("| `{}` |", p.name)),
                    "{}: missing param row {}",
                    v.info.name,
                    p.name
                );
            }
        }
        // Table cells must escape literal pipes or the gallery renders
        // broken (the Restricted tuning alternatives carry them).
        for line in md.lines().filter(|l| l.starts_with("| `")) {
            let unescaped = line.replace("\\|", "");
            assert_eq!(
                unescaped.matches('|').count(),
                5,
                "table row has stray pipes: {line}"
            );
        }
    }

    #[test]
    fn build_surfaces_validation_errors() {
        let mut cfg = RssConfig::tuned();
        cfg.setpoint_frac = 0.0;
        assert!(build(&CcAlgorithm::Restricted(cfg), &params()).is_err());
    }
}
