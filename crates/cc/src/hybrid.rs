//! Hybrid Start — HyStart (Ha & Rhee, Computer Networks 55(9), 2011).
//!
//! Standard slow-start only stops at `ssthresh` or at the first loss, and on
//! a long fat network the loss exit arrives with an entire overshot window's
//! worth of drops. HyStart keeps the doubling but watches two signals for
//! evidence that the pipe just filled, and converts slow-start to congestion
//! avoidance (`ssthresh = cwnd`) the moment either fires:
//!
//! * **ACK train** — the leading edge of each round's ACK clock: when the
//!   train of closely-spaced ACKs (≤ 2 ms apart) has stretched to half the
//!   minimum RTT, the flight occupies ≥ half the pipe (at double the rate),
//!   i.e. cwnd has reached the BDP.
//! * **Delay increase** — the round's minimum RTT, taken over its first
//!   [`N_SAMPLING`] samples, exceeding the previous round's minimum by
//!   `clamp(prev/`[`THRESHOLD_DIVIDEND`]`, 4 ms, 16 ms)`: a standing queue
//!   has started to form.
//!
//! Below [`LOW_SSTHRESH`] neither heuristic may fire (small windows exit
//! slow-start cheaply anyway, and the signals are noisy there). Everything
//! outside the exit decision — growth, loss handling, recovery — is standard
//! Reno; a timeout re-enters slow-start and re-arms the heuristics, exactly
//! like the reference implementations.

use crate::reno::Reno;
use crate::{CcView, CongestionControl, CongestionEvent, RecoveryEvent, StallResponse};
use rss_sim::{SimDuration, SimTime};

/// Window (in segments) below which HyStart never fires.
pub const LOW_SSTHRESH: u64 = 16;
/// RTT samples per round folded into the round minimum before the
/// delay-increase check may fire.
pub const N_SAMPLING: u32 = 8;
/// Lower clamp of the delay-increase threshold.
pub const MIN_DELAY_THRESHOLD: SimDuration = SimDuration::from_millis(4);
/// Upper clamp of the delay-increase threshold.
pub const MAX_DELAY_THRESHOLD: SimDuration = SimDuration::from_millis(16);
/// The delay-increase threshold is `previous round min / THRESHOLD_DIVIDEND`
/// before clamping.
pub const THRESHOLD_DIVIDEND: u64 = 8;
/// Largest inter-ACK gap that still extends the ACK train.
pub const ACK_SPACING: SimDuration = SimDuration::from_millis(2);

/// HyStart state layered over Reno slow-start.
#[derive(Debug, Clone)]
pub struct HybridStart {
    base: Reno,
    mss: u64,
    /// ACKed bytes left in the current round (a round = one flight).
    round_remaining: u64,
    /// Minimum RTT of the *previous* round — the delay baseline.
    last_round_min: Option<SimDuration>,
    /// Minimum over the current round's first `N_SAMPLING` samples.
    cur_round_min: Option<SimDuration>,
    /// Samples folded into `cur_round_min` so far.
    sample_count: u32,
    /// When the current ACK train started.
    train_start: Option<SimTime>,
    /// Arrival time of the previous ACK (train-spacing check).
    last_ack_at: Option<SimTime>,
    /// Set once a heuristic has fired; cleared when a timeout re-enters
    /// slow-start.
    exited: bool,
}

impl HybridStart {
    /// Create with an initial window and threshold.
    pub fn new(initial_cwnd: u64, initial_ssthresh: u64, mss: u32, stall: StallResponse) -> Self {
        HybridStart {
            base: Reno::new(initial_cwnd, initial_ssthresh, mss, stall),
            mss: mss as u64,
            round_remaining: 0,
            last_round_min: None,
            cur_round_min: None,
            sample_count: 0,
            train_start: None,
            last_ack_at: None,
            exited: false,
        }
    }

    fn reset_rounds(&mut self) {
        self.round_remaining = 0;
        self.last_round_min = None;
        self.cur_round_min = None;
        self.sample_count = 0;
        self.train_start = None;
        self.last_ack_at = None;
    }

    /// `clamp(prev / 8, 4 ms, 16 ms)` — the delay-increase trigger level
    /// above the previous round's minimum.
    fn delay_threshold(prev: SimDuration) -> SimDuration {
        (prev / THRESHOLD_DIVIDEND)
            .max(MIN_DELAY_THRESHOLD)
            .min(MAX_DELAY_THRESHOLD)
    }

    /// Convert slow-start into congestion avoidance at the current window.
    fn exit_slow_start(&mut self) {
        self.base.force_ssthresh(self.base.cwnd());
        self.exited = true;
    }

    /// Both heuristics, evaluated on one in-slow-start ACK.
    fn observe(&mut self, view: &CcView) {
        let now = view.now;
        if self.round_remaining == 0 {
            // A new round opens: rotate the delay baseline, restart the
            // sample counter and the ACK train.
            self.round_remaining = self.base.cwnd();
            if self.cur_round_min.is_some() {
                self.last_round_min = self.cur_round_min;
            }
            self.cur_round_min = None;
            self.sample_count = 0;
            self.train_start = Some(now);
            self.last_ack_at = None;
        }

        let armed = self.base.cwnd() >= LOW_SSTHRESH * self.mss;

        // Delay increase: fold the sample into the round minimum; judge once
        // the round has enough samples and a previous round to compare with.
        if let Some(rtt) = view.last_rtt {
            if self.sample_count < N_SAMPLING {
                self.cur_round_min = Some(self.cur_round_min.map_or(rtt, |m| m.min(rtt)));
                self.sample_count += 1;
            }
            if armed && self.sample_count >= N_SAMPLING {
                if let (Some(cur), Some(prev)) = (self.cur_round_min, self.last_round_min) {
                    if cur >= prev + Self::delay_threshold(prev) {
                        self.exit_slow_start();
                        return;
                    }
                }
            }
        }

        // ACK train: closely-spaced ACKs stretch the train; a gap restarts
        // it. A train half the propagation RTT long means the window spans
        // the pipe.
        if let Some(last) = self.last_ack_at {
            if now.saturating_since(last) <= ACK_SPACING {
                if let (Some(start), Some(min_rtt)) = (self.train_start, view.min_rtt) {
                    if armed && now.saturating_since(start) >= min_rtt / 2 {
                        self.exit_slow_start();
                        self.last_ack_at = Some(now);
                        return;
                    }
                }
            } else {
                self.train_start = Some(now);
            }
        }
        self.last_ack_at = Some(now);
    }
}

impl CongestionControl for HybridStart {
    fn cwnd(&self) -> u64 {
        self.base.cwnd()
    }

    fn ssthresh(&self) -> u64 {
        self.base.ssthresh()
    }

    fn on_ack(&mut self, view: &CcView, newly_acked: u64) {
        if self.base.in_slow_start() && !self.exited {
            self.observe(view);
            self.round_remaining = self.round_remaining.saturating_sub(newly_acked);
        }
        self.base.on_ack(view, newly_acked);
    }

    fn on_congestion(&mut self, view: &CcView, ev: CongestionEvent) {
        self.base.on_congestion(view, ev);
        if ev == CongestionEvent::Timeout {
            // Back in slow-start: re-arm the heuristics with fresh state.
            self.reset_rounds();
            self.exited = false;
        }
    }

    fn on_recovery(&mut self, view: &CcView, ev: RecoveryEvent) {
        self.base.on_recovery(view, ev);
    }

    fn name(&self) -> &'static str {
        "hybrid-start"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_view;

    const MSS: u32 = 1000;

    fn hystart(cwnd_segments: u64) -> HybridStart {
        HybridStart::new(
            cwnd_segments * MSS as u64,
            u64::MAX / 2,
            MSS,
            StallResponse::Cwr,
        )
    }

    fn view(now_ms: u64, rtt_ms: u64, min_rtt_ms: u64) -> crate::CcView {
        let mut v = test_view(now_ms, MSS, 0);
        v.last_rtt = Some(SimDuration::from_millis(rtt_ms));
        v.min_rtt = Some(SimDuration::from_millis(min_rtt_ms));
        v
    }

    #[test]
    fn delay_increase_exits_slow_start() {
        let mut cc = hystart(16);
        // Round 1: 16 ACKs at a flat 100 ms RTT establish the baseline
        // (ACKs 20 ms apart — too sparse for the train heuristic).
        for i in 0..16 {
            cc.on_ack(&view(i * 20, 100, 100), MSS as u64);
        }
        assert!(cc.in_slow_start(), "flat RTT must not exit");
        // Round 2: RTT jumped to 120 ms ≥ 100 + clamp(100/8, 4, 16) ms.
        // The 8th sample renders the verdict.
        for i in 0..8 {
            assert!(cc.in_slow_start());
            cc.on_ack(&view(400 + i * 20, 120, 100), MSS as u64);
        }
        assert!(!cc.in_slow_start(), "standing queue must exit");
        assert_eq!(cc.ssthresh(), cc.cwnd(), "exit pins ssthresh = cwnd");
    }

    #[test]
    fn ack_train_exits_when_train_spans_half_min_rtt() {
        let mut cc = hystart(16);
        // min RTT 20 ms; ACKs 1 ms apart. The train reaches 10 ms = minRTT/2
        // at the 11th ACK. RTT stays flat so the delay check never fires.
        for i in 0..10 {
            cc.on_ack(&view(i, 20, 20), MSS as u64);
            assert!(cc.in_slow_start(), "ack {i}: train still short");
        }
        cc.on_ack(&view(10, 20, 20), MSS as u64);
        assert!(!cc.in_slow_start(), "train spanned half the pipe");
    }

    #[test]
    fn a_gap_restarts_the_ack_train() {
        let mut cc = hystart(16);
        // 6 ms of train, a 5 ms gap, then 6 more ms: never 10 ms contiguous.
        for i in 0..7 {
            cc.on_ack(&view(i, 20, 20), MSS as u64);
        }
        for i in 0..7 {
            cc.on_ack(&view(12 + i, 20, 20), MSS as u64);
        }
        assert!(cc.in_slow_start(), "broken train must not exit");
    }

    #[test]
    fn below_low_window_never_exits() {
        let mut cc = hystart(4);
        for i in 0..4 {
            cc.on_ack(&view(i * 20, 100, 100), MSS as u64);
        }
        for i in 0..8 {
            cc.on_ack(&view(100 + i, 150, 100), MSS as u64);
        }
        assert!(cc.in_slow_start(), "window below LOW_SSTHRESH");
    }

    #[test]
    fn timeout_rearms_the_heuristics() {
        let mut cc = hystart(16);
        for i in 0..16 {
            cc.on_ack(&view(i * 20, 100, 100), MSS as u64);
        }
        for i in 0..8 {
            cc.on_ack(&view(400 + i * 20, 120, 100), MSS as u64);
        }
        assert!(!cc.in_slow_start());
        let v = view(1000, 120, 100);
        cc.on_congestion(&v, CongestionEvent::Timeout);
        assert!(cc.in_slow_start(), "timeout re-enters slow-start");
        // The heuristics run again: a fresh baseline then a fresh jump.
        let mut t = 1100;
        while cc.cwnd() < LOW_SSTHRESH * MSS as u64 {
            cc.on_ack(&view(t, 100, 100), MSS as u64);
            t += 20;
        }
        for _ in 0..24 {
            cc.on_ack(&view(t, 100, 100), MSS as u64);
            t += 20;
        }
        for _ in 0..16 {
            cc.on_ack(&view(t, 130, 100), MSS as u64);
            t += 20;
        }
        assert!(!cc.in_slow_start(), "re-armed heuristics fire again");
    }
}
