//! SSthreshless Start — delay-probed slow-start without ssthresh estimation
//! (Lu, Zhang, Foh, Fu — arXiv:1401.7146).
//!
//! Standard slow-start ends where `ssthresh` says it does, and `ssthresh` is
//! a guess: the kernel's cached metric, a hand-tuned sysctl, or infinity. On
//! a long fat network every wrong guess is expensive — too low and the flow
//! crawls through congestion avoidance across a multi-megabyte
//! bandwidth-delay product; too high and the burst overshoots the path and
//! the loss episode collapses the window. The paper's position is that the
//! estimate should not exist at all: the sender can *measure* when the pipe
//! is full.
//!
//! Concretisation used here (a two-stage probe mirroring the paper's
//! queueing-delay state machine). After each ACK the sender estimates its
//! own backlog in the path Vegas-style:
//!
//! ```text
//! backlog ≈ (cwnd / MSS) · (1 − minRTT / lastRTT)
//! ```
//!
//! * **Fast probe** — grow one MSS per ACK (standard doubling; never more
//!   aggressive than the baseline). Doubling is bursty, so its own transient
//!   queues inflate the tail-of-round RTT samples long before the pipe is
//!   actually full; the first backlog reading past `γ`
//!   ([`SslConfig::gamma_segments`]) is therefore treated as *proximity*,
//!   not arrival, and merely ends the doubling.
//! * **Paced probe** — grow one MSS per eight ACKs (≈ ×9/8 per RTT) and
//!   judge fullness per *round* (one flight of ACKed bytes) by the round's
//!   **minimum** RTT sample, HyStart-style: ACK-clocked sending inflates
//!   the tail of every ACK train with the probe's own transient queue, but
//!   the head of a round rides an empty queue unless a *standing* queue has
//!   formed — so `round-min` reads exactly the standing queue. When the
//!   round-min backlog crosses `2γ`, the pipe is full, with overshoot
//!   bounded by one paced round (~cwnd/8).
//! * **Exit** — snap window and threshold to the measured bandwidth-delay
//!   product, `cwnd · minRTT/roundMinRTT` (a pure deflation: no burst), and
//!   step into congestion avoidance. No ssthresh was consulted at any
//!   point.
//!
//! Everything outside the probe is plain Reno: fast retransmit halves,
//! timeouts collapse the window and re-arm the fast probe (the next
//! slow-start is again ssthresh-free).

use crate::reno::Reno;
use crate::{CcView, CongestionControl, CongestionEvent, RecoveryEvent, StallResponse};
use serde::{Deserialize, Serialize};

/// Configuration of the SSthreshless probe.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SslConfig {
    /// Backlog threshold `γ`, in segments: the fast probe ends at the first
    /// reading ≥ `γ`, the paced probe exits at a confirmed reading ≥ `2γ`
    /// (paper's operating range: a few segments; default 8).
    pub gamma_segments: f64,
}

/// Paced-probe growth divisor: one MSS per this many ACKs' worth of
/// credit, each ACK crediting at most one MSS (the RFC 5681 `L=1`
/// stretch-ACK cap slow-start growth uses). Under per-segment ACKs that is
/// ×9/8 per RTT; delayed/stretch ACKs only make the probe more
/// conservative. Fixed, like Reno's AIMD constants.
const PACE_DIVISOR: u64 = 8;

impl SslConfig {
    /// The default probe threshold (8 segments of measured backlog).
    pub fn recommended() -> Self {
        SslConfig {
            gamma_segments: 8.0,
        }
    }
}

impl Default for SslConfig {
    fn default() -> Self {
        Self::recommended()
    }
}

/// The probe's state (one-way: congestion events can re-arm `Fast`, but
/// backlog readings only ever ratchet forward).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Doubling, watching for the first transient delay signal.
    Fast,
    /// Eighth-rate growth, watching for a standing queue.
    Paced,
    /// Probe complete — the Reno base drives (congestion avoidance).
    Done,
}

/// SSthreshless Start over Reno: ssthresh-free delay-probed slow-start,
/// standard AIMD everywhere else.
#[derive(Debug, Clone)]
pub struct SsthreshlessStart {
    base: Reno,
    cfg: SslConfig,
    mss: u64,
    stall_response: StallResponse,
    phase: Phase,
    /// Byte accumulator for the paced probe (one MSS per
    /// `PACE_DIVISOR`·MSS acked).
    paced_accum: u64,
    /// ACKed bytes still to drain before the paced probe trusts its RTT
    /// samples: two flights — samples lag one flight, and the first
    /// post-switch sends transit the fast stage's still-draining transient
    /// queue, so their samples are stale too.
    settle_remaining: u64,
    /// ACKed bytes left in the current paced round (a round = one flight).
    round_remaining: u64,
    /// Smallest RTT sample seen this paced round — the standing-queue
    /// reading the exit decision trusts.
    round_rtt_min: Option<rss_sim::SimDuration>,
}

impl SsthreshlessStart {
    /// Create with an initial window. There is deliberately no
    /// `initial_ssthresh` parameter: the probe exit is measured, not
    /// configured. Internally the Reno base keeps an effectively-infinite
    /// threshold until the probe pins it.
    pub fn new(initial_cwnd: u64, mss: u32, stall: StallResponse, cfg: SslConfig) -> Self {
        assert!(
            cfg.gamma_segments.is_finite() && cfg.gamma_segments > 0.0,
            "gamma must be a positive segment count"
        );
        SsthreshlessStart {
            base: Reno::new(initial_cwnd, u64::MAX / 2, mss, stall),
            cfg,
            mss: mss as u64,
            stall_response: stall,
            phase: Phase::Fast,
            paced_accum: 0,
            settle_remaining: 0,
            round_remaining: 0,
            round_rtt_min: None,
        }
    }

    /// The configuration.
    pub fn ssl_config(&self) -> &SslConfig {
        &self.cfg
    }

    /// True while the delay probe (the variant's slow-start phase) runs.
    pub fn probing(&self) -> bool {
        self.phase != Phase::Done
    }

    /// True while the probe is in its paced (eighth-rate) stage.
    pub fn paced(&self) -> bool {
        self.phase == Phase::Paced
    }

    /// Re-enter the fast probe (after a timeout-class event). The Reno
    /// base's post-loss ssthresh is deliberately left alone: the probe
    /// never consults it (that is the variant's point), recovery hooks may
    /// still need the real value (recovery exit deflates to it), and
    /// the probe's own exit overwrites it with the measured BDP.
    fn rearm_probe(&mut self) {
        self.phase = Phase::Fast;
        self.paced_accum = 0;
        self.settle_remaining = 0;
        self.round_remaining = 0;
        self.round_rtt_min = None;
    }

    /// Estimated own-queue backlog in segments, if both RTT extremes are
    /// known.
    fn backlog_segments(&self, view: &CcView) -> Option<f64> {
        let (last, min) = (view.last_rtt?, view.min_rtt?);
        let last = last.as_nanos() as f64;
        let min = min.as_nanos() as f64;
        if last <= 0.0 {
            return None;
        }
        let cwnd_seg = self.base.cwnd() as f64 / self.mss as f64;
        Some(cwnd_seg * (1.0 - min / last))
    }

    /// Leave the probe: pin window and threshold to the measured BDP
    /// (`round_min` is the standing-queue RTT the decision was made on).
    fn exit_probe(&mut self, round_min_ns: f64, global_min_ns: f64) {
        let bdp = (self.base.cwnd() as f64 * global_min_ns / round_min_ns) as u64;
        let target = bdp.max(2 * self.mss);
        self.base.force_cwnd(target);
        self.base.force_ssthresh(target);
        self.phase = Phase::Done;
    }
}

impl CongestionControl for SsthreshlessStart {
    fn cwnd(&self) -> u64 {
        self.base.cwnd()
    }

    fn ssthresh(&self) -> u64 {
        self.base.ssthresh()
    }

    fn in_slow_start(&self) -> bool {
        self.probing()
    }

    fn on_ack(&mut self, view: &CcView, newly_acked: u64) {
        let backlog = self.backlog_segments(view);
        match self.phase {
            Phase::Fast => match backlog {
                // First delay signal: doubling's own transient queue says
                // the pipe is near. Stop doubling; creep and confirm (after
                // one flight of ACKs has flushed the transient's samples).
                Some(b) if b >= self.cfg.gamma_segments => {
                    self.phase = Phase::Paced;
                    self.settle_remaining = 2 * self.base.cwnd();
                }
                _ => self.base.slow_start_ack(newly_acked),
            },
            Phase::Paced => {
                // Eighth-rate growth while the probe runs.
                self.paced_accum += newly_acked.min(self.mss);
                if self.paced_accum >= PACE_DIVISOR * self.mss {
                    self.paced_accum -= PACE_DIVISOR * self.mss;
                    self.base.force_cwnd(self.base.cwnd() + self.mss);
                }
                if self.settle_remaining > 0 {
                    // Still settling: these samples price the fast stage's
                    // transient queue and must not leak into any round the
                    // exit verdict reads. The first trusted round opens the
                    // moment the window drains.
                    self.settle_remaining = self.settle_remaining.saturating_sub(newly_acked);
                    if self.settle_remaining == 0 {
                        self.round_remaining = self.base.cwnd();
                        self.round_rtt_min = None;
                    }
                    return;
                }
                // Round accounting: fold the sample into the round minimum
                // and judge fullness once per flight of ACKed bytes.
                if let Some(rtt) = view.last_rtt {
                    self.round_rtt_min = Some(
                        self.round_rtt_min
                            .map_or(rtt, |m: rss_sim::SimDuration| m.min(rtt)),
                    );
                }
                if self.round_remaining <= newly_acked {
                    let verdict = match (self.round_rtt_min, view.min_rtt) {
                        (Some(rmin), Some(gmin)) if rmin.as_nanos() > 0 => {
                            let rmin = rmin.as_nanos() as f64;
                            let gmin = gmin.as_nanos() as f64;
                            let cwnd_seg = self.base.cwnd() as f64 / self.mss as f64;
                            let standing = cwnd_seg * (1.0 - gmin / rmin);
                            (standing >= 2.0 * self.cfg.gamma_segments).then_some((rmin, gmin))
                        }
                        _ => None,
                    };
                    match verdict {
                        Some((rmin, gmin)) => self.exit_probe(rmin, gmin),
                        None => {
                            self.round_remaining = self.base.cwnd();
                            self.round_rtt_min = None;
                        }
                    }
                } else {
                    self.round_remaining -= newly_acked;
                }
            }
            Phase::Done => self.base.on_ack(view, newly_acked),
        }
    }

    fn on_congestion(&mut self, view: &CcView, ev: CongestionEvent) {
        self.base.on_congestion(view, ev);
        // The probe state follows the slow-start semantics of the Reno
        // response: a timeout re-enters (ssthresh-free) slow-start, fast
        // retransmit and CWR leave it.
        match ev {
            CongestionEvent::Timeout => self.rearm_probe(),
            CongestionEvent::FastRetransmit => self.phase = Phase::Done,
            CongestionEvent::LocalStall => match self.stall_response {
                StallResponse::Cwr => self.phase = Phase::Done,
                StallResponse::RestartFromOne => self.rearm_probe(),
                StallResponse::Ignore => {}
            },
        }
    }

    fn on_recovery(&mut self, view: &CcView, ev: RecoveryEvent) {
        self.base.on_recovery(view, ev);
        if matches!(ev, RecoveryEvent::Exit { .. }) {
            self.phase = Phase::Done;
        }
    }

    fn name(&self) -> &'static str {
        "ssthreshless-start"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rss_sim::{SimDuration, SimTime};

    const MSS: u32 = 1000;

    fn view(now_ms: u64, last_rtt_ms: Option<u64>, min_rtt_ms: Option<u64>) -> CcView {
        CcView {
            now: SimTime::from_millis(now_ms),
            mss: MSS,
            flight: 0,
            ifq_depth: 0,
            ifq_max: 100,
            last_rtt: last_rtt_ms.map(SimDuration::from_millis),
            min_rtt: min_rtt_ms.map(SimDuration::from_millis),
            delivered: 0,
            delivery_rate: None,
            delivery_interval: None,
            app_limited: false,
        }
    }

    fn ssl() -> SsthreshlessStart {
        SsthreshlessStart::new(
            2 * MSS as u64,
            MSS,
            StallResponse::Cwr,
            SslConfig {
                gamma_segments: 8.0,
            },
        )
    }

    #[test]
    fn initial_probe_grows_at_standard_rate_without_rtt_samples() {
        let mut cc = ssl();
        let start = cc.cwnd();
        assert!(cc.in_slow_start());
        for i in 0..10 {
            cc.on_ack(&view(i, None, None), MSS as u64);
        }
        assert_eq!(cc.cwnd(), start + 10 * MSS as u64);
        assert!(cc.probing() && !cc.paced(), "no delay signal: still fast");
    }

    #[test]
    fn steady_growth_ignores_any_configured_ssthresh() {
        // The ssthreshless property: with the RTT pinned at the propagation
        // floor (empty path), doubling continues far past where a classic
        // 16-segment ssthresh would have stopped it.
        let mut cc = ssl();
        for i in 0..100 {
            cc.on_ack(&view(i, Some(60), Some(60)), MSS as u64);
        }
        assert!(cc.cwnd() > 100 * MSS as u64, "cwnd {} too small", cc.cwnd());
        assert!(cc.probing(), "zero backlog: still probing");
        assert!(cc.in_slow_start());
    }

    #[test]
    fn transient_delay_ends_doubling_but_not_the_probe() {
        let mut cc = ssl();
        // Grow to 40 segments with an empty path...
        for i in 0..38 {
            cc.on_ack(&view(i, Some(60), Some(60)), MSS as u64);
        }
        assert_eq!(cc.cwnd(), 40 * MSS as u64);
        // ...then one burst-inflated sample: backlog ≈ 40·(1−60/76) ≈ 8.4
        // ≥ γ. That ends the fast stage without touching the window.
        cc.on_ack(&view(40, Some(76), Some(60)), MSS as u64);
        assert!(cc.paced(), "transient signal switches to the paced stage");
        assert_eq!(cc.cwnd(), 40 * MSS as u64, "no growth on the switch ACK");
        // Paced growth: one MSS per eight ACKed-MSS, not one per ACK.
        for i in 0..16 {
            cc.on_ack(&view(41 + i, Some(60), Some(60)), MSS as u64);
        }
        assert_eq!(cc.cwnd(), 42 * MSS as u64, "×9/8-rate creep");
        assert!(cc.in_slow_start(), "probe still running");
    }

    #[test]
    fn standing_queue_exits_at_the_measured_bdp() {
        // Stretch ACKs of one flight each make the paced round accounting
        // explicit: every on_ack below closes exactly one round.
        let mut cc = ssl();
        for i in 0..38 {
            cc.on_ack(&view(i, Some(60), Some(60)), MSS as u64);
        }
        cc.on_ack(&view(40, Some(76), Some(60)), MSS as u64); // → paced
        assert!(cc.paced());
        let flight = 40 * MSS as u64;
        // Rounds 1-2 drain the two-flight settle window; their samples are
        // stale fast-phase transient and must NOT exit the probe, however
        // inflated they read.
        cc.on_ack(&view(100, Some(120), Some(60)), flight);
        assert!(cc.paced(), "stale transient ignored while settling");
        cc.on_ack(&view(160, Some(120), Some(60)), flight);
        assert!(cc.paced(), "still settling");
        // Settled round with a sub-threshold standing queue: the round min
        // 40·(1−60/90) ≈ 13.3 < 2γ=16 keeps the paced probe running...
        cc.on_ack(&view(220, Some(90), Some(60)), flight);
        assert!(cc.paced(), "below the confirmation threshold");
        // ...but a round whose *minimum* reads 40·(1−60/104) ≈ 16.9 ≥ 16
        // confirms the pipe is full: snap to the measured BDP 40·60/104 ≈
        // 23 segments and enter congestion avoidance.
        cc.on_ack(&view(280, Some(104), Some(60)), flight);
        assert!(!cc.probing(), "probe must end");
        assert!(!cc.in_slow_start());
        assert_eq!(cc.cwnd(), 23_076);
        assert_eq!(cc.ssthresh(), cc.cwnd());
        // Growth from here is congestion avoidance: ~1 MSS per window.
        let before = cc.cwnd();
        for i in 0..24 {
            cc.on_ack(&view(300 + i, Some(60), Some(60)), MSS as u64);
        }
        assert_eq!(cc.cwnd(), before + MSS as u64);
    }

    #[test]
    fn congestion_response_is_reno_and_timeout_rearms_the_probe() {
        let mut cc = ssl();
        for i in 0..38 {
            cc.on_ack(&view(i, Some(60), Some(60)), MSS as u64);
        }
        let v = CcView {
            flight: 20 * MSS as u64,
            ..view(40, Some(60), Some(60))
        };
        // Fast retransmit: Reno halving + inflation, probe over.
        cc.on_congestion(&v, CongestionEvent::FastRetransmit);
        assert_eq!(cc.ssthresh(), 10 * MSS as u64);
        assert_eq!(cc.cwnd(), 13 * MSS as u64);
        assert!(!cc.in_slow_start());
        cc.on_recovery(&v, RecoveryEvent::Exit { newly_acked: 0 });
        assert_eq!(cc.cwnd(), 10 * MSS as u64);
        // Timeout: window collapses and the (ssthresh-free) probe restarts.
        cc.on_congestion(&v, CongestionEvent::Timeout);
        assert_eq!(cc.cwnd(), MSS as u64);
        assert!(
            cc.probing() && !cc.paced(),
            "timeout re-arms the fast probe"
        );
        assert!(cc.in_slow_start());
        // And the restarted probe again ignores any finite threshold — it
        // doubles straight past the Reno base's post-loss ssthresh, which
        // is deliberately left in place for the recovery hooks.
        for i in 0..50 {
            cc.on_ack(&view(50 + i, Some(60), Some(60)), MSS as u64);
        }
        assert_eq!(cc.cwnd(), 51 * MSS as u64);
        assert!(cc.cwnd() > cc.ssthresh(), "probe ignores ssthresh");
        assert!(
            cc.in_slow_start(),
            "probing defines slow-start, not ssthresh"
        );
    }

    #[test]
    fn restart_stall_during_recovery_does_not_balloon_the_window() {
        // Regression: a RestartFromOne stall while fast recovery is in
        // flight re-arms the probe; the later recovery exit deflates to the
        // Reno base's ssthresh, which must be the genuine post-loss value —
        // not an "infinite" sentinel that would hand the sender an
        // unbounded window.
        let mut cc = SsthreshlessStart::new(
            2 * MSS as u64,
            MSS,
            StallResponse::RestartFromOne,
            SslConfig::recommended(),
        );
        for i in 0..38 {
            cc.on_ack(&view(i, Some(60), Some(60)), MSS as u64);
        }
        let v = CcView {
            flight: 40 * MSS as u64,
            ..view(40, Some(60), Some(60))
        };
        cc.on_congestion(&v, CongestionEvent::FastRetransmit);
        cc.on_congestion(&v, CongestionEvent::LocalStall); // mid-recovery stall
        assert!(cc.probing(), "RestartFromOne re-arms the probe");
        cc.on_recovery(&v, RecoveryEvent::Exit { newly_acked: 0 });
        assert_eq!(cc.cwnd(), 20 * MSS as u64, "deflate to the real ssthresh");
        assert!(!cc.probing());
    }

    #[test]
    fn cwr_stall_leaves_the_probe() {
        let mut cc = ssl();
        for i in 0..10 {
            cc.on_ack(&view(i, Some(60), Some(60)), MSS as u64);
        }
        let v = CcView {
            flight: 10 * MSS as u64,
            ..view(10, Some(60), Some(60))
        };
        cc.on_congestion(&v, CongestionEvent::LocalStall);
        assert!(!cc.probing(), "CWR leaves slow-start");
        assert!(!cc.in_slow_start());
    }

    #[test]
    fn bdp_snap_respects_the_two_segment_floor() {
        let mut cc = SsthreshlessStart::new(
            2 * MSS as u64,
            MSS,
            StallResponse::Cwr,
            SslConfig {
                gamma_segments: 0.5,
            },
        );
        // Tiny window, huge RTT inflation: backlog 2·(1−10/600) ≈ 1.97
        // clears both γ=0.5 (→ paced) and, once the two-flight settle
        // window drains, 2γ=1 (→ exit); the BDP estimate 2000·10/600 ≈ 33
        // bytes is floored at 2 MSS.
        cc.on_ack(&view(0, Some(600), Some(10)), MSS as u64);
        assert!(cc.paced());
        for i in 0..3 {
            // One flight per stretch ACK: two settle rounds, then the
            // confirming round.
            cc.on_ack(&view(1 + i, Some(600), Some(10)), 2 * MSS as u64);
        }
        assert!(!cc.probing());
        assert_eq!(cc.cwnd(), 2 * MSS as u64);
    }

    #[test]
    fn name_and_config_accessors() {
        let cc = ssl();
        assert_eq!(cc.name(), "ssthreshless-start");
        assert_eq!(cc.ssl_config().gamma_segments, 8.0);
    }
}
