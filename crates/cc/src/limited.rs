//! Limited Slow-Start (RFC 3742) — the era's other proposal for taming
//! slow-start on big-BDP paths, used as an extension baseline (experiment
//! E8). Where the paper's scheme closes a feedback loop on the host IFQ,
//! RFC 3742 simply caps the exponential phase open-loop once the window
//! passes `max_ssthresh`.

use crate::reno::Reno;
use crate::{CcView, CongestionControl, CongestionEvent, RecoveryEvent, StallResponse};

/// RFC 3742 window management: Reno everywhere except the slow-start growth
/// rule.
#[derive(Debug, Clone)]
pub struct LimitedSlowStart {
    base: Reno,
    /// The `max_ssthresh` parameter, bytes (RFC suggests 100 segments).
    max_ssthresh: u64,
    mss: u64,
}

impl LimitedSlowStart {
    /// Create with the RFC's recommended `max_ssthresh` of 100 segments.
    pub fn new(initial_cwnd: u64, initial_ssthresh: u64, mss: u32, stall: StallResponse) -> Self {
        Self::with_max_ssthresh(initial_cwnd, initial_ssthresh, mss, stall, 100 * mss as u64)
    }

    /// Create with an explicit `max_ssthresh` (bytes).
    pub fn with_max_ssthresh(
        initial_cwnd: u64,
        initial_ssthresh: u64,
        mss: u32,
        stall: StallResponse,
        max_ssthresh: u64,
    ) -> Self {
        assert!(max_ssthresh >= 2 * mss as u64);
        LimitedSlowStart {
            base: Reno::new(initial_cwnd, initial_ssthresh, mss, stall),
            max_ssthresh,
            mss: mss as u64,
        }
    }

    /// The configured `max_ssthresh` in bytes.
    pub fn max_ssthresh(&self) -> u64 {
        self.max_ssthresh
    }
}

impl CongestionControl for LimitedSlowStart {
    fn cwnd(&self) -> u64 {
        self.base.cwnd()
    }

    fn ssthresh(&self) -> u64 {
        self.base.ssthresh()
    }

    fn on_ack(&mut self, view: &CcView, newly_acked: u64) {
        if !self.in_slow_start() {
            self.base.on_ack(view, newly_acked);
            return;
        }
        let cwnd = self.base.cwnd();
        if cwnd <= self.max_ssthresh {
            // Below max_ssthresh: standard doubling.
            self.base.slow_start_ack(newly_acked);
        } else {
            // RFC 3742: K = int(cwnd / (0.5 max_ssthresh));
            //           cwnd += int(MSS / K) per arriving ACK
            // — at most max_ssthresh/2 segments of growth per RTT.
            let k = (cwnd / (self.max_ssthresh / 2)).max(1);
            let inc = (self.mss / k).max(1);
            self.base
                .force_cwnd(cwnd + inc.min(newly_acked.min(self.mss)));
        }
    }

    fn on_congestion(&mut self, view: &CcView, ev: CongestionEvent) {
        self.base.on_congestion(view, ev);
    }

    fn on_recovery(&mut self, view: &CcView, ev: RecoveryEvent) {
        self.base.on_recovery(view, ev);
    }

    fn name(&self) -> &'static str {
        "limited-slow-start"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_view;

    const MSS: u32 = 1000;

    fn lss(max_ss_segments: u64) -> LimitedSlowStart {
        LimitedSlowStart::with_max_ssthresh(
            2 * MSS as u64,
            u64::MAX / 2,
            MSS,
            StallResponse::Cwr,
            max_ss_segments * MSS as u64,
        )
    }

    #[test]
    fn standard_growth_below_max_ssthresh() {
        let mut cc = lss(100);
        let v = test_view(0, MSS, 0);
        let start = cc.cwnd();
        for _ in 0..10 {
            cc.on_ack(&v, MSS as u64);
        }
        assert_eq!(cc.cwnd(), start + 10 * MSS as u64);
    }

    #[test]
    fn growth_limited_above_max_ssthresh() {
        let mut cc = lss(10);
        let v = test_view(0, MSS, 0);
        // Push cwnd to 20 segments (double max_ssthresh).
        cc.base.force_cwnd(20 * MSS as u64);
        // K = 20/(10/2) = 4 -> inc = MSS/4 per ACK.
        cc.on_ack(&v, MSS as u64);
        assert_eq!(cc.cwnd(), 20 * MSS as u64 + MSS as u64 / 4);
    }

    #[test]
    fn per_rtt_growth_is_bounded_by_half_max_ssthresh() {
        let mut cc = lss(10);
        let v = test_view(0, MSS, 0);
        cc.base.force_cwnd(40 * MSS as u64);
        // A whole window of ACKs (40 segments): growth must be at most
        // max_ssthresh/2 = 5 segments.
        let before = cc.cwnd();
        for _ in 0..40 {
            cc.on_ack(&v, MSS as u64);
        }
        let grown = cc.cwnd() - before;
        assert!(
            grown <= 5 * MSS as u64 + MSS as u64, // one-ACK slack for rounding
            "grew {grown} bytes in one RTT"
        );
        assert!(grown >= 4 * MSS as u64, "should still grow meaningfully");
    }

    #[test]
    fn loss_behaviour_is_reno() {
        let mut cc = lss(10);
        let v = test_view(0, MSS, 30 * MSS as u64);
        cc.on_congestion(&v, CongestionEvent::FastRetransmit);
        assert_eq!(cc.ssthresh(), 15 * MSS as u64);
        cc.on_recovery(&v, RecoveryEvent::Exit { newly_acked: 0 });
        assert_eq!(cc.cwnd(), 15 * MSS as u64);
    }

    #[test]
    fn name_and_param_accessors() {
        let cc = lss(50);
        assert_eq!(cc.name(), "limited-slow-start");
        assert_eq!(cc.max_ssthresh(), 50 * MSS as u64);
    }
}
