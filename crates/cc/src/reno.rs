//! Standard TCP congestion control (RFC 5681 slow-start and congestion
//! avoidance, NewReno-style recovery window management) — the Linux 2.4.19
//! baseline of the paper's §4, including its response to local send-stalls.

use crate::{CcView, CongestionControl, CongestionEvent, RecoveryEvent, StallResponse};

/// Reno/NewReno window management.
#[derive(Debug, Clone)]
pub struct Reno {
    cwnd: u64,
    ssthresh: u64,
    mss: u64,
    /// Byte accumulator for congestion-avoidance growth (appropriate byte
    /// counting of the classic `cwnd += MSS²/cwnd` per ACK).
    ca_accum: u64,
    stall_response: StallResponse,
}

impl Reno {
    /// Create with an initial window and threshold.
    pub fn new(initial_cwnd: u64, initial_ssthresh: u64, mss: u32, stall: StallResponse) -> Self {
        assert!(mss > 0);
        Reno {
            cwnd: initial_cwnd,
            ssthresh: initial_ssthresh,
            mss: mss as u64,
            ca_accum: 0,
            stall_response: stall,
        }
    }

    /// Minimum window: 2 segments, the RFC 5681 loss-window floor the
    /// simulation uses throughout (1-MSS windows deadlock with delayed ACKs).
    fn floor(&self) -> u64 {
        2 * self.mss
    }

    fn halve(&mut self, view: &CcView) {
        self.ssthresh = (view.flight / 2).max(self.floor());
    }

    /// Overwrite the window directly (used by wrapping algorithms that
    /// compute their own slow-start growth, e.g. restricted slow-start).
    pub(crate) fn force_cwnd(&mut self, cwnd: u64) {
        self.cwnd = cwnd;
    }

    /// Overwrite the threshold directly (used by wrapping algorithms that
    /// derive their own exit point, e.g. ssthreshless start pinning
    /// `ssthresh = cwnd` when its probe completes).
    pub(crate) fn force_ssthresh(&mut self, ssthresh: u64) {
        self.ssthresh = ssthresh;
    }

    pub(crate) fn slow_start_ack(&mut self, newly_acked: u64) {
        // RFC 5681: cwnd += min(N, SMSS) per ACK.
        self.cwnd += newly_acked.min(self.mss);
    }

    pub(crate) fn cong_avoid_ack(&mut self, newly_acked: u64) {
        // Byte-counting equivalent of cwnd += MSS·MSS/cwnd per ACK.
        self.ca_accum += newly_acked;
        while self.ca_accum >= self.cwnd {
            self.ca_accum -= self.cwnd;
            self.cwnd += self.mss;
        }
    }

    pub(crate) fn handle_congestion(&mut self, view: &CcView, ev: CongestionEvent) {
        match ev {
            CongestionEvent::FastRetransmit => {
                self.halve(view);
                // Enter recovery inflated by the three dup-ACKed segments.
                self.cwnd = self.ssthresh + 3 * self.mss;
            }
            CongestionEvent::Timeout => {
                self.halve(view);
                self.cwnd = self.mss; // loss window: restart from one segment
                self.ca_accum = 0;
            }
            CongestionEvent::LocalStall => match self.stall_response {
                StallResponse::Cwr => {
                    // Linux 2.4 local-congestion path: halve and leave
                    // slow-start, no retransmission.
                    self.halve(view);
                    self.cwnd = self.ssthresh;
                    self.ca_accum = 0;
                }
                StallResponse::RestartFromOne => {
                    self.halve(view);
                    self.cwnd = self.mss;
                    self.ca_accum = 0;
                }
                StallResponse::Ignore => {}
            },
        }
    }
}

impl CongestionControl for Reno {
    #[inline]
    fn cwnd(&self) -> u64 {
        self.cwnd
    }

    #[inline]
    fn ssthresh(&self) -> u64 {
        self.ssthresh
    }

    #[inline]
    fn on_ack(&mut self, _view: &CcView, newly_acked: u64) {
        if self.in_slow_start() {
            self.slow_start_ack(newly_acked);
        } else {
            self.cong_avoid_ack(newly_acked);
        }
    }

    fn on_congestion(&mut self, view: &CcView, ev: CongestionEvent) {
        self.handle_congestion(view, ev);
    }

    fn on_recovery(&mut self, view: &CcView, ev: RecoveryEvent) {
        match ev {
            RecoveryEvent::DupAck => {
                // Window inflation: each dup ACK means a segment left the
                // network.
                self.cwnd += self.mss;
            }
            RecoveryEvent::PartialAck { newly_acked } => {
                // NewReno deflation: remove the acked data, add back one MSS
                // for the retransmission just triggered.
                self.cwnd = self
                    .cwnd
                    .saturating_sub(newly_acked)
                    .saturating_add(self.mss)
                    .max(self.ssthresh.min(self.cwnd));
                self.cwnd = self.cwnd.max(self.floor());
            }
            RecoveryEvent::Exit { .. } => {
                // Deflate to ssthresh; congestion avoidance resumes there.
                self.cwnd = self.ssthresh;
                self.ca_accum = 0;
            }
            RecoveryEvent::EcnEcho => {
                // RFC 3168 CWR response: halve and leave slow-start, no
                // retransmission — the same reduction as a CWR local stall.
                self.halve(view);
                self.cwnd = self.ssthresh;
                self.ca_accum = 0;
            }
        }
    }

    fn name(&self) -> &'static str {
        "reno"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_view;

    const MSS: u32 = 1000;

    fn reno(stall: StallResponse) -> Reno {
        Reno::new(2 * MSS as u64, u64::MAX / 2, MSS, stall)
    }

    #[test]
    fn slow_start_doubles_per_window_of_acks() {
        let mut cc = reno(StallResponse::Cwr);
        let v = test_view(0, MSS, 0);
        assert!(cc.in_slow_start());
        // One window of per-segment ACKs doubles cwnd: 2 ACKs of 1 MSS each.
        cc.on_ack(&v, MSS as u64);
        cc.on_ack(&v, MSS as u64);
        assert_eq!(cc.cwnd(), 4 * MSS as u64);
        // Next window: 4 ACKs -> 8 MSS.
        for _ in 0..4 {
            cc.on_ack(&v, MSS as u64);
        }
        assert_eq!(cc.cwnd(), 8 * MSS as u64);
    }

    #[test]
    fn slow_start_increment_capped_at_mss_per_ack() {
        let mut cc = reno(StallResponse::Cwr);
        let v = test_view(0, MSS, 0);
        // A stretch ACK covering 4 MSS still only grows cwnd by 1 MSS (L=1).
        cc.on_ack(&v, 4 * MSS as u64);
        assert_eq!(cc.cwnd(), 3 * MSS as u64);
    }

    #[test]
    fn congestion_avoidance_grows_one_mss_per_window() {
        let mut cc = Reno::new(10 * MSS as u64, 5 * MSS as u64, MSS, StallResponse::Cwr);
        assert!(!cc.in_slow_start());
        let v = test_view(0, MSS, 0);
        // Ack one full window worth of bytes: cwnd += 1 MSS.
        for _ in 0..10 {
            cc.on_ack(&v, MSS as u64);
        }
        assert_eq!(cc.cwnd(), 11 * MSS as u64);
    }

    #[test]
    fn fast_retransmit_halves_and_inflates() {
        let mut cc = reno(StallResponse::Cwr);
        let v = test_view(0, MSS, 20 * MSS as u64);
        cc.on_congestion(&v, CongestionEvent::FastRetransmit);
        assert_eq!(cc.ssthresh(), 10 * MSS as u64);
        assert_eq!(cc.cwnd(), 13 * MSS as u64); // ssthresh + 3 MSS
        cc.on_recovery(&v, RecoveryEvent::DupAck);
        assert_eq!(cc.cwnd(), 14 * MSS as u64);
        cc.on_recovery(&v, RecoveryEvent::Exit { newly_acked: 0 });
        assert_eq!(cc.cwnd(), 10 * MSS as u64);
        assert!(!cc.in_slow_start());
    }

    #[test]
    fn timeout_collapses_to_one_segment_and_slow_starts() {
        let mut cc = reno(StallResponse::Cwr);
        let v = test_view(0, MSS, 16 * MSS as u64);
        cc.on_congestion(&v, CongestionEvent::Timeout);
        assert_eq!(cc.ssthresh(), 8 * MSS as u64);
        assert_eq!(cc.cwnd(), MSS as u64);
        assert!(cc.in_slow_start());
    }

    #[test]
    fn ssthresh_floor_two_segments() {
        let mut cc = reno(StallResponse::Cwr);
        let v = test_view(0, MSS, MSS as u64); // tiny flight
        cc.on_congestion(&v, CongestionEvent::Timeout);
        assert_eq!(cc.ssthresh(), 2 * MSS as u64);
    }

    #[test]
    fn local_stall_cwr_halves_without_restart() {
        let mut cc = reno(StallResponse::Cwr);
        let v = test_view(0, MSS, 200 * MSS as u64);
        cc.on_congestion(&v, CongestionEvent::LocalStall);
        assert_eq!(cc.ssthresh(), 100 * MSS as u64);
        assert_eq!(cc.cwnd(), 100 * MSS as u64);
        assert!(!cc.in_slow_start(), "CWR leaves slow-start");
    }

    #[test]
    fn local_stall_restart_from_one() {
        let mut cc = reno(StallResponse::RestartFromOne);
        let v = test_view(0, MSS, 200 * MSS as u64);
        cc.on_congestion(&v, CongestionEvent::LocalStall);
        assert_eq!(cc.cwnd(), MSS as u64);
        assert!(cc.in_slow_start(), "re-enters slow start toward ssthresh");
    }

    #[test]
    fn local_stall_ignore_keeps_window() {
        let mut cc = reno(StallResponse::Ignore);
        let v = test_view(0, MSS, 200 * MSS as u64);
        let before = cc.cwnd();
        cc.on_congestion(&v, CongestionEvent::LocalStall);
        assert_eq!(cc.cwnd(), before);
    }

    #[test]
    fn ecn_echo_halves_like_cwr() {
        let mut cc = reno(StallResponse::Cwr);
        let v = test_view(0, MSS, 20 * MSS as u64);
        cc.on_recovery(&v, RecoveryEvent::EcnEcho);
        assert_eq!(cc.ssthresh(), 10 * MSS as u64);
        assert_eq!(cc.cwnd(), 10 * MSS as u64);
        assert!(!cc.in_slow_start(), "ECN echo leaves slow-start");
        // A second echo at the reduced flight keeps halving, floored at 2 MSS.
        let v = test_view(0, MSS, 3 * MSS as u64);
        cc.on_recovery(&v, RecoveryEvent::EcnEcho);
        assert_eq!(cc.cwnd(), 2 * MSS as u64);
    }

    #[test]
    fn partial_ack_deflates_but_not_below_floor() {
        let mut cc = reno(StallResponse::Cwr);
        let v = test_view(0, MSS, 20 * MSS as u64);
        cc.on_congestion(&v, CongestionEvent::FastRetransmit);
        let before = cc.cwnd();
        cc.on_recovery(
            &v,
            RecoveryEvent::PartialAck {
                newly_acked: 4 * MSS as u64,
            },
        );
        assert!(cc.cwnd() < before);
        assert!(cc.cwnd() >= 2 * MSS as u64);
    }
}
