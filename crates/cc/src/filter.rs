//! Time-windowed extremum filters and the delivery-rate estimator.
//!
//! Rate-based congestion control runs on two rolling statistics: the largest
//! recently-observed delivery rate (the bottleneck-bandwidth estimate, which
//! must *forget* old samples so a route change or competing flow shows up)
//! and the smallest recently-observed RTT (the propagation-delay estimate,
//! which must likewise expire samples taken while queues were standing).
//! Both are "max/min over a sliding time window" queries; the filters here
//! answer them in O(1) amortized time with the classic monotonic deque:
//! a new sample evicts every older sample it dominates, so the deque stays
//! sorted and the front is always the current extremum.
//!
//! All timestamps are simulation time; windows are closed on both ends
//! (a sample recorded exactly `window` ago still counts).

use rss_sim::{SimDuration, SimTime};
use std::collections::VecDeque;

use crate::CcView;

/// Rolling maximum over a sliding time window (bytes-per-second samples).
///
/// The deque invariant: values are strictly decreasing front-to-back, times
/// are increasing. The front is the windowed maximum.
#[derive(Debug, Clone)]
pub struct WindowedMaxFilter {
    window: SimDuration,
    samples: VecDeque<(SimTime, u64)>,
}

impl WindowedMaxFilter {
    /// A filter remembering samples for `window` of simulation time.
    pub fn new(window: SimDuration) -> Self {
        WindowedMaxFilter {
            window,
            samples: VecDeque::new(),
        }
    }

    /// Record `value` at `now` and expire samples older than the window.
    /// Samples must arrive in non-decreasing time order (simulation time
    /// never runs backwards).
    pub fn update(&mut self, now: SimTime, value: u64) {
        while self.samples.back().is_some_and(|&(_, v)| v <= value) {
            self.samples.pop_back();
        }
        self.samples.push_back((now, value));
        self.expire(now);
    }

    /// Drop samples that have aged out of the window as of `now`.
    pub fn expire(&mut self, now: SimTime) {
        while self
            .samples
            .front()
            .is_some_and(|&(t, _)| t + self.window < now)
        {
            self.samples.pop_front();
        }
    }

    /// The current windowed maximum, if any in-window sample exists.
    pub fn current(&self) -> Option<u64> {
        self.samples.front().map(|&(_, v)| v)
    }
}

/// Rolling minimum over a sliding time window (RTT samples).
///
/// Mirror image of [`WindowedMaxFilter`]: values strictly increase
/// front-to-back, so the front is the windowed minimum.
#[derive(Debug, Clone)]
pub struct WindowedMinFilter {
    window: SimDuration,
    samples: VecDeque<(SimTime, SimDuration)>,
}

impl WindowedMinFilter {
    /// A filter remembering samples for `window` of simulation time.
    pub fn new(window: SimDuration) -> Self {
        WindowedMinFilter {
            window,
            samples: VecDeque::new(),
        }
    }

    /// Record `value` at `now` and expire samples older than the window.
    pub fn update(&mut self, now: SimTime, value: SimDuration) {
        while self.samples.back().is_some_and(|&(_, v)| v >= value) {
            self.samples.pop_back();
        }
        self.samples.push_back((now, value));
        self.expire(now);
    }

    /// Drop samples that have aged out of the window as of `now`.
    pub fn expire(&mut self, now: SimTime) {
        while self
            .samples
            .front()
            .is_some_and(|&(t, _)| t + self.window < now)
        {
            self.samples.pop_front();
        }
    }

    /// The current windowed minimum, if any in-window sample exists.
    pub fn current(&self) -> Option<SimDuration> {
        self.samples.front().map(|&(_, v)| v)
    }
}

/// Bottleneck-bandwidth estimator fed from the sender's delivery-rate
/// samples (which ride the same Karn-filtered ACK path as RTT samples:
/// retransmitted segments never produce one).
///
/// Application-limited samples measure the application, not the path, so
/// they are only admitted when they *raise* the estimate — the standard
/// rate-sampling rule (draft-cheng-iccrg-delivery-rate-estimation).
#[derive(Debug, Clone)]
pub struct BandwidthEstimator {
    max_bw: WindowedMaxFilter,
}

impl BandwidthEstimator {
    /// An estimator whose max filter spans `window` of simulation time.
    pub fn new(window: SimDuration) -> Self {
        BandwidthEstimator {
            max_bw: WindowedMaxFilter::new(window),
        }
    }

    /// Ingest the delivery-rate sample carried by an ACK-time view, if any.
    /// Returns the sample it admitted into the filter.
    pub fn on_ack(&mut self, view: &CcView) -> Option<u64> {
        let rate = view.delivery_rate?;
        if view.app_limited && self.max_bw.current().is_some_and(|cur| rate <= cur) {
            self.max_bw.expire(view.now);
            return None;
        }
        self.max_bw.update(view.now, rate);
        Some(rate)
    }

    /// The current bottleneck-bandwidth estimate, payload bytes per second.
    pub fn bandwidth(&self) -> Option<u64> {
        self.max_bw.current()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn d(ms: u64) -> SimDuration {
        SimDuration::from_millis(ms)
    }

    #[test]
    fn max_filter_tracks_running_maximum() {
        let mut f = WindowedMaxFilter::new(d(100));
        assert_eq!(f.current(), None);
        f.update(t(0), 10);
        f.update(t(10), 30);
        f.update(t(20), 20);
        assert_eq!(f.current(), Some(30));
    }

    #[test]
    fn max_filter_expires_by_hand_computed_deadline() {
        let mut f = WindowedMaxFilter::new(d(100));
        f.update(t(0), 50); // expires strictly after t=100ms
        f.update(t(40), 20); // shadowed until the 50 ages out
                             // At exactly t=100ms the t=0 sample is still in the closed window.
        f.expire(t(100));
        assert_eq!(f.current(), Some(50));
        // One nanosecond later it is gone and the 20 from t=40ms surfaces.
        f.expire(t(100) + SimDuration::from_nanos(1));
        assert_eq!(f.current(), Some(20));
        // The survivor itself dies just past t=140ms.
        f.expire(t(141));
        assert_eq!(f.current(), None);
    }

    #[test]
    fn max_filter_eviction_keeps_later_equal_sample() {
        // An equal newer sample replaces the older one, extending the
        // estimate's lifetime — ties must not pin the stale timestamp.
        let mut f = WindowedMaxFilter::new(d(100));
        f.update(t(0), 40);
        f.update(t(90), 40);
        f.expire(t(150)); // t=0 would have expired at 100ms; t=90 lives to 190ms
        assert_eq!(f.current(), Some(40));
    }

    #[test]
    fn min_filter_tracks_and_expires() {
        let mut f = WindowedMinFilter::new(d(200));
        f.update(t(0), d(80));
        f.update(t(50), d(60)); // new minimum evicts the 80
        f.update(t(100), d(70)); // kept behind the 60
        assert_eq!(f.current(), Some(d(60)));
        // The 60 from t=50ms expires just past t=250ms; the 70 takes over.
        f.expire(t(251));
        assert_eq!(f.current(), Some(d(70)));
        // And the 70 from t=100ms expires just past t=300ms.
        f.expire(t(301));
        assert_eq!(f.current(), None);
    }

    fn view_with_rate(now_ms: u64, rate: Option<u64>, app_limited: bool) -> CcView {
        let mut v = crate::test_view(now_ms, 1448, 0);
        v.delivery_rate = rate;
        v.app_limited = app_limited;
        v
    }

    #[test]
    fn estimator_ignores_app_limited_samples_that_would_lower() {
        let mut e = BandwidthEstimator::new(d(1000));
        assert_eq!(
            e.on_ack(&view_with_rate(0, Some(1_000_000), false)),
            Some(1_000_000)
        );
        // App-limited and below the estimate: rejected.
        assert_eq!(e.on_ack(&view_with_rate(10, Some(200_000), true)), None);
        assert_eq!(e.bandwidth(), Some(1_000_000));
        // App-limited but *above* the estimate: the path proved it can do
        // more, so it is admitted.
        assert_eq!(
            e.on_ack(&view_with_rate(20, Some(2_000_000), true)),
            Some(2_000_000)
        );
        assert_eq!(e.bandwidth(), Some(2_000_000));
        // No sample on the view is a no-op.
        assert_eq!(e.on_ack(&view_with_rate(30, None, false)), None);
    }
}
