//! HighSpeed TCP (RFC 3649) — the LFN survey's table-driven AIMD
//! modification (arXiv:1705.08929 §III). Standard TCP needs an unrealistic
//! loss rate (~1 in 5 billion packets) to sustain a 10 Gbit/s window; RFC
//! 3649 bends the response function above a 38-segment window so that the
//! per-RTT additive increase `a(w)` grows with the window (up to 72
//! segments) while the multiplicative decrease `b(w)` relaxes from the
//! standard 0.5 down to 0.1. Below `Low_Window` the scheme is bit-for-bit
//! standard TCP, which is what keeps it fair on low-BDP paths.
//!
//! The `a(w)`/`b(w)` schedule is precomputed once into a quantized response
//! table (one row per integer increment, the same shape as the RFC's
//! Appendix B table and Linux's `tcp_highspeed.c`): the row thresholds are
//! derived analytically from the RFC §5 formulas at startup, and all per-ACK
//! arithmetic afterwards is integer, so runs stay byte-deterministic.

use crate::reno::Reno;
use crate::{CcView, CongestionControl, CongestionEvent, RecoveryEvent, StallResponse};
use std::sync::OnceLock;

/// RFC 3649 §5: the window below which the scheme is standard TCP.
pub const LOW_WINDOW: u32 = 38;
/// RFC 3649 §5: the window the high end of the response function targets.
pub const HIGH_WINDOW: u32 = 83_000;
/// RFC 3649 §5: the packet drop rate at `HIGH_WINDOW`.
pub const HIGH_P: f64 = 1e-7;
/// RFC 3649 §5: the multiplicative decrease at `HIGH_WINDOW`.
pub const HIGH_DECREASE: f64 = 0.1;

/// One row of the quantized response table: for windows of at least
/// `min_cwnd_segments` segments (and below the next row's threshold), use
/// additive increase `ai` segments per RTT and multiplicative decrease
/// `b_q8 / 256`.
#[derive(Debug, Clone, Copy)]
struct HsRow {
    min_cwnd_segments: u32,
    ai: u32,
    b_q8: u32,
}

/// RFC 3649 §5 multiplicative decrease: log-linear interpolation from 0.5 at
/// `LOW_WINDOW` to `HIGH_DECREASE` at `HIGH_WINDOW`.
fn b_of_w(w: f64) -> f64 {
    let lo = (LOW_WINDOW as f64).ln();
    let hi = (HIGH_WINDOW as f64).ln();
    let frac = ((w.ln() - lo) / (hi - lo)).clamp(0.0, 1.0);
    (HIGH_DECREASE - 0.5) * frac + 0.5
}

/// RFC 3649 §5 additive increase: `a(w) = w² · p(w) · 2 · b(w) / (2 − b(w))`
/// with `p(w)` from the HSTCP response function
/// `w = Low_Window · (p / Low_P)^S`.
fn a_of_w(w: f64) -> f64 {
    if w <= LOW_WINDOW as f64 {
        return 1.0;
    }
    // Low_P: the loss rate at which standard TCP sustains Low_Window
    // (deterministic model, w = 1.5/p w² form ⇒ p = 1.5/w²).
    let low_p = 1.5 / (LOW_WINDOW as f64 * LOW_WINDOW as f64);
    let s = ((HIGH_WINDOW as f64).ln() - (LOW_WINDOW as f64).ln()) / (HIGH_P.ln() - low_p.ln());
    let p = low_p * (w / LOW_WINDOW as f64).powf(1.0 / s);
    let b = b_of_w(w);
    (w * w * p * 2.0 * b / (2.0 - b)).max(1.0)
}

/// The quantized table: row `k` (0-based) holds the smallest integer window
/// whose analytic increase reaches `k + 1` segments per RTT, paired with the
/// quantized decrease at that window. Shared by every HighSpeed instance.
fn response_table() -> &'static [HsRow] {
    static TABLE: OnceLock<Vec<HsRow>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut rows = vec![HsRow {
            min_cwnd_segments: 0,
            ai: 1,
            b_q8: 128, // 0.5: standard TCP below LOW_WINDOW
        }];
        let mut w = LOW_WINDOW + 1;
        let mut ai = 2;
        // a(w) tops out at 72 per the RFC's Appendix B; walk the integer
        // windows once, emitting a row wherever the increase steps up.
        while w <= HIGH_WINDOW && ai <= 72 {
            if a_of_w(w as f64) >= ai as f64 {
                rows.push(HsRow {
                    min_cwnd_segments: w,
                    ai,
                    b_q8: (b_of_w(w as f64) * 256.0).round() as u32,
                });
                ai += 1;
            } else {
                w += 1;
            }
        }
        rows
    })
}

/// RFC 3649 window management: standard slow-start and NewReno recovery
/// mechanics, with the congestion-avoidance increase and the loss decrease
/// looked up from the HSTCP response table.
#[derive(Debug, Clone)]
pub struct HighSpeedTcp {
    base: Reno,
    mss: u64,
    /// Byte accumulator for table-scaled congestion-avoidance growth.
    ca_accum: u64,
    stall_response: StallResponse,
}

impl HighSpeedTcp {
    /// Create a HighSpeed controller (the RFC's constants; no parameters).
    pub fn new(initial_cwnd: u64, initial_ssthresh: u64, mss: u32, stall: StallResponse) -> Self {
        HighSpeedTcp {
            base: Reno::new(initial_cwnd, initial_ssthresh, mss, stall),
            mss: mss as u64,
            ca_accum: 0,
            stall_response: stall,
        }
    }

    /// Table row for the current window.
    fn row(&self) -> HsRow {
        let w = (self.base.cwnd() / self.mss).min(u32::MAX as u64) as u32;
        let table = response_table();
        let idx = table.partition_point(|r| r.min_cwnd_segments <= w);
        table[idx - 1]
    }

    /// The table's additive increase for the current window, segments/RTT.
    pub fn current_ai_segments(&self) -> u32 {
        self.row().ai
    }

    /// The table's multiplicative decrease for the current window.
    pub fn current_b(&self) -> f64 {
        self.row().b_q8 as f64 / 256.0
    }

    /// `ssthresh = max((1 − b(w)) · flight, 2 MSS)` — the RFC's decrease,
    /// applied to the flight size like the Reno baseline halves it.
    fn reduce(&mut self, view: &CcView) {
        let b_q8 = self.row().b_q8 as u64;
        let kept = view.flight.saturating_mul(256 - b_q8) / 256;
        self.base.force_ssthresh(kept.max(2 * self.mss));
    }
}

impl CongestionControl for HighSpeedTcp {
    fn cwnd(&self) -> u64 {
        self.base.cwnd()
    }

    fn ssthresh(&self) -> u64 {
        self.base.ssthresh()
    }

    fn on_ack(&mut self, view: &CcView, newly_acked: u64) {
        if self.in_slow_start() {
            self.base.on_ack(view, newly_acked);
            return;
        }
        // Byte-counting a(w)·MSS²/cwnd per ACK: accumulate a(w) bytes per
        // acked byte, add one MSS per accumulated window.
        let ai = self.row().ai as u64;
        self.ca_accum += newly_acked.min(2 * self.mss) * ai;
        let cwnd = self.base.cwnd();
        if self.ca_accum >= cwnd {
            let steps = self.ca_accum / cwnd;
            self.ca_accum -= steps * cwnd;
            self.base.force_cwnd(cwnd + steps * self.mss);
        }
    }

    fn on_congestion(&mut self, view: &CcView, ev: CongestionEvent) {
        match ev {
            CongestionEvent::FastRetransmit => {
                self.reduce(view);
                self.base.force_cwnd(self.base.ssthresh() + 3 * self.mss);
            }
            CongestionEvent::Timeout => {
                self.reduce(view);
                self.base.force_cwnd(self.mss);
                self.ca_accum = 0;
            }
            CongestionEvent::LocalStall => match self.stall_response {
                StallResponse::Cwr => {
                    self.reduce(view);
                    self.base.force_cwnd(self.base.ssthresh());
                    self.ca_accum = 0;
                }
                StallResponse::RestartFromOne => {
                    self.reduce(view);
                    self.base.force_cwnd(self.mss);
                    self.ca_accum = 0;
                }
                StallResponse::Ignore => {}
            },
        }
    }

    fn on_recovery(&mut self, view: &CcView, ev: RecoveryEvent) {
        self.base.on_recovery(view, ev);
        if matches!(ev, RecoveryEvent::Exit { .. }) {
            self.ca_accum = 0;
        }
    }

    fn name(&self) -> &'static str {
        "highspeed-tcp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_view;

    const MSS: u32 = 1000;

    fn hs(cwnd_segments: u64, ssthresh_segments: u64) -> HighSpeedTcp {
        HighSpeedTcp::new(
            cwnd_segments * MSS as u64,
            ssthresh_segments * MSS as u64,
            MSS,
            StallResponse::Cwr,
        )
    }

    #[test]
    fn table_matches_the_rfc_shape() {
        let t = response_table();
        // One standard row plus one row per increase step 2..=72.
        assert_eq!(t.first().unwrap().ai, 1);
        assert_eq!(t.last().unwrap().ai, 72);
        assert_eq!(t.len(), 72);
        // Thresholds strictly increase, increases step by exactly one, and
        // the decrease relaxes monotonically from 0.5 toward 0.1.
        for pair in t.windows(2) {
            assert!(pair[0].min_cwnd_segments < pair[1].min_cwnd_segments);
            assert_eq!(pair[0].ai + 1, pair[1].ai);
            assert!(pair[0].b_q8 >= pair[1].b_q8);
        }
        // RFC 3649 Appendix B anchors: a(w)=1/b=0.5 through 38 segments;
        // the first bent row starts right above it.
        assert_eq!(t[0].b_q8, 128);
        assert!(t[1].min_cwnd_segments > LOW_WINDOW);
        assert!(t[1].min_cwnd_segments < 150, "{}", t[1].min_cwnd_segments);
        assert!(t.last().unwrap().b_q8 >= (0.1 * 256.0) as u32 - 1);
    }

    #[test]
    fn below_low_window_behaves_like_reno() {
        let mut cc = hs(10, 5); // in congestion avoidance, small window
        let v = test_view(0, MSS, 0);
        // One window of ACKs grows exactly one MSS, like Reno.
        for _ in 0..10 {
            cc.on_ack(&v, MSS as u64);
        }
        assert_eq!(cc.cwnd(), 11 * MSS as u64);
        // And the decrease is the standard half.
        let v = test_view(0, MSS, 20 * MSS as u64);
        cc.on_congestion(&v, CongestionEvent::FastRetransmit);
        assert_eq!(cc.ssthresh(), 10 * MSS as u64);
    }

    #[test]
    fn large_windows_grow_superlinearly_and_back_off_gently() {
        let mut cc = hs(1000, 5);
        assert!(!cc.in_slow_start());
        let ai = cc.current_ai_segments();
        assert!(ai > 5, "a(1000) should be well above standard, got {ai}");
        let b = cc.current_b();
        assert!(b < 0.4 && b > 0.1, "b(1000) should be relaxed, got {b}");
        // One window of per-segment ACKs grows ≈ ai segments.
        let before = cc.cwnd();
        for _ in 0..1000 {
            cc.on_ack(&test_view(0, MSS, 0), MSS as u64);
        }
        let grown = (cc.cwnd() - before) / MSS as u64;
        assert!(
            grown >= ai as u64 - 1 && grown <= ai as u64 + 2,
            "grew {grown} segments, table says {ai}"
        );
        // Loss drops by b(w) of the flight, not half.
        let flight = 1000 * MSS as u64;
        cc.on_congestion(&test_view(0, MSS, flight), CongestionEvent::FastRetransmit);
        let kept = cc.ssthresh() as f64 / flight as f64;
        assert!(
            (kept - (1.0 - b)).abs() < 0.01,
            "kept {kept}, expected {}",
            1.0 - b
        );
    }

    #[test]
    fn slow_start_is_standard() {
        let mut cc = hs(2, u64::MAX / 2 / MSS as u64);
        let v = test_view(0, MSS, 0);
        assert!(cc.in_slow_start());
        cc.on_ack(&v, MSS as u64);
        cc.on_ack(&v, MSS as u64);
        assert_eq!(cc.cwnd(), 4 * MSS as u64);
    }

    #[test]
    fn timeout_restarts_from_one_segment() {
        let mut cc = hs(500, 5);
        let v = test_view(0, MSS, 400 * MSS as u64);
        cc.on_congestion(&v, CongestionEvent::Timeout);
        assert_eq!(cc.cwnd(), MSS as u64);
        assert!(cc.ssthresh() > 200 * MSS as u64, "gentle backoff");
        assert!(cc.in_slow_start());
    }

    #[test]
    fn stall_responses_mirror_reno_dispositions() {
        let mut cc = hs(500, 5);
        let v = test_view(0, MSS, 400 * MSS as u64);
        cc.on_congestion(&v, CongestionEvent::LocalStall);
        assert_eq!(cc.cwnd(), cc.ssthresh());
        let mut cc =
            HighSpeedTcp::new(500 * MSS as u64, 5 * MSS as u64, MSS, StallResponse::Ignore);
        cc.on_congestion(&v, CongestionEvent::LocalStall);
        assert_eq!(cc.cwnd(), 500 * MSS as u64);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(hs(2, 2).name(), "highspeed-tcp");
    }
}
