//! Scalable TCP (Kelly 2003) — the LFN survey's MIMD representative
//! (arXiv:1705.08929 §III). Standard TCP's recovery time after one loss
//! grows linearly with the window (AIMD: halve, then add one segment per
//! RTT); Scalable makes both responses *multiplicative* — grow by a fixed
//! 1/`ai_cnt` of each acked byte, back off by a fixed 1/8 — so the recovery
//! time becomes a constant number of RTTs at any rate.
//!
//! Slow-start and NewReno recovery mechanics are the standard baseline; only
//! the congestion-avoidance increase and the decrease factor change (the
//! paper's scheme is exactly this delta over Reno).

use crate::reno::Reno;
use crate::{CcView, CongestionControl, CongestionEvent, RecoveryEvent, StallResponse};
use serde::{Deserialize, Serialize};

/// Configuration of the Scalable TCP controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScalableConfig {
    /// Per-ACK additive increase denominator: the window grows by
    /// `newly_acked / ai_cnt` bytes per ACK (Kelly's a = 0.01 ⇒ 100).
    pub ai_cnt: u32,
}

impl Default for ScalableConfig {
    fn default() -> Self {
        ScalableConfig { ai_cnt: 100 }
    }
}

/// Scalable TCP window management: MIMD growth with a fixed 1/8 backoff.
#[derive(Debug, Clone)]
pub struct ScalableTcp {
    base: Reno,
    cfg: ScalableConfig,
    mss: u64,
    /// Byte accumulator for the fractional per-ACK increase.
    ai_accum: u64,
    stall_response: StallResponse,
}

impl ScalableTcp {
    /// Create a Scalable controller.
    pub fn new(
        initial_cwnd: u64,
        initial_ssthresh: u64,
        mss: u32,
        stall: StallResponse,
        cfg: ScalableConfig,
    ) -> Self {
        assert!(cfg.ai_cnt > 0, "ai_cnt must be positive");
        ScalableTcp {
            base: Reno::new(initial_cwnd, initial_ssthresh, mss, stall),
            cfg,
            mss: mss as u64,
            ai_accum: 0,
            stall_response: stall,
        }
    }

    /// The configured increase denominator.
    pub fn ai_cnt(&self) -> u32 {
        self.cfg.ai_cnt
    }

    /// The fixed multiplicative decrease: `ssthresh = max(7/8 · flight,
    /// 2 MSS)` — Kelly's b = 0.125 applied where the Reno baseline halves.
    fn reduce(&mut self, view: &CcView) {
        let kept = view.flight - view.flight / 8;
        self.base.force_ssthresh(kept.max(2 * self.mss));
    }
}

impl CongestionControl for ScalableTcp {
    fn cwnd(&self) -> u64 {
        self.base.cwnd()
    }

    fn ssthresh(&self) -> u64 {
        self.base.ssthresh()
    }

    fn on_ack(&mut self, view: &CcView, newly_acked: u64) {
        if self.in_slow_start() {
            self.base.on_ack(view, newly_acked);
            return;
        }
        // cwnd += newly_acked / ai_cnt, with the sub-byte remainder carried
        // so slow trickles of small ACKs still grow the window.
        self.ai_accum += newly_acked.min(2 * self.mss);
        let grow = self.ai_accum / self.cfg.ai_cnt as u64;
        if grow > 0 {
            self.ai_accum -= grow * self.cfg.ai_cnt as u64;
            self.base.force_cwnd(self.base.cwnd() + grow);
        }
    }

    fn on_congestion(&mut self, view: &CcView, ev: CongestionEvent) {
        match ev {
            CongestionEvent::FastRetransmit => {
                self.reduce(view);
                self.base.force_cwnd(self.base.ssthresh() + 3 * self.mss);
            }
            CongestionEvent::Timeout => {
                self.reduce(view);
                self.base.force_cwnd(self.mss);
                self.ai_accum = 0;
            }
            CongestionEvent::LocalStall => match self.stall_response {
                StallResponse::Cwr => {
                    self.reduce(view);
                    self.base.force_cwnd(self.base.ssthresh());
                    self.ai_accum = 0;
                }
                StallResponse::RestartFromOne => {
                    self.reduce(view);
                    self.base.force_cwnd(self.mss);
                    self.ai_accum = 0;
                }
                StallResponse::Ignore => {}
            },
        }
    }

    fn on_recovery(&mut self, view: &CcView, ev: RecoveryEvent) {
        self.base.on_recovery(view, ev);
        if matches!(ev, RecoveryEvent::Exit { .. }) {
            self.ai_accum = 0;
        }
    }

    fn name(&self) -> &'static str {
        "scalable-tcp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_view;

    const MSS: u32 = 1000;

    fn stcp(cwnd_segments: u64, ssthresh_segments: u64) -> ScalableTcp {
        ScalableTcp::new(
            cwnd_segments * MSS as u64,
            ssthresh_segments * MSS as u64,
            MSS,
            StallResponse::Cwr,
            ScalableConfig::default(),
        )
    }

    #[test]
    fn growth_is_proportional_to_the_window() {
        // MIMD signature: a window of ACKs grows the window by a fixed
        // *fraction* (1/100), so a 10x window grows 10x as many bytes/RTT.
        for w in [100u64, 1000] {
            let mut cc = stcp(w, 5);
            assert!(!cc.in_slow_start());
            let before = cc.cwnd();
            for _ in 0..w {
                cc.on_ack(&test_view(0, MSS, 0), MSS as u64);
            }
            let grown = cc.cwnd() - before;
            let expect = w * MSS as u64 / 100;
            assert!(
                grown >= expect - 1 && grown <= expect + 1,
                "w={w}: grew {grown} bytes, expected ~{expect}"
            );
        }
    }

    #[test]
    fn backoff_is_one_eighth() {
        let mut cc = stcp(800, 5);
        let flight = 800 * MSS as u64;
        cc.on_congestion(&test_view(0, MSS, flight), CongestionEvent::FastRetransmit);
        assert_eq!(cc.ssthresh(), flight - flight / 8);
        cc.on_recovery(
            &test_view(0, MSS, flight),
            RecoveryEvent::Exit { newly_acked: 0 },
        );
        assert_eq!(cc.cwnd(), flight - flight / 8);
    }

    #[test]
    fn slow_start_is_standard() {
        let mut cc = stcp(2, u64::MAX / 2 / MSS as u64);
        let v = test_view(0, MSS, 0);
        cc.on_ack(&v, MSS as u64);
        cc.on_ack(&v, MSS as u64);
        assert_eq!(cc.cwnd(), 4 * MSS as u64);
    }

    #[test]
    fn sub_ai_cnt_acks_accumulate() {
        let mut cc = stcp(50, 5);
        let v = test_view(0, MSS, 0);
        // 99 bytes acked: no growth yet; the 100th byte tips it.
        cc.on_ack(&v, 99);
        let before = cc.cwnd();
        cc.on_ack(&v, 1);
        assert_eq!(cc.cwnd(), before + 1);
    }

    #[test]
    fn timeout_restarts_from_one_segment() {
        let mut cc = stcp(400, 5);
        let v = test_view(0, MSS, 300 * MSS as u64);
        cc.on_congestion(&v, CongestionEvent::Timeout);
        assert_eq!(cc.cwnd(), MSS as u64);
        assert!(cc.in_slow_start());
    }

    #[test]
    fn stall_cwr_backs_off_and_leaves_slow_start() {
        let mut cc = stcp(400, 5);
        let flight = 300 * MSS as u64;
        cc.on_congestion(&test_view(0, MSS, flight), CongestionEvent::LocalStall);
        assert_eq!(cc.cwnd(), flight - flight / 8);
        assert!(!cc.in_slow_start());
    }

    #[test]
    fn name_and_params() {
        let cc = stcp(2, 2);
        assert_eq!(cc.name(), "scalable-tcp");
        assert_eq!(cc.ai_cnt(), 100);
    }
}
