//! # rss-cc — pluggable congestion control with a variant registry
//!
//! The congestion-control layer of the *Restricted Slow-Start for TCP*
//! reproduction. The transport (`rss-tcp`) owns loss detection and
//! retransmission; this crate owns the window. Keeping the layer in its own
//! crate keeps the dependency DAG honest — `rss-cc` sits directly on
//! `rss-sim` (time) and `rss-control` (the PID machinery Restricted
//! Slow-Start needs), so `rss-tcp` no longer drags the control library in —
//! and makes every future slow-start variant a one-crate-local change.
//!
//! The six implementations are the paper's comparison set plus the
//! extension variants added through the registry:
//!
//! * [`Reno`] — standard slow-start + AIMD congestion avoidance, the
//!   Linux 2.4.19 baseline the paper measures against;
//! * [`RestrictedSlowStart`] — the paper's contribution: slow-start growth
//!   paced by a PID controller on IFQ occupancy;
//! * [`LimitedSlowStart`] — RFC 3742, the era's other slow-start moderation
//!   proposal, as an extension baseline;
//! * [`SsthreshlessStart`] — delay-probed slow-start that dispenses with
//!   ssthresh estimation entirely (arXiv:1401.7146), the first variant added
//!   through the registry;
//! * [`HighSpeedTcp`] — RFC 3649's table-driven a(w)/b(w) response bend for
//!   large windows (the LFN survey's AIMD representative);
//! * [`ScalableTcp`] — Kelly's MIMD scheme: fixed-fraction growth, fixed
//!   1/8 backoff (the survey's MIMD representative);
//! * [`BbrProbe`] — a BBR-style rate-based probe: windowed max-bandwidth /
//!   min-RTT filters drive a paced sending rate through startup, drain and
//!   probe-bandwidth gain cycling (the first variant to use the
//!   [`PacingDecision`] surface);
//! * [`RelentlessCc`] — Relentless congestion control (arXiv:1102.3270):
//!   the window decreases by exactly the segments lost, giving the
//!   closed-form steady state `W = 1/p`;
//! * [`HybridStart`] — HyStart (Ha & Rhee): ACK-train and delay-increase
//!   heuristics end slow-start before the first loss.
//!
//! ## Adding a congestion-control variant
//!
//! A new scheme is four small, mostly-local steps:
//!
//! 1. **Trait impl** — add `src/<variant>.rs` implementing
//!    [`CongestionControl`] (wrap [`Reno`] for the loss-response paths the
//!    scheme does not change, as `restricted.rs` and `ssthreshless.rs` do),
//!    plus a `Copy + Serialize + Deserialize` config struct if it has
//!    parameters. Give it phase-transition unit tests in the same file.
//! 2. **Registry entry** — add an arm to [`CcAlgorithm`] carrying the config
//!    and one [`registry::Variant`] row to the table in `registry.rs`
//!    (metadata + `validate` + `build`). Everything downstream — labels,
//!    `rss list --variants`, dispatch — follows from that row; there is no
//!    other `match` to extend.
//! 3. **`CcDef` arm** — mirror the config in `rss_core::spec::CcDef` so
//!    scenario files can name the variant; its `to_algorithm` resolves the
//!    spec into the [`CcAlgorithm`] arm and the registry validates it.
//! 4. **Scenario** — add a `scenarios/<variant>_*.json` file exercising the
//!    regime the scheme targets and a byte-golden under `scenarios/golden/`
//!    so CI gates its behavior from day one.

#![warn(missing_docs)]

pub mod bbr;
pub mod filter;
pub mod highspeed;
pub mod hybrid;
pub mod limited;
pub mod registry;
pub mod relentless;
pub mod reno;
pub mod restricted;
pub mod scalable;
pub mod ssthreshless;

pub use bbr::BbrProbe;
pub use filter::{BandwidthEstimator, WindowedMaxFilter, WindowedMinFilter};
pub use highspeed::HighSpeedTcp;
pub use hybrid::HybridStart;
pub use limited::LimitedSlowStart;
pub use registry::{CcError, ParamInfo, Variant, VariantInfo};
pub use relentless::RelentlessCc;
pub use reno::Reno;
pub use restricted::{RestrictedSlowStart, RssConfig};
pub use scalable::{ScalableConfig, ScalableTcp};
pub use ssthreshless::{SslConfig, SsthreshlessStart};

use rss_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Sender state exposed to the congestion controller at decision points.
#[derive(Debug, Clone, Copy)]
pub struct CcView {
    /// Current simulation time.
    pub now: SimTime,
    /// Maximum segment size, bytes.
    pub mss: u32,
    /// Bytes currently in flight (`snd_nxt − snd_una`).
    pub flight: u64,
    /// Current depth of the host's interface queue, packets.
    pub ifq_depth: u32,
    /// Capacity of the host's interface queue, packets.
    pub ifq_max: u32,
    /// Most recent Karn-valid RTT sample, if any (delay-based variants'
    /// process variable; loss/queue-based variants ignore it).
    pub last_rtt: Option<SimDuration>,
    /// Smallest RTT sample seen on the connection, if any (the propagation
    /// estimate delay-based variants difference against).
    pub min_rtt: Option<SimDuration>,
    /// Cumulative payload bytes delivered to the peer so far — i.e. bytes
    /// cumulatively ACKed (`snd_una` progress), not bytes sent.
    pub delivered: u64,
    /// Most recent delivery-rate sample in payload **bytes per second**,
    /// measured over [`CcView::delivery_interval`]. `None` until the first
    /// Karn-valid cumulative ACK (retransmitted segments never produce a
    /// sample, mirroring the RTT estimator).
    pub delivery_rate: Option<u64>,
    /// The span the [`CcView::delivery_rate`] sample was measured over: from
    /// the sampled segment's departure to the cumulative ACK that covered it.
    pub delivery_interval: Option<SimDuration>,
    /// True when the current delivery-rate sample was taken while the sender
    /// was application-limited (window room left, but no data to fill it).
    /// Such samples understate path capacity; bandwidth estimators must not
    /// let them *lower* the estimate (see [`BandwidthEstimator`]).
    pub app_limited: bool,
}

/// Congestion signals delivered by the sender.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CongestionEvent {
    /// Third duplicate ACK — fast retransmit (network congestion).
    FastRetransmit,
    /// Retransmission timeout (severe network congestion).
    Timeout,
    /// Local send-stall: the IFQ rejected a segment (host congestion).
    LocalStall,
}

/// What happened inside fast recovery — the argument of
/// [`CongestionControl::on_recovery`] — plus the ECN echo, which shares the
/// delivery path so every variant reacts without per-variant sender code.
///
/// Collapsing the three former per-event hooks into one enum keeps the trait
/// from growing a method per future recovery event, and lets wrappers forward
/// the whole family through a single delegation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryEvent {
    /// A duplicate ACK arrived while in fast recovery (Reno window
    /// inflation).
    DupAck,
    /// A partial ACK advanced `snd_una` but left retransmission holes
    /// (NewReno deflation).
    PartialAck {
        /// Bytes the partial ACK newly acknowledged.
        newly_acked: u64,
    },
    /// Fast recovery completed: the full outstanding window was ACKed.
    Exit {
        /// Bytes the recovery-closing ACK newly acknowledged. For a
        /// single-loss episode this is most of a window — controllers that
        /// keep growing through recovery (Relentless) must not lose it.
        newly_acked: u64,
    },
    /// An ACK carried an ECN echo (ECE): the network CE-marked a packet
    /// instead of dropping it (RFC 3168). Unlike the other recovery events
    /// this one can arrive *outside* fast recovery — nothing was lost, so
    /// there is no retransmission episode. The sender throttles it to once
    /// per RTT (CWR semantics); the baseline response is a Reno halving
    /// without retransmission, exactly like a CWR local stall.
    EcnEcho,
}

/// The segment-departure schedule a congestion controller asks of the sender.
///
/// Classic window-based variants never override the default and stay
/// [`PacingDecision::Unpaced`]: the sender bursts as much of the window as an
/// arriving ACK opens, exactly as before the pacing surface existed. A
/// rate-based variant returns [`PacingDecision::Rate`] and the sender spreads
/// departures so payload leaves at that rate instead of in window bursts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacingDecision {
    /// No pacing — the sender may burst the full window per ACK.
    Unpaced,
    /// Space consecutive data segments `payload_len / bytes_per_sec` apart.
    Rate {
        /// Pacing rate in payload **bytes per second**; must be positive.
        /// `u64::MAX` is an effectively infinite rate (gaps round to zero,
        /// reproducing unpaced behavior byte-for-byte).
        bytes_per_sec: u64,
    },
}

/// How the sender's congestion control responds to a local send-stall.
///
/// The paper says Linux "treats these events in the same way as it would
/// treat the network congestion" (§2); concretely Linux 2.4's local
/// congestion path (`tcp_enter_cwr`) halves the effective window without
/// retransmitting. The alternatives let experiments probe harsher and softer
/// interpretations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StallResponse {
    /// CWR-style: `ssthresh = max(flight/2, 2·MSS)`, `cwnd = ssthresh`,
    /// leave slow-start. Linux 2.4 behaviour; the default.
    Cwr,
    /// Timeout-style: additionally collapse cwnd to 1 MSS and re-enter
    /// slow-start (Tahoe-like; worst case).
    RestartFromOne,
    /// Pretend it did not happen (upper bound on what ignoring local
    /// congestion could buy; loses the IFQ signal entirely).
    Ignore,
}

/// The window-management interface.
///
/// All quantities are in bytes. The sender calls exactly one of the `on_*`
/// hooks per event; it does not call [`CongestionControl::on_ack`] while in
/// fast recovery (recovery has its own hooks).
pub trait CongestionControl: std::fmt::Debug + Send {
    /// Current congestion window, bytes.
    fn cwnd(&self) -> u64;

    /// Current slow-start threshold, bytes.
    fn ssthresh(&self) -> u64;

    /// True while `cwnd < ssthresh` (the slow-start phase). Variants with a
    /// different notion of the exponential phase (e.g. ssthresh-free
    /// probing) override this.
    fn in_slow_start(&self) -> bool {
        self.cwnd() < self.ssthresh()
    }

    /// A cumulative ACK advanced `snd_una` by `newly_acked` bytes.
    fn on_ack(&mut self, view: &CcView, newly_acked: u64);

    /// A congestion signal fired (at most once per window per kind; the
    /// sender throttles).
    fn on_congestion(&mut self, view: &CcView, ev: CongestionEvent);

    /// A fast-recovery event occurred (see [`RecoveryEvent`] for the cases).
    /// Called instead of [`CongestionControl::on_ack`] while the sender is in
    /// fast recovery. [`RecoveryEvent::EcnEcho`] is the exception: it is
    /// delivered whenever an ECE-bearing ACK passes the sender's once-per-RTT
    /// gate, in or out of recovery.
    fn on_recovery(&mut self, view: &CcView, ev: RecoveryEvent);

    /// The departure schedule this controller currently wants (queried by the
    /// sender on every transmit opportunity, outside any ACK context — hence
    /// no [`CcView`] argument).
    ///
    /// The default is [`PacingDecision::Unpaced`], so every window-only
    /// variant is byte-for-byte unaffected by the pacing machinery.
    fn pacing(&self) -> PacingDecision {
        PacingDecision::Unpaced
    }

    /// Algorithm name for reports.
    fn name(&self) -> &'static str;
}

/// Which congestion-control algorithm a flow runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CcAlgorithm {
    /// Standard TCP (the paper's baseline).
    Reno,
    /// The paper's Restricted Slow-Start.
    Restricted(RssConfig),
    /// RFC 3742 Limited Slow-Start with optional `max_ssthresh` (bytes).
    Limited {
        /// `max_ssthresh` in bytes; `None` = RFC default of 100 segments.
        max_ssthresh: Option<u64>,
    },
    /// SSthreshless Start (arXiv:1401.7146): delay-probed slow-start with no
    /// ssthresh estimation.
    Ssthreshless(SslConfig),
    /// HighSpeed TCP (RFC 3649): the a(w)/b(w) response-table bend for large
    /// windows. No parameters — the RFC's constants.
    HighSpeed,
    /// Scalable TCP (Kelly 2003): MIMD growth with a fixed 1/8 backoff.
    Scalable(ScalableConfig),
    /// BBR-style rate probe: max-bandwidth/min-RTT filters, paced startup /
    /// drain / probe-bandwidth gain cycling. No parameters — the classic
    /// gain constants.
    Bbr,
    /// Relentless congestion control (arXiv:1102.3270): decrease the window
    /// by exactly the segments lost. No parameters.
    Relentless,
    /// Hybrid Start (HyStart): standard Reno whose slow-start exits early on
    /// ACK-train or delay-increase evidence. No parameters — the reference
    /// thresholds.
    Hybrid,
}

impl CcAlgorithm {
    /// Short label for reports — the variant's registry name.
    pub fn label(&self) -> &'static str {
        registry::entry_for(self).info.name
    }
}

/// Per-connection inputs every variant constructor receives (the transport
/// derives these from its `TcpConfig`).
#[derive(Debug, Clone, Copy)]
pub struct CcParams {
    /// Initial congestion window, bytes.
    pub initial_cwnd: u64,
    /// Initial slow-start threshold, bytes (ssthresh-free variants ignore
    /// it — that is their point).
    pub initial_ssthresh: u64,
    /// Maximum segment size, bytes.
    pub mss: u32,
    /// Congestion response to local send-stalls.
    pub stall_response: StallResponse,
}

/// Construct a boxed congestion controller by algorithm selection,
/// dispatching through the [`registry`] table.
///
/// Returns the registry's [`CcError`] when validation rejects the parameters
/// (the declarative pipeline path-qualifies and surfaces it; hand-built
/// callers propagate it to their own error channel).
pub fn make_cc(
    algo: &CcAlgorithm,
    params: &CcParams,
) -> Result<Box<dyn CongestionControl>, CcError> {
    registry::build(algo, params)
}

/// The pre-`Result` constructor: panics on parameters the registry rejects.
#[deprecated(note = "use `make_cc`, which returns the registry error instead of panicking")]
pub fn make_cc_or_panic(algo: &CcAlgorithm, params: &CcParams) -> Box<dyn CongestionControl> {
    registry::build(algo, params).expect("congestion-control parameters rejected")
}

/// Dispatch shell the sender holds its congestion controller in.
///
/// The per-ACK hooks are the hottest calls in the simulator after the event
/// queue itself, and routing every one through a `Box<dyn>` vtable costs a
/// measurable slice of the run (~6% when the cc layer was split out). The
/// baseline Reno controller — what the bulk of every comparison matrix runs —
/// therefore gets a monomorphized fast path: `CcEngine::Reno` stores the
/// concrete type inline, and the `#[inline]` match arms below let the
/// optimizer devirtualize and inline the whole per-ACK sequence. Every other
/// variant keeps the boxed registry path unchanged.
#[derive(Debug)]
pub enum CcEngine {
    /// Inline standard TCP (RFC 5681 Reno) — the monomorphized fast path.
    Reno(Reno),
    /// Any registered variant, behind the usual trait object.
    Dyn(Box<dyn CongestionControl>),
}

impl CcEngine {
    /// Borrow the controller as a trait object (reporting, tests).
    pub fn as_dyn(&self) -> &dyn CongestionControl {
        match self {
            CcEngine::Reno(r) => r,
            CcEngine::Dyn(b) => b.as_ref(),
        }
    }
}

impl From<Reno> for CcEngine {
    fn from(r: Reno) -> Self {
        CcEngine::Reno(r)
    }
}

impl From<Box<dyn CongestionControl>> for CcEngine {
    fn from(b: Box<dyn CongestionControl>) -> Self {
        CcEngine::Dyn(b)
    }
}

impl CongestionControl for CcEngine {
    #[inline]
    fn cwnd(&self) -> u64 {
        match self {
            CcEngine::Reno(r) => r.cwnd(),
            CcEngine::Dyn(b) => b.cwnd(),
        }
    }
    #[inline]
    fn ssthresh(&self) -> u64 {
        match self {
            CcEngine::Reno(r) => r.ssthresh(),
            CcEngine::Dyn(b) => b.ssthresh(),
        }
    }
    #[inline]
    fn in_slow_start(&self) -> bool {
        match self {
            CcEngine::Reno(r) => r.in_slow_start(),
            CcEngine::Dyn(b) => b.in_slow_start(),
        }
    }
    #[inline]
    fn on_ack(&mut self, view: &CcView, newly_acked: u64) {
        match self {
            CcEngine::Reno(r) => r.on_ack(view, newly_acked),
            CcEngine::Dyn(b) => b.on_ack(view, newly_acked),
        }
    }
    #[inline]
    fn on_congestion(&mut self, view: &CcView, ev: CongestionEvent) {
        match self {
            CcEngine::Reno(r) => r.on_congestion(view, ev),
            CcEngine::Dyn(b) => b.on_congestion(view, ev),
        }
    }
    #[inline]
    fn on_recovery(&mut self, view: &CcView, ev: RecoveryEvent) {
        match self {
            CcEngine::Reno(r) => r.on_recovery(view, ev),
            CcEngine::Dyn(b) => b.on_recovery(view, ev),
        }
    }
    #[inline]
    fn pacing(&self) -> PacingDecision {
        match self {
            CcEngine::Reno(r) => r.pacing(),
            CcEngine::Dyn(b) => b.pacing(),
        }
    }
    #[inline]
    fn name(&self) -> &'static str {
        match self {
            CcEngine::Reno(r) => r.name(),
            CcEngine::Dyn(b) => b.name(),
        }
    }
}

/// Construct a congestion controller in its [`CcEngine`] dispatch shell:
/// standard Reno lands on the inline fast path, everything else on the boxed
/// registry path. Returns the registry's [`CcError`] like [`make_cc`] on
/// rejected parameters.
pub fn make_cc_engine(algo: &CcAlgorithm, params: &CcParams) -> Result<CcEngine, CcError> {
    registry::validate_params(algo, params)?;
    Ok(match algo {
        CcAlgorithm::Reno => CcEngine::Reno(Reno::new(
            params.initial_cwnd,
            params.initial_ssthresh,
            params.mss,
            params.stall_response,
        )),
        _ => CcEngine::Dyn(make_cc(algo, params)?),
    })
}

/// The pre-`Result` engine constructor: panics on parameters the registry
/// rejects.
#[deprecated(note = "use `make_cc_engine`, which returns the registry error instead of panicking")]
pub fn make_cc_engine_or_panic(algo: &CcAlgorithm, params: &CcParams) -> CcEngine {
    make_cc_engine(algo, params).expect("congestion-control parameters rejected")
}

#[cfg(test)]
pub(crate) fn test_view(now_ms: u64, mss: u32, flight: u64) -> CcView {
    CcView {
        now: SimTime::from_millis(now_ms),
        mss,
        flight,
        ifq_depth: 0,
        ifq_max: 100,
        last_rtt: None,
        min_rtt: None,
        delivered: 0,
        delivery_rate: None,
        delivery_interval: None,
        app_limited: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> CcParams {
        CcParams {
            initial_cwnd: 2 * 1448,
            initial_ssthresh: u64::MAX / 2,
            mss: 1448,
            stall_response: StallResponse::Cwr,
        }
    }

    fn built(algo: CcAlgorithm) -> Box<dyn CongestionControl> {
        make_cc(&algo, &params()).expect("valid defaults rejected")
    }

    #[test]
    fn factory_builds_each_algorithm() {
        assert_eq!(built(CcAlgorithm::Reno).name(), "reno");
        assert_eq!(
            built(CcAlgorithm::Restricted(RssConfig::tuned())).name(),
            "restricted-slow-start"
        );
        assert_eq!(
            built(CcAlgorithm::Limited { max_ssthresh: None }).name(),
            "limited-slow-start"
        );
        assert_eq!(
            built(CcAlgorithm::Ssthreshless(SslConfig::default())).name(),
            "ssthreshless-start"
        );
        assert_eq!(built(CcAlgorithm::HighSpeed).name(), "highspeed-tcp");
        assert_eq!(
            built(CcAlgorithm::Scalable(ScalableConfig::default())).name(),
            "scalable-tcp"
        );
        assert_eq!(built(CcAlgorithm::Bbr).name(), "bbr-probe");
        assert_eq!(built(CcAlgorithm::Relentless).name(), "relentless-cc");
        assert_eq!(built(CcAlgorithm::Hybrid).name(), "hybrid-start");
    }

    #[test]
    fn factory_uses_params_initial_window() {
        let p = params();
        let cc = make_cc(&CcAlgorithm::Reno, &p).expect("valid defaults rejected");
        assert_eq!(cc.cwnd(), p.initial_cwnd);
    }

    #[test]
    fn factory_reports_rejection_instead_of_panicking() {
        let mut p = params();
        p.initial_cwnd = 0;
        let err = make_cc(&CcAlgorithm::Reno, &p).expect_err("zero cwnd accepted");
        assert!(err.msg.contains("initial_cwnd"), "unhelpful error: {err}");
        assert!(make_cc_engine(&CcAlgorithm::Reno, &p).is_err());
    }

    #[test]
    fn default_pacing_is_unpaced_for_every_window_variant() {
        for algo in [
            CcAlgorithm::Reno,
            CcAlgorithm::Restricted(RssConfig::tuned()),
            CcAlgorithm::Limited { max_ssthresh: None },
            CcAlgorithm::Ssthreshless(SslConfig::default()),
            CcAlgorithm::HighSpeed,
            CcAlgorithm::Scalable(ScalableConfig::default()),
            CcAlgorithm::Hybrid,
        ] {
            assert_eq!(
                built(algo).pacing(),
                PacingDecision::Unpaced,
                "{algo:?} unexpectedly paced"
            );
        }
    }

    #[test]
    fn labels_come_from_the_registry() {
        assert_eq!(CcAlgorithm::Reno.label(), "standard");
        assert_eq!(
            CcAlgorithm::Restricted(RssConfig::tuned()).label(),
            "restricted"
        );
        assert_eq!(
            CcAlgorithm::Limited { max_ssthresh: None }.label(),
            "limited"
        );
        assert_eq!(
            CcAlgorithm::Ssthreshless(SslConfig::default()).label(),
            "ssthreshless"
        );
        assert_eq!(CcAlgorithm::HighSpeed.label(), "highspeed");
        assert_eq!(
            CcAlgorithm::Scalable(ScalableConfig::default()).label(),
            "scalable"
        );
        assert_eq!(CcAlgorithm::Bbr.label(), "bbr");
        assert_eq!(CcAlgorithm::Relentless.label(), "relentless");
        assert_eq!(CcAlgorithm::Hybrid.label(), "hybrid");
    }
}
