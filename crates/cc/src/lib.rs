//! # rss-cc — pluggable congestion control with a variant registry
//!
//! The congestion-control layer of the *Restricted Slow-Start for TCP*
//! reproduction. The transport (`rss-tcp`) owns loss detection and
//! retransmission; this crate owns the window. Keeping the layer in its own
//! crate keeps the dependency DAG honest — `rss-cc` sits directly on
//! `rss-sim` (time) and `rss-control` (the PID machinery Restricted
//! Slow-Start needs), so `rss-tcp` no longer drags the control library in —
//! and makes every future slow-start variant a one-crate-local change.
//!
//! The six implementations are the paper's comparison set plus the
//! extension variants added through the registry:
//!
//! * [`Reno`] — standard slow-start + AIMD congestion avoidance, the
//!   Linux 2.4.19 baseline the paper measures against;
//! * [`RestrictedSlowStart`] — the paper's contribution: slow-start growth
//!   paced by a PID controller on IFQ occupancy;
//! * [`LimitedSlowStart`] — RFC 3742, the era's other slow-start moderation
//!   proposal, as an extension baseline;
//! * [`SsthreshlessStart`] — delay-probed slow-start that dispenses with
//!   ssthresh estimation entirely (arXiv:1401.7146), the first variant added
//!   through the registry;
//! * [`HighSpeedTcp`] — RFC 3649's table-driven a(w)/b(w) response bend for
//!   large windows (the LFN survey's AIMD representative);
//! * [`ScalableTcp`] — Kelly's MIMD scheme: fixed-fraction growth, fixed
//!   1/8 backoff (the survey's MIMD representative).
//!
//! ## Adding a congestion-control variant
//!
//! A new scheme is four small, mostly-local steps:
//!
//! 1. **Trait impl** — add `src/<variant>.rs` implementing
//!    [`CongestionControl`] (wrap [`Reno`] for the loss-response paths the
//!    scheme does not change, as `restricted.rs` and `ssthreshless.rs` do),
//!    plus a `Copy + Serialize + Deserialize` config struct if it has
//!    parameters. Give it phase-transition unit tests in the same file.
//! 2. **Registry entry** — add an arm to [`CcAlgorithm`] carrying the config
//!    and one [`registry::Variant`] row to the table in `registry.rs`
//!    (metadata + `validate` + `build`). Everything downstream — labels,
//!    `rss list --variants`, dispatch — follows from that row; there is no
//!    other `match` to extend.
//! 3. **`CcDef` arm** — mirror the config in `rss_core::spec::CcDef` so
//!    scenario files can name the variant; its `to_algorithm` resolves the
//!    spec into the [`CcAlgorithm`] arm and the registry validates it.
//! 4. **Scenario** — add a `scenarios/<variant>_*.json` file exercising the
//!    regime the scheme targets and a byte-golden under `scenarios/golden/`
//!    so CI gates its behavior from day one.

#![warn(missing_docs)]

pub mod highspeed;
pub mod limited;
pub mod registry;
pub mod reno;
pub mod restricted;
pub mod scalable;
pub mod ssthreshless;

pub use highspeed::HighSpeedTcp;
pub use limited::LimitedSlowStart;
pub use registry::{CcError, ParamInfo, Variant, VariantInfo};
pub use reno::Reno;
pub use restricted::{RestrictedSlowStart, RssConfig};
pub use scalable::{ScalableConfig, ScalableTcp};
pub use ssthreshless::{SslConfig, SsthreshlessStart};

use rss_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Sender state exposed to the congestion controller at decision points.
#[derive(Debug, Clone, Copy)]
pub struct CcView {
    /// Current simulation time.
    pub now: SimTime,
    /// Maximum segment size, bytes.
    pub mss: u32,
    /// Bytes currently in flight (`snd_nxt − snd_una`).
    pub flight: u64,
    /// Current depth of the host's interface queue, packets.
    pub ifq_depth: u32,
    /// Capacity of the host's interface queue, packets.
    pub ifq_max: u32,
    /// Most recent Karn-valid RTT sample, if any (delay-based variants'
    /// process variable; loss/queue-based variants ignore it).
    pub last_rtt: Option<SimDuration>,
    /// Smallest RTT sample seen on the connection, if any (the propagation
    /// estimate delay-based variants difference against).
    pub min_rtt: Option<SimDuration>,
}

/// Congestion signals delivered by the sender.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CongestionEvent {
    /// Third duplicate ACK — fast retransmit (network congestion).
    FastRetransmit,
    /// Retransmission timeout (severe network congestion).
    Timeout,
    /// Local send-stall: the IFQ rejected a segment (host congestion).
    LocalStall,
}

/// How the sender's congestion control responds to a local send-stall.
///
/// The paper says Linux "treats these events in the same way as it would
/// treat the network congestion" (§2); concretely Linux 2.4's local
/// congestion path (`tcp_enter_cwr`) halves the effective window without
/// retransmitting. The alternatives let experiments probe harsher and softer
/// interpretations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StallResponse {
    /// CWR-style: `ssthresh = max(flight/2, 2·MSS)`, `cwnd = ssthresh`,
    /// leave slow-start. Linux 2.4 behaviour; the default.
    Cwr,
    /// Timeout-style: additionally collapse cwnd to 1 MSS and re-enter
    /// slow-start (Tahoe-like; worst case).
    RestartFromOne,
    /// Pretend it did not happen (upper bound on what ignoring local
    /// congestion could buy; loses the IFQ signal entirely).
    Ignore,
}

/// The window-management interface.
///
/// All quantities are in bytes. The sender calls exactly one of the `on_*`
/// hooks per event; it does not call [`CongestionControl::on_ack`] while in
/// fast recovery (recovery has its own hooks).
pub trait CongestionControl: std::fmt::Debug + Send {
    /// Current congestion window, bytes.
    fn cwnd(&self) -> u64;

    /// Current slow-start threshold, bytes.
    fn ssthresh(&self) -> u64;

    /// True while `cwnd < ssthresh` (the slow-start phase). Variants with a
    /// different notion of the exponential phase (e.g. ssthresh-free
    /// probing) override this.
    fn in_slow_start(&self) -> bool {
        self.cwnd() < self.ssthresh()
    }

    /// A cumulative ACK advanced `snd_una` by `newly_acked` bytes.
    fn on_ack(&mut self, view: &CcView, newly_acked: u64);

    /// A congestion signal fired (at most once per window per kind; the
    /// sender throttles).
    fn on_congestion(&mut self, view: &CcView, ev: CongestionEvent);

    /// A duplicate ACK arrived while in fast recovery (Reno window
    /// inflation).
    fn on_recovery_dupack(&mut self, view: &CcView);

    /// A partial ACK arrived during fast recovery (NewReno deflation).
    fn on_recovery_partial_ack(&mut self, view: &CcView, newly_acked: u64);

    /// Fast recovery completed (the full outstanding window was ACKed).
    fn on_recovery_exit(&mut self, view: &CcView);

    /// Algorithm name for reports.
    fn name(&self) -> &'static str;
}

/// Which congestion-control algorithm a flow runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CcAlgorithm {
    /// Standard TCP (the paper's baseline).
    Reno,
    /// The paper's Restricted Slow-Start.
    Restricted(RssConfig),
    /// RFC 3742 Limited Slow-Start with optional `max_ssthresh` (bytes).
    Limited {
        /// `max_ssthresh` in bytes; `None` = RFC default of 100 segments.
        max_ssthresh: Option<u64>,
    },
    /// SSthreshless Start (arXiv:1401.7146): delay-probed slow-start with no
    /// ssthresh estimation.
    Ssthreshless(SslConfig),
    /// HighSpeed TCP (RFC 3649): the a(w)/b(w) response-table bend for large
    /// windows. No parameters — the RFC's constants.
    HighSpeed,
    /// Scalable TCP (Kelly 2003): MIMD growth with a fixed 1/8 backoff.
    Scalable(ScalableConfig),
}

impl CcAlgorithm {
    /// Short label for reports — the variant's registry name.
    pub fn label(&self) -> &'static str {
        registry::entry_for(self).info.name
    }
}

/// Per-connection inputs every variant constructor receives (the transport
/// derives these from its `TcpConfig`).
#[derive(Debug, Clone, Copy)]
pub struct CcParams {
    /// Initial congestion window, bytes.
    pub initial_cwnd: u64,
    /// Initial slow-start threshold, bytes (ssthresh-free variants ignore
    /// it — that is their point).
    pub initial_ssthresh: u64,
    /// Maximum segment size, bytes.
    pub mss: u32,
    /// Congestion response to local send-stalls.
    pub stall_response: StallResponse,
}

/// Construct a boxed congestion controller by algorithm selection,
/// dispatching through the [`registry`] table. Panics on parameters the
/// registry's validation rejects (the declarative pipeline validates specs
/// before they get here; hand-built configs fail loudly, like the old
/// constructor asserts did).
pub fn make_cc(algo: &CcAlgorithm, params: &CcParams) -> Box<dyn CongestionControl> {
    registry::build(algo, params).expect("congestion-control parameters rejected")
}

/// Dispatch shell the sender holds its congestion controller in.
///
/// The per-ACK hooks are the hottest calls in the simulator after the event
/// queue itself, and routing every one through a `Box<dyn>` vtable costs a
/// measurable slice of the run (~6% when the cc layer was split out). The
/// baseline Reno controller — what the bulk of every comparison matrix runs —
/// therefore gets a monomorphized fast path: `CcEngine::Reno` stores the
/// concrete type inline, and the `#[inline]` match arms below let the
/// optimizer devirtualize and inline the whole per-ACK sequence. Every other
/// variant keeps the boxed registry path unchanged.
#[derive(Debug)]
pub enum CcEngine {
    /// Inline standard TCP (RFC 5681 Reno) — the monomorphized fast path.
    Reno(Reno),
    /// Any registered variant, behind the usual trait object.
    Dyn(Box<dyn CongestionControl>),
}

impl CcEngine {
    /// Borrow the controller as a trait object (reporting, tests).
    pub fn as_dyn(&self) -> &dyn CongestionControl {
        match self {
            CcEngine::Reno(r) => r,
            CcEngine::Dyn(b) => b.as_ref(),
        }
    }
}

impl From<Reno> for CcEngine {
    fn from(r: Reno) -> Self {
        CcEngine::Reno(r)
    }
}

impl From<Box<dyn CongestionControl>> for CcEngine {
    fn from(b: Box<dyn CongestionControl>) -> Self {
        CcEngine::Dyn(b)
    }
}

impl CongestionControl for CcEngine {
    #[inline]
    fn cwnd(&self) -> u64 {
        match self {
            CcEngine::Reno(r) => r.cwnd(),
            CcEngine::Dyn(b) => b.cwnd(),
        }
    }
    #[inline]
    fn ssthresh(&self) -> u64 {
        match self {
            CcEngine::Reno(r) => r.ssthresh(),
            CcEngine::Dyn(b) => b.ssthresh(),
        }
    }
    #[inline]
    fn in_slow_start(&self) -> bool {
        match self {
            CcEngine::Reno(r) => r.in_slow_start(),
            CcEngine::Dyn(b) => b.in_slow_start(),
        }
    }
    #[inline]
    fn on_ack(&mut self, view: &CcView, newly_acked: u64) {
        match self {
            CcEngine::Reno(r) => r.on_ack(view, newly_acked),
            CcEngine::Dyn(b) => b.on_ack(view, newly_acked),
        }
    }
    #[inline]
    fn on_congestion(&mut self, view: &CcView, ev: CongestionEvent) {
        match self {
            CcEngine::Reno(r) => r.on_congestion(view, ev),
            CcEngine::Dyn(b) => b.on_congestion(view, ev),
        }
    }
    #[inline]
    fn on_recovery_dupack(&mut self, view: &CcView) {
        match self {
            CcEngine::Reno(r) => r.on_recovery_dupack(view),
            CcEngine::Dyn(b) => b.on_recovery_dupack(view),
        }
    }
    #[inline]
    fn on_recovery_partial_ack(&mut self, view: &CcView, newly_acked: u64) {
        match self {
            CcEngine::Reno(r) => r.on_recovery_partial_ack(view, newly_acked),
            CcEngine::Dyn(b) => b.on_recovery_partial_ack(view, newly_acked),
        }
    }
    #[inline]
    fn on_recovery_exit(&mut self, view: &CcView) {
        match self {
            CcEngine::Reno(r) => r.on_recovery_exit(view),
            CcEngine::Dyn(b) => b.on_recovery_exit(view),
        }
    }
    #[inline]
    fn name(&self) -> &'static str {
        match self {
            CcEngine::Reno(r) => r.name(),
            CcEngine::Dyn(b) => b.name(),
        }
    }
}

/// Construct a congestion controller in its [`CcEngine`] dispatch shell:
/// standard Reno lands on the inline fast path, everything else on the boxed
/// registry path. Panics like [`make_cc`] on rejected parameters.
pub fn make_cc_engine(algo: &CcAlgorithm, params: &CcParams) -> CcEngine {
    match algo {
        CcAlgorithm::Reno => CcEngine::Reno(Reno::new(
            params.initial_cwnd,
            params.initial_ssthresh,
            params.mss,
            params.stall_response,
        )),
        _ => CcEngine::Dyn(make_cc(algo, params)),
    }
}

#[cfg(test)]
pub(crate) fn test_view(now_ms: u64, mss: u32, flight: u64) -> CcView {
    CcView {
        now: SimTime::from_millis(now_ms),
        mss,
        flight,
        ifq_depth: 0,
        ifq_max: 100,
        last_rtt: None,
        min_rtt: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> CcParams {
        CcParams {
            initial_cwnd: 2 * 1448,
            initial_ssthresh: u64::MAX / 2,
            mss: 1448,
            stall_response: StallResponse::Cwr,
        }
    }

    #[test]
    fn factory_builds_each_algorithm() {
        let p = params();
        assert_eq!(make_cc(&CcAlgorithm::Reno, &p).name(), "reno");
        assert_eq!(
            make_cc(&CcAlgorithm::Restricted(RssConfig::tuned()), &p).name(),
            "restricted-slow-start"
        );
        assert_eq!(
            make_cc(&CcAlgorithm::Limited { max_ssthresh: None }, &p).name(),
            "limited-slow-start"
        );
        assert_eq!(
            make_cc(&CcAlgorithm::Ssthreshless(SslConfig::default()), &p).name(),
            "ssthreshless-start"
        );
        assert_eq!(make_cc(&CcAlgorithm::HighSpeed, &p).name(), "highspeed-tcp");
        assert_eq!(
            make_cc(&CcAlgorithm::Scalable(ScalableConfig::default()), &p).name(),
            "scalable-tcp"
        );
    }

    #[test]
    fn factory_uses_params_initial_window() {
        let p = params();
        let cc = make_cc(&CcAlgorithm::Reno, &p);
        assert_eq!(cc.cwnd(), p.initial_cwnd);
    }

    #[test]
    fn labels_come_from_the_registry() {
        assert_eq!(CcAlgorithm::Reno.label(), "standard");
        assert_eq!(
            CcAlgorithm::Restricted(RssConfig::tuned()).label(),
            "restricted"
        );
        assert_eq!(
            CcAlgorithm::Limited { max_ssthresh: None }.label(),
            "limited"
        );
        assert_eq!(
            CcAlgorithm::Ssthreshless(SslConfig::default()).label(),
            "ssthreshless"
        );
        assert_eq!(CcAlgorithm::HighSpeed.label(), "highspeed");
        assert_eq!(
            CcAlgorithm::Scalable(ScalableConfig::default()).label(),
            "scalable"
        );
    }
}
