//! Restricted Slow-Start — the paper's contribution.
//!
//! §3 of the paper: "We use a PID control algorithm to determine the rate of
//! increase during the slow-start phase. … The 90 % of the maximum value of
//! the network interface queue (IFQ) size is used as the set point and the
//! current value of the IFQ is used as the process variable. … the controller
//! calculates an output that determines the new value of the sender window."
//!
//! Concretisation used here (documented in DESIGN.md §4): the controller runs
//! on every ACK; its output `u` — in *segments* — is the permitted cwnd
//! change for that ACK, clamped to `[-1, +1]` segment. The `+1` ceiling makes
//! the scheme *restricted*: it can never out-accelerate standard slow-start
//! (which adds one MSS per ACK); as the IFQ approaches the set point the
//! error shrinks and growth throttles smoothly; on overshoot the window eases
//! off. Outside slow-start (after any loss event) behaviour is plain Reno —
//! the paper modifies only the slow-start phase.

use crate::reno::Reno;
use crate::{CcView, CongestionControl, CongestionEvent, RecoveryEvent, StallResponse};
use rss_control::{PidConfig, PidController, PidGains};
use serde::{Deserialize, Serialize};

/// Configuration of the restricted slow-start controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RssConfig {
    /// PID gains (from Ziegler–Nichols; see `rss-control`).
    pub gains: PidGains,
    /// Set point as a fraction of the maximum IFQ size (paper: 0.9).
    pub setpoint_frac: f64,
    /// Largest window growth per ACK, in segments (paper's restriction: 1,
    /// i.e. never faster than standard slow-start).
    pub max_increment_segments: f64,
    /// Largest window *reduction* per ACK, in segments.
    pub max_decrement_segments: f64,
}

impl RssConfig {
    /// Defaults: the paper's 90 % set point with gains from the
    /// Ziegler–Nichols experiment of E6 (see EXPERIMENTS.md).
    ///
    /// The IFQ's small-signal plant is an integrator (queue accumulates the
    /// controller's per-ACK increments at the ACK rate, K ≈ 8333 pkt/s on
    /// the 100 Mbit/s testbed) with one ACK interval of dead time
    /// (θ ≈ 120 µs), giving `Kc = π/(2Kθ) ≈ 1.571` and `Tc = 4θ = 480 µs`.
    /// The paper's rule `Kp = 0.33·Kc, Ti = 0.5·Tc, Td = 0.33·Tc` yields the
    /// constants below; E6 reproduces them from the automated search and the
    /// fig1/headline benches confirm they hold the IFQ at the set point with
    /// zero stalls.
    pub fn tuned() -> Self {
        Self::tuned_for(100_000_000, 1500)
    }

    /// The Ziegler–Nichols paper rule specialised to a path.
    ///
    /// Small-signal IFQ plant: integrator with gain `K = ACK rate` and dead
    /// time `θ = one packet serialization time = 1/K`, so `K·θ = 1` and
    /// `Kc = π/(2Kθ) = π/2` independent of rate, while `Tc = 4θ` scales with
    /// the per-packet time. `wire_pkt_bytes` is MSS + headers (1500 on the
    /// paper's Ethernet path).
    pub fn tuned_for(rate_bps: u64, wire_pkt_bytes: u32) -> Self {
        assert!(rate_bps > 0 && wire_pkt_bytes > 0);
        let ack_rate = rate_bps as f64 / (8.0 * wire_pkt_bytes as f64);
        let theta = 1.0 / ack_rate;
        let kc = std::f64::consts::FRAC_PI_2;
        let tc = 4.0 * theta;
        RssConfig {
            gains: PidGains::pid(0.33 * kc, 0.5 * tc, 0.33 * tc),
            setpoint_frac: 0.9,
            max_increment_segments: 1.0,
            max_decrement_segments: 1.0,
        }
    }

    /// Same set point, caller-supplied gains (used by the tuning pipeline
    /// and the ablation experiments).
    pub fn with_gains(gains: PidGains) -> Self {
        RssConfig {
            gains,
            ..Self::tuned()
        }
    }

    /// Ziegler–Nichols paper rule for `n_flows` sharing one interface queue.
    ///
    /// With a shared FIFO, a flow's packets drain in runs, so each
    /// controller observes the queue with a dead time of roughly the queue
    /// *residence* time at the set point (`0.9·txqueuelen` packet times) —
    /// far longer than the single-flow packet-interval θ. The plant gain per
    /// controller is also divided by `n_flows`. Tuning against that plant
    /// (`Kc = π/(2Kθ)`, `Tc = 4θ`) keeps the collective loop stable where
    /// the single-flow gains would limit-cycle into the queue cap.
    pub fn tuned_shared(rate_bps: u64, wire_pkt_bytes: u32, n_flows: u32, txqueuelen: u32) -> Self {
        assert!(rate_bps > 0 && wire_pkt_bytes > 0 && n_flows > 0 && txqueuelen > 0);
        let ack_rate = rate_bps as f64 / (8.0 * wire_pkt_bytes as f64);
        let per_flow_gain = ack_rate / n_flows as f64;
        let theta = 0.9 * txqueuelen as f64 / ack_rate;
        let kc = std::f64::consts::FRAC_PI_2 / (per_flow_gain * theta);
        let tc = 4.0 * theta;
        RssConfig {
            gains: PidGains::pid(0.33 * kc, 0.5 * tc, 0.33 * tc),
            setpoint_frac: 0.9,
            max_increment_segments: 1.0,
            max_decrement_segments: 1.0,
        }
    }
}

impl Default for RssConfig {
    fn default() -> Self {
        Self::tuned()
    }
}

/// The paper's congestion control: PID-paced slow-start over Reno.
#[derive(Debug)]
pub struct RestrictedSlowStart {
    base: Reno,
    pid: PidController,
    cfg: RssConfig,
    mss: u64,
    /// Set once the IFQ capacity is known (first view).
    setpoint_ready: bool,
    /// Fractional cwnd accumulation (sub-MSS controller outputs add up).
    frac_accum: f64,
}

impl RestrictedSlowStart {
    /// Create with explicit initial window/threshold.
    pub fn new(
        initial_cwnd: u64,
        initial_ssthresh: u64,
        mss: u32,
        stall: StallResponse,
        cfg: RssConfig,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&cfg.setpoint_frac),
            "setpoint fraction out of range"
        );
        assert!(cfg.max_increment_segments > 0.0);
        let pid_cfg = PidConfig::new(cfg.gains, 0.0)
            .with_output_limits(-cfg.max_decrement_segments, cfg.max_increment_segments);
        RestrictedSlowStart {
            base: Reno::new(initial_cwnd, initial_ssthresh, mss, stall),
            pid: PidController::new(pid_cfg),
            cfg,
            mss: mss as u64,
            setpoint_ready: false,
            frac_accum: 0.0,
        }
    }

    /// The controller (read access, for instrumentation).
    pub fn controller(&self) -> &PidController {
        &self.pid
    }

    /// The configuration.
    pub fn rss_config(&self) -> &RssConfig {
        &self.cfg
    }

    fn ensure_setpoint(&mut self, view: &CcView) {
        if !self.setpoint_ready {
            self.pid
                .set_setpoint(self.cfg.setpoint_frac * view.ifq_max as f64);
            self.setpoint_ready = true;
        }
    }

    fn restricted_ack(&mut self, view: &CcView, newly_acked: u64) {
        self.ensure_setpoint(view);
        // Controller output: permitted window change, in segments/ACK.
        let u = self.pid.update(view.now, view.ifq_depth as f64);
        // Restriction: never grow faster than `max_increment_segments` times
        // what standard slow-start would add on this ACK (the RFC 5681
        // increment, min(newly_acked, MSS)). The paper's scheme uses 1.0 —
        // never more aggressive than standard; the ablation experiments
        // raise it to measure what the restriction itself contributes.
        let standard_inc = newly_acked.min(self.mss) as f64;
        let delta_bytes = (u * self.mss as f64).min(standard_inc * self.cfg.max_increment_segments);
        self.frac_accum += delta_bytes;
        let floor = 2 * self.mss;
        if self.frac_accum >= 1.0 {
            let add = self.frac_accum.floor();
            self.frac_accum -= add;
            let cwnd = self.base.cwnd() + add as u64;
            self.set_base_cwnd(cwnd);
        } else if self.frac_accum <= -1.0 {
            let sub = (-self.frac_accum).floor();
            self.frac_accum += sub;
            let cwnd = self.base.cwnd().saturating_sub(sub as u64).max(floor);
            self.set_base_cwnd(cwnd);
        }
    }

    fn set_base_cwnd(&mut self, cwnd: u64) {
        // Reno has no setter; rebuild the relevant field via a small helper.
        self.base.force_cwnd(cwnd);
    }
}

impl CongestionControl for RestrictedSlowStart {
    fn cwnd(&self) -> u64 {
        self.base.cwnd()
    }

    fn ssthresh(&self) -> u64 {
        self.base.ssthresh()
    }

    fn on_ack(&mut self, view: &CcView, newly_acked: u64) {
        if self.in_slow_start() {
            self.restricted_ack(view, newly_acked);
        } else {
            self.base.on_ack(view, newly_acked);
        }
    }

    fn on_congestion(&mut self, view: &CcView, ev: CongestionEvent) {
        // Loss handling is untouched Reno; the PID restarts fresh if the
        // connection ever re-enters slow-start (post-timeout).
        self.base.on_congestion(view, ev);
        if ev == CongestionEvent::Timeout {
            self.pid.reset();
            self.frac_accum = 0.0;
        }
    }

    fn on_recovery(&mut self, view: &CcView, ev: RecoveryEvent) {
        self.base.on_recovery(view, ev);
    }

    fn name(&self) -> &'static str {
        "restricted-slow-start"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rss_sim::SimTime;

    const MSS: u32 = 1000;

    fn view(now_ms: u64, ifq_depth: u32) -> CcView {
        CcView {
            now: SimTime::from_millis(now_ms),
            mss: MSS,
            flight: 0,
            ifq_depth,
            ifq_max: 100,
            last_rtt: None,
            min_rtt: None,
            delivered: 0,
            delivery_rate: None,
            delivery_interval: None,
            app_limited: false,
        }
    }

    fn rss() -> RestrictedSlowStart {
        RestrictedSlowStart::new(
            2 * MSS as u64,
            u64::MAX / 2,
            MSS,
            StallResponse::Cwr,
            RssConfig {
                gains: PidGains::pid(0.5, 0.5, 0.05),
                setpoint_frac: 0.9,
                max_increment_segments: 1.0,
                max_decrement_segments: 1.0,
            },
        )
    }

    #[test]
    fn empty_ifq_grows_at_standard_slow_start_rate() {
        let mut cc = rss();
        // IFQ empty: error = 90, controller saturates at +1 segment/ACK —
        // exactly standard slow-start.
        let start = cc.cwnd();
        for i in 0..10 {
            cc.on_ack(&view(i, 0), MSS as u64);
        }
        assert_eq!(cc.cwnd(), start + 10 * MSS as u64);
    }

    #[test]
    fn growth_throttles_near_setpoint() {
        let mut cc = rss();
        // Warm the controller with an empty queue, then report occupancy at
        // the set point: growth must drop well below 1 MSS per ACK.
        for i in 0..5 {
            cc.on_ack(&view(i, 0), MSS as u64);
        }
        let at_setpoint = cc.cwnd();
        for i in 5..25 {
            cc.on_ack(&view(i, 90), MSS as u64);
        }
        let grown = cc.cwnd() as i64 - at_setpoint as i64;
        assert!(
            grown < 20 * MSS as i64 / 4,
            "growth at setpoint too fast: {grown} bytes over 20 ACKs"
        );
    }

    #[test]
    fn overshoot_shrinks_window_but_not_below_floor() {
        let mut cc = rss();
        for i in 0..5 {
            cc.on_ack(&view(i, 0), MSS as u64);
        }
        let before = cc.cwnd();
        // Queue far above set point: negative error, window eases off.
        for i in 5..60 {
            cc.on_ack(&view(i, 100), MSS as u64);
        }
        assert!(cc.cwnd() < before, "window should shrink on overshoot");
        assert!(cc.cwnd() >= 2 * MSS as u64, "floor respected");
    }

    #[test]
    fn never_faster_than_standard_slow_start() {
        // Property-style check over a sweep of IFQ depths: per-ACK growth
        // never exceeds one MSS.
        let mut cc = rss();
        let mut prev = cc.cwnd();
        for i in 0..200 {
            let depth = (i * 7) % 100;
            cc.on_ack(&view(i, depth as u32), MSS as u64);
            let now = cc.cwnd();
            assert!(
                now <= prev + MSS as u64,
                "grew {} > MSS in one ACK",
                now - prev
            );
            prev = now;
        }
    }

    #[test]
    fn falls_back_to_reno_after_slow_start() {
        let mut cc = RestrictedSlowStart::new(
            10 * MSS as u64,
            5 * MSS as u64, // already past ssthresh: CA
            MSS,
            StallResponse::Cwr,
            RssConfig::tuned(),
        );
        assert!(!cc.in_slow_start());
        let v = view(0, 0);
        for _ in 0..10 {
            cc.on_ack(&v, MSS as u64);
        }
        // CA growth: one MSS per window, not one per ACK.
        assert_eq!(cc.cwnd(), 11 * MSS as u64);
    }

    #[test]
    fn loss_response_is_reno() {
        let mut cc = rss();
        let v = CcView {
            flight: 20 * MSS as u64,
            ..view(0, 50)
        };
        cc.on_congestion(&v, CongestionEvent::FastRetransmit);
        assert_eq!(cc.ssthresh(), 10 * MSS as u64);
        assert_eq!(cc.cwnd(), 13 * MSS as u64);
        cc.on_recovery(&v, RecoveryEvent::Exit { newly_acked: 0 });
        assert_eq!(cc.cwnd(), 10 * MSS as u64);
    }

    #[test]
    fn timeout_resets_controller() {
        let mut cc = rss();
        for i in 0..20 {
            cc.on_ack(&view(i, 40), MSS as u64);
        }
        assert!(cc.controller().update_count() > 0);
        let v = CcView {
            flight: 10 * MSS as u64,
            ..view(20, 50)
        };
        cc.on_congestion(&v, CongestionEvent::Timeout);
        assert_eq!(cc.controller().update_count(), 0, "controller reset");
        assert_eq!(cc.cwnd(), MSS as u64);
    }

    #[test]
    fn setpoint_from_first_view() {
        let mut cc = rss();
        cc.on_ack(&view(0, 0), MSS as u64);
        assert!((cc.controller().config().setpoint - 90.0).abs() < 1e-12);
    }

    #[test]
    fn tuned_for_matches_paper_rule() {
        let cfg = RssConfig::tuned_for(100_000_000, 1500);
        // ACK rate 8333.3/s, θ = 120 µs, Kc = π/2, Tc = 480 µs.
        assert!((cfg.gains.kp - 0.33 * std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!(
            (cfg.gains.ti - 0.000_24).abs() < 1e-9,
            "ti {}",
            cfg.gains.ti
        );
        assert!(
            (cfg.gains.td - 0.000_158_4).abs() < 1e-9,
            "td {}",
            cfg.gains.td
        );
        assert_eq!(cfg.setpoint_frac, 0.9);
        // Kp is rate-invariant; the time constants scale inversely with rate.
        let fast = RssConfig::tuned_for(1_000_000_000, 1500);
        assert!((fast.gains.kp - cfg.gains.kp).abs() < 1e-12);
        assert!((fast.gains.ti - cfg.gains.ti / 10.0).abs() < 1e-9);
    }
}
