//! Relentless congestion control (Mathis, arXiv:1102.3270).
//!
//! Standard TCP halves the window on any loss event, however small; the
//! Relentless modification decreases the window by *exactly the number of
//! segments lost* instead. Growth is untouched (standard slow-start and
//! one-MSS-per-RTT congestion avoidance), so under a random per-segment loss
//! probability `p` the window settles where growth balances loss:
//!
//! > one segment gained per RTT = `W · p` segments lost per RTT,
//! > hence `W = 1/p` segments and goodput ≈ `MSS / (p · RTT)`
//!
//! (valid while `1/p` fits inside the path's BDP and the receiver window).
//! That closed form is asserted against the simulator by a workspace test,
//! so the implementation cannot drift from the model unnoticed.
//!
//! Mapping onto this sender's recovery machinery: the fast-retransmit signal
//! itself accounts for the first lost segment, and every partial ACK during
//! recovery exposes exactly one further retransmission hole, so each
//! subtracts one more MSS. Congestion-avoidance growth keeps running *through*
//! recovery — Relentless updates the window on every ACK, so delivered bytes
//! earn their 1-MSS-per-window increase even while holes are being repaired.
//! That detail is load-bearing for the closed form: a NewReno episode repairs
//! one hole per RTT, so at the `W = 1/p` equilibrium (one loss per RTT) the
//! connection spends most of its time in recovery, and suspending growth
//! there would depress the balance point to a fraction of `1/p`. Timeouts
//! remain the standard Reno response — the scheme relaxes fast recovery, not
//! the conservation-of-packets fallback.

use crate::reno::Reno;
use crate::{CcView, CongestionControl, CongestionEvent, RecoveryEvent, StallResponse};

/// Relentless window management: Reno growth, decrease-by-losses recovery.
#[derive(Debug, Clone)]
pub struct RelentlessCc {
    base: Reno,
    mss: u64,
    /// Window to restore at recovery exit: the pre-loss window minus one MSS
    /// per detected loss (Reno's exit would deflate to `ssthresh` instead),
    /// plus congestion-avoidance credit earned while recovering.
    recovery_target: u64,
    /// Byte-counting accumulator for in-recovery congestion avoidance:
    /// `recovery_target` gains one MSS per `recovery_target` bytes delivered.
    ca_accum: u64,
}

impl RelentlessCc {
    /// Create with an initial window and threshold.
    pub fn new(initial_cwnd: u64, initial_ssthresh: u64, mss: u32, stall: StallResponse) -> Self {
        RelentlessCc {
            base: Reno::new(initial_cwnd, initial_ssthresh, mss, stall),
            mss: mss as u64,
            recovery_target: 0,
            ca_accum: 0,
        }
    }

    /// One detected loss: take exactly one segment off the recovery target,
    /// never below the two-segment floor the rest of the stack assumes.
    fn charge_one_loss(&mut self) {
        self.recovery_target = self
            .recovery_target
            .saturating_sub(self.mss)
            .max(2 * self.mss);
    }

    /// Congestion-avoidance growth for bytes cumulatively ACKed during
    /// recovery: one MSS per `recovery_target` bytes, byte-counted.
    fn credit_growth(&mut self, newly_acked: u64) {
        if self.recovery_target == 0 {
            return;
        }
        self.ca_accum += newly_acked;
        while self.ca_accum >= self.recovery_target {
            self.ca_accum -= self.recovery_target;
            self.recovery_target += self.mss;
        }
    }
}

impl CongestionControl for RelentlessCc {
    fn cwnd(&self) -> u64 {
        self.base.cwnd()
    }

    fn ssthresh(&self) -> u64 {
        self.base.ssthresh()
    }

    fn on_ack(&mut self, view: &CcView, newly_acked: u64) {
        self.base.on_ack(view, newly_acked);
    }

    fn on_congestion(&mut self, view: &CcView, ev: CongestionEvent) {
        match ev {
            CongestionEvent::FastRetransmit => {
                // Enter recovery owing one segment (the fast-retransmitted
                // hole). Keep Reno's in-recovery inflation baseline so dup-ACK
                // inflation and partial-ACK deflation behave as usual, but pin
                // ssthresh to the target so the exit lands there and
                // congestion avoidance resumes — no slow-start burst, no
                // halving.
                self.recovery_target = self.base.cwnd();
                self.ca_accum = 0;
                self.charge_one_loss();
                self.base.force_ssthresh(self.recovery_target);
                self.base.force_cwnd(self.recovery_target + 3 * self.mss);
            }
            CongestionEvent::Timeout | CongestionEvent::LocalStall => {
                // Standard responses: Relentless only changes fast recovery.
                self.base.on_congestion(view, ev);
            }
        }
    }

    fn on_recovery(&mut self, view: &CcView, ev: RecoveryEvent) {
        match ev {
            RecoveryEvent::PartialAck { newly_acked } => {
                // Each partial ACK exposes exactly one more retransmission
                // hole: one more lost segment to pay for...
                self.charge_one_loss();
                // ...but the bytes it cumulatively acknowledges were
                // delivered, and Relentless keeps congestion avoidance
                // running through recovery.
                self.credit_growth(newly_acked);
                self.base.force_ssthresh(self.recovery_target);
            }
            RecoveryEvent::Exit { newly_acked } => {
                // A single-loss episode delivers almost the whole window in
                // the recovery-closing jump; credit it before the base
                // deflates cwnd to ssthresh.
                self.credit_growth(newly_acked);
                self.base.force_ssthresh(self.recovery_target);
            }
            RecoveryEvent::DupAck => {}
            RecoveryEvent::EcnEcho => {
                // A CE mark is one congestion signal, not a loss: decrease by
                // exactly one segment, in the spirit of decrease-by-losses,
                // instead of delegating to the base's CWR halving. Early
                // return — the unconditional base delegation below would
                // halve on top of this.
                let target = self.base.cwnd().saturating_sub(self.mss).max(2 * self.mss);
                self.base.force_ssthresh(target);
                self.base.force_cwnd(target);
                return;
            }
        }
        self.base.on_recovery(view, ev);
    }

    fn name(&self) -> &'static str {
        "relentless-cc"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_view;

    const MSS: u32 = 1000;

    fn relentless(cwnd_segments: u64) -> RelentlessCc {
        let mut cc = RelentlessCc::new(2 * MSS as u64, u64::MAX / 2, MSS, StallResponse::Cwr);
        cc.base.force_cwnd(cwnd_segments * MSS as u64);
        cc.base.force_ssthresh(2 * MSS as u64); // congestion avoidance
        cc
    }

    #[test]
    fn growth_is_reno() {
        let mut cc = relentless(10);
        let v = test_view(0, MSS, 0);
        for _ in 0..10 {
            cc.on_ack(&v, MSS as u64);
        }
        assert_eq!(cc.cwnd(), 11 * MSS as u64, "1 MSS per window of ACKs");
    }

    #[test]
    fn single_loss_costs_exactly_one_segment() {
        let mut cc = relentless(100);
        let v = test_view(0, MSS, 100 * MSS as u64);
        cc.on_congestion(&v, CongestionEvent::FastRetransmit);
        cc.on_recovery(&v, RecoveryEvent::Exit { newly_acked: 0 });
        assert_eq!(cc.cwnd(), 99 * MSS as u64, "decrease by the one loss");
        assert!(!cc.in_slow_start(), "resumes congestion avoidance");
    }

    #[test]
    fn each_partial_ack_costs_one_more_segment() {
        let mut cc = relentless(100);
        let v = test_view(0, MSS, 100 * MSS as u64);
        cc.on_congestion(&v, CongestionEvent::FastRetransmit);
        // Three further holes surface as three partial ACKs.
        for _ in 0..3 {
            cc.on_recovery(
                &v,
                RecoveryEvent::PartialAck {
                    newly_acked: MSS as u64,
                },
            );
        }
        cc.on_recovery(&v, RecoveryEvent::Exit { newly_acked: 0 });
        assert_eq!(cc.cwnd(), 96 * MSS as u64, "four losses, four segments");
    }

    #[test]
    fn congestion_avoidance_keeps_running_through_recovery() {
        let mut cc = relentless(100);
        let v = test_view(0, MSS, 100 * MSS as u64);
        cc.on_congestion(&v, CongestionEvent::FastRetransmit);
        // One RTT of recovery: the partial ACK both exposes a second hole
        // (one segment charged) and acknowledges a window's worth of
        // delivered data (one segment earned). Two losses, one growth.
        cc.on_recovery(
            &v,
            RecoveryEvent::PartialAck {
                newly_acked: 99 * MSS as u64,
            },
        );
        cc.on_recovery(&v, RecoveryEvent::Exit { newly_acked: 0 });
        assert_eq!(
            cc.cwnd(),
            99 * MSS as u64,
            "two losses paid, one window of ACKs earned back one MSS"
        );
    }

    #[test]
    fn the_recovery_exit_jump_counts_toward_growth() {
        let mut cc = relentless(100);
        let v = test_view(0, MSS, 100 * MSS as u64);
        cc.on_congestion(&v, CongestionEvent::FastRetransmit);
        // Single-loss episode: the whole window is acknowledged by the
        // recovery-closing jump. One segment paid, one earned back.
        cc.on_recovery(
            &v,
            RecoveryEvent::Exit {
                newly_acked: 99 * MSS as u64,
            },
        );
        assert_eq!(
            cc.cwnd(),
            100 * MSS as u64,
            "one loss paid, one window delivered: the window holds"
        );
    }

    #[test]
    fn decrease_floors_at_two_segments() {
        let mut cc = relentless(3);
        let v = test_view(0, MSS, 3 * MSS as u64);
        cc.on_congestion(&v, CongestionEvent::FastRetransmit);
        for _ in 0..5 {
            cc.on_recovery(
                &v,
                RecoveryEvent::PartialAck {
                    newly_acked: MSS as u64,
                },
            );
        }
        cc.on_recovery(&v, RecoveryEvent::Exit { newly_acked: 0 });
        assert_eq!(cc.cwnd(), 2 * MSS as u64);
    }

    #[test]
    fn ecn_echo_costs_exactly_one_segment() {
        let mut cc = relentless(100);
        let v = test_view(0, MSS, 100 * MSS as u64);
        cc.on_recovery(&v, RecoveryEvent::EcnEcho);
        assert_eq!(cc.cwnd(), 99 * MSS as u64, "one mark, one segment");
        assert!(!cc.in_slow_start(), "stays in congestion avoidance");
        // Floors at two segments like every other decrease.
        let mut small = relentless(2);
        small.on_recovery(&v, RecoveryEvent::EcnEcho);
        assert_eq!(small.cwnd(), 2 * MSS as u64);
    }

    #[test]
    fn timeout_is_standard() {
        let mut cc = relentless(64);
        let v = test_view(0, MSS, 64 * MSS as u64);
        cc.on_congestion(&v, CongestionEvent::Timeout);
        assert_eq!(cc.cwnd(), MSS as u64, "loss window");
        assert_eq!(cc.ssthresh(), 32 * MSS as u64, "standard halving");
        assert!(cc.in_slow_start());
    }
}
