//! BBR-style rate probing (Cardwell et al., "BBR: Congestion-Based
//! Congestion Control", ACM Queue 14(5), 2016) — the repo's demonstration
//! that the pacing contract carries a genuinely rate-based controller, not
//! just window variants with a speed limit.
//!
//! The controller models the path by two rolling statistics — windowed
//! maximum delivery rate (`max_bw`, the bottleneck-bandwidth estimate) and
//! windowed minimum RTT (`min_rtt`, the propagation-delay estimate) — and
//! steers by *pacing rate* = gain × `max_bw` through three regimes:
//!
//! * **Startup**: gain 2.885 (the slow-start-equivalent 2/ln 2) until the
//!   bandwidth estimate stops growing ≥ 25 % per round for
//!   [`FULL_BW_ROUNDS`] consecutive rounds — the pipe is full.
//! * **Drain**: gain 1/2.885 for the queue built during startup, until
//!   flight ≤ one estimated BDP.
//! * **ProbeBw**: an eight-phase gain cycle `[1.25, 0.75, 1 ×6]`, one phase
//!   per `min_rtt`, probing for more bandwidth then draining what the probe
//!   queued.
//!
//! The congestion window is a backstop, not the control variable: it is
//! capped at [`CWND_GAIN`] × BDP (and grows at most by the bytes each ACK
//! delivered, so it can never outrun delivery). Loss is *not* a primary
//! signal — fast recovery leaves the model untouched — but a retransmission
//! timeout still collapses to one segment like every other variant here,
//! because at that point the model has demonstrably failed.
//!
//! Quantities and units follow the crate contract: all window and rate
//! state is in payload bytes and payload bytes per second.

use crate::filter::{BandwidthEstimator, WindowedMinFilter};
use crate::{CcView, CongestionControl, CongestionEvent, PacingDecision, RecoveryEvent};
use rss_sim::SimDuration;
use rss_sim::SimTime;

/// Window over which bandwidth and RTT extrema are remembered.
pub const FILTER_WINDOW: SimDuration = SimDuration::from_secs(10);
/// Rounds without ≥ 25 % bandwidth growth before startup declares the pipe
/// full.
pub const FULL_BW_ROUNDS: u32 = 3;
/// Congestion-window gain over the estimated BDP (the in-flight backstop).
pub const CWND_GAIN: u64 = 2;
/// Startup/drain pacing gain as a ratio: 2.885 ≈ 2/ln 2.
pub const HIGH_GAIN: (u64, u64) = (2885, 1000);
/// The ProbeBw pacing-gain cycle, one entry per `min_rtt`.
pub const PROBE_GAINS: [(u64, u64); 8] = [
    (5, 4),
    (3, 4),
    (1, 1),
    (1, 1),
    (1, 1),
    (1, 1),
    (1, 1),
    (1, 1),
];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Startup,
    Drain,
    /// Index into [`PROBE_GAINS`].
    ProbeBw(usize),
}

/// BBR-style rate-probing congestion control.
#[derive(Debug, Clone)]
pub struct BbrProbe {
    mss: u64,
    cwnd: u64,
    state: State,
    bw: BandwidthEstimator,
    min_rtt: WindowedMinFilter,
    /// ACKed bytes left in the current round (a round = one flight).
    round_remaining: u64,
    /// Bandwidth estimate the startup plateau detector last grew past.
    full_bw: u64,
    /// Consecutive rounds the estimate failed to grow ≥ 25 %.
    full_bw_rounds: u32,
    /// When the current ProbeBw phase started.
    cycle_stamp: SimTime,
}

impl BbrProbe {
    /// Create in startup with an initial window.
    pub fn new(initial_cwnd: u64, mss: u32) -> Self {
        let mss = mss as u64;
        BbrProbe {
            mss,
            cwnd: initial_cwnd.max(4 * mss),
            state: State::Startup,
            bw: BandwidthEstimator::new(FILTER_WINDOW),
            min_rtt: WindowedMinFilter::new(FILTER_WINDOW),
            round_remaining: 0,
            full_bw: 0,
            full_bw_rounds: 0,
            cycle_stamp: SimTime::ZERO,
        }
    }

    /// Estimated bandwidth-delay product in bytes, if both filters have a
    /// sample.
    fn bdp(&self) -> Option<u64> {
        let bw = self.bw.bandwidth()?;
        let rtt = self.min_rtt.current()?;
        Some((bw as u128 * rtt.as_nanos() as u128 / 1_000_000_000) as u64)
    }

    /// The in-flight backstop: [`CWND_GAIN`] × BDP, floored at four
    /// segments; unbounded until the model has its first estimates.
    fn target_cwnd(&self) -> u64 {
        match self.bdp() {
            Some(bdp) => (CWND_GAIN * bdp).max(4 * self.mss),
            None => u64::MAX,
        }
    }

    /// The pacing gain of the current regime.
    fn gain(&self) -> (u64, u64) {
        match self.state {
            State::Startup => HIGH_GAIN,
            State::Drain => (HIGH_GAIN.1, HIGH_GAIN.0),
            State::ProbeBw(phase) => PROBE_GAINS[phase],
        }
    }

    /// Round-boundary bookkeeping: the startup plateau detector.
    fn on_round_end(&mut self) {
        if self.state != State::Startup {
            return;
        }
        let bw = self.bw.bandwidth().unwrap_or(0);
        // Grown ≥ 25 % since the last mark? Keep chasing; else count a
        // plateau round.
        if bw * 4 >= self.full_bw * 5 && bw > self.full_bw {
            self.full_bw = bw;
            self.full_bw_rounds = 0;
        } else {
            self.full_bw_rounds += 1;
            if self.full_bw_rounds >= FULL_BW_ROUNDS {
                self.state = State::Drain;
            }
        }
    }

    fn advance_state(&mut self, view: &CcView) {
        match self.state {
            State::Startup => {}
            State::Drain => {
                if let Some(bdp) = self.bdp() {
                    if view.flight <= bdp {
                        self.state = State::ProbeBw(0);
                        self.cycle_stamp = view.now;
                    }
                }
            }
            State::ProbeBw(phase) => {
                let rotation = self
                    .min_rtt
                    .current()
                    .unwrap_or(SimDuration::from_millis(100));
                if view.now.saturating_since(self.cycle_stamp) >= rotation {
                    self.state = State::ProbeBw((phase + 1) % PROBE_GAINS.len());
                    self.cycle_stamp = view.now;
                }
            }
        }
    }
}

impl CongestionControl for BbrProbe {
    fn cwnd(&self) -> u64 {
        self.cwnd
    }

    /// BBR has no loss threshold; report the conventional "effectively
    /// infinite" sentinel the window variants use for the same idea.
    fn ssthresh(&self) -> u64 {
        u64::MAX / 2
    }

    /// Startup is the slow-start analogue (exponential rate growth).
    fn in_slow_start(&self) -> bool {
        self.state == State::Startup
    }

    fn on_ack(&mut self, view: &CcView, newly_acked: u64) {
        if let Some(rtt) = view.last_rtt {
            self.min_rtt.update(view.now, rtt);
        }
        self.bw.on_ack(view);

        // Round accounting drives the startup plateau detector.
        if self.round_remaining == 0 {
            self.round_remaining = self.cwnd;
        }
        if self.round_remaining <= newly_acked {
            self.on_round_end();
            self.round_remaining = 0;
        } else {
            self.round_remaining -= newly_acked;
        }

        self.advance_state(view);

        // The window backstop: grow by at most what this ACK delivered,
        // clamp to CWND_GAIN × BDP once the model has estimates.
        self.cwnd = self
            .cwnd
            .saturating_add(newly_acked)
            .min(self.target_cwnd())
            .max(4 * self.mss);
    }

    fn on_congestion(&mut self, _view: &CcView, ev: CongestionEvent) {
        match ev {
            // Loss is not a model signal; fast recovery proceeds with the
            // window it has (the pacing rate already bounds the send rate).
            CongestionEvent::FastRetransmit | CongestionEvent::LocalStall => {}
            CongestionEvent::Timeout => {
                // The model failed badly enough to drain the ACK clock:
                // conserve packets like everyone else and rebuild.
                self.cwnd = self.mss;
            }
        }
    }

    fn on_recovery(&mut self, _view: &CcView, _ev: RecoveryEvent) {}

    fn pacing(&self) -> PacingDecision {
        match self.bw.bandwidth() {
            // No estimate yet: let the window run the show (startup ACKs
            // will produce one within a round trip).
            None => PacingDecision::Unpaced,
            Some(bw) => {
                let (num, den) = self.gain();
                let rate = (bw as u128 * num as u128 / den as u128) as u64;
                PacingDecision::Rate {
                    bytes_per_sec: rate.max(1),
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "bbr-probe"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_view;

    const MSS: u32 = 1000;

    fn bbr() -> BbrProbe {
        BbrProbe::new(4 * MSS as u64, MSS)
    }

    fn view(now_ms: u64, rate: Option<u64>, rtt_ms: u64, flight: u64) -> CcView {
        let mut v = test_view(now_ms, MSS, flight);
        v.last_rtt = Some(SimDuration::from_millis(rtt_ms));
        v.min_rtt = Some(SimDuration::from_millis(rtt_ms));
        v.delivery_rate = rate;
        v
    }

    /// Drive one full round of ACKs (cwnd worth of bytes) at a fixed
    /// delivery-rate sample.
    fn run_round(cc: &mut BbrProbe, t_ms: &mut u64, rate: u64, rtt_ms: u64) {
        let acks = cc.cwnd() / MSS as u64;
        for _ in 0..=acks {
            cc.on_ack(&view(*t_ms, Some(rate), rtt_ms, cc.cwnd()), MSS as u64);
            *t_ms += 1;
        }
    }

    #[test]
    fn no_estimate_means_unpaced_window_growth() {
        let mut cc = bbr();
        assert_eq!(cc.pacing(), PacingDecision::Unpaced);
        let before = cc.cwnd();
        // An ACK with no delivery-rate sample: pure window growth.
        let mut v = test_view(0, MSS, 0);
        v.last_rtt = None;
        cc.on_ack(&v, MSS as u64);
        assert_eq!(cc.cwnd(), before + MSS as u64);
        assert_eq!(cc.pacing(), PacingDecision::Unpaced);
    }

    #[test]
    fn startup_paces_at_high_gain_over_max_bw() {
        let mut cc = bbr();
        cc.on_ack(&view(0, Some(1_000_000), 50, 0), MSS as u64);
        assert!(cc.in_slow_start());
        assert_eq!(
            cc.pacing(),
            PacingDecision::Rate {
                bytes_per_sec: 1_000_000 * HIGH_GAIN.0 / HIGH_GAIN.1
            }
        );
    }

    #[test]
    fn plateau_exits_startup_then_drain_reaches_probe_bw() {
        let mut cc = bbr();
        let mut t = 0u64;
        // Growing estimate: stays in startup.
        run_round(&mut cc, &mut t, 1_000_000, 50);
        run_round(&mut cc, &mut t, 2_000_000, 50);
        assert!(cc.in_slow_start(), "estimate still growing");
        // Flat estimate for FULL_BW_ROUNDS rounds: pipe declared full.
        for _ in 0..FULL_BW_ROUNDS {
            assert!(cc.in_slow_start());
            run_round(&mut cc, &mut t, 2_000_000, 50);
        }
        assert!(!cc.in_slow_start(), "plateau must end startup");
        assert_eq!(cc.state, State::Drain);
        let drain = match cc.pacing() {
            PacingDecision::Rate { bytes_per_sec } => bytes_per_sec,
            other => panic!("expected a rate, got {other:?}"),
        };
        assert_eq!(
            drain,
            2_000_000 * HIGH_GAIN.1 / HIGH_GAIN.0,
            "drain inverts the gain"
        );
        // Flight at one BDP hands over to ProbeBw.
        let bdp = cc.bdp().unwrap();
        cc.on_ack(&view(t, Some(2_000_000), 50, bdp), MSS as u64);
        assert_eq!(cc.state, State::ProbeBw(0));
    }

    #[test]
    fn probe_bw_cycles_one_phase_per_min_rtt() {
        let mut cc = bbr();
        cc.state = State::ProbeBw(0);
        cc.cycle_stamp = SimTime::from_millis(0);
        cc.min_rtt
            .update(SimTime::from_millis(0), SimDuration::from_millis(50));
        cc.bw.on_ack(&view(0, Some(2_000_000), 50, 0));
        // Same min_rtt elapses → next phase (0.75, the drain phase).
        cc.on_ack(&view(50, Some(2_000_000), 50, 0), MSS as u64);
        assert_eq!(cc.state, State::ProbeBw(1));
        assert_eq!(
            cc.pacing(),
            PacingDecision::Rate {
                bytes_per_sec: 2_000_000 * 3 / 4
            }
        );
        // Cycle wraps after all eight phases.
        for i in 2..=8 {
            cc.on_ack(&view(50 * i, Some(2_000_000), 50, 0), MSS as u64);
        }
        assert_eq!(cc.state, State::ProbeBw(0));
    }

    #[test]
    fn cwnd_is_clamped_to_twice_the_bdp() {
        let mut cc = bbr();
        // 2 MB/s × 100 ms ⇒ BDP = 200 000 bytes ⇒ clamp at 400 000.
        let mut t = 0u64;
        for _ in 0..40 {
            run_round(&mut cc, &mut t, 2_000_000, 100);
        }
        assert_eq!(cc.cwnd(), 2 * 200_000);
    }

    #[test]
    fn fast_retransmit_keeps_the_model_timeout_collapses() {
        let mut cc = bbr();
        let mut t = 0u64;
        run_round(&mut cc, &mut t, 2_000_000, 50);
        let before = cc.cwnd();
        let v = view(t, None, 50, before);
        cc.on_congestion(&v, CongestionEvent::FastRetransmit);
        cc.on_recovery(&v, RecoveryEvent::Exit { newly_acked: 0 });
        assert_eq!(cc.cwnd(), before, "loss does not touch the model");
        cc.on_congestion(&v, CongestionEvent::Timeout);
        assert_eq!(cc.cwnd(), MSS as u64, "RTO conserves packets");
    }
}
