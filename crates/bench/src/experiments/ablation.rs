//! E7 — controller ablation: which parts of the scheme matter?
//!
//! §3 chose full PID with the "some overshoot" Ziegler–Nichols constants.
//! This ablation runs the paper testbed under P, PI, PID (paper rule), PID
//! (classic rule), the conservative "no overshoot" rule, deliberately bad
//! tunings, and — most importantly — arms that *remove the restriction*
//! (the ≤ 1-segment-per-ACK growth clamp), reporting stalls, goodput, IFQ
//! tracking error and time-to-full-utilization.
//!
//! Headline finding: on the (integrator-like) IFQ plant the saturating ±1
//! clamp does most of the stabilising work — wide ranges of gains behave
//! identically — but lifting the clamp re-exposes the raw controller, where
//! aggressive gains burst straight through the queue.

use rss_core::plot::ascii_table;
use rss_core::{run, CcAlgorithm, PidGains, RssConfig, RunReport, Scenario};

/// One ablation arm.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Controller variant label.
    pub label: String,
    /// Gains used.
    pub gains: PidGains,
    /// Send-stalls.
    pub stalls: u64,
    /// Goodput, bits/s.
    pub goodput_bps: f64,
    /// RMS error of IFQ depth from the 90-packet set point (t > 5 s).
    pub ifq_rmse: f64,
    /// First time the flow's windowed goodput exceeds 90 % of line rate (s).
    pub time_to_90pct_s: Option<f64>,
}

/// Result of E7.
#[derive(Debug, Clone)]
pub struct AblationResult {
    /// All arms.
    pub rows: Vec<AblationRow>,
}

fn ifq_rmse(report: &RunReport, setpoint: f64) -> f64 {
    let tail: Vec<f64> = report
        .sender_ifq_series
        .iter()
        .filter(|&&(t, _)| t > 5.0)
        .map(|&(_, v)| v)
        .collect();
    if tail.is_empty() {
        return f64::NAN;
    }
    (tail
        .iter()
        .map(|v| (v - setpoint) * (v - setpoint))
        .sum::<f64>()
        / tail.len() as f64)
        .sqrt()
}

fn time_to_rate(report: &RunReport, target_bps: f64) -> Option<f64> {
    let f = &report.flows[0];
    let window = 0.5;
    let mut t = window;
    while t <= report.duration_s {
        if f.goodput_in_window_bps(t - window, t) >= target_bps {
            return Some(t);
        }
        t += window;
    }
    None
}

fn arm_cfg(label: &str, cfg: RssConfig) -> AblationRow {
    let sc = Scenario::paper_testbed(CcAlgorithm::Restricted(cfg));
    let r = run(&sc);
    AblationRow {
        label: label.to_string(),
        gains: cfg.gains,
        stalls: r.flows[0].vars.send_stall,
        goodput_bps: r.flows[0].goodput_bps,
        ifq_rmse: ifq_rmse(&r, 90.0),
        time_to_90pct_s: time_to_rate(&r, 0.9 * 100e6),
    }
}

fn arm(label: &str, gains: PidGains) -> AblationRow {
    arm_cfg(label, RssConfig::with_gains(gains))
}

/// An arm with the growth clamp lifted to `max_inc` segments per ACK.
fn unclamped_arm(label: &str, gains: PidGains, max_inc: f64) -> AblationRow {
    let cfg = RssConfig {
        max_increment_segments: max_inc,
        ..RssConfig::with_gains(gains)
    };
    arm_cfg(label, cfg)
}

/// Run E7.
pub fn run_ablation() -> AblationResult {
    // Kc/Tc from the E6 small-signal experiment.
    let kc = std::f64::consts::FRAC_PI_2;
    let tc = 4.0 * 120e-6;
    let paper = PidGains::pid(0.33 * kc, 0.5 * tc, 0.33 * tc);
    let rows = vec![
        arm("P (0.5 Kc)", PidGains::p(0.5 * kc)),
        arm("PI (0.45 Kc, Tc/1.2)", PidGains::pi(0.45 * kc, tc / 1.2)),
        arm("PID paper rule", paper),
        arm(
            "PID classic ZN",
            PidGains::pid(0.6 * kc, 0.5 * tc, 0.125 * tc),
        ),
        arm(
            "PID no-overshoot",
            PidGains::pid(0.2 * kc, 0.5 * tc, 0.33 * tc),
        ),
        // Detuned gains: on this plant the ±1 clamp masks them entirely —
        // that robustness is itself the finding.
        arm("detuned: Kp 100x", PidGains::p(50.0 * kc)),
        arm(
            "detuned: Ti 500x (sluggish I)",
            PidGains::pid(0.33 * kc, 250.0 * tc, 0.33 * tc),
        ),
        arm(
            "detuned: Td 250x (noisy D)",
            PidGains::pid(0.33 * kc, 0.5 * tc, 82.5 * tc),
        ),
        // Remove the restriction: growth may exceed standard slow-start.
        unclamped_arm("unclamped x8, paper gains", paper, 8.0),
        unclamped_arm("unclamped x64, paper gains", paper, 64.0),
        unclamped_arm("unclamped x64, Kp 100x", PidGains::p(50.0 * kc), 64.0),
    ];
    AblationResult { rows }
}

impl AblationResult {
    /// Render as a table.
    pub fn print(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.label.clone(),
                    r.stalls.to_string(),
                    format!("{:.2}", r.goodput_bps / 1e6),
                    format!("{:.2}", r.ifq_rmse),
                    r.time_to_90pct_s
                        .map(|t| format!("{t:.1}"))
                        .unwrap_or_else(|| "never".into()),
                ]
            })
            .collect();
        ascii_table(
            &[
                "controller",
                "stalls",
                "goodput Mbit/s",
                "IFQ RMSE (pkts)",
                "t to 90% rate (s)",
            ],
            &rows,
        )
    }

    /// CSV rows.
    pub fn to_csv(&self) -> String {
        let mut out =
            String::from("controller,kp,ti,td,stalls,goodput_bps,ifq_rmse,time_to_90pct_s\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{},{:.6},{:.8},{:.8},{},{:.0},{:.3},{}\n",
                r.label.replace(',', ";"),
                r.gains.kp,
                r.gains.ti,
                r.gains.td,
                r.stalls,
                r.goodput_bps,
                r.ifq_rmse,
                r.time_to_90pct_s
                    .map(|t| format!("{t:.2}"))
                    .unwrap_or_else(|| "never".into()),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_is_load_bearing_and_tuned_arms_behave() {
        let r = run_ablation();
        let paper = r.rows.iter().find(|x| x.label == "PID paper rule").unwrap();
        assert_eq!(paper.stalls, 0, "{paper:?}");
        assert!(paper.goodput_bps > 90e6, "{paper:?}");
        assert!(paper.time_to_90pct_s.is_some());
        // Finding 1: with the clamp in place, even grossly detuned gains
        // behave — the saturating actuator does the stabilising.
        for label in [
            "P (0.5 Kc)",
            "detuned: Kp 100x",
            "detuned: Ti 500x (sluggish I)",
        ] {
            let a = r.rows.iter().find(|x| x.label == label).unwrap();
            assert_eq!(a.stalls, 0, "clamped arm stalled: {a:?}");
            assert!(a.goodput_bps > 90e6, "clamped arm slow: {a:?}");
        }
        // Finding 2: lift the clamp and the raw controller is exposed —
        // aggressive gains burst through the queue and stall.
        let wild = r
            .rows
            .iter()
            .find(|x| x.label == "unclamped x64, Kp 100x")
            .unwrap();
        assert!(
            wild.stalls > 0,
            "unclamped aggressive arm should stall: {wild:?}"
        );
    }
}
