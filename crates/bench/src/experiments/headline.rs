//! E2 — the §4 headline: "our scheme is able to achieve 40 % improvement in
//! throughput compared to the standard TCP" on the 100 Mbit/s, 60 ms
//! ANL↔LBNL path — plus the registry's extension variants on the same
//! testbed for comparison (currently SSthreshless Start, arXiv:1401.7146).

use rss_core::plot::{ascii_table, fmt_bps};
use rss_core::{run_many_memo, CcAlgorithm, FlowReport, RunReport, Scenario, SslConfig};

/// Result of the headline-throughput experiment.
#[derive(Debug, Clone)]
pub struct HeadlineResult {
    /// Standard TCP run.
    pub standard: RunReport,
    /// Restricted Slow-Start run.
    pub restricted: RunReport,
    /// SSthreshless Start run (the registry's first extension variant; it
    /// probes the same pipe delay-based and must also avoid the stalls).
    pub ssthreshless: RunReport,
}

/// Run E2 on the paper testbed.
pub fn run_headline() -> HeadlineResult {
    // Memoized batch: Figure 1 and the sweeps revisit the same testbed
    // cells, so a full experiments run pays for each simulation once.
    let cells = [
        Scenario::paper_testbed_standard(),
        Scenario::paper_testbed_restricted(),
        Scenario::paper_testbed(CcAlgorithm::Ssthreshless(SslConfig::default())),
    ];
    let (mut reports, _distinct) = run_many_memo(&cells);
    let ssthreshless = reports.pop().expect("three reports");
    let restricted = reports.pop().expect("three reports");
    let standard = reports.pop().expect("three reports");
    HeadlineResult {
        standard,
        restricted,
        ssthreshless,
    }
}

impl HeadlineResult {
    /// Throughput improvement of restricted over standard, as a fraction
    /// (0.40 would exactly match the paper).
    pub fn improvement(&self) -> f64 {
        self.restricted.flows[0].goodput_bps / self.standard.flows[0].goodput_bps - 1.0
    }

    /// Throughput improvement of SSthreshless Start over standard.
    pub fn improvement_ssthreshless(&self) -> f64 {
        self.ssthreshless.flows[0].goodput_bps / self.standard.flows[0].goodput_bps - 1.0
    }

    fn row(label: &str, f: &FlowReport) -> Vec<String> {
        vec![
            label.to_string(),
            fmt_bps(f.goodput_bps),
            format!("{:.1}%", f.utilization * 100.0),
            f.vars.send_stall.to_string(),
            f.vars.congestion_signals.to_string(),
            (f.vars.max_cwnd / 1448).to_string(),
        ]
    }

    /// Render the headline table.
    pub fn print(&self) -> String {
        let rows = vec![
            Self::row("standard", &self.standard.flows[0]),
            Self::row("restricted", &self.restricted.flows[0]),
            Self::row("ssthreshless", &self.ssthreshless.flows[0]),
        ];
        let mut out = ascii_table(
            &[
                "algorithm",
                "goodput",
                "utilization",
                "send-stalls",
                "cong.signals",
                "max cwnd (seg)",
            ],
            &rows,
        );
        out.push_str(&format!(
            "\nimprovement: {:+.1}%  (paper: ≈ +40%)   ssthreshless: {:+.1}%\n",
            self.improvement() * 100.0,
            self.improvement_ssthreshless() * 100.0
        ));
        out
    }

    /// CSV rows, one per algorithm.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "algorithm,goodput_bps,utilization,send_stalls,congestion_signals,max_cwnd_bytes\n",
        );
        for (label, f) in [
            ("standard", &self.standard.flows[0]),
            ("restricted", &self.restricted.flows[0]),
            ("ssthreshless", &self.ssthreshless.flows[0]),
        ] {
            out.push_str(&format!(
                "{label},{:.0},{:.4},{},{},{}\n",
                f.goodput_bps,
                f.utilization,
                f.vars.send_stall,
                f.vars.congestion_signals,
                f.vars.max_cwnd,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test, one `run_headline()`: the three 25 s testbed simulations
    // dominate this suite's wall time, so every claim shares the result.
    #[test]
    fn headline_improvement_in_papers_ballpark() {
        let r = run_headline();
        let imp = r.improvement();
        // The paper reports +40%; the simulated testbed gives the same
        // direction and magnitude class. Accept anything from +20% up —
        // the invariant is "restricted wins decisively", not the digit.
        assert!(imp > 0.20, "improvement {imp} too small");
        assert!(imp < 2.0, "improvement {imp} implausibly large");
        // Mechanism check: the win comes from eliminating stalls.
        assert_eq!(r.restricted.flows[0].vars.send_stall, 0);
        assert!(r.standard.flows[0].vars.send_stall >= 1);

        // The ssthreshless comparison row: the delay probe leaves
        // slow-start near the pipe size instead of blowing through the
        // IFQ, so it clearly beats the standard baseline. (Reno congestion
        // avoidance later re-walks into the 100-packet IFQ like any Reno
        // flow on this testbed, so a handful of CA-regime stalls are
        // expected; restricted — which feeds back on the IFQ itself —
        // stays the testbed champion. SSthreshless's own showcase is the
        // mis-set-ssthresh LFN scenario.)
        let ssl = r.improvement_ssthreshless();
        assert!(ssl > 0.20, "ssthreshless improvement {ssl} too small");
        assert!(
            r.ssthreshless.flows[0].vars.send_stall <= r.standard.flows[0].vars.send_stall + 2,
            "probe must not stall more than the baseline's own CA regime"
        );
    }
}
