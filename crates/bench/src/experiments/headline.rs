//! E2 — the §4 headline: "our scheme is able to achieve 40 % improvement in
//! throughput compared to the standard TCP" on the 100 Mbit/s, 60 ms
//! ANL↔LBNL path.

use rss_core::plot::{ascii_table, fmt_bps};
use rss_core::{run, RunReport, Scenario};

/// Result of the headline-throughput experiment.
#[derive(Debug, Clone)]
pub struct HeadlineResult {
    /// Standard TCP run.
    pub standard: RunReport,
    /// Restricted Slow-Start run.
    pub restricted: RunReport,
}

/// Run E2 on the paper testbed.
pub fn run_headline() -> HeadlineResult {
    HeadlineResult {
        standard: run(&Scenario::paper_testbed_standard()),
        restricted: run(&Scenario::paper_testbed_restricted()),
    }
}

impl HeadlineResult {
    /// Throughput improvement of restricted over standard, as a fraction
    /// (0.40 would exactly match the paper).
    pub fn improvement(&self) -> f64 {
        self.restricted.flows[0].goodput_bps / self.standard.flows[0].goodput_bps - 1.0
    }

    /// Render the headline table.
    pub fn print(&self) -> String {
        let s = &self.standard.flows[0];
        let r = &self.restricted.flows[0];
        let rows = vec![
            vec![
                "standard".to_string(),
                fmt_bps(s.goodput_bps),
                format!("{:.1}%", s.utilization * 100.0),
                s.vars.send_stall.to_string(),
                s.vars.congestion_signals.to_string(),
                (s.vars.max_cwnd / 1448).to_string(),
            ],
            vec![
                "restricted".to_string(),
                fmt_bps(r.goodput_bps),
                format!("{:.1}%", r.utilization * 100.0),
                r.vars.send_stall.to_string(),
                r.vars.congestion_signals.to_string(),
                (r.vars.max_cwnd / 1448).to_string(),
            ],
        ];
        let mut out = ascii_table(
            &[
                "algorithm",
                "goodput",
                "utilization",
                "send-stalls",
                "cong.signals",
                "max cwnd (seg)",
            ],
            &rows,
        );
        out.push_str(&format!(
            "\nimprovement: {:+.1}%  (paper: ≈ +40%)\n",
            self.improvement() * 100.0
        ));
        out
    }

    /// CSV row pair.
    pub fn to_csv(&self) -> String {
        let s = &self.standard.flows[0];
        let r = &self.restricted.flows[0];
        format!(
            "algorithm,goodput_bps,utilization,send_stalls,congestion_signals,max_cwnd_bytes\n\
             standard,{:.0},{:.4},{},{},{}\n\
             restricted,{:.0},{:.4},{},{},{}\n",
            s.goodput_bps,
            s.utilization,
            s.vars.send_stall,
            s.vars.congestion_signals,
            s.vars.max_cwnd,
            r.goodput_bps,
            r.utilization,
            r.vars.send_stall,
            r.vars.congestion_signals,
            r.vars.max_cwnd,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_improvement_in_papers_ballpark() {
        let r = run_headline();
        let imp = r.improvement();
        // The paper reports +40%; the simulated testbed gives the same
        // direction and magnitude class. Accept anything from +20% up —
        // the invariant is "restricted wins decisively", not the digit.
        assert!(imp > 0.20, "improvement {imp} too small");
        assert!(imp < 2.0, "improvement {imp} implausibly large");
        // Mechanism check: the win comes from eliminating stalls.
        assert_eq!(r.restricted.flows[0].vars.send_stall, 0);
        assert!(r.standard.flows[0].vars.send_stall >= 1);
    }
}
