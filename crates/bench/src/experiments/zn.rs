//! E6 — the Ziegler–Nichols tuning trace of §3.
//!
//! The paper tuned by hand: raise the proportional gain on the live host
//! until the loop oscillates, read off `Kc` and `Tc`, apply
//! `Kp = 0.33 Kc, Ti = 0.5 Tc, Td = 0.33 Tc`. This experiment reproduces the
//! procedure twice:
//!
//! 1. **Closed loop on the full simulated stack** (the honest replication):
//!    a proportional-only restricted controller drives a real slow-start on
//!    the paper testbed for a ladder of gains. Finding: with per-ACK
//!    actuation clamped to ±1 segment, the loop is *unconditionally stable* —
//!    the clamp acts as a rate limiter, so no finite ultimate gain exists on
//!    the saturated plant.
//! 2. **Small-signal plant** (how the gains are actually derived): the IFQ
//!    is an integrator of the controller's per-ACK increments (gain
//!    K = ACK rate) with one ACK interval of dead time; the automated search
//!    of `rss-control` recovers `Kc` and `Tc`, which are validated against
//!    the analytic `Kc = π/(2Kθ)`, `Tc = 4θ`.

use rss_control::{DeadTimePlant, IntegratorPlant};
use rss_core::plot::ascii_table;
use rss_core::{
    find_ultimate_gain, run, CcAlgorithm, PidGains, RssConfig, Scenario, ZnSearchConfig,
};

/// One rung of the proportional-gain ladder on the full stack.
#[derive(Debug, Clone)]
pub struct GainLadderRow {
    /// Proportional gain tried.
    pub kp: f64,
    /// Send-stalls observed.
    pub stalls: u64,
    /// Goodput, bits/s.
    pub goodput_bps: f64,
    /// Standard deviation of the steady-state IFQ depth (oscillation
    /// amplitude indicator).
    pub ifq_sd: f64,
    /// Steady-state mean IFQ depth.
    pub ifq_mean: f64,
}

/// Result of E6.
#[derive(Debug, Clone)]
pub struct ZnExperimentResult {
    /// The on-stack proportional ladder.
    pub ladder: Vec<GainLadderRow>,
    /// Measured ultimate gain from the small-signal plant.
    pub kc: f64,
    /// Measured ultimate period (s).
    pub tc: f64,
    /// Analytic ultimate gain for comparison.
    pub kc_analytic: f64,
    /// Analytic ultimate period (s).
    pub tc_analytic: f64,
    /// The paper-rule gains derived from (kc, tc).
    pub gains: PidGains,
    /// Stalls when the derived gains run on the paper testbed (should be 0).
    pub validation_stalls: u64,
    /// Goodput with the derived gains.
    pub validation_goodput_bps: f64,
}

fn ladder_row(kp: f64) -> GainLadderRow {
    let sc = Scenario::paper_testbed(CcAlgorithm::Restricted(RssConfig::with_gains(PidGains::p(
        kp,
    ))));
    let r = run(&sc);
    let f = &r.flows[0];
    let tail: Vec<f64> = r
        .sender_ifq_series
        .iter()
        .filter(|&&(t, _)| t > 10.0)
        .map(|&(_, v)| v)
        .collect();
    let mean = tail.iter().sum::<f64>() / tail.len().max(1) as f64;
    let var = tail.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / tail.len().max(1) as f64;
    GainLadderRow {
        kp,
        stalls: f.vars.send_stall,
        goodput_bps: f.goodput_bps,
        ifq_sd: var.sqrt(),
        ifq_mean: mean,
    }
}

/// Run E6.
pub fn run_zn() -> ZnExperimentResult {
    // 1. The on-stack gain ladder.
    let ladder: Vec<GainLadderRow> = [0.01, 0.05, 0.2, 0.5, 1.0, 2.0, 5.0]
        .iter()
        .map(|&kp| ladder_row(kp))
        .collect();

    // 2. Small-signal plant: K = ACK rate on the 100 Mbit/s path with
    //    1500 B packets, θ = one packet time.
    let ack_rate = 100_000_000.0 / (8.0 * 1500.0); // 8333.3 / s
    let theta = 1.0 / ack_rate; // 120 µs
    let mut plant = DeadTimePlant::new(IntegratorPlant::new(ack_rate, 0.0), theta);
    let zcfg = ZnSearchConfig {
        kp_lo: 1e-4,
        kp_hi: 1e2,
        dt: theta / 20.0,
        sim_time: theta * 4000.0,
        setpoint: 90.0,
        tolerance: 1e-3,
        sustained_band: 0.05,
    };
    let zn = find_ultimate_gain(&mut plant, &zcfg).expect("ultimate gain search failed");

    // Analytic reference: integrator-plus-dead-time.
    let kc_analytic = std::f64::consts::FRAC_PI_2 / (ack_rate * theta);
    let tc_analytic = 4.0 * theta;

    // 3. Validate the derived gains on the full stack.
    let gains = zn.paper_gains();
    let sc = Scenario::paper_testbed(CcAlgorithm::Restricted(RssConfig::with_gains(gains)));
    let r = run(&sc);

    ZnExperimentResult {
        ladder,
        kc: zn.kc,
        tc: zn.tc,
        kc_analytic,
        tc_analytic,
        gains,
        validation_stalls: r.flows[0].vars.send_stall,
        validation_goodput_bps: r.flows[0].goodput_bps,
    }
}

impl ZnExperimentResult {
    /// Render the trace.
    pub fn print(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .ladder
            .iter()
            .map(|r| {
                vec![
                    format!("{}", r.kp),
                    r.stalls.to_string(),
                    format!("{:.2}", r.goodput_bps / 1e6),
                    format!("{:.1}", r.ifq_mean),
                    format!("{:.2}", r.ifq_sd),
                ]
            })
            .collect();
        let mut out = String::from("P-only gain ladder on the full stack (no instability: the ±1 seg/ACK clamp rate-limits the loop)\n");
        out.push_str(&ascii_table(
            &["Kp", "stalls", "goodput Mbit/s", "IFQ mean", "IFQ sd"],
            &rows,
        ));
        out.push_str(&format!(
            "\nsmall-signal plant: Kc = {:.4} (analytic {:.4}), Tc = {:.6} s (analytic {:.6} s)\n",
            self.kc, self.kc_analytic, self.tc, self.tc_analytic
        ));
        out.push_str(&format!(
            "paper rule: Kp = 0.33·Kc = {:.4}, Ti = 0.5·Tc = {:.6} s, Td = 0.33·Tc = {:.6} s\n",
            self.gains.kp, self.gains.ti, self.gains.td
        ));
        out.push_str(&format!(
            "validation on testbed: stalls = {}, goodput = {:.2} Mbit/s\n",
            self.validation_stalls,
            self.validation_goodput_bps / 1e6
        ));
        out
    }

    /// CSV of the ladder plus a trailer with the tuning outcome.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kp,stalls,goodput_bps,ifq_mean,ifq_sd\n");
        for r in &self.ladder {
            out.push_str(&format!(
                "{},{},{:.0},{:.2},{:.3}\n",
                r.kp, r.stalls, r.goodput_bps, r.ifq_mean, r.ifq_sd
            ));
        }
        out.push_str(&format!(
            "# kc={:.6} tc={:.8} kc_analytic={:.6} tc_analytic={:.8} kp={:.6} ti={:.8} td={:.8} validation_stalls={}\n",
            self.kc,
            self.tc,
            self.kc_analytic,
            self.tc_analytic,
            self.gains.kp,
            self.gains.ti,
            self.gains.td,
            self.validation_stalls
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zn_recovers_analytic_ultimate_gain() {
        let r = run_zn();
        assert!(
            (r.kc - r.kc_analytic).abs() / r.kc_analytic < 0.10,
            "kc {} vs analytic {}",
            r.kc,
            r.kc_analytic
        );
        assert!(
            (r.tc - r.tc_analytic).abs() / r.tc_analytic < 0.10,
            "tc {} vs analytic {}",
            r.tc,
            r.tc_analytic
        );
        // Derived gains must hold the testbed stall-free.
        assert_eq!(r.validation_stalls, 0);
        assert!(r.validation_goodput_bps > 90e6);
        // The saturated full-stack loop never went unstable on the ladder.
        assert!(r.ladder.iter().all(|row| row.stalls == 0));
    }
}
