//! E9 — fairness among flows and the network-congestion boundary.
//!
//! Two questions the paper gestures at but does not measure:
//!
//! * **E9a fairness**: when several flows share one sending host (the
//!   authors' GridFTP world), restricted flows collectively avoid most
//!   stalls and beat standard TCP's aggregate — but because a PID-governed
//!   slow-start has no AIMD dynamics, flows can freeze at *unequal* shares
//!   when nothing perturbs them (visible at n = 2). This experiment pins
//!   both the win and the limitation.
//! * **E9b boundary**: when the bottleneck moves into the network (fast NIC,
//!   slow path — the classic dumbbell), the IFQ rarely fills, so RSS
//!   degenerates to standard TCP: same loss-driven behaviour, no benefit.
//!   This negative result delimits the paper's contribution: it fixes *host*
//!   congestion, not network congestion.

use rss_core::plot::ascii_table;
use rss_core::{
    run, CcAlgorithm, CrossSpec, FlowSpec, RssConfig, Scenario, SimDuration, SimTime,
    TrafficPattern,
};

/// One row of the fairness table.
#[derive(Debug, Clone)]
pub struct FairnessRow {
    /// Algorithm label.
    pub algo: String,
    /// Number of flows sharing the host.
    pub n_flows: usize,
    /// Jain fairness index over per-flow goodput.
    pub jain: f64,
    /// Aggregate goodput, bits/s.
    pub aggregate_goodput_bps: f64,
    /// Total send-stalls.
    pub stalls: u64,
}

/// Result of E9a: n-flow fairness on one host.
#[derive(Debug, Clone)]
pub struct FairnessResult {
    /// All rows.
    pub rows: Vec<FairnessRow>,
}

/// Run E9a. Restricted flows use gains tuned to their per-flow ACK share
/// (`tuned_for(rate/n)`), the natural reading of §3's "the controller gains
/// are configurable" for a shared host.
pub fn run_fairness() -> FairnessResult {
    let mut rows = Vec::new();
    for n in [2usize, 4, 8] {
        for (label, algo) in [
            ("standard", CcAlgorithm::Reno),
            (
                "restricted",
                CcAlgorithm::Restricted(RssConfig::tuned_for(100_000_000 / n as u64, 1500)),
            ),
        ] {
            let mut sc = Scenario::paper_testbed(algo);
            sc.flows = (0..n).map(|_| FlowSpec::bulk(algo)).collect();
            sc.shared_sender_host = true;
            sc.web100_stride = 8;
            let r = run(&sc);
            rows.push(FairnessRow {
                algo: label.to_string(),
                n_flows: n,
                jain: r.fairness(),
                aggregate_goodput_bps: r.total_goodput_bps(),
                stalls: r.total_stalls(),
            });
        }
    }
    FairnessResult { rows }
}

impl FairnessResult {
    /// Cell lookup.
    pub fn cell(&self, algo: &str, n: usize) -> &FairnessRow {
        self.rows
            .iter()
            .find(|r| r.algo == algo && r.n_flows == n)
            .expect("missing cell")
    }

    /// Render as a table.
    pub fn print(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.algo.clone(),
                    r.n_flows.to_string(),
                    format!("{:.4}", r.jain),
                    format!("{:.2}", r.aggregate_goodput_bps / 1e6),
                    r.stalls.to_string(),
                ]
            })
            .collect();
        ascii_table(
            &[
                "algorithm",
                "flows",
                "Jain index",
                "aggregate Mbit/s",
                "stalls",
            ],
            &rows,
        )
    }

    /// CSV rows.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("algorithm,flows,jain,aggregate_goodput_bps,stalls\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{:.6},{:.0},{}\n",
                r.algo, r.n_flows, r.jain, r.aggregate_goodput_bps, r.stalls
            ));
        }
        out
    }
}

/// Result of E9b: behaviour when the bottleneck is in the network.
#[derive(Debug, Clone)]
pub struct FriendlinessResult {
    /// Rows: `(algo, flow_goodput_bps, stalls, loss_events, cross_delivery_ratio)`.
    pub rows: Vec<(String, f64, u64, u64, f64)>,
}

/// Run E9b: 1 Gbit/s NIC into a 100 Mbit/s bottleneck shared with a
/// 30 Mbit/s Poisson stream.
pub fn run_friendliness() -> FriendlinessResult {
    let mut rows = Vec::new();
    for (label, algo, red) in [
        ("standard", CcAlgorithm::Reno, false),
        (
            "restricted",
            CcAlgorithm::Restricted(RssConfig::tuned()),
            false,
        ),
        ("standard+RED", CcAlgorithm::Reno, true),
        (
            "restricted+RED",
            CcAlgorithm::Restricted(RssConfig::tuned()),
            true,
        ),
    ] {
        let mut sc = Scenario::paper_testbed(algo);
        sc.red_bottleneck = red;
        sc.path.access_rate_bps = Some(1_000_000_000);
        sc.host.nic_rate_bps = 1_000_000_000;
        sc.path.router_queue_pkts = 100;
        sc.cross = vec![CrossSpec {
            pattern: TrafficPattern::Poisson {
                rate_bps: 30_000_000,
                pkt_size: 1500,
            },
            start: SimTime::ZERO,
            stop: None,
        }];
        sc.duration = SimDuration::from_secs(25);
        sc.web100_stride = 8;
        let r = run(&sc);
        let f = &r.flows[0];
        rows.push((
            label.to_string(),
            f.goodput_bps,
            f.vars.send_stall,
            f.vars.fast_retran + f.vars.timeouts,
            r.cross_delivery_ratio(),
        ));
    }
    FriendlinessResult { rows }
}

impl FriendlinessResult {
    /// Render as a table.
    pub fn print(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|(a, g, s, l, c)| {
                vec![
                    a.clone(),
                    format!("{:.2}", g / 1e6),
                    s.to_string(),
                    l.to_string(),
                    format!("{:.3}", c),
                ]
            })
            .collect();
        let mut out = String::from(
            "network-bottleneck boundary: 1 Gbit/s NIC -> 100 Mbit/s path + 30 Mbit/s cross\n",
        );
        out.push_str(&ascii_table(
            &[
                "algorithm",
                "flow Mbit/s",
                "stalls",
                "loss events",
                "cross delivery",
            ],
            &rows,
        ));
        out
    }

    /// CSV rows.
    pub fn to_csv(&self) -> String {
        let mut out =
            String::from("algorithm,flow_goodput_bps,stalls,loss_events,cross_delivery_ratio\n");
        for (a, g, s, l, c) in &self.rows {
            out.push_str(&format!("{a},{g:.0},{s},{l},{c:.6}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restricted_dominates_standard_on_shared_host() {
        let r = run_fairness();
        for n in [2usize, 4, 8] {
            let std = r.cell("standard", n);
            let rss = r.cell("restricted", n);
            assert!(
                rss.stalls <= std.stalls,
                "restricted should stall no more than standard at n={n}: {rss:?} vs {std:?}"
            );
            assert!(
                rss.aggregate_goodput_bps >= std.aggregate_goodput_bps,
                "restricted aggregate should win at n={n}"
            );
        }
        // Pinned finding: a PID-governed slow-start has no AIMD dynamics, so
        // two undisturbed flows freeze at unequal shares.
        let rss2 = r.cell("restricted", 2);
        assert!(
            rss2.jain < 0.9,
            "expected the documented fairness limitation at n=2, got Jain {}",
            rss2.jain
        );
        assert_eq!(rss2.stalls, 0);
    }

    #[test]
    fn network_bottleneck_shows_boundary_of_contribution() {
        let r = run_friendliness();
        let std = &r.rows[0];
        let rss = &r.rows[1];
        // With a 10x-faster NIC the IFQ almost never fills: stalls are rare
        // (only post-recovery bursts), and RSS behaves like standard TCP.
        assert!(std.2 <= 5, "too many stalls for a fast NIC: {std:?}");
        assert!(rss.2 <= 5, "too many stalls for a fast NIC: {rss:?}");
        // Both stacks live off loss signals here.
        assert!(std.3 > 0, "expected network loss events: {std:?}");
        let ratio = rss.1 / std.1;
        assert!(
            (0.7..1.3).contains(&ratio),
            "RSS should degenerate to standard here: ratio {ratio}"
        );
    }
}
