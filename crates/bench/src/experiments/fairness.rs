//! E9 — fairness among flows and the network-congestion boundary.
//!
//! Three questions the paper gestures at but does not measure:
//!
//! * **E9a fairness**: when several flows share one sending host (the
//!   authors' GridFTP world), restricted flows collectively avoid most
//!   stalls and beat standard TCP's aggregate — but because a PID-governed
//!   slow-start has no AIMD dynamics, flows can freeze at *unequal* shares
//!   when nothing perturbs them (visible at n = 2). This experiment pins
//!   both the win and the limitation.
//! * **E9b boundary**: when the bottleneck moves into the network (fast NIC,
//!   slow path — the classic dumbbell), the IFQ rarely fills, so RSS
//!   degenerates to standard TCP: same loss-driven behaviour, no benefit.
//!   This negative result delimits the paper's contribution: it fixes *host*
//!   congestion, not network congestion.
//! * **E9c cross-variant**: pairs of *different* registry variants sharing
//!   one network bottleneck — the first measurement of how the schemes
//!   interact rather than how each behaves alone. Per pair: run-level Jain
//!   index, convergence-to-ε time over the windowed goodput series
//!   ([`FairnessReport`]), and per-variant goodput/stall aggregates. The
//!   declarative twin is `scenarios/fairness_shared_bottleneck.json`
//!   (golden-gated); this experiment keeps the pair list easy to extend and
//!   asserts the headline findings (AIMD pairs converge; MIMD vs AIMD does
//!   not).

use rss_core::plot::ascii_table;
use rss_core::{
    run, CcAlgorithm, CrossSpec, FairnessReport, FlowSpec, RssConfig, ScalableConfig, Scenario,
    SimDuration, SimTime, SslConfig, TrafficPattern,
};

/// One row of the fairness table.
#[derive(Debug, Clone)]
pub struct FairnessRow {
    /// Algorithm label.
    pub algo: String,
    /// Number of flows sharing the host.
    pub n_flows: usize,
    /// Jain fairness index over per-flow goodput.
    pub jain: f64,
    /// Aggregate goodput, bits/s.
    pub aggregate_goodput_bps: f64,
    /// Total send-stalls.
    pub stalls: u64,
}

/// Result of E9a: n-flow fairness on one host.
#[derive(Debug, Clone)]
pub struct FairnessResult {
    /// All rows.
    pub rows: Vec<FairnessRow>,
}

/// Run E9a. Restricted flows use gains tuned to their per-flow ACK share
/// (`tuned_for(rate/n)`), the natural reading of §3's "the controller gains
/// are configurable" for a shared host.
pub fn run_fairness() -> FairnessResult {
    let mut rows = Vec::new();
    for n in [2usize, 4, 8] {
        for (label, algo) in [
            ("standard", CcAlgorithm::Reno),
            (
                "restricted",
                CcAlgorithm::Restricted(RssConfig::tuned_for(100_000_000 / n as u64, 1500)),
            ),
        ] {
            let mut sc = Scenario::paper_testbed(algo);
            sc.flows = (0..n).map(|_| FlowSpec::bulk(algo)).collect();
            sc.shared_sender_host = true;
            sc.web100_stride = 8;
            let r = run(&sc);
            rows.push(FairnessRow {
                algo: label.to_string(),
                n_flows: n,
                jain: r.fairness(),
                aggregate_goodput_bps: r.total_goodput_bps(),
                stalls: r.total_stalls(),
            });
        }
    }
    FairnessResult { rows }
}

impl FairnessResult {
    /// Cell lookup.
    pub fn cell(&self, algo: &str, n: usize) -> &FairnessRow {
        self.rows
            .iter()
            .find(|r| r.algo == algo && r.n_flows == n)
            .expect("missing cell")
    }

    /// Render as a table.
    pub fn print(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.algo.clone(),
                    r.n_flows.to_string(),
                    format!("{:.4}", r.jain),
                    format!("{:.2}", r.aggregate_goodput_bps / 1e6),
                    r.stalls.to_string(),
                ]
            })
            .collect();
        ascii_table(
            &[
                "algorithm",
                "flows",
                "Jain index",
                "aggregate Mbit/s",
                "stalls",
            ],
            &rows,
        )
    }

    /// CSV rows.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("algorithm,flows,jain,aggregate_goodput_bps,stalls\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{:.6},{:.0},{}\n",
                r.algo, r.n_flows, r.jain, r.aggregate_goodput_bps, r.stalls
            ));
        }
        out
    }
}

/// One row of E9c: a pair of (possibly different) variants on one network
/// bottleneck.
#[derive(Debug, Clone)]
pub struct CrossVariantRow {
    /// Pair label, e.g. `"restricted vs ssthreshless"`.
    pub pair: String,
    /// The run's fairness metrics (windowed Jain, convergence, per-variant
    /// aggregates).
    pub fairness: FairnessReport,
    /// Aggregate goodput of both flows, bits/s.
    pub aggregate_goodput_bps: f64,
}

/// Result of E9c: cross-variant pairs sharing one bottleneck.
#[derive(Debug, Clone)]
pub struct CrossVariantResult {
    /// One row per pair, in the order run.
    pub rows: Vec<CrossVariantRow>,
}

/// The E9c testbed: the paper's 100 Mbit/s × 60 ms path behind 1 Gbit/s
/// access links and NICs, so the shared bottleneck is the router queue —
/// the same topology as `scenarios/fairness_shared_bottleneck.json`.
fn cross_variant_testbed(a: CcAlgorithm, b: CcAlgorithm) -> Scenario {
    let mut sc = Scenario::paper_testbed(a);
    sc.flows = vec![FlowSpec::bulk(a), FlowSpec::bulk(b)];
    sc.path.access_rate_bps = Some(1_000_000_000);
    sc.host.nic_rate_bps = 1_000_000_000;
    sc.path.router_queue_pkts = 100;
    sc.duration = SimDuration::from_secs(30);
    sc.web100_stride = 8;
    sc.with_auto_rwnd()
}

/// Run E9c: each pair shares the bottleneck for 30 s; fairness is measured
/// over 1 s goodput windows with ε = 0.05.
pub fn run_cross_variant() -> CrossVariantResult {
    let pairs: [(&str, CcAlgorithm, CcAlgorithm); 4] = [
        ("standard vs standard", CcAlgorithm::Reno, CcAlgorithm::Reno),
        (
            "restricted vs ssthreshless",
            CcAlgorithm::Restricted(RssConfig::tuned()),
            CcAlgorithm::Ssthreshless(SslConfig::default()),
        ),
        (
            "highspeed vs scalable",
            CcAlgorithm::HighSpeed,
            CcAlgorithm::Scalable(ScalableConfig::default()),
        ),
        (
            "standard vs scalable",
            CcAlgorithm::Reno,
            CcAlgorithm::Scalable(ScalableConfig::default()),
        ),
    ];
    let rows = pairs
        .into_iter()
        .map(|(label, a, b)| {
            let r = run(&cross_variant_testbed(a, b));
            CrossVariantRow {
                pair: label.to_string(),
                fairness: FairnessReport::from_run(&r, 1.0, 0.05),
                aggregate_goodput_bps: r.total_goodput_bps(),
            }
        })
        .collect();
    CrossVariantResult { rows }
}

impl CrossVariantResult {
    /// Row lookup by pair label.
    pub fn pair(&self, label: &str) -> &CrossVariantRow {
        self.rows
            .iter()
            .find(|r| r.pair == label)
            .expect("missing pair")
    }

    /// Render as a table.
    pub fn print(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                let variants = r
                    .fairness
                    .variants
                    .iter()
                    .map(|v| {
                        format!(
                            "{} {:.2} Mbit/s / {} stalls",
                            v.algo,
                            v.goodput_bps / 1e6,
                            v.stalls
                        )
                    })
                    .collect::<Vec<_>>()
                    .join("; ");
                vec![
                    r.pair.clone(),
                    format!("{:.4}", r.fairness.jain),
                    r.fairness
                        .convergence_s
                        .map(|t| format!("{t:.1}"))
                        .unwrap_or_else(|| "never".into()),
                    format!("{:.2}", r.aggregate_goodput_bps / 1e6),
                    variants,
                ]
            })
            .collect();
        ascii_table(
            &[
                "pair",
                "Jain index",
                "converged s",
                "aggregate Mbit/s",
                "per-variant",
            ],
            &rows,
        )
    }

    /// CSV rows (one per pair × variant, with the pair metrics repeated).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "pair,jain,convergence_s,aggregate_goodput_bps,variant,variant_goodput_bps,variant_stalls\n",
        );
        for r in &self.rows {
            for v in &r.fairness.variants {
                out.push_str(&format!(
                    "{},{:.6},{},{:.0},{},{:.0},{}\n",
                    r.pair,
                    r.fairness.jain,
                    r.fairness
                        .convergence_s
                        .map(|t| format!("{t:.2}"))
                        .unwrap_or_default(),
                    r.aggregate_goodput_bps,
                    v.algo,
                    v.goodput_bps,
                    v.stalls
                ));
            }
        }
        out
    }
}

/// Result of E9b: behaviour when the bottleneck is in the network.
#[derive(Debug, Clone)]
pub struct FriendlinessResult {
    /// Rows: `(algo, flow_goodput_bps, stalls, loss_events, cross_delivery_ratio)`.
    pub rows: Vec<(String, f64, u64, u64, f64)>,
}

/// Run E9b: 1 Gbit/s NIC into a 100 Mbit/s bottleneck shared with a
/// 30 Mbit/s Poisson stream.
pub fn run_friendliness() -> FriendlinessResult {
    let mut rows = Vec::new();
    for (label, algo, red) in [
        ("standard", CcAlgorithm::Reno, false),
        (
            "restricted",
            CcAlgorithm::Restricted(RssConfig::tuned()),
            false,
        ),
        ("standard+RED", CcAlgorithm::Reno, true),
        (
            "restricted+RED",
            CcAlgorithm::Restricted(RssConfig::tuned()),
            true,
        ),
    ] {
        let mut sc = Scenario::paper_testbed(algo);
        if red {
            sc = sc.with_queue(rss_core::QueueDiscipline::Red(
                rss_core::RedParams::for_capacity(100),
            ));
        }
        sc.path.access_rate_bps = Some(1_000_000_000);
        sc.host.nic_rate_bps = 1_000_000_000;
        sc.path.router_queue_pkts = 100;
        sc.cross = vec![CrossSpec {
            pattern: TrafficPattern::Poisson {
                rate_bps: 30_000_000,
                pkt_size: 1500,
            },
            start: SimTime::ZERO,
            stop: None,
        }];
        sc.duration = SimDuration::from_secs(25);
        sc.web100_stride = 8;
        let r = run(&sc);
        let f = &r.flows[0];
        rows.push((
            label.to_string(),
            f.goodput_bps,
            f.vars.send_stall,
            f.vars.fast_retran + f.vars.timeouts,
            r.cross_delivery_ratio(),
        ));
    }
    FriendlinessResult { rows }
}

impl FriendlinessResult {
    /// Render as a table.
    pub fn print(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|(a, g, s, l, c)| {
                vec![
                    a.clone(),
                    format!("{:.2}", g / 1e6),
                    s.to_string(),
                    l.to_string(),
                    format!("{:.3}", c),
                ]
            })
            .collect();
        let mut out = String::from(
            "network-bottleneck boundary: 1 Gbit/s NIC -> 100 Mbit/s path + 30 Mbit/s cross\n",
        );
        out.push_str(&ascii_table(
            &[
                "algorithm",
                "flow Mbit/s",
                "stalls",
                "loss events",
                "cross delivery",
            ],
            &rows,
        ));
        out
    }

    /// CSV rows.
    pub fn to_csv(&self) -> String {
        let mut out =
            String::from("algorithm,flow_goodput_bps,stalls,loss_events,cross_delivery_ratio\n");
        for (a, g, s, l, c) in &self.rows {
            out.push_str(&format!("{a},{g:.0},{s},{l},{c:.6}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restricted_dominates_standard_on_shared_host() {
        let r = run_fairness();
        for n in [2usize, 4, 8] {
            let std = r.cell("standard", n);
            let rss = r.cell("restricted", n);
            assert!(
                rss.stalls <= std.stalls,
                "restricted should stall no more than standard at n={n}: {rss:?} vs {std:?}"
            );
            assert!(
                rss.aggregate_goodput_bps >= std.aggregate_goodput_bps,
                "restricted aggregate should win at n={n}"
            );
        }
        // Pinned finding: a PID-governed slow-start has no AIMD dynamics, so
        // two undisturbed flows freeze at unequal shares.
        let rss2 = r.cell("restricted", 2);
        assert!(
            rss2.jain < 0.9,
            "expected the documented fairness limitation at n=2, got Jain {}",
            rss2.jain
        );
        assert_eq!(rss2.stalls, 0);
    }

    #[test]
    fn cross_variant_pairs_pin_the_convergence_findings() {
        let r = run_cross_variant();
        assert_eq!(r.rows.len(), 4);
        // A symmetric AIMD pair is the fairness baseline: near-perfect index
        // and a measured convergence time.
        let base = r.pair("standard vs standard");
        assert!(base.fairness.jain > 0.99, "jain {}", base.fairness.jain);
        assert!(base.fairness.convergence_s.is_some(), "AIMD must converge");
        // MIMD against AIMD captures the bottleneck: the index drops well
        // below the baseline and scalable out-carries standard.
        let mixed = r.pair("standard vs scalable");
        assert!(
            mixed.fairness.jain < base.fairness.jain - 0.05,
            "expected the documented MIMD capture: {} vs {}",
            mixed.fairness.jain,
            base.fairness.jain
        );
        let std_v = &mixed.fairness.variants[0];
        let sc_v = &mixed.fairness.variants[1];
        assert_eq!(std_v.algo, "standard");
        assert_eq!(sc_v.algo, "scalable");
        assert!(
            sc_v.goodput_bps > std_v.goodput_bps,
            "scalable should out-carry standard: {} vs {}",
            sc_v.goodput_bps,
            std_v.goodput_bps
        );
        // Every pair keeps the shared link busy — the fairness question is
        // about the split, not about wasting the bottleneck.
        for row in &r.rows {
            assert!(
                row.aggregate_goodput_bps > 30e6,
                "{}: aggregate collapsed to {}",
                row.pair,
                row.aggregate_goodput_bps
            );
        }
    }

    #[test]
    fn network_bottleneck_shows_boundary_of_contribution() {
        let r = run_friendliness();
        let std = &r.rows[0];
        let rss = &r.rows[1];
        // With a 10x-faster NIC the IFQ almost never fills: stalls are rare
        // (only post-recovery bursts), and RSS behaves like standard TCP.
        assert!(std.2 <= 5, "too many stalls for a fast NIC: {std:?}");
        assert!(rss.2 <= 5, "too many stalls for a fast NIC: {rss:?}");
        // Both stacks live off loss signals here.
        assert!(std.3 > 0, "expected network loss events: {std:?}");
        let ratio = rss.1 / std.1;
        assert!(
            (0.7..1.3).contains(&ratio),
            "RSS should degenerate to standard here: ratio {ratio}"
        );
    }
}
