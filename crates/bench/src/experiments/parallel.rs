//! E10 — GridFTP-style parallel streams.
//!
//! The authors built GridFTP; its standard trick for big-BDP paths is
//! striping one transfer over N parallel TCP connections from one host.
//! That multiplies slow-start burstiness — N simultaneous exponential ramps
//! into one IFQ — which is precisely the regime the paper's IGrid2002 demo
//! hit. This experiment stripes a 200 MB transfer over 1–16 streams and
//! compares completion time, aggregate goodput and stalls.

use rss_core::plot::ascii_table;
use rss_core::{
    run_many, AppModel, CcAlgorithm, FlowSpec, RssConfig, Scenario, SimDuration, SimTime,
};
use rss_workload::stripe_bytes;

/// One (algorithm, stream count) cell.
#[derive(Debug, Clone)]
pub struct ParallelRow {
    /// Algorithm label.
    pub algo: String,
    /// Number of parallel streams.
    pub streams: u32,
    /// Wall time until every stripe completed (s); `None` if unfinished.
    pub completion_s: Option<f64>,
    /// Aggregate goodput while running, bits/s.
    pub aggregate_goodput_bps: f64,
    /// Total send-stalls across streams.
    pub stalls: u64,
    /// Jain fairness over per-stream goodput.
    pub jain: f64,
}

/// Result of E10.
#[derive(Debug, Clone)]
pub struct ParallelResult {
    /// Transfer size striped across streams, bytes.
    pub total_bytes: u64,
    /// All cells.
    pub rows: Vec<ParallelRow>,
}

/// Run E10: stripe 200 MB over {1, 2, 4, 8, 16} streams.
pub fn run_parallel_streams() -> ParallelResult {
    let total_bytes: u64 = 200 * 1024 * 1024;
    let stream_counts = [1u32, 2, 4, 8, 16];
    let mut scenarios = Vec::new();
    let mut labels = Vec::new();
    for restricted in [false, true] {
        let label = if restricted { "restricted" } else { "standard" };
        for &n in &stream_counts {
            // Restricted streams tune their gains to their ACK share of the
            // shared host (§3: "the controller gains are configurable").
            let algo = if restricted {
                CcAlgorithm::Restricted(RssConfig::tuned_for(100_000_000 / n as u64, 1500))
            } else {
                CcAlgorithm::Reno
            };
            let mut sc = Scenario::paper_testbed(algo);
            sc.flows = stripe_bytes(total_bytes, n)
                .into_iter()
                .map(|bytes| FlowSpec {
                    algo,
                    app: AppModel::Bulk { bytes: Some(bytes) },
                    start: SimTime::ZERO,
                })
                .collect();
            sc.shared_sender_host = true;
            sc.stop_when_complete = true;
            sc.duration = SimDuration::from_secs(120);
            sc.web100_stride = 16;
            scenarios.push(sc);
            labels.push((label.to_string(), n));
        }
    }
    let reports = run_many(&scenarios);
    let rows = labels
        .into_iter()
        .zip(&reports)
        .map(|((algo, streams), rep)| {
            let completion = rep
                .flows
                .iter()
                .map(|f| f.completed_at_s)
                .collect::<Option<Vec<f64>>>()
                .map(|ts| ts.into_iter().fold(0.0f64, f64::max));
            ParallelRow {
                algo,
                streams,
                completion_s: completion,
                aggregate_goodput_bps: total_bytes as f64 * 8.0
                    / completion.unwrap_or(rep.duration_s),
                stalls: rep.total_stalls(),
                jain: rep.fairness(),
            }
        })
        .collect();
    ParallelResult { total_bytes, rows }
}

impl ParallelResult {
    /// Render as a table.
    pub fn print(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.algo.clone(),
                    r.streams.to_string(),
                    r.completion_s
                        .map(|t| format!("{t:.2}"))
                        .unwrap_or_else(|| "unfinished".into()),
                    format!("{:.2}", r.aggregate_goodput_bps / 1e6),
                    r.stalls.to_string(),
                    format!("{:.3}", r.jain),
                ]
            })
            .collect();
        let mut out = format!(
            "striped transfer of {} MB over N parallel streams (one host)\n",
            self.total_bytes / (1024 * 1024)
        );
        out.push_str(&ascii_table(
            &[
                "algorithm",
                "streams",
                "completion (s)",
                "aggregate Mbit/s",
                "stalls",
                "Jain",
            ],
            &rows,
        ));
        out
    }

    /// CSV rows.
    pub fn to_csv(&self) -> String {
        let mut out =
            String::from("algorithm,streams,completion_s,aggregate_goodput_bps,stalls,jain\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{:.0},{},{:.6}\n",
                r.algo,
                r.streams,
                r.completion_s
                    .map(|t| format!("{t:.3}"))
                    .unwrap_or_else(|| "unfinished".into()),
                r.aggregate_goodput_bps,
                r.stalls,
                r.jain
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restricted_striping_completes_faster_with_fewer_stalls() {
        let r = run_parallel_streams();
        for n in [1u32, 4, 16] {
            let std = r
                .rows
                .iter()
                .find(|x| x.algo == "standard" && x.streams == n)
                .unwrap();
            let rss = r
                .rows
                .iter()
                .find(|x| x.algo == "restricted" && x.streams == n)
                .unwrap();
            assert!(
                rss.stalls <= std.stalls,
                "restricted should stall no more than standard at n={n}: {rss:?} vs {std:?}"
            );
            let (Some(ts), Some(tr)) = (std.completion_s, rss.completion_s) else {
                panic!("transfer did not finish: {std:?} {rss:?}");
            };
            // At high stream counts striping itself masks slow-start damage
            // (that is why GridFTP stripes); parity is the expected result
            // there, a decisive win at low counts.
            assert!(
                tr <= ts * 1.05,
                "restricted should be at least at parity at n={n}: {tr} vs {ts}"
            );
        }
        // The single-stream case is the paper's headline: stall-free and
        // decisively faster.
        let std1 = r
            .rows
            .iter()
            .find(|x| x.algo == "standard" && x.streams == 1)
            .unwrap();
        let rss1 = r
            .rows
            .iter()
            .find(|x| x.algo == "restricted" && x.streams == 1)
            .unwrap();
        assert_eq!(rss1.stalls, 0);
        assert!(rss1.completion_s.unwrap() < 0.9 * std1.completion_s.unwrap());
    }
}
