//! E3/E4/E5 — parameter sweeps.
//!
//! * **E3 txqueuelen**: §2 discusses "increasing the size of the soft
//!   components" as the rejected alternative fix — this sweep quantifies it:
//!   standard TCP needs a very deep IFQ to avoid stalls (at the memory cost
//!   the paper objects to), while RSS delivers full throughput at every
//!   depth.
//! * **E4 RTT**: the BDP scaling claim of §1 — the deficit grows with RTT.
//! * **E5 bandwidth**: same, scaling the line rate; RSS gains are retuned
//!   per rate exactly as §3's rule prescribes.

use rss_core::plot::ascii_table;
use rss_core::{CcAlgorithm, RssConfig, Scenario, SimDuration};

pub use rss_core::run_many_memo;

/// One sweep point: the varied parameter plus both algorithms' outcomes.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// The swept parameter value (meaning depends on the sweep).
    pub param: f64,
    /// Standard TCP goodput, bits/s.
    pub std_goodput: f64,
    /// Standard TCP send-stalls.
    pub std_stalls: u64,
    /// Restricted goodput, bits/s.
    pub rss_goodput: f64,
    /// Restricted send-stalls.
    pub rss_stalls: u64,
}

impl SweepRow {
    /// Restricted-over-standard improvement fraction.
    pub fn improvement(&self) -> f64 {
        self.rss_goodput / self.std_goodput - 1.0
    }
}

/// A finished sweep.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Human name of the swept parameter.
    pub param_name: &'static str,
    /// Unit suffix for display.
    pub unit: &'static str,
    /// The rows, in sweep order.
    pub rows: Vec<SweepRow>,
}

fn sweep(
    param_name: &'static str,
    unit: &'static str,
    scenarios: Vec<(f64, Scenario, Scenario)>,
) -> SweepResult {
    // Flatten for the parallel runner: std and rss runs interleaved.
    let mut all = Vec::with_capacity(scenarios.len() * 2);
    for (_, s, r) in &scenarios {
        all.push(s.clone());
        all.push(r.clone());
    }
    let (reports, _unique) = run_many_memo(&all);
    let rows = scenarios
        .iter()
        .enumerate()
        .map(|(i, (param, _, _))| {
            let s = &reports[2 * i].flows[0];
            let r = &reports[2 * i + 1].flows[0];
            SweepRow {
                param: *param,
                std_goodput: s.goodput_bps,
                std_stalls: s.vars.send_stall,
                rss_goodput: r.goodput_bps,
                rss_stalls: r.vars.send_stall,
            }
        })
        .collect();
    SweepResult {
        param_name,
        unit,
        rows,
    }
}

/// E3: sweep the interface-queue depth.
pub fn run_txqueuelen_sweep() -> SweepResult {
    let points = [20u32, 50, 100, 200, 500, 1000];
    let scenarios = points
        .iter()
        .map(|&q| {
            let s = Scenario::paper_testbed_standard().with_txqueuelen(q);
            let r = Scenario::paper_testbed_restricted().with_txqueuelen(q);
            (q as f64, s, r)
        })
        .collect();
    sweep("txqueuelen", "pkts", scenarios)
}

/// E4: sweep the path RTT.
pub fn run_rtt_sweep() -> SweepResult {
    let points_ms = [10u64, 20, 40, 60, 100, 150, 200];
    let scenarios = points_ms
        .iter()
        .map(|&ms| {
            let rtt = SimDuration::from_millis(ms);
            let s = Scenario::paper_testbed_standard()
                .with_rtt(rtt)
                .with_auto_rwnd();
            let r = Scenario::paper_testbed_restricted()
                .with_rtt(rtt)
                .with_auto_rwnd();
            (ms as f64, s, r)
        })
        .collect();
    sweep("RTT", "ms", scenarios)
}

/// E5: sweep the line rate (NIC = path), retuning RSS per rate.
pub fn run_bandwidth_sweep() -> SweepResult {
    let points_mbps = [10u64, 50, 100, 250, 500, 1000];
    let scenarios = points_mbps
        .iter()
        .map(|&mbps| {
            let bps = mbps * 1_000_000;
            let s = Scenario::paper_testbed_standard()
                .with_rate(bps)
                .with_auto_rwnd();
            let mut r =
                Scenario::paper_testbed(CcAlgorithm::Restricted(RssConfig::tuned_for(bps, 1500)))
                    .with_rate(bps)
                    .with_auto_rwnd();
            r.seed = s.seed;
            (mbps as f64, s, r)
        })
        .collect();
    sweep("line rate", "Mbit/s", scenarios)
}

impl SweepResult {
    /// Render as a table.
    pub fn print(&self) -> String {
        let header = format!("{} ({})", self.param_name, self.unit);
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    format!("{}", r.param),
                    format!("{:.2}", r.std_goodput / 1e6),
                    r.std_stalls.to_string(),
                    format!("{:.2}", r.rss_goodput / 1e6),
                    r.rss_stalls.to_string(),
                    format!("{:+.1}%", r.improvement() * 100.0),
                ]
            })
            .collect();
        ascii_table(
            &[
                &header,
                "std Mbit/s",
                "std stalls",
                "rss Mbit/s",
                "rss stalls",
                "improvement",
            ],
            &rows,
        )
    }

    /// CSV rows.
    pub fn to_csv(&self) -> String {
        let mut out = format!(
            "{},std_goodput_bps,std_stalls,rss_goodput_bps,rss_stalls,improvement\n",
            self.param_name.replace(' ', "_")
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{},{:.0},{},{:.0},{},{:.4}\n",
                r.param,
                r.std_goodput,
                r.std_stalls,
                r.rss_goodput,
                r.rss_stalls,
                r.improvement()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rss_core::run_many;

    #[test]
    fn memoized_runner_executes_distinct_configs_once() {
        let base = Scenario::paper_testbed_standard()
            .with_rate(10_000_000)
            .with_rtt(SimDuration::from_millis(10))
            .with_duration(SimDuration::from_millis(400));
        let other = base.clone().with_seed(7);
        // Three cells, two distinct configs: the duplicate shares one run.
        let cells = vec![base.clone(), other.clone(), base.clone()];
        let (reports, unique) = run_many_memo(&cells);
        assert_eq!(unique, 2, "duplicate cell must not re-run");
        assert_eq!(reports.len(), 3);
        assert_eq!(
            reports[0].flows[0].vars.data_bytes_out,
            reports[2].flows[0].vars.data_bytes_out
        );
        assert_eq!(reports[0].seed, base.seed);
        assert_eq!(reports[1].seed, 7);
        // And the memoized path matches the plain runner bit-for-bit.
        let direct = run_many(&cells);
        for (a, b) in reports.iter().zip(&direct) {
            assert_eq!(
                a.flows[0].vars.data_bytes_out,
                b.flows[0].vars.data_bytes_out
            );
            assert_eq!(a.events_processed, b.events_processed);
        }
    }

    #[test]
    fn txqueuelen_sweep_shows_papers_tradeoff() {
        let r = run_txqueuelen_sweep();
        assert_eq!(r.rows.len(), 6);
        // Restricted never stalls at any queue depth.
        assert!(r.rows.iter().all(|row| row.rss_stalls == 0), "{r:?}");
        // At the paper's txqueuelen = 100 the improvement is large.
        let at_100 = r.rows.iter().find(|row| row.param == 100.0).unwrap();
        assert!(at_100.improvement() > 0.2, "{at_100:?}");
        // A very deep queue rescues standard TCP (the paper's rejected
        // memory-for-throughput trade): the gap narrows.
        let at_1000 = r.rows.iter().find(|row| row.param == 1000.0).unwrap();
        assert!(
            at_1000.improvement() < at_100.improvement(),
            "deep IFQ should narrow the gap: {r:?}"
        );
    }
}
