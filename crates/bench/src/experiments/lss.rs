//! E8 — Restricted Slow-Start vs RFC 3742 Limited Slow-Start.
//!
//! RFC 3742 (published the year before the paper) moderates slow-start
//! open-loop: growth slows to at most `max_ssthresh/2` per RTT once the
//! window passes `max_ssthresh`. The paper's scheme closes a feedback loop
//! on the actual saturating resource instead. This experiment compares the
//! three on the paper testbed across IFQ depths: the open-loop cap must be
//! hand-matched to the queue to avoid stalls, while the closed loop adapts.

use rss_core::plot::ascii_table;
use rss_core::{run_many, CcAlgorithm, RssConfig, Scenario};

/// One (algorithm, txqueuelen) cell.
#[derive(Debug, Clone)]
pub struct LssRow {
    /// Algorithm label.
    pub algo: String,
    /// IFQ depth for this run.
    pub txqueuelen: u32,
    /// Goodput, bits/s.
    pub goodput_bps: f64,
    /// Send-stalls.
    pub stalls: u64,
    /// Time to fully utilize the path, if reached (s).
    pub time_to_90pct_s: Option<f64>,
}

/// Result of E8.
#[derive(Debug, Clone)]
pub struct LssResult {
    /// All cells, grouped by algorithm then queue depth.
    pub rows: Vec<LssRow>,
}

/// Run E8.
pub fn run_lss() -> LssResult {
    let queue_depths = [50u32, 100, 200];
    let algos: Vec<(&str, CcAlgorithm)> = vec![
        ("standard", CcAlgorithm::Reno),
        (
            "limited (RFC 3742)",
            CcAlgorithm::Limited { max_ssthresh: None },
        ),
        (
            "restricted (paper)",
            CcAlgorithm::Restricted(RssConfig::tuned()),
        ),
    ];
    let mut scenarios = Vec::new();
    let mut labels = Vec::new();
    for &(name, algo) in &algos {
        for &q in &queue_depths {
            scenarios.push(Scenario::paper_testbed(algo).with_txqueuelen(q));
            labels.push((name.to_string(), q));
        }
    }
    let reports = run_many(&scenarios);
    let rows = labels
        .into_iter()
        .zip(&reports)
        .map(|((algo, q), rep)| {
            let f = &rep.flows[0];
            let window = 0.5;
            let mut t90 = None;
            let mut t = window;
            while t <= rep.duration_s {
                if f.goodput_in_window_bps(t - window, t) >= 0.9 * 100e6 {
                    t90 = Some(t);
                    break;
                }
                t += window;
            }
            LssRow {
                algo,
                txqueuelen: q,
                goodput_bps: f.goodput_bps,
                stalls: f.vars.send_stall,
                time_to_90pct_s: t90,
            }
        })
        .collect();
    LssResult { rows }
}

impl LssResult {
    /// Render as a table.
    pub fn print(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.algo.clone(),
                    r.txqueuelen.to_string(),
                    format!("{:.2}", r.goodput_bps / 1e6),
                    r.stalls.to_string(),
                    r.time_to_90pct_s
                        .map(|t| format!("{t:.1}"))
                        .unwrap_or_else(|| "never".into()),
                ]
            })
            .collect();
        ascii_table(
            &[
                "algorithm",
                "txqueuelen",
                "goodput Mbit/s",
                "stalls",
                "t to 90% (s)",
            ],
            &rows,
        )
    }

    /// CSV rows.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("algorithm,txqueuelen,goodput_bps,stalls,time_to_90pct_s\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{:.0},{},{}\n",
                r.algo.replace(',', ";"),
                r.txqueuelen,
                r.goodput_bps,
                r.stalls,
                r.time_to_90pct_s
                    .map(|t| format!("{t:.2}"))
                    .unwrap_or_else(|| "never".into()),
            ));
        }
        out
    }

    /// Cells for one algorithm.
    pub fn for_algo(&self, name: &str) -> Vec<&LssRow> {
        self.rows
            .iter()
            .filter(|r| r.algo.starts_with(name))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_loop_beats_open_loop_cap() {
        let r = run_lss();
        // Restricted: stall-free at every queue depth.
        assert!(r.for_algo("restricted").iter().all(|x| x.stalls == 0));
        // At the shallow 50-packet IFQ the RFC 3742 default cap
        // (100 segments) is too high — it still overflows the queue, while
        // the feedback loop adapts.
        let lss_50 = r
            .for_algo("limited")
            .into_iter()
            .find(|x| x.txqueuelen == 50)
            .unwrap()
            .clone();
        let rss_50 = r
            .for_algo("restricted")
            .into_iter()
            .find(|x| x.txqueuelen == 50)
            .unwrap()
            .clone();
        assert!(
            lss_50.stalls > 0,
            "open-loop cap unexpectedly avoided stalls: {lss_50:?}"
        );
        assert!(
            rss_50.goodput_bps > lss_50.goodput_bps,
            "{rss_50:?} vs {lss_50:?}"
        );
        // Everyone beats or matches standard.
        for q in [50u32, 100, 200] {
            let std = r
                .rows
                .iter()
                .find(|x| x.algo == "standard" && x.txqueuelen == q)
                .unwrap();
            let rss = r
                .for_algo("restricted")
                .into_iter()
                .find(|x| x.txqueuelen == q)
                .unwrap()
                .clone();
            assert!(rss.goodput_bps > std.goodput_bps * 1.05, "q={q}");
        }
    }
}
