//! E1 — Figure 1: cumulative send-stall signals over time.
//!
//! The paper's only figure compares the cumulative count of send-stall
//! congestion signals over a 25-unit window for standard Linux TCP against
//! the proposed scheme: the standard stack shows a staircase climbing to ~4
//! while the proposed scheme stays at ~0. The exact stair count depends on
//! how Linux 2.4 punished a stall (the paper does not pin it down), so this
//! experiment renders the staircase for both modelled stall responses
//! (CWR-style halving, Tahoe-style restart) alongside Restricted Slow-Start.

use rss_core::plot::{ascii_chart, Series};
use rss_core::{run_many_memo, Scenario, StallResponse};

/// One staircase series.
#[derive(Debug, Clone)]
pub struct Staircase {
    /// Legend label.
    pub label: String,
    /// `(t_s, cumulative stalls)`.
    pub points: Vec<(f64, u64)>,
    /// Final goodput, bits/s.
    pub goodput_bps: f64,
}

/// Result of the Figure 1 experiment.
#[derive(Debug, Clone)]
pub struct Fig1Result {
    /// All rendered staircases.
    pub series: Vec<Staircase>,
    /// Horizon in seconds.
    pub end_s: f64,
}

/// Run E1 on the paper testbed.
pub fn run_fig1() -> Fig1Result {
    let end_s = 25.0;
    let step_s = 0.5;
    let mut series = Vec::new();

    let mut variants: Vec<(String, Scenario)> = vec![
        (
            "standard (CWR stall response)".into(),
            Scenario::paper_testbed_standard(),
        ),
        ("restricted slow-start".into(), {
            Scenario::paper_testbed_restricted()
        }),
    ];
    let mut tahoe = Scenario::paper_testbed_standard();
    tahoe.tcp.stall_response = StallResponse::RestartFromOne;
    variants.push(("standard (restart stall response)".into(), tahoe));

    // One memoized batch: the standard/restricted testbeds are shared with
    // E2 (headline) and the sweeps, so within one experiments process each
    // 25 s simulation runs exactly once.
    let cells: Vec<Scenario> = variants.iter().map(|(_, sc)| sc.clone()).collect();
    let (reports, _distinct) = run_many_memo(&cells);
    for ((label, _), r) in variants.into_iter().zip(&reports) {
        let f = &r.flows[0];
        series.push(Staircase {
            label,
            points: f.stall_staircase(end_s, step_s),
            goodput_bps: f.goodput_bps,
        });
    }

    Fig1Result { series, end_s }
}

impl Fig1Result {
    /// Render the figure as an ASCII chart plus the stall totals.
    pub fn print(&self) -> String {
        let glyphs = ['#', 'o', '+', 'x'];
        let float_series: Vec<Vec<(f64, f64)>> = self
            .series
            .iter()
            .map(|s| s.points.iter().map(|&(t, c)| (t, c as f64)).collect())
            .collect();
        let plot_series: Vec<Series<'_>> = self
            .series
            .iter()
            .zip(&float_series)
            .enumerate()
            .map(|(i, (s, pts))| Series {
                label: &s.label,
                points: pts,
                glyph: glyphs[i % glyphs.len()],
            })
            .collect();
        let mut out = ascii_chart(
            "Figure 1: cumulative send-stall signals vs time (s)",
            &plot_series,
            70,
            12,
        );
        for s in &self.series {
            out.push_str(&format!(
                "  {:<36} total stalls {:>2}   goodput {:>6.2} Mbit/s\n",
                s.label,
                s.points.last().map(|&(_, c)| c).unwrap_or(0),
                s.goodput_bps / 1e6
            ));
        }
        out
    }

    /// CSV: `time_s,<label1>,<label2>,...`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time_s");
        for s in &self.series {
            out.push(',');
            out.push_str(&s.label.replace(',', ";"));
        }
        out.push('\n');
        let n = self.series[0].points.len();
        for i in 0..n {
            out.push_str(&format!("{:.2}", self.series[0].points[i].0));
            for s in &self.series {
                out.push_str(&format!(",{}", s.points[i].1));
            }
            out.push('\n');
        }
        out
    }

    /// The paper's qualitative claims, checkable in tests: the standard
    /// stack accumulates stalls; the proposed scheme stays at zero.
    pub fn shape_holds(&self) -> bool {
        let std_stalls = self.series[0].points.last().map(|&(_, c)| c).unwrap_or(0);
        let rss_stalls = self.series[1].points.last().map(|&(_, c)| c).unwrap_or(0);
        std_stalls >= 1 && rss_stalls == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_shape_reproduces() {
        let r = run_fig1();
        assert!(r.shape_holds(), "staircase-vs-flat shape lost: {r:?}");
        // Restricted must also beat standard on throughput while at it.
        assert!(r.series[1].goodput_bps > r.series[0].goodput_bps);
        let csv = r.to_csv();
        assert!(csv.lines().count() > 40);
        assert!(r.print().contains("Figure 1"));
    }
}
