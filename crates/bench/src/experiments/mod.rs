//! The experiment catalogue (DESIGN.md §5).
//!
//! | id  | artifact | module |
//! |-----|----------|--------|
//! | E1  | Figure 1: cumulative send-stalls vs time | [`fig1`] |
//! | E2  | §4 headline: +40 % throughput | [`headline`] |
//! | E3  | txqueuelen sweep (§2 discussion) | [`sweeps`] |
//! | E4  | RTT sweep | [`sweeps`] |
//! | E5  | bandwidth sweep | [`sweeps`] |
//! | E6  | Ziegler–Nichols tuning trace (§3) | [`zn`] |
//! | E7  | controller ablation (§3) | [`ablation`] |
//! | E8  | vs RFC 3742 Limited Slow-Start | [`lss`] |
//! | E9  | fairness, cross-variant pairs & network-congestion boundary | [`fairness`] |
//! | E10 | GridFTP-style parallel streams | [`parallel`] |

pub mod ablation;
pub mod fairness;
pub mod fig1;
pub mod headline;
pub mod lss;
pub mod parallel;
pub mod sweeps;
pub mod zn;

pub use ablation::{run_ablation, AblationResult};
pub use fairness::{
    run_cross_variant, run_fairness, run_friendliness, CrossVariantResult, CrossVariantRow,
    FairnessResult, FriendlinessResult,
};
pub use fig1::{run_fig1, Fig1Result};
pub use headline::{run_headline, HeadlineResult};
pub use lss::{run_lss, LssResult};
pub use parallel::{run_parallel_streams, ParallelResult};
pub use sweeps::{
    run_bandwidth_sweep, run_many_memo, run_rtt_sweep, run_txqueuelen_sweep, SweepResult,
};
pub use zn::{run_zn, ZnExperimentResult};
