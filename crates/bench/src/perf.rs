//! Simulator perf harness: events/sec on the paper testbeds, tracked as a
//! machine-readable trajectory.
//!
//! Every figure and table in the reproduction re-runs the 25 s testbed
//! through `Engine::run_until`, so raw simulator speed bounds how much
//! scenario space the harness can afford to explore. This module times those
//! runs, computes events/sec from [`rss_core::RunReport::events_processed`], and
//! writes `BENCH_simulator.json` at the workspace root so the perf
//! trajectory is captured for every PR (CI runs it in `--quick` mode and
//! uploads the file as an artifact).
//!
//! ```text
//! cargo run --release -p rss-bench --bin perf            # 5 iterations
//! cargo run --release -p rss-bench --bin perf -- --quick # 2 iterations
//! ```

use rss_core::plot::ascii_table;
use rss_core::{run, AppModel, CcAlgorithm, FlowSpec, Scenario, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::time::Instant;

/// Trajectory-file schema version (bump on incompatible shape changes).
pub const TRAJECTORY_SCHEMA: u32 = 1;

/// One timed workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerfRow {
    /// Workload name (matches the criterion target in the `simulator` group).
    pub name: String,
    /// Events the engine dispatched in one run (identical across
    /// iterations — the simulator is deterministic).
    pub events: u64,
    /// Best (minimum) wall time across iterations, milliseconds.
    pub wall_ms: f64,
    /// Events per second at the best wall time.
    pub events_per_sec: f64,
    /// Mean wall time across iterations, milliseconds.
    pub wall_ms_mean: f64,
}

/// A finished perf sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerfReport {
    /// Schema version of the trajectory file.
    pub schema: u32,
    /// Benchmark group the rows belong to.
    pub bench: String,
    /// Iterations per workload.
    pub iters: u32,
    /// Per-workload results.
    pub rows: Vec<PerfRow>,
}

/// Time `iters` runs of each `(name, scenario)` workload.
pub fn run_perf_scenarios(workloads: &[(&str, Scenario)], iters: u32) -> PerfReport {
    assert!(iters > 0);
    let mut rows = Vec::with_capacity(workloads.len());
    for (name, sc) in workloads {
        let mut best = f64::INFINITY;
        let mut total = 0.0;
        let mut events = 0;
        for _ in 0..iters {
            let t0 = Instant::now();
            let report = run(sc);
            let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
            assert!(
                events == 0 || events == report.events_processed,
                "non-deterministic event count for {name}"
            );
            events = report.events_processed;
            best = best.min(wall_ms);
            total += wall_ms;
        }
        rows.push(PerfRow {
            name: name.to_string(),
            events,
            wall_ms: best,
            events_per_sec: events as f64 / (best / 1e3),
            wall_ms_mean: total / iters as f64,
        });
    }
    PerfReport {
        schema: TRAJECTORY_SCHEMA,
        bench: "simulator".into(),
        iters,
        rows,
    }
}

/// The shard-scaling workload: 10k Reno flows on a 1 Gbit/s, 60 ms
/// dumbbell for 2 simulated seconds — the same geometry as
/// `scenarios/manyflow_dumbbell.json`. `shards = None` is the classic
/// serial world; `Some(k)` is the conservative-lookahead executor with `k`
/// domains.
pub fn manyflow(shards: Option<u32>) -> Scenario {
    let mut sc = Scenario::paper_testbed(CcAlgorithm::Reno)
        .with_rate(1_000_000_000)
        .with_rtt(SimDuration::from_millis(60))
        .with_duration(SimDuration::from_secs(2))
        .with_access_delay(SimDuration::from_millis(1));
    sc.path.router_queue_pkts = 1000;
    sc.flows = (0..10_000)
        .map(|_| FlowSpec {
            algo: CcAlgorithm::Reno,
            app: AppModel::Bulk { bytes: None },
            start: SimTime::ZERO,
        })
        .collect();
    sc.web100_stride = 1024;
    sc.sample_interval = SimDuration::from_millis(500);
    sc.shards = shards;
    sc
}

/// Time the paper testbeds plus the shard-scaling ladder (the `simulator`
/// bench group's workloads). The `shard_scaling_*` rows measure the
/// parallel executor at 1/2/4/8 domains against the legacy serial world on
/// the 10k-flow dumbbell; their wall times are recorded in the trajectory
/// but exempt from the regression gate (parallel speedup is a property of
/// the host's core count — see [`PerfReport::check_against`]).
/// `manyflow_serial` is the same serial 10k-flow run under a gated name:
/// it pins the many-flow hot path (packet arena, lazy timer cancellation,
/// envelope batching) against wall-time regressions the way the paper rows
/// pin the single-flow path.
pub fn run_perf(iters: u32) -> PerfReport {
    run_perf_scenarios(
        &[
            ("paper_run_standard_25s", Scenario::paper_testbed_standard()),
            (
                "paper_run_restricted_25s",
                Scenario::paper_testbed_restricted(),
            ),
            ("manyflow_serial", manyflow(None)),
            ("shard_scaling_serial_legacy", manyflow(None)),
            ("shard_scaling_1", manyflow(Some(1))),
            ("shard_scaling_2", manyflow(Some(2))),
            ("shard_scaling_4", manyflow(Some(4))),
            ("shard_scaling_8", manyflow(Some(8))),
        ],
        iters,
    )
}

impl PerfReport {
    /// Render as a table.
    pub fn print(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    r.events.to_string(),
                    format!("{:.1}", r.wall_ms),
                    format!("{:.1}", r.wall_ms_mean),
                    format!("{:.2}", r.events_per_sec / 1e6),
                ]
            })
            .collect();
        ascii_table(
            &["workload", "events", "best ms", "mean ms", "Mevents/s"],
            &rows,
        )
    }

    /// Serialize the trajectory as JSON.
    pub fn to_json(&self) -> String {
        let mut s = serde::to_json_string(self);
        s.push('\n');
        s
    }

    /// Parse a trajectory back from its [`Self::to_json`] rendering — the
    /// regression gate reads the committed baseline through this.
    pub fn from_json(text: &str) -> Result<Self, serde::de::Error> {
        serde::from_json_str(text)
    }

    /// Read a trajectory file.
    pub fn read_from(path: &std::path::Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Write the trajectory to `path` (creating parent directories — a
    /// fresh clone has no artifact tree yet).
    pub fn write_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json())
    }

    /// Regression gate: compare this (fresh) trajectory against a committed
    /// baseline. Returns the list of violations — workloads whose best wall
    /// time regressed by more than `tolerance` (0.25 = 25 %) — or an error
    /// string when the reports are not comparable. New workloads (absent
    /// from the baseline) pass; vanished workloads fail.
    pub fn check_against(
        &self,
        baseline: &PerfReport,
        tolerance: f64,
    ) -> Result<Vec<String>, String> {
        if baseline.schema != self.schema {
            return Err(format!(
                "trajectory schema mismatch: baseline {} vs current {}",
                baseline.schema, self.schema
            ));
        }
        let mut violations = Vec::new();
        for base in &baseline.rows {
            let Some(cur) = self.rows.iter().find(|r| r.name == base.name) else {
                violations.push(format!(
                    "workload `{}` vanished from the perf sweep",
                    base.name
                ));
                continue;
            };
            if cur.events != base.events {
                // Event counts are deterministic; a change is a *behavior*
                // change, which the scenario goldens gate — only flag the
                // wall-time dimension here when events still match.
                continue;
            }
            if base.name.starts_with("shard_scaling") {
                // Shard-ladder wall times measure parallel speedup, which
                // is a property of the host's core count, not of the code:
                // CI runners, laptops, and single-core containers disagree
                // wildly. The rows still gate behavior through the event
                // count above; wall time is trajectory-only.
                continue;
            }
            let limit = base.wall_ms * (1.0 + tolerance);
            if cur.wall_ms > limit {
                violations.push(format!(
                    "workload `{}`: {:.1} ms vs baseline {:.1} ms (> {:.0}% regression)",
                    base.name,
                    cur.wall_ms,
                    base.wall_ms,
                    tolerance * 100.0
                ));
            }
        }
        Ok(violations)
    }

    /// Write the trajectory to its canonical home, `BENCH_simulator.json`
    /// at the workspace root. Returns the path.
    pub fn write_trajectory(&self) -> PathBuf {
        let path = crate::workspace_root().join("BENCH_simulator.json");
        self.write_to(&path).expect("write trajectory json");
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rss_core::SimDuration;

    fn tiny(seed: u64) -> Scenario {
        Scenario::paper_testbed_standard()
            .with_rate(10_000_000)
            .with_rtt(SimDuration::from_millis(10))
            .with_duration(SimDuration::from_millis(400))
            .with_seed(seed)
    }

    #[test]
    fn perf_rows_are_consistent() {
        let report = run_perf_scenarios(&[("tiny", tiny(1))], 2);
        assert_eq!(report.rows.len(), 1);
        let r = &report.rows[0];
        assert!(r.events > 0);
        assert!(r.wall_ms > 0.0 && r.wall_ms <= r.wall_ms_mean * 1.0001);
        let expect = r.events as f64 / (r.wall_ms / 1e3);
        assert!((r.events_per_sec - expect).abs() / expect < 1e-9);
        assert!(report.print().contains("Mevents/s"));
    }

    #[test]
    fn regression_gate_flags_slowdowns_and_vanished_workloads() {
        let base = PerfReport {
            schema: TRAJECTORY_SCHEMA,
            bench: "simulator".into(),
            iters: 2,
            rows: vec![
                PerfRow {
                    name: "a".into(),
                    events: 100,
                    wall_ms: 100.0,
                    events_per_sec: 1000.0,
                    wall_ms_mean: 110.0,
                },
                PerfRow {
                    name: "gone".into(),
                    events: 5,
                    wall_ms: 1.0,
                    events_per_sec: 5000.0,
                    wall_ms_mean: 1.0,
                },
            ],
        };
        let mut fresh = base.clone();
        fresh.rows.remove(1);
        // Within tolerance: ok.
        fresh.rows[0].wall_ms = 120.0;
        let v = fresh.check_against(&base, 0.25).unwrap();
        assert_eq!(v.len(), 1, "{v:?}"); // only the vanished workload
        assert!(v[0].contains("vanished"), "{v:?}");
        // Past tolerance: flagged.
        fresh.rows[0].wall_ms = 130.0;
        let v = fresh.check_against(&base, 0.25).unwrap();
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().any(|m| m.contains("workload `a`")), "{v:?}");
        // Different event count = behavior change, not a perf regression.
        fresh.rows[0].events = 99;
        let v = fresh.check_against(&base, 0.25).unwrap();
        assert_eq!(v.len(), 1, "{v:?}");
        // Round-trip the baseline through JSON like the gate does.
        let back = PerfReport::from_json(&base.to_json()).unwrap();
        assert_eq!(back.to_json(), base.to_json());
    }

    #[test]
    fn gate_exempts_shard_scaling_wall_time_but_not_events() {
        let base = PerfReport {
            schema: TRAJECTORY_SCHEMA,
            bench: "simulator".into(),
            iters: 2,
            rows: vec![PerfRow {
                name: "shard_scaling_4".into(),
                events: 100,
                wall_ms: 100.0,
                events_per_sec: 1000.0,
                wall_ms_mean: 110.0,
            }],
        };
        let mut fresh = base.clone();
        // A 10x wall-time blowup on a shard row passes: speedup depends on
        // the host's core count, not the code.
        fresh.rows[0].wall_ms = 1000.0;
        assert!(fresh.check_against(&base, 0.25).unwrap().is_empty());
        // But the row must still exist...
        let empty = PerfReport {
            rows: vec![],
            ..base.clone()
        };
        let v = empty.check_against(&base, 0.25).unwrap();
        assert_eq!(v.len(), 1, "{v:?}");
        // ...and an event-count change is a behavior change for the goldens,
        // never a wall-time violation here.
        fresh.rows[0].events = 99;
        assert!(fresh.check_against(&base, 0.25).unwrap().is_empty());
    }

    #[test]
    fn manyflow_workload_is_the_scenario_file_geometry() {
        let sc = manyflow(Some(4));
        assert_eq!(sc.flows.len(), 10_000);
        assert_eq!(sc.path.rate_bps, 1_000_000_000);
        assert_eq!(sc.path.router_queue_pkts, 1000);
        assert_eq!(sc.shards, Some(4));
        // The lookahead precondition the sharded executor asserts.
        assert!(sc.path.rtt > sc.path.access_delay * 4);
    }

    #[test]
    fn trajectory_json_round_trips_shape() {
        let report = run_perf_scenarios(&[("tiny", tiny(2))], 1);
        let json = report.to_json();
        assert!(json.contains("\"bench\":\"simulator\""), "{json}");
        assert!(json.contains("\"schema\":1"), "{json}");
        assert!(json.contains("\"name\":\"tiny\""), "{json}");
        let path = std::env::temp_dir().join("rss_bench_trajectory_test.json");
        report.write_to(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), json);
        let _ = std::fs::remove_file(&path);
    }
}
