//! Calibration probe (internal): sweep P-only gains for the restricted
//! slow-start controller on the paper testbed and report IFQ oscillation,
//! stall counts and goodput, to locate Kc/Tc for the Ziegler-Nichols rule.

use rss_core::{run, CcAlgorithm, PidGains, RssConfig, Scenario};

fn probe(gains: PidGains, label: &str) {
    let sc = Scenario::paper_testbed(CcAlgorithm::Restricted(RssConfig::with_gains(gains)));
    let r = run(&sc);
    let f = &r.flows[0];
    // Measure IFQ oscillation in the steady tail (t > 10 s).
    let tail: Vec<(f64, f64)> = r
        .sender_ifq_series
        .iter()
        .copied()
        .filter(|&(t, _)| t > 10.0)
        .collect();
    let mean: f64 = tail.iter().map(|&(_, v)| v).sum::<f64>() / tail.len().max(1) as f64;
    let var: f64 = tail
        .iter()
        .map(|&(_, v)| (v - mean) * (v - mean))
        .sum::<f64>()
        / tail.len().max(1) as f64;
    // Count mean-crossings to estimate the oscillation period.
    let mut crossings = Vec::new();
    for w in tail.windows(2) {
        if (w[0].1 - mean) <= 0.0 && (w[1].1 - mean) > 0.0 {
            crossings.push(w[1].0);
        }
    }
    let period = if crossings.len() > 2 {
        (crossings.last().unwrap() - crossings.first().unwrap()) / (crossings.len() - 1) as f64
    } else {
        f64::NAN
    };
    println!(
        "{label:>28}: goodput {:6.2} Mbit/s stalls {:3} ifq mean {:6.1} sd {:6.2} period {:7.4}s crossings {}",
        f.goodput_bps / 1e6,
        f.vars.send_stall,
        mean,
        var.sqrt(),
        period,
        crossings.len()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() > 1 && args[1] == "p-sweep" {
        for kp in [0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0] {
            probe(PidGains::p(kp), &format!("P kp={kp}"));
        }
    } else if args.len() > 1 && args[1] == "pid-sweep" {
        // Small-signal plant: integrator K = ack_rate = 8333 pkt/s per unit
        // output, dead time θ = one ACK interval = 120 µs.
        // Kc = π/(2Kθ) ≈ 1.571, Tc = 4θ = 480 µs; paper rule 0.33/0.5/0.33.
        probe(
            PidGains::pid(0.52, 0.000_24, 0.000_158),
            "paper-rule (θ=120µs)",
        );
        // θ = RTT variant (sluggish outer loop view).
        probe(PidGains::pid(0.001, 0.12, 0.0792), "paper-rule (θ=60ms)");
        probe(PidGains::pi(0.52, 0.000_24), "PI (θ=120µs)");
        probe(PidGains::pi(0.05, 0.01), "PI mild");
        probe(RssConfig::tuned().gains, "old default");
    } else if args.len() > 1 && args[1] == "stall-response" {
        for (label, resp) in [
            ("cwr", rss_core::StallResponse::Cwr),
            ("restart", rss_core::StallResponse::RestartFromOne),
            ("ignore", rss_core::StallResponse::Ignore),
        ] {
            let mut sc = Scenario::paper_testbed_standard();
            sc.tcp.stall_response = resp;
            let r = run(&sc);
            let f = &r.flows[0];
            println!(
                "{label:>8}: goodput {:.4} Mbit/s stalls {} ss_episodes {} ca_episodes {} timeouts {} max_cwnd {}",
                f.goodput_bps / 1e6,
                f.vars.send_stall,
                f.vars.slow_start_episodes,
                f.vars.cong_avoid_episodes,
                f.vars.timeouts,
                f.vars.max_cwnd
            );
        }
    } else if args.len() > 1 && args[1] == "multiflow" {
        use rss_core::{AppModel, FlowSpec, SimTime};
        for n in [2usize, 4, 8] {
            for (label, algo) in [
                ("standard", CcAlgorithm::Reno),
                ("default", CcAlgorithm::Restricted(RssConfig::tuned())),
                (
                    "per-flow",
                    CcAlgorithm::Restricted(RssConfig::tuned_for(100_000_000 / n as u64, 1500)),
                ),
                (
                    "shared",
                    CcAlgorithm::Restricted(RssConfig::tuned_shared(
                        100_000_000,
                        1500,
                        n as u32,
                        100,
                    )),
                ),
            ] {
                let mut sc = Scenario::paper_testbed(algo);
                sc.flows = (0..n)
                    .map(|_| FlowSpec {
                        algo,
                        app: AppModel::Bulk { bytes: None },
                        start: SimTime::ZERO,
                    })
                    .collect();
                sc.shared_sender_host = true;
                sc.web100_stride = 8;
                let r = run(&sc);
                let mut stall_times: Vec<f64> = r
                    .flows
                    .iter()
                    .flat_map(|f| f.stall_times_s.iter().copied())
                    .collect();
                stall_times.sort_by(f64::total_cmp);
                let peak_ifq = r
                    .sender_ifq_series
                    .iter()
                    .map(|&(_, v)| v)
                    .fold(0.0f64, f64::max);
                println!(
                    "n={n} {label:>9}: stalls {:2} aggregate {:6.2} Mbit/s jain {:.3} peak_ifq {:4.0} first stalls {:?}",
                    r.total_stalls(),
                    r.total_goodput_bps() / 1e6,
                    r.fairness(),
                    peak_ifq,
                    &stall_times[..stall_times.len().min(6)]
                );
            }
        }
    } else {
        probe(RssConfig::tuned().gains, "tuned default");
    }
}
