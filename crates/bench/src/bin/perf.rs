//! Simulator perf harness CLI: time the paper testbeds and write the
//! `BENCH_simulator.json` trajectory at the workspace root.
//!
//! ```text
//! cargo run --release -p rss-bench --bin perf            # 5 iterations
//! cargo run --release -p rss-bench --bin perf -- --quick # 2 iterations (CI)
//! cargo run --release -p rss-bench --bin perf -- --quick --gate   # + fail on
//!     # a >25% wall-clock regression vs the committed trajectory
//! ```
//!
//! `--gate` reads the committed `BENCH_simulator.json` *before* the fresh
//! trajectory overwrites it and exits non-zero when any workload's best wall
//! time regressed past the tolerance (override with `--tolerance 0.25`).

use rss_bench::perf::{run_perf, PerfReport};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let gate = args.iter().any(|a| a == "--gate");
    let tolerance = match args.iter().position(|a| a == "--tolerance") {
        Some(i) => match args.get(i + 1).and_then(|t| t.parse::<f64>().ok()) {
            Some(t) if t > 0.0 => t,
            _ => {
                eprintln!("--tolerance needs a positive fraction (e.g. 0.25)");
                return ExitCode::from(2);
            }
        },
        None => 0.25,
    };

    // Read the committed baseline first: writing the fresh trajectory below
    // overwrites the file the gate compares against.
    let trajectory_path = rss_bench::workspace_root().join("BENCH_simulator.json");
    let baseline = if gate {
        match PerfReport::read_from(&trajectory_path) {
            Ok(b) => Some(b),
            Err(e) => {
                eprintln!("perf gate: cannot read committed baseline: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };

    let iters = if quick { 2 } else { 5 };
    let report = run_perf(iters);
    println!(
        "simulator perf — paper testbeds, best of {iters} iteration(s)\n{}",
        report.print()
    );
    let path = report.write_trajectory();
    println!("wrote {}", path.display());

    if let Some(baseline) = baseline {
        match report.check_against(&baseline, tolerance) {
            Ok(violations) if violations.is_empty() => {
                println!(
                    "perf gate: ok (within {:.0}% of the committed trajectory)",
                    tolerance * 100.0
                );
            }
            Ok(violations) => {
                for v in &violations {
                    eprintln!("perf gate: {v}");
                }
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("perf gate: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
