//! Simulator perf harness CLI: time the paper testbeds and write the
//! `BENCH_simulator.json` trajectory at the workspace root.
//!
//! ```text
//! cargo run --release -p rss-bench --bin perf            # 5 iterations
//! cargo run --release -p rss-bench --bin perf -- --quick # 2 iterations (CI)
//! ```

use rss_bench::perf::run_perf;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let iters = if quick { 2 } else { 5 };
    let report = run_perf(iters);
    println!(
        "simulator perf — paper testbeds, best of {iters} iteration(s)\n{}",
        report.print()
    );
    let path = report.write_trajectory();
    println!("wrote {}", path.display());
}
