//! Regenerate every table and figure of the paper (and the extensions).
//!
//! ```text
//! cargo run --release -p rss-bench --bin experiments -- all
//! cargo run --release -p rss-bench --bin experiments -- fig1
//! ```
//!
//! Each experiment prints its table/chart and writes a CSV under `results/`.

use rss_bench::*;

fn usage() -> ! {
    eprintln!(
        "usage: experiments <id>\n  ids: fig1 headline txqueuelen rtt bandwidth zn ablation lss fairness parallel all"
    );
    std::process::exit(2);
}

fn fig1() {
    let r = run_fig1();
    println!("{}", r.print());
    let p = write_csv("e1_fig1_send_stalls.csv", &r.to_csv());
    println!("wrote {}\n", p.display());
}

fn headline() {
    let r = run_headline();
    println!("{}", r.print());
    let p = write_csv("e2_headline_throughput.csv", &r.to_csv());
    println!("wrote {}\n", p.display());
}

fn txqueuelen() {
    let r = run_txqueuelen_sweep();
    println!(
        "E3 — txqueuelen sweep (the paper's rejected 'bigger buffers' fix)\n{}",
        r.print()
    );
    let p = write_csv("e3_txqueuelen_sweep.csv", &r.to_csv());
    println!("wrote {}\n", p.display());
}

fn rtt() {
    let r = run_rtt_sweep();
    println!("E4 — RTT sweep\n{}", r.print());
    let p = write_csv("e4_rtt_sweep.csv", &r.to_csv());
    println!("wrote {}\n", p.display());
}

fn bandwidth() {
    let r = run_bandwidth_sweep();
    println!("E5 — bandwidth sweep (RSS retuned per rate)\n{}", r.print());
    let p = write_csv("e5_bandwidth_sweep.csv", &r.to_csv());
    println!("wrote {}\n", p.display());
}

fn zn() {
    let r = run_zn();
    println!("E6 — Ziegler–Nichols tuning trace\n{}", r.print());
    let p = write_csv("e6_zn_tuning.csv", &r.to_csv());
    println!("wrote {}\n", p.display());
}

fn ablation() {
    let r = run_ablation();
    println!("E7 — controller ablation\n{}", r.print());
    let p = write_csv("e7_pid_ablation.csv", &r.to_csv());
    println!("wrote {}\n", p.display());
}

fn lss() {
    let r = run_lss();
    println!("E8 — vs RFC 3742 Limited Slow-Start\n{}", r.print());
    let p = write_csv("e8_vs_limited_slow_start.csv", &r.to_csv());
    println!("wrote {}\n", p.display());
}

fn fairness() {
    let r = run_fairness();
    println!("E9a — fairness among flows sharing one host\n{}", r.print());
    let p = write_csv("e9a_fairness.csv", &r.to_csv());
    println!("wrote {}", p.display());
    let r = run_friendliness();
    println!("\nE9b — network-congestion boundary\n{}", r.print());
    let p = write_csv("e9b_network_bottleneck.csv", &r.to_csv());
    println!("wrote {}", p.display());
    let r = run_cross_variant();
    println!(
        "\nE9c — cross-variant pairs on one bottleneck (Jain over 1 s windows, \u{3b5} = 0.05)\n{}",
        r.print()
    );
    let p = write_csv("e9c_cross_variant.csv", &r.to_csv());
    println!("wrote {}\n", p.display());
}

fn parallel() {
    let r = run_parallel_streams();
    println!("E10 — GridFTP-style parallel streams\n{}", r.print());
    let p = write_csv("e10_parallel_streams.csv", &r.to_csv());
    println!("wrote {}\n", p.display());
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let id = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
    match id {
        "fig1" => fig1(),
        "headline" => headline(),
        "txqueuelen" => txqueuelen(),
        "rtt" => rtt(),
        "bandwidth" => bandwidth(),
        "zn" => zn(),
        "ablation" => ablation(),
        "lss" => lss(),
        "fairness" => fairness(),
        "parallel" => parallel(),
        "all" => {
            fig1();
            headline();
            txqueuelen();
            rtt();
            bandwidth();
            zn();
            ablation();
            lss();
            fairness();
            parallel();
        }
        _ => usage(),
    }
}
