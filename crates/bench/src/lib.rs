//! # rss-bench — the experiment harness
//!
//! One module per experiment in DESIGN.md §5. Each experiment has a
//! `run_*()` function returning a structured result with `print()` (ASCII
//! tables/charts) and `to_csv()`; the `experiments` binary dispatches on an
//! experiment id and writes CSVs under `results/`, and
//! `benches/paper_benches.rs` wraps the same functions in criterion so
//! `cargo bench` regenerates every figure and table.

#![warn(missing_docs)]

pub mod experiments;
pub mod perf;

pub use experiments::*;

use std::path::{Path, PathBuf};

/// The workspace root (where `BENCH_simulator.json` and `results/` live).
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf()
}

/// Directory experiment CSVs are written to.
pub fn results_dir() -> PathBuf {
    let dir = workspace_root().join("results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Write a CSV artifact and report where it went.
pub fn write_csv(name: &str, contents: &str) -> PathBuf {
    let path = results_dir().join(name);
    std::fs::write(&path, contents).expect("write csv");
    path
}
