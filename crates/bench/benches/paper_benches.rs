//! Criterion benches: one target per paper artifact (figure/table) plus the
//! extension experiments. Each bench measures the wall time of regenerating
//! the artifact from scratch, so `cargo bench` both re-derives every number
//! and tracks simulator performance.

use criterion::{criterion_group, criterion_main, Criterion};
use rss_bench::*;
use rss_core::{run, Scenario};

fn bench_fig1(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper");
    g.sample_size(10);
    g.bench_function("fig1_send_stalls", |b| {
        b.iter(|| {
            let r = run_fig1();
            assert!(r.shape_holds());
            r
        })
    });
    g.finish();
}

fn bench_headline(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper");
    g.sample_size(10);
    g.bench_function("headline_throughput", |b| {
        b.iter(|| {
            let r = run_headline();
            assert!(r.improvement() > 0.2);
            r
        })
    });
    g.finish();
}

fn bench_sweeps(c: &mut Criterion) {
    let mut g = c.benchmark_group("sweeps");
    g.sample_size(10);
    g.bench_function("sweep_txqueuelen", |b| b.iter(run_txqueuelen_sweep));
    g.bench_function("sweep_rtt", |b| b.iter(run_rtt_sweep));
    g.bench_function("sweep_bandwidth", |b| b.iter(run_bandwidth_sweep));
    g.finish();
}

fn bench_zn(c: &mut Criterion) {
    let mut g = c.benchmark_group("control");
    g.sample_size(10);
    g.bench_function("zn_tuning", |b| {
        b.iter(|| {
            let r = run_zn();
            assert_eq!(r.validation_stalls, 0);
            r
        })
    });
    g.bench_function("pid_ablation", |b| b.iter(run_ablation));
    g.finish();
}

fn bench_comparisons(c: &mut Criterion) {
    let mut g = c.benchmark_group("comparisons");
    g.sample_size(10);
    g.bench_function("vs_limited_slow_start", |b| b.iter(run_lss));
    g.bench_function("fairness", |b| b.iter(run_fairness));
    g.bench_function("network_bottleneck_boundary", |b| b.iter(run_friendliness));
    g.bench_function("parallel_streams", |b| b.iter(run_parallel_streams));
    g.finish();
}

/// Raw simulator speed: events/second on the paper testbed (one 25 s run).
/// Also refreshes the machine-tracked `BENCH_simulator.json` trajectory at
/// the workspace root via the perf harness.
fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    g.bench_function("paper_run_standard_25s", |b| {
        b.iter(|| run(&Scenario::paper_testbed_standard()))
    });
    g.bench_function("paper_run_restricted_25s", |b| {
        b.iter(|| run(&Scenario::paper_testbed_restricted()))
    });
    g.finish();
    let report = rss_bench::perf::run_perf(3);
    let path = report.write_trajectory();
    println!("  trajectory → {}", path.display());
}

criterion_group!(
    benches,
    bench_fig1,
    bench_headline,
    bench_sweeps,
    bench_zn,
    bench_comparisons,
    bench_simulator
);
criterion_main!(benches);
