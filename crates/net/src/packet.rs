//! Packets and identifiers.
//!
//! The network layer is generic over the packet *body* so the TCP crate can
//! carry full segment metadata through links and queues without this crate
//! depending on TCP. Bodies only need to report their wire size.

use rss_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Identifies a node (host or router) in a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Identifies a link in a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LinkId(pub u32);

/// Identifies a flow (one TCP connection or one cross-traffic stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FlowId(pub u32);

/// ECN codepoint carried by a packet (RFC 3168's two-bit field, collapsed to
/// the three states the simulation distinguishes — ECT(0)/ECT(1) are not
/// told apart).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Ecn {
    /// Not ECN-capable transport: AQM drops instead of marking.
    NotEct,
    /// ECN-capable transport: an AQM in its marking band sets CE instead of
    /// dropping.
    Ect,
    /// Congestion experienced: an AQM marked this packet.
    Ce,
}

/// Anything that can ride inside a [`Packet`].
pub trait Body: Clone + std::fmt::Debug {
    /// Total on-the-wire size in bytes, headers included. Determines
    /// serialization time and queue byte occupancy.
    fn wire_size(&self) -> u32;

    /// The body's ECN codepoint. Defaults to [`Ecn::NotEct`], so bodies
    /// that never negotiated ECN keep the pre-ECN drop behaviour everywhere.
    fn ecn(&self) -> Ecn {
        Ecn::NotEct
    }

    /// Overwrite the ECN codepoint (an AQM setting CE). The default is a
    /// no-op, matching the `NotEct` default above.
    fn set_ecn(&mut self, _codepoint: Ecn) {}
}

/// A packet in flight: routing metadata plus an opaque body.
#[derive(Debug, Clone)]
pub struct Packet<B> {
    /// Globally unique packet id (per simulation run).
    pub id: u64,
    /// Originating node.
    pub src: NodeId,
    /// Destination node; routers forward on this.
    pub dst: NodeId,
    /// Flow the packet belongs to, for per-flow accounting.
    pub flow: FlowId,
    /// Time the packet entered the network (for latency accounting).
    pub created: SimTime,
    /// The payload.
    pub body: B,
}

impl<B: Body> Packet<B> {
    /// Wire size in bytes (delegates to the body).
    #[inline]
    pub fn wire_size(&self) -> u32 {
        self.body.wire_size()
    }
}

/// Simple body for raw/cross traffic: just a size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RawBody {
    /// Wire size in bytes.
    pub size: u32,
}

impl Body for RawBody {
    fn wire_size(&self) -> u32 {
        self.size
    }
}

/// Monotone packet-id allocator.
#[derive(Debug, Default, Clone)]
pub struct PacketIdGen {
    next: u64,
}

impl PacketIdGen {
    /// Create starting at id 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate the next id.
    pub fn next_id(&mut self) -> u64 {
        let id = self.next;
        self.next += 1;
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_body_size() {
        let p = Packet {
            id: 0,
            src: NodeId(0),
            dst: NodeId(1),
            flow: FlowId(9),
            created: SimTime::ZERO,
            body: RawBody { size: 1500 },
        };
        assert_eq!(p.wire_size(), 1500);
    }

    #[test]
    fn id_gen_monotone() {
        let mut g = PacketIdGen::new();
        assert_eq!(g.next_id(), 0);
        assert_eq!(g.next_id(), 1);
        assert_eq!(g.next_id(), 2);
    }
}
