//! Drop-tail FIFO queue — the building block of both router ports and the
//! host interface queue (IFQ) whose overflow generates the paper's
//! send-stall events.

use crate::packet::{Body, Packet};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Capacity limits for a queue. Either or both of the limits may be set;
/// an unset limit is unbounded. Linux's `txqueuelen` is a packet limit.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct QueueConfig {
    /// Maximum number of queued packets.
    pub max_packets: Option<u32>,
    /// Maximum number of queued bytes.
    pub max_bytes: Option<u64>,
}

impl QueueConfig {
    /// Packet-count-limited queue (the `txqueuelen` model).
    pub fn packets(max: u32) -> Self {
        QueueConfig {
            max_packets: Some(max),
            max_bytes: None,
        }
    }

    /// Byte-limited queue.
    pub fn bytes(max: u64) -> Self {
        QueueConfig {
            max_packets: None,
            max_bytes: Some(max),
        }
    }

    /// Unbounded queue (for test fixtures).
    pub fn unbounded() -> Self {
        QueueConfig {
            max_packets: None,
            max_bytes: None,
        }
    }
}

/// Counters exposed by every queue.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct QueueStats {
    /// Packets accepted.
    pub enqueued: u64,
    /// Packets handed to the transmitter.
    pub dequeued: u64,
    /// Packets rejected because the queue was full.
    pub dropped: u64,
    /// Bytes rejected.
    pub dropped_bytes: u64,
    /// High-water mark, packets.
    pub peak_packets: u32,
    /// High-water mark, bytes.
    pub peak_bytes: u64,
}

/// Why a packet was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueError {
    /// The packet-count limit was reached.
    PacketLimit,
    /// The byte limit was reached.
    ByteLimit,
}

/// A bounded FIFO with drop-tail semantics.
#[derive(Debug, Clone)]
pub struct DropTailQueue<B> {
    cfg: QueueConfig,
    q: VecDeque<Packet<B>>,
    bytes: u64,
    stats: QueueStats,
}

impl<B: Body> DropTailQueue<B> {
    /// Create an empty queue with the given limits.
    pub fn new(cfg: QueueConfig) -> Self {
        DropTailQueue {
            cfg,
            q: VecDeque::new(),
            bytes: 0,
            stats: QueueStats::default(),
        }
    }

    /// The configured limits.
    pub fn config(&self) -> QueueConfig {
        self.cfg
    }

    /// Check whether `pkt` would be accepted right now, without mutating.
    pub fn would_accept(&self, pkt: &Packet<B>) -> Result<(), EnqueueError> {
        if let Some(maxp) = self.cfg.max_packets {
            if self.q.len() as u32 >= maxp {
                return Err(EnqueueError::PacketLimit);
            }
        }
        if let Some(maxb) = self.cfg.max_bytes {
            if self.bytes + pkt.wire_size() as u64 > maxb {
                return Err(EnqueueError::ByteLimit);
            }
        }
        Ok(())
    }

    /// Enqueue, or return the packet unchanged if the queue is full.
    pub fn try_enqueue(&mut self, pkt: Packet<B>) -> Result<(), (EnqueueError, Packet<B>)> {
        match self.would_accept(&pkt) {
            Ok(()) => {
                self.bytes += pkt.wire_size() as u64;
                self.q.push_back(pkt);
                self.stats.enqueued += 1;
                self.stats.peak_packets = self.stats.peak_packets.max(self.q.len() as u32);
                self.stats.peak_bytes = self.stats.peak_bytes.max(self.bytes);
                Ok(())
            }
            Err(e) => {
                self.stats.dropped += 1;
                self.stats.dropped_bytes += pkt.wire_size() as u64;
                Err((e, pkt))
            }
        }
    }

    /// Pop the head-of-line packet.
    pub fn dequeue(&mut self) -> Option<Packet<B>> {
        let pkt = self.q.pop_front()?;
        self.bytes -= pkt.wire_size() as u64;
        self.stats.dequeued += 1;
        Some(pkt)
    }

    /// Current packet count.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Current byte occupancy.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Occupancy as a fraction of the packet limit (None if unbounded).
    pub fn fill_fraction(&self) -> Option<f64> {
        self.cfg
            .max_packets
            .map(|maxp| self.q.len() as f64 / maxp as f64)
            .or_else(|| {
                self.cfg
                    .max_bytes
                    .map(|maxb| self.bytes as f64 / maxb as f64)
            })
    }

    /// Counter snapshot.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, NodeId, RawBody};
    use rss_sim::SimTime;

    fn pkt(id: u64, size: u32) -> Packet<RawBody> {
        Packet {
            id,
            src: NodeId(0),
            dst: NodeId(1),
            flow: FlowId(0),
            created: SimTime::ZERO,
            body: RawBody { size },
        }
    }

    #[test]
    fn fifo_order_preserved() {
        let mut q = DropTailQueue::new(QueueConfig::unbounded());
        for i in 0..10 {
            q.try_enqueue(pkt(i, 100)).unwrap();
        }
        for i in 0..10 {
            assert_eq!(q.dequeue().unwrap().id, i);
        }
        assert!(q.dequeue().is_none());
    }

    #[test]
    fn packet_limit_enforced() {
        let mut q = DropTailQueue::new(QueueConfig::packets(2));
        q.try_enqueue(pkt(0, 100)).unwrap();
        q.try_enqueue(pkt(1, 100)).unwrap();
        let err = q.try_enqueue(pkt(2, 100)).unwrap_err();
        assert_eq!(err.0, EnqueueError::PacketLimit);
        assert_eq!(err.1.id, 2, "rejected packet returned intact");
        assert_eq!(q.stats().dropped, 1);
        // Space frees after a dequeue.
        q.dequeue().unwrap();
        q.try_enqueue(pkt(3, 100)).unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn byte_limit_enforced() {
        let mut q = DropTailQueue::new(QueueConfig::bytes(250));
        q.try_enqueue(pkt(0, 100)).unwrap();
        q.try_enqueue(pkt(1, 100)).unwrap();
        let err = q.try_enqueue(pkt(2, 100)).unwrap_err();
        assert_eq!(err.0, EnqueueError::ByteLimit);
        // A smaller packet still fits.
        q.try_enqueue(pkt(3, 50)).unwrap();
        assert_eq!(q.bytes(), 250);
    }

    #[test]
    fn byte_accounting_conserved() {
        let mut q = DropTailQueue::new(QueueConfig::unbounded());
        q.try_enqueue(pkt(0, 100)).unwrap();
        q.try_enqueue(pkt(1, 200)).unwrap();
        assert_eq!(q.bytes(), 300);
        q.dequeue().unwrap();
        assert_eq!(q.bytes(), 200);
        q.dequeue().unwrap();
        assert_eq!(q.bytes(), 0);
    }

    #[test]
    fn fill_fraction_packet_based() {
        let mut q = DropTailQueue::new(QueueConfig::packets(4));
        assert_eq!(q.fill_fraction(), Some(0.0));
        q.try_enqueue(pkt(0, 1)).unwrap();
        q.try_enqueue(pkt(1, 1)).unwrap();
        assert_eq!(q.fill_fraction(), Some(0.5));
    }

    #[test]
    fn peak_watermarks() {
        let mut q = DropTailQueue::new(QueueConfig::unbounded());
        q.try_enqueue(pkt(0, 500)).unwrap();
        q.try_enqueue(pkt(1, 500)).unwrap();
        q.dequeue().unwrap();
        q.try_enqueue(pkt(2, 100)).unwrap();
        let s = q.stats();
        assert_eq!(s.peak_packets, 2);
        assert_eq!(s.peak_bytes, 1000);
        assert_eq!(s.enqueued, 3);
        assert_eq!(s.dequeued, 1);
    }

    #[test]
    fn would_accept_is_pure() {
        let q: DropTailQueue<RawBody> = DropTailQueue::new(QueueConfig::packets(1));
        assert!(q.would_accept(&pkt(0, 1)).is_ok());
        assert_eq!(q.len(), 0);
    }
}
