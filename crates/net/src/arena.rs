//! Generational packet arena: pooled storage for packets in flight.
//!
//! The fabric's hot loop moves every packet through the event queue once per
//! hop. Carrying the full [`Packet`] inside the event made each schedule/pop
//! copy ~80 bytes and forced the embedding world to buffer events in
//! per-hop `Vec`s; parking the payload here turns the event into a POD
//! [`PacketRef`] (8 bytes) and the slot storage is recycled through a
//! free-list, so the steady state allocates nothing.
//!
//! Safety against stale references is generational: every slot carries a
//! generation counter bumped when the packet is taken out, and a
//! [`PacketRef`] is only valid for the generation it was issued with. Leaks
//! (refs never redeemed) are observable via [`PacketArena::live`];
//! double-frees trip a generation debug-assertion and an occupancy panic.

use crate::packet::{Body, Packet};

/// A POD handle to a packet parked in a [`PacketArena`].
///
/// Valid for exactly one [`PacketArena::take`]; redeeming it twice or after
/// the slot was recycled is a bug the arena detects (generation mismatch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketRef {
    slot: u32,
    gen: u32,
}

/// Slot-recycling policy of a [`PacketArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArenaMode {
    /// Free slots are recycled through a free-list; the steady state
    /// allocates nothing. The default.
    Pooled,
    /// Every insert appends a fresh slot — allocation-per-packet reference
    /// behavior for differential tests against [`ArenaMode::Pooled`].
    Fresh,
}

struct ArenaSlot<B> {
    gen: u32,
    pkt: Option<Packet<B>>,
}

/// Generational free-list arena for packets in flight.
pub struct PacketArena<B> {
    slots: Vec<ArenaSlot<B>>,
    free: Vec<u32>,
    live: usize,
    mode: ArenaMode,
}

impl<B> Default for PacketArena<B> {
    fn default() -> Self {
        Self::new()
    }
}

impl<B> PacketArena<B> {
    /// Empty pooled arena.
    pub fn new() -> Self {
        PacketArena {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            mode: ArenaMode::Pooled,
        }
    }

    /// Switch the recycling policy. Only meaningful before traffic starts;
    /// existing slots keep their contents either way.
    pub fn set_mode(&mut self, mode: ArenaMode) {
        self.mode = mode;
    }

    /// The active recycling policy.
    pub fn mode(&self) -> ArenaMode {
        self.mode
    }

    /// Packets currently parked (inserted and not yet taken). A run that
    /// drains its event queue must end with `live() == 0` — anything else is
    /// a leak.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Total slots ever created (the high-water mark of packets in flight
    /// under [`ArenaMode::Pooled`]).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Park a packet; the returned handle redeems it exactly once.
    #[inline]
    pub fn insert(&mut self, pkt: Packet<B>) -> PacketRef {
        self.live += 1;
        if self.mode == ArenaMode::Pooled {
            if let Some(slot) = self.free.pop() {
                let s = &mut self.slots[slot as usize];
                debug_assert!(s.pkt.is_none(), "free-listed arena slot still occupied");
                s.pkt = Some(pkt);
                return PacketRef { slot, gen: s.gen };
            }
        }
        let slot = u32::try_from(self.slots.len()).expect("arena slot overflow");
        self.slots.push(ArenaSlot {
            gen: 0,
            pkt: Some(pkt),
        });
        PacketRef { slot, gen: 0 }
    }

    /// Redeem a handle, removing the packet and recycling the slot.
    ///
    /// Panics on an empty slot, and in debug builds asserts the generation
    /// matches — together these make double-frees and stale handles loud.
    #[inline]
    pub fn take(&mut self, r: PacketRef) -> Packet<B> {
        let s = &mut self.slots[r.slot as usize];
        debug_assert_eq!(
            s.gen, r.gen,
            "stale PacketRef: slot recycled or double-freed"
        );
        let pkt = s
            .pkt
            .take()
            .expect("PacketRef redeemed twice: arena slot is empty");
        s.gen = s.gen.wrapping_add(1);
        self.live -= 1;
        if self.mode == ArenaMode::Pooled {
            self.free.push(r.slot);
        }
        pkt
    }
}

impl<B: Body> PacketArena<B> {
    /// Wire size of a parked packet without redeeming its handle.
    pub fn wire_size(&self, r: PacketRef) -> u32 {
        let s = &self.slots[r.slot as usize];
        debug_assert_eq!(s.gen, r.gen, "stale PacketRef");
        s.pkt.as_ref().expect("empty arena slot").wire_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, NodeId, RawBody};
    use rss_sim::SimTime;

    fn pkt(id: u64) -> Packet<RawBody> {
        Packet {
            id,
            src: NodeId(0),
            dst: NodeId(1),
            flow: FlowId(0),
            created: SimTime::ZERO,
            body: RawBody { size: 1500 },
        }
    }

    #[test]
    fn roundtrip_preserves_packet() {
        let mut a = PacketArena::new();
        let r = a.insert(pkt(7));
        assert_eq!(a.live(), 1);
        let p = a.take(r);
        assert_eq!(p.id, 7);
        assert_eq!(a.live(), 0);
    }

    #[test]
    fn pooled_mode_recycles_slots() {
        let mut a = PacketArena::new();
        let r0 = a.insert(pkt(0));
        a.take(r0);
        let r1 = a.insert(pkt(1));
        assert_eq!(a.slot_count(), 1, "slot must be recycled");
        assert_ne!(r0, r1, "recycled handle must differ by generation");
        assert_eq!(a.take(r1).id, 1);
    }

    #[test]
    fn fresh_mode_never_recycles() {
        let mut a = PacketArena::new();
        a.set_mode(ArenaMode::Fresh);
        let r0 = a.insert(pkt(0));
        a.take(r0);
        a.insert(pkt(1));
        assert_eq!(a.slot_count(), 2, "fresh mode must append a new slot");
    }

    // Debug builds trip the generation assertion, release builds the
    // empty-slot panic; "PacketRef" is in both messages.
    #[test]
    #[should_panic(expected = "PacketRef")]
    fn double_take_panics() {
        let mut a = PacketArena::new();
        a.set_mode(ArenaMode::Fresh); // keep the slot empty instead of recycled
        let r = a.insert(pkt(0));
        a.take(r);
        a.take(r);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "stale PacketRef")]
    fn stale_ref_into_recycled_slot_is_detected() {
        let mut a = PacketArena::new();
        let r0 = a.insert(pkt(0));
        a.take(r0);
        let _r1 = a.insert(pkt(1)); // recycles slot 0 at generation 1
        a.take(r0); // stale generation 0 handle
    }

    #[test]
    fn interleaved_traffic_keeps_exact_live_count() {
        let mut a = PacketArena::new();
        let mut held = Vec::new();
        for wave in 0..10u64 {
            for i in 0..32 {
                held.push(a.insert(pkt(wave * 32 + i)));
            }
            // Drain in FIFO order (opposite of the LIFO free-list) to mix
            // recycled and fresh slots.
            for r in held.drain(..16) {
                a.take(r);
            }
        }
        assert_eq!(a.live(), held.len());
        for r in held {
            a.take(r);
        }
        assert_eq!(a.live(), 0);
        assert!(a.slot_count() <= 32 * 10);
    }
}
