//! # rss-net — network substrate
//!
//! Links, queues, routers and topologies for the *Restricted Slow-Start for
//! TCP* reproduction. The paper's evaluation ran over a real 100 Mbit/s,
//! 60 ms-RTT WAN between ANL and LBNL; this crate provides the simulated
//! equivalent: store-and-forward routers with drop-tail (or RED) egress
//! queues connected by rate/delay/loss links, plus the cross-traffic sources
//! used in the friendliness experiments.
//!
//! The crate is generic over the packet body (see [`Body`]) so the TCP layer
//! can send full segment metadata through the fabric without a dependency
//! cycle.
#![warn(missing_docs)]

pub mod arena;
pub mod fabric;
pub mod impair;
pub mod packet;
pub mod queue;
pub mod red;
pub mod topology;
pub mod traffic;

pub use arena::{ArenaMode, PacketArena, PacketRef};
pub use fabric::{Fabric, LinkStats, NetEvent, PortQueue};
pub use impair::{
    DropCause, Flap, GilbertElliott, ImpairStats, Impairment, ImpairmentConfig, Jitter,
    OutageSchedule, OutageWindow, Verdict,
};
pub use packet::{Body, Ecn, FlowId, LinkId, NodeId, Packet, PacketIdGen, RawBody};
pub use queue::{DropTailQueue, EnqueueError, QueueConfig, QueueStats};
pub use red::{RedConfig, RedQueue, RedStats};
pub use topology::{
    dumbbell, single_path, Dumbbell, LinkParams, LinkSpec, NodeKind, RoutingTable, Topology,
};
pub use traffic::{TrafficPattern, TrafficSource};
