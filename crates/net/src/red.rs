//! Random Early Detection (RED) queue.
//!
//! The paper's testbed used drop-tail queues, but §1 argues slow-start bursts
//! are "hard on the rest of the traffic sharing the congested link" — the
//! friendliness experiments (E9) compare behaviour under both drop-tail and
//! RED bottlenecks, so an AQM variant is part of the substrate.
//!
//! Implementation follows Floyd & Jacobson 1993: EWMA average queue length,
//! linear drop probability between `min_th` and `max_th`, count-based spacing
//! of drops, and idle-time compensation. Two optional extensions:
//!
//! * **Gentle mode** (Floyd 2000): instead of dropping everything at
//!   `max_th`, the drop probability ramps linearly from `max_p` to 1 over
//!   `(max_th, 2·max_th)`, removing the sharp cliff.
//! * **ECN marking** (RFC 3168): in the probabilistic band, ECT packets are
//!   CE-marked and enqueued instead of dropped. Above `max_th` (or
//!   `2·max_th` in gentle mode) packets are dropped regardless of ECT, per
//!   RFC 3168 §7 — once the average exceeds the band, marking no longer
//!   protects the queue.

use crate::packet::{Body, Ecn, Packet};
use crate::queue::{DropTailQueue, EnqueueError, QueueConfig, QueueStats};
use rss_sim::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// RED parameters (thresholds in packets).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RedConfig {
    /// Average-queue threshold below which no packet is dropped.
    pub min_th: f64,
    /// Average-queue threshold above which every packet is dropped
    /// (in gentle mode, the start of the `max_p`→1 ramp instead).
    pub max_th: f64,
    /// Drop probability at `max_th`.
    pub max_p: f64,
    /// EWMA weight for the average queue size.
    pub wq: f64,
    /// Hard capacity backing the RED logic.
    pub capacity: QueueConfig,
    /// Assumed transmission time of a small packet, for idle compensation.
    pub mean_pkt_time: SimDuration,
    /// Gentle mode: ramp the drop probability from `max_p` to 1 over
    /// `(max_th, 2·max_th)` instead of force-dropping at `max_th`.
    pub gentle: bool,
    /// CE-mark ECT packets in the probabilistic band instead of dropping.
    pub ecn: bool,
}

impl RedConfig {
    /// The ns-2 style defaults for a queue of `cap` packets.
    pub fn for_capacity(cap: u32, mean_pkt_time: SimDuration) -> Self {
        RedConfig {
            min_th: cap as f64 * 0.25,
            max_th: cap as f64 * 0.75,
            max_p: 0.1,
            wq: 0.002,
            capacity: QueueConfig::packets(cap),
            mean_pkt_time,
            gentle: false,
            ecn: false,
        }
    }

    /// Instantaneous drop/mark probability `p_b` at average queue `avg`
    /// (before the count-since-last-drop correction): 0 below `min_th`,
    /// linear up to `max_p` at `max_th`, then either 1 (standard) or a
    /// linear `max_p`→1 ramp over `(max_th, 2·max_th)` (gentle).
    pub fn mark_prob(&self, avg: f64) -> f64 {
        if avg <= self.min_th {
            0.0
        } else if avg < self.max_th {
            self.max_p * (avg - self.min_th) / (self.max_th - self.min_th)
        } else if self.gentle && avg < 2.0 * self.max_th {
            self.max_p + (1.0 - self.max_p) * (avg - self.max_th) / self.max_th
        } else {
            1.0
        }
    }
}

/// Counters exported by a RED queue, for run reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RedStats {
    /// EWMA average queue length at sample time (packets).
    pub avg: f64,
    /// Packets dropped by the early-detection mechanism.
    pub early_drops: u64,
    /// Packets dropped because the hard capacity was exhausted.
    pub forced_drops: u64,
    /// ECT packets CE-marked instead of dropped.
    pub ecn_marks: u64,
}

/// A RED-managed queue; wraps a [`DropTailQueue`] for storage.
#[derive(Debug, Clone)]
pub struct RedQueue<B> {
    cfg: RedConfig,
    inner: DropTailQueue<B>,
    avg: f64,
    count_since_drop: i64,
    idle_since: Option<SimTime>,
    early_drops: u64,
    forced_drops: u64,
    ecn_marks: u64,
}

impl<B: Body> RedQueue<B> {
    /// Create an empty RED queue.
    pub fn new(cfg: RedConfig) -> Self {
        assert!(cfg.min_th < cfg.max_th, "min_th must be below max_th");
        assert!(cfg.max_p > 0.0 && cfg.max_p <= 1.0);
        assert!(cfg.wq > 0.0 && cfg.wq <= 1.0);
        RedQueue {
            inner: DropTailQueue::new(cfg.capacity),
            cfg,
            avg: 0.0,
            count_since_drop: -1,
            idle_since: Some(SimTime::ZERO),
            early_drops: 0,
            forced_drops: 0,
            ecn_marks: 0,
        }
    }

    /// Current EWMA average queue length (packets).
    pub fn avg(&self) -> f64 {
        self.avg
    }

    /// Packets dropped by the early-detection mechanism.
    pub fn early_drops(&self) -> u64 {
        self.early_drops
    }

    /// Packets dropped because the hard capacity was exhausted.
    pub fn forced_drops(&self) -> u64 {
        self.forced_drops
    }

    /// ECT packets CE-marked instead of dropped.
    pub fn ecn_marks(&self) -> u64 {
        self.ecn_marks
    }

    /// Snapshot of the RED counters plus the current average.
    pub fn red_stats(&self) -> RedStats {
        RedStats {
            avg: self.avg,
            early_drops: self.early_drops,
            forced_drops: self.forced_drops,
            ecn_marks: self.ecn_marks,
        }
    }

    /// Storage-layer statistics.
    pub fn stats(&self) -> QueueStats {
        self.inner.stats()
    }

    /// Current instantaneous length.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when no packets are queued.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    fn update_avg(&mut self, now: SimTime) {
        if let Some(idle_start) = self.idle_since {
            // Idle compensation: pretend `m` small packets drained while idle.
            let idle = now.saturating_since(idle_start);
            let m = idle.as_nanos() as f64 / self.cfg.mean_pkt_time.as_nanos().max(1) as f64;
            self.avg *= (1.0 - self.cfg.wq).powf(m);
            self.idle_since = None;
        }
        self.avg = (1.0 - self.cfg.wq) * self.avg + self.cfg.wq * self.inner.len() as f64;
    }

    /// Offer a packet at time `now`. Returns the packet back if RED (or the
    /// hard limit) drops it. With `cfg.ecn`, a probabilistic "drop" decision
    /// on an ECT packet CE-marks and enqueues it instead.
    ///
    /// With `gentle` and `ecn` both off this is the original Floyd &
    /// Jacobson sequence, drawing from `rng` at exactly the same points, so
    /// legacy RED runs stay byte-identical.
    pub fn try_enqueue(
        &mut self,
        now: SimTime,
        mut pkt: Packet<B>,
        rng: &mut SimRng,
    ) -> Result<(), (EnqueueError, Packet<B>)> {
        self.update_avg(now);
        let force_th = if self.cfg.gentle {
            2.0 * self.cfg.max_th
        } else {
            self.cfg.max_th
        };
        if self.avg >= force_th {
            self.early_drops += 1;
            self.count_since_drop = 0;
            return Err((EnqueueError::PacketLimit, pkt));
        }
        if self.cfg.gentle && self.avg >= self.cfg.max_th {
            // Gentle band (max_th, 2·max_th): probability ramps linearly from
            // max_p to 1. Always a drop, never a mark — above max_th the
            // queue is in danger and marking no longer protects it
            // (RFC 3168 §7).
            self.count_since_drop += 1;
            let pb = self.cfg.max_p
                + (1.0 - self.cfg.max_p) * (self.avg - self.cfg.max_th) / self.cfg.max_th;
            let pa = pb / (1.0 - (self.count_since_drop as f64 * pb).min(0.999));
            if rng.chance(pa) {
                self.early_drops += 1;
                self.count_since_drop = 0;
                return Err((EnqueueError::PacketLimit, pkt));
            }
        } else if self.avg > self.cfg.min_th {
            self.count_since_drop += 1;
            let pb =
                self.cfg.max_p * (self.avg - self.cfg.min_th) / (self.cfg.max_th - self.cfg.min_th);
            let pa = pb / (1.0 - (self.count_since_drop as f64 * pb).min(0.999));
            if rng.chance(pa) {
                if self.cfg.ecn && pkt.body.ecn() == Ecn::Ect {
                    pkt.body.set_ecn(Ecn::Ce);
                    self.ecn_marks += 1;
                    self.count_since_drop = 0;
                    // Falls through to the enqueue below.
                } else {
                    self.early_drops += 1;
                    self.count_since_drop = 0;
                    return Err((EnqueueError::PacketLimit, pkt));
                }
            }
        } else {
            self.count_since_drop = -1;
        }
        match self.inner.try_enqueue(pkt) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.forced_drops += 1;
                self.count_since_drop = 0;
                Err(e)
            }
        }
    }

    /// Pop the head-of-line packet at `now`.
    pub fn dequeue(&mut self, now: SimTime) -> Option<Packet<B>> {
        let pkt = self.inner.dequeue();
        if self.inner.is_empty() {
            self.idle_since = Some(now);
        }
        pkt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, NodeId, RawBody};

    fn pkt(id: u64) -> Packet<RawBody> {
        Packet {
            id,
            src: NodeId(0),
            dst: NodeId(1),
            flow: FlowId(0),
            created: SimTime::ZERO,
            body: RawBody { size: 1000 },
        }
    }

    fn cfg(cap: u32) -> RedConfig {
        RedConfig::for_capacity(cap, SimDuration::from_micros(100))
    }

    #[test]
    fn below_min_th_never_drops() {
        let mut q = RedQueue::new(cfg(100));
        let mut rng = SimRng::seed_from_u64(1);
        // Keep instantaneous length at ~10 (min_th = 25): no early drops.
        for i in 0..1000u64 {
            let now = SimTime::from_micros(i * 100);
            q.try_enqueue(now, pkt(i), &mut rng).unwrap();
            if q.len() > 10 {
                q.dequeue(now);
            }
        }
        assert_eq!(q.early_drops(), 0);
    }

    #[test]
    fn sustained_overload_triggers_early_drops() {
        let mut q = RedQueue::new(cfg(100));
        let mut rng = SimRng::seed_from_u64(2);
        let mut accepted = 0u32;
        // Fill without draining: avg climbs through min_th toward max_th.
        for i in 0..5000u64 {
            let now = SimTime::from_micros(i);
            if q.try_enqueue(now, pkt(i), &mut rng).is_ok() {
                accepted += 1;
            }
        }
        assert!(q.early_drops() > 0, "no early drops under overload");
        assert!(accepted <= 100, "hard capacity respected");
    }

    #[test]
    fn average_tracks_instantaneous_slowly() {
        let mut q = RedQueue::new(cfg(100));
        let mut rng = SimRng::seed_from_u64(3);
        for i in 0..20u64 {
            q.try_enqueue(SimTime::from_micros(i), pkt(i), &mut rng)
                .unwrap();
        }
        // 20 packets queued but wq = 0.002: average far below instantaneous.
        assert!(q.avg() < 2.0, "avg {}", q.avg());
        assert_eq!(q.len(), 20);
    }

    #[test]
    fn idle_period_decays_average() {
        let mut q = RedQueue::new(cfg(100));
        let mut rng = SimRng::seed_from_u64(4);
        for i in 0..2000u64 {
            let _ = q.try_enqueue(SimTime::from_micros(i), pkt(i), &mut rng);
        }
        while q.dequeue(SimTime::from_millis(2)).is_some() {}
        let avg_before = q.avg();
        assert!(avg_before > 0.5);
        // Long idle: offering a packet much later sees a decayed average.
        q.try_enqueue(SimTime::from_secs(10), pkt(99_999), &mut rng)
            .unwrap();
        assert!(q.avg() < 0.1, "avg after idle {}", q.avg());
    }

    /// Minimal ECN-capable body for marking tests.
    #[derive(Debug, Clone)]
    struct EctBody {
        size: u32,
        ecn: Ecn,
    }

    impl Body for EctBody {
        fn wire_size(&self) -> u32 {
            self.size
        }
        fn ecn(&self) -> Ecn {
            self.ecn
        }
        fn set_ecn(&mut self, codepoint: Ecn) {
            self.ecn = codepoint;
        }
    }

    fn ect(id: u64) -> Packet<EctBody> {
        Packet {
            id,
            src: NodeId(0),
            dst: NodeId(1),
            flow: FlowId(0),
            created: SimTime::ZERO,
            body: EctBody {
                size: 1000,
                ecn: Ecn::Ect,
            },
        }
    }

    #[test]
    fn mark_prob_monotone_and_gentle_slope() {
        let mut c = cfg(100); // min_th 25, max_th 75, max_p 0.1
        let mut last = -1.0;
        for i in 0..=200 {
            let p = c.mark_prob(i as f64);
            assert!(p >= last, "mark_prob not monotone at avg {i}");
            last = p;
        }
        assert_eq!(c.mark_prob(10.0), 0.0);
        assert!((c.mark_prob(50.0) - 0.05).abs() < 1e-12);
        assert_eq!(c.mark_prob(80.0), 1.0);
        // Gentle: continuous at max_th, linear max_p -> 1 over (max_th, 2max_th).
        c.gentle = true;
        let mut last = -1.0;
        for i in 0..=400 {
            let p = c.mark_prob(i as f64 / 2.0);
            assert!(p >= last, "gentle mark_prob not monotone at avg {}", i / 2);
            last = p;
        }
        assert!((c.mark_prob(75.0) - 0.1).abs() < 1e-12);
        assert!((c.mark_prob(112.5) - 0.55).abs() < 1e-12);
        assert_eq!(c.mark_prob(150.0), 1.0);
    }

    #[test]
    fn count_correction_bounds_inter_drop_gaps() {
        // Hold avg pinned at 50 via wq = 1 (avg == instantaneous length) and
        // a steady-state queue of 50 packets: pb = 0.1 * (50-10)/(90-10) =
        // 0.05, so Floyd's count correction makes inter-drop gaps uniform on
        // {1..1/pb} — bounded by 20 attempts, mean (1+20)/2 = 10.5 — instead
        // of the long geometric tail plain Bernoulli drops would have.
        let c = RedConfig {
            min_th: 10.0,
            max_th: 90.0,
            max_p: 0.1,
            wq: 1.0,
            capacity: QueueConfig::packets(200),
            mean_pkt_time: SimDuration::from_micros(100),
            gentle: false,
            ecn: false,
        };
        let mut q = RedQueue::new(c);
        let mut rng = SimRng::seed_from_u64(11);
        // Fill to 50; in-band drops during the fill are fine, just retry.
        let mut i = 0u64;
        while q.len() < 50 {
            let _ = q.try_enqueue(SimTime::from_micros(i), pkt(i), &mut rng);
            i += 1;
        }
        let mut gaps = Vec::new();
        let mut since = 0u64;
        for j in 0..200_000u64 {
            since += 1;
            let now = SimTime::from_micros(i + j);
            if q.try_enqueue(now, pkt(i + j), &mut rng).is_ok() {
                q.dequeue(now); // keep the queue at exactly 50
            } else {
                gaps.push(since);
                since = 0;
            }
        }
        assert!(gaps.len() > 500, "too few drops: {}", gaps.len());
        let max = *gaps.iter().max().unwrap();
        let mean = gaps.iter().sum::<u64>() as f64 / gaps.len() as f64;
        assert!(max <= 21, "gap {max} exceeds 1/pb + 1");
        assert!((8.5..=12.5).contains(&mean), "mean gap {mean}");
    }

    #[test]
    fn ecn_marks_ect_instead_of_dropping() {
        let mut c = cfg(100);
        c.ecn = true;
        let mut q = RedQueue::new(c);
        let mut rng = SimRng::seed_from_u64(5);
        let mut delivered_ce = 0u64;
        // Fill to 60 (inside the 25..75 band, below the hard cap), then hold
        // the length there: with ECT traffic and ecn on, every in-band
        // decision marks instead of drops, so the length stays put while the
        // EWMA converges into the band.
        for i in 0..60u64 {
            q.try_enqueue(SimTime::from_micros(i), ect(i), &mut rng)
                .unwrap();
        }
        for i in 60..20_000u64 {
            let now = SimTime::from_micros(i);
            let _ = q.try_enqueue(now, ect(i), &mut rng);
            if let Some(p) = q.dequeue(now) {
                if p.body.ecn() == Ecn::Ce {
                    delivered_ce += 1;
                }
            }
        }
        let now = SimTime::from_micros(20_000);
        while let Some(p) = q.dequeue(now) {
            if p.body.ecn() == Ecn::Ce {
                delivered_ce += 1;
            }
        }
        assert!(q.ecn_marks() > 0, "no CE marks under band occupancy");
        assert_eq!(q.ecn_marks(), delivered_ce, "marked != delivered CE");
        let st = q.red_stats();
        assert_eq!(st.ecn_marks, q.ecn_marks());
        assert_eq!(st.early_drops, q.early_drops());
    }

    #[test]
    fn non_ect_traffic_still_drops_with_ecn_enabled() {
        let mut c = cfg(100);
        c.ecn = true;
        let mut q = RedQueue::new(c);
        let mut rng = SimRng::seed_from_u64(6);
        for i in 0..5000u64 {
            let now = SimTime::from_micros(i);
            let _ = q.try_enqueue(now, pkt(i), &mut rng); // RawBody: NotEct
            if i % 2 == 0 {
                q.dequeue(now);
            }
        }
        assert_eq!(q.ecn_marks(), 0);
        assert!(q.early_drops() > 0, "non-ECT must still be dropped");
    }

    #[test]
    fn gentle_mode_survives_band_overflow_probabilistically() {
        // Sustained overload pushes avg past max_th; gentle mode keeps
        // admitting a (shrinking) fraction instead of force-dropping all.
        let mut gentle_cfg = cfg(400);
        gentle_cfg.gentle = true;
        let run = |c: RedConfig, seed: u64| {
            let mut q = RedQueue::new(c);
            let mut rng = SimRng::seed_from_u64(seed);
            let mut admitted_above_max_th = 0u64;
            for i in 0..30_000u64 {
                let now = SimTime::from_micros(i);
                let ok = q.try_enqueue(now, pkt(i), &mut rng).is_ok();
                // try_enqueue refreshed the EWMA on entry, so q.avg() is
                // exactly the average the admit decision used.
                if ok && q.avg() >= c.max_th {
                    admitted_above_max_th += 1;
                }
                if i % 2 == 0 {
                    q.dequeue(now);
                }
            }
            admitted_above_max_th
        };
        assert_eq!(run(cfg(400), 9), 0, "standard RED admits nothing >= max_th");
        assert!(run(gentle_cfg, 9) > 0, "gentle RED should admit some");
    }

    #[test]
    fn deterministic_under_same_seed() {
        let run = |seed: u64| {
            let mut q = RedQueue::new(cfg(50));
            let mut rng = SimRng::seed_from_u64(seed);
            let mut drops = 0;
            for i in 0..3000u64 {
                let now = SimTime::from_micros(i * 3);
                if q.try_enqueue(now, pkt(i), &mut rng).is_err() {
                    drops += 1;
                }
                if i % 4 == 0 {
                    q.dequeue(now);
                }
            }
            drops
        };
        assert_eq!(run(7), run(7));
    }
}
