//! Random Early Detection (RED) queue.
//!
//! The paper's testbed used drop-tail queues, but §1 argues slow-start bursts
//! are "hard on the rest of the traffic sharing the congested link" — the
//! friendliness experiments (E9) compare behaviour under both drop-tail and
//! RED bottlenecks, so an AQM variant is part of the substrate.
//!
//! Implementation follows Floyd & Jacobson 1993: EWMA average queue length,
//! linear drop probability between `min_th` and `max_th`, count-based spacing
//! of drops, and idle-time compensation.

use crate::packet::{Body, Packet};
use crate::queue::{DropTailQueue, EnqueueError, QueueConfig, QueueStats};
use rss_sim::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// RED parameters (thresholds in packets).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RedConfig {
    /// Average-queue threshold below which no packet is dropped.
    pub min_th: f64,
    /// Average-queue threshold above which every packet is dropped.
    pub max_th: f64,
    /// Drop probability at `max_th`.
    pub max_p: f64,
    /// EWMA weight for the average queue size.
    pub wq: f64,
    /// Hard capacity backing the RED logic.
    pub capacity: QueueConfig,
    /// Assumed transmission time of a small packet, for idle compensation.
    pub mean_pkt_time: SimDuration,
}

impl RedConfig {
    /// The ns-2 style defaults for a queue of `cap` packets.
    pub fn for_capacity(cap: u32, mean_pkt_time: SimDuration) -> Self {
        RedConfig {
            min_th: cap as f64 * 0.25,
            max_th: cap as f64 * 0.75,
            max_p: 0.1,
            wq: 0.002,
            capacity: QueueConfig::packets(cap),
            mean_pkt_time,
        }
    }
}

/// A RED-managed queue; wraps a [`DropTailQueue`] for storage.
#[derive(Debug, Clone)]
pub struct RedQueue<B> {
    cfg: RedConfig,
    inner: DropTailQueue<B>,
    avg: f64,
    count_since_drop: i64,
    idle_since: Option<SimTime>,
    early_drops: u64,
    forced_drops: u64,
}

impl<B: Body> RedQueue<B> {
    /// Create an empty RED queue.
    pub fn new(cfg: RedConfig) -> Self {
        assert!(cfg.min_th < cfg.max_th, "min_th must be below max_th");
        assert!(cfg.max_p > 0.0 && cfg.max_p <= 1.0);
        assert!(cfg.wq > 0.0 && cfg.wq <= 1.0);
        RedQueue {
            inner: DropTailQueue::new(cfg.capacity),
            cfg,
            avg: 0.0,
            count_since_drop: -1,
            idle_since: Some(SimTime::ZERO),
            early_drops: 0,
            forced_drops: 0,
        }
    }

    /// Current EWMA average queue length (packets).
    pub fn avg(&self) -> f64 {
        self.avg
    }

    /// Packets dropped by the early-detection mechanism.
    pub fn early_drops(&self) -> u64 {
        self.early_drops
    }

    /// Packets dropped because the hard capacity was exhausted.
    pub fn forced_drops(&self) -> u64 {
        self.forced_drops
    }

    /// Storage-layer statistics.
    pub fn stats(&self) -> QueueStats {
        self.inner.stats()
    }

    /// Current instantaneous length.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when no packets are queued.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    fn update_avg(&mut self, now: SimTime) {
        if let Some(idle_start) = self.idle_since {
            // Idle compensation: pretend `m` small packets drained while idle.
            let idle = now.saturating_since(idle_start);
            let m = idle.as_nanos() as f64 / self.cfg.mean_pkt_time.as_nanos().max(1) as f64;
            self.avg *= (1.0 - self.cfg.wq).powf(m);
            self.idle_since = None;
        }
        self.avg = (1.0 - self.cfg.wq) * self.avg + self.cfg.wq * self.inner.len() as f64;
    }

    /// Offer a packet at time `now`. Returns the packet back if RED (or the
    /// hard limit) drops it.
    pub fn try_enqueue(
        &mut self,
        now: SimTime,
        pkt: Packet<B>,
        rng: &mut SimRng,
    ) -> Result<(), (EnqueueError, Packet<B>)> {
        self.update_avg(now);
        if self.avg >= self.cfg.max_th {
            self.early_drops += 1;
            self.count_since_drop = 0;
            return Err((EnqueueError::PacketLimit, pkt));
        }
        if self.avg > self.cfg.min_th {
            self.count_since_drop += 1;
            let pb =
                self.cfg.max_p * (self.avg - self.cfg.min_th) / (self.cfg.max_th - self.cfg.min_th);
            let pa = pb / (1.0 - (self.count_since_drop as f64 * pb).min(0.999));
            if rng.chance(pa) {
                self.early_drops += 1;
                self.count_since_drop = 0;
                return Err((EnqueueError::PacketLimit, pkt));
            }
        } else {
            self.count_since_drop = -1;
        }
        match self.inner.try_enqueue(pkt) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.forced_drops += 1;
                self.count_since_drop = 0;
                Err(e)
            }
        }
    }

    /// Pop the head-of-line packet at `now`.
    pub fn dequeue(&mut self, now: SimTime) -> Option<Packet<B>> {
        let pkt = self.inner.dequeue();
        if self.inner.is_empty() {
            self.idle_since = Some(now);
        }
        pkt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, NodeId, RawBody};

    fn pkt(id: u64) -> Packet<RawBody> {
        Packet {
            id,
            src: NodeId(0),
            dst: NodeId(1),
            flow: FlowId(0),
            created: SimTime::ZERO,
            body: RawBody { size: 1000 },
        }
    }

    fn cfg(cap: u32) -> RedConfig {
        RedConfig::for_capacity(cap, SimDuration::from_micros(100))
    }

    #[test]
    fn below_min_th_never_drops() {
        let mut q = RedQueue::new(cfg(100));
        let mut rng = SimRng::seed_from_u64(1);
        // Keep instantaneous length at ~10 (min_th = 25): no early drops.
        for i in 0..1000u64 {
            let now = SimTime::from_micros(i * 100);
            q.try_enqueue(now, pkt(i), &mut rng).unwrap();
            if q.len() > 10 {
                q.dequeue(now);
            }
        }
        assert_eq!(q.early_drops(), 0);
    }

    #[test]
    fn sustained_overload_triggers_early_drops() {
        let mut q = RedQueue::new(cfg(100));
        let mut rng = SimRng::seed_from_u64(2);
        let mut accepted = 0u32;
        // Fill without draining: avg climbs through min_th toward max_th.
        for i in 0..5000u64 {
            let now = SimTime::from_micros(i);
            if q.try_enqueue(now, pkt(i), &mut rng).is_ok() {
                accepted += 1;
            }
        }
        assert!(q.early_drops() > 0, "no early drops under overload");
        assert!(accepted <= 100, "hard capacity respected");
    }

    #[test]
    fn average_tracks_instantaneous_slowly() {
        let mut q = RedQueue::new(cfg(100));
        let mut rng = SimRng::seed_from_u64(3);
        for i in 0..20u64 {
            q.try_enqueue(SimTime::from_micros(i), pkt(i), &mut rng)
                .unwrap();
        }
        // 20 packets queued but wq = 0.002: average far below instantaneous.
        assert!(q.avg() < 2.0, "avg {}", q.avg());
        assert_eq!(q.len(), 20);
    }

    #[test]
    fn idle_period_decays_average() {
        let mut q = RedQueue::new(cfg(100));
        let mut rng = SimRng::seed_from_u64(4);
        for i in 0..2000u64 {
            let _ = q.try_enqueue(SimTime::from_micros(i), pkt(i), &mut rng);
        }
        while q.dequeue(SimTime::from_millis(2)).is_some() {}
        let avg_before = q.avg();
        assert!(avg_before > 0.5);
        // Long idle: offering a packet much later sees a decayed average.
        q.try_enqueue(SimTime::from_secs(10), pkt(99_999), &mut rng)
            .unwrap();
        assert!(q.avg() < 0.1, "avg after idle {}", q.avg());
    }

    #[test]
    fn deterministic_under_same_seed() {
        let run = |seed: u64| {
            let mut q = RedQueue::new(cfg(50));
            let mut rng = SimRng::seed_from_u64(seed);
            let mut drops = 0;
            for i in 0..3000u64 {
                let now = SimTime::from_micros(i * 3);
                if q.try_enqueue(now, pkt(i), &mut rng).is_err() {
                    drops += 1;
                }
                if i % 4 == 0 {
                    q.dequeue(now);
                }
            }
            drops
        };
        assert_eq!(run(7), run(7));
    }
}
