//! The network fabric: packet motion through links and router queues.
//!
//! The fabric owns the *interior* of the network — router egress ports, their
//! queues, and the links. End hosts are the edge: a host NIC (modelled in
//! `rss-host`) serializes a packet and calls [`Fabric::start_flight`]; when a
//! packet arrives back at a host edge, [`Fabric::handle`] returns it to the
//! caller for delivery to the transport layer.
//!
//! The fabric is generic over the packet body and over the event-scheduling
//! callback, so the embedding world model decides how fabric events are
//! represented in its own event enum.

use crate::arena::{ArenaMode, PacketArena, PacketRef};
use crate::impair::{Impairment, Verdict};
use crate::packet::{Body, LinkId, NodeId, Packet};
use crate::queue::{DropTailQueue, QueueConfig, QueueStats};
use crate::red::{RedConfig, RedQueue, RedStats};
use crate::topology::{NodeKind, RoutingTable, Topology};
use rss_sim::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// Fabric-internal events. The embedding model stores these in its own event
/// enum and feeds them back into [`Fabric::handle`].
///
/// Plain-old-data: in-flight packet payloads are parked in the fabric's
/// [`PacketArena`] and the event carries only the 8-byte [`PacketRef`], so
/// scheduling a hop copies ~16 bytes instead of a full [`Packet`].
#[derive(Debug, Clone, Copy)]
pub enum NetEvent {
    /// A packet finished propagating along `link` and reached `node`.
    Arrival {
        /// Node the packet arrived at.
        node: NodeId,
        /// Link it arrived on.
        link: LinkId,
        /// Handle to the packet, parked in the fabric's arena.
        pkt: PacketRef,
    },
    /// A router egress port finished serializing its current packet.
    PortTxDone {
        /// Router owning the port.
        node: NodeId,
        /// Link the port feeds.
        link: LinkId,
    },
}

/// Queue discipline on a router egress port.
pub enum PortQueue<B> {
    /// Plain drop-tail FIFO.
    DropTail(DropTailQueue<B>),
    /// RED active queue management.
    Red(RedQueue<B>),
}

impl<B: Body> PortQueue<B> {
    /// Offer a packet to the queue discipline; `false` means it was dropped.
    /// Drop-tail ignores `now` and `rng`; RED consumes both.
    pub fn try_enqueue(&mut self, now: SimTime, pkt: Packet<B>, rng: &mut SimRng) -> bool {
        match self {
            PortQueue::DropTail(q) => q.try_enqueue(pkt).is_ok(),
            PortQueue::Red(q) => q.try_enqueue(now, pkt, rng).is_ok(),
        }
    }
    /// Take the next packet for transmission.
    pub fn dequeue(&mut self, now: SimTime) -> Option<Packet<B>> {
        match self {
            PortQueue::DropTail(q) => q.dequeue(),
            PortQueue::Red(q) => q.dequeue(now),
        }
    }
    /// Current queue occupancy in packets.
    pub fn len(&self) -> usize {
        match self {
            PortQueue::DropTail(q) => q.len(),
            PortQueue::Red(q) => q.len(),
        }
    }
    /// Whether the queue holds no packets.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Storage-layer statistics.
    pub fn stats(&self) -> QueueStats {
        match self {
            PortQueue::DropTail(q) => q.stats(),
            PortQueue::Red(q) => q.stats(),
        }
    }
    /// RED counters, when this port runs RED (None for drop-tail).
    pub fn red_stats(&self) -> Option<RedStats> {
        match self {
            PortQueue::DropTail(_) => None,
            PortQueue::Red(q) => Some(q.red_stats()),
        }
    }
}

struct Port<B> {
    queue: PortQueue<B>,
    /// The packet currently being serialized, if any.
    transmitting: Option<Packet<B>>,
}

/// Per-link transfer statistics (one entry per direction of use).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct LinkStats {
    /// Packets that completed the link.
    pub delivered_pkts: u64,
    /// Bytes that completed the link.
    pub delivered_bytes: u64,
    /// Packets lost to random link loss.
    pub lost_pkts: u64,
}

/// The interior packet-forwarding machine.
///
/// Router egress ports and link statistics live in dense tables built once at
/// construction ("topology-freeze") time: a link has exactly two ends, so the
/// port for `(node, link)` sits at `link * 2 + side`, and the per-hop lookups
/// on the packet path are indexed loads instead of tree walks.
pub struct Fabric<B> {
    topo: Topology,
    routes: RoutingTable,
    /// `ports[link * 2 + side]`; `None` for host-side ends of a link.
    ports: Vec<Option<Port<B>>>,
    rng: SimRng,
    /// Per-link-direction impairments, indexed like ports (`link*2 + side`).
    /// `None` (the default everywhere) is a zero-cost clean link.
    impairments: Vec<Option<Impairment>>,
    /// Per-link transfer statistics, indexed by raw link id.
    link_stats: Vec<LinkStats>,
    /// In-flight packet payloads, referenced by [`NetEvent::Arrival`] events.
    arena: PacketArena<B>,
    /// Packets dropped at routers because no route existed.
    pub unroutable_drops: u64,
    /// Packets dropped at router queues.
    pub queue_drops: u64,
}

impl<B: Body> Fabric<B> {
    /// Build a fabric over `topo` with drop-tail queues of `router_queue`
    /// capacity on every router egress port.
    pub fn new(topo: Topology, router_queue: QueueConfig, rng: SimRng) -> Self {
        let routes = topo.compute_routes();
        let mut ports: Vec<Option<Port<B>>> = Vec::new();
        ports.resize_with(topo.links().len() * 2, || None);
        for node in topo.nodes() {
            if topo.kind(node) == NodeKind::Router {
                for &(link, _) in topo.neighbors(node) {
                    let idx = port_index(&topo, node, link);
                    ports[idx] = Some(Port {
                        queue: PortQueue::DropTail(DropTailQueue::new(router_queue)),
                        transmitting: None,
                    });
                }
            }
        }
        Fabric {
            impairments: (0..topo.links().len() * 2).map(|_| None).collect(),
            link_stats: vec![LinkStats::default(); topo.links().len()],
            topo,
            routes,
            ports,
            rng,
            arena: PacketArena::new(),
            unroutable_drops: 0,
            queue_drops: 0,
        }
    }

    /// Switch the in-flight arena's slot-recycling policy (testing aid:
    /// [`ArenaMode::Fresh`] is the allocation-per-packet reference build).
    /// Call before any traffic starts.
    pub fn set_arena_mode(&mut self, mode: ArenaMode) {
        self.arena.set_mode(mode);
    }

    /// Packets currently in flight on links (parked in the arena). A drained
    /// run ends at zero; anything else is a leak.
    pub fn packets_in_flight(&self) -> usize {
        self.arena.live()
    }

    /// Replace the queue on one router egress port with RED.
    pub fn set_red_port(&mut self, node: NodeId, link: LinkId, cfg: RedConfig) {
        let idx = port_index(&self.topo, node, link);
        let port = self.ports[idx].as_mut().expect("not a router egress port");
        port.queue = PortQueue::Red(RedQueue::new(cfg));
    }

    /// The topology the fabric runs on.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Install a deterministic impairment on the direction of `link` whose
    /// packets depart `from`. Each direction carries its own instance (its
    /// own random streams); impairing one direction leaves the other clean.
    pub fn set_impairment(&mut self, link: LinkId, from: NodeId, imp: Impairment) {
        let idx = port_index(&self.topo, from, link);
        self.impairments[idx] = Some(imp);
    }

    /// The impairment installed on `(link, from)`, if any — read-only access
    /// for post-run drop/jitter accounting.
    pub fn impairment(&self, link: LinkId, from: NodeId) -> Option<&Impairment> {
        try_port_index(&self.topo, from, link).and_then(|idx| self.impairments[idx].as_ref())
    }

    /// The routing table (mutable, for override experiments).
    pub fn routes_mut(&mut self) -> &mut RoutingTable {
        &mut self.routes
    }

    /// Statistics for a link (zeroed default if unused).
    pub fn link_stats(&self, link: LinkId) -> LinkStats {
        self.link_stats
            .get(link.0 as usize)
            .copied()
            .unwrap_or_default()
    }

    /// Queue statistics of a router egress port (None for a pair that is not
    /// a router egress port, including nodes not on the link).
    pub fn port_stats(&self, node: NodeId, link: LinkId) -> Option<QueueStats> {
        try_port_index(&self.topo, node, link)
            .and_then(|idx| self.ports[idx].as_ref())
            .map(|p| p.queue.stats())
    }

    /// Instantaneous queue length of a router egress port.
    pub fn port_queue_len(&self, node: NodeId, link: LinkId) -> Option<usize> {
        try_port_index(&self.topo, node, link)
            .and_then(|idx| self.ports[idx].as_ref())
            .map(|p| p.queue.len())
    }

    /// RED counters of a router egress port; None when the pair is not a
    /// router egress port or the port runs drop-tail.
    pub fn red_port_stats(&self, node: NodeId, link: LinkId) -> Option<RedStats> {
        try_port_index(&self.topo, node, link)
            .and_then(|idx| self.ports[idx].as_ref())
            .and_then(|p| p.queue.red_stats())
    }

    /// Put a fully serialized packet onto `link` leaving `from`: applies the
    /// link loss model and schedules the far-end arrival.
    ///
    /// Host NICs call this directly (their serialization time is the NIC's
    /// business); router ports call it internally when serialization ends.
    pub fn start_flight(
        &mut self,
        now: SimTime,
        from: NodeId,
        link: LinkId,
        pkt: Packet<B>,
        sched: &mut dyn FnMut(SimDuration, NetEvent),
    ) {
        let spec = *self.topo.link(link);
        let stats = &mut self.link_stats[link.0 as usize];
        if spec.params.loss_prob > 0.0 && self.rng.chance(spec.params.loss_prob) {
            stats.lost_pkts += 1;
            return;
        }
        // The impairment layer sees each departure after the independent
        // loss model: outage/burst drops, jitter (delay is only ever added,
        // so the link's propagation delay stays a valid lookahead bound for
        // the sharded executor) and duplication.
        let dir = port_index(&self.topo, from, link);
        let (extra_delay, duplicate) = match self.impairments[dir].as_mut() {
            None => (SimDuration::ZERO, false),
            Some(imp) => match imp.decide(now) {
                Verdict::Drop(_) => {
                    stats.lost_pkts += 1;
                    return;
                }
                Verdict::Deliver {
                    extra_delay,
                    duplicate,
                } => (extra_delay, duplicate),
            },
        };
        let to = spec.other_end(from);
        if duplicate {
            // The copy takes its own jittered flight; same packet id, so the
            // receiver's dedup accounting sees it as a true duplicate.
            let extra2 = self.impairments[dir]
                .as_mut()
                .expect("duplicate verdict implies an impairment")
                .dup_jitter();
            stats.delivered_pkts += 1;
            stats.delivered_bytes += pkt.wire_size() as u64;
            let dup = self.arena.insert(pkt.clone());
            sched(
                spec.params.prop_delay + extra2,
                NetEvent::Arrival {
                    node: to,
                    link,
                    pkt: dup,
                },
            );
        }
        stats.delivered_pkts += 1;
        stats.delivered_bytes += pkt.wire_size() as u64;
        let parked = self.arena.insert(pkt);
        sched(
            spec.params.prop_delay + extra_delay,
            NetEvent::Arrival {
                node: to,
                link,
                pkt: parked,
            },
        );
    }

    /// If `port` is idle and has queued work, begin serializing the next
    /// packet.
    fn kick_port(
        &mut self,
        node: NodeId,
        link: LinkId,
        now: SimTime,
        sched: &mut dyn FnMut(SimDuration, NetEvent),
    ) {
        let idx = port_index(&self.topo, node, link);
        let port = self.ports[idx].as_mut().expect("missing port");
        if port.transmitting.is_some() {
            return;
        }
        let Some(pkt) = port.queue.dequeue(now) else {
            return;
        };
        let ser = self.topo.link(link).params.serialize_time(pkt.wire_size());
        port.transmitting = Some(pkt);
        sched(ser, NetEvent::PortTxDone { node, link });
    }

    /// Process one fabric event. Returns `Some((host, packet))` when a packet
    /// reaches an end host — the caller delivers it to the transport layer.
    pub fn handle(
        &mut self,
        ev: NetEvent,
        now: SimTime,
        sched: &mut dyn FnMut(SimDuration, NetEvent),
    ) -> Option<(NodeId, Packet<B>)> {
        match ev {
            NetEvent::Arrival { node, pkt, .. } => {
                let pkt = self.arena.take(pkt);
                if self.topo.kind(node) == NodeKind::Host {
                    return Some((node, pkt));
                }
                // Router: forward.
                let Some(out_link) = self.routes.next_link(node, pkt.dst) else {
                    self.unroutable_drops += 1;
                    return None;
                };
                let idx = port_index(&self.topo, node, out_link);
                let port = self.ports[idx].as_mut().expect("router port missing");
                if port.queue.try_enqueue(now, pkt, &mut self.rng) {
                    self.kick_port(node, out_link, now, sched);
                } else {
                    self.queue_drops += 1;
                }
                None
            }
            NetEvent::PortTxDone { node, link } => {
                let idx = port_index(&self.topo, node, link);
                let port = self.ports[idx].as_mut().expect("missing port");
                let pkt = port
                    .transmitting
                    .take()
                    .expect("PortTxDone with no packet in flight");
                self.start_flight(now, node, link, pkt, sched);
                self.kick_port(node, link, now, sched);
                None
            }
        }
    }
}

/// Dense index of the egress port at `node` feeding `link`: a link has two
/// ends, so ports live at `link * 2 + side`. Hot-path variant: the endpoint
/// check is a couple of compares and keeps an internal invariant violation
/// loud in release instead of silently resolving to the wrong port.
#[inline]
fn port_index(topo: &Topology, node: NodeId, link: LinkId) -> usize {
    let spec = topo.link(link);
    assert!(node == spec.a || node == spec.b, "node not on link");
    link.0 as usize * 2 + usize::from(node == spec.b)
}

/// Validated [`port_index`] for externally-supplied `(node, link)` pairs:
/// None when the link is unknown or `node` is not one of its endpoints.
fn try_port_index(topo: &Topology, node: NodeId, link: LinkId) -> Option<usize> {
    let spec = topo.links().get(link.0 as usize)?;
    (node == spec.a || node == spec.b).then(|| link.0 as usize * 2 + usize::from(node == spec.b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, PacketIdGen, RawBody};
    use crate::topology::{dumbbell, LinkParams};
    use rss_sim::{Engine, Model, Scheduler};

    /// Minimal world: raw packets pumped through a fabric, arrivals counted.
    struct RawWorld {
        fabric: Fabric<RawBody>,
        delivered: Vec<(SimTime, NodeId, u64)>,
    }

    impl Model for RawWorld {
        type Event = NetEvent;
        fn handle(&mut self, ev: Self::Event, sched: &mut Scheduler<'_, Self::Event>) {
            let now = sched.now();
            // Fabric follow-up events go straight into the scheduler — no
            // per-hop buffering.
            let out = self.fabric.handle(ev, now, &mut |d, e| {
                sched.after(d, e);
            });
            if let Some((node, pkt)) = out {
                self.delivered.push((now, node, pkt.id));
            }
        }
    }

    fn mk_world(
        n: usize,
        bn_rate: u64,
        queue: QueueConfig,
    ) -> (RawWorld, crate::topology::Dumbbell) {
        let access = LinkParams::new(1_000_000_000, SimDuration::from_micros(100));
        let bottleneck = LinkParams::new(bn_rate, SimDuration::from_millis(10));
        let (topo, d) = dumbbell(n, access, bottleneck);
        let fabric = Fabric::new(topo, queue, SimRng::seed_from_u64(99));
        (
            RawWorld {
                fabric,
                delivered: vec![],
            },
            d,
        )
    }

    /// Injection-time events outlive the `model_mut` borrow, so they stage
    /// through `pending` — a buffer the caller reuses across injections.
    #[allow(clippy::too_many_arguments)]
    fn send(
        eng: &mut Engine<RawWorld>,
        ids: &mut PacketIdGen,
        pending: &mut Vec<(SimDuration, NetEvent)>,
        from: NodeId,
        link: LinkId,
        dst: NodeId,
        size: u32,
        at: SimTime,
    ) {
        let pkt = Packet {
            id: ids.next_id(),
            src: from,
            dst,
            flow: FlowId(0),
            created: at,
            body: RawBody { size },
        };
        // Emulate a host NIC that has already serialized the packet.
        eng.model_mut()
            .fabric
            .start_flight(at, from, link, pkt, &mut |d, e| pending.push((d, e)));
        for (d, e) in pending.drain(..) {
            eng.schedule_at(at + d, e);
        }
    }

    #[test]
    fn packet_crosses_dumbbell_with_correct_latency() {
        let (world, d) = mk_world(1, 100_000_000, QueueConfig::packets(100));
        let mut eng = Engine::new(world);
        let mut ids = PacketIdGen::new();
        let mut pending = Vec::new();
        send(
            &mut eng,
            &mut ids,
            &mut pending,
            d.senders[0],
            d.sender_access[0],
            d.receivers[0],
            1500,
            SimTime::ZERO,
        );
        eng.run_to_completion();
        let delivered = &eng.model().delivered;
        assert_eq!(delivered.len(), 1);
        let (t, node, _) = delivered[0];
        assert_eq!(node, d.receivers[0]);
        // A drained run leaves no packets parked in the arena.
        assert_eq!(eng.model().fabric.packets_in_flight(), 0);
        // Latency: prop 100us + (ser 120us + prop 10ms) + (ser 12us + prop 100us)
        let expect = SimDuration::from_micros(100)
            + SimDuration::for_bytes_at_rate(1500, 100_000_000)
            + SimDuration::from_millis(10)
            + SimDuration::for_bytes_at_rate(1500, 1_000_000_000)
            + SimDuration::from_micros(100);
        assert_eq!(t, SimTime::ZERO + expect);
    }

    #[test]
    fn bottleneck_serializes_back_to_back_packets() {
        let (world, d) = mk_world(1, 100_000_000, QueueConfig::packets(100));
        let mut eng = Engine::new(world);
        let mut ids = PacketIdGen::new();
        let mut pending = Vec::new();
        // Two packets injected at the same instant: the second must leave the
        // bottleneck one serialization time after the first.
        for _ in 0..2 {
            send(
                &mut eng,
                &mut ids,
                &mut pending,
                d.senders[0],
                d.sender_access[0],
                d.receivers[0],
                1500,
                SimTime::ZERO,
            );
        }
        eng.run_to_completion();
        let delivered = &eng.model().delivered;
        assert_eq!(delivered.len(), 2);
        let gap = delivered[1].0 - delivered[0].0;
        assert_eq!(gap, SimDuration::for_bytes_at_rate(1500, 100_000_000));
    }

    #[test]
    fn router_queue_overflow_drops() {
        // 2-packet router queue, 10 packets at once: expect drops.
        let (world, d) = mk_world(1, 10_000_000, QueueConfig::packets(2));
        let mut eng = Engine::new(world);
        let mut ids = PacketIdGen::new();
        let mut pending = Vec::new();
        for _ in 0..10 {
            send(
                &mut eng,
                &mut ids,
                &mut pending,
                d.senders[0],
                d.sender_access[0],
                d.receivers[0],
                1500,
                SimTime::ZERO,
            );
        }
        eng.run_to_completion();
        let world = eng.model();
        // 1 transmitting + 2 queued survive at the left router.
        assert_eq!(world.delivered.len(), 3);
        assert_eq!(world.fabric.queue_drops, 7);
    }

    #[test]
    fn fifo_order_end_to_end() {
        let (world, d) = mk_world(1, 50_000_000, QueueConfig::packets(100));
        let mut eng = Engine::new(world);
        let mut ids = PacketIdGen::new();
        let mut pending = Vec::new();
        for i in 0..20u64 {
            send(
                &mut eng,
                &mut ids,
                &mut pending,
                d.senders[0],
                d.sender_access[0],
                d.receivers[0],
                1000,
                SimTime::from_micros(i * 5),
            );
        }
        eng.run_to_completion();
        let ids_seen: Vec<u64> = eng.model().delivered.iter().map(|&(_, _, id)| id).collect();
        let mut sorted = ids_seen.clone();
        sorted.sort_unstable();
        assert_eq!(ids_seen, sorted, "packets reordered");
        assert_eq!(ids_seen.len(), 20);
    }

    #[test]
    fn lossy_link_drops_deterministically() {
        let access = LinkParams::new(1_000_000_000, SimDuration::from_micros(100));
        let bottleneck = LinkParams::new(100_000_000, SimDuration::from_millis(10)).with_loss(0.5);
        let (topo, d) = dumbbell(1, access, bottleneck);
        let run = |seed: u64| {
            let fabric = Fabric::new(
                topo.clone(),
                QueueConfig::packets(100),
                SimRng::seed_from_u64(seed),
            );
            let mut eng = Engine::new(RawWorld {
                fabric,
                delivered: vec![],
            });
            let mut ids = PacketIdGen::new();
            let mut pending = Vec::new();
            for i in 0..100u64 {
                send(
                    &mut eng,
                    &mut ids,
                    &mut pending,
                    d.senders[0],
                    d.sender_access[0],
                    d.receivers[0],
                    1000,
                    SimTime::from_micros(i * 200),
                );
            }
            eng.run_to_completion();
            eng.model().delivered.len()
        };
        let a = run(5);
        let b = run(5);
        assert_eq!(a, b, "same seed must give identical loss pattern");
        assert!(a > 20 && a < 80, "loss rate wildly off: {a}/100 delivered");
    }

    #[test]
    fn link_stats_account_bytes() {
        let (world, d) = mk_world(1, 100_000_000, QueueConfig::packets(100));
        let mut eng = Engine::new(world);
        let mut ids = PacketIdGen::new();
        let mut pending = Vec::new();
        for _ in 0..5 {
            send(
                &mut eng,
                &mut ids,
                &mut pending,
                d.senders[0],
                d.sender_access[0],
                d.receivers[0],
                1500,
                SimTime::ZERO,
            );
        }
        eng.run_to_completion();
        let s = eng.model().fabric.link_stats(d.bottleneck);
        assert_eq!(s.delivered_pkts, 5);
        assert_eq!(s.delivered_bytes, 7500);
    }
}
