//! Cross-traffic generators.
//!
//! §1 of the paper argues that slow-start bursts on big-BDP paths are "hard
//! on the rest of the traffic sharing the congested link"; the friendliness
//! experiments (E9) share the bottleneck between the TCP flow under test and
//! these open-loop sources.

use rss_sim::{SimDuration, SimRng};
use serde::{Deserialize, Serialize};

/// The arrival process of a source.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TrafficPattern {
    /// Constant bit rate: one `pkt_size` packet every `size·8/rate`.
    Cbr {
        /// Offered rate in bits/s.
        rate_bps: u64,
        /// Packet size in bytes.
        pkt_size: u32,
    },
    /// Poisson arrivals with the same mean rate.
    Poisson {
        /// Offered mean rate in bits/s.
        rate_bps: u64,
        /// Packet size in bytes.
        pkt_size: u32,
    },
    /// Exponential on/off source: CBR bursts at `rate_bps` during "on"
    /// periods (mean `on_mean_s`), silent during "off" (mean `off_mean_s`).
    OnOff {
        /// Burst rate in bits/s while on.
        rate_bps: u64,
        /// Packet size in bytes.
        pkt_size: u32,
        /// Mean on-period, seconds.
        on_mean_s: f64,
        /// Mean off-period, seconds.
        off_mean_s: f64,
    },
}

impl TrafficPattern {
    /// The long-run average offered load in bits/s.
    pub fn mean_rate_bps(&self) -> f64 {
        match *self {
            TrafficPattern::Cbr { rate_bps, .. } | TrafficPattern::Poisson { rate_bps, .. } => {
                rate_bps as f64
            }
            TrafficPattern::OnOff {
                rate_bps,
                on_mean_s,
                off_mean_s,
                ..
            } => rate_bps as f64 * on_mean_s / (on_mean_s + off_mean_s),
        }
    }
}

/// A stateful source producing `(inter-arrival gap, packet size)` pairs.
#[derive(Debug, Clone)]
pub struct TrafficSource {
    pattern: TrafficPattern,
    rng: SimRng,
    /// Remaining time in the current on-period (OnOff only).
    on_remaining_s: f64,
}

impl TrafficSource {
    /// Create a source with its own RNG stream.
    pub fn new(pattern: TrafficPattern, rng: SimRng) -> Self {
        TrafficSource {
            pattern,
            rng,
            on_remaining_s: 0.0,
        }
    }

    /// The pattern this source follows.
    pub fn pattern(&self) -> TrafficPattern {
        self.pattern
    }

    /// Gap to wait before emitting the next packet, and its size.
    pub fn next_packet(&mut self) -> (SimDuration, u32) {
        match self.pattern {
            TrafficPattern::Cbr { rate_bps, pkt_size } => (
                SimDuration::for_bytes_at_rate(pkt_size as u64, rate_bps),
                pkt_size,
            ),
            TrafficPattern::Poisson { rate_bps, pkt_size } => {
                let mean_gap_s = pkt_size as f64 * 8.0 / rate_bps as f64;
                (
                    SimDuration::from_secs_f64(self.rng.exp_with_mean(mean_gap_s)),
                    pkt_size,
                )
            }
            TrafficPattern::OnOff {
                rate_bps,
                pkt_size,
                on_mean_s,
                off_mean_s,
            } => {
                let gap_s = pkt_size as f64 * 8.0 / rate_bps as f64;
                let mut wait = 0.0;
                // Consume on-time; when it runs out, insert an off-period and
                // draw a fresh on-period.
                while self.on_remaining_s < gap_s {
                    wait += self.rng.exp_with_mean(off_mean_s);
                    self.on_remaining_s += self.rng.exp_with_mean(on_mean_s);
                }
                self.on_remaining_s -= gap_s;
                (SimDuration::from_secs_f64(wait + gap_s), pkt_size)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cbr_gap_is_exact() {
        let mut s = TrafficSource::new(
            TrafficPattern::Cbr {
                rate_bps: 8_000_000,
                pkt_size: 1000,
            },
            SimRng::seed_from_u64(1),
        );
        let (gap, size) = s.next_packet();
        assert_eq!(size, 1000);
        assert_eq!(gap, SimDuration::from_millis(1)); // 8000 bits / 8 Mbit/s
        assert_eq!(s.next_packet().0, gap, "CBR gaps constant");
    }

    #[test]
    fn poisson_mean_rate_approximates_target() {
        let mut s = TrafficSource::new(
            TrafficPattern::Poisson {
                rate_bps: 10_000_000,
                pkt_size: 1250,
            },
            SimRng::seed_from_u64(2),
        );
        let n = 50_000;
        let mut total = SimDuration::ZERO;
        for _ in 0..n {
            total += s.next_packet().0;
        }
        let bits = n as f64 * 1250.0 * 8.0;
        let rate = bits / total.as_secs_f64();
        assert!(
            (rate - 10_000_000.0).abs() / 10_000_000.0 < 0.02,
            "rate {rate}"
        );
    }

    #[test]
    fn onoff_long_run_rate_matches_duty_cycle() {
        let pattern = TrafficPattern::OnOff {
            rate_bps: 20_000_000,
            pkt_size: 1250,
            on_mean_s: 0.1,
            off_mean_s: 0.3,
        };
        assert!((pattern.mean_rate_bps() - 5_000_000.0).abs() < 1.0);
        let mut s = TrafficSource::new(pattern, SimRng::seed_from_u64(3));
        let n = 100_000;
        let mut total = SimDuration::ZERO;
        for _ in 0..n {
            total += s.next_packet().0;
        }
        let bits = n as f64 * 1250.0 * 8.0;
        let rate = bits / total.as_secs_f64();
        // ~500 on/off cycles in this sample: expect a few percent of noise.
        assert!(
            (rate - 5_000_000.0).abs() / 5_000_000.0 < 0.10,
            "rate {rate}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let mk = || {
            TrafficSource::new(
                TrafficPattern::Poisson {
                    rate_bps: 1_000_000,
                    pkt_size: 500,
                },
                SimRng::seed_from_u64(42),
            )
        };
        let mut a = mk();
        let mut b = mk();
        for _ in 0..100 {
            assert_eq!(a.next_packet(), b.next_packet());
        }
    }
}
