//! Topology graph: hosts, routers, links and static routing.
//!
//! The paper's testbed is a single WAN path (ANL ↔ LBNL); the reproduction
//! models it — and the multi-flow extension experiments — as an explicit
//! graph with BFS-computed static routes, the standard dumbbell being the
//! canonical instance.

use crate::packet::{LinkId, NodeId};
use rss_sim::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// What a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeKind {
    /// An end host: runs a transport stack; terminates flows.
    Host,
    /// A router: forwards packets between links.
    Router,
}

/// Physical characteristics of a (bidirectional, symmetric) link.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LinkParams {
    /// Line rate, bits per second (used for serialization delay).
    pub rate_bps: u64,
    /// One-way propagation delay.
    pub prop_delay: SimDuration,
    /// Independent per-packet loss probability (0 disables).
    pub loss_prob: f64,
}

impl LinkParams {
    /// A loss-free link.
    pub fn new(rate_bps: u64, prop_delay: SimDuration) -> Self {
        LinkParams {
            rate_bps,
            prop_delay,
            loss_prob: 0.0,
        }
    }

    /// Builder: set random loss.
    pub fn with_loss(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        self.loss_prob = p;
        self
    }

    /// Serialization time of `bytes` on this link.
    pub fn serialize_time(&self, bytes: u32) -> SimDuration {
        SimDuration::for_bytes_at_rate(bytes as u64, self.rate_bps)
    }
}

/// A link instance between two nodes.
#[derive(Debug, Clone, Copy)]
pub struct LinkSpec {
    /// Link identifier.
    pub id: LinkId,
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Physical parameters (symmetric in both directions).
    pub params: LinkParams,
}

impl LinkSpec {
    /// The endpoint that is not `n`. Panics if `n` is not attached.
    pub fn other_end(&self, n: NodeId) -> NodeId {
        if n == self.a {
            self.b
        } else if n == self.b {
            self.a
        } else {
            panic!("node {n:?} not on link {:?}", self.id)
        }
    }
}

/// The network graph.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    nodes: Vec<NodeKind>,
    links: Vec<LinkSpec>,
    adjacency: Vec<Vec<(LinkId, NodeId)>>,
}

impl Topology {
    /// Empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    fn add_node(&mut self, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(kind);
        self.adjacency.push(Vec::new());
        id
    }

    /// Add an end host.
    pub fn add_host(&mut self) -> NodeId {
        self.add_node(NodeKind::Host)
    }

    /// Add a router.
    pub fn add_router(&mut self) -> NodeId {
        self.add_node(NodeKind::Router)
    }

    /// Connect two nodes with a symmetric link.
    pub fn connect(&mut self, a: NodeId, b: NodeId, params: LinkParams) -> LinkId {
        assert!(a != b, "self-loops not allowed");
        let id = LinkId(self.links.len() as u32);
        self.links.push(LinkSpec { id, a, b, params });
        self.adjacency[a.0 as usize].push((id, b));
        self.adjacency[b.0 as usize].push((id, a));
        id
    }

    /// Node kind lookup.
    pub fn kind(&self, n: NodeId) -> NodeKind {
        self.nodes[n.0 as usize]
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Link lookup.
    pub fn link(&self, id: LinkId) -> &LinkSpec {
        &self.links[id.0 as usize]
    }

    /// All links.
    pub fn links(&self) -> &[LinkSpec] {
        &self.links
    }

    /// Links incident to `n` as `(link, neighbor)` pairs.
    pub fn neighbors(&self, n: NodeId) -> &[(LinkId, NodeId)] {
        &self.adjacency[n.0 as usize]
    }

    /// The unique link between `a` and `b`, if any.
    pub fn link_between(&self, a: NodeId, b: NodeId) -> Option<LinkId> {
        self.adjacency[a.0 as usize]
            .iter()
            .find(|&&(_, nb)| nb == b)
            .map(|&(l, _)| l)
    }

    /// Compute shortest-path (hop count) static routes.
    ///
    /// Routing decisions are only made where a node has a choice: routers
    /// (and the rare multi-homed host) get a dense per-destination row built
    /// by one BFS from that node; a single-link host trivially forwards
    /// everything over its only link. This keeps the table `O(routers ×
    /// nodes)` instead of `O(nodes²)` — a 10k-pair dumbbell has 20k hosts
    /// but only two routers, so the dense-everything table would waste
    /// ~1.6 GB on rows nothing ever reads.
    pub fn compute_routes(&self) -> RoutingTable {
        let rows = self
            .nodes()
            .map(|node| {
                let adj = self.neighbors(node);
                match self.kind(node) {
                    NodeKind::Host if adj.is_empty() => RouteRow::Empty,
                    NodeKind::Host if adj.len() == 1 => RouteRow::Leaf(adj[0].0 .0),
                    // Routers always get a real row: a single-link router
                    // must still answer `None` for unreachable destinations
                    // or packets would ping-pong forever.
                    _ => RouteRow::Dense(self.first_link_row(node)),
                }
            })
            .collect();
        RoutingTable {
            nodes: self.node_count() as u32,
            rows,
        }
    }

    /// BFS from `src`: for every destination, the first link on a
    /// shortest (hop-count) path out of `src`, or `NO_ROUTE`.
    fn first_link_row(&self, src: NodeId) -> Vec<u32> {
        let n = self.node_count();
        let mut row = vec![NO_ROUTE; n];
        let mut visited = vec![false; n];
        visited[src.0 as usize] = true;
        let mut q = VecDeque::new();
        // Seed: each direct neighbor is reached over its own edge; deeper
        // nodes inherit the first link from whichever parent found them
        // first, so adjacency order fixes ties deterministically.
        for &(link, nb) in self.neighbors(src) {
            if !visited[nb.0 as usize] {
                visited[nb.0 as usize] = true;
                row[nb.0 as usize] = link.0;
                q.push_back(nb);
            }
        }
        while let Some(at) = q.pop_front() {
            let first = row[at.0 as usize];
            for &(_, nb) in self.neighbors(at) {
                if !visited[nb.0 as usize] {
                    visited[nb.0 as usize] = true;
                    row[nb.0 as usize] = first;
                    q.push_back(nb);
                }
            }
        }
        row
    }
}

/// Dense-row sentinel for "no route".
const NO_ROUTE: u32 = u32::MAX;

/// One node's routing knowledge.
#[derive(Debug, Clone)]
enum RouteRow {
    /// Isolated node: nothing is reachable.
    Empty,
    /// Single-link host: every destination goes over that link.
    /// Reachability is enforced at the first router, which drops
    /// packets for destinations it has no row entry for.
    Leaf(u32),
    /// Per-destination next-hop links (routers and multi-homed hosts).
    Dense(Vec<u32>),
}

/// Static next-hop routing: `(at, dst) → link to forward on`.
///
/// Frozen at [`Topology::compute_routes`] time; the per-hop lookup on the
/// packet path is one match plus (for routers) a single indexed load.
#[derive(Debug, Clone, Default)]
pub struct RoutingTable {
    nodes: u32,
    rows: Vec<RouteRow>,
}

impl RoutingTable {
    /// The link to use at `at` toward `dst` (None if unreachable).
    #[inline]
    pub fn next_link(&self, at: NodeId, dst: NodeId) -> Option<LinkId> {
        if at.0 >= self.nodes || dst.0 >= self.nodes || at == dst {
            return None;
        }
        match &self.rows[at.0 as usize] {
            RouteRow::Empty => None,
            RouteRow::Leaf(link) => Some(LinkId(*link)),
            RouteRow::Dense(row) => {
                let raw = row[dst.0 as usize];
                (raw != NO_ROUTE).then_some(LinkId(raw))
            }
        }
    }

    /// Override a route (for asymmetric-path experiments). Panics if either
    /// node is outside the topology the table was computed for.
    pub fn set(&mut self, at: NodeId, dst: NodeId, link: LinkId) {
        assert!(at.0 < self.nodes && dst.0 < self.nodes, "node out of range");
        let n = self.nodes as usize;
        let row = &mut self.rows[at.0 as usize];
        // Materialize compact rows so the override has somewhere to live.
        if let RouteRow::Empty = row {
            *row = RouteRow::Dense(vec![NO_ROUTE; n]);
        }
        if let RouteRow::Leaf(l) = row {
            *row = RouteRow::Dense(vec![*l; n]);
        }
        match row {
            RouteRow::Dense(r) => r[dst.0 as usize] = link.0,
            _ => unreachable!(),
        }
    }
}

/// Handles to the canonical dumbbell topology.
///
/// ```text
/// s0 ─┐                      ┌─ r0
/// s1 ─┼─ left ══ bottleneck ══ right ─┼─ r1
/// sN ─┘                      └─ rN
/// ```
#[derive(Debug, Clone)]
pub struct Dumbbell {
    /// Sender hosts, one per flow pair.
    pub senders: Vec<NodeId>,
    /// Receiver hosts, one per flow pair.
    pub receivers: Vec<NodeId>,
    /// Router on the sender side.
    pub left_router: NodeId,
    /// Router on the receiver side.
    pub right_router: NodeId,
    /// The shared bottleneck link.
    pub bottleneck: LinkId,
    /// Access links `senders[i] ↔ left_router`.
    pub sender_access: Vec<LinkId>,
    /// Access links `right_router ↔ receivers[i]`.
    pub receiver_access: Vec<LinkId>,
}

/// Build an `n`-pair dumbbell.
pub fn dumbbell(n: usize, access: LinkParams, bottleneck: LinkParams) -> (Topology, Dumbbell) {
    assert!(n > 0);
    let mut topo = Topology::new();
    let left = topo.add_router();
    let right = topo.add_router();
    let bn = topo.connect(left, right, bottleneck);
    let mut senders = Vec::with_capacity(n);
    let mut receivers = Vec::with_capacity(n);
    let mut sender_access = Vec::with_capacity(n);
    let mut receiver_access = Vec::with_capacity(n);
    for _ in 0..n {
        let s = topo.add_host();
        let r = topo.add_host();
        sender_access.push(topo.connect(s, left, access));
        receiver_access.push(topo.connect(right, r, access));
        senders.push(s);
        receivers.push(r);
    }
    (
        topo,
        Dumbbell {
            senders,
            receivers,
            left_router: left,
            right_router: right,
            bottleneck: bn,
            sender_access,
            receiver_access,
        },
    )
}

/// Build the paper's single-path testbed: sender ↔ router ↔ receiver with a
/// uniform line rate and a configurable one-way delay split across the two
/// hops. The sender's access link is its 100 Mbit/s NIC; the path adds no
/// extra bottleneck, exactly like the ANL↔LBNL circuit of §4.
pub fn single_path(rate_bps: u64, rtt: SimDuration) -> (Topology, Dumbbell) {
    let one_way = rtt / 2;
    // Split the one-way delay: two short access hops and a long haul.
    let access_delay = SimDuration::from_micros(10);
    let haul_delay = one_way.saturating_sub(access_delay * 2);
    let access = LinkParams::new(rate_bps, access_delay);
    let haul = LinkParams::new(rate_bps, haul_delay);
    dumbbell(1, access, haul)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> LinkParams {
        LinkParams::new(100_000_000, SimDuration::from_millis(1))
    }

    #[test]
    fn build_and_query() {
        let mut t = Topology::new();
        let h1 = t.add_host();
        let r = t.add_router();
        let h2 = t.add_host();
        let l1 = t.connect(h1, r, params());
        let l2 = t.connect(r, h2, params());
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.kind(h1), NodeKind::Host);
        assert_eq!(t.kind(r), NodeKind::Router);
        assert_eq!(t.link(l1).other_end(h1), r);
        assert_eq!(t.link_between(r, h2), Some(l2));
        assert_eq!(t.link_between(h1, h2), None);
        assert_eq!(t.neighbors(r).len(), 2);
    }

    #[test]
    fn bfs_routes_follow_shortest_path() {
        // h1 - r1 - r2 - h2, plus a direct shortcut r1 - h2.
        let mut t = Topology::new();
        let h1 = t.add_host();
        let r1 = t.add_router();
        let r2 = t.add_router();
        let h2 = t.add_host();
        let l_h1r1 = t.connect(h1, r1, params());
        let _l_r1r2 = t.connect(r1, r2, params());
        let _l_r2h2 = t.connect(r2, h2, params());
        let shortcut = t.connect(r1, h2, params());
        let routes = t.compute_routes();
        // r1 should use the shortcut, not go through r2.
        assert_eq!(routes.next_link(r1, h2), Some(shortcut));
        assert_eq!(routes.next_link(h1, h2), Some(l_h1r1));
    }

    #[test]
    fn route_override() {
        let mut t = Topology::new();
        let h1 = t.add_host();
        let r1 = t.add_router();
        let r2 = t.add_router();
        let h2 = t.add_host();
        t.connect(h1, r1, params());
        let long1 = t.connect(r1, r2, params());
        t.connect(r2, h2, params());
        let direct = t.connect(r1, h2, params());
        let mut routes = t.compute_routes();
        assert_eq!(routes.next_link(r1, h2), Some(direct));
        routes.set(r1, h2, long1);
        assert_eq!(routes.next_link(r1, h2), Some(long1));
    }

    #[test]
    fn unreachable_is_none() {
        let mut t = Topology::new();
        let h1 = t.add_host();
        let h2 = t.add_host(); // not connected
        let routes = t.compute_routes();
        assert_eq!(routes.next_link(h1, h2), None);
    }

    #[test]
    fn dumbbell_shape() {
        let (t, d) = dumbbell(3, params(), params());
        assert_eq!(d.senders.len(), 3);
        assert_eq!(d.receivers.len(), 3);
        assert_eq!(t.node_count(), 8); // 2 routers + 6 hosts
        let routes = t.compute_routes();
        // Every sender reaches every receiver through the bottleneck.
        for &s in &d.senders {
            for &r in &d.receivers {
                assert!(routes.next_link(s, r).is_some());
                assert_eq!(routes.next_link(d.left_router, r), Some(d.bottleneck));
            }
        }
    }

    #[test]
    fn single_path_rtt_adds_up() {
        let rtt = SimDuration::from_millis(60);
        let (t, d) = single_path(100_000_000, rtt);
        // Sum of propagation delays along sender -> receiver, both ways.
        let routes = t.compute_routes();
        let mut delay = SimDuration::ZERO;
        let mut at = d.senders[0];
        let dst = d.receivers[0];
        while at != dst {
            let l = routes.next_link(at, dst).unwrap();
            delay += t.link(l).params.prop_delay;
            at = t.link(l).other_end(at);
        }
        assert_eq!(delay * 2, rtt);
    }

    #[test]
    fn large_dumbbell_routes_stay_compact() {
        // 10k pairs: 20,002 nodes. The dense-everything table would be
        // nodes² ≈ 4×10⁸ entries; per-router rows make this build fast
        // and small enough to route many-flow scenarios.
        let (t, d) = dumbbell(10_000, params(), params());
        let routes = t.compute_routes();
        assert_eq!(
            routes.next_link(d.senders[9_999], d.receivers[9_999]),
            Some(d.sender_access[9_999])
        );
        assert_eq!(
            routes.next_link(d.left_router, d.receivers[1_234]),
            Some(d.bottleneck)
        );
        assert_eq!(
            routes.next_link(d.right_router, d.receivers[1_234]),
            Some(d.receiver_access[1_234])
        );
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn rejects_self_loop() {
        let mut t = Topology::new();
        let h = t.add_host();
        t.connect(h, h, params());
    }
}
