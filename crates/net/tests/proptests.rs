//! Property-based tests for queues, topology routing, and the packet arena.

use proptest::prelude::*;
use rss_net::{
    dumbbell, ArenaMode, Body, DropTailQueue, Ecn, Fabric, FlowId, GilbertElliott, Impairment,
    ImpairmentConfig, Jitter, LinkParams, NetEvent, NodeId, Packet, PacketIdGen, QueueConfig,
    RawBody, RedConfig, RedQueue, Topology,
};
use rss_sim::{Engine, Model, Scheduler, SimDuration, SimRng, SimTime};

fn pkt(id: u64, size: u32) -> Packet<RawBody> {
    Packet {
        id,
        src: NodeId(0),
        dst: NodeId(1),
        flow: FlowId(0),
        created: SimTime::ZERO,
        body: RawBody { size: size.max(1) },
    }
}

/// Minimal ECN-capable body: RED can CE-mark it, unlike [`RawBody`].
#[derive(Debug, Clone)]
struct EctBody {
    size: u32,
    ecn: Ecn,
}

impl Body for EctBody {
    fn wire_size(&self) -> u32 {
        self.size
    }
    fn ecn(&self) -> Ecn {
        self.ecn
    }
    fn set_ecn(&mut self, codepoint: Ecn) {
        self.ecn = codepoint;
    }
}

/// Raw packets pumped through a fabric; the delivered `(time, node, id)`
/// trace is the observable the arena-mode differential compares.
struct ArenaWorld {
    fabric: Fabric<RawBody>,
    delivered: Vec<(SimTime, NodeId, u64)>,
}

impl Model for ArenaWorld {
    type Event = NetEvent;
    fn handle(&mut self, ev: Self::Event, sched: &mut Scheduler<'_, Self::Event>) {
        let now = sched.now();
        let out = self.fabric.handle(ev, now, &mut |d, e| {
            sched.after(d, e);
        });
        if let Some((node, pkt)) = out {
            self.delivered.push((now, node, pkt.id));
        }
    }
}

/// One full run of `sends` packets through an impaired dumbbell with the
/// given arena recycling policy; returns the delivered trace.
fn impaired_run(
    seed: u64,
    mode: ArenaMode,
    imp: &ImpairmentConfig,
    sends: &[(u64, u32)], // (inject gap µs, wire size)
) -> Vec<(SimTime, NodeId, u64)> {
    let access = LinkParams::new(1_000_000_000, SimDuration::from_micros(100));
    let bottleneck = LinkParams::new(50_000_000, SimDuration::from_millis(5));
    let (topo, d) = dumbbell(1, access, bottleneck);
    let mut fabric: Fabric<RawBody> =
        Fabric::new(topo, QueueConfig::packets(32), SimRng::seed_from_u64(seed));
    fabric.set_arena_mode(mode);
    // Impair the bottleneck's forward direction: loss, reordering jitter and
    // duplication all exercise distinct arena insert/take paths.
    fabric.set_impairment(
        d.bottleneck,
        d.left_router,
        Impairment::from_config(
            imp,
            &SimRng::seed_from_u64(seed ^ 0x5eed),
            SimTime::from_secs(60),
        ),
    );
    let mut eng = Engine::new(ArenaWorld {
        fabric,
        delivered: vec![],
    });
    let mut ids = PacketIdGen::new();
    let mut pending: Vec<(SimDuration, NetEvent)> = Vec::new();
    let mut at = SimTime::ZERO;
    for &(gap_us, size) in sends {
        at += SimDuration::from_micros(gap_us);
        let pkt = Packet {
            id: ids.next_id(),
            src: d.senders[0],
            dst: d.receivers[0],
            flow: FlowId(0),
            created: at,
            body: RawBody { size: size.max(40) },
        };
        eng.model_mut().fabric.start_flight(
            at,
            d.senders[0],
            d.sender_access[0],
            pkt,
            &mut |dl, e| pending.push((dl, e)),
        );
        for (dl, e) in pending.drain(..) {
            eng.schedule_at(at + dl, e);
        }
    }
    eng.run_to_completion();
    assert_eq!(
        eng.model().fabric.packets_in_flight(),
        0,
        "drained run leaked arena slots"
    );
    eng.into_model().delivered
}

proptest! {
    /// Slot recycling is invisible: a pooled arena and a fresh-slot-per-
    /// packet arena produce byte-identical delivered traces under loss,
    /// reordering jitter and duplication — the full impairment surface that
    /// exercises every arena insert/take path, including the duplicate
    /// double-insert.
    #[test]
    fn arena_pooling_is_invisible_under_impairments(
        seed in 0u64..1_000_000,
        dup in 0.0f64..0.5,
        jitter_prob in 0.0f64..1.0,
        jitter_max_us in 0u64..20_000,
        bursty in any::<bool>(),
        p_gb in 0.001f64..0.3,
        p_bg in 0.05f64..1.0,
        sends in prop::collection::vec((0u64..500, 40u32..1500), 1..120),
    ) {
        let imp = ImpairmentConfig {
            burst_loss: bursty.then_some(GilbertElliott {
                p_good_to_bad: p_gb,
                p_bad_to_good: p_bg,
                loss_good: 0.0,
                loss_bad: 0.8,
            }),
            jitter: Some(Jitter {
                prob: jitter_prob,
                max: SimDuration::from_micros(jitter_max_us),
            }),
            duplicate_prob: dup,
            ..Default::default()
        };
        let pooled = impaired_run(seed, ArenaMode::Pooled, &imp, &sends);
        let fresh = impaired_run(seed, ArenaMode::Fresh, &imp, &sends);
        prop_assert_eq!(pooled, fresh);
    }
}

proptest! {
    /// Conservation: every packet offered is either queued, dequeued or
    /// dropped — never duplicated, never lost.
    #[test]
    fn drop_tail_conserves_packets(
        cap in 1u32..64,
        ops in prop::collection::vec((any::<bool>(), 1u32..3000), 1..400),
    ) {
        let mut q = DropTailQueue::new(QueueConfig::packets(cap));
        let mut offered = 0u64;
        let mut dequeued = 0u64;
        let mut dropped = 0u64;
        for (i, &(is_enq, size)) in ops.iter().enumerate() {
            if is_enq {
                offered += 1;
                if q.try_enqueue(pkt(i as u64, size)).is_err() {
                    dropped += 1;
                }
            } else if q.dequeue().is_some() {
                dequeued += 1;
            }
            prop_assert!(q.len() as u32 <= cap, "capacity exceeded");
        }
        prop_assert_eq!(offered, dequeued + dropped + q.len() as u64);
        let st = q.stats();
        prop_assert_eq!(st.enqueued, offered - dropped);
        prop_assert_eq!(st.dropped, dropped);
        prop_assert_eq!(st.dequeued, dequeued);
    }

    /// Byte accounting matches the sum of queued packet sizes.
    #[test]
    fn drop_tail_byte_accounting(
        sizes in prop::collection::vec(1u32..2000, 1..100),
    ) {
        let mut q = DropTailQueue::new(QueueConfig::unbounded());
        let mut expect = 0u64;
        for (i, &s) in sizes.iter().enumerate() {
            q.try_enqueue(pkt(i as u64, s)).unwrap();
            expect += s as u64;
        }
        prop_assert_eq!(q.bytes(), expect);
        // Drain half and re-check.
        for _ in 0..sizes.len() / 2 {
            let p = q.dequeue().unwrap();
            expect -= p.wire_size() as u64;
        }
        prop_assert_eq!(q.bytes(), expect);
    }

    /// RED's admit curve is monotone in the average and saturates exactly at
    /// the force threshold — `max_th` standard, `2·max_th` gentle — for any
    /// legal parameter set.
    #[test]
    fn red_mark_prob_is_monotone_and_saturates(
        cap in 10u32..500,
        min_frac in 1u32..8,   // min_th = cap · frac/10
        band_frac in 1u32..9,  // max_th = min_th + cap · frac/10, clamped
        max_p_centi in 1u32..100,
        gentle in any::<bool>(),
    ) {
        let mut c = RedConfig::for_capacity(cap, SimDuration::from_micros(100));
        c.min_th = cap as f64 * min_frac as f64 / 10.0;
        c.max_th = (c.min_th + cap as f64 * band_frac as f64 / 10.0).min(cap as f64);
        prop_assert!(c.min_th < c.max_th, "generator produced an empty band");
        c.max_p = max_p_centi as f64 / 100.0;
        c.gentle = gentle;
        let force_th = if gentle { 2.0 * c.max_th } else { c.max_th };
        let mut last = -1.0;
        for i in 0..=1000 {
            let avg = 2.0 * cap as f64 * i as f64 / 1000.0;
            let p = c.mark_prob(avg);
            prop_assert!((0.0..=1.0).contains(&p), "p={p} out of range");
            prop_assert!(p >= last, "not monotone at avg {avg}");
            if avg <= c.min_th {
                prop_assert_eq!(p, 0.0, "non-zero below min_th at {}", avg);
            }
            if avg >= force_th {
                prop_assert_eq!(p, 1.0, "below 1 past force threshold at {}", avg);
            }
            last = p;
        }
    }

    /// Packet conservation and counter consistency hold for arbitrary RED
    /// parameters, op sequences and ECN settings: every offered packet is
    /// queued, dequeued or dropped; drops split exactly into early + forced;
    /// CE marks appear only with `ecn` on, and every marked packet is
    /// eventually delivered (marking never drops).
    #[test]
    fn red_conserves_packets_for_any_config(
        cap in 8u32..150,
        min_frac in 1u32..6,
        band_frac in 1u32..8,
        max_p_centi in 1u32..80,
        wq_milli in 1u32..1000,
        gentle in any::<bool>(),
        ecn in any::<bool>(),
        seed in 0u64..1_000_000,
        ops in prop::collection::vec((any::<bool>(), 1u64..400), 1..600),
    ) {
        let mut c = RedConfig::for_capacity(cap, SimDuration::from_micros(100));
        c.min_th = cap as f64 * min_frac as f64 / 10.0;
        c.max_th = (c.min_th + cap as f64 * band_frac as f64 / 10.0).min(cap as f64);
        prop_assert!(c.min_th < c.max_th, "generator produced an empty band");
        c.max_p = max_p_centi as f64 / 100.0;
        c.wq = wq_milli as f64 / 1000.0;
        c.gentle = gentle;
        c.ecn = ecn;
        let mut q: RedQueue<EctBody> = RedQueue::new(c);
        let mut rng = SimRng::seed_from_u64(seed);
        let (mut offered, mut dropped, mut dequeued, mut delivered_ce) = (0u64, 0u64, 0u64, 0u64);
        let mut now = SimTime::ZERO;
        for (i, &(is_enq, gap_us)) in ops.iter().enumerate() {
            now += SimDuration::from_micros(gap_us);
            if is_enq {
                offered += 1;
                let p = Packet {
                    id: i as u64,
                    src: NodeId(0),
                    dst: NodeId(1),
                    flow: FlowId(0),
                    created: now,
                    body: EctBody { size: 1000, ecn: Ecn::Ect },
                };
                if q.try_enqueue(now, p, &mut rng).is_err() {
                    dropped += 1;
                }
            } else if let Some(p) = q.dequeue(now) {
                dequeued += 1;
                if p.body.ecn() == Ecn::Ce {
                    delivered_ce += 1;
                }
            }
            prop_assert!(q.len() as u32 <= cap, "capacity exceeded");
            prop_assert!(q.avg() >= 0.0 && q.avg().is_finite());
        }
        prop_assert_eq!(offered, dequeued + dropped + q.len() as u64);
        prop_assert_eq!(q.early_drops() + q.forced_drops(), dropped);
        if !ecn {
            prop_assert_eq!(q.ecn_marks(), 0, "marks without ecn enabled");
        }
        // Drain: marked packets are all still in flight or delivered.
        while let Some(p) = q.dequeue(now) {
            if p.body.ecn() == Ecn::Ce {
                delivered_ce += 1;
            }
        }
        prop_assert_eq!(q.ecn_marks(), delivered_ce, "a CE mark went missing");
    }

    /// On random linear ("chain") topologies, BFS routing reaches every node
    /// and following next-hops converges without loops.
    #[test]
    fn routes_converge_on_chains(hosts in 2usize..8, routers in 1usize..6) {
        let mut t = Topology::new();
        let params = LinkParams::new(1_000_000, SimDuration::from_millis(1));
        // chain of routers with one host hanging off each end and each router.
        let rs: Vec<_> = (0..routers).map(|_| t.add_router()).collect();
        for w in rs.windows(2) {
            t.connect(w[0], w[1], params);
        }
        let hs: Vec<_> = (0..hosts)
            .map(|i| {
                let h = t.add_host();
                t.connect(h, rs[i % routers], params);
                h
            })
            .collect();
        let routes = t.compute_routes();
        for &a in &hs {
            for &b in &hs {
                if a == b {
                    continue;
                }
                // Walk the route; must terminate within node_count hops.
                let mut at = a;
                let mut hops = 0;
                while at != b {
                    let link = routes.next_link(at, b);
                    prop_assert!(link.is_some(), "no route {a:?}->{b:?}");
                    at = t.link(link.unwrap()).other_end(at);
                    hops += 1;
                    prop_assert!(hops <= t.node_count(), "routing loop {a:?}->{b:?}");
                }
            }
        }
    }
}
