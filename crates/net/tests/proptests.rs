//! Property-based tests for queues and topology routing.

use proptest::prelude::*;
use rss_net::{DropTailQueue, FlowId, LinkParams, NodeId, Packet, QueueConfig, RawBody, Topology};
use rss_sim::{SimDuration, SimTime};

fn pkt(id: u64, size: u32) -> Packet<RawBody> {
    Packet {
        id,
        src: NodeId(0),
        dst: NodeId(1),
        flow: FlowId(0),
        created: SimTime::ZERO,
        body: RawBody { size: size.max(1) },
    }
}

proptest! {
    /// Conservation: every packet offered is either queued, dequeued or
    /// dropped — never duplicated, never lost.
    #[test]
    fn drop_tail_conserves_packets(
        cap in 1u32..64,
        ops in prop::collection::vec((any::<bool>(), 1u32..3000), 1..400),
    ) {
        let mut q = DropTailQueue::new(QueueConfig::packets(cap));
        let mut offered = 0u64;
        let mut dequeued = 0u64;
        let mut dropped = 0u64;
        for (i, &(is_enq, size)) in ops.iter().enumerate() {
            if is_enq {
                offered += 1;
                if q.try_enqueue(pkt(i as u64, size)).is_err() {
                    dropped += 1;
                }
            } else if q.dequeue().is_some() {
                dequeued += 1;
            }
            prop_assert!(q.len() as u32 <= cap, "capacity exceeded");
        }
        prop_assert_eq!(offered, dequeued + dropped + q.len() as u64);
        let st = q.stats();
        prop_assert_eq!(st.enqueued, offered - dropped);
        prop_assert_eq!(st.dropped, dropped);
        prop_assert_eq!(st.dequeued, dequeued);
    }

    /// Byte accounting matches the sum of queued packet sizes.
    #[test]
    fn drop_tail_byte_accounting(
        sizes in prop::collection::vec(1u32..2000, 1..100),
    ) {
        let mut q = DropTailQueue::new(QueueConfig::unbounded());
        let mut expect = 0u64;
        for (i, &s) in sizes.iter().enumerate() {
            q.try_enqueue(pkt(i as u64, s)).unwrap();
            expect += s as u64;
        }
        prop_assert_eq!(q.bytes(), expect);
        // Drain half and re-check.
        for _ in 0..sizes.len() / 2 {
            let p = q.dequeue().unwrap();
            expect -= p.wire_size() as u64;
        }
        prop_assert_eq!(q.bytes(), expect);
    }

    /// On random linear ("chain") topologies, BFS routing reaches every node
    /// and following next-hops converges without loops.
    #[test]
    fn routes_converge_on_chains(hosts in 2usize..8, routers in 1usize..6) {
        let mut t = Topology::new();
        let params = LinkParams::new(1_000_000, SimDuration::from_millis(1));
        // chain of routers with one host hanging off each end and each router.
        let rs: Vec<_> = (0..routers).map(|_| t.add_router()).collect();
        for w in rs.windows(2) {
            t.connect(w[0], w[1], params);
        }
        let hs: Vec<_> = (0..hosts)
            .map(|i| {
                let h = t.add_host();
                t.connect(h, rs[i % routers], params);
                h
            })
            .collect();
        let routes = t.compute_routes();
        for &a in &hs {
            for &b in &hs {
                if a == b {
                    continue;
                }
                // Walk the route; must terminate within node_count hops.
                let mut at = a;
                let mut hops = 0;
                while at != b {
                    let link = routes.next_link(at, b);
                    prop_assert!(link.is_some(), "no route {a:?}->{b:?}");
                    at = t.link(link.unwrap()).other_end(at);
                    hops += 1;
                    prop_assert!(hops <= t.node_count(), "routing loop {a:?}->{b:?}");
                }
            }
        }
    }
}
