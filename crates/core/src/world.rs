//! The world model: hosts, network fabric and TCP connections wired into one
//! deterministic event-driven system.
//!
//! Event flow for one data segment:
//!
//! ```text
//! sender.can_transmit ─► HostNic.enqueue (IFQ) ──full──► send-stall ─► CC
//!        │ ok                                              (Figure 1 event)
//!        ▼
//! NicTxDone ─► Fabric.start_flight ─► router queues ─► receiver host
//!                                                          │
//!            sender.on_ack ◄─ ACK path (receiver NIC) ◄─ TcpReceiver
//! ```

use crate::body::WireBody;
use crate::scenario::Scenario;
use rss_host::HostNic;
use rss_net::{
    dumbbell, Ecn, Fabric, Impairment, LinkId, LinkParams, NetEvent, NodeId, OutageSchedule,
    Packet, PacketIdGen, QueueConfig, RedStats, TrafficSource,
};
use rss_sim::{Model, Scheduler, SimDuration, SimRng, SimTime, TimeSeries};
use rss_tcp::{
    make_cc, AckToSend, CcError, ConnId, IfqSnapshot, SegKind, TcpReceiver, TcpSegment, TcpSender,
};
use rss_workload::AppDriver;

/// Events of the complete experiment world.
#[derive(Debug, Clone)]
pub enum Ev {
    /// Network-fabric internal event (POD; payloads live in the fabric's
    /// packet arena).
    Net(NetEvent),
    /// A host NIC finished serializing a packet.
    NicTxDone {
        /// Host node id (raw).
        host: u32,
    },
    /// A flow begins.
    FlowStart {
        /// Connection index.
        conn: u32,
    },
    /// RTO check for a connection (may be stale; the sender verifies).
    RtoCheck {
        /// Connection index.
        conn: u32,
    },
    /// Delayed-ACK check for a connection.
    DelackCheck {
        /// Connection index.
        conn: u32,
    },
    /// Retry transmission after a send-stall back-off.
    StallRetry {
        /// Connection index.
        conn: u32,
    },
    /// Application writes more data into a connection.
    AppWrite {
        /// Connection index.
        conn: u32,
        /// Bytes written.
        bytes: u64,
    },
    /// A cross-traffic source emits its next packet.
    CrossEmit {
        /// Cross-stream index.
        idx: u32,
    },
    /// Periodic world-level sampling.
    Sample,
}

struct Conn {
    sender: TcpSender,
    receiver: TcpReceiver,
    app: AppDriver,
    src: NodeId,
    dst: NodeId,
    start: SimTime,
    completed_at: Option<SimTime>,
}

struct Cross {
    source: TrafficSource,
    src: NodeId,
    dst: NodeId,
    stop: Option<SimTime>,
    sent_pkts: u64,
    sent_bytes: u64,
}

/// The complete experiment state; implements [`Model`] for the DES engine.
///
/// Per-host state (NICs, access links, connection lists, IFQ series) lives in
/// dense vectors indexed by raw node id — node ids are small and contiguous,
/// and these tables sit on the per-packet hot path.
pub struct World {
    fabric: Fabric<WireBody>,
    /// `nics[node]`; `None` for routers.
    nics: Vec<Option<HostNic<WireBody>>>,
    /// `host_links[node]`: the host's access link; `None` for routers.
    host_links: Vec<Option<LinkId>>,
    /// `host_conns[node]`: connections sending from this host.
    host_conns: Vec<Vec<u32>>,
    conns: Vec<Conn>,
    cross: Vec<Cross>,
    ids: PacketIdGen,
    scheduled_rto: Vec<Option<SimTime>>,
    /// IFQ-depth time series per sending host node (`None` elsewhere).
    ifq_series: Vec<Option<TimeSeries>>,
    sample_interval: SimDuration,
    duration: SimDuration,
    stop_when_complete: bool,
    /// Bottleneck queue-depth series (forward-direction router port,
    /// instantaneous packets), sampled on the same grid as the IFQ series.
    bottleneck_series: TimeSeries,
    /// The two routers framing the bottleneck (forward direction first).
    routers: (NodeId, NodeId),
    /// The shared long-haul (bottleneck) link.
    pub bottleneck: LinkId,
    /// Cross-traffic packets delivered to their sinks.
    pub cross_delivered_pkts: u64,
    /// Cross-traffic bytes delivered to their sinks.
    pub cross_delivered_bytes: u64,
}

impl World {
    /// Build the world for a scenario. The returned engine events must be
    /// seeded with [`World::initial_events`].
    ///
    /// Fails with the registry's path-qualified [`CcError`] when a flow's
    /// congestion-control selection is rejected (the declarative spec
    /// pipeline normally catches this earlier with the same qualification).
    pub fn build(sc: &Scenario) -> Result<World, CcError> {
        let pairs = sc.host_pairs();
        let access_delay = sc.path.access_delay;
        let one_way = sc.path.rtt / 2;
        let haul_delay = one_way.saturating_sub(access_delay * 2);
        let access = LinkParams::new(sc.path.access_rate(), access_delay);
        let haul = LinkParams::new(sc.path.rate_bps, haul_delay).with_loss(sc.path.loss_prob);
        let (topo, d) = dumbbell(pairs, access, haul);

        let rng = SimRng::seed_from_u64(sc.seed);
        let mut fabric = Fabric::new(
            topo,
            QueueConfig::packets(sc.path.router_queue_pkts),
            rng.derive(0xFAB),
        );
        // RED (with or without ECN marking) on both directions of the shared
        // long-haul link, sized to the drop-tail capacity.
        let mean_pkt = rss_sim::SimDuration::for_bytes_at_rate(1500, sc.path.rate_bps);
        if let Some(red) = sc.queue.to_red_config(sc.path.router_queue_pkts, mean_pkt) {
            fabric.set_red_port(d.left_router, d.bottleneck, red);
            fabric.set_red_port(d.right_router, d.bottleneck, red);
        }

        // Fault injection. Outage schedules build out to the full scenario
        // duration; each link direction gets a private per-packet stream,
        // while the directions (and legs) of one physical link share a
        // single outage realization — a flap downs the link as a whole.
        let fault_horizon = SimTime::ZERO + sc.duration;
        if let Some(cfg) = sc.haul_impairment.as_ref().filter(|c| !c.is_noop()) {
            let haul_rng = rng.derive(0x1FA);
            let schedule = OutageSchedule::build(cfg, &mut haul_rng.derive(0), fault_horizon);
            fabric.set_impairment(
                d.bottleneck,
                d.left_router,
                Impairment::new(cfg, schedule.clone(), haul_rng.derive(1)),
            );
            fabric.set_impairment(
                d.bottleneck,
                d.right_router,
                Impairment::new(cfg, schedule, haul_rng.derive(2)),
            );
        }
        if let Some(cfg) = sc.access_impairment.as_ref().filter(|c| !c.is_noop()) {
            let acc_rng = rng.derive(0xACC);
            for p in 0..pairs {
                let pair_rng = acc_rng.derive(p as u64);
                let schedule = OutageSchedule::build(cfg, &mut pair_rng.derive(0), fault_horizon);
                for (k, (link, from)) in [
                    (d.sender_access[p], d.senders[p]),
                    (d.sender_access[p], d.left_router),
                    (d.receiver_access[p], d.right_router),
                    (d.receiver_access[p], d.receivers[p]),
                ]
                .into_iter()
                .enumerate()
                {
                    fabric.set_impairment(
                        link,
                        from,
                        Impairment::new(cfg, schedule.clone(), pair_rng.derive(1 + k as u64)),
                    );
                }
            }
        }

        let node_count = fabric.topology().node_count();
        let mut nics: Vec<Option<HostNic<WireBody>>> = vec![None; node_count];
        let mut host_links: Vec<Option<LinkId>> = vec![None; node_count];
        for (i, &h) in d.senders.iter().enumerate() {
            nics[h.0 as usize] = Some(HostNic::new(sc.host));
            host_links[h.0 as usize] = Some(d.sender_access[i]);
        }
        for (i, &h) in d.receivers.iter().enumerate() {
            nics[h.0 as usize] = Some(HostNic::new(sc.host));
            host_links[h.0 as usize] = Some(d.receiver_access[i]);
        }

        let mut conns = Vec::with_capacity(sc.flows.len());
        let mut host_conns: Vec<Vec<u32>> = vec![Vec::new(); node_count];
        for (i, f) in sc.flows.iter().enumerate() {
            let pair = sc.flow_pair(i);
            let src = d.senders[pair];
            let dst = d.receivers[pair];
            let cc = make_cc(f.algo, &sc.tcp).map_err(|e| CcError {
                msg: format!("flows[{i}]: {e}"),
            })?;
            let mut sender = TcpSender::new(ConnId(i as u32), sc.tcp, cc, f.app.initial_bytes());
            sender.web100_mut().sample_stride = sc.web100_stride;
            let receiver = TcpReceiver::new(ConnId(i as u32), sc.tcp);
            host_conns[src.0 as usize].push(i as u32);
            conns.push(Conn {
                sender,
                receiver,
                app: AppDriver::new(f.app),
                src,
                dst,
                start: f.start,
                completed_at: None,
            });
        }

        let mut cross = Vec::with_capacity(sc.cross.len());
        for (j, c) in sc.cross.iter().enumerate() {
            let pair = sc.cross_pair(j);
            cross.push(Cross {
                source: TrafficSource::new(c.pattern, rng.derive(0x0C05 + j as u64)),
                src: d.senders[pair],
                dst: d.receivers[pair],
                stop: c.stop,
                sent_pkts: 0,
                sent_bytes: 0,
            });
        }

        let mut ifq_series: Vec<Option<TimeSeries>> = vec![None; node_count];
        for (h, conns_here) in host_conns.iter().enumerate() {
            if !conns_here.is_empty() {
                ifq_series[h] = Some(TimeSeries::new(format!("ifq_host{h}")));
            }
        }

        Ok(World {
            fabric,
            nics,
            host_links,
            host_conns,
            scheduled_rto: vec![None; conns.len()],
            conns,
            cross,
            ids: PacketIdGen::new(),
            ifq_series,
            sample_interval: sc.sample_interval,
            duration: sc.duration,
            stop_when_complete: sc.stop_when_complete,
            bottleneck_series: TimeSeries::new("bottleneck_queue"),
            routers: (d.left_router, d.right_router),
            bottleneck: d.bottleneck,
            cross_delivered_pkts: 0,
            cross_delivered_bytes: 0,
        })
    }

    /// The events to seed the engine with before running.
    pub fn initial_events(&self, sc: &Scenario) -> Vec<(SimTime, Ev)> {
        let mut evs = Vec::new();
        for (i, f) in sc.flows.iter().enumerate() {
            evs.push((f.start, Ev::FlowStart { conn: i as u32 }));
        }
        for (j, c) in sc.cross.iter().enumerate() {
            evs.push((c.start, Ev::CrossEmit { idx: j as u32 }));
        }
        evs.push((SimTime::ZERO, Ev::Sample));
        evs
    }

    // --- accessors for reporting --------------------------------------------

    /// Connection count.
    pub fn conn_count(&self) -> usize {
        self.conns.len()
    }

    /// The sender of connection `i`.
    pub fn sender(&self, i: usize) -> &TcpSender {
        &self.conns[i].sender
    }

    /// Mutable sender access (for end-of-run finalization).
    pub fn sender_mut(&mut self, i: usize) -> &mut TcpSender {
        &mut self.conns[i].sender
    }

    /// The receiver of connection `i`.
    pub fn receiver(&self, i: usize) -> &TcpReceiver {
        &self.conns[i].receiver
    }

    /// Both endpoints of connection `i`, sender mutably (for end-of-run
    /// finalization while reading receiver statistics).
    pub fn conn_endpoints_mut(&mut self, i: usize) -> (&mut TcpSender, &TcpReceiver) {
        let c = &mut self.conns[i];
        (&mut c.sender, &c.receiver)
    }

    /// Completion time of connection `i`, if it finished.
    pub fn completed_at(&self, i: usize) -> Option<SimTime> {
        self.conns[i].completed_at
    }

    /// The NIC of the host `conn` sends from.
    pub fn sender_nic(&self, i: usize) -> &HostNic<WireBody> {
        self.nics[self.conns[i].src.0 as usize]
            .as_ref()
            .expect("sender host has no NIC")
    }

    /// IFQ depth series for the host `conn` sends from.
    pub fn sender_ifq_series(&self, i: usize) -> &TimeSeries {
        self.ifq_series[self.conns[i].src.0 as usize]
            .as_ref()
            .expect("sender host has no IFQ series")
    }

    /// The network fabric (router/link statistics).
    pub fn fabric(&self) -> &Fabric<WireBody> {
        &self.fabric
    }

    /// RED/ECN statistics summed over both bottleneck ports (`None` on a
    /// drop-tail bottleneck).
    pub fn red_stats(&self) -> Option<RedStats> {
        let fwd = self
            .fabric
            .red_port_stats(self.routers.0, self.bottleneck)?;
        let rev = self
            .fabric
            .red_port_stats(self.routers.1, self.bottleneck)?;
        Some(RedStats {
            avg: fwd.avg,
            early_drops: fwd.early_drops + rev.early_drops,
            forced_drops: fwd.forced_drops + rev.forced_drops,
            ecn_marks: fwd.ecn_marks + rev.ecn_marks,
        })
    }

    /// Forward-direction bottleneck queue-depth series (instantaneous
    /// packets on the sampling grid).
    pub fn bottleneck_series(&self) -> &TimeSeries {
        &self.bottleneck_series
    }

    /// Bytes each cross stream has offered so far.
    pub fn cross_offered(&self) -> Vec<(u64, u64)> {
        self.cross
            .iter()
            .map(|c| (c.sent_pkts, c.sent_bytes))
            .collect()
    }

    // --- internals -----------------------------------------------------------

    #[inline]
    fn nic(&self, host: u32) -> &HostNic<WireBody> {
        self.nics[host as usize].as_ref().expect("unknown host nic")
    }

    #[inline]
    fn nic_mut(&mut self, host: u32) -> &mut HostNic<WireBody> {
        self.nics[host as usize].as_mut().expect("unknown host nic")
    }

    fn ifq_snapshot(&self, host: u32) -> IfqSnapshot {
        let nic = self.nic(host);
        IfqSnapshot {
            depth: nic.ifq_queued(),
            max: nic.ifq_max(),
        }
    }

    fn kick_nic(&mut self, host: u32, now: SimTime, sched: &mut Scheduler<'_, Ev>) {
        if let Some(ser) = self.nic_mut(host).start_tx_if_idle(now) {
            sched.after(ser, Ev::NicTxDone { host });
        }
    }

    /// Transmit as much as connection `ci` is allowed to right now.
    fn pump(&mut self, ci: usize, now: SimTime, sched: &mut Scheduler<'_, Ev>) {
        loop {
            let conn = &self.conns[ci];
            if now < conn.start {
                break;
            }
            let Some(plan) = conn.sender.can_transmit(now) else {
                break;
            };
            let host = conn.src.0;
            let header = conn.sender.config().header_bytes;
            let seg = TcpSegment {
                conn: ConnId(ci as u32),
                kind: SegKind::Data {
                    seq: plan.seq,
                    len: plan.len,
                    retransmit: plan.retransmit,
                },
                header_bytes: header,
                ecn: if conn.sender.config().ecn {
                    Ecn::Ect
                } else {
                    Ecn::NotEct
                },
            };
            let pkt = Packet {
                id: self.ids.next_id(),
                src: conn.src,
                dst: conn.dst,
                flow: ConnId(ci as u32).into(),
                created: now,
                body: WireBody::Tcp(seg),
            };
            match self.nic_mut(host).enqueue(pkt) {
                Ok(()) => {
                    self.conns[ci].sender.commit_transmit(now, plan);
                    self.kick_nic(host, now, sched);
                }
                Err(_) => {
                    // Send-stall: the paper's central event.
                    let snap = self.ifq_snapshot(host);
                    let sender = &mut self.conns[ci].sender;
                    sender.on_local_stall(now, snap);
                    if let Some(at) = sender.stall_retry_at() {
                        sched.at(at, Ev::StallRetry { conn: ci as u32 });
                    }
                    break;
                }
            }
        }
        // Post-pump bookkeeping: pacing wakeup, limitation state, RTO
        // scheduling. A pacer-held departure re-enters through the same
        // retry event a stall uses — the handler just pumps again.
        let sender = &mut self.conns[ci].sender;
        if let Some(at) = sender.pacing_retry_at(now) {
            sched.at(at, Ev::StallRetry { conn: ci as u32 });
        }
        sender.update_lim_state(now);
        if let Some(d) = sender.rto_deadline() {
            let needs = match self.scheduled_rto[ci] {
                Some(at) => d < at,
                None => true,
            };
            if needs {
                sched.at(d.max(now), Ev::RtoCheck { conn: ci as u32 });
                self.scheduled_rto[ci] = Some(d.max(now));
            }
        }
    }

    fn send_ack(&mut self, ci: usize, ack: AckToSend, now: SimTime, sched: &mut Scheduler<'_, Ev>) {
        let conn = &self.conns[ci];
        let host = conn.dst.0; // ACKs leave the receiver host
        let seg = TcpSegment {
            conn: ConnId(ci as u32),
            kind: SegKind::Ack {
                ack: ack.ack,
                rwnd: ack.rwnd,
                ece: ack.ece,
            },
            header_bytes: conn.sender.config().header_bytes,
            ecn: Ecn::NotEct,
        };
        let pkt = Packet {
            id: self.ids.next_id(),
            src: conn.dst,
            dst: conn.src,
            flow: ConnId(ci as u32).into(),
            created: now,
            body: WireBody::Tcp(seg),
        };
        // A full receiver IFQ silently drops the ACK; cumulative ACKs make
        // this safe.
        if self.nic_mut(host).enqueue(pkt).is_ok() {
            self.kick_nic(host, now, sched);
        }
    }

    fn deliver(
        &mut self,
        node: NodeId,
        pkt: Packet<WireBody>,
        now: SimTime,
        sched: &mut Scheduler<'_, Ev>,
    ) {
        match pkt.body {
            WireBody::Raw { size } => {
                self.cross_delivered_pkts += 1;
                self.cross_delivered_bytes += size as u64;
            }
            WireBody::Tcp(seg) => {
                let ci = seg.conn.0 as usize;
                match seg.kind {
                    SegKind::Data { seq, len, .. } => {
                        debug_assert_eq!(node, self.conns[ci].dst, "data at wrong host");
                        if seg.ecn == Ecn::Ce {
                            self.conns[ci].receiver.on_ce();
                        }
                        let maybe_ack = self.conns[ci].receiver.on_segment(now, seq, len);
                        match maybe_ack {
                            Some(a) => self.send_ack(ci, a, now, sched),
                            None => {
                                if let Some(d) = self.conns[ci].receiver.delack_deadline() {
                                    sched.at(d, Ev::DelackCheck { conn: ci as u32 });
                                }
                            }
                        }
                    }
                    SegKind::Ack { ack, rwnd, ece } => {
                        debug_assert_eq!(node, self.conns[ci].src, "ack at wrong host");
                        let host = self.conns[ci].src.0;
                        let snap = self.ifq_snapshot(host);
                        let sender = &mut self.conns[ci].sender;
                        if ece {
                            sender.on_ecn_echo(now, snap);
                        }
                        sender.on_ack(now, ack, rwnd, snap);
                        if sender.is_complete() && self.conns[ci].completed_at.is_none() {
                            self.conns[ci].completed_at = Some(now);
                            if self.stop_when_complete
                                && self.conns.iter().all(|c| c.completed_at.is_some())
                            {
                                sched.request_stop();
                                return;
                            }
                        }
                        self.pump(ci, now, sched);
                    }
                }
            }
        }
    }

    fn emit_cross(&mut self, idx: usize, now: SimTime, sched: &mut Scheduler<'_, Ev>) {
        let stop = self.cross[idx].stop;
        if let Some(stop) = stop {
            if now >= stop {
                return;
            }
        }
        let (gap, size) = self.cross[idx].source.next_packet();
        let (src, dst) = (self.cross[idx].src, self.cross[idx].dst);
        let pkt = Packet {
            id: self.ids.next_id(),
            src,
            dst,
            flow: rss_net::FlowId(u32::MAX - idx as u32),
            created: now,
            body: WireBody::Raw { size },
        };
        self.cross[idx].sent_pkts += 1;
        self.cross[idx].sent_bytes += size as u64;
        let host = src.0;
        // Cross sources are open-loop: a full IFQ just drops the datagram.
        if self.nic_mut(host).enqueue(pkt).is_ok() {
            self.kick_nic(host, now, sched);
        }
        sched.after(gap, Ev::CrossEmit { idx: idx as u32 });
    }
}

impl Model for World {
    type Event = Ev;

    fn handle(&mut self, ev: Ev, sched: &mut Scheduler<'_, Ev>) {
        let now = sched.now();
        match ev {
            Ev::Net(nev) => {
                // Fabric follow-ups go straight into the scheduler: the
                // closure borrows only `sched`, disjoint from `self.fabric`,
                // so the hot path buffers (and allocates) nothing.
                let delivered = self.fabric.handle(nev, now, &mut |d, e| {
                    sched.after(d, Ev::Net(e));
                });
                if let Some((node, pkt)) = delivered {
                    self.deliver(node, pkt, now, sched);
                }
            }
            Ev::NicTxDone { host } => {
                let pkt = self.nic_mut(host).on_tx_done(now);
                let link = self.host_links[host as usize].expect("host has no access link");
                self.fabric
                    .start_flight(now, NodeId(host), link, pkt, &mut |d, e| {
                        sched.after(d, Ev::Net(e));
                    });
                self.kick_nic(host, now, sched);
                // A queue slot freed: stalled connections on this host may
                // proceed. (Index loop: `host_conns` is frozen after build,
                // and cloning the list here would allocate once per packet.)
                for k in 0..self.host_conns[host as usize].len() {
                    let ci = self.host_conns[host as usize][k];
                    self.pump(ci as usize, now, sched);
                }
            }
            Ev::FlowStart { conn } => {
                let ci = conn as usize;
                let start = self.conns[ci].start;
                if let Some((when, bytes)) = self.conns[ci].app.next_write(start) {
                    sched.at(when.max(now), Ev::AppWrite { conn, bytes });
                }
                self.pump(ci, now, sched);
            }
            Ev::RtoCheck { conn } => {
                let ci = conn as usize;
                self.scheduled_rto[ci] = None;
                // Coalesced deadline check: every ACK pushes the RTO deadline
                // out, so most checks pop stale. A stale pop re-arms at the
                // live deadline and does nothing else — the expensive
                // snapshot + timer + pump path runs only when the deadline
                // has actually arrived (or vanished).
                if let Some(d) = self.conns[ci].sender.rto_deadline() {
                    if now < d {
                        sched.at(d, Ev::RtoCheck { conn });
                        self.scheduled_rto[ci] = Some(d);
                        return;
                    }
                }
                let host = self.conns[ci].src.0;
                let snap = self.ifq_snapshot(host);
                self.conns[ci].sender.on_rto_check(now, snap);
                self.pump(ci, now, sched);
            }
            Ev::DelackCheck { conn } => {
                let ci = conn as usize;
                if let Some(a) = self.conns[ci].receiver.on_delack_timer(now) {
                    self.send_ack(ci, a, now, sched);
                } else if let Some(d) = self.conns[ci].receiver.delack_deadline() {
                    sched.at(d, Ev::DelackCheck { conn });
                }
            }
            Ev::StallRetry { conn } => {
                self.pump(conn as usize, now, sched);
            }
            Ev::AppWrite { conn, bytes } => {
                let ci = conn as usize;
                self.conns[ci].sender.app_extend(bytes);
                let start = self.conns[ci].start;
                if let Some((when, b)) = self.conns[ci].app.next_write(start) {
                    sched.at(when.max(now), Ev::AppWrite { conn, bytes: b });
                }
                self.pump(ci, now, sched);
            }
            Ev::CrossEmit { idx } => {
                self.emit_cross(idx as usize, now, sched);
            }
            Ev::Sample => {
                for host in 0..self.ifq_series.len() {
                    if let Some(series) = self.ifq_series[host].as_mut() {
                        let depth = self.nics[host].as_ref().expect("nic").ifq_queued();
                        series.push(now, depth as f64);
                    }
                }
                if let Some(depth) = self.fabric.port_queue_len(self.routers.0, self.bottleneck) {
                    self.bottleneck_series.push(now, depth as f64);
                }
                let next = now + self.sample_interval;
                if next <= SimTime::ZERO + self.duration {
                    sched.at(next, Ev::Sample);
                }
            }
        }
    }
}
