//! The concrete packet body flowing through the simulated network: TCP
//! segments plus raw cross-traffic datagrams.

use rss_net::Body;
use rss_tcp::TcpSegment;

/// Everything that can ride a packet in an experiment.
#[derive(Debug, Clone, Copy)]
pub enum WireBody {
    /// A TCP segment (data or pure ACK).
    Tcp(TcpSegment),
    /// Opaque cross traffic of a given wire size.
    Raw {
        /// Bytes on the wire.
        size: u32,
    },
}

impl Body for WireBody {
    fn wire_size(&self) -> u32 {
        match self {
            WireBody::Tcp(seg) => seg.wire_size(),
            WireBody::Raw { size } => *size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rss_tcp::{ConnId, SegKind};

    #[test]
    fn sizes_delegate() {
        let raw = WireBody::Raw { size: 999 };
        assert_eq!(raw.wire_size(), 999);
        let tcp = WireBody::Tcp(TcpSegment {
            conn: ConnId(0),
            kind: SegKind::Data {
                seq: 0,
                len: 1448,
                retransmit: false,
            },
            header_bytes: 52,
        });
        assert_eq!(tcp.wire_size(), 1500);
    }
}
