//! The concrete packet body flowing through the simulated network: TCP
//! segments plus raw cross-traffic datagrams.

use rss_net::{Body, Ecn};
use rss_tcp::TcpSegment;

/// Everything that can ride a packet in an experiment.
#[derive(Debug, Clone, Copy)]
pub enum WireBody {
    /// A TCP segment (data or pure ACK).
    Tcp(TcpSegment),
    /// Opaque cross traffic of a given wire size.
    Raw {
        /// Bytes on the wire.
        size: u32,
    },
}

impl Body for WireBody {
    fn wire_size(&self) -> u32 {
        match self {
            WireBody::Tcp(seg) => seg.wire_size(),
            WireBody::Raw { size } => *size,
        }
    }

    fn ecn(&self) -> Ecn {
        match self {
            WireBody::Tcp(seg) => seg.ecn(),
            WireBody::Raw { .. } => Ecn::NotEct,
        }
    }

    fn set_ecn(&mut self, codepoint: Ecn) {
        if let WireBody::Tcp(seg) = self {
            seg.set_ecn(codepoint);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rss_tcp::{ConnId, SegKind};

    #[test]
    fn sizes_delegate() {
        let raw = WireBody::Raw { size: 999 };
        assert_eq!(raw.wire_size(), 999);
        let tcp = WireBody::Tcp(TcpSegment {
            conn: ConnId(0),
            kind: SegKind::Data {
                seq: 0,
                len: 1448,
                retransmit: false,
            },
            header_bytes: 52,
            ecn: Ecn::NotEct,
        });
        assert_eq!(tcp.wire_size(), 1500);
    }

    #[test]
    fn ecn_forwards_to_tcp_only() {
        let mut raw = WireBody::Raw { size: 999 };
        raw.set_ecn(Ecn::Ce);
        assert_eq!(raw.ecn(), Ecn::NotEct);
        let mut tcp = WireBody::Tcp(TcpSegment {
            conn: ConnId(0),
            kind: SegKind::Data {
                seq: 0,
                len: 1448,
                retransmit: false,
            },
            header_bytes: 52,
            ecn: Ecn::Ect,
        });
        assert_eq!(tcp.ecn(), Ecn::Ect);
        tcp.set_ecn(Ecn::Ce);
        assert_eq!(tcp.ecn(), Ecn::Ce);
    }
}
