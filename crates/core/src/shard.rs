//! The sharded dumbbell world: one scenario split into per-domain shards
//! executed by [`rss_sim::run_sharded`]'s conservative-lookahead protocol.
//!
//! # The topology cut
//!
//! The dumbbell is cut at its two bottleneck egress ports. That yields
//! `host_pairs + 2` *units*, each a closed island of state:
//!
//! * **Edge unit `p`** (one per host pair): the pair's sending and receiving
//!   host — NICs, TCP endpoints, application drivers, cross-traffic sources —
//!   plus the two router egress ports feeding the pair's access links (the
//!   left router's port toward the sender, which delivers ACKs, and the right
//!   router's port toward the receiver, which delivers data).
//! * **Hub unit `FWD`** (`unit = host_pairs`): the left router's bottleneck
//!   egress — the shared queue all data segments cross, with the haul link's
//!   loss model.
//! * **Hub unit `REV`** (`unit = host_pairs + 1`): the right router's
//!   bottleneck egress, carrying the ACK stream back.
//!
//! Units exchange [`Packet`]s over exactly two message legs: edge → hub rides
//! the access link (latency `access_delay`), hub → edge rides the haul link
//! (latency `haul_delay = rtt/2 − 2·access_delay`). The lookahead is the
//! smaller of the two — see the [`rss_sim::shard`] module docs for why a
//! window of that size is independently simulable and why the results are
//! bit-exact for *any* shard count.
//!
//! # What is kept per-unit (the bit-exactness ledger)
//!
//! Every grouping-visible side effect lives inside one unit: packet ids
//! (`(unit+1) << 40 | n`), envelope sequence numbers, RNG streams (each hub
//! derives its own loss/RED stream; each cross-traffic source already owns
//! one), drop and delivery counters, and the per-pair IFQ series. World-level
//! sampling happens at window boundaries (grid `min(w + L, horizon)`), which
//! depends only on the lookahead — so sample times and values are also
//! grouping-invariant, and the merged event count is a pure function of the
//! scenario.
//!
//! `shards = 1` therefore *is* the serial reference: the parallel runs are
//! byte-compared against it in CI. It is intentionally not bit-equal to the
//! classic [`crate::World`] serial path (same-instant tie-breaking and loss
//! RNG realization differ); `Scenario::shards = None` keeps that legacy path
//! and its goldens untouched.

use crate::body::WireBody;
use crate::report::RunReport;
use crate::runner::flow_report;
use crate::scenario::Scenario;
use rss_host::HostNic;
use rss_net::{
    DropTailQueue, Ecn, FlowId, Impairment, NodeId, OutageSchedule, Packet, PortQueue, QueueConfig,
    RedQueue, RedStats, TrafficSource, Verdict,
};
use rss_sim::{
    partition_units, run_sharded, Domain, Engine, Envelope, Model, Scheduler, SimDuration, SimRng,
    SimTime, TimeSeries,
};
use rss_tcp::{
    make_cc, AckToSend, ConnId, IfqSnapshot, SegKind, TcpReceiver, TcpSegment, TcpSender,
};
use rss_workload::AppDriver;

type Env = Envelope<Packet<WireBody>>;

/// Events local to one domain. `u` is the *local* unit index within the
/// domain's unit table; connection/cross indexes are local to their unit.
#[derive(Debug, Clone)]
enum DEv {
    /// A packet from a hub reached this edge's adjacent router port.
    EdgeArrive {
        u: u32,
        pkt: Packet<WireBody>,
    },
    /// A packet from an edge reached this hub's queue.
    HubArrive {
        u: u32,
        pkt: Packet<WireBody>,
    },
    /// A packet cleared an edge delivery port and its access link.
    HostArrive {
        u: u32,
        pkt: Packet<WireBody>,
    },
    /// A host NIC finished serializing (`snd` selects the pair's side).
    NicTx {
        u: u32,
        snd: bool,
    },
    /// An edge router port finished serializing (`dlv` selects the port).
    PortTx {
        u: u32,
        dlv: bool,
    },
    /// A hub port finished serializing.
    HubTx {
        u: u32,
    },
    FlowStart {
        u: u32,
        c: u32,
    },
    RtoCheck {
        u: u32,
        c: u32,
    },
    DelackCheck {
        u: u32,
        c: u32,
    },
    StallRetry {
        u: u32,
        c: u32,
    },
    AppWrite {
        u: u32,
        c: u32,
        bytes: u64,
    },
    CrossEmit {
        u: u32,
        x: u32,
    },
}

/// One TCP connection living on an edge unit.
struct ConnState {
    /// Global connection index (the scenario's flow index).
    global: u32,
    sender: TcpSender,
    receiver: TcpReceiver,
    app: AppDriver,
    start: SimTime,
    completed_at: Option<SimTime>,
    scheduled_rto: Option<SimTime>,
}

/// One cross-traffic source living on an edge unit.
struct CrossState {
    /// Global cross-stream index.
    global: u32,
    source: TrafficSource,
    stop: Option<SimTime>,
    sent_bytes: u64,
}

/// A router egress port owned by an edge unit (always drop-tail; RED applies
/// only to the bottleneck, i.e. the hubs).
struct EdgePort {
    queue: DropTailQueue<WireBody>,
    transmitting: Option<Packet<WireBody>>,
    rate_bps: u64,
}

impl EdgePort {
    fn new(cap_pkts: u32, rate_bps: u64) -> Self {
        EdgePort {
            queue: DropTailQueue::new(QueueConfig::packets(cap_pkts)),
            transmitting: None,
            rate_bps,
        }
    }
}

/// One host pair and its access-side router ports.
struct EdgeUnit {
    /// Global unit id (== pair index).
    unit: u32,
    snd_node: NodeId,
    rcv_node: NodeId,
    snd_nic: HostNic<WireBody>,
    rcv_nic: HostNic<WireBody>,
    /// Left-router egress toward the sender's access link (returns ACKs).
    ret_port: EdgePort,
    /// Right-router egress toward the receiver's access link (delivers data).
    dlv_port: EdgePort,
    /// Connections sending from this pair, ascending by `global`.
    conns: Vec<ConnState>,
    cross: Vec<CrossState>,
    ifq_series: Option<TimeSeries>,
    next_pkt: u64,
    /// Envelope sequence counter — per unit, so `(time, unit, seq)` is a
    /// unique canonical key regardless of grouping.
    seq: u64,
    queue_drops: u64,
    cross_delivered_bytes: u64,
    /// Access-leg impairments in canonical leg order: sender NIC -> left
    /// router, left router -> sender host, right router -> receiver host,
    /// receiver NIC -> right router. Each draws from a private stream
    /// derived from `(seed, 0xACC, pair)`, matching the serial fabric, so
    /// the realization is identical at every shard count.
    leg_imps: [Option<Impairment>; 4],
}

/// Access-leg indexes into [`EdgeUnit::leg_imps`].
const LEG_SND_NIC: usize = 0;
const LEG_RET_PORT: usize = 1;
const LEG_DLV_PORT: usize = 2;
const LEG_RCV_NIC: usize = 3;

impl EdgeUnit {
    /// Per-unit packet ids: unique across units without shared state.
    fn next_id(&mut self) -> u64 {
        let n = self.next_pkt;
        self.next_pkt += 1;
        ((self.unit as u64 + 1) << 40) + n
    }

    fn conn_local(&self, global: u32) -> usize {
        self.conns
            .binary_search_by_key(&global, |c| c.global)
            .expect("segment for a connection not on this unit")
    }
}

/// One direction of the shared bottleneck.
struct HubUnit {
    /// Global unit id (`host_pairs` for FWD, `host_pairs + 1` for REV).
    unit: u32,
    queue: PortQueue<WireBody>,
    transmitting: Option<Packet<WireBody>>,
    rate_bps: u64,
    loss_prob: f64,
    haul_delay: SimDuration,
    rng: SimRng,
    seq: u64,
    queue_drops: u64,
    /// Haul impairment for this direction (private per-packet stream; the
    /// two directions share one outage realization).
    impairment: Option<Impairment>,
    /// Queue-depth series on the boundary-sampling grid (forward hub only;
    /// the grid depends only on the lookahead, so it is grouping-invariant).
    series: Option<TimeSeries>,
}

/// Consult one (optional) impairment at a packet departure.
///
/// `None` means the packet is dropped; otherwise the extra delay for the
/// packet and, when the verdict asked for duplication, the copy's own
/// jittered extra delay. Draw order matches the serial fabric's
/// `start_flight` exactly so the per-stream sequences stay aligned.
fn leg_verdict(
    imp: &mut Option<Impairment>,
    now: SimTime,
) -> Option<(SimDuration, Option<SimDuration>)> {
    let Some(imp) = imp.as_mut() else {
        return Some((SimDuration::ZERO, None));
    };
    match imp.decide(now) {
        Verdict::Drop(_) => None,
        Verdict::Deliver {
            extra_delay,
            duplicate,
        } => {
            let dup = duplicate.then(|| imp.dup_jitter());
            Some((extra_delay, dup))
        }
    }
}

enum Unit {
    Edge(Box<EdgeUnit>),
    Hub(Box<HubUnit>),
}

/// The model one domain's engine runs: its units plus the cross-unit mail it
/// has produced since the last window.
struct DomainWorld {
    units: Vec<Unit>,
    /// Local unit index by global unit id (`u32::MAX` = other domain).
    local: Vec<u32>,
    /// Global unit ids at or above this are hubs.
    first_hub: u32,
    hub_fwd: u32,
    hub_rev: u32,
    access_delay: SimDuration,
    outgoing: Vec<Env>,
    new_completions: u64,
}

fn snd_snapshot(e: &EdgeUnit) -> IfqSnapshot {
    IfqSnapshot {
        depth: e.snd_nic.ifq_queued(),
        max: e.snd_nic.ifq_max(),
    }
}

fn kick_nic(e: &mut EdgeUnit, u: u32, snd: bool, now: SimTime, sched: &mut Scheduler<'_, DEv>) {
    let nic = if snd { &mut e.snd_nic } else { &mut e.rcv_nic };
    if let Some(ser) = nic.start_tx_if_idle(now) {
        sched.after(ser, DEv::NicTx { u, snd });
    }
}

fn kick_port(e: &mut EdgeUnit, u: u32, dlv: bool, sched: &mut Scheduler<'_, DEv>) {
    let port = if dlv {
        &mut e.dlv_port
    } else {
        &mut e.ret_port
    };
    if port.transmitting.is_some() {
        return;
    }
    let Some(pkt) = port.queue.dequeue() else {
        return;
    };
    let ser = SimDuration::for_bytes_at_rate(pkt.wire_size() as u64, port.rate_bps);
    port.transmitting = Some(pkt);
    sched.after(ser, DEv::PortTx { u, dlv });
}

/// Transmit as much as connection `c` is allowed to right now — the exact
/// mirror of the serial world's pump loop, against this unit's NIC.
fn pump(e: &mut EdgeUnit, u: u32, c: usize, now: SimTime, sched: &mut Scheduler<'_, DEv>) {
    loop {
        if now < e.conns[c].start {
            break;
        }
        let Some(plan) = e.conns[c].sender.can_transmit(now) else {
            break;
        };
        let global = e.conns[c].global;
        let header = e.conns[c].sender.config().header_bytes;
        let seg = TcpSegment {
            conn: ConnId(global),
            kind: SegKind::Data {
                seq: plan.seq,
                len: plan.len,
                retransmit: plan.retransmit,
            },
            header_bytes: header,
            ecn: if e.conns[c].sender.config().ecn {
                Ecn::Ect
            } else {
                Ecn::NotEct
            },
        };
        let pkt = Packet {
            id: e.next_id(),
            src: e.snd_node,
            dst: e.rcv_node,
            flow: ConnId(global).into(),
            created: now,
            body: WireBody::Tcp(seg),
        };
        match e.snd_nic.enqueue(pkt) {
            Ok(()) => {
                e.conns[c].sender.commit_transmit(now, plan);
                kick_nic(e, u, true, now, sched);
            }
            Err(_) => {
                // Send-stall: the paper's central event.
                let snap = snd_snapshot(e);
                let sender = &mut e.conns[c].sender;
                sender.on_local_stall(now, snap);
                if let Some(at) = sender.stall_retry_at() {
                    sched.at(at, DEv::StallRetry { u, c: c as u32 });
                }
                break;
            }
        }
    }
    let sender = &mut e.conns[c].sender;
    // Pacer-held departures re-enter through the stall-retry event, exactly
    // like the serial world.
    if let Some(at) = sender.pacing_retry_at(now) {
        sched.at(at, DEv::StallRetry { u, c: c as u32 });
    }
    sender.update_lim_state(now);
    if let Some(d) = sender.rto_deadline() {
        let needs = match e.conns[c].scheduled_rto {
            Some(at) => d < at,
            None => true,
        };
        if needs {
            sched.at(d.max(now), DEv::RtoCheck { u, c: c as u32 });
            e.conns[c].scheduled_rto = Some(d.max(now));
        }
    }
}

fn send_ack(
    e: &mut EdgeUnit,
    u: u32,
    c: usize,
    ack: AckToSend,
    now: SimTime,
    sched: &mut Scheduler<'_, DEv>,
) {
    let global = e.conns[c].global;
    let header = e.conns[c].sender.config().header_bytes;
    let seg = TcpSegment {
        conn: ConnId(global),
        kind: SegKind::Ack {
            ack: ack.ack,
            rwnd: ack.rwnd,
            ece: ack.ece,
        },
        header_bytes: header,
        ecn: Ecn::NotEct,
    };
    let pkt = Packet {
        id: e.next_id(),
        src: e.rcv_node,
        dst: e.snd_node,
        flow: ConnId(global).into(),
        created: now,
        body: WireBody::Tcp(seg),
    };
    // A full receiver IFQ silently drops the ACK; cumulative ACKs make this
    // safe.
    if e.rcv_nic.enqueue(pkt).is_ok() {
        kick_nic(e, u, false, now, sched);
    }
}

fn deliver(
    e: &mut EdgeUnit,
    u: u32,
    pkt: Packet<WireBody>,
    now: SimTime,
    sched: &mut Scheduler<'_, DEv>,
    completions: &mut u64,
) {
    match pkt.body {
        WireBody::Raw { size } => {
            e.cross_delivered_bytes += size as u64;
        }
        WireBody::Tcp(seg) => {
            let c = e.conn_local(seg.conn.0);
            match seg.kind {
                SegKind::Data { seq, len, .. } => {
                    if seg.ecn == Ecn::Ce {
                        e.conns[c].receiver.on_ce();
                    }
                    match e.conns[c].receiver.on_segment(now, seq, len) {
                        Some(a) => send_ack(e, u, c, a, now, sched),
                        None => {
                            if let Some(d) = e.conns[c].receiver.delack_deadline() {
                                sched.at(d, DEv::DelackCheck { u, c: c as u32 });
                            }
                        }
                    }
                }
                SegKind::Ack { ack, rwnd, ece } => {
                    let snap = snd_snapshot(e);
                    if ece {
                        e.conns[c].sender.on_ecn_echo(now, snap);
                    }
                    e.conns[c].sender.on_ack(now, ack, rwnd, snap);
                    if e.conns[c].sender.is_complete() && e.conns[c].completed_at.is_none() {
                        e.conns[c].completed_at = Some(now);
                        // The executor stops at the next window boundary once
                        // every domain has reported its completions — the
                        // deterministic analogue of the serial world's
                        // request_stop.
                        *completions += 1;
                    }
                    pump(e, u, c, now, sched);
                }
            }
        }
    }
}

fn emit_cross(e: &mut EdgeUnit, u: u32, x: usize, now: SimTime, sched: &mut Scheduler<'_, DEv>) {
    if let Some(stop) = e.cross[x].stop {
        if now >= stop {
            return;
        }
    }
    let (gap, size) = e.cross[x].source.next_packet();
    let global = e.cross[x].global;
    let pkt = Packet {
        id: e.next_id(),
        src: e.snd_node,
        dst: e.rcv_node,
        flow: FlowId(u32::MAX - global),
        created: now,
        body: WireBody::Raw { size },
    };
    e.cross[x].sent_bytes += size as u64;
    // Cross sources are open-loop: a full IFQ just drops the datagram.
    if e.snd_nic.enqueue(pkt).is_ok() {
        kick_nic(e, u, true, now, sched);
    }
    sched.after(gap, DEv::CrossEmit { u, x: x as u32 });
}

fn kick_hub(h: &mut HubUnit, u: u32, now: SimTime, sched: &mut Scheduler<'_, DEv>) {
    if h.transmitting.is_some() {
        return;
    }
    let Some(pkt) = h.queue.dequeue(now) else {
        return;
    };
    let ser = SimDuration::for_bytes_at_rate(pkt.wire_size() as u64, h.rate_bps);
    h.transmitting = Some(pkt);
    sched.after(ser, DEv::HubTx { u });
}

fn hub_tx(
    h: &mut HubUnit,
    u: u32,
    now: SimTime,
    sched: &mut Scheduler<'_, DEv>,
    outgoing: &mut Vec<Env>,
) {
    let pkt = h
        .transmitting
        .take()
        .expect("hub tx-done with no packet in flight");
    // Loss is drawn when the packet enters the haul link, as in the serial
    // fabric's start_flight — but from this hub's private stream. The
    // impairment layer runs after the independent loss model, also matching
    // the serial fabric; jitter only ever adds delay, so the haul delay
    // stays a valid lookahead bound.
    if h.loss_prob > 0.0 && h.rng.chance(h.loss_prob) {
        // drop on the wire
    } else if let Some((extra, dup)) = leg_verdict(&mut h.impairment, now) {
        // Edge unit of the destination host: pair hosts are numbered
        // 2+2p (sender) / 3+2p (receiver), mirroring the serial dumbbell.
        let dst_unit = (pkt.dst.0 - 2) / 2;
        if let Some(extra2) = dup {
            // The copy flies first, with its own jitter and the same packet
            // id, so the receiver's dedup accounting sees a true duplicate.
            h.seq += 1;
            outgoing.push(Envelope {
                time: now + h.haul_delay + extra2,
                src_unit: h.unit,
                seq: h.seq,
                dst_unit,
                msg: pkt.clone(),
            });
        }
        h.seq += 1;
        outgoing.push(Envelope {
            time: now + h.haul_delay + extra,
            src_unit: h.unit,
            seq: h.seq,
            dst_unit,
            msg: pkt,
        });
    }
    kick_hub(h, u, now, sched);
}

impl Model for DomainWorld {
    type Event = DEv;

    fn handle(&mut self, ev: DEv, sched: &mut Scheduler<'_, DEv>) {
        let now = sched.now();
        let access_delay = self.access_delay;
        let (hub_fwd, hub_rev) = (self.hub_fwd, self.hub_rev);
        let DomainWorld {
            units,
            outgoing,
            new_completions,
            ..
        } = self;
        match ev {
            DEv::EdgeArrive { u, pkt } => {
                let Unit::Edge(e) = &mut units[u as usize] else {
                    unreachable!("edge event at a hub")
                };
                let dlv = pkt.dst == e.rcv_node;
                let ok = {
                    let port = if dlv {
                        &mut e.dlv_port
                    } else {
                        &mut e.ret_port
                    };
                    port.queue.try_enqueue(pkt).is_ok()
                };
                if ok {
                    kick_port(e, u, dlv, sched);
                } else {
                    e.queue_drops += 1;
                }
            }
            DEv::HubArrive { u, pkt } => {
                let Unit::Hub(h) = &mut units[u as usize] else {
                    unreachable!("hub event at an edge")
                };
                if h.queue.try_enqueue(now, pkt, &mut h.rng) {
                    kick_hub(h, u, now, sched);
                } else {
                    h.queue_drops += 1;
                }
            }
            DEv::HostArrive { u, pkt } => {
                let Unit::Edge(e) = &mut units[u as usize] else {
                    unreachable!("edge event at a hub")
                };
                deliver(e, u, pkt, now, sched, new_completions);
            }
            DEv::NicTx { u, snd } => {
                let Unit::Edge(e) = &mut units[u as usize] else {
                    unreachable!("edge event at a hub")
                };
                let nic = if snd { &mut e.snd_nic } else { &mut e.rcv_nic };
                let pkt = nic.on_tx_done(now);
                let leg = if snd { LEG_SND_NIC } else { LEG_RCV_NIC };
                let dst_unit = if snd { hub_fwd } else { hub_rev };
                if let Some((extra, dup)) = leg_verdict(&mut e.leg_imps[leg], now) {
                    if let Some(extra2) = dup {
                        e.seq += 1;
                        outgoing.push(Envelope {
                            time: now + access_delay + extra2,
                            src_unit: e.unit,
                            seq: e.seq,
                            dst_unit,
                            msg: pkt.clone(),
                        });
                    }
                    e.seq += 1;
                    outgoing.push(Envelope {
                        time: now + access_delay + extra,
                        src_unit: e.unit,
                        seq: e.seq,
                        dst_unit,
                        msg: pkt,
                    });
                }
                kick_nic(e, u, snd, now, sched);
                // A queue slot freed: stalled connections may proceed.
                if snd {
                    for c in 0..e.conns.len() {
                        pump(e, u, c, now, sched);
                    }
                }
            }
            DEv::PortTx { u, dlv } => {
                let Unit::Edge(e) = &mut units[u as usize] else {
                    unreachable!("edge event at a hub")
                };
                let pkt = {
                    let port = if dlv {
                        &mut e.dlv_port
                    } else {
                        &mut e.ret_port
                    };
                    port.transmitting
                        .take()
                        .expect("port tx-done with no packet in flight")
                };
                // The last hop: the access link's propagation to the host.
                let leg = if dlv { LEG_DLV_PORT } else { LEG_RET_PORT };
                if let Some((extra, dup)) = leg_verdict(&mut e.leg_imps[leg], now) {
                    if let Some(extra2) = dup {
                        sched.after(
                            access_delay + extra2,
                            DEv::HostArrive {
                                u,
                                pkt: pkt.clone(),
                            },
                        );
                    }
                    sched.after(access_delay + extra, DEv::HostArrive { u, pkt });
                }
                kick_port(e, u, dlv, sched);
            }
            DEv::HubTx { u } => {
                let Unit::Hub(h) = &mut units[u as usize] else {
                    unreachable!("hub event at an edge")
                };
                hub_tx(h, u, now, sched, outgoing);
            }
            DEv::FlowStart { u, c } => {
                let Unit::Edge(e) = &mut units[u as usize] else {
                    unreachable!("edge event at a hub")
                };
                let ci = c as usize;
                let start = e.conns[ci].start;
                if let Some((when, bytes)) = e.conns[ci].app.next_write(start) {
                    sched.at(when.max(now), DEv::AppWrite { u, c, bytes });
                }
                pump(e, u, ci, now, sched);
            }
            DEv::RtoCheck { u, c } => {
                let Unit::Edge(e) = &mut units[u as usize] else {
                    unreachable!("edge event at a hub")
                };
                let ci = c as usize;
                e.conns[ci].scheduled_rto = None;
                // Coalesced deadline check, exactly like the serial world: a
                // stale pop (deadline moved later) re-arms and does nothing
                // else. Per-connection, so grouping-invariant.
                if let Some(d) = e.conns[ci].sender.rto_deadline() {
                    if now < d {
                        sched.at(d, DEv::RtoCheck { u, c });
                        e.conns[ci].scheduled_rto = Some(d);
                        return;
                    }
                }
                let snap = snd_snapshot(e);
                e.conns[ci].sender.on_rto_check(now, snap);
                pump(e, u, ci, now, sched);
            }
            DEv::DelackCheck { u, c } => {
                let Unit::Edge(e) = &mut units[u as usize] else {
                    unreachable!("edge event at a hub")
                };
                let ci = c as usize;
                if let Some(a) = e.conns[ci].receiver.on_delack_timer(now) {
                    send_ack(e, u, ci, a, now, sched);
                } else if let Some(d) = e.conns[ci].receiver.delack_deadline() {
                    sched.at(d, DEv::DelackCheck { u, c });
                }
            }
            DEv::StallRetry { u, c } => {
                let Unit::Edge(e) = &mut units[u as usize] else {
                    unreachable!("edge event at a hub")
                };
                pump(e, u, c as usize, now, sched);
            }
            DEv::AppWrite { u, c, bytes } => {
                let Unit::Edge(e) = &mut units[u as usize] else {
                    unreachable!("edge event at a hub")
                };
                let ci = c as usize;
                e.conns[ci].sender.app_extend(bytes);
                let start = e.conns[ci].start;
                if let Some((when, b)) = e.conns[ci].app.next_write(start) {
                    sched.at(when.max(now), DEv::AppWrite { u, c, bytes: b });
                }
                pump(e, u, ci, now, sched);
            }
            DEv::CrossEmit { u, x } => {
                let Unit::Edge(e) = &mut units[u as usize] else {
                    unreachable!("edge event at a hub")
                };
                emit_cross(e, u, x as usize, now, sched);
            }
        }
    }
}

/// One shard: a private engine over a [`DomainWorld`], plus the
/// boundary-sampling cursor.
struct ShardDomain {
    engine: Engine<DomainWorld>,
    next_sample: SimTime,
    sample_interval: SimDuration,
    sample_end: SimTime,
}

impl Domain for ShardDomain {
    type Msg = Packet<WireBody>;

    fn inject(&mut self, env: Env) {
        let world = self.engine.model();
        let local = world.local[env.dst_unit as usize];
        debug_assert_ne!(local, u32::MAX, "envelope routed to the wrong domain");
        let ev = if env.dst_unit >= world.first_hub {
            DEv::HubArrive {
                u: local,
                pkt: env.msg,
            }
        } else {
            DEv::EdgeArrive {
                u: local,
                pkt: env.msg,
            }
        };
        self.engine.schedule_at(env.time, ev);
    }

    fn on_boundary(&mut self, now: SimTime) {
        // Boundary sampling: sample times follow the nominal grid, depths are
        // read at the boundary. The window grid depends only on the
        // lookahead, so the series is identical for every shard count — and
        // samples are not engine events, keeping the merged event count
        // grouping-invariant too.
        while self.next_sample <= now && self.next_sample <= self.sample_end {
            let world = self.engine.model_mut();
            for unit in &mut world.units {
                match unit {
                    Unit::Edge(e) => {
                        if let Some(series) = e.ifq_series.as_mut() {
                            series.push(self.next_sample, e.snd_nic.ifq_queued() as f64);
                        }
                    }
                    Unit::Hub(h) => {
                        let depth = h.queue.len();
                        if let Some(series) = h.series.as_mut() {
                            series.push(self.next_sample, depth as f64);
                        }
                    }
                }
            }
            self.next_sample += self.sample_interval;
        }
    }

    fn run_window(&mut self, end: SimTime) -> u64 {
        self.engine.run_window(end)
    }

    fn finish(&mut self, horizon: SimTime) -> u64 {
        self.engine.run_until(horizon).events_processed
    }

    fn drain_outgoing(&mut self, into: &mut Vec<Env>) {
        into.append(&mut self.engine.model_mut().outgoing);
    }

    fn take_completions(&mut self) -> u64 {
        std::mem::take(&mut self.engine.model_mut().new_completions)
    }
}

/// Execute one scenario through the sharded parallel world and merge the
/// per-domain state into the same [`RunReport`] the serial runner produces.
pub(crate) fn run_sharded_scenario(sc: &Scenario, shards: u32) -> RunReport {
    let pairs = sc.host_pairs();
    let hub_fwd = pairs as u32;
    let hub_rev = pairs as u32 + 1;
    let total_units = pairs + 2;

    let access_delay = sc.path.access_delay;
    let one_way = sc.path.rtt / 2;
    let haul_delay = one_way.saturating_sub(access_delay * 2);
    assert!(
        access_delay > SimDuration::ZERO && haul_delay > SimDuration::ZERO,
        "sharded runs need 0 < 4 x access_delay < rtt (access_delay {access_delay:?}, rtt {:?})",
        sc.path.rtt
    );
    assert!(
        sc.sample_interval > SimDuration::ZERO,
        "sample_interval must be positive"
    );
    let lookahead = access_delay.min(haul_delay);

    let mut pair_conns: Vec<Vec<u32>> = vec![Vec::new(); pairs];
    for i in 0..sc.flows.len() {
        pair_conns[sc.flow_pair(i)].push(i as u32);
    }
    let mut pair_cross: Vec<Vec<u32>> = vec![Vec::new(); pairs];
    for j in 0..sc.cross.len() {
        pair_cross[sc.cross_pair(j)].push(j as u32);
    }

    // Estimated per-unit event weight for the LPT partition: connections
    // dominate (closed-loop, ~4 events per segment round trip), cross
    // sources are open-loop, and each hub sees roughly a quarter of the
    // total edge traffic as queue/serialize events.
    let mut weights: Vec<u64> = (0..pairs)
        .map(|p| (pair_conns[p].len() as u64 * 4 + pair_cross[p].len() as u64 * 2).max(1))
        .collect();
    let edge_sum: u64 = weights.iter().sum();
    weights.push((edge_sum / 4).max(1));
    weights.push((edge_sum / 4).max(1));
    let domains_n = (shards.max(1) as usize).min(total_units);
    let unit_domain = partition_units(&weights, domains_n);

    let rng = SimRng::seed_from_u64(sc.seed);
    let mut worlds: Vec<DomainWorld> = (0..domains_n)
        .map(|_| DomainWorld {
            units: Vec::new(),
            local: vec![u32::MAX; total_units],
            first_hub: hub_fwd,
            hub_fwd,
            hub_rev,
            access_delay,
            outgoing: Vec::new(),
            new_completions: 0,
        })
        .collect();

    // Fault injection: the exact stream derivations the serial world uses,
    // so a given scenario sees one impairment realization at every shard
    // count. Directions/legs of one physical link share an outage schedule.
    let fault_horizon = SimTime::ZERO + sc.duration;
    let (mut haul_imp_fwd, mut haul_imp_rev) = (None, None);
    if let Some(cfg) = sc.haul_impairment.as_ref().filter(|c| !c.is_noop()) {
        let haul_rng = rng.derive(0x1FA);
        let schedule = OutageSchedule::build(cfg, &mut haul_rng.derive(0), fault_horizon);
        haul_imp_fwd = Some(Impairment::new(cfg, schedule.clone(), haul_rng.derive(1)));
        haul_imp_rev = Some(Impairment::new(cfg, schedule, haul_rng.derive(2)));
    }
    let acc_cfg = sc.access_impairment.as_ref().filter(|c| !c.is_noop());
    let acc_rng = rng.derive(0xACC);

    let access_rate = sc.path.access_rate();
    for p in 0..pairs {
        let mut leg_imps: [Option<Impairment>; 4] = [None, None, None, None];
        if let Some(cfg) = acc_cfg {
            let pair_rng = acc_rng.derive(p as u64);
            let schedule = OutageSchedule::build(cfg, &mut pair_rng.derive(0), fault_horizon);
            for (k, slot) in leg_imps.iter_mut().enumerate() {
                *slot = Some(Impairment::new(
                    cfg,
                    schedule.clone(),
                    pair_rng.derive(1 + k as u64),
                ));
            }
        }
        let mut e = EdgeUnit {
            unit: p as u32,
            snd_node: NodeId(2 + 2 * p as u32),
            rcv_node: NodeId(3 + 2 * p as u32),
            snd_nic: HostNic::new(sc.host),
            rcv_nic: HostNic::new(sc.host),
            ret_port: EdgePort::new(sc.path.router_queue_pkts, access_rate),
            dlv_port: EdgePort::new(sc.path.router_queue_pkts, access_rate),
            conns: Vec::with_capacity(pair_conns[p].len()),
            cross: Vec::with_capacity(pair_cross[p].len()),
            ifq_series: None,
            next_pkt: 0,
            seq: 0,
            queue_drops: 0,
            cross_delivered_bytes: 0,
            leg_imps,
        };
        for &i in &pair_conns[p] {
            let f = &sc.flows[i as usize];
            let cc = make_cc(f.algo, &sc.tcp).unwrap_or_else(|e| panic!("flows[{i}]: {e}"));
            let mut sender = TcpSender::new(ConnId(i), sc.tcp, cc, f.app.initial_bytes());
            sender.web100_mut().sample_stride = sc.web100_stride;
            e.conns.push(ConnState {
                global: i,
                sender,
                receiver: TcpReceiver::new(ConnId(i), sc.tcp),
                app: AppDriver::new(f.app),
                start: f.start,
                completed_at: None,
                scheduled_rto: None,
            });
        }
        for &j in &pair_cross[p] {
            let c = &sc.cross[j as usize];
            e.cross.push(CrossState {
                global: j,
                source: TrafficSource::new(c.pattern, rng.derive(0x0C05 + j as u64)),
                stop: c.stop,
                sent_bytes: 0,
            });
        }
        if !e.conns.is_empty() {
            e.ifq_series = Some(TimeSeries::new(format!("ifq_host{}", e.snd_node.0)));
        }
        let d = unit_domain[p] as usize;
        worlds[d].local[p] = worlds[d].units.len() as u32;
        worlds[d].units.push(Unit::Edge(Box::new(e)));
    }

    let mean_pkt = SimDuration::for_bytes_at_rate(1500, sc.path.rate_bps);
    for (hub_unit, stream, impairment) in [
        (hub_fwd, 0xFAB0u64, haul_imp_fwd.take()),
        (hub_rev, 0xFAB1u64, haul_imp_rev.take()),
    ] {
        let queue = match sc.queue.to_red_config(sc.path.router_queue_pkts, mean_pkt) {
            Some(red) => PortQueue::Red(RedQueue::new(red)),
            None => PortQueue::DropTail(DropTailQueue::new(QueueConfig::packets(
                sc.path.router_queue_pkts,
            ))),
        };
        let d = unit_domain[hub_unit as usize] as usize;
        worlds[d].local[hub_unit as usize] = worlds[d].units.len() as u32;
        worlds[d].units.push(Unit::Hub(Box::new(HubUnit {
            unit: hub_unit,
            queue,
            transmitting: None,
            rate_bps: sc.path.rate_bps,
            loss_prob: sc.path.loss_prob,
            haul_delay,
            rng: rng.derive(stream),
            seq: 0,
            queue_drops: 0,
            impairment,
            series: (hub_unit == hub_fwd).then(|| TimeSeries::new("bottleneck_queue")),
        })));
    }

    let mut domains: Vec<ShardDomain> = worlds
        .into_iter()
        .map(|w| ShardDomain {
            engine: Engine::new(w),
            next_sample: SimTime::ZERO,
            sample_interval: sc.sample_interval,
            sample_end: SimTime::ZERO + sc.duration,
        })
        .collect();

    // Seed initial events in global order, so same-instant starts fire in
    // the same per-unit order under every grouping.
    for (i, f) in sc.flows.iter().enumerate() {
        let p = sc.flow_pair(i);
        let d = unit_domain[p] as usize;
        let u = domains[d].engine.model().local[p];
        let c = pair_conns[p]
            .binary_search(&(i as u32))
            .expect("flow indexed") as u32;
        domains[d]
            .engine
            .schedule_at(f.start, DEv::FlowStart { u, c });
    }
    for (j, c) in sc.cross.iter().enumerate() {
        let p = sc.cross_pair(j);
        let d = unit_domain[p] as usize;
        let u = domains[d].engine.model().local[p];
        let x = pair_cross[p]
            .binary_search(&(j as u32))
            .expect("cross indexed") as u32;
        domains[d]
            .engine
            .schedule_at(c.start, DEv::CrossEmit { u, x });
    }

    let target = (sc.stop_when_complete && !sc.flows.is_empty()).then_some(sc.flows.len() as u64);
    // The watchdog clamps the horizon: a window-boundary cut is invariant
    // across shard counts, so truncated runs stay bit-exact at any sharding.
    let horizon = sc.max_sim_time.map_or(sc.duration, |t| t.min(sc.duration));
    let stats = run_sharded(
        &mut domains,
        &unit_domain,
        lookahead,
        SimTime::ZERO + horizon,
        target,
    )
    // A shard panic is a simulator bug; re-raise it on the caller's thread
    // with the shard attribution instead of deadlocking the barrier.
    .unwrap_or_else(|e| panic!("sharded run failed: {e}"));
    let end = stats.end_time;

    // --- merge ------------------------------------------------------------
    let mut worlds: Vec<DomainWorld> = domains.into_iter().map(|d| d.engine.into_model()).collect();

    let mut conn_refs: Vec<Option<&mut ConnState>> = sc.flows.iter().map(|_| None).collect();
    let mut conn0_unit: Option<&EdgeUnit> = None;
    let mut router_queue_drops = 0u64;
    let mut cross_offered_bytes = 0u64;
    let mut cross_delivered_bytes = 0u64;
    let mut red_total: Option<RedStats> = None;
    let mut bottleneck_queue_series: Vec<(f64, f64)> = Vec::new();
    for w in &mut worlds {
        for unit in &mut w.units {
            match unit {
                Unit::Edge(e) => {
                    router_queue_drops += e.queue_drops;
                    cross_delivered_bytes += e.cross_delivered_bytes;
                    cross_offered_bytes += e.cross.iter().map(|c| c.sent_bytes).sum::<u64>();
                    for c in e.conns.iter_mut() {
                        let g = c.global as usize;
                        conn_refs[g] = Some(c);
                    }
                }
                Unit::Hub(h) => {
                    router_queue_drops += h.queue_drops;
                    if let Some(s) = h.queue.red_stats() {
                        let acc = red_total.get_or_insert(RedStats::default());
                        acc.early_drops += s.early_drops;
                        acc.forced_drops += s.forced_drops;
                        acc.ecn_marks += s.ecn_marks;
                    }
                    if let Some(series) = h.series.as_ref() {
                        bottleneck_queue_series =
                            series.iter().map(|(t, v)| (t.as_secs_f64(), v)).collect();
                    }
                }
            }
        }
    }
    let mut flows = Vec::with_capacity(sc.flows.len());
    for (i, slot) in conn_refs.into_iter().enumerate() {
        let c = slot.expect("every flow assigned to a unit");
        flows.push(flow_report(
            i,
            sc,
            &mut c.sender,
            &c.receiver,
            c.completed_at,
            end,
        ));
    }
    // The report's host-level fields describe connection 0's sending host,
    // as in the serial runner.
    for w in &worlds {
        for unit in &w.units {
            if let Unit::Edge(e) = unit {
                if e.unit as usize == sc.flow_pair(0) {
                    conn0_unit = Some(e);
                }
            }
        }
    }
    let e0 = conn0_unit.expect("conn 0's unit exists");

    RunReport {
        duration_s: end.as_secs_f64(),
        seed: sc.seed,
        path_rate_bps: sc.path.rate_bps,
        flows,
        sender_ifq_series: e0
            .ifq_series
            .as_ref()
            .expect("conn 0's host has an IFQ series")
            .iter()
            .map(|(t, v)| (t.as_secs_f64(), v))
            .collect(),
        sender_nic: e0.snd_nic.stats(),
        sender_nic_utilization: e0.snd_nic.utilization(end),
        router_queue_drops,
        router_red_early_drops: red_total.map_or(0, |s| s.early_drops),
        router_red_forced_drops: red_total.map_or(0, |s| s.forced_drops),
        router_ecn_marks: red_total.map_or(0, |s| s.ecn_marks),
        bottleneck_queue_series,
        cross_offered_bytes,
        cross_delivered_bytes,
        events_processed: stats.events_processed,
        // Queue-placement counters are not grouping-invariant across shard
        // counts, and the reports must compare byte-equal; leave them out.
        engine: None,
        truncated: (sc.max_sim_time.is_some_and(|t| t < sc.duration) && !stats.stopped_early).then(
            || {
                format!(
                    "max_sim_time {:.6}s reached before the {:.6}s horizon",
                    sc.max_sim_time.expect("checked above").as_secs_f64(),
                    sc.duration.as_secs_f64()
                )
            },
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rss_net::TrafficPattern;
    use rss_sim::SimDuration;
    use rss_tcp::CcAlgorithm;
    use rss_workload::AppModel;

    /// A fast multi-flow scenario with cross traffic, loss and staggered
    /// starts — every mechanism the sharded world models.
    fn busy(flows: usize) -> Scenario {
        let mut sc = Scenario::paper_testbed(CcAlgorithm::Reno)
            .with_rate(20_000_000)
            .with_rtt(SimDuration::from_millis(10))
            .with_duration(SimDuration::from_millis(400))
            .with_access_delay(SimDuration::from_micros(500));
        sc.flows = (0..flows)
            .map(|i| crate::scenario::FlowSpec {
                algo: if i % 2 == 0 {
                    CcAlgorithm::Reno
                } else {
                    CcAlgorithm::Restricted(rss_tcp::RssConfig::tuned())
                },
                app: AppModel::Bulk { bytes: None },
                start: SimTime::from_millis(5 * i as u64),
            })
            .collect();
        sc.cross = vec![crate::scenario::CrossSpec {
            pattern: TrafficPattern::Cbr {
                rate_bps: 2_000_000,
                pkt_size: 1500,
            },
            start: SimTime::ZERO,
            stop: None,
        }];
        sc.path.loss_prob = 0.001;
        sc.web100_stride = 8;
        sc
    }

    fn report_json(sc: &Scenario, shards: u32) -> String {
        run_sharded_scenario(sc, shards).to_json()
    }

    #[test]
    fn shard_counts_are_bit_exact() {
        let sc = busy(4);
        let serial = report_json(&sc, 1);
        for shards in [2, 3, 6] {
            let parallel = report_json(&sc, shards);
            assert_eq!(serial, parallel, "{shards} shards diverged from serial");
        }
    }

    #[test]
    fn sharded_run_moves_data_and_reports_all_flows() {
        let sc = busy(3);
        let r = run_sharded_scenario(&sc, 2);
        assert_eq!(r.flows.len(), 3);
        for f in &r.flows {
            assert!(f.vars.thru_bytes_acked > 0, "flow {} moved no data", f.conn);
        }
        assert!(r.cross_offered_bytes > 0);
        assert!(r.cross_delivered_bytes > 0);
        assert!(r.events_processed > 1000);
    }

    #[test]
    fn sharded_stop_when_complete_stops_early() {
        let mut sc = busy(2);
        sc.cross.clear();
        sc.path.loss_prob = 0.0;
        for f in &mut sc.flows {
            f.app = AppModel::Bulk {
                bytes: Some(100_000),
            };
            f.start = SimTime::ZERO;
        }
        sc.stop_when_complete = true;
        sc.duration = SimDuration::from_secs(20);
        let r = run_sharded_scenario(&sc, 2);
        for f in &r.flows {
            assert_eq!(f.vars.thru_bytes_acked, 100_000);
            assert!(f.completed_at_s.is_some());
        }
        assert!(r.duration_s < 19.0, "did not stop early: {}", r.duration_s);
        // Early stop is also shard-count invariant.
        let a = report_json(&sc, 1);
        let b = report_json(&sc, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn shared_sender_host_pumps_in_global_order() {
        let mut sc = busy(3);
        sc.shared_sender_host = true;
        let a = report_json(&sc, 1);
        let b = report_json(&sc, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn red_bottleneck_is_grouping_invariant() {
        use crate::scenario::{QueueDiscipline, RedParams};
        let mut sc = busy(4);
        sc.path.router_queue_pkts = 40;
        sc = sc.with_queue(QueueDiscipline::Red(RedParams::for_capacity(40)));
        let a = report_json(&sc, 1);
        let b = report_json(&sc, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn ecn_bottleneck_is_grouping_invariant_and_marks() {
        use crate::scenario::{QueueDiscipline, RedParams};
        let mut sc = busy(4);
        sc.path.router_queue_pkts = 40;
        sc = sc.with_queue(QueueDiscipline::RedEcn(RedParams::for_capacity(40)));
        let r = run_sharded_scenario(&sc, 2);
        assert!(
            r.router_ecn_marks > 0,
            "a congested ECN bottleneck never marked"
        );
        for f in &r.flows {
            assert!(f.vars.thru_bytes_acked > 0, "flow {} starved", f.conn);
        }
        let a = report_json(&sc, 1);
        for shards in [2, 4] {
            let b = report_json(&sc, shards);
            assert_eq!(a, b, "{shards} shards diverged under ECN");
        }
    }

    /// Every impairment mechanism at once, on both the haul and the access
    /// links — the realization must be identical at every shard count.
    fn faulty() -> Scenario {
        use rss_net::{Flap, GilbertElliott, ImpairmentConfig, Jitter, OutageWindow};
        let mut sc = busy(4);
        sc.haul_impairment = Some(ImpairmentConfig {
            burst_loss: Some(GilbertElliott {
                p_good_to_bad: 0.01,
                p_bad_to_good: 0.3,
                loss_good: 0.0,
                loss_bad: 0.5,
            }),
            outages: vec![OutageWindow {
                start: SimTime::from_millis(100),
                duration: SimDuration::from_millis(30),
            }],
            flap: None,
            jitter: Some(Jitter {
                prob: 0.2,
                max: SimDuration::from_micros(400),
            }),
            duplicate_prob: 0.01,
        });
        sc.access_impairment = Some(ImpairmentConfig {
            flap: Some(Flap {
                mean_up: SimDuration::from_millis(150),
                mean_down: SimDuration::from_millis(10),
            }),
            jitter: Some(Jitter {
                prob: 0.1,
                max: SimDuration::from_micros(200),
            }),
            ..Default::default()
        });
        sc
    }

    #[test]
    fn impaired_runs_are_shard_count_invariant() {
        let sc = faulty();
        let serial = report_json(&sc, 1);
        for shards in [2, 3, 6] {
            let parallel = report_json(&sc, shards);
            assert_eq!(serial, parallel, "{shards} shards diverged under faults");
        }
    }

    #[test]
    fn impaired_run_still_moves_data() {
        let r = run_sharded_scenario(&faulty(), 2);
        for f in &r.flows {
            assert!(f.vars.thru_bytes_acked > 0, "flow {} starved", f.conn);
        }
        assert!(r.truncated.is_none());
    }

    /// Livelock regression: `stop_when_complete` plus a permanent outage can
    /// never satisfy its stop condition — the watchdog must end the run at
    /// `max_sim_time` with an explicit truncation, identically at every
    /// shard count, instead of spinning toward a huge horizon.
    #[test]
    fn watchdog_truncates_uncompletable_run() {
        use rss_net::{ImpairmentConfig, OutageWindow};
        let mut sc = busy(1);
        sc.cross.clear();
        sc.flows[0].app = AppModel::Bulk {
            bytes: Some(5_000_000),
        };
        sc.flows[0].start = SimTime::ZERO;
        sc.stop_when_complete = true;
        sc.duration = SimDuration::from_secs(3600);
        sc.max_sim_time = Some(SimDuration::from_secs(8));
        // The haul goes down at 50 ms and never comes back.
        sc.haul_impairment = Some(ImpairmentConfig {
            outages: vec![OutageWindow {
                start: SimTime::from_millis(50),
                duration: SimDuration::from_secs(7200),
            }],
            ..Default::default()
        });
        let r = run_sharded_scenario(&sc, 2);
        assert!(r.duration_s <= 8.1, "ran past the clamp: {}", r.duration_s);
        let reason = r.truncated.as_deref().expect("truncation reported");
        assert!(reason.contains("max_sim_time"), "unexpected: {reason}");
        assert!(r.flows[0].completed_at_s.is_none());
        assert!(r.flows[0].rto_episodes >= 1, "no RTO episodes recorded");
        assert!(r.flows[0].rto_max_backoff >= 2, "backoff never deepened");
        // Truncated runs are shard-count invariant too.
        assert_eq!(report_json(&sc, 1), report_json(&sc, 2));
    }
}
