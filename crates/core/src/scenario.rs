//! Experiment scenarios: everything needed to reproduce one run.
//!
//! [`Scenario::paper_testbed`] encodes §4 of the paper: a 100 Mbit/s path
//! with 60 ms RTT, a Linux-2.4-style sending host (`txqueuelen` 100), one
//! bulk flow, a 25-second horizon.

use rss_host::HostConfig;
use rss_net::{ImpairmentConfig, QueueConfig, RedConfig, TrafficPattern};
use rss_sim::{SimDuration, SimTime};
use rss_tcp::{CcAlgorithm, RssConfig, TcpConfig};
use rss_workload::AppModel;

/// RED parameters at scenario level (thresholds in packets). Mirrors
/// [`rss_net::RedConfig`] minus the storage/idle-compensation fields the
/// world derives from the path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RedParams {
    /// Average-queue threshold below which nothing is dropped or marked.
    pub min_th: f64,
    /// Start of the forced-drop region (or of the gentle ramp).
    pub max_th: f64,
    /// EWMA weight for the average queue size.
    pub wq: f64,
    /// Drop/mark probability at `max_th`.
    pub max_p: f64,
    /// Gentle mode: `max_p`→1 ramp over `(max_th, 2·max_th)` instead of a
    /// cliff at `max_th`.
    pub gentle: bool,
}

impl RedParams {
    /// The ns-2 style defaults for a queue of `cap` packets — identical to
    /// [`rss_net::RedConfig::for_capacity`], so the deprecated
    /// `red_bottleneck: true` spec alias reproduces the legacy runs
    /// byte-for-byte.
    pub fn for_capacity(cap: u32) -> Self {
        RedParams {
            min_th: cap as f64 * 0.25,
            max_th: cap as f64 * 0.75,
            wq: 0.002,
            max_p: 0.1,
            gentle: false,
        }
    }
}

/// Queue discipline on the bottleneck router egress ports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueueDiscipline {
    /// Plain drop-tail FIFO (the paper's testbed; the default).
    DropTail,
    /// RED early dropping with the given parameters.
    Red(RedParams),
    /// RED with ECN: in-band decisions CE-mark ECT packets instead of
    /// dropping them.
    RedEcn(RedParams),
}

impl QueueDiscipline {
    /// The RED parameters, when the discipline is a RED variant.
    pub fn red_params(&self) -> Option<&RedParams> {
        match self {
            QueueDiscipline::DropTail => None,
            QueueDiscipline::Red(p) | QueueDiscipline::RedEcn(p) => Some(p),
        }
    }

    /// True when the bottleneck CE-marks instead of dropping.
    pub fn ecn_marking(&self) -> bool {
        matches!(self, QueueDiscipline::RedEcn(_))
    }

    /// The [`rss_net::RedConfig`] to install on a bottleneck port of `cap`
    /// packets whose small-packet transmission time is `mean_pkt_time`;
    /// `None` for drop-tail.
    pub fn to_red_config(&self, cap: u32, mean_pkt_time: SimDuration) -> Option<RedConfig> {
        self.red_params().map(|p| RedConfig {
            min_th: p.min_th,
            max_th: p.max_th,
            max_p: p.max_p,
            wq: p.wq,
            capacity: QueueConfig::packets(cap),
            mean_pkt_time,
            gentle: p.gentle,
            ecn: self.ecn_marking(),
        })
    }
}

/// The network path under test.
#[derive(Debug, Clone, Copy)]
pub struct PathSpec {
    /// Bottleneck/backbone line rate, bits per second.
    pub rate_bps: u64,
    /// Path round-trip propagation time.
    pub rtt: SimDuration,
    /// Router egress queue capacity, packets.
    pub router_queue_pkts: u32,
    /// Independent per-packet loss probability on the long-haul link.
    pub loss_prob: f64,
    /// Access-link rate for all hosts; `None` = same as `rate_bps`, which
    /// makes the sender's own NIC the bottleneck (the paper's regime).
    pub access_rate_bps: Option<u64>,
    /// One-way propagation delay of each access link. The long-haul delay is
    /// derived as `rtt/2 − 2·access_delay`, so this also bounds the sharded
    /// runner's lookahead window (`min(access_delay, haul_delay)`).
    pub access_delay: SimDuration,
}

impl Default for PathSpec {
    fn default() -> Self {
        PathSpec {
            rate_bps: 100_000_000,
            rtt: SimDuration::from_millis(60),
            router_queue_pkts: 200,
            loss_prob: 0.0,
            access_rate_bps: None,
            access_delay: SimDuration::from_micros(10),
        }
    }
}

impl PathSpec {
    /// Effective access-link rate.
    pub fn access_rate(&self) -> u64 {
        self.access_rate_bps.unwrap_or(self.rate_bps)
    }

    /// Path bandwidth-delay product in bytes.
    pub fn bdp_bytes(&self) -> u64 {
        (self.rate_bps as u128 * self.rtt.as_nanos() as u128 / 8 / 1_000_000_000) as u64
    }
}

/// One TCP flow in the experiment.
#[derive(Debug, Clone, Copy)]
pub struct FlowSpec {
    /// Congestion-control algorithm.
    pub algo: CcAlgorithm,
    /// Application driving the connection.
    pub app: AppModel,
    /// When the flow starts.
    pub start: SimTime,
}

impl FlowSpec {
    /// An unbounded bulk flow starting at t = 0.
    pub fn bulk(algo: CcAlgorithm) -> Self {
        FlowSpec {
            algo,
            app: AppModel::Bulk { bytes: None },
            start: SimTime::ZERO,
        }
    }
}

/// One open-loop cross-traffic stream sharing the bottleneck.
#[derive(Debug, Clone, Copy)]
pub struct CrossSpec {
    /// Arrival process.
    pub pattern: TrafficPattern,
    /// Start time.
    pub start: SimTime,
    /// Stop time (`None` = until the run ends).
    pub stop: Option<SimTime>,
}

/// A complete, reproducible experiment description.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Network path.
    pub path: PathSpec,
    /// Sending/receiving host transmit-path configuration.
    pub host: HostConfig,
    /// Transport configuration shared by all flows.
    pub tcp: TcpConfig,
    /// The TCP flows.
    pub flows: Vec<FlowSpec>,
    /// Cross traffic.
    pub cross: Vec<CrossSpec>,
    /// Simulated run length.
    pub duration: SimDuration,
    /// RNG seed (loss, cross traffic).
    pub seed: u64,
    /// Put every flow on one sending host (parallel-stream experiments);
    /// otherwise each flow gets its own host pair.
    pub shared_sender_host: bool,
    /// Periodic sampling interval for world-level series (IFQ depth).
    pub sample_interval: SimDuration,
    /// Thinning stride for dense per-connection series (1 = keep all).
    pub web100_stride: u32,
    /// Stop as soon as every bounded flow completes.
    pub stop_when_complete: bool,
    /// Queue discipline on the bottleneck router ports.
    pub queue: QueueDiscipline,
    /// Run through the sharded parallel executor with this many shards
    /// (`None` = the classic serial world). Any count — including 1 — uses
    /// the shard-exact event path, whose results are identical for every
    /// shard count but not bit-equal to the serial world's tie-breaking.
    pub shards: Option<u32>,
    /// Deterministic impairment on the long-haul link (both directions;
    /// independent random streams per direction, one shared outage
    /// schedule so a flap downs the physical link as a whole).
    pub haul_impairment: Option<ImpairmentConfig>,
    /// Deterministic impairment on every host-pair's access links (each
    /// direction of each leg gets an independent random stream; the two
    /// legs of one pair share an outage schedule).
    pub access_impairment: Option<ImpairmentConfig>,
    /// Watchdog: end the run once this much simulated time has elapsed even
    /// if `duration` is larger (e.g. `stop_when_complete` runs that can no
    /// longer complete because an outage never lifts). A run ended by the
    /// watchdog reports `truncated` in its [`crate::RunReport`]. Honored by
    /// both the serial and the sharded executor (it clamps the horizon, so
    /// it is shard-count-invariant).
    pub max_sim_time: Option<SimDuration>,
    /// Watchdog: end the run gracefully after this many simulation events.
    /// Unlike the engine's panicking `event_limit`, exhaustion is reported
    /// as a truncated run, not a crash. Serial executor only; the sharded
    /// executor relies on `max_sim_time`.
    pub max_events: Option<u64>,
}

impl Scenario {
    /// The paper's §4 testbed with a single bulk flow of the given
    /// algorithm: 100 Mbit/s, 60 ms RTT, `txqueuelen` 100, MSS 1448,
    /// 25-second horizon, per-segment ACKs (Linux 2.4 quickack).
    pub fn paper_testbed(algo: CcAlgorithm) -> Scenario {
        Scenario {
            path: PathSpec::default(),
            host: HostConfig {
                nic_rate_bps: 100_000_000,
                txqueuelen: 100,
                mtu: 1500,
            },
            tcp: TcpConfig::default(),
            flows: vec![FlowSpec::bulk(algo)],
            cross: vec![],
            duration: SimDuration::from_secs(25),
            seed: 1,
            shared_sender_host: false,
            sample_interval: SimDuration::from_millis(10),
            web100_stride: 1,
            stop_when_complete: false,
            queue: QueueDiscipline::DropTail,
            shards: None,
            haul_impairment: None,
            access_impairment: None,
            max_sim_time: None,
            max_events: None,
        }
    }

    /// The paper's scheme with default tuned gains on the §4 testbed.
    pub fn paper_testbed_restricted() -> Scenario {
        Self::paper_testbed(CcAlgorithm::Restricted(RssConfig::tuned()))
    }

    /// The standard-TCP baseline on the §4 testbed.
    pub fn paper_testbed_standard() -> Scenario {
        Self::paper_testbed(CcAlgorithm::Reno)
    }

    /// Builder: replace the RTT.
    pub fn with_rtt(mut self, rtt: SimDuration) -> Self {
        self.path.rtt = rtt;
        self
    }

    /// Builder: replace the line rate (path and NICs).
    pub fn with_rate(mut self, bps: u64) -> Self {
        self.path.rate_bps = bps;
        self.host.nic_rate_bps = bps;
        self
    }

    /// Builder: replace `txqueuelen`.
    pub fn with_txqueuelen(mut self, pkts: u32) -> Self {
        self.host.txqueuelen = pkts;
        self
    }

    /// Builder: replace the bottleneck queue discipline. A RED-with-ECN
    /// discipline also switches every flow to ECN ([`TcpConfig::ecn`])
    /// unless the transport config is adjusted afterwards.
    pub fn with_queue(mut self, queue: QueueDiscipline) -> Self {
        self.queue = queue;
        self.tcp.ecn = queue.ecn_marking();
        self
    }

    /// Builder: replace the run length.
    pub fn with_duration(mut self, d: SimDuration) -> Self {
        self.duration = d;
        self
    }

    /// Builder: replace the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: replace the access-link propagation delay.
    pub fn with_access_delay(mut self, d: SimDuration) -> Self {
        self.path.access_delay = d;
        self
    }

    /// Builder: run through the sharded executor with `n` shards.
    pub fn with_shards(mut self, n: u32) -> Self {
        self.shards = Some(n);
        self
    }

    /// Builder: impair the long-haul link.
    pub fn with_haul_impairment(mut self, cfg: ImpairmentConfig) -> Self {
        self.haul_impairment = Some(cfg);
        self
    }

    /// Builder: impair every access link.
    pub fn with_access_impairment(mut self, cfg: ImpairmentConfig) -> Self {
        self.access_impairment = Some(cfg);
        self
    }

    /// Builder: arm the simulated-time watchdog.
    pub fn with_max_sim_time(mut self, t: SimDuration) -> Self {
        self.max_sim_time = Some(t);
        self
    }

    /// Builder: arm the event-count watchdog (serial executor).
    pub fn with_max_events(mut self, n: u64) -> Self {
        self.max_events = Some(n);
        self
    }

    /// Builder: size the receive window to the path (4×BDP, floor 2 MB).
    ///
    /// The paper's hosts used a hand-tuned static window adequate for their
    /// 750 kB-BDP path; sweeps that push the BDP beyond that need the same
    /// tuning or the receive window silently becomes the bottleneck.
    pub fn with_auto_rwnd(mut self) -> Self {
        self.tcp.rwnd = (4 * self.path.bdp_bytes()).max(2 * 1024 * 1024);
        self
    }

    /// Number of sender/receiver host pairs the topology needs.
    pub fn host_pairs(&self) -> usize {
        let flow_pairs = if self.shared_sender_host {
            1
        } else {
            self.flows.len().max(1)
        };
        flow_pairs + self.cross.len()
    }

    /// The sender host-pair index used by flow `i`.
    pub fn flow_pair(&self, i: usize) -> usize {
        if self.shared_sender_host {
            0
        } else {
            i
        }
    }

    /// The host-pair index used by cross stream `j`.
    pub fn cross_pair(&self, j: usize) -> usize {
        let flow_pairs = if self.shared_sender_host {
            1
        } else {
            self.flows.len().max(1)
        };
        flow_pairs + j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_matches_section4() {
        let s = Scenario::paper_testbed_standard();
        assert_eq!(s.path.rate_bps, 100_000_000);
        assert_eq!(s.path.rtt, SimDuration::from_millis(60));
        assert_eq!(s.host.txqueuelen, 100);
        assert_eq!(s.duration, SimDuration::from_secs(25));
        assert_eq!(s.flows.len(), 1);
        // BDP: 100 Mbit/s * 60 ms = 750 kB ≈ 518 segments.
        assert_eq!(s.path.bdp_bytes(), 750_000);
    }

    #[test]
    fn builders_apply() {
        let s = Scenario::paper_testbed_standard()
            .with_rtt(SimDuration::from_millis(120))
            .with_rate(1_000_000_000)
            .with_txqueuelen(500)
            .with_duration(SimDuration::from_secs(5))
            .with_seed(9);
        assert_eq!(s.path.rtt, SimDuration::from_millis(120));
        assert_eq!(s.path.rate_bps, 1_000_000_000);
        assert_eq!(s.host.nic_rate_bps, 1_000_000_000);
        assert_eq!(s.host.txqueuelen, 500);
        assert_eq!(s.seed, 9);
    }

    #[test]
    fn host_pair_layout() {
        let mut s = Scenario::paper_testbed_standard();
        s.flows = vec![
            FlowSpec::bulk(CcAlgorithm::Reno),
            FlowSpec::bulk(CcAlgorithm::Reno),
        ];
        s.cross = vec![CrossSpec {
            pattern: TrafficPattern::Cbr {
                rate_bps: 1_000_000,
                pkt_size: 1500,
            },
            start: SimTime::ZERO,
            stop: None,
        }];
        assert_eq!(s.host_pairs(), 3);
        assert_eq!(s.flow_pair(1), 1);
        assert_eq!(s.cross_pair(0), 2);
        s.shared_sender_host = true;
        assert_eq!(s.host_pairs(), 2);
        assert_eq!(s.flow_pair(1), 0);
        assert_eq!(s.cross_pair(0), 1);
    }
}
