//! Results extracted from a finished run: per-flow Web100 snapshots, event
//! logs and series, plus world-level link/NIC accounting.

use rss_host::NicStats;
use rss_sim::{jain_fairness, QueueCounters};
use rss_web100::Web100Vars;
use serde::{Deserialize, Serialize};

/// Everything measured about one flow.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlowReport {
    /// Connection index.
    pub conn: u32,
    /// Congestion-control label ("standard", "restricted", "limited").
    pub algo: String,
    /// Final Web100 counter snapshot.
    pub vars: Web100Vars,
    /// Mean goodput over the run, bits/s (acked bytes).
    pub goodput_bps: f64,
    /// Goodput as a fraction of the path rate.
    pub utilization: f64,
    /// When a bounded transfer finished, seconds.
    pub completed_at_s: Option<f64>,
    /// Timestamps of send-stall signals, seconds (Figure 1's x-values).
    pub stall_times_s: Vec<f64>,
    /// Timestamps of all congestion signals, seconds.
    pub congestion_times_s: Vec<f64>,
    /// Congestion-window samples `(t_s, cwnd_bytes)`.
    pub cwnd_series: Vec<(f64, f64)>,
    /// Cumulative acked bytes `(t_s, bytes)`.
    pub acked_series: Vec<(f64, f64)>,
    /// Bytes delivered in order to the receiving application.
    pub receiver_delivered_bytes: u64,
    /// Fully duplicate segments seen by the receiver (spurious retransmits).
    pub receiver_dup_segments: u64,
    /// Segments the receiver buffered out of order (reordering/loss marker).
    pub receiver_ooo_segments: u64,
    /// RTO episodes: runs of consecutive retransmission timeouts with no
    /// intervening forward progress, counted once per run (an outage
    /// spanning five backed-off RTOs is one episode; `vars.timeouts` counts
    /// all five).
    pub rto_episodes: u64,
    /// Deepest exponential-backoff shift reached (0 = the RTO never backed
    /// off; 3 = the RTO climbed to 8× its base during the worst episode).
    pub rto_max_backoff: u32,
    /// Worst post-outage time-to-recover, seconds: the longest span from an
    /// episode's first timeout to the ACK of new data that ended it. `None`
    /// when no episode completed during the run.
    pub rto_max_recovery_s: Option<f64>,
}

impl FlowReport {
    /// The cumulative send-stall staircase sampled every `step_s` over
    /// `[0, end_s]` — exactly the series Figure 1 plots.
    pub fn stall_staircase(&self, end_s: f64, step_s: f64) -> Vec<(f64, u64)> {
        assert!(step_s > 0.0);
        let mut out = Vec::new();
        let mut t = 0.0;
        while t <= end_s + 1e-9 {
            let count = self.stall_times_s.iter().filter(|&&x| x <= t).count() as u64;
            out.push((t, count));
            t += step_s;
        }
        out
    }

    /// The per-flow goodput timeseries: mean goodput over each consecutive
    /// `window_s`-second window of `[0, end_s]`, bits/s, derived from the
    /// cumulative acked series in one pass. Points are labelled with the
    /// window's *end* time, so `(2.0, g)` is the goodput over `[1, 2]` s at
    /// `window_s = 1`. This is the series the fairness subsystem compares
    /// across flows.
    pub fn goodput_series_bps(&self, window_s: f64, end_s: f64) -> Vec<(f64, f64)> {
        let mut vals = Vec::new();
        self.goodput_series_fill(window_s, end_s, &mut vals);
        // Window end times accumulate exactly as in the fill loop, so the
        // pairs match what a fused loop would produce bit-for-bit.
        let mut t = window_s;
        vals.into_iter()
            .map(|g| {
                let sample = (t, g);
                t += window_s;
                sample
            })
            .collect()
    }

    /// Append this flow's per-window goodputs (bits/s; one value per window
    /// ending at `window_s`, `2·window_s`, … up to `end_s`) to `out` — the
    /// allocation-free core of [`Self::goodput_series_bps`]. The fairness
    /// pass uses it to fill one row of a preallocated flows × windows table
    /// instead of materializing a `Vec` of pairs per flow.
    pub fn goodput_series_fill(&self, window_s: f64, end_s: f64, out: &mut Vec<f64>) {
        assert!(window_s > 0.0, "window must be positive");
        let mut i = 0usize;
        let mut cum = 0.0; // cumulative acked bytes at the current window end
        let mut cum_prev = 0.0; // ... at the previous window end
        let mut t = window_s;
        while t <= end_s + 1e-9 {
            while i < self.acked_series.len() && self.acked_series[i].0 <= t {
                cum = self.acked_series[i].1;
                i += 1;
            }
            out.push((cum - cum_prev) * 8.0 / window_s);
            cum_prev = cum;
            t += window_s;
        }
    }

    /// Goodput over a window `[a_s, b_s]`, bits/s, from the acked series.
    pub fn goodput_in_window_bps(&self, a_s: f64, b_s: f64) -> f64 {
        assert!(b_s > a_s);
        let at = |t: f64| -> f64 {
            // Step function over cumulative acked bytes.
            let mut v = 0.0;
            for &(ts, bytes) in &self.acked_series {
                if ts <= t {
                    v = bytes;
                } else {
                    break;
                }
            }
            v
        };
        (at(b_s) - at(a_s)) * 8.0 / (b_s - a_s)
    }
}

/// Results of one complete run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Simulated run length, seconds.
    pub duration_s: f64,
    /// RNG seed used.
    pub seed: u64,
    /// Path line rate, bits/s.
    pub path_rate_bps: u64,
    /// Per-flow results.
    pub flows: Vec<FlowReport>,
    /// IFQ-depth samples of the first sender host `(t_s, packets)`.
    pub sender_ifq_series: Vec<(f64, f64)>,
    /// NIC counters of the first sender host.
    pub sender_nic: NicStats,
    /// Fraction of the run the first sender's NIC was transmitting.
    pub sender_nic_utilization: f64,
    /// Packets dropped at router queues.
    pub router_queue_drops: u64,
    /// RED probabilistic (early) drops at the bottleneck, both directions.
    /// Zero on a drop-tail bottleneck.
    pub router_red_early_drops: u64,
    /// RED forced drops (average queue above the hard threshold, or the
    /// physical queue full), both directions. Zero on a drop-tail bottleneck.
    pub router_red_forced_drops: u64,
    /// CE marks applied by the bottleneck instead of drops (RED with ECN
    /// only), both directions.
    pub router_ecn_marks: u64,
    /// Bottleneck queue-depth samples `(t_s, packets)` in the forward
    /// (data) direction, on the same grid as `sender_ifq_series`.
    pub bottleneck_queue_series: Vec<(f64, f64)>,
    /// Cross-traffic bytes offered by the sources.
    pub cross_offered_bytes: u64,
    /// Cross-traffic bytes delivered to sinks.
    pub cross_delivered_bytes: u64,
    /// Discrete events the engine dispatched during the run (the simulator
    /// perf harness divides these by wall time for events/sec).
    pub events_processed: u64,
    /// Event-queue counters of the serial engine (wheel hit rate, tombstone
    /// sweeps, far-heap migrations). `None` for sharded runs: queue
    /// placement depends on each domain's private engine, so the counters
    /// are not grouping-invariant and would break the byte-identical
    /// reports-across-shard-counts guarantee.
    pub engine: Option<QueueCounters>,
    /// `Some(reason)` when the run was ended by a watchdog (`max_sim_time`
    /// or `max_events`) rather than running its course — the explicit
    /// "this run was cut short" marker for un-completable scenarios.
    pub truncated: Option<String>,
}

impl RunReport {
    /// Render the full report as JSON (via the workspace serde's
    /// `Serialize`). Everything the run measured — per-flow Web100
    /// snapshots, series, NIC and router accounting — lands in one
    /// machine-readable artifact.
    pub fn to_json(&self) -> String {
        serde::to_json_string(self)
    }

    /// Parse a report back from its [`Self::to_json`] rendering. Numbers
    /// round-trip exactly (the serializer emits shortest-round-trip floats
    /// and full-width integers), so `from_json(to_json(r))` re-serializes
    /// byte-identically.
    pub fn from_json(text: &str) -> Result<Self, serde::de::Error> {
        serde::from_json_str(text)
    }

    /// Combined goodput of all flows, bits/s.
    pub fn total_goodput_bps(&self) -> f64 {
        self.flows.iter().map(|f| f.goodput_bps).sum()
    }

    /// Jain fairness index over per-flow goodputs.
    pub fn fairness(&self) -> f64 {
        let allocs: Vec<f64> = self.flows.iter().map(|f| f.goodput_bps).collect();
        jain_fairness(&allocs)
    }

    /// Total send-stalls across flows.
    pub fn total_stalls(&self) -> u64 {
        self.flows.iter().map(|f| f.vars.send_stall).sum()
    }

    /// Cross-traffic delivery ratio (1.0 when nothing was lost).
    pub fn cross_delivery_ratio(&self) -> f64 {
        if self.cross_offered_bytes == 0 {
            1.0
        } else {
            self.cross_delivered_bytes as f64 / self.cross_offered_bytes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(stalls: Vec<f64>, goodput: f64) -> FlowReport {
        FlowReport {
            conn: 0,
            algo: "standard".into(),
            vars: Web100Vars {
                send_stall: stalls.len() as u64,
                ..Default::default()
            },
            goodput_bps: goodput,
            utilization: 0.5,
            completed_at_s: None,
            stall_times_s: stalls,
            congestion_times_s: vec![],
            cwnd_series: vec![],
            acked_series: vec![(0.0, 0.0), (1.0, 125_000.0), (2.0, 375_000.0)],
            receiver_delivered_bytes: 0,
            receiver_dup_segments: 0,
            receiver_ooo_segments: 0,
            rto_episodes: 0,
            rto_max_backoff: 0,
            rto_max_recovery_s: None,
        }
    }

    #[test]
    fn staircase_counts_cumulatively() {
        let f = flow(vec![0.5, 1.5, 1.6, 7.0], 1e6);
        let st = f.stall_staircase(8.0, 1.0);
        let counts: Vec<u64> = st.iter().map(|&(_, c)| c).collect();
        assert_eq!(counts, vec![0, 1, 3, 3, 3, 3, 3, 4, 4]);
    }

    #[test]
    fn windowed_goodput() {
        let f = flow(vec![], 1e6);
        // Between t=1 and t=2: 250 kB = 2 Mbit/s.
        let g = f.goodput_in_window_bps(1.0, 2.0);
        assert!((g - 2_000_000.0).abs() < 1.0);
    }

    #[test]
    fn goodput_series_matches_the_window_function() {
        let f = flow(vec![], 1e6);
        let series = f.goodput_series_bps(1.0, 3.0);
        assert_eq!(series.len(), 3);
        for &(t, g) in &series {
            let want = f.goodput_in_window_bps(t - 1.0, t);
            assert!((g - want).abs() < 1e-6, "window ending {t}: {g} vs {want}");
        }
        // Past the last sample the cumulative series is flat: zero goodput.
        assert_eq!(series[2].1, 0.0);
    }

    #[test]
    fn run_report_aggregates() {
        let r = RunReport {
            duration_s: 10.0,
            seed: 1,
            path_rate_bps: 100_000_000,
            flows: vec![flow(vec![1.0], 40e6), flow(vec![], 60e6)],
            sender_ifq_series: vec![],
            sender_nic: NicStats::default(),
            sender_nic_utilization: 0.9,
            router_queue_drops: 0,
            router_red_early_drops: 0,
            router_red_forced_drops: 0,
            router_ecn_marks: 0,
            bottleneck_queue_series: vec![],
            cross_offered_bytes: 1000,
            cross_delivered_bytes: 900,
            events_processed: 12345,
            engine: None,
            truncated: None,
        };
        assert!((r.total_goodput_bps() - 100e6).abs() < 1.0);
        assert_eq!(r.total_stalls(), 1);
        assert!((r.cross_delivery_ratio() - 0.9).abs() < 1e-12);
        let fairness = r.fairness();
        assert!(fairness > 0.9 && fairness < 1.0);
    }

    #[test]
    fn report_serializes_to_json() {
        let r = RunReport {
            duration_s: 10.0,
            seed: 1,
            path_rate_bps: 100_000_000,
            flows: vec![flow(vec![1.5], 40e6)],
            sender_ifq_series: vec![(0.0, 0.0), (0.5, 3.0)],
            sender_nic: NicStats::default(),
            sender_nic_utilization: 0.9,
            router_queue_drops: 2,
            router_red_early_drops: 1,
            router_red_forced_drops: 0,
            router_ecn_marks: 4,
            bottleneck_queue_series: vec![],
            cross_offered_bytes: 0,
            cross_delivered_bytes: 0,
            events_processed: 777,
            engine: Some(QueueCounters {
                scheduled: 10,
                pops: 9,
                placed_wheel: 8,
                placed_far: 2,
                far_migrations: 1,
                cancelled: 1,
                tombstones_swept: 1,
            }),
            truncated: None,
        };
        let json = r.to_json();
        // Spot-check shape: top-level object, nested flow array, series
        // tuples as arrays, counters present.
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"events_processed\":777"), "{json}");
        assert!(json.contains("\"flows\":[{"), "{json}");
        assert!(json.contains("\"algo\":\"standard\""), "{json}");
        assert!(
            json.contains("\"sender_ifq_series\":[[0,0],[0.5,3]]"),
            "{json}"
        );
        assert!(json.contains("\"stall_times_s\":[1.5]"), "{json}");
        // Engine queue counters ride along in full when present.
        assert!(json.contains("\"engine\":{\"scheduled\":10"), "{json}");
        assert!(json.contains("\"tombstones_swept\":1"), "{json}");
        // Every flow field of the Web100 block must be present exactly once.
        assert_eq!(json.matches("\"send_stall\":").count(), 1, "{json}");
    }
}
