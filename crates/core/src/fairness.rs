//! Cross-variant fairness & convergence metrics — how flows *interact* on a
//! shared bottleneck, where every earlier layer measured each variant alone.
//!
//! The paper's central claim is that Restricted Slow-Start recovers
//! throughput *without* hurting competing traffic; the RED mean-field line
//! of work (arXiv:math/0603325) shows multi-flow convergence is where
//! congestion-control schemes actually differentiate. This module turns a
//! finished [`RunReport`] into that measurement:
//!
//! * a **windowed Jain-index series** over the per-flow goodput timeseries
//!   ([`crate::FlowReport::goodput_series_bps`]);
//! * the **convergence-to-ε time** — the earliest time from which the
//!   windowed index stays at or above `1 − ε`
//!   ([`rss_sim::convergence_time`]), which staggered-start scenarios use to
//!   ask "how long until the late flow gets its share?";
//! * **per-flow** shares/stalls and **per-variant** aggregates (label,
//!   flow count, goodput, stall count), so a restricted-vs-ssthreshless
//!   pair reads as two lines, not a soup of connections.
//!
//! Scenario files opt in with a top-level `fairness` block
//! ([`crate::spec::FairnessDef`]); `rss run` then prints these metrics and
//! writes the [`fairness_csv`] artifact, which rides the golden-gated CI
//! matrix exactly like the per-flow summary CSV.

use crate::report::RunReport;
use crate::spec::{ExpandedRun, ScenarioSpec};
use rss_sim::{convergence_time, jain_fairness};

/// One flow's slice of the fairness picture.
#[derive(Debug, Clone)]
pub struct FlowFairness {
    /// Connection index within the run.
    pub conn: u32,
    /// Congestion-control registry label ("standard", "highspeed", ...).
    pub algo: String,
    /// Mean goodput over the run, bits/s.
    pub goodput_bps: f64,
    /// This flow's fraction of the run's total goodput (0 when nothing
    /// moved).
    pub share: f64,
    /// Send-stalls this flow suffered.
    pub stalls: u64,
}

/// Aggregate over every flow running one congestion-control variant.
#[derive(Debug, Clone)]
pub struct VariantFairness {
    /// Congestion-control registry label.
    pub algo: String,
    /// Number of flows running the variant.
    pub flows: usize,
    /// Combined mean goodput, bits/s.
    pub goodput_bps: f64,
    /// Combined send-stall count.
    pub stalls: u64,
}

/// Fairness & convergence metrics for one finished run.
#[derive(Debug, Clone)]
pub struct FairnessReport {
    /// Goodput-averaging window, seconds.
    pub window_s: f64,
    /// Convergence tolerance: converged once the windowed index stays at or
    /// above `1 − eps`.
    pub eps: f64,
    /// Jain's index over the whole-run per-flow mean goodputs.
    pub jain: f64,
    /// Windowed Jain index `(window_end_s, index)` over the per-flow
    /// goodput timeseries.
    pub jain_series: Vec<(f64, f64)>,
    /// Earliest time from which the windowed index stays `≥ 1 − eps`
    /// across every *active* window (windows where no flow moved data are
    /// not evidence — an idle tail cannot converge a run).
    pub convergence_s: Option<f64>,
    /// Per-flow breakdown, in connection order.
    pub flows: Vec<FlowFairness>,
    /// Per-variant aggregates, in first-appearance order.
    pub variants: Vec<VariantFairness>,
}

impl FairnessReport {
    /// Compute the fairness metrics of a finished run: goodput averaged
    /// over `window_s`-second windows, convergence against tolerance `eps`.
    pub fn from_run(report: &RunReport, window_s: f64, eps: f64) -> FairnessReport {
        assert!(window_s > 0.0, "window must be positive");
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0, 1)");
        let end_s = report.duration_s;

        // Per-flow goodput timeseries, flattened into one preallocated
        // flows × windows table (one row per flow) instead of a Vec-of-Vecs
        // of pairs that is then transposed — manyflow scenarios run this
        // over thousands of flows, and the flat table is the only buffer.
        let mut window_ends: Vec<f64> = Vec::new();
        let mut t = window_s;
        while t <= end_s + 1e-9 {
            window_ends.push(t);
            t += window_s;
        }
        let n_flows = report.flows.len();
        let n_windows = if n_flows == 0 { 0 } else { window_ends.len() };
        let mut table: Vec<f64> = Vec::with_capacity(n_flows * n_windows);
        for f in &report.flows {
            f.goodput_series_fill(window_s, end_s, &mut table);
        }
        debug_assert_eq!(table.len(), n_flows * n_windows);
        let mut jain_series = Vec::with_capacity(n_windows);
        // Windows where no flow moved any data score Jain = 1.0 (the
        // degenerate all-zero case) but say nothing about fairness — a run
        // whose bounded transfers all finish early must not read as
        // "converged" over its idle tail. They stay in the series (the
        // timeline is complete) but are excluded as convergence evidence.
        let mut active_jain = Vec::with_capacity(n_windows);
        let mut allocs: Vec<f64> = Vec::with_capacity(n_flows);
        for w in 0..n_windows {
            allocs.clear();
            allocs.extend((0..n_flows).map(|f| table[f * n_windows + w]));
            let j = jain_fairness(&allocs);
            jain_series.push((window_ends[w], j));
            if allocs.iter().any(|&x| x > 0.0) {
                active_jain.push((window_ends[w], j));
            }
        }

        let total: f64 = report.flows.iter().map(|f| f.goodput_bps).sum();
        let flows: Vec<FlowFairness> = report
            .flows
            .iter()
            .map(|f| FlowFairness {
                conn: f.conn,
                algo: f.algo.clone(),
                goodput_bps: f.goodput_bps,
                share: if total > 0.0 {
                    f.goodput_bps / total
                } else {
                    0.0
                },
                stalls: f.vars.send_stall,
            })
            .collect();

        let mut variants: Vec<VariantFairness> = Vec::new();
        for f in &flows {
            match variants.iter_mut().find(|v| v.algo == f.algo) {
                Some(v) => {
                    v.flows += 1;
                    v.goodput_bps += f.goodput_bps;
                    v.stalls += f.stalls;
                }
                None => variants.push(VariantFairness {
                    algo: f.algo.clone(),
                    flows: 1,
                    goodput_bps: f.goodput_bps,
                    stalls: f.stalls,
                }),
            }
        }

        FairnessReport {
            window_s,
            eps,
            jain: report.fairness(),
            convergence_s: convergence_time(&active_jain, 1.0 - eps),
            jain_series,
            flows,
            variants,
        }
    }
}

/// Compute one [`FairnessReport`] per expanded run, using the spec's
/// `fairness` block parameters — the single analysis pass the `rss` CLI's
/// printed table and [`fairness_csv`] both consume.
///
/// # Panics
///
/// Panics when the spec has no `fairness` block (the caller gates on it).
pub fn fairness_reports(spec: &ScenarioSpec, reports: &[RunReport]) -> Vec<FairnessReport> {
    let def = spec
        .fairness
        .as_ref()
        .expect("fairness_reports needs a fairness block");
    reports
        .iter()
        .map(|r| FairnessReport::from_run(r, def.window_s(), def.eps()))
        .collect()
}

/// Render the fairness CSV for an expanded + executed scenario: one row per
/// (run, flow), with the run-level index and convergence time repeated on
/// each row. Takes the [`fairness_reports`] output so the CLI's table and
/// the artifact share one computation. Byte-deterministic given
/// bit-identical reports — the golden-gated CI matrix diffs it like the
/// per-flow summary CSV.
pub fn fairness_csv(spec: &ScenarioSpec, runs: &[ExpandedRun], frs: &[FairnessReport]) -> String {
    assert_eq!(
        runs.len(),
        frs.len(),
        "one fairness report per expanded run"
    );
    let mut out = String::from(
        "scenario,run,cell,window_s,eps,flow,variant,start_s,goodput_bps,share,\
         stalls,jain,convergence_s\n",
    );
    for (er, fr) in runs.iter().zip(frs) {
        for f in &fr.flows {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                spec.name,
                er.label,
                er.cell,
                fr.window_s,
                fr.eps,
                f.conn,
                f.algo,
                er.scenario.flows[f.conn as usize].start.as_secs_f64(),
                f.goodput_bps,
                f.share,
                f.stalls,
                fr.jain,
                fr.convergence_s.map(|t| format!("{t}")).unwrap_or_default(),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::FlowReport;
    use rss_host::NicStats;
    use rss_web100::Web100Vars;

    /// A flow whose cumulative acked bytes ramp linearly from `from_s` at
    /// `rate_bps`.
    fn ramp_flow(conn: u32, algo: &str, from_s: f64, rate_bps: f64, end_s: f64) -> FlowReport {
        let mut acked = vec![(0.0, 0.0), (from_s, 0.0)];
        let mut t = from_s;
        while t < end_s {
            t += 0.25;
            acked.push((t, (t - from_s) * rate_bps / 8.0));
        }
        FlowReport {
            conn,
            algo: algo.into(),
            vars: Web100Vars {
                send_stall: conn as u64, // distinguishable per flow
                ..Default::default()
            },
            goodput_bps: rate_bps * (end_s - from_s) / end_s,
            utilization: 0.5,
            completed_at_s: None,
            stall_times_s: vec![],
            congestion_times_s: vec![],
            cwnd_series: vec![],
            acked_series: acked,
            receiver_delivered_bytes: 0,
            receiver_dup_segments: 0,
            receiver_ooo_segments: 0,
            rto_episodes: 0,
            rto_max_backoff: 0,
            rto_max_recovery_s: None,
        }
    }

    fn report(flows: Vec<FlowReport>, end_s: f64) -> RunReport {
        RunReport {
            duration_s: end_s,
            seed: 1,
            path_rate_bps: 100_000_000,
            flows,
            sender_ifq_series: vec![],
            sender_nic: NicStats::default(),
            sender_nic_utilization: 0.9,
            router_queue_drops: 0,
            router_red_early_drops: 0,
            router_red_forced_drops: 0,
            router_ecn_marks: 0,
            bottleneck_queue_series: vec![],
            cross_offered_bytes: 0,
            cross_delivered_bytes: 0,
            events_processed: 0,
            engine: None,
            truncated: None,
        }
    }

    #[test]
    fn staggered_start_converges_when_the_late_flow_catches_up() {
        // Flow 1 starts at t=4 and then matches flow 0's rate exactly: the
        // windowed index is 0.5 while flow 1 is absent, 1.0 once it runs.
        let r = report(
            vec![
                ramp_flow(0, "standard", 0.0, 50e6, 10.0),
                ramp_flow(1, "scalable", 4.0, 50e6, 10.0),
            ],
            10.0,
        );
        let fr = FairnessReport::from_run(&r, 1.0, 0.05);
        assert_eq!(fr.jain_series.len(), 10);
        assert!(fr.jain_series[1].1 < 0.6, "early windows are one-sided");
        assert!(fr.jain_series[9].1 > 0.99, "late windows are fair");
        let conv = fr.convergence_s.expect("converges");
        assert!(
            (4.0..=6.0).contains(&conv),
            "convergence {conv} should track the staggered start"
        );
        // Per-variant aggregation keeps the two labels apart.
        assert_eq!(fr.variants.len(), 2);
        assert_eq!(fr.variants[0].algo, "standard");
        assert_eq!(fr.variants[1].algo, "scalable");
        assert_eq!(fr.variants[1].stalls, 1);
    }

    #[test]
    fn equal_flows_are_fair_from_the_first_window() {
        let r = report(
            vec![
                ramp_flow(0, "standard", 0.0, 40e6, 8.0),
                ramp_flow(1, "standard", 0.0, 40e6, 8.0),
            ],
            8.0,
        );
        let fr = FairnessReport::from_run(&r, 1.0, 0.05);
        assert!((fr.jain - 1.0).abs() < 1e-9);
        assert_eq!(fr.convergence_s, Some(1.0));
        assert_eq!(fr.variants.len(), 1);
        assert_eq!(fr.variants[0].flows, 2);
        assert!((fr.flows[0].share - 0.5).abs() < 1e-9);
    }

    #[test]
    fn idle_tail_is_not_convergence_evidence() {
        // Both flows finish an unfair 4:1 split by t=4 of a 10 s run: the
        // trailing all-zero windows score Jain = 1.0 (degenerate case) but
        // must not make the run read as converged.
        let r = report(
            vec![
                ramp_flow(0, "scalable", 0.0, 80e6, 4.0),
                ramp_flow(1, "standard", 0.0, 20e6, 4.0),
            ],
            10.0,
        );
        let fr = FairnessReport::from_run(&r, 1.0, 0.05);
        assert!(
            fr.jain_series[9].1 > 0.99,
            "idle windows still render as degenerate-fair in the series"
        );
        assert_eq!(
            fr.convergence_s, None,
            "an unfair run with an idle tail must not converge"
        );
    }

    #[test]
    fn one_hog_never_converges() {
        let r = report(
            vec![
                ramp_flow(0, "scalable", 0.0, 90e6, 8.0),
                ramp_flow(1, "standard", 0.0, 0.0, 8.0),
            ],
            8.0,
        );
        let fr = FairnessReport::from_run(&r, 1.0, 0.05);
        assert_eq!(fr.convergence_s, None);
        // Two flows, one hog: the run-level index sits at 1/2.
        assert!((fr.jain - 0.5).abs() < 1e-9, "jain {}", fr.jain);
    }
}
