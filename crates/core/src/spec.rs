//! Declarative scenario files: the JSON schema (`ScenarioSpec`), its
//! expansion into concrete [`Scenario`]s, and the deterministic CSV summary
//! the `rss` CLI emits.
//!
//! Every hand-built testbed in the examples and benches is expressible as
//! data: topology (rates, delays, queue limits), workload (flows, sizes,
//! start times, GridFTP-style striping), TCP knobs (slow-start variant as an
//! *open* enum — new variants such as SSthreshless Start slot in beside
//! `Standard`/`Restricted`/`Limited` — initial ssthresh, stall response),
//! run length, seed, and output artifacts. A `sweep` block expands one spec
//! into a grid of runs (RTT × rate × queue depth × seed × stream count)
//! which [`crate::run_many_memo`] executes with duplicate cells deduped.
//!
//! Defaults follow [`Scenario::paper_testbed`]: omitting a knob yields the
//! paper's §4 testbed value, so `scenarios/quickstart.json` reproduces the
//! hand-coded constructors bit-for-bit (a workspace test asserts it).
//!
//! Unknown fields, unknown variants and type mismatches are hard errors
//! carrying the JSON path and source line (`at $.runs[0].tcp.mss (line 14):
//! …`) — a typo in a scenario file fails loudly instead of silently running
//! the default.
//!
//! Every field's rustdoc states its JSON name (always the Rust field name —
//! the vendored serde derives use externally-tagged field names verbatim),
//! its default, and its units, so the docs double as the file-format
//! reference.
//!
//! # Worked example
//!
//! A two-variant fairness comparison on a 50 Mbit/s path, swept over two
//! RTTs — everything a scenario file can say, in miniature:
//!
//! ```
//! use rss_core::{CcAlgorithm, ScenarioSpec};
//!
//! let spec = ScenarioSpec::from_json(
//!     r#"{
//!       "name": "worked_example",
//!       "comment": "standard vs scalable sharing one bottleneck",
//!       "runs": [{
//!         "label": "pair",
//!         "path": { "rate_mbps": 50, "rtt_ms": 40 },
//!         "flows": [
//!           { "cc": "Standard" },
//!           { "cc": { "Scalable": { "ai_cnt": 100 } }, "start_s": 2.0 }
//!         ],
//!         "duration_s": 10
//!       }],
//!       "sweep": { "rtt_ms": [40, 80] },
//!       "fairness": { "window_s": 1.0, "eps": 0.05 }
//!     }"#,
//! )
//! .expect("parses");
//!
//! // One run × two sweep cells; knobs land where the docs say they do.
//! assert_eq!(spec.cells(), 2);
//! let runs = spec.expand().expect("validates");
//! assert_eq!(runs.len(), 2);
//! assert_eq!(runs[0].scenario.path.rate_bps, 50_000_000);
//! assert_eq!(runs[1].scenario.path.rtt.as_nanos(), 80_000_000);
//! assert!(matches!(runs[0].scenario.flows[0].algo, CcAlgorithm::Reno));
//! assert_eq!(runs[0].scenario.flows[1].start.as_secs_f64(), 2.0);
//!
//! // The fairness block names its artifact beside the summary CSV.
//! assert_eq!(spec.csv_name(), "scenario_worked_example.csv");
//! assert_eq!(
//!     spec.fairness_csv_name().as_deref(),
//!     Some("fairness_worked_example.csv")
//! );
//! ```

use crate::report::RunReport;
use crate::scenario::{CrossSpec, FlowSpec, PathSpec, QueueDiscipline, RedParams, Scenario};
use rss_host::HostConfig;
use rss_net::{Flap, GilbertElliott, ImpairmentConfig, Jitter, OutageWindow, TrafficPattern};
use rss_sim::{SimDuration, SimTime};
use rss_tcp::{AckPolicy, CcAlgorithm, RssConfig, StallResponse, TcpConfig};
use rss_workload::{stripe_bytes, AppModel};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A scenario file: named, documented, one or more runs, an optional sweep
/// grid, and the artifacts to emit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Scenario name, used for default artifact names (JSON `name`,
    /// required, `[a-z0-9_-]+`).
    pub name: String,
    /// Free-form description — what paper figure/claim this reproduces
    /// (JSON `comment`, default none).
    pub comment: Option<String>,
    /// The runs executed per sweep cell, in order (JSON `runs`, required,
    /// at least one).
    pub runs: Vec<RunSpec>,
    /// Parameter grid multiplying the runs (JSON `sweep`, default a single
    /// cell).
    pub sweep: Option<SweepSpec>,
    /// Opt-in fairness & convergence measurement over every run (JSON
    /// `fairness`, default off).
    pub fairness: Option<FairnessDef>,
    /// Run every expanded scenario through the sharded parallel executor
    /// (JSON `shards`: a positive integer shard count or `"auto"` for one
    /// shard per available core; default: the classic serial world). Results
    /// are identical for every shard count, so `"auto"` stays reproducible.
    pub shards: Option<ShardsDef>,
    /// Artifact file names under the output directory (JSON `output`,
    /// default `scenario_<name>.csv` only).
    pub output: Option<OutputSpec>,
}

/// The `shards` knob: an explicit shard count or `"auto"`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ShardsDef {
    /// Explicit shard count (positive; counts above the unit count clamp).
    Count(u32),
    /// One shard per core available at expansion time.
    Auto,
}

impl ShardsDef {
    /// Resolve to a concrete shard count. Safe to call on any machine:
    /// results do not depend on the resolved count.
    pub fn resolve(self) -> u32 {
        match self {
            ShardsDef::Count(n) => n,
            ShardsDef::Auto => std::thread::available_parallelism()
                .map(|n| n.get() as u32)
                .unwrap_or(1),
        }
    }
}

impl Serialize for ShardsDef {
    fn serialize_json(&self, out: &mut String) {
        match self {
            ShardsDef::Count(n) => n.serialize_json(out),
            ShardsDef::Auto => out.push_str("\"auto\""),
        }
    }
}

impl<'de> Deserialize<'de> for ShardsDef {
    fn deserialize_json(v: &serde::de::Value, path: &mut serde::de::Path) -> ShardsResult {
        const WANT: &str = "expected positive integer or \"auto\"";
        match String::deserialize_json(v, path) {
            Ok(s) if s == "auto" => Ok(ShardsDef::Auto),
            Ok(_) => Err(serde::de::Error::new(v.line(), path, WANT)),
            Err(_) => match u64::deserialize_json(v, path) {
                Ok(n) if (1..=u32::MAX as u64).contains(&n) => Ok(ShardsDef::Count(n as u32)),
                _ => Err(serde::de::Error::new(v.line(), path, WANT)),
            },
        }
    }
}

type ShardsResult = Result<ShardsDef, serde::de::Error>;

/// One run description. Every field is optional; omitted knobs default to
/// the paper's §4 testbed (100 Mbit/s, 60 ms RTT, `txqueuelen` 100, 25 s,
/// seed 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSpec {
    /// Run label — the CSV `run` column (JSON `label`, required, unique
    /// within the file).
    pub label: String,
    /// Network path overrides (JSON `path`, default the §4 path).
    pub path: Option<PathDef>,
    /// Sending/receiving host overrides (JSON `host`, default the §4
    /// host).
    pub host: Option<HostDef>,
    /// Transport overrides (JSON `tcp`, default the Linux 2.4.19 profile).
    pub tcp: Option<TcpDef>,
    /// Explicit flow list (JSON `flows`; exactly one of `flows`/`gridftp`
    /// is required).
    pub flows: Option<Vec<FlowDef>>,
    /// GridFTP-style striping: one transfer over N parallel flows (JSON
    /// `gridftp`; mutually exclusive with `flows`).
    pub gridftp: Option<GridFtpDef>,
    /// Open-loop cross-traffic sources sharing the bottleneck (JSON
    /// `cross`, default none).
    pub cross: Option<Vec<CrossDef>>,
    /// Simulated run length, seconds (JSON `duration_s`, default 25).
    pub duration_s: Option<f64>,
    /// RNG seed, dimensionless (JSON `seed`, default 1).
    pub seed: Option<u64>,
    /// Put every flow on one sending host (JSON `shared_sender_host`,
    /// default false — each flow gets its own host pair).
    pub shared_sender_host: Option<bool>,
    /// Stop as soon as every bounded flow completes (JSON
    /// `stop_when_complete`, default false).
    pub stop_when_complete: Option<bool>,
    /// **Deprecated alias** for `queue`: `true` expands to `{"Red": {}}`
    /// with the default thresholds, `false` to `"DropTail"` (JSON
    /// `red_bottleneck`, default absent; mutually exclusive with `queue`).
    pub red_bottleneck: Option<bool>,
    /// Bottleneck queue discipline (JSON `queue`: `"DropTail"`,
    /// `{"Red": {...}}` or `{"RedEcn": {...}}`; default `"DropTail"`).
    pub queue: Option<QueueDef>,
    /// World-series sampling interval, milliseconds (JSON
    /// `sample_interval_ms`, default 10).
    pub sample_interval_ms: Option<f64>,
    /// Thinning stride for dense per-connection series, samples (JSON
    /// `web100_stride`, default 1 = keep all).
    pub web100_stride: Option<u32>,
    /// Size the receive window to the path (4×BDP, floor 2 MB), applied
    /// after any sweep overrides — mirrors [`Scenario::with_auto_rwnd`]
    /// (JSON `auto_rwnd`, default false).
    pub auto_rwnd: Option<bool>,
    /// Watchdog: hard wall on simulated time, seconds (JSON
    /// `max_sim_time_s`, default none). A run that has not finished by this
    /// point — typically a `stop_when_complete` run whose transfer can never
    /// complete under a permanent outage — ends here with an explicit
    /// `truncated` reason in its report instead of running to `duration_s`.
    /// Honored by the serial and the sharded executor alike (the cut lands
    /// on a window boundary, so truncated runs stay shard-count invariant).
    pub max_sim_time_s: Option<f64>,
    /// Watchdog: hard ceiling on events processed (JSON `max_events`,
    /// default none). Serial executor only — the sharded executor ignores
    /// it, since a global event count is not shard-count invariant; use
    /// `max_sim_time_s` there.
    pub max_events: Option<u64>,
}

/// Network-path knobs (defaults: the paper's 100 Mbit/s, 60 ms path).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PathDef {
    /// Bottleneck/backbone line rate, Mbit/s (JSON `rate_mbps`, default
    /// 100).
    pub rate_mbps: Option<f64>,
    /// Round-trip propagation time, milliseconds (JSON `rtt_ms`, default
    /// 60).
    pub rtt_ms: Option<f64>,
    /// Router egress queue capacity, packets (JSON `router_queue_pkts`,
    /// default 200).
    pub router_queue_pkts: Option<u32>,
    /// Independent per-packet loss probability, in [0, 1] (JSON
    /// `loss_prob`, default 0).
    pub loss_prob: Option<f64>,
    /// Access-link rate, Mbit/s (JSON `access_rate_mbps`, default: same as
    /// `rate_mbps`, which makes the sender's NIC the bottleneck — the
    /// paper's regime).
    pub access_rate_mbps: Option<f64>,
    /// One-way access-link propagation delay, microseconds (JSON
    /// `access_delay_us`, default 10). Bounds the sharded executor's
    /// lookahead window; the long-haul delay absorbs the rest of the RTT.
    pub access_delay_us: Option<f64>,
    /// Deterministic fault injection on the path's links (JSON
    /// `impairments`, default none).
    pub impairments: Option<ImpairmentsDef>,
}

/// Where fault injection applies: the long-haul bottleneck, the access
/// links, or both. Each link direction draws from its own seeded stream, so
/// results are reproducible and shard-count invariant.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ImpairmentsDef {
    /// Impairments on the bottleneck/haul link, both directions (JSON
    /// `haul`, default none).
    pub haul: Option<ImpairmentDef>,
    /// Impairments on every access link, all four legs per host pair (JSON
    /// `access`, default none). The legs of one pair share a single outage
    /// realization — a flap downs the pair's access as a whole.
    pub access: Option<ImpairmentDef>,
}

/// One link family's fault-injection knobs. Everything is optional; an
/// empty block impairs nothing.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ImpairmentDef {
    /// Gilbert–Elliott bursty loss (JSON `burst_loss`, default none).
    pub burst_loss: Option<BurstLossDef>,
    /// Scheduled outage windows (JSON `outages`, default none).
    pub outages: Option<Vec<OutageDef>>,
    /// Markov-modulated link flapping (JSON `flap`, default none).
    pub flap: Option<FlapDef>,
    /// Per-packet delay jitter (JSON `jitter`, default none). Jitter only
    /// ever *adds* delay, so reordering emerges without breaking the
    /// sharded executor's lookahead bound.
    pub jitter: Option<JitterDef>,
    /// Per-packet duplication probability, in [0, 1] (JSON
    /// `duplicate_prob`, default 0).
    pub duplicate_prob: Option<f64>,
}

/// Gilbert–Elliott two-state burst loss.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurstLossDef {
    /// Per-packet probability of entering the Bad state, in [0, 1] (JSON
    /// `p_good_to_bad`, required).
    pub p_good_to_bad: f64,
    /// Per-packet probability of leaving the Bad state, in [0, 1] (JSON
    /// `p_bad_to_good`, required); mean burst length is its reciprocal.
    pub p_bad_to_good: f64,
    /// Loss probability in the Good state, in [0, 1] (JSON `loss_good`,
    /// default 0).
    pub loss_good: Option<f64>,
    /// Loss probability in the Bad state, in [0, 1] (JSON `loss_bad`,
    /// required).
    pub loss_bad: f64,
}

/// One scheduled outage window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OutageDef {
    /// When the link goes down, seconds (JSON `start_s`, required).
    pub start_s: f64,
    /// How long it stays down, seconds (JSON `duration_s`, required).
    pub duration_s: f64,
}

/// Markov-modulated flapping: exponential up/down sojourns, link starts up.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlapDef {
    /// Mean up time between outages, seconds (JSON `mean_up_s`, required).
    pub mean_up_s: f64,
    /// Mean outage length, seconds (JSON `mean_down_s`, required).
    pub mean_down_s: f64,
}

/// Per-packet extra delay: with probability `prob`, uniform in [0, max].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JitterDef {
    /// Probability a packet is jittered at all, in [0, 1] (JSON `prob`,
    /// required).
    pub prob: f64,
    /// Maximum extra delay, milliseconds (JSON `max_ms`, required).
    pub max_ms: f64,
}

/// Host transmit-path knobs (defaults: 100 Mbit/s NIC, `txqueuelen` 100,
/// MTU 1500).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct HostDef {
    /// NIC line rate, Mbit/s (JSON `nic_rate_mbps`, default: follow the
    /// path rate).
    pub nic_rate_mbps: Option<f64>,
    /// Interface-queue capacity, packets (JSON `txqueuelen`, default 100).
    pub txqueuelen: Option<u32>,
    /// MTU, bytes (JSON `mtu`, default 1500).
    pub mtu: Option<u32>,
}

/// Transport knobs (defaults: [`TcpConfig::default`], the Linux 2.4.19
/// profile of the paper's hosts).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TcpDef {
    /// Maximum segment size, payload bytes (JSON `mss`, default 1448).
    pub mss: Option<u32>,
    /// Per-segment wire header overhead, bytes (JSON `header_bytes`,
    /// default 52).
    pub header_bytes: Option<u32>,
    /// Initial congestion window, segments (JSON `initial_cwnd_mss`,
    /// default 2).
    pub initial_cwnd_mss: Option<u32>,
    /// Initial slow-start threshold, bytes (JSON `initial_ssthresh`,
    /// default: effectively infinite).
    pub initial_ssthresh: Option<u64>,
    /// Receiver's advertised window, bytes (JSON `rwnd_bytes`, default
    /// 2 MiB).
    pub rwnd_bytes: Option<u64>,
    /// Lower RTO bound, milliseconds (JSON `min_rto_ms`, default 200).
    pub min_rto_ms: Option<f64>,
    /// Upper RTO bound, milliseconds (JSON `max_rto_ms`, default 60 000).
    pub max_rto_ms: Option<f64>,
    /// ACK generation policy (JSON `ack_policy`, default
    /// `"EverySegment"`).
    pub ack_policy: Option<AckPolicy>,
    /// Congestion response to send-stalls (JSON `stall_response`, default
    /// `"Cwr"`).
    pub stall_response: Option<StallResponse>,
    /// Post-stall re-probe delay, milliseconds (JSON `stall_retry_ms`,
    /// default 1).
    pub stall_retry_ms: Option<f64>,
    /// Duplicate ACKs triggering fast retransmit, count (JSON
    /// `dupack_threshold`, default 3).
    pub dupack_threshold: Option<u32>,
    /// ECN negotiation for every flow (JSON `ecn`, default: `true` exactly
    /// when the run's `queue` is `RedEcn`). Explicitly setting it decouples
    /// the transport from the queue discipline — e.g. `false` under a
    /// `RedEcn` bottleneck models non-ECN traffic through a marking queue.
    pub ecn: Option<bool>,
}

/// Bottleneck queue discipline (JSON `queue`). Threshold and weight knobs
/// are optional; omitted ones default from the path's `router_queue_pkts`
/// exactly as the deprecated `red_bottleneck: true` alias did.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum QueueDef {
    /// Plain drop-tail FIFO (the default).
    #[default]
    DropTail,
    /// RED early dropping.
    Red {
        /// Average-queue threshold where early drops begin, packets (JSON
        /// `min_th`, default `0.25 × router_queue_pkts`).
        min_th: Option<f64>,
        /// Average-queue threshold where the drop probability reaches
        /// `max_p`, packets (JSON `max_th`, default
        /// `0.75 × router_queue_pkts`; must exceed `min_th`).
        max_th: Option<f64>,
        /// EWMA weight of the average-queue filter, dimensionless in (0, 1]
        /// (JSON `w_q`, default 0.002).
        w_q: Option<f64>,
        /// Drop/mark probability at `max_th`, dimensionless in (0, 1] (JSON
        /// `max_p`, default 0.1).
        max_p: Option<f64>,
        /// Gentle mode: ramp `max_p`→1 over `(max_th, 2·max_th)` instead of
        /// force-dropping at `max_th` (JSON `gentle`, default false).
        gentle: Option<bool>,
    },
    /// RED with ECN: CE-mark ECT packets in the probabilistic band instead
    /// of dropping them (same knobs as `Red`). Also switches every flow to
    /// ECN unless `tcp.ecn` overrides it.
    RedEcn {
        /// As `Red` (JSON `min_th`).
        min_th: Option<f64>,
        /// As `Red` (JSON `max_th`).
        max_th: Option<f64>,
        /// As `Red` (JSON `w_q`).
        w_q: Option<f64>,
        /// As `Red` (JSON `max_p`).
        max_p: Option<f64>,
        /// As `Red` (JSON `gentle`).
        gentle: Option<bool>,
    },
}

/// One TCP flow.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FlowDef {
    /// Congestion-control variant (JSON `cc`, default `"Standard"`; the
    /// menu is the `rss_cc` registry — see `docs/VARIANTS.md`).
    pub cc: Option<CcDef>,
    /// Application model (JSON `app`, default unbounded bulk).
    pub app: Option<AppModel>,
    /// Flow start time, seconds (JSON `start_s`, default 0 — stagger
    /// starts to measure convergence with the `fairness` block).
    pub start_s: Option<f64>,
    /// Replication factor: this entry expands into `count` identical flows
    /// (JSON `count`, default 1, positive). The many-flow scenarios use it
    /// to describe 10⁴–10⁵ flows in one line.
    pub count: Option<u32>,
}

/// The slow-start variant under test — an **open** enum mirroring the
/// variants registered in [`rss_cc::registry`]: a new scheme adds one arm
/// here (resolved and validated through the registry), and scenario files
/// using it stay data.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum CcDef {
    /// Standard TCP (Reno/NewReno, the paper's baseline).
    #[default]
    Standard,
    /// The paper's Restricted Slow-Start (PID-paced window growth).
    Restricted {
        /// Gain selection (default `"ForPath"`).
        tuning: Option<TuningDef>,
        /// IFQ set point as a fraction of `txqueuelen` (default 0.9).
        setpoint_frac: Option<f64>,
    },
    /// RFC 3742 Limited Slow-Start.
    Limited {
        /// `max_ssthresh` in bytes; omitted = the RFC's 100 segments.
        max_ssthresh: Option<u64>,
    },
    /// SSthreshless Start (arXiv:1401.7146): delay-probed slow-start with no
    /// ssthresh estimate — doubles until the measured path backlog crosses
    /// `gamma_segments`, then steps into congestion avoidance at the
    /// measured BDP.
    Ssthreshless {
        /// Probe-exit backlog threshold, segments (default 8).
        gamma_segments: Option<f64>,
    },
    /// HighSpeed TCP (RFC 3649): the a(w)/b(w) response-table bend for
    /// large windows. No parameters — the RFC's constants.
    HighSpeed,
    /// Scalable TCP (Kelly 2003): MIMD growth, fixed 1/8 backoff.
    Scalable {
        /// Increase denominator: the window grows by `newly_acked / ai_cnt`
        /// bytes per ACK (default 100, i.e. Kelly's a = 0.01).
        ai_cnt: Option<u32>,
    },
    /// BBR-style rate probing (Cardwell et al. 2016): paces at gain × the
    /// windowed-max delivery rate through startup/drain/probe-bw, window
    /// capped at 2 × BDP. No parameters — the reference gain constants.
    Bbr,
    /// Relentless congestion control (Mathis, arXiv:1102.3270): decrease
    /// the window by exactly the segments lost instead of halving. No
    /// parameters.
    Relentless,
    /// Hybrid Start (Ha & Rhee 2011): standard slow-start with ACK-train and
    /// delay-increase exits ahead of loss. No parameters — the reference
    /// thresholds.
    Hybrid,
}

/// How the Restricted Slow-Start PID gains are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TuningDef {
    /// §3's Ziegler–Nichols rule applied to the (possibly swept) path rate
    /// and the host MTU — [`RssConfig::tuned_for`].
    ForPath,
    /// Like `ForPath` but tuned to this flow's share of a sending host split
    /// `n_flows` ways (GridFTP parallel streams).
    PerStream,
    /// The Ziegler–Nichols rule for an explicit rate/packet size.
    ForRate {
        /// Rate the loop is tuned for, Mbit/s.
        rate_mbps: f64,
        /// Wire packet size (MSS + headers), bytes.
        wire_pkt_bytes: u32,
    },
    /// Explicit PID gains (standard form).
    Gains {
        /// Proportional gain `Kp`.
        kp: f64,
        /// Integral time constant `Ti`, seconds.
        ti: f64,
        /// Derivative time constant `Td`, seconds.
        td: f64,
    },
}

/// GridFTP-style striping: one logical transfer over N parallel flows from
/// one sending host.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridFtpDef {
    /// Total transfer size, bytes, split evenly across streams (JSON
    /// `total_bytes`, required, positive).
    pub total_bytes: u64,
    /// Number of parallel streams (JSON `streams`, required, positive; the
    /// `streams` sweep axis overrides it).
    pub streams: u32,
    /// Congestion-control variant every stream runs (JSON `cc`, required).
    pub cc: CcDef,
}

/// One open-loop cross-traffic source.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrossDef {
    /// Arrival process (JSON `pattern`, required — `Cbr` or `Poisson` with
    /// `rate_bps`/`pkt_size`).
    pub pattern: TrafficPattern,
    /// Start time, seconds (JSON `start_s`, default 0).
    pub start_s: Option<f64>,
    /// Stop time, seconds (JSON `stop_s`, default: until the run ends).
    pub stop_s: Option<f64>,
}

/// A parameter grid. Each present axis multiplies the cell count; axes nest
/// in field order (`rate_mbps` outermost, `streams` innermost) with the
/// file's runs executed per cell.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SweepSpec {
    /// Line rates, Mbit/s (JSON `rate_mbps`; sets the path rate, the NIC
    /// follows unless the host pins `nic_rate_mbps`).
    pub rate_mbps: Option<Vec<f64>>,
    /// Round-trip times, milliseconds (JSON `rtt_ms`).
    pub rtt_ms: Option<Vec<f64>>,
    /// Interface-queue depths, packets (JSON `txqueuelen`).
    pub txqueuelen: Option<Vec<u32>>,
    /// RNG seeds, dimensionless (JSON `seed`).
    pub seed: Option<Vec<u64>>,
    /// GridFTP stream counts (JSON `streams`; requires `gridftp` on every
    /// run). Each omitted axis keeps the run's own value; present axes
    /// multiply the cell count.
    pub streams: Option<Vec<u32>>,
}

/// Fairness & convergence measurement (JSON `fairness`, optional): when
/// present, `rss run` computes a [`crate::fairness::FairnessReport`] per
/// run — windowed Jain index over the per-flow goodput series,
/// convergence-to-ε time, per-variant goodput/stall aggregates — prints the
/// metrics, and writes the [`crate::fairness::fairness_csv`] artifact.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FairnessDef {
    /// Goodput-averaging window, seconds (JSON `window_s`, default 1).
    pub window_s: Option<f64>,
    /// Convergence tolerance: converged once the windowed Jain index stays
    /// at or above `1 − eps` (JSON `eps`, default 0.05; valid (0, 1)).
    pub eps: Option<f64>,
    /// Fairness CSV artifact name (JSON `csv`, default
    /// `fairness_<name>.csv`).
    pub csv: Option<String>,
}

impl FairnessDef {
    /// Resolved averaging window, seconds.
    pub fn window_s(&self) -> f64 {
        self.window_s.unwrap_or(1.0)
    }

    /// Resolved convergence tolerance.
    pub fn eps(&self) -> f64 {
        self.eps.unwrap_or(0.05)
    }

    fn check(&self) -> Result<(), SpecError> {
        let w = self.window_s();
        if !(w.is_finite() && w > 0.0) {
            return Err(SpecError::new(format!(
                "fairness.window_s must be positive, got {w}"
            )));
        }
        let e = self.eps();
        if !(e.is_finite() && e > 0.0 && e < 1.0) {
            return Err(SpecError::new(format!(
                "fairness.eps must be in (0, 1), got {e}"
            )));
        }
        Ok(())
    }
}

/// Artifact names, relative to the CLI's output directory.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct OutputSpec {
    /// Per-flow summary CSV file name (JSON `csv`, default
    /// `scenario_<name>.csv`).
    pub csv: Option<String>,
    /// Full machine-readable reports as JSON (JSON `json`, default: not
    /// written).
    pub json: Option<String>,
}

/// One concrete run produced by [`ScenarioSpec::expand`].
#[derive(Debug, Clone)]
pub struct ExpandedRun {
    /// The source run's label.
    pub label: String,
    /// Sweep-cell index this run belongs to (0 for unswept specs).
    pub cell: usize,
    /// The fully-resolved scenario, ready for [`crate::run`].
    pub scenario: Scenario,
}

/// A semantic error in a scenario file (parse errors come through here too,
/// keeping their JSON path + line rendering).
#[derive(Debug, Clone)]
pub struct SpecError {
    /// Human-readable description, location-qualified where possible.
    pub msg: String,
}

impl SpecError {
    fn new(msg: impl Into<String>) -> Self {
        SpecError { msg: msg.into() }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for SpecError {}

// ---------------------------------------------------------------------------
// Unit conversions (validated)
// ---------------------------------------------------------------------------

fn mbps_to_bps(mbps: f64, what: &str) -> Result<u64, SpecError> {
    if !mbps.is_finite() || mbps <= 0.0 {
        return Err(SpecError::new(format!(
            "{what} must be a positive rate, got {mbps}"
        )));
    }
    Ok((mbps * 1e6).round() as u64)
}

fn ms_to_duration(ms: f64, what: &str) -> Result<SimDuration, SpecError> {
    if !ms.is_finite() || ms < 0.0 {
        return Err(SpecError::new(format!(
            "{what} must be non-negative, got {ms}"
        )));
    }
    Ok(SimDuration::from_nanos((ms * 1e6).round() as u64))
}

fn secs_to_duration(s: f64, what: &str) -> Result<SimDuration, SpecError> {
    if !s.is_finite() || s <= 0.0 {
        return Err(SpecError::new(format!("{what} must be positive, got {s}")));
    }
    Ok(SimDuration::from_nanos((s * 1e9).round() as u64))
}

fn secs_to_time(s: f64, what: &str) -> Result<SimTime, SpecError> {
    if !s.is_finite() || s < 0.0 {
        return Err(SpecError::new(format!(
            "{what} must be non-negative, got {s}"
        )));
    }
    Ok(SimTime::from_nanos((s * 1e9).round() as u64))
}

/// A probability knob: finite and in [0, 1]. NaN fails the range test, so
/// it is rejected with the same path-qualified message.
fn prob(v: f64, what: &str) -> Result<f64, SpecError> {
    if !(0.0..=1.0).contains(&v) {
        return Err(SpecError::new(format!("{what} must be in [0, 1], got {v}")));
    }
    Ok(v)
}

impl ImpairmentDef {
    /// Validate and convert to the engine-level config. `what` is the JSON
    /// path prefix (e.g. `path.impairments.haul`) so every error names the
    /// exact offending knob.
    fn to_config(&self, what: &str) -> Result<ImpairmentConfig, SpecError> {
        let burst_loss = match &self.burst_loss {
            None => None,
            Some(b) => Some(GilbertElliott {
                p_good_to_bad: prob(b.p_good_to_bad, &format!("{what}.burst_loss.p_good_to_bad"))?,
                p_bad_to_good: prob(b.p_bad_to_good, &format!("{what}.burst_loss.p_bad_to_good"))?,
                loss_good: prob(
                    b.loss_good.unwrap_or(0.0),
                    &format!("{what}.burst_loss.loss_good"),
                )?,
                loss_bad: prob(b.loss_bad, &format!("{what}.burst_loss.loss_bad"))?,
            }),
        };
        let outages = self
            .outages
            .as_deref()
            .unwrap_or(&[])
            .iter()
            .enumerate()
            .map(|(i, o)| {
                Ok(OutageWindow {
                    start: secs_to_time(o.start_s, &format!("{what}.outages[{i}].start_s"))?,
                    duration: secs_to_duration(
                        o.duration_s,
                        &format!("{what}.outages[{i}].duration_s"),
                    )?,
                })
            })
            .collect::<Result<_, SpecError>>()?;
        let flap = match &self.flap {
            None => None,
            Some(f) => Some(Flap {
                mean_up: secs_to_duration(f.mean_up_s, &format!("{what}.flap.mean_up_s"))?,
                mean_down: secs_to_duration(f.mean_down_s, &format!("{what}.flap.mean_down_s"))?,
            }),
        };
        let jitter = match &self.jitter {
            None => None,
            Some(j) => Some(Jitter {
                prob: prob(j.prob, &format!("{what}.jitter.prob"))?,
                max: ms_to_duration(j.max_ms, &format!("{what}.jitter.max_ms"))?,
            }),
        };
        Ok(ImpairmentConfig {
            burst_loss,
            outages,
            flap,
            jitter,
            duplicate_prob: prob(
                self.duplicate_prob.unwrap_or(0.0),
                &format!("{what}.duplicate_prob"),
            )?,
        })
    }
}

// ---------------------------------------------------------------------------
// Conversion to concrete scenarios
// ---------------------------------------------------------------------------

/// Resolve one RED parameter block against the `for_capacity` defaults,
/// rejecting out-of-range knobs with the exact JSON path (`what` is
/// `queue.Red` or `queue.RedEcn`).
#[allow(clippy::too_many_arguments)]
fn red_params(
    cap: u32,
    min_th: Option<f64>,
    max_th: Option<f64>,
    w_q: Option<f64>,
    max_p: Option<f64>,
    gentle: Option<bool>,
    what: &str,
) -> Result<RedParams, SpecError> {
    let d = RedParams::for_capacity(cap);
    let p = RedParams {
        min_th: min_th.unwrap_or(d.min_th),
        max_th: max_th.unwrap_or(d.max_th),
        wq: w_q.unwrap_or(d.wq),
        max_p: max_p.unwrap_or(d.max_p),
        gentle: gentle.unwrap_or(d.gentle),
    };
    if !p.min_th.is_finite() || p.min_th < 0.0 {
        return Err(SpecError::new(format!(
            "{what}.min_th must be non-negative, got {}",
            p.min_th
        )));
    }
    if !p.max_th.is_finite() || p.min_th >= p.max_th {
        return Err(SpecError::new(format!(
            "{what}.min_th must be below {what}.max_th, got {} >= {}",
            p.min_th, p.max_th
        )));
    }
    if !(p.wq > 0.0 && p.wq <= 1.0) {
        return Err(SpecError::new(format!(
            "{what}.w_q must be in (0, 1], got {}",
            p.wq
        )));
    }
    if !(p.max_p > 0.0 && p.max_p <= 1.0) {
        return Err(SpecError::new(format!(
            "{what}.max_p must be in (0, 1], got {}",
            p.max_p
        )));
    }
    Ok(p)
}

impl QueueDef {
    /// Resolve to the scenario-level discipline for a bottleneck of `cap`
    /// packets, validating every knob with its JSON path.
    pub fn to_discipline(&self, cap: u32) -> Result<QueueDiscipline, SpecError> {
        Ok(match *self {
            QueueDef::DropTail => QueueDiscipline::DropTail,
            QueueDef::Red {
                min_th,
                max_th,
                w_q,
                max_p,
                gentle,
            } => QueueDiscipline::Red(red_params(
                cap,
                min_th,
                max_th,
                w_q,
                max_p,
                gentle,
                "queue.Red",
            )?),
            QueueDef::RedEcn {
                min_th,
                max_th,
                w_q,
                max_p,
                gentle,
            } => QueueDiscipline::RedEcn(red_params(
                cap,
                min_th,
                max_th,
                w_q,
                max_p,
                gentle,
                "queue.RedEcn",
            )?),
        })
    }
}

impl CcDef {
    /// Resolve to a concrete algorithm for a flow on a `path_rate_bps` path
    /// with `wire_pkt_bytes` packets, one of `n_flows` on its sending host.
    /// Parameter validation is the registry's
    /// ([`rss_cc::registry::validate`]) — per-variant rules live beside the
    /// variant, not here.
    pub fn to_algorithm(
        &self,
        path_rate_bps: u64,
        wire_pkt_bytes: u32,
        n_flows: u32,
    ) -> Result<CcAlgorithm, SpecError> {
        let algo = match *self {
            CcDef::Standard => CcAlgorithm::Reno,
            CcDef::Restricted {
                tuning,
                setpoint_frac,
            } => {
                let mut cfg = match tuning.unwrap_or(TuningDef::ForPath) {
                    TuningDef::ForPath => RssConfig::tuned_for(path_rate_bps, wire_pkt_bytes),
                    TuningDef::PerStream => {
                        RssConfig::tuned_for(path_rate_bps / n_flows.max(1) as u64, wire_pkt_bytes)
                    }
                    TuningDef::ForRate {
                        rate_mbps,
                        wire_pkt_bytes,
                    } => RssConfig::tuned_for(
                        mbps_to_bps(rate_mbps, "tuning rate_mbps")?,
                        wire_pkt_bytes,
                    ),
                    TuningDef::Gains { kp, ti, td } => {
                        RssConfig::with_gains(rss_control::PidGains::pid(kp, ti, td))
                    }
                };
                if let Some(sp) = setpoint_frac {
                    cfg.setpoint_frac = sp;
                }
                CcAlgorithm::Restricted(cfg)
            }
            CcDef::Limited { max_ssthresh } => CcAlgorithm::Limited { max_ssthresh },
            CcDef::Ssthreshless { gamma_segments } => {
                let mut cfg = rss_cc::SslConfig::default();
                if let Some(g) = gamma_segments {
                    cfg.gamma_segments = g;
                }
                CcAlgorithm::Ssthreshless(cfg)
            }
            CcDef::HighSpeed => CcAlgorithm::HighSpeed,
            CcDef::Scalable { ai_cnt } => {
                let mut cfg = rss_cc::ScalableConfig::default();
                if let Some(n) = ai_cnt {
                    cfg.ai_cnt = n;
                }
                CcAlgorithm::Scalable(cfg)
            }
            CcDef::Bbr => CcAlgorithm::Bbr,
            CcDef::Relentless => CcAlgorithm::Relentless,
            CcDef::Hybrid => CcAlgorithm::Hybrid,
        };
        rss_cc::registry::validate(&algo).map_err(|e| SpecError::new(e.msg))?;
        Ok(algo)
    }
}

impl RunSpec {
    /// Resolve this run against the paper-testbed defaults into a concrete
    /// [`Scenario`].
    pub fn to_scenario(&self) -> Result<Scenario, SpecError> {
        let ctx = |e: SpecError| SpecError::new(format!("run `{}`: {}", self.label, e.msg));
        self.build_scenario().map_err(ctx)
    }

    fn build_scenario(&self) -> Result<Scenario, SpecError> {
        let p = self.path.clone().unwrap_or_default();
        let rate_bps = mbps_to_bps(p.rate_mbps.unwrap_or(100.0), "path.rate_mbps")?;
        let loss_prob = p.loss_prob.unwrap_or(0.0);
        if !(0.0..=1.0).contains(&loss_prob) {
            return Err(SpecError::new(format!(
                "path.loss_prob must be in [0, 1], got {loss_prob}"
            )));
        }
        let access_delay_us = p.access_delay_us.unwrap_or(10.0);
        if !access_delay_us.is_finite() || access_delay_us <= 0.0 {
            return Err(SpecError::new(format!(
                "path.access_delay_us must be positive, got {access_delay_us}"
            )));
        }
        let path = PathSpec {
            rate_bps,
            rtt: ms_to_duration(p.rtt_ms.unwrap_or(60.0), "path.rtt_ms")?,
            router_queue_pkts: p.router_queue_pkts.unwrap_or(200),
            loss_prob,
            access_rate_bps: match p.access_rate_mbps {
                Some(m) => Some(mbps_to_bps(m, "path.access_rate_mbps")?),
                None => None,
            },
            access_delay: SimDuration::from_nanos((access_delay_us * 1e3).round() as u64),
        };
        let queue = match (self.red_bottleneck, &self.queue) {
            (Some(_), Some(_)) => {
                return Err(SpecError::new(
                    "`red_bottleneck` is a deprecated alias for `queue`; set only one of them",
                ));
            }
            (Some(true), None) => {
                QueueDiscipline::Red(RedParams::for_capacity(path.router_queue_pkts))
            }
            (Some(false) | None, None) => QueueDiscipline::DropTail,
            (None, Some(q)) => q.to_discipline(path.router_queue_pkts)?,
        };
        let (haul_impairment, access_impairment) = match &p.impairments {
            None => (None, None),
            Some(d) => (
                d.haul
                    .as_ref()
                    .map(|i| i.to_config("path.impairments.haul"))
                    .transpose()?,
                d.access
                    .as_ref()
                    .map(|i| i.to_config("path.impairments.access"))
                    .transpose()?,
            ),
        };

        let h = self.host.unwrap_or_default();
        let host = HostConfig {
            nic_rate_bps: match h.nic_rate_mbps {
                Some(m) => mbps_to_bps(m, "host.nic_rate_mbps")?,
                None => rate_bps,
            },
            txqueuelen: h.txqueuelen.unwrap_or(100),
            mtu: h.mtu.unwrap_or(1500),
        };
        if host.txqueuelen == 0 || host.mtu == 0 {
            return Err(SpecError::new(
                "host.txqueuelen and host.mtu must be positive",
            ));
        }

        let t = self.tcp.unwrap_or_default();
        let mut tcp = TcpConfig::default();
        if let Some(x) = t.mss {
            if x == 0 {
                return Err(SpecError::new("tcp.mss must be positive"));
            }
            tcp.mss = x;
        }
        if let Some(x) = t.header_bytes {
            tcp.header_bytes = x;
        }
        if let Some(x) = t.initial_cwnd_mss {
            tcp.initial_cwnd_mss = x;
        }
        if let Some(x) = t.initial_ssthresh {
            tcp.initial_ssthresh = Some(x);
        }
        if let Some(x) = t.rwnd_bytes {
            tcp.rwnd = x;
        }
        if let Some(x) = t.min_rto_ms {
            tcp.min_rto = ms_to_duration(x, "tcp.min_rto_ms")?;
        }
        if let Some(x) = t.max_rto_ms {
            tcp.max_rto = ms_to_duration(x, "tcp.max_rto_ms")?;
        }
        if let Some(x) = t.ack_policy {
            tcp.ack_policy = x;
        }
        if let Some(x) = t.stall_response {
            tcp.stall_response = x;
        }
        if let Some(x) = t.stall_retry_ms {
            tcp.stall_retry = ms_to_duration(x, "tcp.stall_retry_ms")?;
        }
        if let Some(x) = t.dupack_threshold {
            tcp.dupack_threshold = x;
        }
        tcp.ecn = t.ecn.unwrap_or(queue.ecn_marking());

        let flows: Vec<FlowSpec> = match (&self.gridftp, &self.flows) {
            (Some(_), Some(defs)) if !defs.is_empty() => {
                return Err(SpecError::new(
                    "`flows` and `gridftp` are mutually exclusive",
                ));
            }
            (Some(g), _) => {
                if g.streams == 0 || g.total_bytes == 0 {
                    return Err(SpecError::new(
                        "gridftp.streams and gridftp.total_bytes must be positive",
                    ));
                }
                let algo = g.cc.to_algorithm(rate_bps, host.mtu, g.streams)?;
                stripe_bytes(g.total_bytes, g.streams)
                    .into_iter()
                    .map(|bytes| FlowSpec {
                        algo,
                        app: AppModel::Bulk { bytes: Some(bytes) },
                        start: SimTime::ZERO,
                    })
                    .collect()
            }
            (None, Some(defs)) if !defs.is_empty() => {
                let mut n: u32 = 0;
                for (i, f) in defs.iter().enumerate() {
                    let count = f.count.unwrap_or(1);
                    if count == 0 {
                        return Err(SpecError::new(format!("flows[{i}].count must be positive")));
                    }
                    n = n.saturating_add(count);
                }
                let mut out = Vec::with_capacity(n as usize);
                for f in defs {
                    let spec = FlowSpec {
                        algo: f
                            .cc
                            .unwrap_or_default()
                            .to_algorithm(rate_bps, host.mtu, n)?,
                        app: f.app.unwrap_or(AppModel::Bulk { bytes: None }),
                        start: secs_to_time(f.start_s.unwrap_or(0.0), "flow start_s")?,
                    };
                    out.extend((0..f.count.unwrap_or(1)).map(|_| spec));
                }
                out
            }
            _ => {
                return Err(SpecError::new(
                    "a run needs a non-empty `flows` list or a `gridftp` block",
                ));
            }
        };

        let cross = self
            .cross
            .as_deref()
            .unwrap_or(&[])
            .iter()
            .map(|c| {
                Ok(CrossSpec {
                    pattern: c.pattern,
                    start: secs_to_time(c.start_s.unwrap_or(0.0), "cross start_s")?,
                    stop: match c.stop_s {
                        Some(s) => Some(secs_to_time(s, "cross stop_s")?),
                        None => None,
                    },
                })
            })
            .collect::<Result<_, SpecError>>()?;

        // Full registry validation against the resolved connection inputs:
        // a flow that passes here cannot panic in a variant constructor at
        // run time (e.g. a `max_ssthresh` below the 2·MSS floor).
        for (i, f) in flows.iter().enumerate() {
            rss_cc::registry::validate_params(&f.algo, &tcp.cc_params())
                .map_err(|e| SpecError::new(format!("flows[{i}]: {}", e.msg)))?;
        }

        let web100_stride = self.web100_stride.unwrap_or(1);
        if web100_stride == 0 {
            return Err(SpecError::new("web100_stride must be positive"));
        }

        let mut sc = Scenario {
            path,
            host,
            tcp,
            flows,
            cross,
            duration: secs_to_duration(self.duration_s.unwrap_or(25.0), "duration_s")?,
            seed: self.seed.unwrap_or(1),
            shared_sender_host: self.shared_sender_host.unwrap_or(false),
            sample_interval: ms_to_duration(
                self.sample_interval_ms.unwrap_or(10.0),
                "sample_interval_ms",
            )?,
            web100_stride,
            stop_when_complete: self.stop_when_complete.unwrap_or(false),
            queue,
            // The spec-level `shards` knob is applied during expansion.
            shards: None,
            haul_impairment,
            access_impairment,
            max_sim_time: match self.max_sim_time_s {
                Some(s) => Some(secs_to_duration(s, "max_sim_time_s")?),
                None => None,
            },
            max_events: match self.max_events {
                Some(0) => return Err(SpecError::new("max_events must be positive")),
                other => other,
            },
        };
        if sc.sample_interval == SimDuration::ZERO {
            return Err(SpecError::new("sample_interval_ms must be positive"));
        }
        if self.auto_rwnd.unwrap_or(false) {
            sc = sc.with_auto_rwnd();
        }
        Ok(sc)
    }
}

// ---------------------------------------------------------------------------
// Loading, validation, sweep expansion
// ---------------------------------------------------------------------------

/// One sweep axis: `None` = keep the run's own value.
fn axis<T: Copy>(values: &Option<Vec<T>>, name: &str) -> Result<Vec<Option<T>>, SpecError> {
    match values {
        Some(xs) if xs.is_empty() => Err(SpecError::new(format!(
            "sweep axis `{name}` must not be empty"
        ))),
        Some(xs) => Ok(xs.iter().copied().map(Some).collect()),
        None => Ok(vec![None]),
    }
}

impl ScenarioSpec {
    /// Parse a spec from JSON text. Errors carry the JSON path and line.
    pub fn from_json(text: &str) -> Result<Self, SpecError> {
        serde::from_json_str::<ScenarioSpec>(text).map_err(|e| SpecError::new(e.to_string()))
    }

    /// Read and parse a spec file.
    pub fn load(path: &std::path::Path) -> Result<Self, SpecError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| SpecError::new(format!("{}: {e}", path.display())))?;
        Self::from_json(&text).map_err(|e| SpecError::new(format!("{}: {}", path.display(), e.msg)))
    }

    /// Full validation: parseable fields (already guaranteed by construction)
    /// plus every semantic rule `expand` enforces.
    pub fn validate(&self) -> Result<(), SpecError> {
        self.expand().map(|_| ())
    }

    /// Number of sweep cells (1 when no sweep block is present). An empty
    /// axis yields 0 — the same spec [`Self::expand`] rejects as invalid.
    pub fn cells(&self) -> usize {
        fn len<T>(axis: &Option<Vec<T>>) -> usize {
            axis.as_ref().map_or(1, |v| v.len())
        }
        match &self.sweep {
            None => 1,
            Some(s) => {
                len(&s.rate_mbps)
                    * len(&s.rtt_ms)
                    * len(&s.txqueuelen)
                    * len(&s.seed)
                    * len(&s.streams)
            }
        }
    }

    /// Expand the sweep grid into concrete runs: axes nest in declaration
    /// order (`rate_mbps` outermost, then `rtt_ms`, `txqueuelen`, `seed`,
    /// `streams`) and the file's runs execute in order within each cell —
    /// the same order the hand-coded sweeps build their scenario vectors in.
    pub fn expand(&self) -> Result<Vec<ExpandedRun>, SpecError> {
        if self.name.is_empty() {
            return Err(SpecError::new("scenario `name` must not be empty"));
        }
        if self.runs.is_empty() {
            return Err(SpecError::new("a scenario needs at least one run"));
        }
        if let Some(f) = &self.fairness {
            f.check()?;
        }
        for (i, run) in self.runs.iter().enumerate() {
            if run.label.is_empty() {
                return Err(SpecError::new(format!(
                    "runs[{i}]: `label` must not be empty"
                )));
            }
            if self.runs[..i].iter().any(|r| r.label == run.label) {
                return Err(SpecError::new(format!(
                    "duplicate run label `{}`",
                    run.label
                )));
            }
        }
        let sw = self.sweep.clone().unwrap_or_default();
        let rates = axis(&sw.rate_mbps, "rate_mbps")?;
        let rtts = axis(&sw.rtt_ms, "rtt_ms")?;
        let queues = axis(&sw.txqueuelen, "txqueuelen")?;
        let seeds = axis(&sw.seed, "seed")?;
        let streams_axis = axis(&sw.streams, "streams")?;

        let mut out = Vec::new();
        let mut cell = 0usize;
        for &rate in &rates {
            for &rtt in &rtts {
                for &q in &queues {
                    for &seed in &seeds {
                        for &streams in &streams_axis {
                            for run in &self.runs {
                                let mut r = run.clone();
                                if let Some(rate) = rate {
                                    r.path.get_or_insert_with(Default::default).rate_mbps =
                                        Some(rate);
                                }
                                if let Some(rtt) = rtt {
                                    r.path.get_or_insert_with(Default::default).rtt_ms = Some(rtt);
                                }
                                if let Some(q) = q {
                                    r.host.get_or_insert_with(Default::default).txqueuelen =
                                        Some(q);
                                }
                                if let Some(seed) = seed {
                                    r.seed = Some(seed);
                                }
                                if let Some(streams) = streams {
                                    match &mut r.gridftp {
                                        Some(g) => g.streams = streams,
                                        None => {
                                            return Err(SpecError::new(format!(
                                                "run `{}`: the `streams` sweep axis requires a `gridftp` block",
                                                run.label
                                            )));
                                        }
                                    }
                                }
                                let mut scenario = r.to_scenario()?;
                                if let Some(sh) = self.shards {
                                    let access = scenario.path.access_delay;
                                    if scenario.path.rtt / 2 <= access * 2 {
                                        return Err(SpecError::new(format!(
                                            "run `{}`: sharded execution needs rtt > 4 x \
                                             access_delay (rtt {} ms, access_delay_us {})",
                                            run.label,
                                            scenario.path.rtt.as_secs_f64() * 1e3,
                                            access.as_nanos() as f64 / 1e3,
                                        )));
                                    }
                                    scenario.shards = Some(sh.resolve());
                                }
                                out.push(ExpandedRun {
                                    label: run.label.clone(),
                                    cell,
                                    scenario,
                                });
                            }
                            cell += 1;
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// Default CSV artifact name (`scenario_<name>.csv`), overridable via
    /// the `output.csv` field.
    pub fn csv_name(&self) -> String {
        match self.output.as_ref().and_then(|o| o.csv.clone()) {
            Some(name) => name,
            None => format!("scenario_{}.csv", self.name),
        }
    }

    /// Fairness CSV artifact name — `Some` only when the spec opts into the
    /// fairness block (`fairness_<name>.csv` unless `fairness.csv`
    /// overrides it).
    pub fn fairness_csv_name(&self) -> Option<String> {
        self.fairness.as_ref().map(|f| {
            f.csv
                .clone()
                .unwrap_or_else(|| format!("fairness_{}.csv", self.name))
        })
    }
}

// ---------------------------------------------------------------------------
// Deterministic CSV summary
// ---------------------------------------------------------------------------

/// Format an `f64` deterministically (shortest round-trip representation —
/// the same rule the serializer uses, so goldens are byte-stable).
fn fmt_f64(x: f64) -> String {
    format!("{x}")
}

/// Render the per-flow summary CSV for an expanded + executed scenario.
/// One row per (run, flow); byte-deterministic given bit-identical reports,
/// which is what the golden-gated CI matrix diffs against.
pub fn results_csv(spec: &ScenarioSpec, runs: &[ExpandedRun], reports: &[RunReport]) -> String {
    assert_eq!(runs.len(), reports.len(), "one report per expanded run");
    let mut out = String::from(
        "scenario,run,cell,rate_mbps,rtt_ms,txqueuelen,seed,flows,flow,algo,\
         goodput_bps,utilization,send_stalls,congestion_signals,max_cwnd_bytes,\
         data_bytes_out,thru_bytes_acked,completed_s,events\n",
    );
    for (er, report) in runs.iter().zip(reports) {
        let sc = &er.scenario;
        for f in &report.flows {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                spec.name,
                er.label,
                er.cell,
                fmt_f64(sc.path.rate_bps as f64 / 1e6),
                fmt_f64(sc.path.rtt.as_nanos() as f64 / 1e6),
                sc.host.txqueuelen,
                sc.seed,
                sc.flows.len(),
                f.conn,
                f.algo,
                fmt_f64(f.goodput_bps),
                fmt_f64(f.utilization),
                f.vars.send_stall,
                f.vars.congestion_signals,
                f.vars.max_cwnd,
                f.vars.data_bytes_out,
                f.vars.thru_bytes_acked,
                f.completed_at_s.map(fmt_f64).unwrap_or_default(),
                report.events_processed,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal(json_runs: &str) -> String {
        format!("{{\"name\":\"t\",\"runs\":{json_runs}}}")
    }

    #[test]
    fn defaults_reproduce_the_paper_testbed() {
        let spec = ScenarioSpec::from_json(&minimal(
            r#"[{"label":"standard","flows":[{}]},
                {"label":"restricted","flows":[{"cc":{"Restricted":{}}}]}]"#,
        ))
        .unwrap();
        let runs = spec.expand().unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(
            format!("{:?}", runs[0].scenario),
            format!("{:?}", Scenario::paper_testbed_standard())
        );
        assert_eq!(
            format!("{:?}", runs[1].scenario),
            format!("{:?}", Scenario::paper_testbed_restricted())
        );
    }

    #[test]
    fn unknown_field_is_a_path_qualified_error() {
        let err = ScenarioSpec::from_json(&minimal(
            r#"[{"label":"x","flows":[{}],"tcp":{"mss":1448,"msss":9}}]"#,
        ))
        .unwrap_err();
        assert!(err.msg.contains("unknown field `msss`"), "{}", err.msg);
        assert!(err.msg.contains("$.runs[0].tcp"), "{}", err.msg);
        assert!(err.msg.contains("line"), "{}", err.msg);
    }

    #[test]
    fn wrong_type_is_a_path_qualified_error() {
        let err = ScenarioSpec::from_json(&minimal(
            r#"[{"label":"x","flows":[{}],"duration_s":"long"}]"#,
        ))
        .unwrap_err();
        assert!(err.msg.contains("$.runs[0].duration_s"), "{}", err.msg);
        assert!(
            err.msg.contains("expected f64, found string"),
            "{}",
            err.msg
        );
    }

    #[test]
    fn impairments_expand_into_the_scenario() {
        let spec = ScenarioSpec::from_json(&minimal(
            r#"[{"label":"faulty","flows":[{}],
                 "path":{"impairments":{
                   "haul":{"burst_loss":{"p_good_to_bad":0.02,"p_bad_to_good":0.3,"loss_bad":0.4},
                           "outages":[{"start_s":2,"duration_s":0.5}],
                           "jitter":{"prob":0.1,"max_ms":3},
                           "duplicate_prob":0.01},
                   "access":{"flap":{"mean_up_s":5,"mean_down_s":0.2}}}},
                 "max_sim_time_s":10,"max_events":1000000}]"#,
        ))
        .unwrap();
        let runs = spec.expand().unwrap();
        let sc = &runs[0].scenario;
        let haul = sc.haul_impairment.as_ref().expect("haul impairment set");
        assert_eq!(haul.burst_loss.unwrap().p_good_to_bad, 0.02);
        assert_eq!(haul.burst_loss.unwrap().loss_good, 0.0);
        assert_eq!(haul.outages.len(), 1);
        assert_eq!(haul.outages[0].duration, SimDuration::from_millis(500));
        assert_eq!(haul.jitter.unwrap().max, SimDuration::from_millis(3));
        assert_eq!(haul.duplicate_prob, 0.01);
        let access = sc.access_impairment.as_ref().expect("access impairment");
        assert_eq!(
            access.flap.unwrap().mean_down,
            SimDuration::from_millis(200)
        );
        assert!(access.burst_loss.is_none());
        assert_eq!(sc.max_sim_time, Some(SimDuration::from_secs(10)));
        assert_eq!(sc.max_events, Some(1_000_000));
    }

    #[test]
    fn impairment_probabilities_are_validated_with_their_json_path() {
        for (knob, json) in [
            (
                "path.impairments.haul.burst_loss.loss_bad",
                r#"{"burst_loss":{"p_good_to_bad":0.1,"p_bad_to_good":0.1,"loss_bad":1.5}}"#,
            ),
            (
                "path.impairments.haul.jitter.prob",
                r#"{"jitter":{"prob":-0.2,"max_ms":1}}"#,
            ),
            (
                "path.impairments.haul.duplicate_prob",
                r#"{"duplicate_prob":2}"#,
            ),
            (
                "path.impairments.haul.burst_loss.p_good_to_bad",
                r#"{"burst_loss":{"p_good_to_bad":nan,"p_bad_to_good":0.1,"loss_bad":0.5}}"#,
            ),
        ] {
            let doc = minimal(&format!(
                r#"[{{"label":"x","flows":[{{}}],"path":{{"impairments":{{"haul":{json}}}}}}}]"#
            ));
            // The vendored parser has no NaN literal; smuggle it through a
            // huge exponent only where the case asks for non-finite input.
            let doc = doc.replace("nan", "1e999");
            let spec = match ScenarioSpec::from_json(&doc) {
                Ok(s) => s,
                Err(e) => {
                    // Non-finite numbers may already die in the parser —
                    // also an acceptable rejection, as long as it's loud.
                    assert!(!e.msg.is_empty());
                    continue;
                }
            };
            let err = spec.expand().unwrap_err();
            assert!(err.msg.contains(knob), "missing `{knob}` in: {}", err.msg);
            assert!(err.msg.contains("must be in [0, 1]"), "{}", err.msg);
        }
    }

    #[test]
    fn impairment_durations_and_watchdog_knobs_are_validated() {
        let err = ScenarioSpec::from_json(&minimal(
            r#"[{"label":"x","flows":[{}],
                 "path":{"impairments":{"access":{"flap":{"mean_up_s":0,"mean_down_s":1}}}}}]"#,
        ))
        .unwrap()
        .expand()
        .unwrap_err();
        assert!(
            err.msg.contains("path.impairments.access.flap.mean_up_s"),
            "{}",
            err.msg
        );
        let err = ScenarioSpec::from_json(&minimal(
            r#"[{"label":"x","flows":[{}],"max_sim_time_s":-1}]"#,
        ))
        .unwrap()
        .expand()
        .unwrap_err();
        assert!(err.msg.contains("max_sim_time_s"), "{}", err.msg);
        let err =
            ScenarioSpec::from_json(&minimal(r#"[{"label":"x","flows":[{}],"max_events":0}]"#))
                .unwrap()
                .expand()
                .unwrap_err();
        assert!(
            err.msg.contains("max_events must be positive"),
            "{}",
            err.msg
        );
    }

    #[test]
    fn unknown_variant_is_rejected_with_the_open_enum_list() {
        let err = ScenarioSpec::from_json(&minimal(r#"[{"label":"x","flows":[{"cc":"Vegas"}]}]"#))
            .unwrap_err();
        assert!(err.msg.contains("unknown variant `Vegas`"), "{}", err.msg);
        assert!(
            err.msg
                .contains("Standard, Restricted, Limited, Ssthreshless, HighSpeed, Scalable"),
            "{}",
            err.msg
        );
    }

    #[test]
    fn highspeed_and_scalable_arms_resolve_through_the_registry() {
        let spec = ScenarioSpec::from_json(&minimal(
            r#"[{"label":"lfn","flows":[{"cc":"HighSpeed"},
                                        {"cc":{"Scalable":{}}},
                                        {"cc":{"Scalable":{"ai_cnt":50}}}]}]"#,
        ))
        .unwrap();
        let runs = spec.expand().unwrap();
        assert!(matches!(
            runs[0].scenario.flows[0].algo,
            CcAlgorithm::HighSpeed
        ));
        match runs[0].scenario.flows[1].algo {
            CcAlgorithm::Scalable(cfg) => assert_eq!(cfg.ai_cnt, 100),
            ref other => panic!("wrong algo {other:?}"),
        }
        match runs[0].scenario.flows[2].algo {
            CcAlgorithm::Scalable(cfg) => assert_eq!(cfg.ai_cnt, 50),
            ref other => panic!("wrong algo {other:?}"),
        }
        // Registry validation surfaces as a named spec error.
        let spec = ScenarioSpec::from_json(&minimal(
            r#"[{"label":"bad","flows":[{"cc":{"Scalable":{"ai_cnt":0}}}]}]"#,
        ))
        .unwrap();
        let err = spec.validate().unwrap_err();
        assert!(err.msg.contains("run `bad`"), "{}", err.msg);
        assert!(err.msg.contains("ai_cnt"), "{}", err.msg);
    }

    #[test]
    fn validate_catches_everything_the_constructors_would_panic_on() {
        // `rss validate` must reject what `rss run` cannot build: a
        // max_ssthresh below the 2·MSS constructor floor...
        let spec = ScenarioSpec::from_json(&minimal(
            r#"[{"label":"tiny","flows":[{"cc":{"Limited":{"max_ssthresh":1000}}}]}]"#,
        ))
        .unwrap();
        let err = spec.validate().unwrap_err();
        assert!(err.msg.contains("max_ssthresh"), "{}", err.msg);
        assert!(err.msg.contains("run `tiny`"), "{}", err.msg);
        // ...and PID gains PidController::new would assert on (Ti = 0).
        let spec = ScenarioSpec::from_json(&minimal(
            r#"[{"label":"zeroti","flows":[{"cc":{"Restricted":{
                 "tuning":{"Gains":{"kp":1.0,"ti":0.0,"td":0.0}}}}}]}]"#,
        ))
        .unwrap();
        let err = spec.validate().unwrap_err();
        assert!(err.msg.contains("PID gains"), "{}", err.msg);
    }

    #[test]
    fn ssthreshless_arm_resolves_and_validates_through_the_registry() {
        let spec = ScenarioSpec::from_json(&minimal(
            r#"[{"label":"ssl","flows":[{"cc":{"Ssthreshless":{"gamma_segments":4.0}}}]}]"#,
        ))
        .unwrap();
        let runs = spec.expand().unwrap();
        match runs[0].scenario.flows[0].algo {
            CcAlgorithm::Ssthreshless(cfg) => assert_eq!(cfg.gamma_segments, 4.0),
            ref other => panic!("wrong algo {other:?}"),
        }
        // Default γ when the params block is empty.
        let spec = ScenarioSpec::from_json(&minimal(
            r#"[{"label":"ssl","flows":[{"cc":{"Ssthreshless":{}}}]}]"#,
        ))
        .unwrap();
        match spec.expand().unwrap()[0].scenario.flows[0].algo {
            CcAlgorithm::Ssthreshless(cfg) => assert_eq!(cfg.gamma_segments, 8.0),
            ref other => panic!("wrong algo {other:?}"),
        }
        // Registry validation surfaces as a named spec error.
        let spec = ScenarioSpec::from_json(&minimal(
            r#"[{"label":"bad","flows":[{"cc":{"Ssthreshless":{"gamma_segments":0.0}}}]}]"#,
        ))
        .unwrap();
        let err = spec.validate().unwrap_err();
        assert!(err.msg.contains("run `bad`"), "{}", err.msg);
        assert!(err.msg.contains("gamma_segments"), "{}", err.msg);
    }

    #[test]
    fn fairness_block_defaults_validates_and_names_its_artifact() {
        let spec = ScenarioSpec::from_json(
            r#"{"name":"fair","runs":[{"label":"x","flows":[{},{}]}],
                "fairness":{}}"#,
        )
        .unwrap();
        spec.validate().unwrap();
        let def = spec.fairness.as_ref().unwrap();
        assert_eq!(def.window_s(), 1.0);
        assert_eq!(def.eps(), 0.05);
        assert_eq!(
            spec.fairness_csv_name().as_deref(),
            Some("fairness_fair.csv")
        );
        // No block, no artifact.
        let plain = ScenarioSpec::from_json(&minimal(r#"[{"label":"x","flows":[{}]}]"#)).unwrap();
        assert_eq!(plain.fairness_csv_name(), None);
        // Overrides stick.
        let spec = ScenarioSpec::from_json(
            r#"{"name":"fair","runs":[{"label":"x","flows":[{}]}],
                "fairness":{"window_s":0.5,"eps":0.1,"csv":"f.csv"}}"#,
        )
        .unwrap();
        let def = spec.fairness.as_ref().unwrap();
        assert_eq!(def.window_s(), 0.5);
        assert_eq!(def.eps(), 0.1);
        assert_eq!(spec.fairness_csv_name().as_deref(), Some("f.csv"));
        // Out-of-range knobs are semantic errors, caught by validate.
        for bad in [
            r#"{"name":"f","runs":[{"label":"x","flows":[{}]}],"fairness":{"window_s":0}}"#,
            r#"{"name":"f","runs":[{"label":"x","flows":[{}]}],"fairness":{"eps":1.0}}"#,
            r#"{"name":"f","runs":[{"label":"x","flows":[{}]}],"fairness":{"eps":-0.5}}"#,
        ] {
            let spec = ScenarioSpec::from_json(bad).unwrap();
            let err = spec.validate().unwrap_err();
            assert!(err.msg.contains("fairness."), "{}", err.msg);
        }
    }

    #[test]
    fn truncated_input_is_reported() {
        let err = ScenarioSpec::from_json("{\"name\":\"t\",\n\"runs\":[").unwrap_err();
        assert!(
            err.msg.contains("truncated") || err.msg.contains("end of input"),
            "{}",
            err.msg
        );
        assert!(err.msg.contains("line 2"), "{}", err.msg);
    }

    #[test]
    fn sweep_expands_in_declared_order_and_sets_both_rates() {
        let spec = ScenarioSpec::from_json(
            r#"{"name":"grid",
                "runs":[{"label":"std","flows":[{}],"auto_rwnd":true},
                        {"label":"rss","flows":[{"cc":{"Restricted":{}}}],"auto_rwnd":true}],
                "sweep":{"rate_mbps":[10,1000],"rtt_ms":[10,120]}}"#,
        )
        .unwrap();
        assert_eq!(spec.cells(), 4);
        let runs = spec.expand().unwrap();
        assert_eq!(runs.len(), 8);
        // rate outermost: cells 0,1 at 10 Mbit/s; runs alternate std/rss.
        assert_eq!(runs[0].scenario.path.rate_bps, 10_000_000);
        assert_eq!(runs[0].scenario.host.nic_rate_bps, 10_000_000);
        assert_eq!(runs[0].scenario.path.rtt, SimDuration::from_millis(10));
        assert_eq!(runs[3].scenario.path.rtt, SimDuration::from_millis(120));
        assert_eq!(runs[4].scenario.path.rate_bps, 1_000_000_000);
        assert_eq!(runs[0].cell, 0);
        assert_eq!(runs[1].cell, 0);
        assert_eq!(runs[2].cell, 1);
        // auto_rwnd applies after the sweep override.
        let big = &runs[7].scenario; // 1 Gbit/s, 120 ms
        assert_eq!(big.tcp.rwnd, 4 * big.path.bdp_bytes());
    }

    #[test]
    fn gridftp_stripes_and_retunes_per_stream() {
        let spec = ScenarioSpec::from_json(
            r#"{"name":"g",
                "runs":[{"label":"rss","shared_sender_host":true,"stop_when_complete":true,
                         "gridftp":{"total_bytes":104857600,"streams":4,
                                    "cc":{"Restricted":{"tuning":"PerStream"}}}}],
                "sweep":{"streams":[1,4]}}"#,
        )
        .unwrap();
        let runs = spec.expand().unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].scenario.flows.len(), 1);
        assert_eq!(runs[1].scenario.flows.len(), 4);
        let total: u64 = runs[1]
            .scenario
            .flows
            .iter()
            .map(|f| match f.app {
                AppModel::Bulk { bytes } => bytes.unwrap(),
                _ => 0,
            })
            .sum();
        assert_eq!(total, 104857600);
        // Per-stream tuning divides the rate by the stream count.
        let expect = RssConfig::tuned_for(100_000_000 / 4, 1500);
        match runs[1].scenario.flows[0].algo {
            CcAlgorithm::Restricted(cfg) => assert_eq!(cfg, expect),
            ref other => panic!("wrong algo {other:?}"),
        }
    }

    #[test]
    fn semantic_errors_name_the_run() {
        let spec = ScenarioSpec::from_json(&minimal(r#"[{"label":"broken","flows":[]}]"#)).unwrap();
        let err = spec.validate().unwrap_err();
        assert!(err.msg.contains("run `broken`"), "{}", err.msg);
        let spec = ScenarioSpec::from_json(&minimal(
            r#"[{"label":"a","flows":[{}]},{"label":"a","flows":[{}]}]"#,
        ))
        .unwrap();
        assert!(spec
            .validate()
            .unwrap_err()
            .msg
            .contains("duplicate run label"));
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = ScenarioSpec::from_json(
            r#"{"name":"rt","comment":"round trip",
                "runs":[{"label":"x","flows":[{"cc":{"Limited":{"max_ssthresh":100000}},
                         "app":{"Bulk":{"bytes":5000}},"start_s":0.25}],
                         "tcp":{"stall_response":"RestartFromOne"},
                         "duration_s":1.5,"seed":7}],
                "sweep":{"rtt_ms":[10,20]},
                "output":{"csv":"rt.csv"}}"#,
        )
        .unwrap();
        let json = serde::to_json_string(&spec);
        let back = ScenarioSpec::from_json(&json).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn results_csv_is_deterministic_and_complete() {
        let spec = ScenarioSpec::from_json(&minimal(
            r#"[{"label":"std","flows":[{}],
                 "path":{"rate_mbps":10,"rtt_ms":10},"duration_s":0.5}]"#,
        ))
        .unwrap();
        let runs = spec.expand().unwrap();
        let reports: Vec<RunReport> = runs.iter().map(|r| crate::run(&r.scenario)).collect();
        let a = results_csv(&spec, &runs, &reports);
        let b = results_csv(&spec, &runs, &reports);
        assert_eq!(a, b);
        assert!(a.starts_with("scenario,run,cell,"), "{a}");
        assert!(a.contains("t,std,0,10,10,100,1,1,0,standard,"), "{a}");
    }

    fn with_shards(shards_json: &str) -> String {
        format!(
            r#"{{"name":"t","shards":{shards_json},
                "runs":[{{"label":"x","flows":[{{}}]}}]}}"#
        )
    }

    #[test]
    fn shards_accepts_counts_and_auto() {
        let spec = ScenarioSpec::from_json(&with_shards("4")).unwrap();
        assert_eq!(spec.shards, Some(ShardsDef::Count(4)));
        let runs = spec.expand().unwrap();
        assert_eq!(runs[0].scenario.shards, Some(4));

        let spec = ScenarioSpec::from_json(&with_shards("\"auto\"")).unwrap();
        assert_eq!(spec.shards, Some(ShardsDef::Auto));
        let runs = spec.expand().unwrap();
        assert!(runs[0].scenario.shards.unwrap() >= 1);

        // Omitted: the classic serial world.
        let spec = ScenarioSpec::from_json(&minimal(r#"[{"label":"x","flows":[{}]}]"#)).unwrap();
        assert_eq!(spec.shards, None);
        assert_eq!(spec.expand().unwrap()[0].scenario.shards, None);
    }

    #[test]
    fn shards_rejects_zero_noninteger_and_other_strings() {
        for bad in ["0", "2.5", "\"many\"", "-1", "true", "4294967296"] {
            let err = ScenarioSpec::from_json(&with_shards(bad)).unwrap_err();
            assert!(err.msg.contains("at $.shards"), "{bad}: {}", err.msg);
            assert!(
                err.msg.contains("expected positive integer or \"auto\""),
                "{bad}: {}",
                err.msg
            );
        }
    }

    #[test]
    fn shards_round_trips_through_json() {
        for json in [&with_shards("8"), &with_shards("\"auto\"")] {
            let spec = ScenarioSpec::from_json(json).unwrap();
            let back = ScenarioSpec::from_json(&serde::to_json_string(&spec)).unwrap();
            assert_eq!(spec, back);
        }
    }

    #[test]
    fn sharded_specs_reject_geometry_without_lookahead() {
        // rtt 30 µs with the default 10 µs access delay leaves no haul
        // delay, hence no lookahead window.
        let err = ScenarioSpec::from_json(
            r#"{"name":"t","shards":2,
                "runs":[{"label":"x","flows":[{}],"path":{"rtt_ms":0.03}}]}"#,
        )
        .unwrap()
        .expand()
        .unwrap_err();
        assert!(err.msg.contains("run `x`"), "{}", err.msg);
        assert!(err.msg.contains("rtt > 4 x access_delay"), "{}", err.msg);
        // The same geometry without `shards` stays valid (serial world).
        ScenarioSpec::from_json(
            r#"{"name":"t","runs":[{"label":"x","flows":[{}],"path":{"rtt_ms":0.03}}]}"#,
        )
        .unwrap()
        .expand()
        .unwrap();
    }

    #[test]
    fn flow_count_replicates_and_validates() {
        let spec = ScenarioSpec::from_json(&minimal(
            r#"[{"label":"many","flows":[{"count":3},{"cc":"HighSpeed"}]}]"#,
        ))
        .unwrap();
        let sc = &spec.expand().unwrap()[0].scenario;
        assert_eq!(sc.flows.len(), 4);
        assert!(matches!(sc.flows[0].algo, CcAlgorithm::Reno));
        assert!(matches!(sc.flows[2].algo, CcAlgorithm::Reno));
        assert!(matches!(sc.flows[3].algo, CcAlgorithm::HighSpeed));

        let err = ScenarioSpec::from_json(&minimal(r#"[{"label":"zero","flows":[{"count":0}]}]"#))
            .unwrap()
            .validate()
            .unwrap_err();
        assert!(err.msg.contains("flows[0].count"), "{}", err.msg);
    }

    #[test]
    fn access_delay_is_validated_and_applied() {
        let spec = ScenarioSpec::from_json(&minimal(
            r#"[{"label":"x","flows":[{}],"path":{"access_delay_us":1000}}]"#,
        ))
        .unwrap();
        let sc = &spec.expand().unwrap()[0].scenario;
        assert_eq!(sc.path.access_delay, SimDuration::from_micros(1000));

        let err = ScenarioSpec::from_json(&minimal(
            r#"[{"label":"x","flows":[{}],"path":{"access_delay_us":0}}]"#,
        ))
        .unwrap()
        .validate()
        .unwrap_err();
        assert!(err.msg.contains("access_delay_us"), "{}", err.msg);
    }

    #[test]
    fn red_bottleneck_alias_expands_to_the_default_red_queue() {
        // `red_bottleneck: true` and an empty `queue: {"Red": {}}` block must
        // build the same scenario — the alias is sugar, not a second code
        // path.
        let alias = ScenarioSpec::from_json(&minimal(
            r#"[{"label":"x","flows":[{}],"red_bottleneck":true}]"#,
        ))
        .unwrap();
        let block = ScenarioSpec::from_json(&minimal(
            r#"[{"label":"x","flows":[{}],"queue":{"Red":{}}}]"#,
        ))
        .unwrap();
        let a = &alias.expand().unwrap()[0].scenario;
        let b = &block.expand().unwrap()[0].scenario;
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert!(matches!(a.queue, QueueDiscipline::Red(_)));
        let d = RedParams::for_capacity(a.path.router_queue_pkts);
        assert_eq!(a.queue.red_params(), Some(&d));
        // `false` and absent both mean drop-tail.
        for doc in [
            r#"[{"label":"x","flows":[{}],"red_bottleneck":false}]"#,
            r#"[{"label":"x","flows":[{}]}]"#,
        ] {
            let sc = &ScenarioSpec::from_json(&minimal(doc))
                .unwrap()
                .expand()
                .unwrap()[0]
                .scenario;
            assert_eq!(sc.queue, QueueDiscipline::DropTail);
        }
        // Alias and block together is ambiguous and loudly rejected.
        let err = ScenarioSpec::from_json(&minimal(
            r#"[{"label":"x","flows":[{}],"red_bottleneck":true,"queue":"DropTail"}]"#,
        ))
        .unwrap()
        .expand()
        .unwrap_err();
        assert!(err.msg.contains("deprecated alias"), "{}", err.msg);
    }

    #[test]
    fn queue_knobs_are_validated_with_their_json_path() {
        for (knob, fragment, detail) in [
            (
                "queue.Red.min_th",
                r#"{"Red":{"min_th":80,"max_th":20}}"#,
                "must be below",
            ),
            (
                "queue.Red.min_th",
                r#"{"Red":{"min_th":-1}}"#,
                "non-negative",
            ),
            ("queue.Red.w_q", r#"{"Red":{"w_q":0}}"#, "in (0, 1]"),
            ("queue.Red.w_q", r#"{"Red":{"w_q":1.5}}"#, "in (0, 1]"),
            ("queue.Red.max_p", r#"{"Red":{"max_p":0}}"#, "in (0, 1]"),
            (
                "queue.RedEcn.max_p",
                r#"{"RedEcn":{"max_p":2}}"#,
                "in (0, 1]",
            ),
            (
                "queue.RedEcn.min_th",
                r#"{"RedEcn":{"min_th":30,"max_th":30}}"#,
                "must be below",
            ),
        ] {
            let doc = minimal(&format!(
                r#"[{{"label":"x","flows":[{{}}],"queue":{fragment}}}]"#
            ));
            let err = ScenarioSpec::from_json(&doc).unwrap().expand().unwrap_err();
            assert!(err.msg.contains(knob), "missing `{knob}` in: {}", err.msg);
            assert!(
                err.msg.contains(detail),
                "missing `{detail}` in: {}",
                err.msg
            );
        }
        // Unknown discipline names get the open-enum treatment.
        let err =
            ScenarioSpec::from_json(&minimal(r#"[{"label":"x","flows":[{}],"queue":"Codel"}]"#))
                .unwrap_err();
        assert!(err.msg.contains("unknown variant `Codel`"), "{}", err.msg);
    }

    #[test]
    fn red_ecn_queue_turns_on_tcp_ecn_unless_overridden() {
        // RedEcn implies ECT senders by default...
        let sc = &ScenarioSpec::from_json(&minimal(
            r#"[{"label":"x","flows":[{}],"queue":{"RedEcn":{}}}]"#,
        ))
        .unwrap()
        .expand()
        .unwrap()[0]
            .scenario;
        assert!(sc.queue.ecn_marking());
        assert!(sc.tcp.ecn, "RedEcn queue should default tcp.ecn on");
        // ...a dropping RED queue does not...
        let sc = &ScenarioSpec::from_json(&minimal(
            r#"[{"label":"x","flows":[{}],"queue":{"Red":{}}}]"#,
        ))
        .unwrap()
        .expand()
        .unwrap()[0]
            .scenario;
        assert!(!sc.tcp.ecn);
        // ...and an explicit tcp.ecn wins in both directions.
        let sc = &ScenarioSpec::from_json(&minimal(
            r#"[{"label":"x","flows":[{}],"queue":{"RedEcn":{}},"tcp":{"ecn":false}}]"#,
        ))
        .unwrap()
        .expand()
        .unwrap()[0]
            .scenario;
        assert!(!sc.tcp.ecn, "explicit tcp.ecn=false must override RedEcn");
        assert!(sc.queue.ecn_marking(), "queue still marks; senders ignore");
    }

    #[test]
    fn queue_block_round_trips_through_json() {
        for queue in [
            r#""DropTail""#,
            r#"{"Red":{"min_th":10,"max_th":40,"w_q":0.005,"max_p":0.2,"gentle":true}}"#,
            r#"{"Red":{}}"#,
            r#"{"RedEcn":{"min_th":5}}"#,
        ] {
            let doc = minimal(&format!(
                r#"[{{"label":"x","flows":[{{}}],"queue":{queue}}}]"#
            ));
            let spec = ScenarioSpec::from_json(&doc).unwrap();
            let json = serde::to_json_string(&spec);
            let back = ScenarioSpec::from_json(&json).unwrap();
            assert_eq!(spec, back);
            assert_eq!(json, serde::to_json_string(&back));
        }
    }
}
