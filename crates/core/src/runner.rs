//! Run scenarios to completion and extract reports; parallel sweep support.

use crate::report::{FlowReport, RunReport};
use crate::scenario::Scenario;
use crate::world::World;
use rss_sim::{Engine, SimTime};
use rss_tcp::{TcpReceiver, TcpSender};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Finalize one connection and build its report — shared by the serial and
/// sharded runners so both produce byte-identical flow records.
pub(crate) fn flow_report(
    i: usize,
    sc: &Scenario,
    sender: &mut TcpSender,
    receiver: &TcpReceiver,
    completed_at: Option<SimTime>,
    end: SimTime,
) -> FlowReport {
    sender.finish(end);
    let rstats = receiver.stats();
    let w = sender.web100();
    let vars = w.snapshot();
    let goodput = w.goodput_bps(end);
    FlowReport {
        conn: i as u32,
        algo: sc.flows[i].algo.label().into(),
        vars,
        goodput_bps: goodput,
        utilization: goodput / sc.path.rate_bps as f64,
        completed_at_s: completed_at.map(|t| t.as_secs_f64()),
        stall_times_s: w.send_stalls().times().map(|t| t.as_secs_f64()).collect(),
        congestion_times_s: w
            .congestion_events()
            .times()
            .map(|t| t.as_secs_f64())
            .collect(),
        cwnd_series: w
            .cwnd_series()
            .iter()
            .map(|(t, v)| (t.as_secs_f64(), v))
            .collect(),
        acked_series: w
            .acked_series()
            .iter()
            .map(|(t, v)| (t.as_secs_f64(), v))
            .collect(),
        receiver_delivered_bytes: receiver.rcv_nxt(),
        receiver_dup_segments: rstats.duplicate_segments,
        receiver_ooo_segments: rstats.out_of_order_segments,
        rto_episodes: sender.rto_episodes(),
        rto_max_backoff: sender.rtt().max_backoff_shift(),
        rto_max_recovery_s: sender.rto_max_recovery().map(|d| d.as_secs_f64()),
    }
}

/// The watchdog verdict for a finished serial run: why it was cut short, or
/// `None` when it ran its course.
fn serial_truncation(sc: &Scenario, stats: &rss_sim::RunStats) -> Option<String> {
    if stats.budget_exhausted {
        return Some(format!(
            "event budget {} exhausted at t={:.6}s",
            sc.max_events.expect("budget fired only when armed"),
            stats.end_time.as_secs_f64()
        ));
    }
    let clamp = sc.max_sim_time?;
    if clamp < sc.duration && !stats.drained && !stats.stopped_by_model {
        return Some(format!(
            "max_sim_time {:.6}s reached before the {:.6}s horizon",
            clamp.as_secs_f64(),
            sc.duration.as_secs_f64()
        ));
    }
    None
}

/// Execute one scenario and collect its report.
///
/// `Scenario::shards = Some(n)` routes the run through the sharded parallel
/// executor (see [`crate::shard`]); `None` keeps the classic serial world.
pub fn run(sc: &Scenario) -> RunReport {
    if let Some(n) = sc.shards {
        return crate::shard::run_sharded_scenario(sc, n);
    }
    let world = World::build(sc).unwrap_or_else(|e| {
        panic!("scenario rejected by the congestion-control registry: {e} (the spec pipeline validates this with the same path qualification)")
    });
    let mut engine = Engine::new(world);
    engine.event_budget = sc.max_events;
    for (t, ev) in engine.model().initial_events(sc) {
        engine.schedule_at(t, ev);
    }
    let horizon = sc.max_sim_time.map_or(sc.duration, |t| t.min(sc.duration));
    let stats = engine.run_until(SimTime::ZERO + horizon);
    let end = engine.now();
    let queue_counters = engine.queue_counters();
    let mut world = engine.into_model();

    let mut flows = Vec::with_capacity(world.conn_count());
    for i in 0..world.conn_count() {
        let completed = world.completed_at(i);
        let (sender, receiver) = world.conn_endpoints_mut(i);
        flows.push(flow_report(i, sc, sender, receiver, completed, end));
    }

    let sender_nic = world.sender_nic(0);
    let nic_stats = sender_nic.stats();
    let nic_util = sender_nic.utilization(end);
    let sender_ifq_series = world
        .sender_ifq_series(0)
        .iter()
        .map(|(t, v)| (t.as_secs_f64(), v))
        .collect();
    let (offered_pkts, offered_bytes) = world
        .cross_offered()
        .iter()
        .fold((0u64, 0u64), |acc, &(p, b)| (acc.0 + p, acc.1 + b));
    let _ = offered_pkts;
    let red = world.red_stats();
    let bottleneck_queue_series = world
        .bottleneck_series()
        .iter()
        .map(|(t, v)| (t.as_secs_f64(), v))
        .collect();

    RunReport {
        duration_s: end.as_secs_f64(),
        seed: sc.seed,
        path_rate_bps: sc.path.rate_bps,
        flows,
        sender_ifq_series,
        sender_nic: nic_stats,
        sender_nic_utilization: nic_util,
        router_queue_drops: world.fabric().queue_drops,
        router_red_early_drops: red.map_or(0, |s| s.early_drops),
        router_red_forced_drops: red.map_or(0, |s| s.forced_drops),
        router_ecn_marks: red.map_or(0, |s| s.ecn_marks),
        bottleneck_queue_series,
        cross_offered_bytes: offered_bytes,
        cross_delivered_bytes: world.cross_delivered_bytes,
        events_processed: stats.events_processed,
        engine: Some(queue_counters),
        truncated: serial_truncation(sc, &stats),
    }
}

/// [`run`], measuring wall time. Returns `(report, wall_ms)`.
pub fn run_timed(sc: &Scenario) -> (RunReport, f64) {
    let t0 = std::time::Instant::now();
    let report = run(sc);
    (report, t0.elapsed().as_secs_f64() * 1e3)
}

/// Run a batch of scenarios across worker threads (order-preserving),
/// measuring per-run wall time in milliseconds.
///
/// Each scenario is an independent deterministic simulation, so parallelism
/// is embarrassingly safe; a shared atomic cursor hands out work.
pub fn run_many_timed(scenarios: &[Scenario]) -> Vec<(RunReport, f64)> {
    if scenarios.len() <= 1 {
        return scenarios.iter().map(run_timed).collect();
    }
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(scenarios.len());
    let cursor = AtomicUsize::new(0);
    // Each slot is written exactly once, by the unique worker that claimed
    // its index off the cursor; OnceLock gives lock-free single-writer slots.
    let results: Vec<std::sync::OnceLock<(RunReport, f64)>> = scenarios
        .iter()
        .map(|_| std::sync::OnceLock::new())
        .collect();

    // std::thread::scope joins every worker before returning and re-raises
    // any worker panic, so all result slots are filled on the happy path.
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= scenarios.len() {
                    break;
                }
                let report = run_timed(&scenarios[i]);
                results[i].set(report).expect("slot claimed twice");
            });
        }
    });

    results
        .into_iter()
        .map(|slot| slot.into_inner().expect("missing result"))
        .collect()
}

/// Run a batch of scenarios across worker threads (order-preserving).
pub fn run_many(scenarios: &[Scenario]) -> Vec<RunReport> {
    run_many_timed(scenarios)
        .into_iter()
        .map(|(r, _)| r)
        .collect()
}

/// The process-global run cache backing [`run_many_memo`].
///
/// Scenario aggregates plain config (no floats with NaN, no interior
/// mutability), so its Debug rendering is a faithful identity key; runs are
/// deterministic, so a cached report is indistinguishable from a fresh one.
fn run_cache() -> &'static std::sync::Mutex<std::collections::HashMap<String, (RunReport, f64)>> {
    static CACHE: std::sync::OnceLock<
        std::sync::Mutex<std::collections::HashMap<String, (RunReport, f64)>>,
    > = std::sync::OnceLock::new();
    CACHE.get_or_init(Default::default)
}

/// Run a batch of scenarios, executing each *distinct* configuration once —
/// across the whole process, not just this call.
///
/// Sweep grids routinely contain cells whose scenario is identical (the
/// anchor point of two sweeps, or a baseline column repeated per row), and
/// separate experiments in one binary routinely share anchor cells too.
/// Results are memoized in a process-global cache, so each distinct cell
/// simulates once per process. Returns the per-cell reports (order
/// preserved) plus the number of *distinct* configurations in this call
/// (cells already in the global cache still count as distinct, but cost no
/// simulation).
pub fn run_many_memo(scenarios: &[Scenario]) -> (Vec<RunReport>, usize) {
    let (timed, distinct) = run_many_memo_timed(scenarios);
    (timed.into_iter().map(|(r, _)| r).collect(), distinct)
}

/// [`run_many_memo`], keeping per-run wall time in milliseconds. Cache hits
/// report the wall time of the original simulation, not the lookup.
pub fn run_many_memo_timed(scenarios: &[Scenario]) -> (Vec<(RunReport, f64)>, usize) {
    let keys: Vec<String> = scenarios.iter().map(|sc| format!("{sc:?}")).collect();
    let mut distinct: BTreeMap<&str, usize> = BTreeMap::new();
    let mut fresh: Vec<Scenario> = Vec::new();
    let mut fresh_keys: Vec<&str> = Vec::new();
    {
        let cache = run_cache().lock().expect("run cache poisoned");
        for (key, sc) in keys.iter().zip(scenarios) {
            let seen_before = distinct.insert(key, 0).is_some();
            if !seen_before && !cache.contains_key(key.as_str()) {
                fresh.push(sc.clone());
                fresh_keys.push(key);
            }
        }
    }
    let fresh_reports = run_many_timed(&fresh);
    let mut cache = run_cache().lock().expect("run cache poisoned");
    for (key, report) in fresh_keys.into_iter().zip(fresh_reports) {
        cache.insert(key.to_string(), report);
    }
    let reports = keys.iter().map(|key| cache[key.as_str()].clone()).collect();
    (reports, distinct.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rss_sim::SimDuration;
    use rss_tcp::CcAlgorithm;
    use rss_workload::AppModel;

    /// A fast scenario for unit tests: short run, small path.
    fn tiny(algo: CcAlgorithm) -> Scenario {
        let mut sc = Scenario::paper_testbed(algo)
            .with_rate(10_000_000)
            .with_rtt(SimDuration::from_millis(10))
            .with_duration(SimDuration::from_millis(1500));
        sc.web100_stride = 4;
        sc
    }

    #[test]
    fn bulk_flow_moves_data() {
        let r = run(&tiny(CcAlgorithm::Reno));
        assert_eq!(r.flows.len(), 1);
        let f = &r.flows[0];
        assert!(f.vars.data_bytes_out > 0, "nothing sent");
        assert!(f.vars.thru_bytes_acked > 0, "nothing acked");
        assert!(f.goodput_bps > 1_000_000.0, "goodput {}", f.goodput_bps);
        assert!(f.utilization <= 1.01);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run(&tiny(CcAlgorithm::Reno));
        let b = run(&tiny(CcAlgorithm::Reno));
        assert_eq!(
            a.flows[0].vars.data_bytes_out,
            b.flows[0].vars.data_bytes_out
        );
        assert_eq!(a.flows[0].vars.send_stall, b.flows[0].vars.send_stall);
        assert_eq!(a.flows[0].cwnd_series, b.flows[0].cwnd_series);
    }

    #[test]
    fn bounded_transfer_completes() {
        let mut sc = tiny(CcAlgorithm::Reno);
        sc.flows[0].app = AppModel::Bulk {
            bytes: Some(200_000),
        };
        sc.stop_when_complete = true;
        let r = run(&sc);
        let f = &r.flows[0];
        assert_eq!(f.vars.thru_bytes_acked, 200_000);
        assert!(f.completed_at_s.is_some());
    }

    #[test]
    fn serial_outage_truncates_with_recovery_telemetry() {
        use rss_net::{ImpairmentConfig, OutageWindow};
        use rss_sim::SimTime;
        // A permanent outage under `stop_when_complete`: without the
        // watchdog this would grind through the full (huge) horizon.
        let mut sc = tiny(CcAlgorithm::Reno);
        sc.flows[0].app = AppModel::Bulk {
            bytes: Some(5_000_000),
        };
        sc.stop_when_complete = true;
        sc.duration = SimDuration::from_secs(3600);
        sc.max_sim_time = Some(SimDuration::from_secs(8));
        sc.haul_impairment = Some(ImpairmentConfig {
            outages: vec![OutageWindow {
                start: SimTime::from_millis(50),
                duration: SimDuration::from_secs(7200),
            }],
            ..Default::default()
        });
        let r = run(&sc);
        assert!(r.duration_s <= 8.1, "ran past the clamp: {}", r.duration_s);
        let reason = r.truncated.as_deref().expect("truncation reported");
        assert!(reason.contains("max_sim_time"), "unexpected: {reason}");
        assert!(r.flows[0].completed_at_s.is_none());
        assert!(r.flows[0].rto_episodes >= 1, "no RTO episodes recorded");
        assert!(r.flows[0].rto_max_backoff >= 2, "backoff never deepened");
        // Determinism holds under faults on the serial path too.
        let again = run(&sc);
        assert_eq!(
            r.flows[0].vars.data_bytes_out,
            again.flows[0].vars.data_bytes_out
        );
        assert_eq!(r.flows[0].rto_episodes, again.flows[0].rto_episodes);
    }

    #[test]
    fn serial_event_budget_reports_truncation() {
        let mut sc = tiny(CcAlgorithm::Reno);
        sc.max_events = Some(2_000);
        let r = run(&sc);
        let reason = r.truncated.as_deref().expect("budget truncation reported");
        assert!(reason.contains("event budget 2000 exhausted"), "{reason}");
        assert_eq!(r.events_processed, 2_000);
    }

    #[test]
    fn run_many_matches_run() {
        let scs = vec![
            tiny(CcAlgorithm::Reno),
            tiny(CcAlgorithm::Reno).with_seed(2),
        ];
        let batch = run_many(&scs);
        let solo: Vec<_> = scs.iter().map(run).collect();
        for (b, s) in batch.iter().zip(&solo) {
            assert_eq!(
                b.flows[0].vars.data_bytes_out,
                s.flows[0].vars.data_bytes_out
            );
        }
    }
}
