//! Terminal plotting for the experiment harness: the benches and examples
//! render each figure as ASCII so results are inspectable without any
//! external tooling.

/// One labelled series for an overlay chart.
pub struct Series<'a> {
    /// Legend label.
    pub label: &'a str,
    /// `(x, y)` samples.
    pub points: &'a [(f64, f64)],
    /// Glyph to draw with.
    pub glyph: char,
}

/// Render several series over a shared axis into a text chart.
pub fn ascii_chart(title: &str, series: &[Series<'_>], width: usize, height: usize) -> String {
    assert!(width >= 16 && height >= 4, "chart too small");
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .collect();
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    if all.is_empty() {
        out.push_str("  (no data)\n");
        return out;
    }
    let (mut xmin, mut xmax, mut ymin, mut ymax) = (
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::INFINITY,
        f64::NEG_INFINITY,
    );
    for &(x, y) in &all {
        xmin = xmin.min(x);
        xmax = xmax.max(x);
        ymin = ymin.min(y);
        ymax = ymax.max(y);
    }
    if (xmax - xmin).abs() < 1e-12 {
        xmax = xmin + 1.0;
    }
    if (ymax - ymin).abs() < 1e-12 {
        ymax = ymin + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for s in series {
        for &(x, y) in s.points {
            if !x.is_finite() || !y.is_finite() {
                continue;
            }
            let col = (((x - xmin) / (xmax - xmin)) * (width - 1) as f64).round() as usize;
            let row = (((y - ymin) / (ymax - ymin)) * (height - 1) as f64).round() as usize;
            let r = height - 1 - row.min(height - 1);
            grid[r][col.min(width - 1)] = s.glyph;
        }
    }
    for (i, row) in grid.iter().enumerate() {
        let yval = ymax - (ymax - ymin) * i as f64 / (height - 1) as f64;
        out.push_str(&format!("{yval:>10.2} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>10} +{}\n", "", "-".repeat(width)));
    out.push_str(&format!(
        "{:>11}{:<width$.2}{:>.2}\n",
        "",
        xmin,
        xmax,
        width = width.saturating_sub(4)
    ));
    for s in series {
        out.push_str(&format!("  {} {}\n", s.glyph, s.label));
    }
    out
}

/// Format a simple aligned table: header row plus data rows.
pub fn ascii_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table row");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        let mut line = String::from("| ");
        for (i, c) in cells.iter().enumerate() {
            line.push_str(&format!("{:<width$} | ", c, width = widths[i]));
        }
        line.trim_end().to_string() + "\n"
    };
    out.push_str(&fmt_row(headers.to_vec(), &widths));
    let sep: String = widths
        .iter()
        .map(|w| format!("|{}", "-".repeat(w + 2)))
        .collect::<String>()
        + "|\n";
    out.push_str(&sep);
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(|s| s.as_str()).collect(), &widths));
    }
    out
}

/// Human-readable bits/s.
pub fn fmt_bps(bps: f64) -> String {
    if bps >= 1e9 {
        format!("{:.2} Gbit/s", bps / 1e9)
    } else if bps >= 1e6 {
        format!("{:.2} Mbit/s", bps / 1e6)
    } else if bps >= 1e3 {
        format!("{:.2} kbit/s", bps / 1e3)
    } else {
        format!("{bps:.0} bit/s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chart_renders_all_series() {
        let a = [(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)];
        let b = [(0.0, 2.0), (1.0, 1.5), (2.0, 0.0)];
        let chart = ascii_chart(
            "test",
            &[
                Series {
                    label: "up",
                    points: &a,
                    glyph: '*',
                },
                Series {
                    label: "down",
                    points: &b,
                    glyph: 'o',
                },
            ],
            40,
            10,
        );
        assert!(chart.contains('*'));
        assert!(chart.contains('o'));
        assert!(chart.contains("up"));
        assert!(chart.contains("down"));
        assert!(chart.starts_with("test\n"));
    }

    #[test]
    fn chart_handles_empty() {
        let chart = ascii_chart("empty", &[], 40, 10);
        assert!(chart.contains("(no data)"));
    }

    #[test]
    fn chart_handles_constant_series() {
        let a = [(0.0, 5.0), (1.0, 5.0)];
        let chart = ascii_chart(
            "flat",
            &[Series {
                label: "flat",
                points: &a,
                glyph: '#',
            }],
            30,
            6,
        );
        assert!(chart.contains('#'));
    }

    #[test]
    fn table_alignment() {
        let t = ascii_table(
            &["name", "value"],
            &[
                vec!["standard".into(), "1".into()],
                vec!["restricted".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].contains("standard"));
        // All rows equal width.
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn bps_formatting() {
        assert_eq!(fmt_bps(98_765_432.0), "98.77 Mbit/s");
        assert_eq!(fmt_bps(1_200_000_000.0), "1.20 Gbit/s");
        assert_eq!(fmt_bps(2_500.0), "2.50 kbit/s");
        assert_eq!(fmt_bps(12.0), "12 bit/s");
    }
}
