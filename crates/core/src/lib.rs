//! # rss-core — Restricted Slow-Start for TCP: the public API
//!
//! A full reproduction of *Restricted Slow-Start for TCP* (Allcock, Hegde,
//! Kettimuthu; IEEE CLUSTER 2005). The paper replaces TCP's blind exponential
//! slow-start with a PID controller that paces window growth off the sending
//! host's interface-queue (IFQ) occupancy, eliminating the Linux
//! **send-stall** pseudo-congestion events that collapse throughput on
//! large bandwidth-delay paths.
//!
//! This crate assembles the substrates (`rss-sim`, `rss-net`, `rss-host`,
//! `rss-tcp`, `rss-cc`, `rss-control`, `rss-web100`, `rss-workload`) into
//! runnable experiments:
//!
//! * [`Scenario`] — a declarative experiment description;
//!   [`Scenario::paper_testbed`] is §4 of the paper (100 Mbit/s, 60 ms RTT,
//!   `txqueuelen` 100, 25 s);
//! * [`ScenarioSpec`] — the JSON scenario-file schema (the `scenarios/`
//!   directory and the `rss` CLI): the same experiments as data, with sweep
//!   grids expanding into deduplicated batches;
//! * [`run`] / [`run_many`] / [`run_many_memo`] — deterministic execution,
//!   optionally parallel across scenarios, with duplicate-cell memoization;
//! * [`RunReport`] / [`FlowReport`] — Web100 snapshots, send-stall event
//!   logs (Figure 1), cwnd/IFQ/goodput series;
//! * [`plot`] — terminal rendering used by the benchmark harness.
//!
//! ```
//! use rss_core::{run, Scenario, SimDuration};
//!
//! // A short run of the paper's testbed, standard TCP vs restricted.
//! let quick = |sc: Scenario| run(&sc.with_duration(SimDuration::from_millis(800)));
//! let std_report = quick(Scenario::paper_testbed_standard());
//! let rss_report = quick(Scenario::paper_testbed_restricted());
//! assert!(std_report.flows[0].vars.data_bytes_out > 0);
//! assert!(rss_report.flows[0].vars.data_bytes_out > 0);
//! ```

#![warn(missing_docs)]

pub mod body;
pub mod fairness;
pub mod plot;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod shard;
pub mod spec;
pub mod world;

pub use body::WireBody;
pub use fairness::{fairness_csv, fairness_reports, FairnessReport, FlowFairness, VariantFairness};
pub use report::{FlowReport, RunReport};
pub use runner::{run, run_many, run_many_memo, run_many_memo_timed, run_many_timed, run_timed};
pub use scenario::{CrossSpec, FlowSpec, PathSpec, QueueDiscipline, RedParams, Scenario};
pub use spec::{
    results_csv, BurstLossDef, CcDef, CrossDef, ExpandedRun, FairnessDef, FlapDef, FlowDef,
    GridFtpDef, HostDef, ImpairmentDef, ImpairmentsDef, JitterDef, OutageDef, OutputSpec, PathDef,
    QueueDef, RunSpec, ScenarioSpec, ShardsDef, SpecError, SweepSpec, TcpDef, TuningDef,
};
pub use world::{Ev, World};

// Re-export the pieces downstream users need to compose scenarios without
// depending on every substrate crate directly.
pub use rss_cc::{registry as cc_registry, CcError, CcParams, ScalableConfig, SslConfig};
pub use rss_control::{
    find_ultimate_gain, simulate_closed_loop, step_metrics, DeadTimePlant, FirstOrderPlant,
    IntegratorPlant, PidConfig, PidController, PidGains, Plant, SecondOrderPlant, StepMetrics,
    ZnResult, ZnSearchConfig,
};
pub use rss_host::{HostConfig, NicStats};
pub use rss_net::{
    Flap, GilbertElliott, ImpairStats, Impairment, ImpairmentConfig, Jitter, LinkParams,
    OutageSchedule, OutageWindow, TrafficPattern,
};
pub use rss_sim::{convergence_time, jain_fairness, SimDuration, SimTime};
pub use rss_tcp::{AckPolicy, CcAlgorithm, RssConfig, StallResponse, TcpConfig};
pub use rss_web100::Web100Vars;
pub use rss_workload::{stripe_bytes, AppModel};
