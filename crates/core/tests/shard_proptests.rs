//! Property-based check of the sharded runner's headline guarantee: for a
//! random small scenario, the `RunReport` JSON is byte-identical for every
//! shard count. `shards = 1` is the reference; any divergence at k > 1 means
//! some grouping-visible state leaked across a unit boundary.

use proptest::prelude::*;
use rss_core::{
    run, AppModel, CcAlgorithm, CrossSpec, FlowSpec, RssConfig, Scenario, SimDuration, SimTime,
    TrafficPattern,
};

fn random_scenario(
    n_flows: usize,
    starts_ms: &[u16],
    bounded: &[bool],
    loss_millis: u16,
    cross: bool,
    shared_host: bool,
    seed: u64,
) -> Scenario {
    let mut sc = Scenario::paper_testbed(CcAlgorithm::Reno)
        .with_rate(20_000_000)
        .with_rtt(SimDuration::from_millis(10))
        .with_duration(SimDuration::from_millis(150))
        .with_access_delay(SimDuration::from_micros(500))
        .with_seed(seed);
    sc.flows = (0..n_flows)
        .map(|i| FlowSpec {
            algo: match i % 3 {
                0 => CcAlgorithm::Reno,
                1 => CcAlgorithm::Restricted(RssConfig::tuned()),
                _ => CcAlgorithm::HighSpeed,
            },
            app: AppModel::Bulk {
                bytes: if bounded[i % bounded.len()] {
                    Some(40_000)
                } else {
                    None
                },
            },
            start: SimTime::from_millis(starts_ms[i % starts_ms.len()] as u64),
        })
        .collect();
    if cross {
        sc.cross = vec![CrossSpec {
            pattern: TrafficPattern::Cbr {
                rate_bps: 1_500_000,
                pkt_size: 1500,
            },
            start: SimTime::ZERO,
            stop: None,
        }];
    }
    sc.shared_sender_host = shared_host;
    sc.path.loss_prob = loss_millis as f64 / 1000.0;
    sc.web100_stride = 8;
    sc
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Any grouping of units into 2–4 shards reproduces the 1-shard report
    /// byte-for-byte.
    #[test]
    fn sharded_reports_are_bit_identical(
        n_flows in 2usize..=8,
        shards in 2u32..=4,
        starts_ms in prop::collection::vec(0u16..80, 1..4),
        bounded in prop::collection::vec(any::<bool>(), 1..4),
        loss_millis in 0u16..20,
        cross in any::<bool>(),
        shared_host in any::<bool>(),
        seed in 1u64..500,
    ) {
        let base = random_scenario(
            n_flows, &starts_ms, &bounded, loss_millis, cross, shared_host, seed,
        );
        let reference = run(&base.clone().with_shards(1)).to_json();
        let parallel = run(&base.with_shards(shards)).to_json();
        prop_assert_eq!(reference, parallel, "{} shards diverged", shards);
    }
}
