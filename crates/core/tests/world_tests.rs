//! World-model integration tests: wiring details the end-to-end suite
//! doesn't pin down (start offsets, shared hosts, RED bottlenecks, periodic
//! apps, sampling series).

use rss_core::{
    run, AppModel, CcAlgorithm, CrossSpec, FlowSpec, RssConfig, Scenario, SimDuration, SimTime,
    TrafficPattern,
};

fn base(algo: CcAlgorithm) -> Scenario {
    let mut sc = Scenario::paper_testbed(algo)
        .with_rate(20_000_000)
        .with_rtt(SimDuration::from_millis(10))
        .with_duration(SimDuration::from_secs(3));
    sc.web100_stride = 4;
    sc
}

#[test]
fn flow_start_offset_is_respected() {
    let mut sc = base(CcAlgorithm::Reno);
    sc.flows[0].start = SimTime::from_millis(1500);
    let r = run(&sc);
    let f = &r.flows[0];
    assert!(f.vars.data_bytes_out > 0);
    // Nothing acked before the start time.
    let first_ack_t = f.acked_series.first().map(|&(t, _)| t).unwrap();
    assert!(
        first_ack_t >= 1.5,
        "data moved before flow start: {first_ack_t}"
    );
}

#[test]
fn staggered_flows_both_progress() {
    let mut sc = base(CcAlgorithm::Reno);
    sc.flows = vec![
        FlowSpec::bulk(CcAlgorithm::Reno),
        FlowSpec {
            start: SimTime::from_millis(1000),
            ..FlowSpec::bulk(CcAlgorithm::Reno)
        },
    ];
    let r = run(&sc);
    assert!(r.flows[0].vars.thru_bytes_acked > 0);
    assert!(r.flows[1].vars.thru_bytes_acked > 0);
    // The staggered flow's first activity is at/after its start time.
    let f1_first = r.flows[1].acked_series.first().map(|&(t, _)| t).unwrap();
    assert!(f1_first >= 1.0, "flow 1 moved before its start: {f1_first}");
    // Flow 0 was alone for the first second and banked progress there.
    let f0_at_1s = r.flows[0].goodput_in_window_bps(0.0, 1.0);
    assert!(f0_at_1s > 1_000_000.0, "flow 0 idle in its solo window");
}

#[test]
fn shared_host_flows_share_one_ifq() {
    let mut sc = base(CcAlgorithm::Reno);
    sc.flows = vec![
        FlowSpec::bulk(CcAlgorithm::Reno),
        FlowSpec::bulk(CcAlgorithm::Reno),
    ];
    sc.shared_sender_host = true;
    let shared = run(&sc);
    sc.shared_sender_host = false;
    let separate = run(&sc);
    // Shared host: both flows squeeze through one 20 Mbit/s NIC; separate
    // hosts contend only at the bottleneck router. Both top out at the line
    // rate overall.
    assert!(shared.total_goodput_bps() <= 20_000_000.0 * 1.01);
    assert!(separate.total_goodput_bps() <= 20_000_000.0 * 1.01);
    // The shared-host run has exactly one sender NIC's worth of tx bytes
    // equal to the sum of flows (plus headers).
    let payload: u64 = shared.flows.iter().map(|f| f.vars.data_bytes_out).sum();
    assert!(shared.sender_nic.tx_bytes >= payload);
}

#[test]
fn red_bottleneck_run_works_and_differs_from_droptail() {
    use rss_core::{QueueDiscipline, RedParams};
    let mk = |queue: QueueDiscipline| {
        let mut sc = base(CcAlgorithm::Reno);
        // Fast NICs so the router queue is the contention point.
        sc.path.access_rate_bps = Some(200_000_000);
        sc.host.nic_rate_bps = 200_000_000;
        sc.path.router_queue_pkts = 50;
        sc = sc.with_queue(queue);
        sc.duration = SimDuration::from_secs(5);
        sc
    };
    let droptail = run(&mk(QueueDiscipline::DropTail));
    let red = run(&mk(QueueDiscipline::Red(RedParams::for_capacity(50))));
    assert!(droptail.flows[0].vars.thru_bytes_acked > 0);
    assert!(red.flows[0].vars.thru_bytes_acked > 0);
    // RED drops early: the flow sees loss events before the hard limit and
    // the trajectory differs from drop-tail.
    assert_ne!(
        droptail.flows[0].vars.data_bytes_out, red.flows[0].vars.data_bytes_out,
        "RED had no effect on the run"
    );
    assert!(
        red.flows[0].vars.fast_retran + red.flows[0].vars.timeouts > 0,
        "RED produced no congestion signals"
    );
    assert!(
        red.router_red_early_drops > 0,
        "no early drops counted in the report"
    );
    assert_eq!(red.router_ecn_marks, 0, "plain RED must never CE-mark");
    assert_eq!(droptail.router_red_early_drops, 0);
}

#[test]
fn ecn_bottleneck_marks_instead_of_dropping_and_still_controls_the_queue() {
    use rss_core::{QueueDiscipline, RedParams};
    let mk = |queue: QueueDiscipline| {
        let mut sc = base(CcAlgorithm::Reno);
        sc.path.access_rate_bps = Some(200_000_000);
        sc.host.nic_rate_bps = 200_000_000;
        sc.path.router_queue_pkts = 50;
        sc = sc.with_queue(queue);
        sc.duration = SimDuration::from_secs(5);
        sc
    };
    let red = run(&mk(QueueDiscipline::Red(RedParams::for_capacity(50))));
    let ecn = run(&mk(QueueDiscipline::RedEcn(RedParams::for_capacity(50))));
    assert!(ecn.router_ecn_marks > 0, "ECN bottleneck never marked");
    assert!(
        ecn.flows[0].vars.ecn_echoes > 0,
        "sender never saw an ECN echo"
    );
    // Marks replace in-band drops, so the ECN run retransmits less than the
    // dropping RED run while the queue stays controlled.
    assert!(
        ecn.flows[0].vars.pkts_retrans < red.flows[0].vars.pkts_retrans,
        "ECN {} vs RED {} retransmits",
        ecn.flows[0].vars.pkts_retrans,
        red.flows[0].vars.pkts_retrans
    );
    assert!(ecn.flows[0].vars.thru_bytes_acked > 0);
    // The average queue must not sit pinned at the hard limit.
    let peak = ecn
        .bottleneck_queue_series
        .iter()
        .map(|&(_, v)| v)
        .fold(0.0f64, f64::max);
    assert!(peak <= 50.0, "queue beyond capacity: {peak}");
}

#[test]
fn periodic_app_writes_on_schedule() {
    let mut sc = base(CcAlgorithm::Reno);
    sc.flows[0].app = AppModel::Periodic {
        burst_bytes: 10_000,
        interval: SimDuration::from_millis(500),
        count: Some(4),
    };
    let r = run(&sc);
    let f = &r.flows[0];
    assert_eq!(f.receiver_delivered_bytes, 40_000);
    // Bursts at 0, 0.5, 1.0, 1.5 s: delivery of the last burst happens
    // after 1.5 s.
    let last_t = f.acked_series.last().map(|&(t, _)| t).unwrap();
    assert!(last_t >= 1.5, "last burst acked too early: {last_t}");
}

#[test]
fn ifq_series_covers_run_and_respects_capacity() {
    let sc = base(CcAlgorithm::Restricted(RssConfig::tuned_for(
        20_000_000, 1500,
    )));
    let r = run(&sc);
    assert!(!r.sender_ifq_series.is_empty());
    let last_t = r.sender_ifq_series.last().unwrap().0;
    assert!(last_t > 2.9, "sampling stopped early: {last_t}");
    assert!(r
        .sender_ifq_series
        .iter()
        .all(|&(_, v)| (0.0..=100.0).contains(&v)));
}

#[test]
fn cross_only_scenario_moves_cross_traffic() {
    let mut sc = base(CcAlgorithm::Reno);
    sc.flows[0].app = AppModel::Bulk { bytes: Some(0) };
    sc.cross = vec![CrossSpec {
        pattern: TrafficPattern::Cbr {
            rate_bps: 4_000_000,
            pkt_size: 1000,
        },
        start: SimTime::ZERO,
        stop: None,
    }];
    let r = run(&sc);
    assert_eq!(r.flows[0].vars.data_bytes_out, 0);
    // ~4 Mbit/s for 3 s = 1.5 MB.
    let expect = 4_000_000.0 / 8.0 * 3.0;
    let got = r.cross_delivered_bytes as f64;
    assert!(
        (got - expect).abs() / expect < 0.05,
        "cross delivery {got} vs {expect}"
    );
}

#[test]
fn open_loop_cross_overload_is_dropped_not_wedged() {
    let mut sc = base(CcAlgorithm::Reno);
    sc.flows[0].app = AppModel::Bulk { bytes: Some(0) };
    // Offer 2x the line rate: the source's own NIC must shed the excess.
    sc.cross = vec![CrossSpec {
        pattern: TrafficPattern::Cbr {
            rate_bps: 40_000_000,
            pkt_size: 1000,
        },
        start: SimTime::ZERO,
        stop: None,
    }];
    let r = run(&sc);
    let ratio = r.cross_delivery_ratio();
    assert!(
        (0.4..0.6).contains(&ratio),
        "expected ~half delivered at 2x overload, got {ratio}"
    );
}

#[test]
fn limited_slow_start_runs_through_world() {
    let r = run(&base(CcAlgorithm::Limited { max_ssthresh: None }));
    assert!(r.flows[0].vars.thru_bytes_acked > 0);
    assert_eq!(r.flows[0].algo, "limited");
}

#[test]
fn report_metadata_round_trips() {
    let sc = base(CcAlgorithm::Reno).with_seed(77);
    let r = run(&sc);
    assert_eq!(r.seed, 77);
    assert_eq!(r.path_rate_bps, 20_000_000);
    assert!((r.duration_s - 3.0).abs() < 1e-9);
    let r2 = r.clone();
    assert_eq!(
        format!("{:?}", r.flows[0].vars),
        format!("{:?}", r2.flows[0].vars)
    );
}
