//! # rss-host — end-host soft components
//!
//! The paper's key observation (§2) is that "congestion events are not just
//! pertained to congestion in the network": on Linux, saturating *soft
//! components of the sending host* — chiefly the network-interface queue
//! behind `txqueuelen` — produces **send-stall** events that Linux TCP treats
//! exactly like network congestion. This crate models that transmit path:
//!
//! * [`HostNic`] — bounded IFQ (qdisc) feeding a line-rate device, with
//!   send-stall generation on overflow and busy-time accounting;
//! * [`HostConfig`] — NIC rate / `txqueuelen` / MTU, defaulting to the
//!   paper's testbed (100 Mbit/s, txqueuelen 100, Ethernet MTU).
//!
//! The receiving direction needs no model: the paper's pathology is entirely
//! on the transmit side, and ACK traffic is far below any queue limit.

#![warn(missing_docs)]

pub mod nic;

pub use nic::{HostConfig, HostNic, NicStats};
