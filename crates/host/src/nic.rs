//! The sending host's soft components: interface queue (IFQ) and NIC.
//!
//! This is the subsystem the paper is actually about. On Linux 2.4, a TCP
//! segment leaving the stack is enqueued on the device's qdisc — a FIFO of
//! `txqueuelen` packets — and the NIC drains it at line rate. If the stack
//! produces a burst larger than the qdisc can absorb (exactly what slow-start
//! does on a big-BDP path), the enqueue *fails*: a **send-stall**. Linux 2.4
//! fed that failure back into TCP as if it were network congestion, which is
//! the pathology Restricted Slow-Start removes.
//!
//! [`HostNic`] models the qdisc + device pair: bounded FIFO, one packet being
//! serialized at a time, busy-time accounting for utilization reports.

use rss_net::{Body, DropTailQueue, EnqueueError, Packet, QueueConfig, QueueStats};
use rss_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Static configuration of a host's transmit path.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HostConfig {
    /// NIC line rate, bits per second. The paper's hosts had 100 Mbit/s NICs.
    pub nic_rate_bps: u64,
    /// Interface-queue capacity in packets (Linux `txqueuelen`; the 2.4-era
    /// default was 100).
    pub txqueuelen: u32,
    /// MTU in bytes (1500 for Ethernet).
    pub mtu: u32,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            nic_rate_bps: 100_000_000,
            txqueuelen: 100,
            mtu: 1500,
        }
    }
}

/// Counters for one host transmit path.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct NicStats {
    /// Packets fully serialized onto the wire.
    pub tx_pkts: u64,
    /// Bytes fully serialized onto the wire.
    pub tx_bytes: u64,
    /// Enqueue attempts rejected by a full IFQ (send-stalls seen by *all*
    /// users of this NIC, not per-connection).
    pub stalls: u64,
    /// Cumulative time the NIC spent transmitting.
    pub busy_time: SimDuration,
}

/// The qdisc + NIC pair of one host.
#[derive(Debug, Clone)]
pub struct HostNic<B> {
    cfg: HostConfig,
    ifq: DropTailQueue<B>,
    /// Packet currently being serialized by the device.
    transmitting: Option<Packet<B>>,
    tx_started: SimTime,
    stats: NicStats,
}

impl<B: Body> HostNic<B> {
    /// Create an idle NIC with an empty IFQ.
    pub fn new(cfg: HostConfig) -> Self {
        HostNic {
            ifq: DropTailQueue::new(QueueConfig::packets(cfg.txqueuelen)),
            cfg,
            transmitting: None,
            tx_started: SimTime::ZERO,
            stats: NicStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> HostConfig {
        self.cfg
    }

    /// Instantaneous IFQ depth in packets (the PID controller's process
    /// variable). Includes the packet on the device, matching how the qdisc
    /// backlog is read on Linux only loosely — the device slot is counted
    /// because it is still host-side backlog.
    pub fn ifq_depth(&self) -> u32 {
        self.ifq.len() as u32 + u32::from(self.transmitting.is_some())
    }

    /// Queued packets excluding the device slot.
    pub fn ifq_queued(&self) -> u32 {
        self.ifq.len() as u32
    }

    /// Maximum IFQ depth (txqueuelen).
    pub fn ifq_max(&self) -> u32 {
        self.cfg.txqueuelen
    }

    /// IFQ occupancy in [0, 1].
    pub fn fill_fraction(&self) -> f64 {
        self.ifq_queued() as f64 / self.cfg.txqueuelen as f64
    }

    /// Counter snapshot.
    pub fn stats(&self) -> NicStats {
        self.stats
    }

    /// Raw queue statistics.
    pub fn queue_stats(&self) -> QueueStats {
        self.ifq.stats()
    }

    /// True while the device is serializing a packet.
    pub fn is_busy(&self) -> bool {
        self.transmitting.is_some()
    }

    /// Offer a packet to the qdisc.
    ///
    /// On success the caller must invoke [`HostNic::start_tx_if_idle`] to
    /// (possibly) begin serialization. On failure the packet is returned —
    /// this is the **send-stall** the paper's Figure 1 counts; the caller
    /// forwards it to the congestion-control module as a local congestion
    /// signal.
    pub fn enqueue(&mut self, pkt: Packet<B>) -> Result<(), (EnqueueError, Packet<B>)> {
        match self.ifq.try_enqueue(pkt) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.stats.stalls += 1;
                Err(e)
            }
        }
    }

    /// Non-mutating probe: would an MTU-sized packet be accepted right now?
    pub fn has_room(&self) -> bool {
        (self.ifq.len() as u32) < self.cfg.txqueuelen
    }

    /// If the device is idle and the IFQ is non-empty, move the head packet
    /// onto the device and return its serialization time; the caller
    /// schedules a tx-done event that far in the future.
    pub fn start_tx_if_idle(&mut self, now: SimTime) -> Option<SimDuration> {
        if self.transmitting.is_some() {
            return None;
        }
        let pkt = self.ifq.dequeue()?;
        let ser = SimDuration::for_bytes_at_rate(pkt.wire_size() as u64, self.cfg.nic_rate_bps);
        self.transmitting = Some(pkt);
        self.tx_started = now;
        Some(ser)
    }

    /// The device finished serializing: returns the packet now on the wire.
    /// The caller puts it in flight and calls [`HostNic::start_tx_if_idle`]
    /// again for the next one.
    pub fn on_tx_done(&mut self, now: SimTime) -> Packet<B> {
        let pkt = self
            .transmitting
            .take()
            .expect("tx-done with no packet on device");
        self.stats.tx_pkts += 1;
        self.stats.tx_bytes += pkt.wire_size() as u64;
        self.stats.busy_time += now.saturating_since(self.tx_started);
        pkt
    }

    /// Fraction of `[0, now]` the device spent transmitting.
    pub fn utilization(&self, now: SimTime) -> f64 {
        let total = now.as_nanos();
        if total == 0 {
            return 0.0;
        }
        let mut busy = self.stats.busy_time;
        if self.transmitting.is_some() {
            busy += now.saturating_since(self.tx_started);
        }
        busy.as_nanos() as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rss_net::{FlowId, NodeId, RawBody};

    fn pkt(id: u64, size: u32) -> Packet<RawBody> {
        Packet {
            id,
            src: NodeId(0),
            dst: NodeId(1),
            flow: FlowId(0),
            created: SimTime::ZERO,
            body: RawBody { size },
        }
    }

    fn nic(txqueuelen: u32) -> HostNic<RawBody> {
        HostNic::new(HostConfig {
            nic_rate_bps: 100_000_000,
            txqueuelen,
            mtu: 1500,
        })
    }

    #[test]
    fn serializes_at_line_rate() {
        let mut n = nic(10);
        n.enqueue(pkt(0, 1500)).unwrap();
        let ser = n.start_tx_if_idle(SimTime::ZERO).unwrap();
        // 1500 B at 100 Mbit/s = 120 us.
        assert_eq!(ser, SimDuration::from_micros(120));
        assert!(n.is_busy());
        let done = SimTime::ZERO + ser;
        let out = n.on_tx_done(done);
        assert_eq!(out.id, 0);
        assert!(!n.is_busy());
        assert_eq!(n.stats().tx_pkts, 1);
        assert_eq!(n.stats().tx_bytes, 1500);
        assert_eq!(n.stats().busy_time, ser);
    }

    #[test]
    fn full_ifq_generates_send_stall() {
        let mut n = nic(2);
        n.enqueue(pkt(0, 1500)).unwrap();
        n.enqueue(pkt(1, 1500)).unwrap();
        let err = n.enqueue(pkt(2, 1500));
        assert!(err.is_err(), "third packet must stall");
        let (_, returned) = err.unwrap_err();
        assert_eq!(returned.id, 2);
        assert_eq!(n.stats().stalls, 1);
        // Starting transmission frees a queue slot.
        n.start_tx_if_idle(SimTime::ZERO).unwrap();
        n.enqueue(pkt(3, 1500)).unwrap();
        assert_eq!(n.stats().stalls, 1);
    }

    #[test]
    fn ifq_depth_counts_device_slot() {
        let mut n = nic(10);
        n.enqueue(pkt(0, 1500)).unwrap();
        n.enqueue(pkt(1, 1500)).unwrap();
        assert_eq!(n.ifq_depth(), 2);
        assert_eq!(n.ifq_queued(), 2);
        n.start_tx_if_idle(SimTime::ZERO).unwrap();
        assert_eq!(n.ifq_depth(), 2, "device slot still backlog");
        assert_eq!(n.ifq_queued(), 1);
        n.on_tx_done(SimTime::from_micros(120));
        assert_eq!(n.ifq_depth(), 1);
    }

    #[test]
    fn device_busy_blocks_second_start() {
        let mut n = nic(10);
        n.enqueue(pkt(0, 1500)).unwrap();
        n.enqueue(pkt(1, 1500)).unwrap();
        assert!(n.start_tx_if_idle(SimTime::ZERO).is_some());
        assert!(n.start_tx_if_idle(SimTime::ZERO).is_none());
    }

    #[test]
    fn drain_order_is_fifo() {
        let mut n = nic(10);
        for i in 0..5 {
            n.enqueue(pkt(i, 100)).unwrap();
        }
        let mut now = SimTime::ZERO;
        for expect in 0..5 {
            let ser = n.start_tx_if_idle(now).unwrap();
            now += ser;
            assert_eq!(n.on_tx_done(now).id, expect);
        }
    }

    #[test]
    fn utilization_accounts_busy_fraction() {
        let mut n = nic(10);
        n.enqueue(pkt(0, 1500)).unwrap();
        let ser = n.start_tx_if_idle(SimTime::ZERO).unwrap();
        n.on_tx_done(SimTime::ZERO + ser);
        // Busy 120 us out of 240 us = 50 %.
        let u = n.utilization(SimTime::from_micros(240));
        assert!((u - 0.5).abs() < 1e-9, "u = {u}");
        // Mid-transmission time counts as busy.
        n.enqueue(pkt(1, 1500)).unwrap();
        n.start_tx_if_idle(SimTime::from_micros(240)).unwrap();
        let u = n.utilization(SimTime::from_micros(300));
        assert!((u - (120.0 + 60.0) / 300.0).abs() < 1e-9, "u = {u}");
    }

    #[test]
    fn fill_fraction_against_txqueuelen() {
        let mut n = nic(4);
        assert_eq!(n.fill_fraction(), 0.0);
        n.enqueue(pkt(0, 100)).unwrap();
        n.enqueue(pkt(1, 100)).unwrap();
        assert_eq!(n.fill_fraction(), 0.5);
        assert!(n.has_room());
        n.enqueue(pkt(2, 100)).unwrap();
        n.enqueue(pkt(3, 100)).unwrap();
        assert!(!n.has_room());
    }

    #[test]
    #[should_panic(expected = "tx-done with no packet")]
    fn tx_done_without_start_panics() {
        let mut n = nic(1);
        n.on_tx_done(SimTime::ZERO);
    }
}
